/// \file slam_mapping.cpp
/// \brief Map a track with the CartoLite SLAM pipeline — the workflow that
/// precedes every race: drive a mapping lap, close the loop, save the map.
///
/// A scripted explorer follows the (ground-truth) centerline at moderate
/// speed while CartoSlam consumes wheel odometry + LiDAR. The example
/// reports local-SLAM drift before loop closure, the pose-graph statistics,
/// map quality vs the ground-truth grid, and writes the finished map as
/// slam_map.pgm/.yaml (loadable by the localization examples).
///
/// Build & run:  ./build/examples/slam_mapping [track: test|oval|hairpin]

#include <cstring>
#include <iostream>
#include <memory>

#include "common/angles.hpp"
#include "eval/table.hpp"
#include "gridmap/map_io.hpp"
#include "gridmap/track_generator.hpp"
#include "range/ray_marching.hpp"
#include "sensor/lidar_sim.hpp"
#include "slam/carto_slam.hpp"
#include "track/raceline.hpp"
#include "vehicle/sensors.hpp"

int main(int argc, char** argv) {
  using namespace srl;

  Track track = TrackGenerator::test_track();
  if (argc > 1 && std::strcmp(argv[1], "oval") == 0) {
    track = TrackGenerator::oval(8.0, 2.5);
  } else if (argc > 1 && std::strcmp(argv[1], "hairpin") == 0) {
    track = TrackGenerator::hairpin();
  }
  auto map = std::make_shared<const OccupancyGrid>(track.grid);
  const LidarConfig lidar{};
  const Raceline line{track.centerline};

  LidarSim sim{lidar, std::make_shared<RayMarching>(map, lidar.max_range),
               LidarNoise{}};
  const WheelOdometrySensor odom_sensor{AckermannParams{},
                                        WheelOdometryNoise{}};

  CartoSlamOptions options;
  CartoSlam slam{options, lidar};

  // Scripted mapping drive: 1.2 laps along the centerline at 2.5 m/s.
  Rng rng{11};
  const double v = 2.5;
  const double dt = 0.01;
  double s = 1.0;
  const Vec2 p0 = line.position(s);
  Pose2 truth{p0.x, p0.y, line.heading(s)};
  slam.initialize(truth);

  const double total = 1.2 * line.length();
  std::cout << "Mapping " << TextTable::num(total, 1) << " m of track at "
            << v << " m/s...\n";
  double traveled = 0.0;
  double t = 0.0;
  double next_scan = 0.0;
  double drift_before_loop = 0.0;
  bool loop_seen = false;
  while (traveled < total) {
    const double kappa = line.curvature(s);
    const Twist2 twist{v, 0.0, v * kappa};
    truth = integrate_twist(truth, twist, dt).normalized();
    s = line.wrap(s + v * dt);
    traveled += v * dt;
    t += dt;

    // Wheel odometry (a touch of sensor noise, no slip at this pace).
    VehicleState state;
    state.v = v;
    state.wheel_speed = v;
    state.steer = curvature_to_steer(AckermannParams{}, kappa);
    state.yaw_rate = v * kappa;
    slam.on_odometry(odom_sensor.measure(state, dt, rng));

    if (t >= next_scan) {
      next_scan += 0.025;
      slam.on_scan(sim.scan(truth, twist, t, rng));
    }
    if (!loop_seen && traveled >= line.length() * 0.98) {
      const Pose2 est = slam.pose();
      drift_before_loop = std::hypot(est.x - truth.x, est.y - truth.y);
      loop_seen = true;
    }
  }

  const Pose2 est = slam.pose();
  const double final_err = std::hypot(est.x - truth.x, est.y - truth.y);

  std::cout << "Finalizing pose graph and rendering the map...\n";
  const OccupancyGrid built = slam.build_map();

  // Map quality: how much of the true corridor the built map marks free.
  int free_ok = 0;
  int checked = 0;
  for (std::size_t i = 0; i < track.centerline.size(); ++i) {
    const GridIndex g = built.world_to_grid(track.centerline[i]);
    if (!built.in_bounds(g.ix, g.iy)) continue;
    ++checked;
    if (built.at(g.ix, g.iy) == OccupancyGrid::kFree) ++free_ok;
  }

  TextTable table{{"metric", "value"}};
  table.add_row({"scan nodes", std::to_string(slam.num_nodes())});
  table.add_row({"submaps", std::to_string(slam.num_submaps())});
  table.add_row({"loop closures", std::to_string(slam.num_loop_closures())});
  table.add_row({"drift at lap end [m]", TextTable::num(drift_before_loop)});
  table.add_row({"final pose error [m]", TextTable::num(final_err)});
  table.add_row({"centerline mapped free [%]",
                 TextTable::num(checked > 0 ? 100.0 * free_ok / checked : 0.0,
                                1)});
  table.add_row({"map cells free / occupied",
                 std::to_string(built.count(OccupancyGrid::kFree)) + " / " +
                     std::to_string(built.count(OccupancyGrid::kOccupied))});
  table.add_row({"mean scan update [ms]",
                 TextTable::num(slam.mean_scan_update_ms(), 2)});
  std::cout << table.render();

  if (save_map(built, "slam_map")) {
    std::cout << "wrote slam_map.pgm / slam_map.yaml\n";
  }
  return slam.num_loop_closures() > 0 && final_err < 0.5 ? 0 : 1;
}
