/// \file telemetry_demo.cpp
/// \brief End-to-end tour of the telemetry subsystem: record a short drive
/// (with a mid-run kidnap), replay it into a *supervised* SynPF with a
/// metrics registry + trace buffer attached, then export
///   - `telemetry_trace.json` — nested per-stage spans including the
///     recovery spans (recovery.inject / recovery.global_reloc), loadable
///     in chrome://tracing or ui.perfetto.dev,
///   - `telemetry_metrics.csv` — every counter/gauge/histogram (per-stage
///     latency percentiles, filter-health gauges, recovery.state gauge and
///     state-transition counters),
///   - `telemetry_events.ndjson` — the structured event journal, one JSON
///     document per line,
///
/// and prints the event timeline of the scripted kidnap: the harness-level
/// events from the closed-loop recording run (experiment.kidnap, episode
/// open/close) followed by the filter + recovery events the supervised
/// replay journals while it detects and repairs the kidnap.
///
/// Build & run:  ./build/examples/telemetry_demo [laps]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "core/synpf.hpp"
#include "eval/experiment.hpp"
#include "eval/table.hpp"
#include "eval/trace.hpp"
#include "gridmap/track_generator.hpp"
#include "recovery/supervised_localizer.hpp"
#include "telemetry/telemetry.hpp"

int main(int argc, char** argv) {
  using namespace srl;

  const int laps = argc > 1 ? std::atoi(argv[1]) : 2;

  // 1. Record a sensor trace (odometry + scans + ground truth) by driving
  //    the closed-loop harness once.
  const Track track = TrackGenerator::test_track();
  auto map = std::make_shared<const OccupancyGrid>(track.grid);
  const LidarConfig lidar{};

  ExperimentConfig exp;
  exp.laps = laps;
  exp.mu = 0.76;
  // Kidnap the vehicle mid-drive so the replayed recovery layer has
  // something to detect and repair — its spans then show up in the trace.
  ExperimentConfig::KidnapSpec kidnap;
  kidnap.t = 10.0;
  kidnap.advance_frac = 0.25;
  exp.kidnaps.push_back(kidnap);
  ExperimentRunner runner{track, exp};

  SynPf driver{SynPfConfig{}, map, lidar};
  SensorTrace trace;
  // The recording run gets its own journal so the harness-level events
  // (experiment.kidnap, divergence episodes) can be printed alongside the
  // replay's filter/recovery events below.
  telemetry::Telemetry recording_telemetry;
  std::cout << "Recording " << laps << "-lap trace (kidnap at "
            << TextTable::num(kidnap.t, 1) << " s)...\n";
  runner.run(driver, &trace, recording_telemetry.sink());
  std::cout << "  " << trace.scans().size() << " scans, "
            << trace.odometry().size() << " odometry increments, "
            << TextTable::num(trace.duration(), 1) << " s\n";

  // 2. Replay it open-loop into a fresh *supervised* SynPF with full
  //    telemetry attached: per-stage histograms + health gauges into the
  //    registry, nested spans (including recovery actions) into the trace
  //    buffer.
  telemetry::Telemetry telemetry;
  SynPf synpf{SynPfConfig{}, map, lidar};
  recovery::SupervisedLocalizer supervised{synpf, {}, map, lidar};
  supervised.bind_filter(&synpf.filter());
  std::cout << "Replaying with telemetry + divergence supervision...\n";
  const SensorTrace::ReplayResult result =
      trace.replay(supervised, telemetry.sink());

  TextTable summary{{"metric", "value"}};
  summary.add_row({"pose RMSE [m]", TextTable::num(result.pose_rmse_m, 3)});
  summary.add_row({"update mean [ms]", TextTable::num(result.mean_update_ms, 3)});
  summary.add_row({"update p50 [ms]", TextTable::num(result.p50_update_ms, 3)});
  summary.add_row({"update p95 [ms]", TextTable::num(result.p95_update_ms, 3)});
  summary.add_row({"update p99 [ms]", TextTable::num(result.p99_update_ms, 3)});
  summary.add_row({"update max [ms]", TextTable::num(result.max_update_ms, 3)});
  std::cout << summary.render();

  // 3. Per-stage latency percentiles from the registry.
  TextTable stages{{"stage", "n", "mean [ms]", "p50 [ms]", "p95 [ms]",
                    "p99 [ms]", "max [ms]"}};
  for (const auto& row : telemetry.metrics.rows()) {
    if (row.kind != "histogram" || row.hist.count == 0) continue;
    stages.add_row({row.name, std::to_string(row.hist.count),
                    TextTable::num(row.hist.mean, 3),
                    TextTable::num(row.hist.p50, 3),
                    TextTable::num(row.hist.p95, 3),
                    TextTable::num(row.hist.p99, 3),
                    TextTable::num(row.hist.max, 3)});
  }
  std::cout << "\nPer-stage latency:\n" << stages.render();

  // 4. Filter health at the end of the replay.
  const telemetry::FilterHealth& health = synpf.filter().health();
  TextTable health_table{{"health signal", "value"}};
  health_table.add_row({"ESS", TextTable::num(health.ess, 1)});
  health_table.add_row({"ESS fraction", TextTable::num(health.ess_fraction, 3)});
  health_table.add_row(
      {"weight entropy [nats]", TextTable::num(health.weight_entropy, 3)});
  health_table.add_row(
      {"normalized entropy", TextTable::num(health.normalized_entropy, 3)});
  health_table.add_row(
      {"max weight share", TextTable::num(health.max_weight_share, 4)});
  health_table.add_row(
      {"resamples", std::to_string(health.resample_count)});
  health_table.add_row(
      {"last pose jump [m]", TextTable::num(health.pose_jump_m, 4)});
  std::cout << "\nFilter health (last update):\n" << health_table.render();

  // 5. Recovery layer: final state, transition counters, actions taken.
  auto counter = [&](const char* name) -> std::uint64_t {
    const telemetry::Counter* c = telemetry.metrics.find_counter(name);
    return c != nullptr ? c->value() : 0;
  };
  TextTable recovery_table{{"recovery signal", "value"}};
  recovery_table.add_row(
      {"state", recovery::to_string(supervised.state())});
  recovery_table.add_row(
      {"-> SUSPECT", std::to_string(counter("recovery.to_suspect"))});
  recovery_table.add_row(
      {"-> DIVERGED", std::to_string(counter("recovery.to_diverged"))});
  recovery_table.add_row(
      {"-> RECOVERING", std::to_string(counter("recovery.to_recovering"))});
  recovery_table.add_row(
      {"-> HEALTHY", std::to_string(counter("recovery.to_healthy"))});
  recovery_table.add_row(
      {"injections", std::to_string(counter("recovery.injections"))});
  recovery_table.add_row(
      {"global relocs", std::to_string(counter("recovery.global_relocs"))});
  recovery_table.add_row(
      {"blackouts", std::to_string(counter("recovery.blackouts"))});
  if (const telemetry::Histogram* ttr =
          telemetry.metrics.find_histogram("recovery.time_to_relocalize_s");
      ttr != nullptr && ttr->count() > 0) {
    recovery_table.add_row(
        {"time to relocalize [s]", TextTable::num(ttr->mean(), 2)});
  }
  std::cout << "\nDivergence recovery:\n" << recovery_table.render();

  // 6. The event timeline of the kidnap. Debug-severity events (every
  //    resample) are summarized, everything else is printed verbatim —
  //    this is the same journal a flight-recorder black box snapshots.
  auto print_timeline = [](const char* title,
                           const telemetry::EventLog& log) {
    std::uint64_t debug_count = 0;
    std::cout << "\n" << title << " (" << log.total() << " events, "
              << log.dropped() << " dropped):\n";
    for (const telemetry::Event& event : log.events()) {
      if (event.severity == telemetry::EventSeverity::kDebug) {
        ++debug_count;
        continue;
      }
      std::printf("  [%8.3f s] %-8s %-10s %s", event.t,
                  telemetry::to_string(event.severity),
                  telemetry::to_string(event.category), event.code.c_str());
      for (const auto& [key, value] : event.data.members()) {
        std::cout << "  " << key << "="
                  << (value.is_string() ? value.as_string() : value.dump(0));
      }
      std::cout << "\n";
    }
    if (debug_count > 0) {
      std::cout << "  (+ " << debug_count << " debug events elided)\n";
    }
  };
  print_timeline("Closed-loop harness events (recording run)",
                 recording_telemetry.events);
  print_timeline("Filter + recovery events (supervised replay)",
                 telemetry.events);

  // 7. Export: Chrome trace JSON + metrics CSV + event journal NDJSON.
  const bool json_ok = telemetry.trace.write_chrome_trace("telemetry_trace.json");
  const bool csv_ok = telemetry.metrics.write_csv("telemetry_metrics.csv");
  std::remove("telemetry_events.ndjson");  // write_ndjson appends
  const bool events_ok =
      telemetry.events.write_ndjson("telemetry_events.ndjson");
  std::cout << "\n"
            << (json_ok ? "wrote telemetry_trace.json ("
                        : "FAILED to write telemetry_trace.json (")
            << telemetry.trace.size() << " spans, " << telemetry.trace.dropped()
            << " dropped) — open in chrome://tracing or ui.perfetto.dev\n"
            << (csv_ok ? "wrote" : "FAILED to write")
            << " telemetry_metrics.csv\n"
            << (events_ok ? "wrote telemetry_events.ndjson ("
                          : "FAILED to write telemetry_events.ndjson (")
            << telemetry.events.size() << " events)\n";
  return json_ok && csv_ok && events_ok ? 0 : 1;
}
