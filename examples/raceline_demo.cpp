/// \file raceline_demo.cpp
/// \brief Racing-line optimization demo: compute the minimum-curvature
/// "ideal race line" for the test track, compare its geometry against the
/// centerline, then race SynPF on both and report the lap-time gain.
///
/// The paper's lateral-error metric is defined "with respect to the ideal
/// race line"; this example shows how that line is produced and what it
/// buys — flatter corners mean higher profile speeds, and the localization
/// harness confirms the car actually realizes them.
///
/// Build & run:  ./build/examples/raceline_demo [laps]

#include <cstdlib>
#include <iostream>
#include <memory>

#include "common/polyline.hpp"
#include "core/synpf.hpp"
#include "eval/experiment.hpp"
#include "eval/table.hpp"
#include "gridmap/track_generator.hpp"
#include "track/raceline_optimizer.hpp"

int main(int argc, char** argv) {
  using namespace srl;

  const int laps = argc > 1 ? std::atoi(argv[1]) : 2;
  const Track track = TrackGenerator::test_track();
  auto map = std::make_shared<const OccupancyGrid>(track.grid);
  const LidarConfig lidar{};

  // 1. Optimize the line.
  std::cout << "Optimizing the race line...\n";
  const RacelineOptimizerResult opt =
      optimize_raceline(track.centerline, track.half_width);

  double center_max_kappa = 0.0;
  for (double k : curvature_closed(track.centerline)) {
    center_max_kappa = std::max(center_max_kappa, std::abs(k));
  }
  TextTable geo{{"line", "length [m]", "max |curvature| [1/m]",
                 "min corner radius [m]"}};
  geo.add_row({"centerline",
               TextTable::num(polyline_length(track.centerline, true), 1),
               TextTable::num(center_max_kappa, 3),
               TextTable::num(1.0 / center_max_kappa, 2)});
  geo.add_row({"optimized",
               TextTable::num(polyline_length(opt.line, true), 1),
               TextTable::num(opt.max_abs_curvature, 3),
               TextTable::num(1.0 / opt.max_abs_curvature, 2)});
  std::cout << geo.render() << "optimizer: cost "
            << TextTable::num(opt.initial_cost, 1) << " -> "
            << TextTable::num(opt.final_cost, 1) << " in " << opt.sweeps
            << " sweeps\n\n";

  // 2. Race both lines with SynPF under nominal grip.
  const auto race = [&](const std::vector<Vec2>& line) {
    ExperimentConfig cfg;
    cfg.laps = laps;
    cfg.mu = 0.76;
    cfg.raceline_override = line;
    ExperimentRunner runner{track, cfg};
    SynPfConfig pf_cfg;
    pf_cfg.range = RangeMethodKind::kCddt;
    SynPf pf{pf_cfg, map, lidar};
    return runner.run(pf);
  };
  std::cout << "Racing the centerline..." << std::flush;
  const ExperimentResult on_center = race({});
  std::cout << " done\nRacing the optimized line..." << std::flush;
  const ExperimentResult on_optimized = race(opt.line);
  std::cout << " done\n\n";

  TextTable table{{"metric", "centerline", "optimized line"}};
  table.add_row({"lap time mean [s]", TextTable::num(on_center.lap_time_mean),
                 TextTable::num(on_optimized.lap_time_mean)});
  table.add_row({"lateral error [cm]",
                 TextTable::num(on_center.lateral_mean_cm, 2),
                 TextTable::num(on_optimized.lateral_mean_cm, 2)});
  table.add_row({"pose RMSE [cm]",
                 TextTable::num(on_center.pose_rmse_m * 100.0, 2),
                 TextTable::num(on_optimized.pose_rmse_m * 100.0, 2)});
  table.add_row({"crashed", on_center.crashed ? "yes" : "no",
                 on_optimized.crashed ? "yes" : "no"});
  std::cout << table.render();

  const double gain = on_center.lap_time_mean - on_optimized.lap_time_mean;
  std::cout << "\nlap-time gain from the optimized line: "
            << TextTable::num(gain, 3) << " s/lap\n";
  return on_optimized.completed ? 0 : 1;
}
