/// \file quickstart.cpp
/// \brief Minimal end-to-end use of the library: generate a race track,
/// build the SynPF localizer over its map, race a few laps with the
/// closed-loop harness, and print the Table-I style metrics.
///
/// Build & run:  ./build/examples/quickstart [laps]

#include <cstdlib>
#include <iostream>

#include "core/synpf.hpp"
#include "eval/experiment.hpp"
#include "eval/table.hpp"
#include "gridmap/track_generator.hpp"

int main(int argc, char** argv) {
  using namespace srl;

  const int laps = argc > 1 ? std::atoi(argv[1]) : 3;

  // 1. A corridor-like test track (the synthetic stand-in for the paper's
  //    physical test track) and its occupancy-grid map.
  const Track track = TrackGenerator::test_track();
  std::cout << "Track: " << track.grid.width() << " x " << track.grid.height()
            << " cells @ " << track.grid.resolution() << " m, centerline "
            << track.centerline.size() << " points\n";

  // 2. SynPF over the map: TUM motion model + boxed scanline layout + LUT
  //    ray casting (the GPU-less configuration from the paper).
  const LidarConfig lidar{};
  SynPfConfig cfg;
  cfg.filter.n_particles = 1500;
  auto map = std::make_shared<const OccupancyGrid>(track.grid);
  std::cout << "Building SynPF (LUT precompute)...\n";
  SynPf synpf{cfg, map, lidar};

  // 3. Closed-loop race: the pure-pursuit controller is steered by SynPF's
  //    estimate, under nominal (high-quality odometry) grip.
  ExperimentConfig exp;
  exp.laps = laps;
  exp.mu = 0.76;  // nominal grip
  ExperimentRunner runner{track, exp};
  std::cout << "Racing " << laps << " timed laps...\n";
  const ExperimentResult result = runner.run(synpf);

  TextTable table{{"metric", "value"}};
  table.add_row({"laps completed", std::to_string(result.lap_times.size())});
  table.add_row({"lap time mean [s]", TextTable::num(result.lap_time_mean)});
  table.add_row({"lap time std [s]", TextTable::num(result.lap_time_std)});
  table.add_row({"lateral error mean [cm]",
                 TextTable::num(result.lateral_mean_cm)});
  table.add_row({"scan alignment [%]", TextTable::num(result.scan_alignment, 1)});
  table.add_row({"pose RMSE [m]", TextTable::num(result.pose_rmse_m)});
  table.add_row({"scan update [ms]", TextTable::num(result.mean_update_ms)});
  table.add_row({"CPU load [%]", TextTable::num(result.load_percent, 2)});
  table.add_row({"crashed", result.crashed ? "yes" : "no"});
  std::cout << table.render();

  return result.completed ? 0 : 1;
}
