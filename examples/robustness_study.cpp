/// \file robustness_study.cpp
/// \brief The paper's experiment in miniature — and its practical upshot:
/// "determine a priori to a race which kind of localization algorithm
/// would be most suited for the given case" (Sec. IV).
///
/// Races both localizers on the test track under a grip level you choose,
/// prints the Table-I style metrics side by side, and issues the paper's
/// recommendation based on the measured robustness.
///
/// Build & run:  ./build/examples/robustness_study [mu] [laps]
///   mu:   tire grip coefficient (default 0.55 — taped tires;
///         nominal rubber is 0.76)
///   laps: timed laps (default 3)

#include <cstdlib>
#include <iostream>
#include <memory>

#include "core/synpf.hpp"
#include "eval/experiment.hpp"
#include "eval/table.hpp"
#include "gridmap/track_generator.hpp"
#include "slam/pure_localization.hpp"

int main(int argc, char** argv) {
  using namespace srl;

  const double mu = argc > 1 ? std::atof(argv[1]) : 0.55;
  const int laps = argc > 2 ? std::atoi(argv[2]) : 3;

  const Track track = TrackGenerator::test_track();
  auto map = std::make_shared<const OccupancyGrid>(track.grid);
  const LidarConfig lidar{};

  ExperimentConfig cfg;
  cfg.mu = mu;
  cfg.laps = laps;
  ExperimentRunner runner{track, cfg};

  std::cout << "robustness_study: grip mu = " << mu << " ("
            << (mu >= 0.7 ? "high-quality" : "low-quality")
            << " odometry regime), " << laps << " timed laps\n\n";

  SynPfConfig pf_cfg;
  pf_cfg.range = RangeMethodKind::kCddt;
  SynPf synpf{pf_cfg, map, lidar};
  CartoLocalizer carto{PureLocalizationOptions{}, map, lidar};

  std::cout << "racing Cartographer (CartoLite)..." << std::flush;
  const ExperimentResult rc = runner.run(carto);
  std::cout << " done\nracing SynPF..." << std::flush;
  const ExperimentResult rs = runner.run(synpf);
  std::cout << " done\n\n";

  TextTable table{{"metric", "Cartographer", "SynPF"}};
  const auto row = [&](const std::string& name, double a, double b,
                       int digits = 3) {
    table.add_row({name, TextTable::num(a, digits),
                   TextTable::num(b, digits)});
  };
  row("lap time mean [s]", rc.lap_time_mean, rs.lap_time_mean);
  row("lap time std [s]", rc.lap_time_std, rs.lap_time_std);
  row("lateral error [cm]", rc.lateral_mean_cm, rs.lateral_mean_cm);
  row("scan alignment [%]", rc.scan_alignment, rs.scan_alignment, 1);
  row("pose RMSE [cm]", rc.pose_rmse_m * 100.0, rs.pose_rmse_m * 100.0, 2);
  row("scan update [ms]", rc.mean_update_ms, rs.mean_update_ms, 2);
  row("CPU load [%]", rc.load_percent, rs.load_percent, 2);
  row("odometry drift [m/lap]", rc.odom_drift_m_per_lap,
      rs.odom_drift_m_per_lap, 2);
  table.add_row({"crashed", rc.crashed ? "yes" : "no",
                 rs.crashed ? "yes" : "no"});
  std::cout << table.render() << "\n";

  const bool synpf_better = rs.lateral_mean_cm < rc.lateral_mean_cm &&
                            !rs.crashed;
  std::cout << "recommendation for this grip level: run "
            << (synpf_better ? "SynPF (MCL)" : "Cartographer (pose-graph)")
            << "\n(paper: pose-graph SLAM under nominal grip, SynPF when "
               "odometry deteriorates)\n";
  return rc.completed || rs.completed ? 0 : 1;
}
