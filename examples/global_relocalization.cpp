/// \file global_relocalization.cpp
/// \brief The kidnapped-robot demo: SynPF starts with NO pose prior — its
/// particles spread uniformly over the whole track — and must converge to
/// the car's true pose from LiDAR evidence alone while the car drives.
///
/// This exercises the MCL capability pose-graph localizers lack natively:
/// global localization. The example prints the filter's convergence over
/// time (cloud spread, estimate error) and exits successfully once the
/// estimate locks onto the truth.
///
/// Build & run:  ./build/examples/global_relocalization

#include <iostream>
#include <memory>

#include "common/angles.hpp"
#include "core/synpf.hpp"
#include "eval/table.hpp"
#include "gridmap/track_generator.hpp"
#include "range/ray_marching.hpp"
#include "sensor/lidar_sim.hpp"
#include "track/raceline.hpp"

int main() {
  using namespace srl;

  const Track track = TrackGenerator::test_track();
  auto map = std::make_shared<const OccupancyGrid>(track.grid);
  const LidarConfig lidar{};
  const Raceline line{track.centerline};

  // A large cloud for the global phase (MCL needs coverage of the whole
  // corridor x heading space).
  SynPfConfig cfg;
  cfg.filter.n_particles = 8000;
  cfg.range = RangeMethodKind::kCddt;
  SynPf pf{cfg, map, lidar};

  // The car is actually at an arbitrary spot along the lap.
  const double s0 = 0.37 * line.length();
  const Vec2 p0 = line.position(s0);
  Pose2 truth{p0.x, p0.y, line.heading(s0)};

  // Kidnapped: the filter knows nothing — uniform over free space.
  pf.filter().init_global(*map);
  std::cout << "Kidnapped-robot start: " << cfg.filter.n_particles
            << " particles uniform over the track, car actually at ("
            << TextTable::num(truth.x, 2) << ", " << TextTable::num(truth.y, 2)
            << ")\n\n";

  LidarSim sim{lidar, std::make_shared<RayMarching>(map, lidar.max_range),
               LidarNoise{}};
  Rng rng{5};

  TextTable table{{"t [s]", "err [m]", "heading err [rad]", "spread sx [m]",
                   "ESS"}};
  const double v = 2.0;
  const double dt = 0.025;  // one scan interval
  double t = 0.0;
  double converged_at = -1.0;
  double s = s0;
  for (int step = 0; step < 160; ++step) {
    // Drive along the centerline.
    const double kappa = line.curvature(s);
    const Twist2 twist{v, 0.0, v * kappa};
    truth = integrate_twist(truth, twist, dt).normalized();
    s = line.wrap(s + v * dt);
    t += dt;

    OdometryDelta odom;
    odom.delta = integrate_twist(Pose2{}, twist, dt);
    odom.v = v;
    odom.dt = dt;
    pf.on_odometry(odom);
    pf.on_scan(sim.scan(truth, twist, t, rng));

    const Pose2 est = pf.filter().estimate();
    const PoseCovariance cov = pf.filter().covariance();
    const double err = std::hypot(est.x - truth.x, est.y - truth.y);
    if (step % 16 == 0) {
      table.add_row({TextTable::num(t, 2), TextTable::num(err, 3),
                     TextTable::num(angle_dist(est.theta, truth.theta), 3),
                     TextTable::num(std::sqrt(cov.xx), 3),
                     TextTable::num(pf.filter().effective_sample_size(), 0)});
    }
    if (converged_at < 0.0 && err < 0.25 && std::sqrt(cov.xx) < 0.4) {
      converged_at = t;
    }
  }
  std::cout << table.render() << "\n";

  const Pose2 est = pf.filter().estimate();
  const double final_err = std::hypot(est.x - truth.x, est.y - truth.y);
  if (converged_at >= 0.0 && final_err < 0.3) {
    std::cout << "converged to the true pose after "
              << TextTable::num(converged_at, 2) << " s of driving (err "
              << TextTable::num(final_err, 3) << " m)\n";
    return 0;
  }
  std::cout << "did NOT converge (final err " << TextTable::num(final_err, 2)
            << " m)\n";
  return 1;
}
