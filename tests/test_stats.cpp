#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/angles.hpp"
#include "common/rng.hpp"

namespace srl {
namespace {

TEST(RunningStats, MatchesBatchMoments) {
  const std::vector<double> xs = {1.0, 2.0, 2.5, -4.0, 7.25, 0.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), -4.0);
  EXPECT_DOUBLE_EQ(rs.max(), 7.25);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0U);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  rs.add(5.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsConcatenation) {
  Rng rng{99};
  RunningStats a;
  RunningStats b;
  RunningStats whole;
  for (int i = 0; i < 100; ++i) {
    const double x = rng.gaussian(2.0, 3.0);
    (i < 40 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2U);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2U);
  EXPECT_NEAR(empty.mean(), 2.0, 1e-12);
}

TEST(Percentile, InterpolatesSorted) {
  const std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};  // sorted: 1 2 3 4
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 1.75);
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

TEST(CircularMean, WrapsCorrectly) {
  // Angles straddling the wrap average to pi, not 0.
  const std::vector<double> xs = {kPi - 0.1, -kPi + 0.1};
  EXPECT_NEAR(angle_dist(circular_mean(xs), kPi), 0.0, 1e-9);
}

TEST(CircularMean, MatchesArithmeticAwayFromWrap) {
  const std::vector<double> xs = {0.1, 0.2, 0.3};
  EXPECT_NEAR(circular_mean(xs), 0.2, 1e-9);
}

TEST(WeightedCircularMean, RespectsWeights) {
  const std::vector<double> xs = {0.0, 1.0};
  const std::vector<double> heavy_first = {10.0, 0.001};
  EXPECT_NEAR(weighted_circular_mean(xs, heavy_first), 0.0, 1e-3);
}

TEST(CircularStddev, ZeroForConcentratedLargeForUniform) {
  const std::vector<double> tight = {0.5, 0.5, 0.5};
  EXPECT_NEAR(circular_stddev(tight), 0.0, 1e-9);
  std::vector<double> spread;
  for (int i = 0; i < 360; ++i) spread.push_back(deg2rad(i));
  EXPECT_GT(circular_stddev(spread), 2.0);
}

TEST(CircularStddev, MatchesLinearForSmallSpread) {
  Rng rng{7};
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.gaussian(0.05));
  EXPECT_NEAR(circular_stddev(xs), 0.05, 0.003);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h{0.0, 10.0, 10};
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 9
  h.add(-5.0);  // clamped to bin 0
  h.add(15.0);  // clamped to bin 9
  EXPECT_EQ(h.count(), 4U);
  EXPECT_EQ(h.bin_count(0), 2U);
  EXPECT_EQ(h.bin_count(9), 2U);
  EXPECT_NEAR(h.bin_center(0), 0.5, 1e-12);
  EXPECT_NEAR(h.bin_center(9), 9.5, 1e-12);
  EXPECT_FALSE(h.ascii().empty());
}

TEST(Rng, Deterministic) {
  Rng a{123};
  Rng b{123};
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng{5};
  RunningStats rs;
  for (int i = 0; i < 50000; ++i) rs.add(rng.gaussian(1.5, 0.5));
  EXPECT_NEAR(rs.mean(), 1.5, 0.01);
  EXPECT_NEAR(rs.stddev(), 0.5, 0.01);
}

TEST(Rng, ZeroStddevGaussianIsExact) {
  Rng rng{5};
  EXPECT_DOUBLE_EQ(rng.gaussian(0.0), 0.0);
  EXPECT_DOUBLE_EQ(rng.gaussian(3.0, 0.0), 3.0);
}

TEST(Rng, UniformIntBounds) {
  Rng rng{11};
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
  }
}

}  // namespace
}  // namespace srl
