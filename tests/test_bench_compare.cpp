#include "eval/bench_compare.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/json.hpp"
#include "eval/benchmark_json.hpp"
#include "eval/frontier/frontier_json.hpp"
#include "eval/throughput_json.hpp"

namespace srl {
namespace {

BenchDocument make_doc() {
  BenchDocument doc;
  doc.provenance.compiler = "testc 1.0";
  doc.provenance.build = "release";
  doc.provenance.git_sha = "deadbeef";
  doc.provenance.seed = 1234;
  doc.provenance.fault_seed = 0x7a017ULL;
  doc.provenance.laps = 2;
  doc.provenance.n_particles = 800;
  doc.provenance.fast_mode = true;

  FaultTraceFingerprint fp;
  fp.fault = "odom_slip_ramp";
  fp.severity = 1.0;
  fp.trace_hash = 0xfeedfacecafebeefULL;  // exercises the full 64-bit width
  fp.n_scans = 400;
  fp.n_odometry = 1000;
  doc.fault_traces.push_back(fp);

  auto cell = [](const char* localizer, const char* fault, double severity,
                 double lateral_cm, double p99_ms, bool crashed) {
    ScenarioCell c;
    c.localizer = localizer;
    c.scenario.fault = fault;
    c.scenario.severity = severity;
    c.result.lateral_mean_cm = lateral_cm;
    c.result.update_p99_ms = p99_ms;
    c.result.crashed = crashed;
    c.ess_fraction_p50 = 0.31;
    return c;
  };
  doc.cells.push_back(cell("SynPF", "none", 0.0, 4.5, 6.0, false));
  doc.cells.push_back(cell("SynPF", "odom_slip_ramp", 1.0, 5.0, 6.5, false));
  doc.cells.push_back(cell("CartoLite", "none", 0.0, 8.0, 9.0, false));
  doc.cells.push_back(cell("CartoLite", "odom_slip_ramp", 1.0, 0.0, 9.0, true));

  ScenarioCell kidnap = cell("SynPF+Recovery", "kidnap", 1.0, 5.2, 6.8, false);
  kidnap.has_recovery = true;
  kidnap.recovery_success = true;
  kidnap.kidnaps = 1;
  kidnap.divergence_episodes = 1;
  kidnap.recoveries = 1;
  kidnap.time_to_reloc_mean_s = 0.4;
  kidnap.time_to_reloc_max_s = 0.4;
  kidnap.post_divergence_lateral_cm = 5.0;
  kidnap.reinjections = 1;
  kidnap.global_relocs = 1;
  kidnap.recovery_transitions = 4;
  doc.cells.push_back(kidnap);

  doc.has_headline = true;
  doc.headline.fault = "odom_slip_ramp";
  doc.headline.severity = 1.0;
  doc.headline.synpf_baseline_cm = 4.5;
  doc.headline.synpf_faulted_cm = 5.0;
  doc.headline.synpf_degradation = 5.0 / 4.5;
  doc.headline.carto_baseline_cm = 8.0;
  doc.headline.carto_crashed = true;
  doc.headline.carto_degradation = HeadlineComparison::kCrashDegradation;
  return doc;
}

TEST(BenchJson, RoundTripsThroughDisk) {
  const BenchDocument doc = make_doc();
  const std::string path = ::testing::TempDir() + "bench_roundtrip.json";
  ASSERT_TRUE(write_bench_json(path, doc));

  const std::optional<BenchDocument> back = read_bench_json(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->provenance.compiler, "testc 1.0");
  EXPECT_EQ(back->provenance.seed, 1234u);
  EXPECT_EQ(back->provenance.fault_seed, 0x7a017ULL);
  EXPECT_TRUE(back->provenance.fast_mode);
  ASSERT_EQ(back->fault_traces.size(), 1u);
  EXPECT_EQ(back->fault_traces[0].trace_hash, 0xfeedfacecafebeefULL);
  ASSERT_EQ(back->cells.size(), 5u);
  EXPECT_DOUBLE_EQ(back->cells[1].result.lateral_mean_cm, 5.0);
  EXPECT_TRUE(back->cells[3].result.crashed);
  // The v2 writer emits the recovery block for every cell, so read-back
  // always carries an opinion (the in-memory default is "no opinion").
  EXPECT_TRUE(back->cells[1].has_recovery);
  EXPECT_TRUE(back->cells[4].has_recovery);
  EXPECT_TRUE(back->cells[4].recovery_success);
  EXPECT_EQ(back->cells[4].kidnaps, 1);
  EXPECT_EQ(back->cells[4].recoveries, 1);
  EXPECT_DOUBLE_EQ(back->cells[4].time_to_reloc_mean_s, 0.4);
  EXPECT_EQ(back->cells[4].global_relocs, 1u);
  ASSERT_TRUE(back->has_headline);
  EXPECT_TRUE(back->headline.carto_crashed);
  EXPECT_TRUE(back->headline.synpf_flat());
  std::remove(path.c_str());
}

TEST(BenchJson, AcceptsSchemaV1WithoutRecoveryBlocks) {
  // A committed baseline from before the recovery schema bump must still
  // parse; its cells carry no recovery opinion.
  json::Value root = bench_to_json(make_doc());
  root.set("schema", json::Value::string(kBenchRobustnessSchemaV1));
  const std::optional<BenchDocument> doc = bench_from_json(root);
  ASSERT_TRUE(doc.has_value());
  ASSERT_EQ(doc->cells.size(), 5u);
  // The v2 writer emitted recovery blocks, so has_recovery survives — the
  // schema string alone must not reject or strip them.
  EXPECT_TRUE(doc->cells[4].has_recovery);
}

TEST(BenchJson, CellWithoutRecoveryBlockParsesAsNoOpinion) {
  json::Value root = bench_to_json(make_doc());
  const json::Value* cells = root.find("cells");
  ASSERT_NE(cells, nullptr);
  ASSERT_EQ(cells->size(), 5u);
  // Rebuild the cells array with the recovery keys stripped from the
  // kidnap cell, as a v1 writer would have emitted it.
  const auto is_recovery_key = [](const std::string& key) {
    for (const char* k :
         {"recovery_success", "kidnaps", "divergence_episodes", "recoveries",
          "time_to_reloc_mean_s", "time_to_reloc_max_s",
          "post_divergence_lateral_cm", "reinjections", "global_relocs",
          "recovery_transitions"}) {
      if (key == k) return true;
    }
    return false;
  };
  json::Value stripped_cells = json::Value::array();
  for (std::size_t i = 0; i < cells->size(); ++i) {
    const json::Value& cell = *cells->at(i);
    if (i != 4) {
      stripped_cells.push_back(cell);
      continue;
    }
    json::Value stripped = json::Value::object();
    for (const auto& [key, value] : cell.members()) {
      if (!is_recovery_key(key)) stripped.set(key, value);
    }
    stripped_cells.push_back(stripped);
  }
  root.set("cells", stripped_cells);
  const std::optional<BenchDocument> doc = bench_from_json(root);
  ASSERT_TRUE(doc.has_value());
  EXPECT_FALSE(doc->cells[4].has_recovery);
  EXPECT_TRUE(doc->cells[4].recovery_success);  // default: no regression
}

TEST(BenchJson, RejectsForeignSchema) {
  json::Value root = json::Value::object();
  root.set("schema", json::Value::string("someone/elses/2"));
  root.set("cells", json::Value::array());
  EXPECT_FALSE(bench_from_json(root).has_value());
}

TEST(BenchCompare, SelfCompareIsCleanEvenAtZeroTolerance) {
  const BenchDocument doc = make_doc();
  CompareThresholds strict;
  strict.lateral_tol_frac = 0.0;
  strict.lateral_slack_cm = 0.0;
  strict.p99_tol_frac = 0.0;
  strict.p99_slack_ms = 0.0;
  strict.require_hash_match = true;
  const CompareReport report = compare_bench(doc, doc, strict);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.cells_compared, 5);
  EXPECT_EQ(report.hashes_compared, 1);
}

TEST(BenchCompare, PerturbationBeyondThresholdNamesTheMetric) {
  const BenchDocument baseline = make_doc();
  BenchDocument candidate = make_doc();
  // 4.5 -> 9.0 cm: past the default 10% + 1 cm allowance.
  candidate.cells[0].result.lateral_mean_cm = 9.0;
  const CompareReport report = compare_bench(baseline, candidate, {});
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].cell, "SynPF/none@0");
  EXPECT_EQ(report.failures[0].metric, "lateral_mean_cm");
  EXPECT_DOUBLE_EQ(report.failures[0].candidate, 9.0);
  EXPECT_NE(report.failures[0].describe().find("lateral_mean_cm"),
            std::string::npos);
}

TEST(BenchCompare, WithinThresholdPasses) {
  const BenchDocument baseline = make_doc();
  BenchDocument candidate = make_doc();
  candidate.cells[0].result.lateral_mean_cm = 4.9;  // < 4.5 * 1.1 + 1.0
  candidate.cells[0].result.update_p99_ms = 11.0;   // < 6.0 * 2.0 + 2.0
  EXPECT_TRUE(compare_bench(baseline, candidate, {}).ok());
}

TEST(BenchCompare, MissingCellIsARegression) {
  const BenchDocument baseline = make_doc();
  BenchDocument candidate = make_doc();
  candidate.cells.pop_back();
  const CompareReport report = compare_bench(baseline, candidate, {});
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].metric, "missing_cell");
}

TEST(BenchCompare, NewCrashIsARegressionUnlessAllowed) {
  const BenchDocument baseline = make_doc();
  BenchDocument candidate = make_doc();
  candidate.cells[1].result.crashed = true;
  CompareThresholds thresholds;
  const CompareReport report = compare_bench(baseline, candidate, thresholds);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].metric, "crashed");
  EXPECT_EQ(report.failures[0].cell, "SynPF/odom_slip_ramp@1");

  thresholds.allow_new_crashes = true;
  EXPECT_TRUE(compare_bench(baseline, candidate, thresholds).ok());
}

TEST(BenchCompare, LostRecoveryIsARegression) {
  const BenchDocument baseline = make_doc();
  BenchDocument candidate = make_doc();
  candidate.cells[4].recovery_success = false;
  const CompareReport report = compare_bench(baseline, candidate, {});
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].cell, "SynPF+Recovery/kidnap@1");
  EXPECT_EQ(report.failures[0].metric, "recovery_success");

  CompareThresholds off;
  off.gate_recovery = false;
  EXPECT_TRUE(compare_bench(baseline, candidate, off).ok());
}

TEST(BenchCompare, CrashedCandidateAlsoLosesRecovery) {
  // A crash in a recovery cell is both a crash regression and a lost
  // recovery: the gate must not be masked by the crash path.
  const BenchDocument baseline = make_doc();
  BenchDocument candidate = make_doc();
  candidate.cells[4].result.crashed = true;
  candidate.cells[4].recovery_success = false;
  const CompareReport report = compare_bench(baseline, candidate, {});
  bool saw_recovery = false;
  for (const CompareFailure& f : report.failures) {
    if (f.metric == "recovery_success") saw_recovery = true;
  }
  EXPECT_TRUE(saw_recovery);
  EXPECT_FALSE(report.ok());
}

TEST(BenchCompare, TimeToRelocalizeGateBindsPastTolerance) {
  const BenchDocument baseline = make_doc();
  BenchDocument candidate = make_doc();
  // Limit: 0.4 * (1 + 0.5) + 0.5 = 1.1 s.
  candidate.cells[4].time_to_reloc_mean_s = 1.0;
  EXPECT_TRUE(compare_bench(baseline, candidate, {}).ok());

  candidate.cells[4].time_to_reloc_mean_s = 2.0;
  const CompareReport report = compare_bench(baseline, candidate, {});
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].metric, "time_to_reloc_mean_s");
  EXPECT_DOUBLE_EQ(report.failures[0].limit, 1.1);
}

TEST(BenchCompare, SchemaV1BaselineSkipsRecoveryGates) {
  // A baseline parsed from a pre-recovery document carries no recovery
  // block; the candidate's recovery state cannot "regress" from it.
  BenchDocument baseline = make_doc();
  baseline.cells[4].has_recovery = false;
  BenchDocument candidate = make_doc();
  candidate.cells[4].recovery_success = false;
  candidate.cells[4].time_to_reloc_mean_s = 99.0;
  EXPECT_TRUE(compare_bench(baseline, candidate, {}).ok());
}

TEST(BenchCompare, HashMismatchFailsOnlyWhenRequired) {
  const BenchDocument baseline = make_doc();
  BenchDocument candidate = make_doc();
  candidate.fault_traces[0].trace_hash ^= 1;  // one bit: still a regression
  EXPECT_TRUE(compare_bench(baseline, candidate, {}).ok());

  CompareThresholds thresholds;
  thresholds.require_hash_match = true;
  const CompareReport report = compare_bench(baseline, candidate, thresholds);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].metric, "trace_hash");
  EXPECT_EQ(report.failures[0].cell, "fault_traces/odom_slip_ramp@1");
}

// ---------------------------------------------------------------------------
// Frontier artifact (`srl.frontier/1`) round-trip & regression gate
// ---------------------------------------------------------------------------

frontier::FrontierDocument make_frontier_doc() {
  frontier::FrontierDocument doc;
  doc.provenance.compiler = "testc 1.0";
  doc.provenance.build = "release";
  doc.provenance.fast_mode = true;
  doc.result.seed = 0xF407;
  doc.result.fault_seed = 0x7a017ULL;
  doc.result.bisect_iterations = 5;
  doc.result.n_particles = 800;

  auto point = [](const char* localizer, const char* axis, double lo,
                  double hi, bool censored) {
    frontier::FrontierPoint p;
    p.localizer = localizer;
    p.axis = axis;
    p.track_class = "club";
    p.censored = censored;
    p.bracket_lo = lo;
    p.bracket_hi = hi;
    p.breaking_severity = censored ? 0.0 : hi;
    p.breaking_index = censored ? 0u : 0x1234u;
    p.track_length_m = 42.5;
    p.track_max_abs_curvature = 0.385;
    frontier::FrontierEvaluation eval;
    eval.index = 0x1234u;
    eval.severity = hi;
    eval.failed = !censored;
    eval.lateral_mean_cm = 7.25;
    eval.final_pose_error_m = 1.5;
    p.evaluations.push_back(eval);
    if (!censored) p.blackboxes.push_back("blackbox/frontier_0.json");
    return p;
  };
  doc.result.points.push_back(
      point("SynPF", "odom_slip_ramp", 0.875, 0.90625, false));
  doc.result.points.push_back(
      point("CartoLite", "odom_slip_ramp", 0.25, 0.28125, false));
  doc.result.points.push_back(point("SynPF", "lidar_dropout", 1.0, 1.0, true));

  doc.has_headline = true;
  doc.headline.axis = "odom_slip_ramp";
  doc.headline.track_class = "club";
  doc.headline.synpf_breaking = 0.90625;
  doc.headline.synpf_bracket_width = 0.03125;
  doc.headline.carto_breaking = 0.28125;
  doc.headline.carto_bracket_width = 0.03125;
  return doc;
}

TEST(FrontierJson, RoundTripsThroughDisk) {
  const frontier::FrontierDocument doc = make_frontier_doc();
  const std::string path = ::testing::TempDir() + "frontier_roundtrip.json";
  ASSERT_TRUE(frontier::write_frontier_json(path, doc));

  const std::optional<frontier::FrontierDocument> back =
      frontier::read_frontier_json(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->result.seed, 0xF407u);
  EXPECT_EQ(back->result.fault_seed, 0x7a017ULL);
  EXPECT_EQ(back->result.bisect_iterations, 5);
  ASSERT_EQ(back->result.points.size(), 3u);
  // Dyadic severities survive the writer bit-for-bit — the determinism
  // self-compare depends on this.
  EXPECT_EQ(back->result.points[0].bracket_lo, 0.875);
  EXPECT_EQ(back->result.points[0].bracket_hi, 0.90625);
  EXPECT_EQ(back->result.points[0].breaking_index, 0x1234u);
  EXPECT_TRUE(back->result.points[2].censored);
  ASSERT_EQ(back->result.points[0].evaluations.size(), 1u);
  EXPECT_EQ(back->result.points[0].evaluations[0].lateral_mean_cm, 7.25);
  ASSERT_EQ(back->result.points[0].blackboxes.size(), 1u);
  ASSERT_TRUE(back->has_headline);
  EXPECT_EQ(back->headline.synpf_breaking, 0.90625);
  std::remove(path.c_str());
}

TEST(FrontierJson, RejectsForeignSchema) {
  json::Value root = frontier::frontier_to_json(make_frontier_doc());
  root.set("schema", json::Value::string("someone/elses/1"));
  EXPECT_FALSE(frontier::frontier_from_json(root).has_value());
}

TEST(FrontierCompare, SelfCompareIsCleanEvenInExactMode) {
  const frontier::FrontierDocument doc = make_frontier_doc();
  frontier::FrontierCompareThresholds exact;
  exact.require_identical = true;
  const CompareReport report = frontier::compare_frontier(doc, doc, exact);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.cells_compared, 3);
}

TEST(FrontierCompare, GateFiresWhenTheFrontierRecedes) {
  // The synthetic regression the CI gate must catch: SynPF's slip frontier
  // dropping from 0.90625 to 0.5 means the stack now breaks at a severity
  // it used to survive.
  const frontier::FrontierDocument baseline = make_frontier_doc();
  frontier::FrontierDocument candidate = make_frontier_doc();
  candidate.result.points[0].breaking_severity = 0.5;
  candidate.result.points[0].bracket_hi = 0.5;
  const CompareReport report =
      frontier::compare_frontier(baseline, candidate, {});
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].cell, "SynPF/odom_slip_ramp/club#0");
  EXPECT_EQ(report.failures[0].metric, "breaking_severity");
  EXPECT_DOUBLE_EQ(report.failures[0].candidate, 0.5);

  // A generous severity tolerance absorbs the drop.
  frontier::FrontierCompareThresholds loose;
  loose.severity_tol = 0.5;
  EXPECT_TRUE(frontier::compare_frontier(baseline, candidate, loose).ok());
}

TEST(FrontierCompare, LosingACensoredPointIsARegression) {
  // Censored compares as severity 2.0: a candidate that now fails inside
  // the range regressed from "never breaks" to "breaks at 0.9".
  const frontier::FrontierDocument baseline = make_frontier_doc();
  frontier::FrontierDocument candidate = make_frontier_doc();
  candidate.result.points[2].censored = false;
  candidate.result.points[2].breaking_severity = 0.9;
  const CompareReport report =
      frontier::compare_frontier(baseline, candidate, {});
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].metric, "breaking_severity");
  EXPECT_DOUBLE_EQ(report.failures[0].baseline, frontier::kCensoredBreaking);
}

TEST(FrontierCompare, ImprovementIsNotARegression) {
  const frontier::FrontierDocument baseline = make_frontier_doc();
  frontier::FrontierDocument candidate = make_frontier_doc();
  candidate.result.points[1].breaking_severity = 0.75;
  candidate.result.points[1].bracket_hi = 0.75;
  EXPECT_TRUE(frontier::compare_frontier(baseline, candidate, {}).ok());
}

TEST(FrontierCompare, MissingPointIsARegression) {
  const frontier::FrontierDocument baseline = make_frontier_doc();
  frontier::FrontierDocument candidate = make_frontier_doc();
  candidate.result.points.pop_back();
  const CompareReport report =
      frontier::compare_frontier(baseline, candidate, {});
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].metric, "missing_point");
}

// ---------------------------------------------------------------------------
// Throughput artifact (`srl.bench_throughput/1`) round-trip & perf gate
// ---------------------------------------------------------------------------

ThroughputDocument make_throughput_doc() {
  ThroughputDocument doc;
  doc.provenance.compiler = "testc 1.0";
  doc.provenance.build = "release";
  doc.provenance.git_sha = "deadbeef";
  doc.provenance.seed = 1234;
  doc.provenance.fast_mode = true;
  doc.simd_active = "avx2";
  doc.avx2_available = true;
  doc.n_scans = 40;
  doc.determinism_hash = 0x94a6b6be30b22475ULL;

  auto cell = [](const char* stage, const char* simd, int threads,
                 double mean_ms, double rate) {
    ThroughputCell c;
    c.stage = stage;
    c.simd = simd;
    c.particles = 1500;
    c.threads = threads;
    c.beams = 60;
    c.mean_ms = mean_ms;
    c.items_per_sec = rate;
    c.hash = 0xfeedfacecafebeefULL;  // exercises the full 64-bit width
    return c;
  };
  doc.cells.push_back(cell("weight", "scalar", 1, 0.10, 9.0e8));
  doc.cells.push_back(cell("weight", "avx2", 1, 0.05, 1.8e9));
  doc.cells.push_back(cell("update", "scalar", 1, 3.0, 3.0e7));
  doc.cells.push_back(cell("update", "avx2", 4, 2.5, 3.6e7));
  return doc;
}

TEST(ThroughputJson, RoundTripsThroughDisk) {
  const ThroughputDocument doc = make_throughput_doc();
  const std::string path = ::testing::TempDir() + "throughput_roundtrip.json";
  ASSERT_TRUE(write_throughput_json(path, doc));

  const std::optional<ThroughputDocument> back = read_throughput_json(path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->provenance.compiler, "testc 1.0");
  EXPECT_EQ(back->simd_active, "avx2");
  EXPECT_TRUE(back->avx2_available);
  EXPECT_EQ(back->n_scans, 40);
  // Hashes travel as hex strings precisely so the full 64 bits survive the
  // double-typed JSON number path.
  EXPECT_EQ(back->determinism_hash, 0x94a6b6be30b22475ULL);
  ASSERT_EQ(back->cells.size(), 4u);
  EXPECT_EQ(back->cells[1].key(), "weight simd=avx2 n=1500 t=1");
  EXPECT_EQ(back->cells[1].hash, 0xfeedfacecafebeefULL);
  EXPECT_DOUBLE_EQ(back->cells[1].items_per_sec, 1.8e9);
  EXPECT_EQ(back->cells[3].threads, 4);
  std::remove(path.c_str());
}

TEST(ThroughputJson, RejectsForeignSchema) {
  json::Value root = throughput_to_json(make_throughput_doc());
  root.set("schema", json::Value::string("someone/elses/1"));
  EXPECT_FALSE(throughput_from_json(root).has_value());
}

TEST(ThroughputCompare, SelfCompareIsCleanInStructuralHashMode) {
  const ThroughputDocument doc = make_throughput_doc();
  ThroughputThresholds strict;
  strict.structural_only = true;
  strict.require_hash_match = true;
  const CompareReport report = compare_throughput(doc, doc, strict);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.cells_compared, 4);
  EXPECT_EQ(report.hashes_compared, 4);
  EXPECT_TRUE(report.notes.empty());
}

TEST(ThroughputCompare, RateCollapseFailsPastTolerance) {
  const ThroughputDocument baseline = make_throughput_doc();
  ThroughputDocument candidate = make_throughput_doc();
  // 1.8e9 -> 3e8: below the default floor 1.8e9 * (1 - 0.5) = 9e8.
  candidate.cells[1].items_per_sec = 3.0e8;
  const CompareReport report = compare_throughput(baseline, candidate, {});
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].cell, "weight simd=avx2 n=1500 t=1");
  EXPECT_EQ(report.failures[0].metric, "items_per_sec");
  EXPECT_DOUBLE_EQ(report.failures[0].limit, 9.0e8);

  // A drop that stays above the floor passes.
  candidate.cells[1].items_per_sec = 1.0e9;
  EXPECT_TRUE(compare_throughput(baseline, candidate, {}).ok());
}

TEST(ThroughputCompare, ImprovementIsANoteNeverAFailure) {
  const ThroughputDocument baseline = make_throughput_doc();
  ThroughputDocument candidate = make_throughput_doc();
  candidate.cells[0].items_per_sec = 9.0e9;  // 10x: past the 1.5x note bar
  const CompareReport report = compare_throughput(baseline, candidate, {});
  EXPECT_TRUE(report.ok());
  ASSERT_EQ(report.notes.size(), 1u);
  EXPECT_NE(report.notes[0].find("weight simd=scalar n=1500 t=1"),
            std::string::npos);
  EXPECT_NE(report.notes[0].find("refreshing the baseline"),
            std::string::npos);
}

TEST(ThroughputCompare, MissingCellIsARegression) {
  const ThroughputDocument baseline = make_throughput_doc();
  ThroughputDocument candidate = make_throughput_doc();
  candidate.cells.erase(candidate.cells.begin());  // drop a *scalar* cell
  const CompareReport report = compare_throughput(baseline, candidate, {});
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].metric, "missing_cell");
  EXPECT_EQ(report.failures[0].cell, "weight simd=scalar n=1500 t=1");
}

TEST(ThroughputCompare, ScalarOnlyHostSkipsAvx2CellsWithANote) {
  // A baseline recorded on an AVX2 box gated against a scalar-only runner:
  // the avx2 rows are skipped loudly, the scalar rows still gate.
  const ThroughputDocument baseline = make_throughput_doc();
  ThroughputDocument candidate = make_throughput_doc();
  candidate.avx2_available = false;
  candidate.simd_active = "scalar";
  std::vector<ThroughputCell> scalar_cells;
  for (const ThroughputCell& c : candidate.cells) {
    if (c.simd != "avx2") scalar_cells.push_back(c);
  }
  candidate.cells = scalar_cells;
  const CompareReport report = compare_throughput(baseline, candidate, {});
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.cells_compared, 2);
  ASSERT_EQ(report.notes.size(), 1u);
  EXPECT_NE(report.notes[0].find("lacks AVX2"), std::string::npos);

  // But a host that *claims* AVX2 and still lacks the rows regressed.
  candidate.avx2_available = true;
  EXPECT_FALSE(compare_throughput(baseline, candidate, {}).ok());
}

TEST(ThroughputCompare, BeamsMismatchIsStructural) {
  // Rates over different work units are not comparable: a beams change is
  // a grid change, caught even when the rate happens to look fine.
  const ThroughputDocument baseline = make_throughput_doc();
  ThroughputDocument candidate = make_throughput_doc();
  candidate.cells[2].beams = 30;
  candidate.cells[2].items_per_sec = baseline.cells[2].items_per_sec;
  const CompareReport report = compare_throughput(baseline, candidate, {});
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].metric, "beams");
}

TEST(ThroughputCompare, HashMismatchFailsOnlyWhenRequired) {
  const ThroughputDocument baseline = make_throughput_doc();
  ThroughputDocument candidate = make_throughput_doc();
  candidate.cells[1].hash ^= 1;  // one bit: still a determinism break
  EXPECT_TRUE(compare_throughput(baseline, candidate, {}).ok());

  ThroughputThresholds thresholds;
  thresholds.require_hash_match = true;
  const CompareReport report =
      compare_throughput(baseline, candidate, thresholds);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].metric, "estimate_hash");
  EXPECT_EQ(report.failures[0].cell, "weight simd=avx2 n=1500 t=1");
}

TEST(FrontierCompare, ExactModeCatchesProbeSequenceDrift) {
  // Same frontier, different path: tolerant mode passes, the determinism
  // self-compare must not.
  const frontier::FrontierDocument baseline = make_frontier_doc();
  frontier::FrontierDocument candidate = make_frontier_doc();
  candidate.result.points[0].evaluations[0].lateral_mean_cm += 1e-9;
  EXPECT_TRUE(frontier::compare_frontier(baseline, candidate, {}).ok());

  frontier::FrontierCompareThresholds exact;
  exact.require_identical = true;
  const CompareReport report =
      frontier::compare_frontier(baseline, candidate, exact);
  ASSERT_EQ(report.failures.size(), 1u);
  EXPECT_EQ(report.failures[0].metric, "probe_sequence");
}

}  // namespace
}  // namespace srl
