#include "eval/experiment.hpp"

#include <gtest/gtest.h>

#include "common/angles.hpp"
#include "common/timer.hpp"

namespace srl {
namespace {

/// Localizer that dead-reckons odometry only — with noiseless sensors and
/// grippy tires it stays accurate for a couple of laps, which exercises the
/// full harness without the cost of building a real localizer.
class DeadReckoning final : public Localizer {
 public:
  void initialize(const Pose2& pose) override { pose_ = pose; }
  void on_odometry(const OdometryDelta& odom) override {
    Stopwatch watch;
    pose_ = (pose_ * odom.delta).normalized();
    load_.add_busy(watch.elapsed_s());
  }
  Pose2 on_scan(const LaserScan&) override { return pose_; }
  Pose2 pose() const override { return pose_; }
  std::string name() const override { return "DeadReckoning"; }
  double mean_scan_update_ms() const override { return load_.mean_ms(); }
  double total_busy_s() const override { return load_.busy_s(); }

 private:
  Pose2 pose_{};
  LoadAccumulator load_;
};

/// Localizer that freezes: the controller gets a stale pose and drives the
/// car into a wall — the harness must detect the crash.
class FrozenLocalizer final : public Localizer {
 public:
  void initialize(const Pose2& pose) override { pose_ = pose; }
  void on_odometry(const OdometryDelta&) override {}
  Pose2 on_scan(const LaserScan&) override { return pose_; }
  Pose2 pose() const override { return pose_; }
  std::string name() const override { return "Frozen"; }
  double mean_scan_update_ms() const override { return 0.0; }
  double total_busy_s() const override { return 0.0; }

 private:
  Pose2 pose_{};
};

ExperimentConfig quick_config() {
  ExperimentConfig cfg;
  cfg.laps = 1;
  cfg.max_sim_time = 60.0;
  // Slow and grippy: dead reckoning survives the run.
  cfg.profile.scale = 0.5;
  cfg.odom_noise.speed_noise = 0.0;
  cfg.odom_noise.steer_noise = 0.0;
  return cfg;
}

TEST(Experiment, CompletesLapsWithDeadReckoning) {
  const Track track = TrackGenerator::oval(8.0, 2.5);
  ExperimentRunner runner{track, quick_config()};
  DeadReckoning localizer;
  const ExperimentResult r = runner.run(localizer);
  EXPECT_TRUE(r.completed) << "sim time " << r.sim_time;
  ASSERT_EQ(r.lap_times.size(), 1U);
  EXPECT_GT(r.lap_times[0], 5.0);
  EXPECT_LT(r.lap_times[0], 40.0);
  // Dead reckoning drifts and scans are motion-distorted, so alignment is
  // moderate — it just must be clearly above garbage level.
  EXPECT_GT(r.scan_alignment, 30.0);
  EXPECT_GE(r.lateral_mean_cm, 0.0);
  EXPECT_LT(r.lateral_mean_cm, 50.0);
  EXPECT_FALSE(r.crashed);
  EXPECT_GT(r.sim_time, 0.0);
}

TEST(Experiment, LapStatisticsShapes) {
  const Track track = TrackGenerator::oval(8.0, 2.5);
  ExperimentConfig cfg = quick_config();
  cfg.laps = 2;
  ExperimentRunner runner{track, cfg};
  DeadReckoning localizer;
  const ExperimentResult r = runner.run(localizer);
  ASSERT_EQ(r.lap_times.size(), 2U);
  ASSERT_EQ(r.lap_lateral_mean_cm.size(), 2U);
  EXPECT_NEAR(r.lap_time_mean, (r.lap_times[0] + r.lap_times[1]) / 2.0,
              1e-9);
}

TEST(Experiment, DetectsCrashWithFrozenLocalizer) {
  const Track track = TrackGenerator::oval(8.0, 2.5);
  ExperimentConfig cfg = quick_config();
  cfg.max_sim_time = 30.0;
  ExperimentRunner runner{track, cfg};
  FrozenLocalizer localizer;
  const ExperimentResult r = runner.run(localizer);
  EXPECT_TRUE(r.crashed);
  EXPECT_FALSE(r.completed);
}

TEST(Experiment, StartPoseOnRaceline) {
  const Track track = TrackGenerator::oval(8.0, 2.5);
  ExperimentRunner runner{track, quick_config()};
  const Pose2 start = runner.start_pose();
  const auto proj = runner.raceline().project({start.x, start.y});
  EXPECT_LT(std::abs(proj.lateral), 0.02);
  EXPECT_NEAR(angle_dist(start.theta, runner.raceline().heading(proj.s)),
              0.0, 0.05);
}

TEST(Experiment, GripChangesSlipDiagnostics) {
  const Track track = TrackGenerator::test_track();
  ExperimentConfig hq = quick_config();
  hq.mu = 0.76;
  hq.profile.scale = 1.0;
  ExperimentConfig lq = hq;
  lq.mu = 0.55;
  DeadReckoning a;
  DeadReckoning b;
  const ExperimentResult rh = ExperimentRunner{track, hq}.run(a);
  const ExperimentResult rl = ExperimentRunner{track, lq}.run(b);
  // Regardless of lap completion, the slippery setting must show more slip.
  EXPECT_GT(rl.mean_abs_slip, rh.mean_abs_slip);
}

TEST(Experiment, RunEndingMidEpisodeCountsAsUnrecovered) {
  // Boundary semantics the frontier bisector scores against: when the run
  // ends while a divergence episode is still open, the episode counts as
  // unrecovered — `recovered` demands every opened episode closed again.
  // A kidnapped dead reckoner is the canonical case: the estimate never
  // re-converges, so the episode opened by the teleport cannot close.
  const Track track = TrackGenerator::oval(8.0, 2.5);
  ExperimentConfig cfg = quick_config();
  // Never completes a lap count; the clock ends the run shortly after the
  // kidnap — early enough that the disoriented car hasn't hit a wall yet,
  // so the open episode (not a crash) is what denies recovery.
  cfg.laps = 1000000;
  cfg.max_sim_time = 6.0;
  ExperimentConfig::KidnapSpec kidnap;
  kidnap.t = 5.0;
  kidnap.advance_frac = 0.25;
  cfg.kidnaps.push_back(kidnap);
  ExperimentRunner runner{track, cfg};
  DeadReckoning localizer;
  const ExperimentResult r = runner.run(localizer);

  EXPECT_EQ(r.kidnaps_applied, 1);
  ASSERT_EQ(r.divergence_episodes, 1);
  EXPECT_EQ(r.recoveries, 0);
  EXPECT_FALSE(r.crashed);
  // The load-bearing bit: open episode at stream end == not recovered.
  EXPECT_FALSE(r.recovered);
  EXPECT_GT(r.final_pose_error_m, cfg.divergence_open_m);
  // Nothing recovered, so no time-to-relocalize sample may exist.
  EXPECT_TRUE(r.time_to_relocalize_s.empty());
}

TEST(Experiment, MaxSimTimeGuard) {
  const Track track = TrackGenerator::oval(8.0, 2.5);
  ExperimentConfig cfg = quick_config();
  cfg.max_sim_time = 2.0;  // too short for any lap
  ExperimentRunner runner{track, cfg};
  DeadReckoning localizer;
  const ExperimentResult r = runner.run(localizer);
  EXPECT_FALSE(r.completed);
  EXPECT_LE(r.sim_time, 2.1);
}

}  // namespace
}  // namespace srl
