/// Bitwise-determinism guarantees: replaying the same `SensorTrace` from the
/// same seed must produce bit-identical pose estimates and accuracy metrics
/// — across reruns, across a textual save/restore of the RNG state, and
/// with/without telemetry attached (the PR-1 "instrumentation changes
/// nothing" claim). The CI matrix additionally runs the standalone
/// `tools/check_determinism` under every sanitizer and contract flavor.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <sstream>

#include "common/rng.hpp"
#include "core/synpf.hpp"
#include "eval/experiment.hpp"
#include "eval/trace.hpp"
#include "gridmap/track_generator.hpp"
#include "telemetry/telemetry.hpp"

namespace srl {
namespace {

class DeadReckoning final : public Localizer {
 public:
  void initialize(const Pose2& pose) override { pose_ = pose; }
  void on_odometry(const OdometryDelta& odom) override {
    pose_ = (pose_ * odom.delta).normalized();
  }
  Pose2 on_scan(const LaserScan&) override { return pose_; }
  Pose2 pose() const override { return pose_; }
  std::string name() const override { return "DeadReckoning"; }
  double mean_scan_update_ms() const override { return 0.0; }
  double total_busy_s() const override { return 0.0; }

 private:
  Pose2 pose_{};
};

/// Bitwise pose equality — stricter than EXPECT_DOUBLE_EQ (which admits
/// distinct NaN payloads and -0.0 vs 0.0).
bool bitwise_equal(const Pose2& a, const Pose2& b) {
  return std::memcmp(&a.x, &b.x, sizeof(double)) == 0 &&
         std::memcmp(&a.y, &b.y, sizeof(double)) == 0 &&
         std::memcmp(&a.theta, &b.theta, sizeof(double)) == 0;
}

void expect_bitwise_identical(const SensorTrace::ReplayResult& a,
                              const SensorTrace::ReplayResult& b) {
  ASSERT_EQ(a.estimates.size(), b.estimates.size());
  for (std::size_t i = 0; i < a.estimates.size(); ++i) {
    ASSERT_TRUE(bitwise_equal(a.estimates[i], b.estimates[i]))
        << "estimate " << i << " diverges";
  }
  EXPECT_EQ(std::memcmp(&a.pose_rmse_m, &b.pose_rmse_m, sizeof(double)), 0);
  EXPECT_EQ(
      std::memcmp(&a.heading_rmse_rad, &b.heading_rmse_rad, sizeof(double)),
      0);
}

class DeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    track_ = std::make_unique<Track>(TrackGenerator::oval(8.0, 2.5));
    trace_ = std::make_unique<SensorTrace>();
    ExperimentConfig cfg;
    cfg.laps = 1;
    cfg.max_sim_time = 15.0;
    cfg.profile.scale = 0.5;
    ExperimentRunner runner{*track_, cfg};
    DeadReckoning driver;
    runner.run(driver, trace_.get());
    map_ = std::make_shared<const OccupancyGrid>(track_->grid);
  }
  static void TearDownTestSuite() {
    map_.reset();
    trace_.reset();
    track_.reset();
  }

  static SynPfConfig pf_config() {
    SynPfConfig cfg;
    cfg.filter.n_particles = 400;
    return cfg;
  }

  static std::unique_ptr<Track> track_;
  static std::unique_ptr<SensorTrace> trace_;
  static std::shared_ptr<const OccupancyGrid> map_;
};

std::unique_ptr<Track> DeterminismTest::track_;
std::unique_ptr<SensorTrace> DeterminismTest::trace_;
std::shared_ptr<const OccupancyGrid> DeterminismTest::map_;

TEST_F(DeterminismTest, RerunFromSameSeedIsBitwiseIdentical) {
  SynPf a{pf_config(), map_, LidarConfig{}};
  SynPf b{pf_config(), map_, LidarConfig{}};
  const auto ra = trace_->replay(a);
  const auto rb = trace_->replay(b);
  ASSERT_FALSE(ra.estimates.empty());
  expect_bitwise_identical(ra, rb);
}

TEST_F(DeterminismTest, RngStateRoundTripsThroughStreams) {
  Rng original{12345};
  // Consume an odd number of gaussians so the Box-Muller cache is "charged";
  // the serialized state must include it.
  for (int i = 0; i < 7; ++i) original.gaussian(1.0);

  std::stringstream state;
  state << original;
  Rng restored{999};  // different seed, fully overwritten by the restore
  state >> restored;

  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(original.next_seed(), restored.next_seed());
    const double g0 = original.gaussian(2.0);
    const double g1 = restored.gaussian(2.0);
    EXPECT_EQ(std::memcmp(&g0, &g1, sizeof(double)), 0);
  }
}

TEST_F(DeterminismTest, ReplayAfterRngSaveRestoreIsBitwiseIdentical) {
  SynPf a{pf_config(), map_, LidarConfig{}};
  const auto ra = trace_->replay(a);

  SynPf c{pf_config(), map_, LidarConfig{}};
  std::stringstream saved;
  saved << c.filter().rng();
  // Scramble the generator, then restore: the replay must be oblivious.
  for (int i = 0; i < 1000; ++i) c.filter().rng().uniform();
  saved >> c.filter().rng();
  const auto rc = trace_->replay(c);
  expect_bitwise_identical(ra, rc);
}

TEST_F(DeterminismTest, TelemetryAttachmentDoesNotPerturbEstimates) {
  SynPf plain{pf_config(), map_, LidarConfig{}};
  const auto rp = trace_->replay(plain);

  telemetry::Telemetry telemetry;
  SynPf instrumented{pf_config(), map_, LidarConfig{}};
  const auto ri = trace_->replay(instrumented, telemetry.sink());
  expect_bitwise_identical(rp, ri);
  // The instrumented run actually recorded something.
  EXPECT_NE(telemetry.metrics.find_histogram("pf.predict_ms"), nullptr);
}

}  // namespace
}  // namespace srl
