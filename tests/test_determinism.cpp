/// Bitwise-determinism guarantees: replaying the same `SensorTrace` from the
/// same seed must produce bit-identical pose estimates and accuracy metrics
/// — across reruns, across a textual save/restore of the RNG state, with or
/// without telemetry attached (the PR-1 "instrumentation changes nothing"
/// claim), and — since the hot path went parallel — at *any thread count*
/// (the PR-3 tentpole guarantee). The RNG substream derivation and the
/// filter's stream-split schedule are pinned here with hardcoded draws so
/// they cannot silently change. The CI matrix additionally runs the
/// standalone `tools/check_determinism` under every sanitizer and contract
/// flavor and a thread matrix.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <sstream>

#include "common/rng.hpp"
#include "core/synpf.hpp"
#include "eval/dead_reckoning.hpp"
#include "eval/experiment.hpp"
#include "eval/trace.hpp"
#include "gridmap/track_generator.hpp"
#include "telemetry/telemetry.hpp"

namespace srl {
namespace {

/// Bitwise pose equality — stricter than EXPECT_DOUBLE_EQ (which admits
/// distinct NaN payloads and -0.0 vs 0.0).
bool bitwise_equal(const Pose2& a, const Pose2& b) {
  return std::memcmp(&a.x, &b.x, sizeof(double)) == 0 &&
         std::memcmp(&a.y, &b.y, sizeof(double)) == 0 &&
         std::memcmp(&a.theta, &b.theta, sizeof(double)) == 0;
}

void expect_bitwise_identical(const SensorTrace::ReplayResult& a,
                              const SensorTrace::ReplayResult& b) {
  ASSERT_EQ(a.estimates.size(), b.estimates.size());
  for (std::size_t i = 0; i < a.estimates.size(); ++i) {
    ASSERT_TRUE(bitwise_equal(a.estimates[i], b.estimates[i]))
        << "estimate " << i << " diverges";
  }
  EXPECT_EQ(std::memcmp(&a.pose_rmse_m, &b.pose_rmse_m, sizeof(double)), 0);
  EXPECT_EQ(
      std::memcmp(&a.heading_rmse_rad, &b.heading_rmse_rad, sizeof(double)),
      0);
}

class DeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    track_ = std::make_unique<Track>(TrackGenerator::oval(8.0, 2.5));
    trace_ = std::make_unique<SensorTrace>();
    ExperimentConfig cfg;
    cfg.laps = 1;
    cfg.max_sim_time = 15.0;
    cfg.profile.scale = 0.5;
    ExperimentRunner runner{*track_, cfg};
    DeadReckoning driver;
    runner.run(driver, trace_.get());
    map_ = std::make_shared<const OccupancyGrid>(track_->grid);
  }
  static void TearDownTestSuite() {
    map_.reset();
    trace_.reset();
    track_.reset();
  }

  static SynPfConfig pf_config() {
    SynPfConfig cfg;
    cfg.filter.n_particles = 400;
    return cfg;
  }

  static std::unique_ptr<Track> track_;
  static std::unique_ptr<SensorTrace> trace_;
  static std::shared_ptr<const OccupancyGrid> map_;
};

std::unique_ptr<Track> DeterminismTest::track_;
std::unique_ptr<SensorTrace> DeterminismTest::trace_;
std::shared_ptr<const OccupancyGrid> DeterminismTest::map_;

TEST_F(DeterminismTest, RerunFromSameSeedIsBitwiseIdentical) {
  SynPf a{pf_config(), map_, LidarConfig{}};
  SynPf b{pf_config(), map_, LidarConfig{}};
  const auto ra = trace_->replay(a);
  const auto rb = trace_->replay(b);
  ASSERT_FALSE(ra.estimates.empty());
  expect_bitwise_identical(ra, rb);
}

TEST_F(DeterminismTest, RngStateRoundTripsThroughStreams) {
  Rng original{12345};
  // Consume an odd number of gaussians so the Box-Muller cache is "charged";
  // the serialized state must include it.
  for (int i = 0; i < 7; ++i) original.gaussian(1.0);

  std::stringstream state;
  state << original;
  Rng restored{999};  // different seed, fully overwritten by the restore
  state >> restored;

  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(original.next_seed(), restored.next_seed());
    const double g0 = original.gaussian(2.0);
    const double g1 = restored.gaussian(2.0);
    EXPECT_EQ(std::memcmp(&g0, &g1, sizeof(double)), 0);
  }
}

TEST_F(DeterminismTest, ReplayAfterRngSaveRestoreIsBitwiseIdentical) {
  SynPf a{pf_config(), map_, LidarConfig{}};
  const auto ra = trace_->replay(a);

  SynPf c{pf_config(), map_, LidarConfig{}};
  std::stringstream saved;
  saved << c.filter().rng();
  // Scramble the generator, then restore: the replay must be oblivious.
  for (int i = 0; i < 1000; ++i) c.filter().rng().uniform();
  saved >> c.filter().rng();
  const auto rc = trace_->replay(c);
  expect_bitwise_identical(ra, rc);
}

/// The tentpole acceptance test: the same trace replayed at n_threads 1, 2
/// and 8 (the last heavily oversubscribed on small CI machines — which is
/// the point: scheduling varies wildly and must not matter) produces
/// bitwise-identical estimates, covariances, resample counts, cloud sizes
/// and accuracy metrics.
TEST_F(DeterminismTest, ThreadCountInvariance) {
  SynPfConfig ref_cfg = pf_config();
  ref_cfg.filter.n_threads = 1;
  SynPf ref{ref_cfg, map_, LidarConfig{}};
  const auto rr = trace_->replay(ref);
  ASSERT_FALSE(rr.estimates.empty());
  const PoseCovariance ref_cov = ref.filter().covariance();
  const long ref_resamples = ref.filter().resample_count();
  const int ref_particles = ref.filter().current_particles();
  ASSERT_GT(ref_resamples, 0L) << "trace too benign to exercise resampling";

  for (const int threads : {2, 8}) {
    SynPfConfig cfg = pf_config();
    cfg.filter.n_threads = threads;
    SynPf pf{cfg, map_, LidarConfig{}};
    const auto r = trace_->replay(pf);
    ASSERT_EQ(pf.filter().threads(), threads);
    expect_bitwise_identical(rr, r);
    EXPECT_EQ(pf.filter().resample_count(), ref_resamples)
        << "at " << threads << " threads";
    EXPECT_EQ(pf.filter().current_particles(), ref_particles);
    const PoseCovariance cov = pf.filter().covariance();
    EXPECT_EQ(std::memcmp(&cov.xx, &ref_cov.xx, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&cov.xy, &ref_cov.xy, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&cov.yy, &ref_cov.yy, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&cov.tt, &ref_cov.tt, sizeof(double)), 0);
  }
}

/// Metrics recorded during a multi-threaded replay must match the
/// single-threaded ones: same resample/update counters, same health gauges
/// — the instrumentation sees the same filter, only faster.
TEST_F(DeterminismTest, ThreadCountInvarianceOfMetrics) {
  const auto run = [&](int threads, telemetry::Telemetry& telemetry) {
    SynPfConfig cfg = pf_config();
    cfg.filter.n_threads = threads;
    SynPf pf{cfg, map_, LidarConfig{}};
    return trace_->replay(pf, telemetry.sink());
  };
  telemetry::Telemetry t1;
  telemetry::Telemetry t8;
  const auto r1 = run(1, t1);
  const auto r8 = run(8, t8);
  expect_bitwise_identical(r1, r8);
  EXPECT_EQ(t1.metrics.counter("pf.resamples").value(),
            t8.metrics.counter("pf.resamples").value());
  EXPECT_EQ(t1.metrics.counter("pf.updates").value(),
            t8.metrics.counter("pf.updates").value());
  const double ess1 = t1.metrics.gauge("pf.ess").value();
  const double ess8 = t8.metrics.gauge("pf.ess").value();
  EXPECT_EQ(std::memcmp(&ess1, &ess8, sizeof(double)), 0);
  EXPECT_EQ(t1.metrics.gauge("pf.threads").value(), 1.0);
  EXPECT_EQ(t8.metrics.gauge("pf.threads").value(), 8.0);
}

TEST_F(DeterminismTest, TelemetryAttachmentDoesNotPerturbEstimates) {
  SynPf plain{pf_config(), map_, LidarConfig{}};
  const auto rp = trace_->replay(plain);

  telemetry::Telemetry telemetry;
  SynPf instrumented{pf_config(), map_, LidarConfig{}};
  const auto ri = trace_->replay(instrumented, telemetry.sink());
  expect_bitwise_identical(rp, ri);
  // The instrumented run actually recorded something.
  EXPECT_NE(telemetry.metrics.find_histogram("pf.predict_ms"), nullptr);
}

// ---------------------------------------------------------------------------
// Substream derivation pinning (the PR-3 "Fix" satellite): the filter's
// randomness is split across named streams (PfStream schedule in
// core/particle_filter.hpp). These tests freeze the derivation — SplitMix64
// chain over (master seed, stream tag, index) — with hardcoded draws, so any
// change to the mixing, the tag values, or which component consumes which
// stream fails loudly instead of silently re-keying every replay.
// mt19937_64's output sequence is fully specified by the standard, so the
// constants are portable. Regenerate them ONLY for an intentional,
// changelog-documented break of replay compatibility.
// ---------------------------------------------------------------------------

TEST(RngSubstream, DerivationIsPinned) {
  EXPECT_EQ(splitmix64(0), 16294208416658607535ULL);
  EXPECT_EQ(splitmix64(42), 13679457532755275413ULL);

  Rng master{42};
  Rng predict0 = master.substream(kPfStreamPredictNoise, 0);
  EXPECT_EQ(predict0.next_seed(), 5240070184307236169ULL);
  EXPECT_EQ(predict0.next_seed(), 9041309703565127724ULL);
  EXPECT_EQ(master.substream(kPfStreamPredictNoise, 1).next_seed(),
            11239911459078627731ULL);
  EXPECT_EQ(master.substream(kPfStreamRecovery, 0).next_seed(),
            16653311168010206230ULL);
}

TEST(RngSubstream, IndependentOfParentDrawHistory) {
  Rng a{7};
  Rng b{7};
  for (int i = 0; i < 1000; ++i) b.uniform();  // draw history must not matter
  for (std::uint64_t stream : {1ULL, 2ULL, 77ULL}) {
    Rng sa = a.substream(stream, 5);
    Rng sb = b.substream(stream, 5);
    for (int i = 0; i < 32; ++i) {
      EXPECT_EQ(sa.next_seed(), sb.next_seed());
    }
  }
}

TEST(RngSubstream, DistinctKeysYieldDistinctStreams) {
  Rng master{123};
  EXPECT_NE(master.substream(1, 0).next_seed(),
            master.substream(1, 1).next_seed());
  EXPECT_NE(master.substream(1, 0).next_seed(),
            master.substream(2, 0).next_seed());
  EXPECT_NE(master.substream(1, 0).next_seed(), Rng{123}.next_seed());
}

TEST(RngSubstream, SerializationCarriesMasterSeed) {
  Rng original{4242};
  for (int i = 0; i < 5; ++i) original.gaussian(1.0);
  std::stringstream state;
  state << original;
  Rng restored{1};  // wrong seed, fully overwritten by the restore
  state >> restored;
  EXPECT_EQ(restored.master_seed(), 4242ULL);
  // Substreams derive from the restored master seed, not the ctor seed.
  EXPECT_EQ(original.substream(1, 9).next_seed(),
            restored.substream(1, 9).next_seed());
}

/// Pins the stream split itself: predict noise must come from per-slot
/// substreams, never the master stream, so extra master draws between
/// updates cannot reorder it (this was the PR-3 fix — one shared Rng used
/// to serve predict noise, resampling jitter and recovery injection).
TEST(PfStreamSplit, PredictNoiseDecoupledFromMasterStream) {
  auto grid = std::make_shared<OccupancyGrid>(100, 100, 0.05, Vec2{0.0, 0.0},
                                              OccupancyGrid::kFree);
  const auto make = [&] {
    SynPfConfig cfg;
    cfg.filter.n_particles = 64;
    return SynPf{cfg, grid, LidarConfig{}};
  };
  SynPf a = make();
  SynPf b = make();
  a.initialize(Pose2{2.5, 2.5, 0.0});
  b.initialize(Pose2{2.5, 2.5, 0.0});
  // Scramble b's master stream after init: predict must be oblivious.
  for (int i = 0; i < 333; ++i) b.filter().rng().uniform();

  OdometryDelta odom;
  odom.delta = Pose2{0.1, 0.0, 0.01};
  odom.v = 1.0;
  odom.dt = 0.05;
  a.filter().predict(odom);
  b.filter().predict(odom);
  const auto pa = a.filter().particles_snapshot();
  const auto pb = b.filter().particles_snapshot();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_TRUE(bitwise_equal(pa[i].pose, pb[i].pose)) << "particle " << i;
  }
}

}  // namespace
}  // namespace srl
