#include "eval/table.hpp"

#include <gtest/gtest.h>

namespace srl {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t{{"name", "value"}};
  t.add_row({"alpha", "1"});
  t.add_row({"a-much-longer-name", "22.5"});
  const std::string out = t.render();
  // All rows have the same width.
  std::size_t first_len = out.find('\n');
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t next = out.find('\n', pos);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.5"), std::string::npos);
}

TEST(TextTable, NumFormatsFixed) {
  EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::num(-0.5, 3), "-0.500");
  EXPECT_EQ(TextTable::num(9.0, 0), "9");
}

TEST(TextTable, ShortRowsPadded) {
  TextTable t{{"a", "b", "c"}};
  t.add_row({"only-one"});
  const std::string out = t.render();
  EXPECT_NE(out.find("only-one"), std::string::npos);
}

}  // namespace
}  // namespace srl
