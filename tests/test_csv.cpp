#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace srl {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in{path};
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = "csv_test_tmp.csv";
};

TEST_F(CsvTest, HeaderAndRows) {
  {
    CsvWriter w{path_};
    ASSERT_TRUE(w.ok());
    w.write_header({"a", "b", "c"});
    w.write_row(std::vector<std::string>{"1", "x", "y"});
    w.write_row(std::vector<double>{1.5, -2.0, 0.0});
  }
  const std::string content = slurp(path_);
  EXPECT_NE(content.find("a,b,c\n"), std::string::npos);
  EXPECT_NE(content.find("1,x,y\n"), std::string::npos);
  EXPECT_NE(content.find("1.5,-2,0\n"), std::string::npos);
}

TEST_F(CsvTest, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST_F(CsvTest, EscapedCellWrittenQuoted) {
  {
    CsvWriter w{path_};
    w.write_row(std::vector<std::string>{"a,b", "c"});
  }
  EXPECT_EQ(slurp(path_), "\"a,b\",c\n");
}

}  // namespace
}  // namespace srl
