#include "gridmap/track_generator.hpp"

#include <gtest/gtest.h>

#include "common/polyline.hpp"
#include "gridmap/distance_transform.hpp"

namespace srl {
namespace {

void expect_valid_track(const Track& track, const TrackSpec& spec) {
  ASSERT_GE(track.centerline.size(), 10U);
  // Canonical CCW orientation.
  EXPECT_GT(signed_area(track.centerline), 0.0);
  // Every centerline point sits in free space with at least ~the corridor
  // half width of clearance (minus rasterization slack).
  const DistanceField df = distance_transform(track.grid);
  for (const Vec2& p : track.centerline) {
    EXPECT_TRUE(track.grid.is_free_at(p)) << p.x << "," << p.y;
    EXPECT_GT(df.at_world(p), 0.7 * spec.half_width) << p.x << "," << p.y;
  }
  // The corridor is enclosed: walls exist.
  EXPECT_GT(track.grid.count(OccupancyGrid::kOccupied), 100U);
  EXPECT_GT(track.grid.count(OccupancyGrid::kFree), 100U);
}

TEST(TrackGenerator, OvalIsValid) {
  const TrackSpec spec;
  const Track track = TrackGenerator::oval(6.0, 2.0, spec);
  expect_valid_track(track, spec);
}

TEST(TrackGenerator, OvalCenterlineLength) {
  const Track track = TrackGenerator::oval(6.0, 2.0);
  // Stadium perimeter: 2 straights + full circle = 2*6 + 2*pi*2.
  const double expected = 12.0 + kTwoPi * 2.0;
  EXPECT_NEAR(polyline_length(track.centerline, true), expected,
              0.05 * expected);
}

TEST(TrackGenerator, RoundedRectIsValid) {
  const TrackSpec spec;
  const Track track = TrackGenerator::rounded_rect(14.0, 8.0, 2.0, spec);
  expect_valid_track(track, spec);
}

TEST(TrackGenerator, TestTrackIsValid) {
  const TrackSpec spec;
  const Track track = TrackGenerator::test_track(spec);
  expect_valid_track(track, spec);
  // The Table-I geometry: lap length around 43-47 m.
  const double len = polyline_length(track.centerline, true);
  EXPECT_GT(len, 35.0);
  EXPECT_LT(len, 55.0);
}

TEST(TrackGenerator, HairpinIsValid) {
  const TrackSpec spec;
  const Track track = TrackGenerator::hairpin(spec);
  expect_valid_track(track, spec);
}

TEST(TrackGenerator, CustomSpecRespected) {
  TrackSpec spec;
  spec.half_width = 0.8;
  spec.resolution = 0.1;
  const Track track = TrackGenerator::oval(5.0, 1.8, spec);
  EXPECT_DOUBLE_EQ(track.grid.resolution(), 0.1);
  EXPECT_DOUBLE_EQ(track.half_width, 0.8);
  expect_valid_track(track, spec);
}

TEST(TrackGenerator, CorridorWidthMatchesSpec) {
  TrackSpec spec;
  spec.half_width = 1.0;
  const Track track = TrackGenerator::oval(8.0, 2.5, spec);
  const DistanceField df = distance_transform(track.grid);
  // At centerline points along the straight, wall distance ~ half width.
  int checked = 0;
  for (const Vec2& p : track.centerline) {
    if (std::abs(p.y + 2.5) < 0.05 && std::abs(p.x) < 3.0) {
      EXPECT_NEAR(df.at_world(p), spec.half_width, 0.15);
      ++checked;
    }
  }
  EXPECT_GT(checked, 5);
}

class RandomCircuit : public ::testing::TestWithParam<int> {};

TEST_P(RandomCircuit, AlwaysValid) {
  Rng rng{static_cast<std::uint64_t>(GetParam())};
  const TrackSpec spec;
  const Track track =
      TrackGenerator::random_circuit(rng, 10, 6.0, 1.5, spec);
  expect_valid_track(track, spec);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuit, ::testing::Range(1, 9));

}  // namespace
}  // namespace srl
