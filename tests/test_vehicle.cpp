#include "vehicle/vehicle_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.hpp"
#include "vehicle/sensors.hpp"

namespace srl {
namespace {

VehicleParams nominal() {
  VehicleParams p;
  p.mu = 0.76;
  return p;
}

void run(VehicleSim& sim, const DriveCommand& cmd, double seconds,
         double dt = 0.0025) {
  const int steps = static_cast<int>(seconds / dt);
  for (int i = 0; i < steps; ++i) sim.step(cmd, dt);
}

TEST(VehicleSim, AcceleratesToTargetOnGrip) {
  VehicleSim sim{nominal()};
  run(sim, DriveCommand{3.0, 0.0}, 3.0);
  EXPECT_NEAR(sim.state().v, 3.0, 0.15);
  EXPECT_NEAR(sim.state().wheel_speed, 3.0, 0.05);
  EXPECT_LT(std::abs(sim.state().slip), 0.2);
  EXPECT_GT(sim.state().pose.x, 5.0);
  EXPECT_NEAR(sim.state().pose.y, 0.0, 1e-6);
}

TEST(VehicleSim, LowGripCausesLaunchSlip) {
  VehicleParams slippery = nominal();
  slippery.mu = 0.3;  // mu*g = 2.9 < motor_accel
  VehicleSim gripy{nominal()};
  VehicleSim slidey{slippery};
  double max_slip_grip = 0.0;
  double max_slip_slide = 0.0;
  for (int i = 0; i < 800; ++i) {
    gripy.step(DriveCommand{6.0, 0.0}, 0.0025);
    slidey.step(DriveCommand{6.0, 0.0}, 0.0025);
    max_slip_grip = std::max(max_slip_grip, gripy.state().slip);
    max_slip_slide = std::max(max_slip_slide, slidey.state().slip);
  }
  EXPECT_GT(max_slip_slide, 2.0 * max_slip_grip);
}

TEST(VehicleSim, UndersteerCapsCurvature) {
  VehicleSim sim{nominal()};
  run(sim, DriveCommand{6.0, 0.0}, 3.0);  // get up to speed
  const double v = sim.state().v;
  sim.step(DriveCommand{6.0, 0.4}, 0.5);  // full steering at speed
  run(sim, DriveCommand{6.0, 0.4}, 0.5);
  const double kappa_eff = sim.state().yaw_rate / std::max(sim.state().v, 0.1);
  const double kappa_max = nominal().mu * nominal().gravity /
                           (sim.state().v * sim.state().v);
  EXPECT_LE(std::abs(kappa_eff), kappa_max * 1.05);
  const double kappa_cmd =
      std::tan(0.4) / nominal().ackermann.wheelbase;
  EXPECT_LT(std::abs(kappa_eff), kappa_cmd);
  (void)v;
}

TEST(VehicleSim, LowSpeedSteeringIsKinematic) {
  VehicleSim sim{nominal()};
  run(sim, DriveCommand{1.0, 0.2}, 4.0);
  const double expected_kappa =
      std::tan(sim.state().steer) / nominal().ackermann.wheelbase;
  EXPECT_NEAR(sim.state().yaw_rate, sim.state().v * expected_kappa, 0.02);
  EXPECT_NEAR(std::abs(sim.state().vy), 0.0, 0.02);
}

TEST(VehicleSim, SlideBuildsWhenOverdriven) {
  VehicleParams slippery = nominal();
  slippery.mu = 0.4;
  VehicleSim sim{slippery};
  run(sim, DriveCommand{5.0, 0.0}, 3.0);
  // Demand far beyond grip at speed: slide velocity must build up,
  // opposing the (left) turn.
  run(sim, DriveCommand{5.0, 0.35}, 1.0);
  EXPECT_LT(sim.state().vy, -0.05);
}

TEST(VehicleSim, SlideRelaxesAfterCorner) {
  VehicleParams slippery = nominal();
  slippery.mu = 0.4;
  VehicleSim sim{slippery};
  run(sim, DriveCommand{5.0, 0.0}, 3.0);
  run(sim, DriveCommand{5.0, 0.35}, 1.0);
  const double sliding = std::abs(sim.state().vy);
  run(sim, DriveCommand{5.0, 0.0}, 1.5);
  EXPECT_LT(std::abs(sim.state().vy), 0.2 * sliding + 0.01);
}

TEST(VehicleSim, SteeringSlewLimited) {
  VehicleSim sim{nominal()};
  sim.step(DriveCommand{0.0, 0.4}, 0.01);
  EXPECT_NEAR(sim.state().steer, nominal().steer_rate * 0.01, 1e-9);
}

TEST(VehicleSim, BrakingRespectsMotorSlew) {
  VehicleSim sim{nominal()};
  run(sim, DriveCommand{5.0, 0.0}, 3.0);
  const double w0 = sim.state().wheel_speed;
  sim.step(DriveCommand{0.0, 0.0}, 0.1);
  EXPECT_NEAR(sim.state().wheel_speed, w0 - nominal().motor_brake * 0.1,
              1e-6);
}

TEST(VehicleSim, ResetClearsState) {
  VehicleSim sim{nominal()};
  run(sim, DriveCommand{4.0, 0.1}, 2.0);
  sim.reset(Pose2{1.0, 2.0, 0.5});
  EXPECT_DOUBLE_EQ(sim.state().v, 0.0);
  EXPECT_DOUBLE_EQ(sim.state().pose.x, 1.0);
  EXPECT_DOUBLE_EQ(sim.state().steer, 0.0);
}

TEST(WheelOdometry, IntegratesWheelSpeedNotBodySpeed) {
  WheelOdometryNoise no_noise;
  no_noise.speed_noise = 0.0;
  no_noise.steer_noise = 0.0;
  const WheelOdometrySensor sensor{AckermannParams{}, no_noise};
  VehicleState state;
  state.v = 3.0;
  state.wheel_speed = 3.6;  // 20% slip
  state.steer = 0.0;
  Rng rng{1};
  const OdometryDelta d = sensor.measure(state, 0.1, rng);
  EXPECT_NEAR(d.delta.x, 0.36, 1e-9);  // wheel, not body, distance
  EXPECT_NEAR(d.v, 3.6, 1e-9);
  EXPECT_DOUBLE_EQ(d.dt, 0.1);
}

TEST(WheelOdometry, YawFromSteeringGeometry) {
  WheelOdometryNoise no_noise;
  no_noise.speed_noise = 0.0;
  no_noise.steer_noise = 0.0;
  const AckermannParams ack;
  const WheelOdometrySensor sensor{ack, no_noise};
  VehicleState state;
  state.v = 2.0;
  state.wheel_speed = 2.0;
  state.steer = 0.2;
  Rng rng{1};
  const OdometryDelta d = sensor.measure(state, 0.05, rng);
  const double expected_yaw_rate = 2.0 * std::tan(0.2) / ack.wheelbase;
  EXPECT_NEAR(d.delta.theta, expected_yaw_rate * 0.05, 1e-6);
}

TEST(WheelOdometry, MissesLateralSlide) {
  WheelOdometryNoise no_noise;
  no_noise.speed_noise = 0.0;
  no_noise.steer_noise = 0.0;
  const WheelOdometrySensor sensor{AckermannParams{}, no_noise};
  VehicleState state;
  state.v = 3.0;
  state.wheel_speed = 3.0;
  state.vy = -0.5;  // sliding sideways
  Rng rng{1};
  const OdometryDelta d = sensor.measure(state, 0.1, rng);
  EXPECT_NEAR(d.delta.y, 0.0, 1e-9);  // odometry is blind to the slide
}

TEST(Imu, MeasuresYawRateWithBias) {
  const ImuSensor imu{ImuNoise{.gyro_noise = 0.0, .gyro_bias = 0.01,
                               .accel_noise = 0.0},
                      5};
  VehicleState state;
  state.yaw_rate = 1.5;
  state.v = 4.0;
  Rng rng{1};
  const ImuReading r = imu.measure(state, 3.8, 0.1, rng);
  EXPECT_NEAR(r.yaw_rate, 1.5 + imu.bias(), 1e-9);
  EXPECT_NEAR(r.accel_x, 2.0, 1e-9);  // (4.0 - 3.8) / 0.1
}

}  // namespace
}  // namespace srl
