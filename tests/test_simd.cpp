#include "common/simd.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/angles.hpp"
#include "core/particle_cloud.hpp"
#include "core/pf_kernels.hpp"
#include "range/cddt.hpp"
#include "range/lookup_table.hpp"
#include "sensor/beam_model.hpp"
#include "sensor/lidar.hpp"

namespace srl {
namespace {

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }
std::uint32_t bits(float v) { return std::bit_cast<std::uint32_t>(v); }

// ---------------------------------------------------------------------------
// Aligned storage & the SoA particle slab
// ---------------------------------------------------------------------------

TEST(AlignedVector, DataIsAlwaysCacheLineAligned) {
  for (std::size_t n : {1u, 3u, 64u, 65u, 1000u, 4099u}) {
    simd::AlignedVector<double> v(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.data()) % 64, 0u) << n;
    simd::AlignedVector<std::int32_t> w(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(w.data()) % 64, 0u) << n;
  }
}

TEST(ParticleCloud, SlabsAreAlignedAndSized) {
  ParticleCloud cloud(1001);  // deliberately not a multiple of 4 or 64
  EXPECT_EQ(cloud.size(), 1001u);
  for (const double* slab :
       {cloud.x(), cloud.y(), cloud.theta(), cloud.weight()}) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(slab) % 64, 0u);
  }
  EXPECT_EQ(cloud.weights().size(), 1001u);
}

TEST(ParticleCloud, ResizePreservesSurvivingPrefixBitwise) {
  ParticleCloud cloud(7);
  for (std::size_t i = 0; i < cloud.size(); ++i) {
    cloud.set_particle(i, {{0.1 * static_cast<double>(i) + 0.05,
                            -3.0 + static_cast<double>(i), 1e-9},
                           0.5 + static_cast<double>(i)});
  }
  const std::vector<Particle> before = cloud.snapshot();

  cloud.resize(23);  // grow
  ASSERT_EQ(cloud.size(), 23u);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(bits(cloud.pose(i).x), bits(before[i].pose.x)) << i;
    EXPECT_EQ(bits(cloud.pose(i).y), bits(before[i].pose.y)) << i;
    EXPECT_EQ(bits(cloud.pose(i).theta), bits(before[i].pose.theta)) << i;
    EXPECT_EQ(bits(cloud.weight()[i]), bits(before[i].weight)) << i;
  }
  // New slots: identity pose, weight 1.
  for (std::size_t i = before.size(); i < cloud.size(); ++i) {
    EXPECT_EQ(cloud.pose(i).x, 0.0);
    EXPECT_EQ(cloud.pose(i).theta, 0.0);
    EXPECT_EQ(cloud.weight()[i], 1.0);
  }

  cloud.resize(3);  // shrink
  ASSERT_EQ(cloud.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(bits(cloud.pose(i).y), bits(before[i].pose.y)) << i;
  }
}

TEST(ParticleCloud, ChunkViewsAliasTheSlabs) {
  ParticleCloud cloud(100);
  cloud.set_pose(37, {1.5, -2.5, 0.25});
  const ParticleCloud::ChunkView view = cloud.chunk(25, 50);
  EXPECT_EQ(view.begin, 25u);
  EXPECT_EQ(view.count, 25u);
  EXPECT_EQ(view.x, cloud.x() + 25);
  EXPECT_EQ(view.weight, cloud.weight() + 25);
  // Writes through the view land in the slab (no copy).
  view.theta[37 - 25] = 0.75;
  EXPECT_EQ(cloud.pose(37).theta, 0.75);
  EXPECT_EQ(cloud.pose(37).x, 1.5);
}

TEST(ParticleCloud, SnapshotRoundTrips) {
  ParticleCloud cloud(5);
  for (std::size_t i = 0; i < 5; ++i) {
    cloud.set_particle(i, {{static_cast<double>(i), -1.0, 0.1}, 2.0});
  }
  const std::vector<Particle> snap = cloud.snapshot();
  ParticleCloud back(5);
  for (std::size_t i = 0; i < 5; ++i) back.set_particle(i, snap[i]);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(bits(back.pose(i).x), bits(cloud.pose(i).x));
    EXPECT_EQ(bits(back.weight()[i]), bits(cloud.weight()[i]));
  }
}

// ---------------------------------------------------------------------------
// Backend dispatch seam
// ---------------------------------------------------------------------------

TEST(SimdDispatch, ForcePinsAndResetUnpins) {
  simd::force(simd::Backend::kScalar);
  EXPECT_EQ(simd::active(), simd::Backend::kScalar);
  EXPECT_STREQ(simd::name(simd::active()), "scalar");
  if (simd::cpu_has_avx2()) {
    simd::force(simd::Backend::kAvx2);
    EXPECT_EQ(simd::active(), simd::Backend::kAvx2);
    EXPECT_STREQ(simd::name(simd::active()), "avx2");
  }
  simd::reset();
}

// ---------------------------------------------------------------------------
// Weight kernel: scalar vs AVX2, bit for bit, on hostile inputs
// ---------------------------------------------------------------------------

/// Runs both kernels over the same expected-range matrix and demands
/// bitwise-identical outputs. `n` deliberately not a multiple of 4 so the
/// vector path exercises its scalar remainder too.
void expect_kernels_agree(const pf_kernels::ScanContext& ctx,
                          const std::vector<float>& expected, std::size_t n,
                          std::size_t k) {
#if defined(SRL_SIMD_X86_AVX2)
  ASSERT_EQ(expected.size(), n * k);
  std::vector<double> scalar_out(n, -1.0);
  std::vector<double> avx2_out(n, -2.0);
  pf_kernels::accumulate_log_weights_scalar(ctx, expected.data(), k, 0, n,
                                            scalar_out.data());
  pf_kernels::accumulate_log_weights_avx2(ctx, expected.data(), k, 0, n,
                                          avx2_out.data());
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(std::isfinite(scalar_out[i])) << i;
    EXPECT_EQ(bits(scalar_out[i]), bits(avx2_out[i])) << "particle " << i;
  }
  // Partial ranges must agree with the full pass (chunked dispatch).
  std::vector<double> chunked(n, -3.0);
  const std::size_t mid = n / 2;
  pf_kernels::accumulate_log_weights_avx2(ctx, expected.data(), k, 0, mid,
                                          chunked.data());
  pf_kernels::accumulate_log_weights_avx2(ctx, expected.data(), k, mid, n,
                                          chunked.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(bits(chunked[i]), bits(scalar_out[i])) << "chunked " << i;
  }
#else
  (void)ctx;
  (void)expected;
  (void)n;
  (void)k;
#endif
}

/// Expected-range matrix stuffed with the values that break naive
/// vectorizations: exact zeros, the clamp boundaries, beyond-max-range,
/// astronomically large floats (cvttpd saturation), and bin-edge values.
std::vector<float> hostile_expected(std::size_t n, std::size_t k,
                                    const BeamModel& model) {
  const auto max_range = static_cast<float>(model.params().max_range);
  const auto res = static_cast<float>(model.params().table_resolution);
  const float specials[] = {
      0.0F,
      res * 0.5F,               // exactly on the round-half boundary
      res * 1.5F,               // next bin boundary
      1.0F,
      max_range - res,          // near the top
      max_range,                // top bin
      max_range + 5.0F,         // clamps to the top bin
      1e30F,                    // cvttpd saturates; clamps either way
      3.37F,
      0.051F,
  };
  std::vector<float> expected(n * k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      expected[i * k + j] = specials[(i * 7 + j) % std::size(specials)];
    }
  }
  return expected;
}

TEST(WeightKernel, ScalarAndAvx2AgreeBitwiseOnDenseColumns) {
  if (!simd::cpu_has_avx2()) {
    GTEST_SKIP() << "host CPU lacks AVX2; scalar-vs-vector kernel "
                    "cross-check not runnable here";
  }
  const BeamModel model;
  const std::size_t k = 13;  // beams: 3 transpose groups + a tail of 1
  LaserScan scan;
  scan.ranges.assign(k, 4.0F);
  scan.ranges[3] = 0.0F;
  scan.ranges[7] = static_cast<float>(model.params().max_range);
  std::vector<int> beam_indices(k);
  for (std::size_t j = 0; j < k; ++j) beam_indices[j] = static_cast<int>(j);

  pf_kernels::ScanContext ctx;
  ctx.build(model, scan, beam_indices);
  ASSERT_TRUE(ctx.dense_columns);  // every index valid -> transpose path
  ASSERT_EQ(ctx.scored_beams(), k);

  const std::size_t n = 37;
  expect_kernels_agree(ctx, hostile_expected(n, k, model), n, k);
}

TEST(WeightKernel, ScalarAndAvx2AgreeBitwiseOnSparseColumns) {
  if (!simd::cpu_has_avx2()) {
    GTEST_SKIP() << "host CPU lacks AVX2; scalar-vs-vector kernel "
                    "cross-check not runnable here";
  }
  const BeamModel model;
  // Beam indices past the measured scan get dropped by build(): the
  // surviving columns are non-contiguous, forcing the gather path.
  const std::size_t k = 11;
  LaserScan scan;
  scan.ranges.assign(6, 2.0F);
  std::vector<int> beam_indices(k);
  for (std::size_t j = 0; j < k; ++j) {
    beam_indices[j] = static_cast<int>(j % 2 == 0 ? j / 2 : 100 + j);
  }

  pf_kernels::ScanContext ctx;
  ctx.build(model, scan, beam_indices);
  ASSERT_FALSE(ctx.dense_columns);
  ASSERT_EQ(ctx.scored_beams(), 6u);

  const std::size_t n = 29;
  expect_kernels_agree(ctx, hostile_expected(n, k, model), n, k);
}

TEST(WeightKernel, ZeroScoredBeamsYieldsZeroLogWeight) {
  const BeamModel model;
  LaserScan scan;  // empty: every beam index is out of range
  pf_kernels::ScanContext ctx;
  const std::vector<int> beam_indices = {0, 1, 2};
  ctx.build(model, scan, beam_indices);
  ASSERT_EQ(ctx.scored_beams(), 0u);

  const std::size_t n = 9;
  const std::size_t k = 3;
  const std::vector<float> expected(n * k, 1.0F);
  std::vector<double> out(n, -1.0);
  pf_kernels::accumulate_log_weights_scalar(ctx, expected.data(), k, 0, n,
                                            out.data());
  for (double v : out) EXPECT_EQ(v, 0.0);
#if defined(SRL_SIMD_X86_AVX2)
  if (simd::cpu_has_avx2()) {
    std::vector<double> vout(n, -1.0);
    pf_kernels::accumulate_log_weights_avx2(ctx, expected.data(), k, 0, n,
                                            vout.data());
    for (double v : vout) EXPECT_EQ(v, 0.0);
  }
#endif
}

TEST(WeightKernel, MatchesBeamModelLogProbReference) {
  // The batched kernel is an optimization of sum_j log_prob(measured_j,
  // expected_ij); hold it to that definition exactly.
  const BeamModel model;
  const std::size_t k = 5;
  LaserScan scan;
  scan.ranges = {0.5F, 3.0F, 7.5F, 11.9F, 0.0F};
  std::vector<int> beam_indices = {0, 1, 2, 3, 4};
  pf_kernels::ScanContext ctx;
  ctx.build(model, scan, beam_indices);

  const std::size_t n = 6;
  const std::vector<float> expected = hostile_expected(n, k, model);
  std::vector<double> out(n, 0.0);
  pf_kernels::accumulate_log_weights_scalar(ctx, expected.data(), k, 0, n,
                                            out.data());
  for (std::size_t i = 0; i < n; ++i) {
    double reference = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      reference += model.log_prob(scan.ranges[j], expected[i * k + j]);
    }
    EXPECT_EQ(bits(out[i]), bits(reference)) << i;
  }
}

// ---------------------------------------------------------------------------
// Batched raycasting: ranges_from vs per-ray range(), scalar vs AVX2
// ---------------------------------------------------------------------------

/// A square room: free interior, one-cell walls, 10 m x 10 m at 5 cm.
std::shared_ptr<const OccupancyGrid> make_room() {
  auto grid = std::make_shared<OccupancyGrid>(200, 200, 0.05, Vec2{0.0, 0.0},
                                              OccupancyGrid::kFree);
  for (int i = 0; i < 200; ++i) {
    grid->at(i, 0) = OccupancyGrid::kOccupied;
    grid->at(i, 199) = OccupancyGrid::kOccupied;
    grid->at(0, i) = OccupancyGrid::kOccupied;
    grid->at(199, i) = OccupancyGrid::kOccupied;
  }
  return grid;
}

/// Beam fan spanning several full turns so the batched bin math hits every
/// wrap branch the per-ray path normalizes through.
std::vector<double> wrapping_beam_angles() {
  std::vector<double> angles;
  for (double a = -4.0 * kPi; a <= 4.0 * kPi; a += kPi / 7.0) {
    angles.push_back(a);
  }
  return angles;
}

TEST(RangesFrom, LutBatchMatchesPerRayBitwiseOnBothBackends) {
  auto room = make_room();
  const RangeLut lut{room, 12.0, 60, 1};
  const std::vector<double> angles = wrapping_beam_angles();
  const Pose2 sensors[] = {
      {5.0, 5.0, 0.3}, {1.0, 8.7, -2.0}, {9.2, 0.6, 1e7}, {2.5, 2.5, -4.0}};

  for (const Pose2& sensor : sensors) {
    std::vector<float> scalar_out(angles.size());
    simd::force(simd::Backend::kScalar);
    lut.ranges_from(sensor, angles, scalar_out);
    simd::reset();

    for (std::size_t j = 0; j < angles.size(); ++j) {
      const Pose2 ray{sensor.x, sensor.y, sensor.theta + angles[j]};
      EXPECT_EQ(bits(scalar_out[j]), bits(lut.range(ray))) << j;
    }

    if (simd::cpu_has_avx2()) {
      std::vector<float> avx2_out(angles.size());
      simd::force(simd::Backend::kAvx2);
      lut.ranges_from(sensor, angles, avx2_out);
      simd::reset();
      for (std::size_t j = 0; j < angles.size(); ++j) {
        EXPECT_EQ(bits(avx2_out[j]), bits(scalar_out[j])) << j;
      }
    }
  }
  if (!simd::cpu_has_avx2()) {
    std::fprintf(stderr,
                 "[simd] NOTE: host CPU lacks AVX2; LUT batch checked "
                 "against the scalar backend only\n");
  }
}

TEST(RangesFrom, LutOutOfMapSensorYieldsZeros) {
  auto room = make_room();
  const RangeLut lut{room, 12.0, 60, 1};
  const std::vector<double> angles = wrapping_beam_angles();
  const Pose2 outside[] = {{-5.0, -5.0, 0.7}, {1e6, 1e6, 0.0},
                           {0.01, 0.01, 0.3} /* wall cell */};
  for (const Pose2& sensor : outside) {
    std::vector<float> out(angles.size(), -1.0F);
    lut.ranges_from(sensor, angles, out);
    for (std::size_t j = 0; j < angles.size(); ++j) {
      EXPECT_EQ(out[j], 0.0F) << j;
      const Pose2 ray{sensor.x, sensor.y, sensor.theta + angles[j]};
      EXPECT_EQ(lut.range(ray), 0.0F) << j;
    }
  }
}

TEST(RangesFrom, CddtBatchMatchesPerRayBitwise) {
  auto room = make_room();
  const Cddt cddt{room, 12.0, 108};
  const std::vector<double> angles = wrapping_beam_angles();
  const Pose2 sensors[] = {
      {5.0, 5.0, 0.0}, {8.3, 1.4, 2.9}, {0.6, 9.3, -1e7}, {-2.0, 5.0, 0.0}};
  for (const Pose2& sensor : sensors) {
    std::vector<float> out(angles.size(), -1.0F);
    cddt.ranges_from(sensor, angles, out);
    for (std::size_t j = 0; j < angles.size(); ++j) {
      const Pose2 ray{sensor.x, sensor.y, sensor.theta + angles[j]};
      EXPECT_EQ(bits(out[j]), bits(cddt.range(ray))) << j;
    }
  }
}

}  // namespace
}  // namespace srl
