#include "common/angles.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace srl {
namespace {

TEST(Angles, NormalizeIdentityInRange) {
  EXPECT_DOUBLE_EQ(normalize_angle(0.0), 0.0);
  EXPECT_DOUBLE_EQ(normalize_angle(1.0), 1.0);
  EXPECT_DOUBLE_EQ(normalize_angle(-1.0), -1.0);
  EXPECT_DOUBLE_EQ(normalize_angle(3.0), 3.0);
}

TEST(Angles, NormalizeWraps) {
  EXPECT_NEAR(normalize_angle(kTwoPi), 0.0, 1e-12);
  EXPECT_NEAR(normalize_angle(-kTwoPi), 0.0, 1e-12);
  EXPECT_NEAR(normalize_angle(kPi + 0.1), -kPi + 0.1, 1e-12);
  EXPECT_NEAR(normalize_angle(-kPi - 0.1), kPi - 0.1, 1e-12);
  EXPECT_NEAR(normalize_angle(5.0 * kTwoPi + 0.3), 0.3, 1e-9);
}

TEST(Angles, HalfOpenIntervalConvention) {
  // Result must lie in (-pi, pi]: +pi maps to itself, -pi to +pi.
  EXPECT_DOUBLE_EQ(normalize_angle(kPi), kPi);
  EXPECT_DOUBLE_EQ(normalize_angle(-kPi), kPi);
}

TEST(Angles, DiffIsShortestArc) {
  EXPECT_NEAR(angle_diff(0.1, -0.1), 0.2, 1e-12);
  EXPECT_NEAR(angle_diff(-0.1, 0.1), -0.2, 1e-12);
  // Crossing the wrap: 179 deg to -179 deg is a 2 deg move.
  EXPECT_NEAR(angle_diff(deg2rad(-179.0), deg2rad(179.0)), deg2rad(2.0),
              1e-12);
}

TEST(Angles, DistSymmetricNonNegative) {
  EXPECT_NEAR(angle_dist(deg2rad(170.0), deg2rad(-170.0)), deg2rad(20.0),
              1e-12);
  EXPECT_NEAR(angle_dist(deg2rad(-170.0), deg2rad(170.0)), deg2rad(20.0),
              1e-12);
  EXPECT_GE(angle_dist(2.1, -2.9), 0.0);
}

TEST(Angles, Deg2RadRoundTrip) {
  for (double d = -720.0; d <= 720.0; d += 37.0) {
    EXPECT_NEAR(rad2deg(deg2rad(d)), d, 1e-9);
  }
}

TEST(Angles, LerpShortestPath) {
  EXPECT_NEAR(angle_lerp(0.0, 1.0, 0.5), 0.5, 1e-12);
  // Interpolating across the wrap goes the short way.
  const double a = deg2rad(170.0);
  const double b = deg2rad(-170.0);
  EXPECT_NEAR(angle_lerp(a, b, 0.5), kPi, 1e-9);
  EXPECT_NEAR(angle_lerp(a, b, 0.0), a, 1e-12);
  EXPECT_NEAR(angle_lerp(a, b, 1.0), normalize_angle(b), 1e-9);
}

TEST(WrapInto, IdentityInRange) {
  EXPECT_DOUBLE_EQ(wrap_into(0.0, kTwoPi), 0.0);
  EXPECT_DOUBLE_EQ(wrap_into(1.5, kTwoPi), 1.5);
  EXPECT_DOUBLE_EQ(wrap_into(kTwoPi - 1e-9, kTwoPi), kTwoPi - 1e-9);
}

TEST(WrapInto, FastPathsMatchFmod) {
  // One turn below / above the range (the hot-path branches).
  EXPECT_NEAR(wrap_into(-0.3, kTwoPi), kTwoPi - 0.3, 1e-12);
  EXPECT_NEAR(wrap_into(kTwoPi + 0.3, kTwoPi), 0.3, 1e-12);
  EXPECT_NEAR(wrap_into(-kPi, kTwoPi), kPi, 1e-12);
}

TEST(WrapInto, ArbitraryMagnitudeStaysInRange) {
  // Regression: the old per-backend `while (phi < 0) phi += 2pi;` loops ran
  // O(|phi|) iterations and never terminated for non-finite input.
  for (double a : {1e9, -1e9, 7.25e15, -7.25e15, 123456.789, -123456.789}) {
    const double w = wrap_into(a, kTwoPi);
    EXPECT_GE(w, 0.0) << a;
    EXPECT_LT(w, kTwoPi) << a;
    // The mod-consistency check needs `a - w` to be representable; above
    // ~2^52 the ulp of `a` exceeds the period and the check is meaningless.
    if (std::abs(a) < 1e12) {
      EXPECT_NEAR(std::remainder(a - w, kTwoPi), 0.0, 1e-6) << a;
    }
  }
}

TEST(WrapInto, HalfTurnPeriod) {
  // CDDT folds headings into [0, pi).
  EXPECT_NEAR(wrap_into(kPi + 0.2, kPi), 0.2, 1e-12);
  EXPECT_NEAR(wrap_into(-0.2, kPi), kPi - 0.2, 1e-12);
  const double w = wrap_into(-1e7, kPi);
  EXPECT_GE(w, 0.0);
  EXPECT_LT(w, kPi);
}

TEST(WrapInto, NonFiniteWrapsToZero) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(wrap_into(std::numeric_limits<double>::quiet_NaN(), kTwoPi),
                   0.0);
  EXPECT_DOUBLE_EQ(wrap_into(kInf, kTwoPi), 0.0);
  EXPECT_DOUBLE_EQ(wrap_into(-kInf, kTwoPi), 0.0);
}

TEST(WrapInto, NeverReturnsPeriodExactly) {
  // -eps + period rounds to exactly `period` in double; the contract is the
  // half-open interval [0, period), which downstream bin indexing relies on.
  const double w = wrap_into(-1e-18, kTwoPi);
  EXPECT_GE(w, 0.0);
  EXPECT_LT(w, kTwoPi);
}

/// Property: normalize_angle is idempotent and preserves the angle mod 2pi.
class AngleSweep : public ::testing::TestWithParam<double> {};

TEST_P(AngleSweep, NormalizePreservesValueMod2Pi) {
  const double a = GetParam();
  const double n = normalize_angle(a);
  EXPECT_GT(n, -kPi);
  EXPECT_LE(n, kPi);
  EXPECT_NEAR(std::remainder(a - n, kTwoPi), 0.0, 1e-9);
  EXPECT_NEAR(normalize_angle(n), n, 1e-12);
}

TEST_P(AngleSweep, DiffInverseOfAddition) {
  const double a = GetParam();
  const double b = 0.7;
  EXPECT_NEAR(angle_dist(normalize_angle(b + angle_diff(a, b)),
                         normalize_angle(a)),
              0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AngleSweep,
                         ::testing::Values(-100.0, -7.5, -3.2, -1.0, -1e-9,
                                           0.0, 1e-9, 0.5, 3.13, 3.15, 42.0,
                                           1000.0));

}  // namespace
}  // namespace srl
