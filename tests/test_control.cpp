#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.hpp"
#include "control/pure_pursuit.hpp"
#include "control/speed_profile.hpp"
#include "gridmap/track_generator.hpp"
#include "track/raceline.hpp"

namespace srl {
namespace {

std::vector<Vec2> circle(double r, int n) {
  std::vector<Vec2> pts;
  for (int i = 0; i < n; ++i) {
    const double a = kTwoPi * i / n;
    pts.emplace_back(r * std::cos(a), r * std::sin(a));
  }
  return pts;
}

TEST(SpeedProfile, RespectsCurvatureCap) {
  const Raceline line{circle(2.0, 256)};  // constant curvature 0.5
  SpeedProfileParams params;
  params.a_lat_budget = 4.0;
  params.v_max = 10.0;
  const SpeedProfile profile{line, params};
  const double expected = std::sqrt(4.0 / 0.5);
  for (double s = 0.0; s < line.length(); s += 0.9) {
    EXPECT_NEAR(profile.speed(s), expected, 0.3);
  }
}

TEST(SpeedProfile, FasterOnStraights) {
  const Track track = TrackGenerator::oval(10.0, 2.0);
  const Raceline line{track.centerline};
  const SpeedProfile profile{line, SpeedProfileParams{}};
  // Locate a mid-straight and a mid-corner sample.
  double v_straight = 0.0;
  double v_corner = 1e9;
  for (double s = 0.0; s < line.length(); s += 0.2) {
    const double k = std::abs(line.curvature(s));
    if (k < 0.02) v_straight = std::max(v_straight, profile.speed(s));
    if (k > 0.4) v_corner = std::min(v_corner, profile.speed(s));
  }
  EXPECT_GT(v_straight, v_corner + 1.0);
}

TEST(SpeedProfile, AccelLimitBetweenSamples) {
  const Track track = TrackGenerator::test_track();
  const Raceline line{track.centerline};
  SpeedProfileParams params;
  const SpeedProfile profile{line, params};
  const double ds = 0.1;
  for (double s = 0.0; s < line.length(); s += ds) {
    const double v0 = profile.speed(s);
    const double v1 = profile.speed(s + ds);
    if (v1 > v0) {
      // v1^2 <= v0^2 + 2 a ds (+ tolerance for sampling)
      EXPECT_LE(v1 * v1,
                v0 * v0 + 2.0 * params.a_long_accel * ds + 0.35);
    } else {
      EXPECT_LE(v0 * v0,
                v1 * v1 + 2.0 * params.a_long_brake * ds + 0.35);
    }
  }
}

TEST(SpeedProfile, BoundsAndScale) {
  const Track track = TrackGenerator::oval(8.0, 2.5);
  const Raceline line{track.centerline};
  SpeedProfileParams params;
  params.scale = 0.5;
  const SpeedProfile half{line, params};
  params.scale = 1.0;
  const SpeedProfile full{line, params};
  EXPECT_LT(half.max_speed(), 0.6 * full.max_speed());
  EXPECT_GE(half.min_speed(), params.v_min);
  EXPECT_LE(full.max_speed(), params.v_max + 1e-9);
}

TEST(PurePursuit, ZeroSteerOnStraightLine) {
  const Track track = TrackGenerator::oval(10.0, 2.5);
  const Raceline line{track.centerline};
  const SpeedProfile profile{line, SpeedProfileParams{}};
  const PurePursuit pp{PurePursuitParams{}, AckermannParams{}};
  // Mid bottom straight, on the line, heading along it (+x).
  const DriveCommand cmd =
      pp.control(Pose2{0.0, -2.5, 0.0}, 4.0, line, profile);
  EXPECT_NEAR(cmd.steer, 0.0, 0.03);
  EXPECT_GT(cmd.target_speed, 1.0);
}

TEST(PurePursuit, SteersBackWhenOffsetLeft) {
  const Track track = TrackGenerator::oval(10.0, 2.5);
  const Raceline line{track.centerline};
  const SpeedProfile profile{line, SpeedProfileParams{}};
  const PurePursuit pp{PurePursuitParams{}, AckermannParams{}};
  // 0.3 m left of the bottom straight: must steer right (negative).
  const DriveCommand cmd =
      pp.control(Pose2{0.0, -2.2, 0.0}, 3.0, line, profile);
  EXPECT_LT(cmd.steer, -0.01);
  // Offset right: steer left.
  const DriveCommand cmd2 =
      pp.control(Pose2{0.0, -2.8, 0.0}, 3.0, line, profile);
  EXPECT_GT(cmd2.steer, 0.01);
}

TEST(PurePursuit, SteersIntoCorner) {
  const Raceline line{circle(3.0, 256)};  // CCW circle: always turning left
  const SpeedProfile profile{line, SpeedProfileParams{}};
  const PurePursuit pp{PurePursuitParams{}, AckermannParams{}};
  const DriveCommand cmd =
      pp.control(Pose2{3.0, 0.0, kPi / 2.0}, 2.0, line, profile);
  EXPECT_GT(cmd.steer, 0.05);  // left = positive
}

TEST(PurePursuit, KinematicRolloutConvergesToLine) {
  const Track track = TrackGenerator::oval(10.0, 2.5);
  const Raceline line{track.centerline};
  SpeedProfileParams sp;
  sp.scale = 0.5;  // gentle speeds: pure kinematics below
  const SpeedProfile profile{line, sp};
  const AckermannParams ack;
  const PurePursuit pp{PurePursuitParams{}, ack};

  // Start 0.5 m off the line; roll a kinematic bicycle for 6 s.
  Pose2 pose{0.0, -2.0, 0.0};
  double v = 2.0;
  const double dt = 0.01;
  for (int i = 0; i < 600; ++i) {
    const DriveCommand cmd = pp.control(pose, v, line, profile);
    v += std::clamp(cmd.target_speed - v, -3.0 * dt, 3.0 * dt);
    const double kappa = steer_to_curvature(ack, cmd.steer);
    pose = integrate_twist(pose, Twist2{v, 0.0, v * kappa}, dt).normalized();
  }
  const auto proj = line.project({pose.x, pose.y});
  EXPECT_LT(std::abs(proj.lateral), 0.12);
}

TEST(PurePursuit, LookaheadGrowsWithSpeed) {
  // Indirect check: at higher believed speed, the commanded curvature for
  // the same lateral offset is gentler (longer lookahead).
  const Track track = TrackGenerator::oval(10.0, 2.5);
  const Raceline line{track.centerline};
  const SpeedProfile profile{line, SpeedProfileParams{}};
  const PurePursuit pp{PurePursuitParams{}, AckermannParams{}};
  const Pose2 offset{0.0, -2.1, 0.0};
  const DriveCommand slow = pp.control(offset, 1.0, line, profile);
  const DriveCommand fast = pp.control(offset, 7.0, line, profile);
  EXPECT_LT(std::abs(fast.steer), std::abs(slow.steer));
}

}  // namespace
}  // namespace srl
