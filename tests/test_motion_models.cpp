#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.hpp"
#include "common/stats.hpp"
#include "motion/ackermann.hpp"
#include "motion/diff_drive.hpp"
#include "motion/tum_model.hpp"

namespace srl {
namespace {

OdometryDelta straight(double dist, double v) {
  OdometryDelta d;
  d.delta = Pose2{dist, 0.0, 0.0};
  d.v = v;
  d.dt = v > 0.0 ? dist / v : 0.0;
  return d;
}

/// Sample `n` successors and collect dispersion statistics.
struct CloudStats {
  RunningStats along;    ///< displacement along the commanded direction
  RunningStats lateral;  ///< perpendicular displacement
  std::vector<double> headings;
};

CloudStats sample_cloud(const MotionModel& model, const OdometryDelta& odom,
                        int n, std::uint64_t seed) {
  CloudStats s;
  Rng rng{seed};
  for (int i = 0; i < n; ++i) {
    const Pose2 out = model.sample(Pose2{}, odom, rng);
    s.along.add(out.x);
    s.lateral.add(out.y);
    s.headings.push_back(out.theta);
  }
  return s;
}

TEST(Ackermann, CurvatureEnvelope) {
  const AckermannParams p;
  // Low speed: geometric steering limit.
  EXPECT_NEAR(max_curvature(p, 0.0), std::tan(p.max_steer) / p.wheelbase,
              1e-12);
  // High speed: grip limit a_lat / v^2 binds and shrinks with speed.
  const double k5 = max_curvature(p, 5.0);
  const double k7 = max_curvature(p, 7.0);
  EXPECT_NEAR(k5, p.max_lat_accel / 25.0, 1e-12);
  EXPECT_GT(k5, k7);
}

TEST(Ackermann, SteerCurvatureRoundTrip) {
  const AckermannParams p;
  for (double steer = -0.35; steer <= 0.35; steer += 0.07) {
    EXPECT_NEAR(curvature_to_steer(p, steer_to_curvature(p, steer)), steer,
                1e-9);
  }
}

TEST(DiffDrive, MeanFollowsOdometry) {
  const DiffDriveModel model;
  const auto s = sample_cloud(model, straight(0.2, 2.0), 20000, 11);
  EXPECT_NEAR(s.along.mean(), 0.2, 0.01);
  EXPECT_NEAR(s.lateral.mean(), 0.0, 0.01);
  EXPECT_NEAR(circular_mean(s.headings), 0.0, 0.01);
}

TEST(DiffDrive, DispersionGrowsWithTranslation) {
  const DiffDriveModel model;
  const auto slow = sample_cloud(model, straight(0.05, 1.0), 5000, 3);
  const auto fast = sample_cloud(model, straight(0.4, 8.0), 5000, 3);
  EXPECT_GT(fast.along.stddev(), slow.along.stddev());
  EXPECT_GT(circular_stddev(fast.headings), circular_stddev(slow.headings));
}

TEST(DiffDrive, PureRotationDecomposition) {
  const DiffDriveModel model;
  OdometryDelta turn;
  turn.delta = Pose2{0.0, 0.0, 0.5};
  turn.v = 0.0;
  turn.dt = 0.1;
  const auto s = sample_cloud(model, turn, 20000, 4);
  EXPECT_NEAR(circular_mean(s.headings), 0.5, 0.01);
  EXPECT_NEAR(s.along.mean(), 0.0, 0.01);
}

TEST(TumModel, LowSpeedMatchesDiffDriveScale) {
  // Fig. 1 left: at crawling speed the TUM model is diff-drive-like — the
  // curvature envelope is far from binding.
  const TumMotionModel tum;
  const double trans = 0.05;
  const double v = 0.5;
  const double cap = tum.params().beta_curvature *
                     max_curvature(tum.params().ackermann, v) * trans;
  const double uncapped = tum.params().alpha_rot_trans * trans;
  EXPECT_LT(uncapped, cap);  // cap inactive at low speed
}

TEST(TumModel, HighSpeedHeadingDispersionShrinks) {
  // Fig. 1 right: at 7 m/s the heading dispersion per meter must be far
  // smaller than the diff-drive equivalent.
  const TumMotionModel tum;
  const DiffDriveModel diff;
  const OdometryDelta odom = straight(0.35, 7.0);  // one 50 ms step at 7 m/s
  const auto tum_cloud = sample_cloud(tum, odom, 8000, 21);
  const auto diff_cloud = sample_cloud(diff, odom, 8000, 21);
  EXPECT_LT(circular_stddev(tum_cloud.headings),
            0.5 * circular_stddev(diff_cloud.headings));
  EXPECT_LT(tum_cloud.lateral.stddev(), diff_cloud.lateral.stddev());
}

TEST(TumModel, HeadingSigmaCapScalesWithSpeed) {
  const TumMotionModel tum;
  const double trans = 0.2;
  EXPECT_GT(tum.heading_sigma(trans, 1.0), tum.heading_sigma(trans, 7.0));
}

TEST(TumModel, ClampRejectsInfeasibleYaw) {
  // Steering-derived odometry reporting an impossible yaw for 7 m/s gets
  // clamped to the feasible envelope.
  TumModelParams params;
  params.clamp_mean_heading = true;
  const TumMotionModel tum{params};
  OdometryDelta odom;
  odom.delta = Pose2{0.175, 0.0, 0.15};  // 0.86 rad/m at 7 m/s: infeasible
  odom.v = 7.0;
  odom.dt = 0.025;
  const auto s = sample_cloud(tum, odom, 8000, 9);
  const double envelope = params.envelope_margin *
                              max_curvature(params.ackermann, 7.0) * 0.175 +
                          params.sigma_floor_theta;
  EXPECT_LT(std::abs(circular_mean(s.headings)), envelope + 0.01);
  EXPECT_LT(std::abs(circular_mean(s.headings)), 0.15);
}

TEST(TumModel, ClampDisabledKeepsMean) {
  TumModelParams params;
  params.clamp_mean_heading = false;
  const TumMotionModel tum{params};
  OdometryDelta odom;
  odom.delta = Pose2{0.175, 0.0, 0.15};
  odom.v = 7.0;
  odom.dt = 0.025;
  const auto s = sample_cloud(tum, odom, 8000, 9);
  EXPECT_NEAR(circular_mean(s.headings), 0.15, 0.02);
}

TEST(TumModel, FeasibleYawPassesThrough) {
  const TumMotionModel tum;
  OdometryDelta odom;
  odom.delta = Pose2{0.2, 0.0, 0.02};  // 0.1 rad/m at 2 m/s: feasible
  odom.v = 2.0;
  odom.dt = 0.1;
  const auto s = sample_cloud(tum, odom, 8000, 13);
  EXPECT_NEAR(circular_mean(s.headings), 0.02, 0.01);
}

TEST(TumModel, LongitudinalDispersionNotCapped) {
  // Slip robustness: longitudinal noise keeps growing with distance even at
  // high speed (the filter must absorb wheel slip).
  const TumMotionModel tum;
  const auto short_step = sample_cloud(tum, straight(0.1, 7.0), 5000, 31);
  const auto long_step = sample_cloud(tum, straight(0.4, 7.0), 5000, 31);
  EXPECT_GT(long_step.along.stddev(), 2.0 * short_step.along.stddev());
}

TEST(MotionModels, DeterministicGivenSeed) {
  const TumMotionModel tum;
  Rng a{55};
  Rng b{55};
  const OdometryDelta odom = straight(0.3, 5.0);
  for (int i = 0; i < 20; ++i) {
    const Pose2 pa = tum.sample(Pose2{1, 2, 0.3}, odom, a);
    const Pose2 pb = tum.sample(Pose2{1, 2, 0.3}, odom, b);
    EXPECT_DOUBLE_EQ(pa.x, pb.x);
    EXPECT_DOUBLE_EQ(pa.theta, pb.theta);
  }
}

/// Fig. 1 property across speeds: the ratio of TUM to diff-drive heading
/// dispersion decreases monotonically as speed rises.
class SpeedSweep : public ::testing::TestWithParam<double> {};

TEST_P(SpeedSweep, TumNeverWiderThanDiffDrive) {
  const double v = GetParam();
  const TumMotionModel tum;
  const DiffDriveModel diff;
  const OdometryDelta odom = straight(v * 0.05, v);
  const auto tc = sample_cloud(tum, odom, 4000, 71);
  const auto dc = sample_cloud(diff, odom, 4000, 71);
  EXPECT_LE(circular_stddev(tc.headings),
            circular_stddev(dc.headings) * 1.15)
      << "v = " << v;
}

INSTANTIATE_TEST_SUITE_P(Speeds, SpeedSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 3.0, 5.0, 7.0));

}  // namespace
}  // namespace srl
