/// \file test_u64_set.cpp
/// \brief U64Set — the deterministic distinct-key set that replaced
/// std::unordered_set in the particle filter's KLD bin counter (det-unordered
/// rule). Distinct-count semantics must match a reference ordered set exactly
/// through growth, duplicates and adversarial key patterns.

#include "common/u64_set.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "common/rng.hpp"

namespace srl {
namespace {

TEST(U64Set, StartsEmpty) {
  U64Set s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_FALSE(s.contains(0));
  EXPECT_FALSE(s.contains(~0ull));
}

TEST(U64Set, InsertReportsNovelty) {
  U64Set s;
  EXPECT_TRUE(s.insert(7));
  EXPECT_FALSE(s.insert(7));  // duplicate
  EXPECT_TRUE(s.insert(8));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(7));
  EXPECT_TRUE(s.contains(8));
  EXPECT_FALSE(s.contains(9));
}

TEST(U64Set, ZeroAndMaxAreOrdinaryKeys) {
  U64Set s;
  EXPECT_TRUE(s.insert(0));
  EXPECT_TRUE(s.insert(~0ull));
  EXPECT_FALSE(s.insert(0));
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(~0ull));
  EXPECT_EQ(s.size(), 2u);
}

TEST(U64Set, GrowsThroughManyInsertsAndMatchesReferenceSet) {
  U64Set s;
  std::set<std::uint64_t> ref;
  Rng rng{20260808};
  for (int i = 0; i < 20000; ++i) {
    // Mix of fresh and repeated keys in a narrow range to force collisions.
    const auto key = static_cast<std::uint64_t>(rng.uniform_int(0, 4999));
    EXPECT_EQ(s.insert(key), ref.insert(key).second) << "key " << key;
    EXPECT_EQ(s.size(), ref.size());
  }
  for (std::uint64_t k = 0; k < 5000; ++k) {
    EXPECT_EQ(s.contains(k), ref.count(k) == 1) << "key " << k;
  }
}

TEST(U64Set, SequentialKeysStressLinearProbing) {
  // Sequential integers are the worst case for weak hash mixing; splitmix64
  // scatters them, and linear probing must still resolve every collision.
  U64Set s{1000};
  for (std::uint64_t k = 0; k < 10000; ++k) EXPECT_TRUE(s.insert(k));
  EXPECT_EQ(s.size(), 10000u);
  for (std::uint64_t k = 0; k < 10000; ++k) EXPECT_TRUE(s.contains(k));
  for (std::uint64_t k = 10000; k < 10100; ++k) EXPECT_FALSE(s.contains(k));
}

TEST(U64Set, ExpectedCapacityAvoidsEarlyGrowthButIsNotALimit) {
  U64Set s{16};
  for (std::uint64_t k = 0; k < 1000; ++k) s.insert(k * 2654435761u);
  EXPECT_EQ(s.size(), 1000u);
}

TEST(U64Set, KldBinPattern) {
  // The particle-filter usage: hash 3-D bin coordinates into one key and
  // count distinct bins. Same key composition as particle_filter.cpp.
  U64Set bins;
  std::set<std::uint64_t> ref;
  for (int x = -8; x < 8; ++x) {
    for (int y = -8; y < 8; ++y) {
      for (int t = 0; t < 4; ++t) {
        const auto key = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(x)) << 40) ^
                         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(y)) << 16) ^
                         static_cast<std::uint64_t>(static_cast<std::uint32_t>(t));
        bins.insert(key);
        ref.insert(key);
      }
    }
  }
  EXPECT_EQ(bins.size(), ref.size());
}

}  // namespace
}  // namespace srl
