#include "eval/postmortem.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "eval/scenario_matrix.hpp"
#include "gridmap/track_generator.hpp"
#include "telemetry/flight_recorder.hpp"

namespace srl {
namespace {

// ------------------------------------------------------ recorder unit tests

TEST(FlightRecorder, RingKeepsMostRecentWindow) {
  telemetry::FlightRecorderConfig cfg;
  cfg.window = 8;
  telemetry::FlightRecorder rec{cfg};
  for (int i = 0; i < 20; ++i) {
    telemetry::TickSnapshot snap;
    snap.tick = static_cast<std::uint64_t>(i);
    snap.t = 0.1 * i;
    snap.est_x = static_cast<double>(i);
    rec.record_tick(snap);
  }
  EXPECT_EQ(rec.ticks(), 20u);
  const std::vector<telemetry::TickSnapshot> window = rec.window();
  ASSERT_EQ(window.size(), 8u);
  // Chronological order, most recent 8 of the 20.
  for (std::size_t i = 0; i < window.size(); ++i) {
    EXPECT_EQ(window[i].tick, 12u + i);
  }
}

TEST(FlightRecorder, EstimateHashIsOrderSensitive) {
  auto hash_of = [](std::initializer_list<double> xs) {
    telemetry::FlightRecorder rec;
    for (const double x : xs) {
      telemetry::TickSnapshot snap;
      snap.est_x = x;
      rec.record_tick(snap);
    }
    return rec.estimate_hash();
  };
  EXPECT_EQ(hash_of({1.0, 2.0}), hash_of({1.0, 2.0}));
  EXPECT_NE(hash_of({1.0, 2.0}), hash_of({2.0, 1.0}));
  EXPECT_NE(hash_of({1.0}), hash_of({1.0, 1.0}));
}

TEST(FlightRecorder, TickProbeEnrichesSnapshots) {
  telemetry::FlightRecorder rec;
  rec.set_tick_probe([](telemetry::TickSnapshot& snap) {
    snap.ess_fraction = 0.5;
    snap.digest = {1.0, 2.0, 3.0, 4.0};
  });
  rec.record_tick({});
  const auto window = rec.window();
  ASSERT_EQ(window.size(), 1u);
  EXPECT_DOUBLE_EQ(window[0].ess_fraction, 0.5);
  EXPECT_EQ(window[0].digest.size(), 4u);
}

TEST(FlightRecorder, DumpBudgetAndPaths) {
  telemetry::FlightRecorderConfig cfg;
  cfg.max_dumps = 2;
  cfg.dump_dir =
      (std::filesystem::path{::testing::TempDir()} / "srl_bb_budget").string();
  cfg.label = "budget";
  telemetry::FlightRecorder rec{cfg};
  EXPECT_TRUE(rec.can_dump());
  EXPECT_EQ(rec.next_dump_path("divergence"),
            cfg.dump_dir + "/budget-divergence-0.json");
  ASSERT_TRUE(rec.dump(rec.next_dump_path("divergence"), "divergence", 1.0,
                       json::Value::object()));
  ASSERT_TRUE(rec.dump(rec.next_dump_path("crash"), "crash", 2.0,
                       json::Value::object()));
  EXPECT_FALSE(rec.can_dump());
  EXPECT_EQ(rec.next_dump_path("crash"), "");
  EXPECT_EQ(rec.dump_paths().size(), 2u);
  std::filesystem::remove_all(cfg.dump_dir);
}

TEST(FlightRecorder, TraceSidecarPathSwapsExtension) {
  EXPECT_EQ(telemetry::FlightRecorder::trace_sidecar_path("a/b/run-0.json"),
            "a/b/run-0.srlt");
}

// ------------------------------------------- end-to-end postmortem pipeline

// One supervised SynPF cell kidnapped mid-run: the divergence episode must
// dump a black box, and the black box must replay bitwise at 1 and 8
// filter lanes. This is the CI smoke for the whole record -> dump -> replay
// contract.
class PostmortemPipeline : public ::testing::Test {
 protected:
  static ScenarioMatrixConfig base_config() {
    ScenarioMatrixConfig config;
    config.localizers = {"SynPF+Recovery"};
    config.scenarios = {{"kidnap", 1.0}};
    config.n_particles = 400;
    config.experiment.laps = 1000000;  // kidnap cells run the clock out
    config.experiment.max_sim_time = 18.0;
    config.experiment.profile.scale = 0.5;
    config.kidnap_time = 6.0;
    config.track_name = "oval:8,2.5";
    return config;
  }
  static Track track() { return TrackGenerator::oval(8.0, 2.5); }
};

TEST_F(PostmortemPipeline, KidnapDumpsAndReplaysBitwise) {
  const std::string dir =
      (std::filesystem::path{::testing::TempDir()} / "srl_bb_e2e").string();
  std::filesystem::remove_all(dir);

  ScenarioMatrixConfig config = base_config();
  config.blackbox_dir = dir;
  const ScenarioMatrix matrix{config};
  const std::vector<ScenarioCell> cells = matrix.run(track());
  ASSERT_EQ(cells.size(), 1u);
  const ScenarioCell& cell = cells[0];

  // The kidnap must have opened a divergence episode and dumped a box.
  EXPECT_GE(cell.divergence_episodes, 1);
  ASSERT_FALSE(cell.blackboxes.empty());
  EXPECT_GT(cell.events_total, 0u);
  EXPECT_GT(cell.events_error, 0u);  // experiment.divergence_open is error

  const std::optional<Blackbox> box = load_blackbox(cell.blackboxes.front());
  ASSERT_TRUE(box.has_value());
  EXPECT_EQ(box->reason, "divergence");
  ASSERT_TRUE(box->has_stack);
  EXPECT_EQ(box->stack.localizer, "SynPF+Recovery");
  EXPECT_EQ(box->stack.track, "oval:8,2.5");
  ASSERT_TRUE(box->has_trace);
  EXPECT_GT(box->ticks, 0u);
  EXPECT_FALSE(box->events.empty());

  // The rendered timeline mentions the kidnap and the divergence.
  const std::string timeline = render_timeline(*box);
  EXPECT_NE(timeline.find("experiment.kidnap"), std::string::npos);
  EXPECT_NE(timeline.find("experiment.divergence_open"), std::string::npos);

  // Bitwise replay at the recorded lane count and at 8 lanes.
  const PostmortemReplay r1 = replay_blackbox(*box);
  ASSERT_TRUE(r1.ok) << r1.error;
  EXPECT_TRUE(r1.bitwise_match) << r1.error;
  EXPECT_EQ(r1.ticks, box->ticks);
  EXPECT_EQ(r1.estimate_hash, box->estimate_hash);

  const PostmortemReplay r8 = replay_blackbox(*box, 8);
  ASSERT_TRUE(r8.ok) << r8.error;
  EXPECT_TRUE(r8.bitwise_match) << r8.error;

  std::filesystem::remove_all(dir);
}

TEST_F(PostmortemPipeline, RecorderOffIsBitwiseNoOp) {
  const std::string dir =
      (std::filesystem::path{::testing::TempDir()} / "srl_bb_noop").string();
  std::filesystem::remove_all(dir);

  ScenarioMatrixConfig on_cfg = base_config();
  on_cfg.blackbox_dir = dir;
  ScenarioMatrixConfig off_cfg = base_config();
  off_cfg.blackbox_dir.clear();

  const std::vector<ScenarioCell> on = ScenarioMatrix{on_cfg}.run(track());
  const std::vector<ScenarioCell> off = ScenarioMatrix{off_cfg}.run(track());
  ASSERT_EQ(on.size(), 1u);
  ASSERT_EQ(off.size(), 1u);

  // Recorder on vs off: every physics-derived metric identical to the bit.
  EXPECT_EQ(on[0].result.lateral_mean_cm, off[0].result.lateral_mean_cm);
  EXPECT_EQ(on[0].result.lateral_std_cm, off[0].result.lateral_std_cm);
  EXPECT_EQ(on[0].result.scan_alignment, off[0].result.scan_alignment);
  EXPECT_EQ(on[0].result.crashed, off[0].result.crashed);
  EXPECT_EQ(on[0].divergence_episodes, off[0].divergence_episodes);
  EXPECT_EQ(on[0].recoveries, off[0].recoveries);

  // The journal runs either way (events are sink-level, not recorder-level);
  // only the black-box artifacts require the recorder.
  EXPECT_EQ(on[0].events_total, off[0].events_total);
  EXPECT_EQ(off[0].blackboxes.size(), 0u);
  EXPECT_FALSE(on[0].blackboxes.empty());

  std::filesystem::remove_all(dir);
}

TEST(StackSpec, JsonRoundTrip) {
  PostmortemStackSpec spec;
  spec.track = "oval:8,2.5";
  spec.localizer = "SynPF+Recovery";
  spec.n_particles = 777;
  spec.threads = 4;
  spec.range = "lut";
  spec.beams = 42;
  spec.pf_seed = 99;
  spec.fault = "lidar_dropout";
  spec.severity = 0.5;
  spec.fault_seed = 0xabcdefULL;

  PostmortemStackSpec back;
  ASSERT_TRUE(stack_spec_from_json(stack_spec_to_json(spec), back));
  EXPECT_EQ(back.track, spec.track);
  EXPECT_EQ(back.localizer, spec.localizer);
  EXPECT_EQ(back.n_particles, spec.n_particles);
  EXPECT_EQ(back.threads, spec.threads);
  EXPECT_EQ(back.range, spec.range);
  EXPECT_EQ(back.beams, spec.beams);
  EXPECT_EQ(back.pf_seed, spec.pf_seed);
  EXPECT_EQ(back.fault, spec.fault);
  EXPECT_EQ(back.severity, spec.severity);
  EXPECT_EQ(back.fault_seed, spec.fault_seed);
}

TEST(Blackbox, LoadRejectsWrongSchemaAndMissingFile) {
  EXPECT_FALSE(load_blackbox("/nonexistent/srl/box.json").has_value());
  const std::string path =
      (std::filesystem::path{::testing::TempDir()} / "srl_bad_schema.json")
          .string();
  json::Value v = json::Value::object();
  v.set("schema", json::Value::string("srl.other/9"));
  ASSERT_TRUE(v.save(path));
  EXPECT_FALSE(load_blackbox(path).has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace srl
