/// Golden-trace regression wall for the single-threaded SynPF path.
///
/// A short oval lap was recorded once (DeadReckoning driver, so the sensor
/// stream is independent of any filter) and committed under tests/data/
/// together with the hexfloat-exact pose estimates SynPF produced on it.
/// This test replays the committed trace and demands *bitwise* identical
/// estimates and accuracy metrics: any numeric drift in the motion model,
/// beam model, raycaster, resampler, RNG stream schedule, or reduction
/// order fails loudly here instead of silently shifting benchmark tables.
///
/// Regenerating (only after an *intentional* numeric change):
///
///     SRL_REGEN_GOLDEN=1 ./build/tests/test_golden_trace
///
/// then commit the rewritten files with a note on what moved and why.
///
/// Portability: the golden bits pin one platform family. mt19937_64 output
/// is standard-specified, but libstdc++'s distributions and libm's
/// transcendentals are implementation-defined, so a different stdlib may
/// legitimately produce different bits — regenerate there rather than
/// loosening the comparison.

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <string>
#include <vector>

#include "core/synpf.hpp"
#include "eval/dead_reckoning.hpp"
#include "eval/experiment.hpp"
#include "eval/trace.hpp"
#include "gridmap/track_generator.hpp"
#include "slam/pure_localization.hpp"

#ifndef SRL_TEST_DATA_DIR
#define SRL_TEST_DATA_DIR "tests/data"
#endif

namespace srl {
namespace {

const char* kTracePath = SRL_TEST_DATA_DIR "/golden_oval.srlt";
const char* kEstimatesPath = SRL_TEST_DATA_DIR "/golden_oval_estimates.txt";
const char* kCartoEstimatesPath =
    SRL_TEST_DATA_DIR "/golden_oval_carto_estimates.txt";

/// The pinned scenario. Every knob that feeds the numeric path is spelled
/// out here; changing any of them is a golden regeneration event.
Track golden_track() { return TrackGenerator::oval(8.0, 2.5); }

SynPfConfig golden_config() {
  SynPfConfig cfg;
  cfg.filter.n_particles = 400;
  cfg.filter.n_threads = 1;  // the golden path is the exact serial path
  return cfg;
}

SensorTrace record_golden_trace() {
  ExperimentConfig cfg;
  cfg.laps = 1;
  cfg.max_sim_time = 6.0;  // ~240 scans: enough updates to cover several
                           // resample events, small enough to commit
  cfg.profile.scale = 0.5;
  const Track track = golden_track();
  ExperimentRunner runner{track, cfg};
  DeadReckoning driver;
  SensorTrace trace;
  runner.run(driver, &trace);
  return trace;
}

bool regen_requested() {
  const char* env = std::getenv("SRL_REGEN_GOLDEN");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// Hexfloat serialization round-trips doubles exactly (%a / strtod are
/// bit-faithful), which keeps the golden file human-diffable yet bitwise.
void write_estimates(const SensorTrace::ReplayResult& r, const char* path) {
  std::ofstream os{path};
  ASSERT_TRUE(os.good()) << "cannot write " << path;
  os << "golden-trace v1 " << r.estimates.size() << "\n" << std::hexfloat;
  for (const Pose2& p : r.estimates) {
    os << p.x << ' ' << p.y << ' ' << p.theta << "\n";
  }
  os << "rmse " << r.pose_rmse_m << ' ' << r.heading_rmse_rad << "\n";
  ASSERT_TRUE(os.good());
}

double parse_hex_double(std::istream& is) {
  std::string token;
  is >> token;
  EXPECT_FALSE(token.empty()) << "truncated golden estimates file";
  return std::strtod(token.c_str(), nullptr);
}

struct GoldenEstimates {
  std::vector<Pose2> estimates;
  double pose_rmse_m{0.0};
  double heading_rmse_rad{0.0};
};

GoldenEstimates read_estimates(const char* path) {
  GoldenEstimates g;
  std::ifstream is{path};
  EXPECT_TRUE(is.good()) << "missing " << path
                         << " — regenerate with SRL_REGEN_GOLDEN=1";
  std::string word;
  std::size_t count = 0;
  is >> word;  // "golden-trace"
  is >> word;  // "v1"
  EXPECT_EQ(word, "v1");
  is >> count;
  g.estimates.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Pose2 p;
    p.x = parse_hex_double(is);
    p.y = parse_hex_double(is);
    p.theta = parse_hex_double(is);
    g.estimates.push_back(p);
  }
  is >> word;  // "rmse"
  EXPECT_EQ(word, "rmse");
  g.pose_rmse_m = parse_hex_double(is);
  g.heading_rmse_rad = parse_hex_double(is);
  return g;
}

bool bits_equal(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

TEST(GoldenTrace, SingleThreadedReplayMatchesCommittedBits) {
  if (regen_requested()) {
    const SensorTrace trace = record_golden_trace();
    ASSERT_FALSE(trace.scans().empty());
    ASSERT_TRUE(trace.save(kTracePath)) << "cannot write " << kTracePath;
    const Track track = golden_track();
    auto map = std::make_shared<const OccupancyGrid>(track.grid);
    SynPf pf{golden_config(), map, LidarConfig{}};
    const auto result = trace.replay(pf);
    write_estimates(result, kEstimatesPath);
    std::printf("regenerated %s and %s (%zu estimates, rmse %.4f m)\n",
                kTracePath, kEstimatesPath, result.estimates.size(),
                result.pose_rmse_m);
    return;
  }

  const auto trace = SensorTrace::load(kTracePath);
  ASSERT_TRUE(trace.has_value())
      << "missing/corrupt " << kTracePath
      << " — regenerate with SRL_REGEN_GOLDEN=1";
  ASSERT_FALSE(trace->scans().empty());
  const GoldenEstimates golden = read_estimates(kEstimatesPath);
  ASSERT_EQ(golden.estimates.size(), trace->scans().size());

  const Track track = golden_track();
  auto map = std::make_shared<const OccupancyGrid>(track.grid);
  SynPf pf{golden_config(), map, LidarConfig{}};
  const auto result = trace->replay(pf);

  ASSERT_EQ(result.estimates.size(), golden.estimates.size());
  for (std::size_t i = 0; i < golden.estimates.size(); ++i) {
    const Pose2& got = result.estimates[i];
    const Pose2& want = golden.estimates[i];
    ASSERT_TRUE(bits_equal(got.x, want.x) && bits_equal(got.y, want.y) &&
                bits_equal(got.theta, want.theta))
        << "estimate " << i << " drifted: got (" << std::hexfloat << got.x
        << ", " << got.y << ", " << got.theta << ") want (" << want.x << ", "
        << want.y << ", " << want.theta << ")";
  }
  EXPECT_TRUE(bits_equal(result.pose_rmse_m, golden.pose_rmse_m))
      << std::hexfloat << result.pose_rmse_m << " vs " << golden.pose_rmse_m;
  EXPECT_TRUE(bits_equal(result.heading_rmse_rad, golden.heading_rmse_rad))
      << std::hexfloat << result.heading_rmse_rad << " vs "
      << golden.heading_rmse_rad;
}

/// Same wall for the scan-matching path: CartoLite (pure localization) on
/// the *same* committed oval trace. SynPF's wall cannot see drift in the
/// probability-grid interpolation, the Ceres-free Gauss-Newton matcher, or
/// the submap machinery — this one does. Regenerates alongside the SynPF
/// fixture under SRL_REGEN_GOLDEN=1 (the shared trace is only rewritten by
/// the SynPF test, so both fixtures always describe one stream).
TEST(GoldenTrace, CartoLiteReplayMatchesCommittedBits) {
  const auto trace = SensorTrace::load(kTracePath);
  ASSERT_TRUE(trace.has_value())
      << "missing/corrupt " << kTracePath
      << " — regenerate with SRL_REGEN_GOLDEN=1";
  ASSERT_FALSE(trace->scans().empty());
  const Track track = golden_track();
  auto map = std::make_shared<const OccupancyGrid>(track.grid);

  CartoLocalizer carto{PureLocalizationOptions{}, map, LidarConfig{}};
  const auto result = trace->replay(carto);

  if (regen_requested()) {
    write_estimates(result, kCartoEstimatesPath);
    std::printf("regenerated %s (%zu estimates, rmse %.4f m)\n",
                kCartoEstimatesPath, result.estimates.size(),
                result.pose_rmse_m);
    return;
  }

  const GoldenEstimates golden = read_estimates(kCartoEstimatesPath);
  ASSERT_EQ(result.estimates.size(), golden.estimates.size());
  for (std::size_t i = 0; i < golden.estimates.size(); ++i) {
    const Pose2& got = result.estimates[i];
    const Pose2& want = golden.estimates[i];
    ASSERT_TRUE(bits_equal(got.x, want.x) && bits_equal(got.y, want.y) &&
                bits_equal(got.theta, want.theta))
        << "estimate " << i << " drifted: got (" << std::hexfloat << got.x
        << ", " << got.y << ", " << got.theta << ") want (" << want.x << ", "
        << want.y << ", " << want.theta << ")";
  }
  EXPECT_TRUE(bits_equal(result.pose_rmse_m, golden.pose_rmse_m))
      << std::hexfloat << result.pose_rmse_m << " vs " << golden.pose_rmse_m;
  EXPECT_TRUE(bits_equal(result.heading_rmse_rad, golden.heading_rmse_rad))
      << std::hexfloat << result.heading_rmse_rad << " vs "
      << golden.heading_rmse_rad;
}

/// The committed trace itself must stay parseable and internally coherent —
/// catches container-format regressions independently of the filter.
TEST(GoldenTrace, CommittedTraceIsWellFormed) {
  if (regen_requested()) GTEST_SKIP() << "regeneration run";
  const auto trace = SensorTrace::load(kTracePath);
  ASSERT_TRUE(trace.has_value());
  EXPECT_GT(trace->scans().size(), 10U);
  EXPECT_GT(trace->odometry().size(), trace->scans().size());
  EXPECT_GT(trace->duration(), 1.0);
  for (const auto& rec : trace->scans()) {
    EXPECT_FALSE(rec.scan.ranges.empty());
  }
}

}  // namespace
}  // namespace srl
