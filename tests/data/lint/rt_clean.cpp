// Fixture: a clean realtime block produces no findings.
#include <cmath>
#include <vector>

void hot(std::vector<double>& out, const std::vector<double>& in) {
  out.resize(in.size());
  // srl-lint: realtime
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = std::exp(in[i]);
  }
  // srl-lint: end-realtime
}
