// Fixture: det-unordered positives and negatives. The comment mention of
// std::unordered_map below must NOT fire (comments are stripped).
#include <map>
#include <unordered_map>
#include <unordered_set>

std::unordered_map<int, double> weights;  // positive
std::unordered_set<long> bins;            // positive

std::map<int, double> ordered;  // negative: deterministic iteration

const char* doc() {
  return "prefer std::unordered_map alternatives";  // negative: string
}
