// Fixture: rt-* positives inside an annotated block, negatives outside.
#include <cstdio>
#include <mutex>
#include <vector>

std::mutex m;

void hot(std::vector<double>& out, const std::vector<double>& in) {
  out.reserve(in.size());  // negative: allocation before the block is fine
  // srl-lint: realtime
  for (double x : in) {
    std::lock_guard<std::mutex> lock{m};  // positive: rt-lock
    out.push_back(x);                     // positive: rt-alloc
    std::printf("%f\n", x);               // positive: rt-io
    if (x < 0.0) throw x;                 // positive: rt-throw
  }
  // srl-lint: end-realtime
  out.push_back(0.0);  // negative: after the block
}
