// Fixture: suppression forms — standalone, trailing, unused, malformed.
#include <cstdlib>

int standalone() {
  // srl-lint-allow(det-rand): fixture exercises the standalone allow form
  return std::rand();
}

int trailing() {
  return std::rand();  // srl-lint-allow(det-rand): trailing allow form
}

// srl-lint-allow(det-rand): nothing on the next line uses randomness
int unused_allow(int x) {
  return x;
}

int bad_rule() {
  // srl-lint-allow(not-a-rule): the rule id above does not exist
  return 1;
}

int missing_reason() {
  // srl-lint-allow(det-rand):
  return std::rand();
}

int wrong_rule() {
  // srl-lint-allow(rt-alloc): wrong family, rand still fires below
  return std::rand();
}
