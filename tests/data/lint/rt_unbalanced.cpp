// Fixture: rt-marker — the block below is never closed.
#include <vector>

void hot(std::vector<double>& out) {
  // srl-lint: realtime
  for (double& x : out) x *= 2.0;
}
