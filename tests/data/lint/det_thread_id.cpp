// Fixture: det-thread-id positives and negatives.
#include <thread>

bool lane_dependent() {
  return std::this_thread::get_id() == std::thread::id{};  // positive
}

unsigned long raw_tid();
unsigned long current() {
  return pthread_self();  // positive
}

int slot_dependent(int slot) {
  return slot;  // negative: keying by slot index is the sanctioned pattern
}
