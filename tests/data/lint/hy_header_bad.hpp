// Fixture: header hygiene positives — no include guard, namespace leak.
#include <vector>

using namespace std;  // positive: hy-using-namespace

inline vector<double> twice(vector<double> xs) {
  for (double& x : xs) x *= 2.0;
  return xs;
}
