// Fixture: det-wall-clock-governor — inside src/governor/ even the
// sanctioned telemetry timers are banned (cost is virtual work units
// there); forwarding a *metric* like mean_scan_update_ms stays clean.
#include "telemetry/telemetry.hpp"

void control_path() {
  telemetry::Stopwatch watch;
  const double ms = watch.elapsed_ms();
  telemetry::StageTimer timer{nullptr};
  (void)ms;
}

double forward_metric(const srl::Localizer& inner) {
  return inner.mean_scan_update_ms();
}
