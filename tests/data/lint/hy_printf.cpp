// Fixture: hy-printf positives and negatives (src scope only).
#include <cstdio>
#include <iostream>

void report(double x) {
  std::printf("%f\n", x);        // positive
  fprintf(stderr, "%f\n", x);    // positive
  std::cout << x << '\n';        // positive
}

int format(char* buf, std::size_t n, double x) {
  return std::snprintf(buf, n, "%f", x);  // negative: formats to a buffer
}
