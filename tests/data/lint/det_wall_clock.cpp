// Fixture: det-wall-clock positives and negatives.
#include <chrono>
#include <ctime>

double now_s() {
  const auto t = std::chrono::steady_clock::now();  // positive
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

long stamp() {
  return static_cast<long>(time(nullptr));  // positive: libc wall clock
}

long epoch_ms(std::chrono::system_clock::time_point t) {  // positive
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             t.time_since_epoch())
      .count();
}

double add(double dt_s) {
  // negative: duration arithmetic carries no clock read.
  const std::chrono::duration<double> d{dt_s};
  return d.count() * 2.0;
}

double scan_time(double t) { return t; }  // negative: 'time' as a word only
