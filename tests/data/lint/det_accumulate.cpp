// Fixture: det-accumulate positives and negatives.
#include <numeric>
#include <vector>

double total(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);  // positive
}

double fused(const std::vector<double>& xs) {
  return std::reduce(xs.begin(), xs.end());  // positive
}

double fixed_order(const std::vector<double>& xs) {
  // negative: a local helper merely *named* accumulate is fixed-order code.
  auto accumulate = [&](double init) {
    for (double x : xs) init += x;
    return init;
  };
  return accumulate(0.0);
}
