// Fixture: det-rand positives and negatives (never compiled, only linted).
#include <cstdlib>
#include <random>

#include "common/rng.hpp"

int noise() {
  return std::rand();  // positive: raw libc randomness
}

void reseed() {
  srand(42);  // positive: global reseed
}

unsigned hardware_entropy() {
  std::random_device dev;  // positive: nondeterministic source
  return dev();
}

double engine_draw() {
  std::mt19937_64 engine{7};  // positive: raw engine outside Rng
  return static_cast<double>(engine());
}

double good_draw(srl::Rng& rng) {
  return rng.uniform();  // negative: the sanctioned path
}

int brand_strand(int brand) {
  return brand;  // negative: 'rand' only inside larger identifiers
}
