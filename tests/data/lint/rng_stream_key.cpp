// Fixture: rng-stream-key positives and negatives.
#include <cstdint>

#include "common/rng.hpp"

constexpr std::uint64_t kFixtureStreamNoise = 3;

enum class FixtureStream : std::uint64_t { kJitter = 4 };

srl::Rng pinned(const srl::Rng& rng, std::uint64_t slot) {
  return rng.substream(kFixtureStreamNoise, slot);  // negative: pinned
}

srl::Rng qualified(const srl::Rng& rng) {
  return rng.substream(
      static_cast<std::uint64_t>(FixtureStream::kJitter));  // positive: cast
}

srl::Rng variable(const srl::Rng& rng, std::uint64_t stream) {
  return rng.substream(stream, 0);  // positive: free variable key
}

srl::Rng literal(const srl::Rng& rng) {
  return rng.substream(7, 0);  // positive: magic number key
}

srl::Rng multi_line(const srl::Rng& rng, std::uint64_t epoch) {
  return rng.substream(
      kFixtureStreamNoise, epoch);  // negative: pinned across a line break
}
