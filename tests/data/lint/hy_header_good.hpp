// Fixture: a hygienic header — #pragma once first, no namespace leaks.
#pragma once

#include <vector>

namespace srl::fixture {

inline std::vector<double> twice(std::vector<double> xs) {
  for (double& x : xs) x *= 2.0;
  return xs;
}

}  // namespace srl::fixture
