#include "eval/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>

#include "common/timer.hpp"
#include "core/synpf.hpp"
#include "eval/experiment.hpp"
#include "gridmap/track_generator.hpp"

namespace srl {
namespace {

/// Odometry-only localizer for recording traces cheaply.
class DeadReckoning final : public Localizer {
 public:
  void initialize(const Pose2& pose) override { pose_ = pose; }
  void on_odometry(const OdometryDelta& odom) override {
    pose_ = (pose_ * odom.delta).normalized();
  }
  Pose2 on_scan(const LaserScan&) override { return pose_; }
  Pose2 pose() const override { return pose_; }
  std::string name() const override { return "DeadReckoning"; }
  double mean_scan_update_ms() const override { return 0.0; }
  double total_busy_s() const override { return 0.0; }

 private:
  Pose2 pose_{};
};

/// Short drive on the oval, recorded once for all tests in this file.
class TraceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    track_ = std::make_unique<Track>(TrackGenerator::oval(8.0, 2.5));
    trace_ = std::make_unique<SensorTrace>();
    ExperimentConfig cfg;
    cfg.laps = 1;
    cfg.max_sim_time = 25.0;
    cfg.profile.scale = 0.5;
    cfg.odom_noise.speed_noise = 0.0;
    cfg.odom_noise.steer_noise = 0.0;
    ExperimentRunner runner{*track_, cfg};
    DeadReckoning driver;
    runner.run(driver, trace_.get());
  }
  static void TearDownTestSuite() {
    trace_.reset();
    track_.reset();
  }

  static std::unique_ptr<Track> track_;
  static std::unique_ptr<SensorTrace> trace_;
};

std::unique_ptr<Track> TraceTest::track_;
std::unique_ptr<SensorTrace> TraceTest::trace_;

TEST_F(TraceTest, RecordingCapturesStreams) {
  ASSERT_FALSE(trace_->empty());
  // 100 Hz odometry vs 40 Hz scans: ratio ~2.5.
  EXPECT_GT(trace_->odometry().size(), 2 * trace_->scans().size());
  EXPECT_GT(trace_->scans().size(), 100U);
  EXPECT_GT(trace_->duration(), 5.0);
  // Timestamps are monotone.
  for (std::size_t i = 1; i < trace_->odometry().size(); ++i) {
    EXPECT_LE(trace_->odometry()[i - 1].t, trace_->odometry()[i].t);
  }
}

TEST_F(TraceTest, SaveLoadRoundTrip) {
  const std::string path = "trace_test_tmp.srlt";
  ASSERT_TRUE(trace_->save(path));
  const auto loaded = SensorTrace::load(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->odometry().size(), trace_->odometry().size());
  ASSERT_EQ(loaded->scans().size(), trace_->scans().size());
  EXPECT_DOUBLE_EQ(loaded->odometry()[5].t, trace_->odometry()[5].t);
  EXPECT_DOUBLE_EQ(loaded->odometry()[5].odom.delta.x,
                   trace_->odometry()[5].odom.delta.x);
  const auto& a = loaded->scans()[3];
  const auto& b = trace_->scans()[3];
  EXPECT_DOUBLE_EQ(a.truth.x, b.truth.x);
  EXPECT_EQ(a.scan.ranges, b.scan.ranges);
}

TEST_F(TraceTest, LoadRejectsGarbage) {
  const std::string path = "trace_garbage_tmp.srlt";
  {
    std::ofstream out{path, std::ios::binary};
    out << "not a trace at all";
  }
  EXPECT_FALSE(SensorTrace::load(path).has_value());
  std::remove(path.c_str());
  EXPECT_FALSE(SensorTrace::load("nonexistent.srlt").has_value());
}

TEST_F(TraceTest, ReplayIntoSynPfIsAccurateAndDeterministic) {
  auto map = std::make_shared<const OccupancyGrid>(track_->grid);
  SynPfConfig cfg;
  cfg.range = RangeMethodKind::kCddt;
  cfg.filter.n_particles = 800;

  SynPf a{cfg, map, LidarConfig{}};
  const SensorTrace::ReplayResult ra = trace_->replay(a);
  EXPECT_EQ(ra.estimates.size(), trace_->scans().size());
  EXPECT_LT(ra.pose_rmse_m, 0.2);
  EXPECT_LT(ra.heading_rmse_rad, 0.1);

  // Same trace + same seed -> bitwise-identical estimates.
  SynPf b{cfg, map, LidarConfig{}};
  const SensorTrace::ReplayResult rb = trace_->replay(b);
  ASSERT_EQ(ra.estimates.size(), rb.estimates.size());
  for (std::size_t i = 0; i < ra.estimates.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra.estimates[i].x, rb.estimates[i].x);
    EXPECT_DOUBLE_EQ(ra.estimates[i].theta, rb.estimates[i].theta);
  }
}

TEST_F(TraceTest, ReplayBeatsDeadReckoningOnNoisyOdometry) {
  // Corrupt the odometry of a copy of the trace; the PF replay must beat
  // pure dead reckoning on the identical data.
  SensorTrace corrupted = *trace_;
  {
    SensorTrace rebuilt;
    for (const auto& rec : corrupted.odometry()) {
      OdometryDelta odom = rec.odom;
      odom.delta.x *= 1.15;  // 15% longitudinal over-reporting
      rebuilt.add_odometry(rec.t, odom);
    }
    for (const auto& rec : corrupted.scans()) {
      rebuilt.add_scan(rec.scan, rec.truth);
    }
    corrupted = std::move(rebuilt);
  }
  DeadReckoning dr;
  const auto dr_result = corrupted.replay(dr);

  auto map = std::make_shared<const OccupancyGrid>(track_->grid);
  SynPfConfig cfg;
  cfg.range = RangeMethodKind::kCddt;
  cfg.filter.n_particles = 800;
  SynPf pf{cfg, map, LidarConfig{}};
  const auto pf_result = corrupted.replay(pf);

  EXPECT_LT(pf_result.pose_rmse_m, 0.3 * dr_result.pose_rmse_m);
}

}  // namespace
}  // namespace srl
