#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

namespace srl::json {
namespace {

// RAII scratch file for the file-backed round-trip tests.
struct TempFile {
  std::string path;
  explicit TempFile(const char* name)
      : path{std::string{::testing::TempDir()} + name} {
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

// ------------------------------------------------------------ happy paths

TEST(JsonParse, RoundTripsEveryKind) {
  Value root = Value::object();
  root.set("null", Value::null());
  root.set("t", Value::boolean(true));
  root.set("f", Value::boolean(false));
  root.set("n", Value::number(-12.5));
  root.set("s", Value::string("a\"b\\c\n\t\x01"));
  Value arr = Value::array();
  arr.push_back(Value::number(1.0));
  arr.push_back(Value::string("two"));
  arr.push_back(Value::array());
  root.set("a", std::move(arr));
  root.set("empty_obj", Value::object());

  for (const int indent : {0, 2, 4}) {
    const auto parsed = Value::parse(root.dump(indent));
    ASSERT_TRUE(parsed.has_value()) << "indent=" << indent;
    EXPECT_EQ(parsed->dump(0), root.dump(0));
  }
}

TEST(JsonParse, NumbersRoundTripBitwise) {
  const double cases[] = {0.0,
                          -0.0,
                          1.0,
                          -1.0,
                          0.1,
                          1e-300,
                          1e300,
                          std::numeric_limits<double>::min(),
                          std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::epsilon(),
                          4097.000000000001,
                          -2.2250738585072014e-308};
  for (const double d : cases) {
    const auto parsed = Value::parse(format_number(d));
    ASSERT_TRUE(parsed.has_value()) << format_number(d);
    const double back = parsed->as_double();
    EXPECT_EQ(std::memcmp(&back, &d, sizeof(double)), 0)
        << format_number(d) << " re-parsed as " << format_number(back);
  }
}

TEST(JsonParse, AcceptsSurroundingWhitespaceOnly) {
  EXPECT_TRUE(Value::parse("  \t\n true \r\n ").has_value());
  EXPECT_TRUE(Value::parse("[1 , 2 ,\t3]").has_value());
}

TEST(JsonParse, UnicodeEscapes) {
  const auto bmp = Value::parse("\"\\u00e9\\u20ac\"");  // é €
  ASSERT_TRUE(bmp.has_value());
  EXPECT_EQ(bmp->as_string(), "\xc3\xa9\xe2\x82\xac");
  const auto astral = Value::parse("\"\\ud83d\\ude00\"");  // 😀 (pair)
  ASSERT_TRUE(astral.has_value());
  EXPECT_EQ(astral->as_string(), "\xf0\x9f\x98\x80");
}

TEST(JsonParse, NestsToDepthLimitExactly) {
  auto nested = [](int depth) {
    return std::string(static_cast<std::size_t>(depth), '[') + "1" +
           std::string(static_cast<std::size_t>(depth), ']');
  };
  EXPECT_TRUE(Value::parse(nested(64)).has_value());
  EXPECT_FALSE(Value::parse(nested(65)).has_value());
}

// ----------------------------------------------------- strict error paths

TEST(JsonParse, RejectsEmptyAndTrailingGarbage) {
  EXPECT_FALSE(Value::parse("").has_value());
  EXPECT_FALSE(Value::parse("   ").has_value());
  EXPECT_FALSE(Value::parse("true false").has_value());
  EXPECT_FALSE(Value::parse("{} x").has_value());
  EXPECT_FALSE(Value::parse("1 2").has_value());
  EXPECT_FALSE(Value::parse("[1],").has_value());
}

TEST(JsonParse, RejectsMalformedLiterals) {
  EXPECT_FALSE(Value::parse("tru").has_value());
  EXPECT_FALSE(Value::parse("falsey").has_value());
  EXPECT_FALSE(Value::parse("nul").has_value());
  EXPECT_FALSE(Value::parse("None").has_value());
  EXPECT_FALSE(Value::parse("TRUE").has_value());
}

TEST(JsonParse, RejectsMalformedNumbers) {
  EXPECT_FALSE(Value::parse("-").has_value());
  EXPECT_FALSE(Value::parse("1.").has_value());
  EXPECT_FALSE(Value::parse(".5").has_value());
  EXPECT_FALSE(Value::parse("1e").has_value());
  EXPECT_FALSE(Value::parse("1e+").has_value());
  EXPECT_FALSE(Value::parse("+1").has_value());
  EXPECT_FALSE(Value::parse("0x10").has_value());
  // NaN/Inf are rejected on both ends by design.
  EXPECT_FALSE(Value::parse("NaN").has_value());
  EXPECT_FALSE(Value::parse("Infinity").has_value());
  EXPECT_FALSE(Value::parse("-Infinity").has_value());
  EXPECT_FALSE(Value::parse("1e999").has_value());  // overflows to inf
}

TEST(JsonParse, RejectsMalformedStrings) {
  EXPECT_FALSE(Value::parse("\"unterminated").has_value());
  EXPECT_FALSE(Value::parse("\"bad escape \\q\"").has_value());
  EXPECT_FALSE(Value::parse("\"\\u12\"").has_value());      // short hex
  EXPECT_FALSE(Value::parse("\"\\uZZZZ\"").has_value());    // non-hex
  EXPECT_FALSE(Value::parse("\"\\ud800\"").has_value());    // lone high
  EXPECT_FALSE(Value::parse("\"\\udc00\"").has_value());    // lone low
  EXPECT_FALSE(Value::parse("\"\\ud800\\u0041\"").has_value());
  EXPECT_FALSE(Value::parse(std::string{"\"raw\nnewline\""}).has_value());
  EXPECT_FALSE(Value::parse("'single'").has_value());
}

TEST(JsonParse, RejectsMalformedContainers) {
  EXPECT_FALSE(Value::parse("[1,]").has_value());
  EXPECT_FALSE(Value::parse("[,1]").has_value());
  EXPECT_FALSE(Value::parse("[1 2]").has_value());
  EXPECT_FALSE(Value::parse("[1").has_value());
  EXPECT_FALSE(Value::parse("{\"a\":1,}").has_value());
  EXPECT_FALSE(Value::parse("{\"a\" 1}").has_value());
  EXPECT_FALSE(Value::parse("{\"a\":}").has_value());
  EXPECT_FALSE(Value::parse("{a:1}").has_value());  // unquoted key
  EXPECT_FALSE(Value::parse("{\"a\":1").has_value());
  EXPECT_FALSE(Value::parse("}").has_value());
}

TEST(JsonDump, NonFiniteNumbersSerializeAsNull) {
  // dump() must never emit tokens parse() rejects.
  Value v = Value::array();
  v.push_back(Value::number(std::numeric_limits<double>::quiet_NaN()));
  v.push_back(Value::number(std::numeric_limits<double>::infinity()));
  const std::string out = v.dump(0);
  EXPECT_TRUE(Value::parse(out).has_value()) << out;
}

// ----------------------------------------------------------------- files

TEST(JsonFile, SaveLoadRoundTrip) {
  TempFile f{"srl_json_roundtrip.json"};
  Value v = Value::object();
  v.set("x", Value::number(0.1));
  ASSERT_TRUE(v.save(f.path));
  const auto back = Value::load(f.path);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->dump(0), v.dump(0));
}

TEST(JsonFile, LoadMissingFileIsNullopt) {
  EXPECT_FALSE(Value::load("/nonexistent/srl/no_such.json").has_value());
}

// ---------------------------------------------------------------- NDJSON

TEST(Ndjson, AppendAndLoadRoundTrip) {
  TempFile f{"srl_ndjson_roundtrip.ndjson"};
  std::vector<Value> docs;
  for (int i = 0; i < 5; ++i) {
    Value v = Value::object();
    v.set("seq", Value::number(i));
    v.set("msg", Value::string("line " + std::to_string(i)));
    ASSERT_TRUE(append_ndjson(f.path, v));
    docs.push_back(std::move(v));
  }
  const auto loaded = load_ndjson(f.path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), docs.size());
  for (std::size_t i = 0; i < docs.size(); ++i) {
    EXPECT_EQ((*loaded)[i].dump(0), docs[i].dump(0)) << "line " << i;
  }
}

TEST(Ndjson, BlankLinesArePermitted) {
  TempFile f{"srl_ndjson_blank.ndjson"};
  std::ofstream out{f.path};
  out << "{\"a\":1}\n\n  \n{\"b\":2}\n";
  out.close();
  const auto loaded = load_ndjson(f.path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 2u);
}

TEST(Ndjson, TruncatedTailLineFailsTheWholeLoad) {
  TempFile f{"srl_ndjson_trunc.ndjson"};
  std::ofstream out{f.path};
  out << "{\"a\":1}\n{\"b\":";  // crash mid-write
  out.close();
  EXPECT_FALSE(load_ndjson(f.path).has_value());
}

TEST(Ndjson, MalformedInteriorLineFailsTheWholeLoad) {
  TempFile f{"srl_ndjson_bad.ndjson"};
  std::ofstream out{f.path};
  out << "{\"a\":1}\nnot json\n{\"b\":2}\n";
  out.close();
  EXPECT_FALSE(load_ndjson(f.path).has_value());
}

TEST(Ndjson, MissingFileIsNullopt) {
  EXPECT_FALSE(load_ndjson("/nonexistent/srl/no_such.ndjson").has_value());
}

// --------------------------------------------------- committed fuzz corpus
// Deterministic parser fuzzing: the corpus under tests/data/json/ is
// committed (not generated at test time), so every run — local, CI, every
// sanitizer flavor — chews the exact same byte streams. The file lists are
// spelled out here on purpose: adding a corpus document means deciding
// which verdict it pins.

#ifndef SRL_JSON_CORPUS_DIR
#define SRL_JSON_CORPUS_DIR "tests/data/json"
#endif

std::string read_corpus_file(const std::string& relative) {
  std::ifstream is{std::string{SRL_JSON_CORPUS_DIR "/"} + relative,
                   std::ios::binary};
  EXPECT_TRUE(is.good()) << "missing corpus file " << relative;
  std::string text{std::istreambuf_iterator<char>{is},
                   std::istreambuf_iterator<char>{}};
  return text;
}

const char* const kValidCorpus[] = {
    "valid/all_kinds.json",    "valid/depth_64.json",
    "valid/numbers_edge.json", "valid/unicode.json",
    "valid/whitespace.json",
};

const char* const kInvalidCorpus[] = {
    "invalid/depth_65.json",
    "invalid/depth_bomb.json",
    "invalid/trailing_garbage.json",
    "invalid/nan.json",
    "invalid/infinity.json",
    "invalid/plus_sign.json",
    "invalid/bare_dot.json",
    "invalid/dot_lead.json",
    "invalid/exp_empty.json",
    "invalid/exp_sign_only.json",
    "invalid/minus_only.json",
    "invalid/hex.json",
    "invalid/single_quotes.json",
    "invalid/unterminated_string.json",
    "invalid/raw_control_char.json",
    "invalid/unpaired_high_surrogate.json",
    "invalid/unpaired_low_surrogate.json",
    "invalid/bad_hex_escape.json",
    "invalid/bad_escape.json",
    "invalid/trailing_comma_array.json",
    "invalid/trailing_comma_object.json",
    "invalid/missing_colon.json",
    "invalid/missing_value.json",
    "invalid/unclosed_array.json",
    "invalid/unclosed_object.json",
    "invalid/comma_only.json",
    "invalid/nonstring_key.json",
    "invalid/empty.json",
    "invalid/byte_order_mark.json",
};

TEST(JsonCorpus, ValidDocumentsParseAndRoundTripStably) {
  for (const char* name : kValidCorpus) {
    const std::string text = read_corpus_file(name);
    ASSERT_FALSE(text.empty()) << name;
    const std::optional<Value> v = Value::parse(text);
    ASSERT_TRUE(v.has_value()) << name << " must parse";
    // Stability: dump -> parse -> dump is a fixed point (numbers included,
    // via the shortest-round-trip formatter).
    const std::string once = v->dump();
    const std::optional<Value> again = Value::parse(once);
    ASSERT_TRUE(again.has_value()) << name << " must re-parse its own dump";
    EXPECT_EQ(again->dump(), once) << name;
  }
}

TEST(JsonCorpus, InvalidDocumentsAreRejected) {
  // Includes the depth bomb (100 kB of '['): the recursion guard must
  // reject it without exhausting the stack, never half-build a document.
  for (const char* name : kInvalidCorpus) {
    const std::string text = read_corpus_file(name);
    EXPECT_FALSE(Value::parse(text).has_value()) << name << " must be rejected";
  }
}

TEST(JsonCorpus, TruncationAtEveryByteOffsetIsRejected) {
  // The committed source doc is compact with no trailing whitespace, so
  // *every* strict prefix is an incomplete document; the strict parser must
  // reject each one (a lenient parser would accept some prefix and
  // silently drop the tail — exactly the corruption mode a crashed
  // artifact writer produces).
  const std::string text = read_corpus_file("truncation_source.json");
  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text.back(), '}') << "source must end compact";
  ASSERT_TRUE(Value::parse(text).has_value()) << "full doc must parse";
  for (std::size_t len = 0; len < text.size(); ++len) {
    EXPECT_FALSE(Value::parse(text.substr(0, len)).has_value())
        << "prefix of length " << len << " must be rejected";
  }
}

}  // namespace
}  // namespace srl::json
