#include "recovery/supervised_localizer.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "common/angles.hpp"
#include "core/synpf.hpp"
#include "eval/experiment.hpp"
#include "eval/trace.hpp"
#include "fault/faulted_localizer.hpp"
#include "fault/pipeline.hpp"
#include "gridmap/track_generator.hpp"
#include "range/ray_marching.hpp"
#include "recovery/divergence_detector.hpp"
#include "recovery/recovery_policy.hpp"
#include "sensor/lidar_sim.hpp"
#include "telemetry/telemetry.hpp"

namespace srl {
namespace {

using recovery::DetectorInputs;
using recovery::DivergenceDetector;
using recovery::DivergenceDetectorConfig;
using recovery::HealthState;

DetectorInputs healthy_inputs() {
  DetectorInputs in;
  in.ess_fraction = 0.8;
  in.scan_alignment = 0.97;
  in.pose_jump_m = 0.02;
  in.odom_disagreement_m = 0.01;
  return in;
}

DetectorInputs bad_alignment_inputs() {
  DetectorInputs in = healthy_inputs();
  in.scan_alignment = 0.40;
  return in;
}

/// Drive a detector to DIVERGED with single-signal evidence (bounded).
void drive_to_diverged(DivergenceDetector& detector) {
  for (int i = 0; i < 50 && detector.state() != HealthState::kDiverged; ++i) {
    detector.update(bad_alignment_inputs());
  }
  ASSERT_EQ(detector.state(), HealthState::kDiverged);
}

// ---------------------------------------------------------------------------
// DivergenceDetector: hysteresis, dwells, fast path, recovery cooldown.
// ---------------------------------------------------------------------------

TEST(DivergenceDetector, StartsHealthyAndStaysHealthyOnCleanInputs) {
  DivergenceDetector detector;
  EXPECT_EQ(detector.state(), HealthState::kHealthy);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(detector.update(healthy_inputs()), HealthState::kHealthy);
  }
  EXPECT_EQ(detector.transitions().total(), 0u);
  EXPECT_EQ(detector.tripped_signals(), 0);
}

TEST(DivergenceDetector, SingleSignalWalksTheDwellLadder) {
  DivergenceDetectorConfig cfg;
  cfg.suspect_dwell = 2;
  cfg.diverged_dwell = 4;
  DivergenceDetector detector{cfg};

  // suspect_dwell updates of one tripped signal reach SUSPECT...
  EXPECT_EQ(detector.update(bad_alignment_inputs()), HealthState::kHealthy);
  EXPECT_EQ(detector.update(bad_alignment_inputs()), HealthState::kSuspect);
  // ...and diverged_dwell more reach DIVERGED, not one earlier.
  EXPECT_EQ(detector.update(bad_alignment_inputs()), HealthState::kSuspect);
  EXPECT_EQ(detector.update(bad_alignment_inputs()), HealthState::kSuspect);
  EXPECT_EQ(detector.update(bad_alignment_inputs()), HealthState::kSuspect);
  EXPECT_EQ(detector.update(bad_alignment_inputs()), HealthState::kDiverged);
  EXPECT_EQ(detector.transitions().to_suspect, 1u);
  EXPECT_EQ(detector.transitions().to_diverged, 1u);
}

TEST(DivergenceDetector, LatchHysteresisIgnoresJitterAroundTheTrip) {
  DivergenceDetectorConfig cfg;
  DivergenceDetector detector{cfg};
  // Trip the alignment latch...
  DetectorInputs in = healthy_inputs();
  in.scan_alignment = cfg.align_trip - 0.05;
  detector.update(in);
  EXPECT_EQ(detector.tripped_signals(), 1);
  // ...then jitter between trip and clear: the latch must stay tripped.
  in.scan_alignment = (cfg.align_trip + cfg.align_clear) / 2.0;
  detector.update(in);
  EXPECT_EQ(detector.tripped_signals(), 1);
  // Only crossing the clear threshold releases it.
  in.scan_alignment = cfg.align_clear + 0.02;
  detector.update(in);
  EXPECT_EQ(detector.tripped_signals(), 0);
}

TEST(DivergenceDetector, UnavailableSignalLeavesLatchUntouched) {
  DivergenceDetector detector;
  DetectorInputs in = healthy_inputs();
  in.scan_alignment = 0.40;
  detector.update(in);
  EXPECT_EQ(detector.tripped_signals(), 1);
  // A negative (= unavailable) sample must not clear the latch.
  in.scan_alignment = -1.0;
  detector.update(in);
  EXPECT_EQ(detector.tripped_signals(), 1);
}

TEST(DivergenceDetector, MultiSignalFastPathSkipsSuspectDwell) {
  DivergenceDetectorConfig cfg;
  cfg.suspect_dwell = 3;
  DivergenceDetector detector{cfg};
  DetectorInputs in = healthy_inputs();
  in.scan_alignment = 0.40;
  in.ess_fraction = 0.01;
  // Two independent witnesses: straight to SUSPECT on the first update.
  EXPECT_EQ(detector.update(in), HealthState::kSuspect);
}

TEST(DivergenceDetector, BlackoutSuspendsJudgement) {
  DivergenceDetector detector;
  detector.update(bad_alignment_inputs());
  detector.update(bad_alignment_inputs());
  ASSERT_EQ(detector.state(), HealthState::kSuspect);
  DetectorInputs blackout;
  blackout.blackout = true;
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(detector.update(blackout), HealthState::kSuspect);
  }
}

TEST(DivergenceDetector, RecoveryActionEntersRecoveringThenHealthy) {
  DivergenceDetectorConfig cfg;
  DivergenceDetector detector{cfg};
  drive_to_diverged(detector);
  detector.note_recovery_action();
  EXPECT_EQ(detector.state(), HealthState::kRecovering);
  EXPECT_EQ(detector.tripped_signals(), 0);  // the action invalidated them
  // healthy_dwell clean updates return to HEALTHY, not one earlier.
  for (int i = 0; i < cfg.healthy_dwell - 1; ++i) {
    EXPECT_EQ(detector.update(healthy_inputs()), HealthState::kRecovering);
  }
  EXPECT_EQ(detector.update(healthy_inputs()), HealthState::kHealthy);
  EXPECT_EQ(detector.transitions().to_healthy, 1u);
}

TEST(DivergenceDetector, RecoveringRelapsesWhenCooldownExpiresStillBad) {
  DivergenceDetectorConfig cfg;
  cfg.recovering_cooldown = 3;
  DivergenceDetector detector{cfg};
  drive_to_diverged(detector);
  detector.note_recovery_action();
  ASSERT_EQ(detector.state(), HealthState::kRecovering);
  // The cooldown grants grace; once it runs out with signals still bad the
  // detector relapses so the supervisor escalates.
  bool relapsed = false;
  for (int i = 0; i < 20; ++i) {
    if (detector.update(bad_alignment_inputs()) == HealthState::kDiverged) {
      relapsed = true;
      break;
    }
  }
  EXPECT_TRUE(relapsed);
  EXPECT_EQ(detector.transitions().to_diverged, 2u);
}

// ---------------------------------------------------------------------------
// RecoveryPolicy: Augmented-MCL averages and the escalation ladder.
// ---------------------------------------------------------------------------

struct PolicyFixture {
  Track track = TrackGenerator::oval(8.0, 2.5);
  std::shared_ptr<const OccupancyGrid> map =
      std::make_shared<const OccupancyGrid>(track.grid);
  LidarConfig lidar{};
  std::shared_ptr<const RangeMethod> truth =
      std::make_shared<RayMarching>(map, lidar.max_range);
  LidarSim sim{lidar, truth,
               LidarNoise{.sigma_range = 0.01, .dropout_prob = 0.0}};
  Rng rng{17};

  recovery::RecoveryPolicy make(recovery::RecoveryPolicyConfig cfg = {}) {
    return recovery::RecoveryPolicy{cfg, map, lidar, 0x7ec0};
  }
};

TEST(RecoveryPolicy, InjectionFractionTracksFastSlowRatio) {
  PolicyFixture f;
  recovery::RecoveryPolicy policy = f.make();
  // Long healthy stretch: w_fast == w_slow, fraction clamps to the minimum.
  for (int i = 0; i < 100; ++i) policy.observe_alignment(0.95);
  EXPECT_NEAR(policy.w_slow(), 0.95, 1e-6);
  EXPECT_DOUBLE_EQ(policy.injection_fraction(),
                   policy.config().min_injection_fraction);
  // Sudden quality collapse: w_fast drops ahead of w_slow.
  for (int i = 0; i < 5; ++i) policy.observe_alignment(0.10);
  EXPECT_LT(policy.w_fast(), policy.w_slow());
  const double expected =
      std::max(0.0, 1.0 - policy.w_fast() / policy.w_slow());
  EXPECT_DOUBLE_EQ(
      policy.injection_fraction(),
      std::clamp(expected, policy.config().min_injection_fraction,
                 policy.config().max_injection_fraction));
  EXPECT_GT(policy.injection_fraction(),
            policy.config().min_injection_fraction);
}

TEST(RecoveryPolicy, NegativeScoreIsIgnored) {
  PolicyFixture f;
  recovery::RecoveryPolicy policy = f.make();
  policy.observe_alignment(0.9);
  const double slow = policy.w_slow();
  policy.observe_alignment(-1.0);
  EXPECT_DOUBLE_EQ(policy.w_slow(), slow);
}

TEST(RecoveryPolicy, LadderInjectsFirstThenEscalates) {
  PolicyFixture f;
  recovery::RecoveryPolicyConfig cfg;
  cfg.escalate_after = 1;
  recovery::RecoveryPolicy policy = f.make(cfg);
  EXPECT_EQ(policy.plan_recovery(true),
            recovery::RecoveryPolicy::Action::kInject);
  EXPECT_EQ(policy.plan_recovery(true),
            recovery::RecoveryPolicy::Action::kGlobalReloc);
  // A HEALTHY interlude resets the ladder.
  policy.note_healthy();
  EXPECT_EQ(policy.plan_recovery(true),
            recovery::RecoveryPolicy::Action::kInject);
}

TEST(RecoveryPolicy, NoFilterSkipsStraightToRelocalization) {
  PolicyFixture f;
  recovery::RecoveryPolicy policy = f.make();
  EXPECT_EQ(policy.plan_recovery(false),
            recovery::RecoveryPolicy::Action::kGlobalReloc);
}

TEST(RecoveryPolicy, NoneConfigPlansNothing) {
  PolicyFixture f;
  recovery::RecoveryPolicy policy =
      f.make(recovery::RecoveryPolicyConfig::none());
  EXPECT_EQ(policy.plan_recovery(true),
            recovery::RecoveryPolicy::Action::kNone);
}

// ---------------------------------------------------------------------------
// Global relocalization. The oval is 180-degree rotationally symmetric, so
// a kidnapped pose there has an exact equal-scoring alias — relocalization
// on it is fundamentally ambiguous. These tests run on the asymmetric
// test_track, where the verified lattice search has a unique answer.
// ---------------------------------------------------------------------------

struct RelocFixture {
  Track track = TrackGenerator::test_track();
  std::shared_ptr<const OccupancyGrid> map =
      std::make_shared<const OccupancyGrid>(track.grid);
  LidarConfig lidar{};
  std::shared_ptr<const RangeMethod> caster =
      std::make_shared<RayMarching>(map, lidar.max_range);
  LidarSim sim{lidar, caster,
               LidarNoise{.sigma_range = 0.01, .dropout_prob = 0.0}};
  Rng rng{17};
  Pose2 truth;
  recovery::AlignmentProbe probe{map, lidar, 40, 0.15};

  RelocFixture() {
    ExperimentRunner runner{track, ExperimentConfig{}};
    truth = runner.start_pose();
  }

  recovery::RecoveryPolicy make() {
    return recovery::RecoveryPolicy{{}, map, lidar, 0x7ec0};
  }
};

TEST(RecoveryPolicy, GlobalRelocalizeFindsTheTruePoseFromFar) {
  RelocFixture f;
  const LaserScan scan = f.sim.scan(f.truth, 0.0, f.rng);
  recovery::RecoveryPolicy policy = f.make();
  // Current estimate hopelessly wrong: right position, heading rotated a
  // quarter turn into the wall (the corridor geometry cannot match).
  const Pose2 wrong{f.truth.x, f.truth.y,
                    normalize_angle(f.truth.theta + kPi / 2.0)};
  const std::optional<Pose2> best =
      policy.global_relocalize(scan, f.probe, wrong);
  ASSERT_TRUE(best.has_value());
  EXPECT_NEAR(best->x, f.truth.x, 0.3);
  EXPECT_NEAR(best->y, f.truth.y, 0.3);
  EXPECT_NEAR(angle_dist(best->theta, f.truth.theta), 0.0, 0.15);
}

TEST(RecoveryPolicy, GlobalRelocalizeRejectsWhenCurrentIsAlreadyRight) {
  RelocFixture f;
  const LaserScan scan = f.sim.scan(f.truth, 0.0, f.rng);
  recovery::RecoveryPolicy policy = f.make();
  // The verification gate: nothing can beat a correct estimate by the
  // accept margin, so a (false-positive) search must return nothing.
  EXPECT_FALSE(policy.global_relocalize(scan, f.probe, f.truth).has_value());
}

TEST(RecoveryPolicy, GlobalRelocalizeIsDeterministic) {
  RelocFixture f;
  const LaserScan scan = f.sim.scan(f.truth, 0.0, f.rng);
  recovery::RecoveryPolicy a = f.make();
  recovery::RecoveryPolicy b = f.make();
  const Pose2 wrong{f.truth.x, f.truth.y,
                    normalize_angle(f.truth.theta + kPi / 2.0)};
  const auto ra = a.global_relocalize(scan, f.probe, wrong);
  const auto rb = b.global_relocalize(scan, f.probe, wrong);
  ASSERT_TRUE(ra.has_value());
  ASSERT_TRUE(rb.has_value());
  EXPECT_EQ(std::memcmp(&ra->x, &rb->x, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&ra->y, &rb->y, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&ra->theta, &rb->theta, sizeof(double)), 0);
}

// ---------------------------------------------------------------------------
// AlignmentProbe: scoring and blackout evidence.
// ---------------------------------------------------------------------------

TEST(AlignmentProbe, ScoresTruthHighAndMisalignedPosesLow) {
  PolicyFixture f;
  const Pose2 truth{-4.0, -2.5, 0.0};  // on the bottom straight
  const LaserScan scan = f.sim.scan(truth, 0.0, f.rng);
  recovery::AlignmentProbe probe{f.map, f.lidar, 40, 0.15};
  EXPECT_GT(probe.score(truth, scan), 0.9);
  EXPECT_LT(
      probe.score(Pose2{truth.x, truth.y, truth.theta + kPi / 2.0}, scan),
      0.6);
}

TEST(AlignmentProbe, ReturnlessScanHasNoEvidence) {
  PolicyFixture f;
  recovery::AlignmentProbe probe{f.map, f.lidar, 40, 0.15};
  LaserScan empty;
  empty.t = 0.0;
  empty.ranges.assign(static_cast<std::size_t>(f.lidar.n_beams), 0.0F);
  EXPECT_DOUBLE_EQ(probe.valid_fraction(empty), 0.0);
  EXPECT_DOUBLE_EQ(probe.score(Pose2{-4.0, -2.5, 0.0}, empty), -1.0);
}

// ---------------------------------------------------------------------------
// ParticleFilter recovery seams.
// ---------------------------------------------------------------------------

TEST(RecoverySeams, InjectUniformZeroFractionIsAStrictNoOp) {
  PolicyFixture f;
  SynPfConfig cfg;
  cfg.filter.n_particles = 200;
  cfg.range = RangeMethodKind::kCddt;
  SynPf pf{cfg, f.map, f.lidar};
  pf.initialize(Pose2{-4.0, -2.5, 0.0});
  pf.filter().set_recovery_map(f.map);
  const std::vector<Particle> before = pf.filter().particles_snapshot();
  Rng rng{99};
  pf.filter().inject_uniform(0.0, rng);
  const auto after = pf.filter().particles_snapshot();
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(
        std::memcmp(&before[i].pose.x, &after[i].pose.x, sizeof(double)), 0);
    EXPECT_DOUBLE_EQ(before[i].weight, after[i].weight);
  }
  // No draw happened: the RNG stream is exactly where a fresh one starts.
  Rng fresh{99};
  EXPECT_EQ(rng.uniform(), fresh.uniform());
}

TEST(RecoverySeams, InjectUniformReplacesRoughlyTheRequestedFraction) {
  PolicyFixture f;
  SynPfConfig cfg;
  cfg.filter.n_particles = 400;
  cfg.range = RangeMethodKind::kCddt;
  SynPf pf{cfg, f.map, f.lidar};
  pf.initialize(Pose2{-4.0, -2.5, 0.0});
  pf.filter().set_recovery_map(f.map);
  const std::vector<Particle> before = pf.filter().particles_snapshot();
  Rng rng{7};
  pf.filter().inject_uniform(0.5, rng);
  const auto after = pf.filter().particles_snapshot();
  int moved = 0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (std::hypot(after[i].pose.x - before[i].pose.x,
                   after[i].pose.y - before[i].pose.y) > 1.0) {
      ++moved;
    }
  }
  // Per-slot Bernoulli(0.5) over 400 slots (minus the rare free-space draw
  // landing near the start): expect ~200 with generous slack.
  EXPECT_GT(moved, 120);
  EXPECT_LT(moved, 280);
}

TEST(RecoverySeams, SquashScaleOneIsTheBitwiseNominalPath) {
  PolicyFixture f;
  SynPfConfig cfg;
  cfg.filter.n_particles = 300;
  cfg.range = RangeMethodKind::kCddt;
  const Pose2 start{-4.0, -2.5, 0.0};

  auto run = [&](bool touch_scale) {
    SynPf pf{cfg, f.map, f.lidar};
    pf.initialize(start);
    if (touch_scale) pf.filter().set_squash_scale(1.0);
    Rng rng{23};
    Pose2 est{};
    for (int i = 0; i < 10; ++i) {
      OdometryDelta odom;
      odom.dt = 0.025;
      pf.on_odometry(odom);
      est = pf.on_scan(f.sim.scan(start, 0.025 * i, rng));
    }
    return est;
  };
  const Pose2 a = run(false);
  const Pose2 b = run(true);
  EXPECT_EQ(std::memcmp(&a.x, &b.x, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&a.y, &b.y, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&a.theta, &b.theta, sizeof(double)), 0);
}

// ---------------------------------------------------------------------------
// SupervisedLocalizer: pass-through, blackout fallback, composition.
// ---------------------------------------------------------------------------

/// One short closed-loop trace on the oval, recorded once per test binary.
const SensorTrace& oval_trace() {
  static const SensorTrace trace = [] {
    const Track track = TrackGenerator::oval(8.0, 2.5);
    auto map = std::make_shared<const OccupancyGrid>(track.grid);
    ExperimentConfig cfg;
    cfg.laps = 1;
    cfg.max_sim_time = 10.0;
    SynPfConfig pfc;
    pfc.filter.n_particles = 300;
    pfc.range = RangeMethodKind::kCddt;
    SynPf pf{pfc, map, cfg.lidar};
    ExperimentRunner runner{track, cfg};
    SensorTrace t;
    runner.run(pf, &t);
    return t;
  }();
  return trace;
}

TEST(SupervisedLocalizer, PoliciesOffIsABitwiseNoOp) {
  const Track track = TrackGenerator::oval(8.0, 2.5);
  auto map = std::make_shared<const OccupancyGrid>(track.grid);
  SynPfConfig cfg;
  cfg.filter.n_particles = 300;
  cfg.range = RangeMethodKind::kCddt;

  SynPf bare{cfg, map, LidarConfig{}};
  const auto rb = oval_trace().replay(bare);

  recovery::SupervisedLocalizerConfig off;
  off.policy = recovery::RecoveryPolicyConfig::none();
  SynPf inner{cfg, map, LidarConfig{}};
  recovery::SupervisedLocalizer sup{inner, off, map, LidarConfig{}};
  sup.bind_filter(&inner.filter());
  const auto rs = oval_trace().replay(sup);

  ASSERT_EQ(rb.estimates.size(), rs.estimates.size());
  for (std::size_t i = 0; i < rb.estimates.size(); ++i) {
    EXPECT_EQ(std::memcmp(&rb.estimates[i].x, &rs.estimates[i].x,
                          sizeof(double)),
              0)
        << "estimate " << i << " diverged";
    EXPECT_EQ(std::memcmp(&rb.estimates[i].theta, &rs.estimates[i].theta,
                          sizeof(double)),
              0)
        << "heading " << i << " diverged";
  }
}

/// Minimal scripted localizer: dead-reckons odometry from the initialized
/// pose and counts the scans it is shown.
class StubLocalizer final : public Localizer {
 public:
  void initialize(const Pose2& pose) override { pose_ = pose; }
  void on_odometry(const OdometryDelta& odom) override {
    pose_ = (pose_ * odom.delta).normalized();
  }
  Pose2 on_scan(const LaserScan&) override {
    ++scans_seen;
    return pose_;
  }
  Pose2 pose() const override { return pose_; }
  std::string name() const override { return "stub"; }
  double mean_scan_update_ms() const override { return 0.0; }
  double total_busy_s() const override { return 0.0; }

  int scans_seen{0};

 private:
  Pose2 pose_{};
};

TEST(SupervisedLocalizer, BlackoutEngagesFallbackAndShieldsTheFilter) {
  PolicyFixture f;
  StubLocalizer stub;
  recovery::SupervisedLocalizer sup{stub, {}, f.map, f.lidar};
  const Pose2 start{-4.0, -2.5, 0.0};
  sup.initialize(start);

  LaserScan dead;
  dead.t = 0.0;
  dead.ranges.assign(static_cast<std::size_t>(f.lidar.n_beams), 0.0F);

  // Returnless scans engage the fallback and never reach the inner
  // localizer.
  sup.on_scan(dead);
  EXPECT_TRUE(sup.blackout_engaged());
  EXPECT_EQ(stub.scans_seen, 0);

  // Odometry keeps integrating into the fallback pose.
  OdometryDelta odom;
  odom.delta = Pose2{0.5, 0.0, 0.0};
  odom.dt = 0.025;
  odom.v = 0.5 / odom.dt;
  sup.on_odometry(odom);
  EXPECT_NEAR(sup.pose().x, start.x + 0.5, 1e-9);
  EXPECT_GT(sup.blackout_drift_m(), 0.0);

  // A live scan disengages and hands judgement back to the normal path.
  const LaserScan live = f.sim.scan(sup.pose(), 1.0, f.rng);
  sup.on_scan(live);
  EXPECT_FALSE(sup.blackout_engaged());
  EXPECT_EQ(stub.scans_seen, 1);
  EXPECT_DOUBLE_EQ(sup.blackout_drift_m(), 0.0);
}

TEST(SupervisedLocalizer, ComposesWithFaultInjectionInBothOrders) {
  const Track track = TrackGenerator::oval(8.0, 2.5);
  auto map = std::make_shared<const OccupancyGrid>(track.grid);
  const LidarConfig lidar{};
  SynPfConfig cfg;
  cfg.filter.n_particles = 200;
  cfg.range = RangeMethodKind::kCddt;

  // Canonical order: supervise *outside* the faults, so corruption hits
  // the filter upstream of detection exactly as a real sensor fault would.
  {
    SynPf pf{cfg, map, lidar};
    fault::FaultPipeline pipeline{0x7a017ULL, lidar};
    ASSERT_TRUE(pipeline.add("lidar_dropout", 0.3));
    fault::FaultedLocalizer faulted{pf, pipeline};
    recovery::SupervisedLocalizer sup{faulted, {}, map, lidar};
    sup.bind_filter(&pf.filter());
    const auto r = oval_trace().replay(sup);
    EXPECT_EQ(r.estimates.size(), oval_trace().scans().size());
    EXPECT_EQ(sup.name(), "SynPF+lidar_dropout+supervised");
  }
  // Reverse order: legal, but measures faults applied to an already
  // supervised stack.
  {
    SynPf pf{cfg, map, lidar};
    recovery::SupervisedLocalizer sup{pf, {}, map, lidar};
    sup.bind_filter(&pf.filter());
    fault::FaultPipeline pipeline{0x7a017ULL, lidar};
    ASSERT_TRUE(pipeline.add("lidar_dropout", 0.3));
    fault::FaultedLocalizer faulted{sup, pipeline};
    const auto r = oval_trace().replay(faulted);
    EXPECT_EQ(r.estimates.size(), oval_trace().scans().size());
    EXPECT_EQ(faulted.name(), "SynPF+supervised+lidar_dropout");
  }
}

// ---------------------------------------------------------------------------
// Closed-loop kidnap regression: the PR's acceptance claim. Mirrors the
// bench scenario — same track, filter config, and kidnap schedule.
// ---------------------------------------------------------------------------

struct KidnapFixture {
  Track track = TrackGenerator::test_track();
  std::shared_ptr<const OccupancyGrid> map =
      std::make_shared<const OccupancyGrid>(track.grid);
  ExperimentConfig exp;
  SynPfConfig cfg;

  KidnapFixture() {
    exp.laps = 1000000;  // run the clock out; crash or time ends the run
    exp.max_sim_time = 45.0;
    ExperimentConfig::KidnapSpec kidnap;
    kidnap.t = 12.0;
    kidnap.advance_frac = 0.25;
    exp.kidnaps.push_back(kidnap);
    cfg.range = RangeMethodKind::kCddt;
    cfg.filter.n_particles = 800;
    cfg.filter.n_threads = 1;
  }
};

TEST(KidnapRecovery, BareFilterStaysLostButSupervisedRelocalizes) {
  KidnapFixture f;

  // Nominal reference (no kidnap): sets the lateral-error yardstick.
  ExperimentConfig nominal = f.exp;
  nominal.kidnaps.clear();
  nominal.laps = 2;
  double nominal_lateral_cm = 0.0;
  {
    SynPf pf{f.cfg, f.map, f.exp.lidar};
    ExperimentRunner runner{f.track, nominal};
    const ExperimentResult r = runner.run(pf);
    ASSERT_FALSE(r.crashed);
    nominal_lateral_cm = r.lateral_mean_cm;
    ASSERT_GT(nominal_lateral_cm, 0.0);
  }

  // Bare SynPF: the kidnap defeats it — the divergence episode never
  // closes (the car crashes into a wall under wrong-pose steering).
  {
    SynPf pf{f.cfg, f.map, f.exp.lidar};
    ExperimentRunner runner{f.track, f.exp};
    const ExperimentResult r = runner.run(pf);
    EXPECT_EQ(r.kidnaps_applied, 1);
    EXPECT_GE(r.divergence_episodes, 1);
    EXPECT_FALSE(r.recovered);
  }

  // Supervised SynPF: detects the kidnap, relocalizes, finishes the run.
  {
    SynPf pf{f.cfg, f.map, f.exp.lidar};
    recovery::SupervisedLocalizer sup{pf, {}, f.map, f.exp.lidar};
    sup.bind_filter(&pf.filter());
    telemetry::Telemetry telemetry;
    ExperimentRunner runner{f.track, f.exp};
    const ExperimentResult r = runner.run(sup, nullptr, telemetry.sink());

    EXPECT_EQ(r.kidnaps_applied, 1);
    EXPECT_FALSE(r.crashed);
    EXPECT_TRUE(r.recovered);
    ASSERT_GE(r.recoveries, 1);
    // Relocalization is fast enough to matter in a race...
    EXPECT_LE(r.time_to_relocalize_mean_s, 2.0);
    // ...and the post-recovery line returns to the nominal accuracy band.
    EXPECT_GT(r.post_recovery_lateral_cm, 0.0);
    EXPECT_LE(r.post_recovery_lateral_cm, 1.5 * nominal_lateral_cm);

    // The recovery machinery actually ran: a confirmed divergence and at
    // least one applied action.
    const telemetry::Counter* diverged =
        telemetry.metrics.find_counter("recovery.to_diverged");
    ASSERT_NE(diverged, nullptr);
    EXPECT_GE(diverged->value(), 1u);
    const telemetry::Counter* inject =
        telemetry.metrics.find_counter("recovery.injections");
    const telemetry::Counter* reloc =
        telemetry.metrics.find_counter("recovery.global_relocs");
    const std::uint64_t actions = (inject != nullptr ? inject->value() : 0) +
                                  (reloc != nullptr ? reloc->value() : 0);
    EXPECT_GE(actions, 1u);
  }
}

}  // namespace
}  // namespace srl
