#include "track/raceline.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.hpp"
#include "gridmap/track_generator.hpp"

namespace srl {
namespace {

std::vector<Vec2> circle(double r, int n) {
  std::vector<Vec2> pts;
  for (int i = 0; i < n; ++i) {
    const double a = kTwoPi * i / n;
    pts.emplace_back(r * std::cos(a), r * std::sin(a));
  }
  return pts;
}

TEST(Raceline, LengthAndWrap) {
  const Raceline line{circle(2.0, 256)};
  EXPECT_NEAR(line.length(), kTwoPi * 2.0, 0.02);
  EXPECT_NEAR(line.wrap(line.length() + 1.0), 1.0, 1e-9);
  EXPECT_NEAR(line.wrap(-1.0), line.length() - 1.0, 1e-9);
}

TEST(Raceline, PositionOnCircle) {
  const double r = 3.0;
  const Raceline line{circle(r, 512)};
  for (double s = 0.0; s < line.length(); s += 2.1) {
    EXPECT_NEAR(line.position(s).norm(), r, 0.01);
  }
  // s=0 is the first vertex (r, 0).
  EXPECT_NEAR(line.position(0.0).x, r, 1e-6);
}

TEST(Raceline, HeadingTangentToCircle) {
  const Raceline line{circle(3.0, 512)};
  // At (3, 0) on a CCW circle, the tangent points along +y.
  EXPECT_NEAR(angle_dist(line.heading(0.0), kPi / 2.0), 0.0, 0.05);
}

TEST(Raceline, CurvatureOfCircle) {
  const double r = 2.5;
  const Raceline line{circle(r, 256)};
  for (double s = 0.0; s < line.length(); s += 1.3) {
    EXPECT_NEAR(line.curvature(s), 1.0 / r, 0.02);
  }
}

TEST(Raceline, ProjectionSignConvention) {
  const Raceline line{circle(3.0, 512)};
  // A point inside the CCW circle is LEFT of the direction of travel.
  const auto inside = line.project({2.0, 0.0});
  EXPECT_GT(inside.lateral, 0.0);
  EXPECT_NEAR(inside.lateral, 1.0, 0.01);
  const auto outside = line.project({4.0, 0.0});
  EXPECT_LT(outside.lateral, 0.0);
  EXPECT_NEAR(outside.lateral, -1.0, 0.01);
}

TEST(Raceline, ProjectionFindsClosestPoint) {
  const Raceline line{circle(3.0, 512)};
  const auto proj = line.project({0.0, 2.0});
  EXPECT_NEAR(proj.closest.norm(), 3.0, 0.01);
  EXPECT_NEAR(proj.closest.y, 3.0, 0.05);
  EXPECT_NEAR(std::abs(proj.lateral), 1.0, 0.01);
}

TEST(Raceline, ProgressSignedAndWrapped) {
  const Raceline line{circle(3.0, 512)};
  const double len = line.length();
  EXPECT_NEAR(line.progress(1.0, 2.5), 1.5, 1e-9);
  EXPECT_NEAR(line.progress(2.5, 1.0), -1.5, 1e-9);
  // Crossing the start line forward is small positive progress.
  EXPECT_NEAR(line.progress(len - 0.5, 0.5), 1.0, 1e-9);
}

TEST(Raceline, SMonotonicAlongTravel) {
  const Track track = TrackGenerator::oval(6.0, 2.0);
  const Raceline line{track.centerline};
  double prev_s = line.project(track.centerline[0]).s;
  double advanced = 0.0;
  for (std::size_t i = 1; i < track.centerline.size(); i += 3) {
    const double s = line.project(track.centerline[i]).s;
    advanced += line.progress(prev_s, s);
    prev_s = s;
  }
  // Walking the full centerline advances about one lap.
  EXPECT_NEAR(advanced, line.length(), 0.1 * line.length());
}

TEST(Raceline, ThrowsOnTooFewPoints) {
  EXPECT_THROW(Raceline({{0, 0}, {1, 1}}), std::invalid_argument);
}

TEST(LapTimer, ArmsOnFirstCrossingThenTimes) {
  LapTimer timer{100.0};
  EXPECT_FALSE(timer.armed());
  timer.update(10.0, 0.0);
  timer.update(50.0, 1.0);
  timer.update(95.0, 2.0);
  EXPECT_FALSE(timer.update(2.0, 2.5));  // first crossing arms, no lap yet
  EXPECT_TRUE(timer.armed());
  EXPECT_EQ(timer.laps(), 0);
  timer.update(50.0, 5.0);
  timer.update(99.0, 9.0);
  EXPECT_TRUE(timer.update(1.0, 9.5));  // lap complete
  ASSERT_EQ(timer.laps(), 1);
  EXPECT_NEAR(timer.lap_times()[0], 7.0, 1e-9);
}

TEST(LapTimer, IgnoresBackwardJitterAtLine) {
  LapTimer timer{100.0};
  timer.update(95.0, 0.0);
  timer.update(1.0, 0.5);  // armed
  // Jitter back and forth around the line must not close extra laps
  // (backward crossing 1 -> 99 is not a forward crossing).
  timer.update(99.0, 0.6);
  EXPECT_EQ(timer.laps(), 0);
  timer.update(1.5, 0.7);  // forward again: this DOES count as a crossing
  EXPECT_EQ(timer.laps(), 1);
}

TEST(LapTimer, MultipleLaps) {
  LapTimer timer{50.0};
  double t = 0.0;
  // Samples every 5 m at 5 m/s.
  for (int lap = 0; lap < 4; ++lap) {
    for (double s = 0.0; s < 50.0; s += 5.0) {
      timer.update(s, t);
      t += 1.0;
    }
  }
  timer.update(0.0, t);
  EXPECT_EQ(timer.laps(), 3);  // first crossing arms
  for (double lap_time : timer.lap_times()) {
    EXPECT_NEAR(lap_time, 10.0, 1e-9);
  }
}

}  // namespace
}  // namespace srl
