/// Contract subsystem (common/contracts.hpp): macro semantics in both build
/// flavors, the handler/observer plumbing, the telemetry bridge, and — in
/// SYNPF_CHECKED builds — the contracts wired into the library's hot seams
/// (particle filter, range backends, occupancy grid, pose graph, vehicle
/// sim). In a release flavor those runtime checks compile to nothing, so the
/// wired-in cases are skipped via `contracts::enabled()`.

#include "common/contracts.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "core/particle_filter.hpp"
#include "motion/diff_drive.hpp"
#include "gridmap/occupancy_grid.hpp"
#include "gridmap/track_generator.hpp"
#include "range/range_method.hpp"
#include "slam/pose_graph.hpp"
#include "telemetry/contract_monitor.hpp"
#include "vehicle/vehicle_sim.hpp"

namespace srl {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

int g_eval_count = 0;
bool count_and_pass() {
  ++g_eval_count;
  return true;
}

TEST(Contracts, ConditionsAreOnlyEvaluatedInCheckedBuilds) {
  g_eval_count = 0;
  SYNPF_EXPECTS(count_and_pass());
  SYNPF_ENSURES(count_and_pass());
  SYNPF_INVARIANT(count_and_pass());
  EXPECT_EQ(g_eval_count, contracts::enabled() ? 3 : 0);
}

TEST(Contracts, DescribeIncludesEveryField) {
  const contracts::Violation v{contracts::Kind::kEnsures, "x > 0",
                               "x must be positive", "foo.cpp", 42, "bar"};
  const std::string text = contracts::describe(v);
  EXPECT_NE(text.find("ENSURES"), std::string::npos);
  EXPECT_NE(text.find("x > 0"), std::string::npos);
  EXPECT_NE(text.find("x must be positive"), std::string::npos);
  EXPECT_NE(text.find("foo.cpp:42"), std::string::npos);
  EXPECT_NE(text.find("bar"), std::string::npos);
}

TEST(Contracts, ThrowingHandlerDeliversTheViolation) {
  const contracts::ScopedHandler guard{contracts::throwing_handler};
  const contracts::Violation v{contracts::Kind::kInvariant, "cond", "",
                               "f.cpp", 7, "fn"};
  try {
    contracts::handle_violation(v);
    FAIL() << "handler did not throw";
  } catch (const contracts::ViolationError& e) {
    EXPECT_EQ(e.violation().kind, contracts::Kind::kInvariant);
    EXPECT_STREQ(e.violation().condition, "cond");
    EXPECT_EQ(e.violation().line, 7);
  }
}

TEST(Contracts, ScopedHandlerRestoresThePreviousHandler) {
  // Install a throwing handler, then nest-and-drop a second handler: the
  // outer one must be back in force afterwards.
  const contracts::ScopedHandler outer{contracts::throwing_handler};
  {
    const contracts::ScopedHandler inner{+[](const contracts::Violation&) {
      // swallow
    }};
    contracts::handle_violation({});  // must not throw
  }
  EXPECT_THROW(contracts::handle_violation({}), contracts::ViolationError);
}

TEST(Contracts, MonitorCountsViolationsByKind) {
  const contracts::ScopedHandler guard{+[](const contracts::Violation&) {}};
  telemetry::MetricsRegistry registry;
  {
    telemetry::ContractMonitor monitor{registry};
    contracts::handle_violation({contracts::Kind::kExpects, "a", "", "f", 1, "fn"});
    contracts::handle_violation({contracts::Kind::kExpects, "b", "", "f", 2, "fn"});
    contracts::handle_violation({contracts::Kind::kEnsures, "c", "", "f", 3, "fn"});
    EXPECT_EQ(monitor.violations(), 3U);
  }
  EXPECT_EQ(registry.counter("contracts.violations").value(), 3U);
  EXPECT_EQ(registry.counter("contracts.expects").value(), 2U);
  EXPECT_EQ(registry.counter("contracts.ensures").value(), 1U);
  EXPECT_EQ(registry.counter("contracts.invariant").value(), 0U);
  // Monitor uninstalled: further violations are not counted.
  contracts::handle_violation({});
  EXPECT_EQ(registry.counter("contracts.violations").value(), 3U);
}

/// The wired-in library contracts only exist in SYNPF_CHECKED builds.
class WiredContracts : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!contracts::enabled()) {
      GTEST_SKIP() << "contracts compiled out in this flavor";
    }
  }
  contracts::ScopedHandler guard_{contracts::throwing_handler};
};

TEST_F(WiredContracts, OccupancyGridRejectsOutOfBoundsAt) {
  const OccupancyGrid grid{10, 10, 0.1, Vec2{0.0, 0.0}, OccupancyGrid::kFree};
  EXPECT_THROW((void)grid.at(-1, 0), contracts::ViolationError);
  EXPECT_THROW((void)grid.at(0, 10), contracts::ViolationError);
  EXPECT_NO_THROW((void)grid.at(9, 9));
}

TEST_F(WiredContracts, RangeBackendsRejectNonFinitePoses) {
  const Track track = TrackGenerator::oval(6.0, 2.0);
  auto map = std::make_shared<const OccupancyGrid>(track.grid);
  for (const auto kind :
       {RangeMethodKind::kBresenham, RangeMethodKind::kRayMarching,
        RangeMethodKind::kCddt, RangeMethodKind::kLut}) {
    const auto method = make_range_method(kind, map);
    EXPECT_THROW((void)method->range({kNan, 0.0, 0.0}),
                 contracts::ViolationError)
        << method->name();
    EXPECT_THROW(
        (void)method->range({0.0, std::numeric_limits<double>::infinity(),
                             0.0}),
        contracts::ViolationError)
        << method->name();
  }
}

TEST_F(WiredContracts, PoseGraphRejectsNonSpdInformation) {
  PoseGraph2D graph;
  const int a = graph.add_node({0.0, 0.0, 0.0});
  const int b = graph.add_node({1.0, 0.0, 0.0});
  EXPECT_THROW(graph.add_relative(a, b, {1.0, 0.0, 0.0}, 0.0, 1.0),
               contracts::ViolationError);
  EXPECT_THROW(graph.add_relative(a, b, {1.0, 0.0, 0.0}, 1.0, -2.0),
               contracts::ViolationError);
  EXPECT_THROW(graph.add_prior(a, {0.0, 0.0, 0.0}, kNan, 1.0),
               contracts::ViolationError);
  EXPECT_THROW(graph.add_relative(a, 7, {1.0, 0.0, 0.0}, 1.0, 1.0),
               contracts::ViolationError);
  EXPECT_NO_THROW(graph.add_relative(a, b, {1.0, 0.0, 0.0}, 50.0, 100.0));
}

TEST_F(WiredContracts, VehicleSimRejectsBadStepInputs) {
  VehicleSim sim;
  EXPECT_THROW(sim.step({1.0, 0.0}, 0.0), contracts::ViolationError);
  EXPECT_THROW(sim.step({1.0, 0.0}, kNan), contracts::ViolationError);
  EXPECT_THROW(sim.step({kNan, 0.0}, 0.01), contracts::ViolationError);
  EXPECT_NO_THROW(sim.step({1.0, 0.0}, 0.01));
}

TEST_F(WiredContracts, ParticleFilterRejectsNonFiniteOdometry) {
  const Track track = TrackGenerator::oval(6.0, 2.0);
  auto map = std::make_shared<const OccupancyGrid>(track.grid);
  auto caster = std::shared_ptr<const RangeMethod>{
      make_range_method(RangeMethodKind::kBresenham, map)};
  auto motion = std::make_shared<const DiffDriveModel>();
  ParticleFilterConfig cfg;
  cfg.n_particles = 50;
  ParticleFilter pf{cfg,           std::move(caster), std::move(motion),
                    BeamModel{},   LidarConfig{},     {0, 10, 20}};
  pf.init_pose({track.centerline.front(), 0.0});
  OdometryDelta bad;
  bad.delta.x = kNan;
  EXPECT_THROW(pf.predict(bad), contracts::ViolationError);
}

}  // namespace
}  // namespace srl
