#include "core/particle_filter.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <tuple>

#include "common/angles.hpp"
#include "motion/tum_model.hpp"
#include "range/bresenham.hpp"
#include "sensor/lidar_sim.hpp"
#include "sensor/scanline_layout.hpp"

namespace srl {
namespace {

std::shared_ptr<const OccupancyGrid> make_room() {
  // 10 x 6 m room with an internal pillar to break symmetry.
  auto grid = std::make_shared<OccupancyGrid>(200, 120, 0.05, Vec2{0.0, 0.0},
                                              OccupancyGrid::kFree);
  for (int x = 0; x < 200; ++x) {
    grid->at(x, 0) = OccupancyGrid::kOccupied;
    grid->at(x, 119) = OccupancyGrid::kOccupied;
  }
  for (int y = 0; y < 120; ++y) {
    grid->at(0, y) = OccupancyGrid::kOccupied;
    grid->at(199, y) = OccupancyGrid::kOccupied;
  }
  for (int y = 40; y < 60; ++y) {
    for (int x = 60, xe = 80; x < xe; ++x) {
      grid->at(x, y) = OccupancyGrid::kOccupied;
    }
  }
  return grid;
}

ParticleFilter make_filter(std::shared_ptr<const OccupancyGrid> map,
                           int particles = 800, std::uint64_t seed = 42) {
  const LidarConfig lidar;
  ParticleFilterConfig cfg;
  cfg.n_particles = particles;
  auto caster = std::make_shared<BresenhamCaster>(map, lidar.max_range);
  auto motion = std::make_shared<TumMotionModel>();
  return ParticleFilter{cfg,
                        std::move(caster),
                        std::move(motion),
                        BeamModel{},
                        lidar,
                        uniform_layout(lidar, 40),
                        seed};
}

LaserScan observe(std::shared_ptr<const OccupancyGrid> map, const Pose2& pose,
                  Rng& rng) {
  const LidarConfig lidar;
  auto caster = std::make_shared<BresenhamCaster>(std::move(map),
                                                  lidar.max_range);
  LidarNoise noise;
  noise.sigma_range = 0.01;
  noise.dropout_prob = 0.0;
  const LidarSim sim{lidar, std::move(caster), noise};
  return sim.scan(pose, 0.0, rng);
}

TEST(ParticleFilter, InitPoseSpread) {
  auto map = make_room();
  ParticleFilter pf = make_filter(map);
  const Pose2 start{5.0, 3.0, 0.5};
  pf.init_pose(start);
  const Pose2 est = pf.estimate();
  EXPECT_NEAR(est.x, start.x, 0.05);
  EXPECT_NEAR(est.y, start.y, 0.05);
  EXPECT_NEAR(angle_dist(est.theta, start.theta), 0.0, 0.03);
  const PoseCovariance cov = pf.covariance();
  EXPECT_NEAR(std::sqrt(cov.xx), pf.config().init_sigma_xy, 0.05);
  EXPECT_GT(cov.tt, 0.0);
}

TEST(ParticleFilter, InitGlobalOnlyFreeCells) {
  auto map = make_room();
  ParticleFilter pf = make_filter(map);
  pf.init_global(*map);
  for (const Particle& p : pf.particles_snapshot()) {
    EXPECT_TRUE(map->is_free_at({p.pose.x, p.pose.y}))
        << p.pose.x << "," << p.pose.y;
  }
}

TEST(ParticleFilter, PredictMovesCloud) {
  auto map = make_room();
  ParticleFilter pf = make_filter(map);
  pf.init_pose({5.0, 3.0, 0.0});
  OdometryDelta odom;
  odom.delta = Pose2{0.5, 0.0, 0.0};
  odom.v = 2.0;
  odom.dt = 0.25;
  pf.predict(odom);
  EXPECT_NEAR(pf.estimate().x, 5.5, 0.1);
}

TEST(ParticleFilter, CorrectConcentratesNearTruth) {
  auto map = make_room();
  ParticleFilter pf = make_filter(map, 1500);
  const Pose2 truth{4.0, 2.0, 0.8};
  // Broad initialization around (but not at) the truth.
  ParticleFilterConfig cfg = pf.config();
  pf.init_pose({4.3, 2.3, 0.6});
  (void)cfg;

  Rng scan_rng{7};
  for (int i = 0; i < 6; ++i) {
    const LaserScan scan = observe(map, truth, scan_rng);
    pf.correct(scan);
  }
  const Pose2 est = pf.estimate();
  EXPECT_NEAR(est.x, truth.x, 0.12);
  EXPECT_NEAR(est.y, truth.y, 0.12);
  EXPECT_NEAR(angle_dist(est.theta, truth.theta), 0.0, 0.08);
  // The posterior tightened relative to the prior.
  const PoseCovariance cov = pf.covariance();
  EXPECT_LT(std::sqrt(cov.xx), pf.config().init_sigma_xy);
}

TEST(ParticleFilter, GlobalLocalizationConverges) {
  auto map = make_room();
  ParticleFilter pf = make_filter(map, 4000, 13);
  pf.init_global(*map);
  const Pose2 truth{7.5, 4.5, -2.0};
  Rng scan_rng{21};
  OdometryDelta odom;
  odom.delta = Pose2{0.08, 0.0, 0.03};
  odom.v = 1.0;
  odom.dt = 0.08;
  Pose2 truth_now = truth;
  for (int i = 0; i < 25; ++i) {
    const LaserScan scan = observe(map, truth_now, scan_rng);
    pf.correct(scan);
    pf.predict(odom);
    truth_now = (truth_now * odom.delta).normalized();
  }
  const LaserScan scan = observe(map, truth_now, scan_rng);
  pf.correct(scan);
  const Pose2 est = pf.estimate();
  EXPECT_NEAR(est.x, truth_now.x, 0.3);
  EXPECT_NEAR(est.y, truth_now.y, 0.3);
}

TEST(ParticleFilter, EssDropsOnConflictThenResamples) {
  auto map = make_room();
  ParticleFilter pf = make_filter(map, 500);
  pf.init_pose({5.0, 3.0, 0.0});
  const double ess0 = pf.effective_sample_size();
  EXPECT_NEAR(ess0, 500.0, 1.0);  // uniform weights
  Rng scan_rng{3};
  const LaserScan scan = observe(map, {5.0, 3.0, 0.0}, scan_rng);
  pf.correct(scan);
  // After a correction + possible resample the filter stays healthy.
  EXPECT_GT(pf.effective_sample_size(), 50.0);
  EXPECT_GE(pf.resample_count(), 0L);
}

TEST(ParticleFilter, ResamplePreservesMean) {
  auto map = make_room();
  ParticleFilter pf = make_filter(map, 3000);
  pf.init_pose({5.0, 3.0, 1.0});
  const Pose2 before = pf.estimate();
  Rng scan_rng{33};
  const LaserScan scan = observe(map, {5.0, 3.0, 1.0}, scan_rng);
  pf.correct(scan);  // likely triggers a resample
  const Pose2 after = pf.estimate();
  EXPECT_NEAR(before.x, after.x, 0.15);
  EXPECT_NEAR(before.y, after.y, 0.15);
}

TEST(ParticleFilter, WeightsNormalizedAfterCorrect) {
  auto map = make_room();
  ParticleFilter pf = make_filter(map);
  pf.init_pose({5.0, 3.0, 0.0});
  Rng scan_rng{9};
  const LaserScan scan = observe(map, {5.0, 3.0, 0.0}, scan_rng);
  pf.correct(scan);
  double sum = 0.0;
  for (const Particle& p : pf.particles_snapshot()) sum += p.weight;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ParticleFilter, DeterministicWithSameSeed) {
  auto map = make_room();
  ParticleFilter a = make_filter(map, 300, 99);
  ParticleFilter b = make_filter(map, 300, 99);
  a.init_pose({5.0, 3.0, 0.0});
  b.init_pose({5.0, 3.0, 0.0});
  Rng ra{1};
  Rng rb{1};
  const LaserScan sa = observe(map, {5.0, 3.0, 0.0}, ra);
  const LaserScan sb = observe(map, {5.0, 3.0, 0.0}, rb);
  a.correct(sa);
  b.correct(sb);
  const Pose2 ea = a.estimate();
  const Pose2 eb = b.estimate();
  EXPECT_DOUBLE_EQ(ea.x, eb.x);
  EXPECT_DOUBLE_EQ(ea.theta, eb.theta);
}

// ---------------------------------------------------------------------------
// Property-based resampling suite: generator-driven weight vectors (random,
// spike, equal, degenerate) pushed through set_weights + force_resample,
// asserting the low-variance-resampling invariants across many seeds:
//   * multiplicity: each source particle is drawn within +-1 of n * w_i
//     (the defining guarantee of systematic resampling),
//   * ESS monotonicity: resampling restores ESS to exactly n, never below
//     the pre-resample value,
//   * normalization post-conditions: uniform 1/n weights summing to 1.
// ---------------------------------------------------------------------------

enum class WeightMode { kRandom, kSpike, kEqual, kZeroSum, kTiny };

const char* mode_name(WeightMode m) {
  switch (m) {
    case WeightMode::kRandom: return "random";
    case WeightMode::kSpike: return "spike";
    case WeightMode::kEqual: return "equal";
    case WeightMode::kZeroSum: return "zero-sum";
    case WeightMode::kTiny: return "tiny";
  }
  return "?";
}

std::vector<double> make_weights(WeightMode mode, std::size_t n, Rng& gen) {
  std::vector<double> w(n);
  switch (mode) {
    case WeightMode::kRandom:
      for (double& x : w) x = gen.uniform(0.0, 1.0);
      break;
    case WeightMode::kSpike: {
      // One dominant particle, the rest negligible.
      for (double& x : w) x = gen.uniform(0.0, 1e-9);
      w[static_cast<std::size_t>(gen.uniform_int(
          0, static_cast<int>(n) - 1))] = 1.0;
      break;
    }
    case WeightMode::kEqual:
      for (double& x : w) x = 0.5;
      break;
    case WeightMode::kZeroSum:
      // Degenerate: total mass zero. normalize_weights() must collapse the
      // cloud back to uniform rather than divide by zero.
      for (double& x : w) x = 0.0;
      break;
    case WeightMode::kTiny:
      // Positive but denormal-adjacent mass; normalization has to survive
      // the tiny divisor without producing inf/nan.
      for (double& x : w) x = gen.uniform(0.1, 1.0) * 1e-300;
      break;
  }
  return w;
}

/// Bit-exact pose key: resampling copies poses verbatim, so the source of
/// every post-resample particle is recoverable from its bit pattern.
using PoseKey = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>;

PoseKey pose_key(const Pose2& p) {
  std::uint64_t x = 0;
  std::uint64_t y = 0;
  std::uint64_t t = 0;
  std::memcpy(&x, &p.x, sizeof(double));
  std::memcpy(&y, &p.y, sizeof(double));
  std::memcpy(&t, &p.theta, sizeof(double));
  return {x, y, t};
}

TEST(ResamplingProperties, SystematicInvariantsAcrossSeedsAndModes) {
  auto map = make_room();
  const LidarConfig lidar;
  for (const int n : {64, 300, 1000}) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      for (const WeightMode mode :
           {WeightMode::kRandom, WeightMode::kSpike, WeightMode::kEqual,
            WeightMode::kZeroSum, WeightMode::kTiny}) {
        SCOPED_TRACE(::testing::Message() << "n=" << n << " seed=" << seed
                                          << " mode=" << mode_name(mode));
        ParticleFilterConfig cfg;
        cfg.n_particles = n;
        // Keep the resampled cloud at exactly n (the non-adaptive path
        // resamples to max(n_particles, kld_min_particles)).
        cfg.kld_min_particles = n;
        ParticleFilter pf{cfg,
                          std::make_shared<BresenhamCaster>(map,
                                                            lidar.max_range),
                          std::make_shared<TumMotionModel>(),
                          BeamModel{},
                          lidar,
                          uniform_layout(lidar, 40),
                          seed};
        pf.init_pose({5.0, 3.0, 0.5});

        Rng gen{seed * 7919 + static_cast<std::uint64_t>(mode) * 104729 +
                static_cast<std::uint64_t>(n)};
        pf.set_weights(make_weights(mode, static_cast<std::size_t>(n), gen));

        // Snapshot the normalized weights and source identities.
        std::map<PoseKey, std::size_t> source;
        std::vector<double> w_norm(static_cast<std::size_t>(n));
        double sum = 0.0;
        const auto cloud = pf.particles_snapshot();
        for (std::size_t i = 0; i < cloud.size(); ++i) {
          ASSERT_TRUE(std::isfinite(cloud[i].weight));
          ASSERT_GE(cloud[i].weight, 0.0);
          w_norm[i] = cloud[i].weight;
          sum += cloud[i].weight;
          ASSERT_TRUE(source.emplace(pose_key(cloud[i].pose), i).second)
              << "duplicate pose bit pattern at slot " << i;
        }
        ASSERT_NEAR(sum, 1.0, 1e-9);  // set_weights post-condition
        const double ess_pre = pf.effective_sample_size();
        ASSERT_GT(ess_pre, 0.0);
        ASSERT_LE(ess_pre, static_cast<double>(n) * (1.0 + 1e-12));
        const long resamples_before = pf.resample_count();

        pf.force_resample();

        // --- Normalization post-conditions: uniform 1/n, summing to 1.
        ASSERT_EQ(pf.current_particles(), n);
        const double uniform = 1.0 / static_cast<double>(n);
        double post_sum = 0.0;
        std::vector<std::size_t> multiplicity(static_cast<std::size_t>(n), 0);
        for (const Particle& p : pf.particles_snapshot()) {
          ASSERT_EQ(p.weight, uniform);
          post_sum += p.weight;
          const auto it = source.find(pose_key(p.pose));
          ASSERT_NE(it, source.end())
              << "resampled particle is not a copy of a source particle";
          ++multiplicity[it->second];
        }
        EXPECT_NEAR(post_sum, 1.0, 1e-9);
        EXPECT_EQ(pf.resample_count(), resamples_before + 1);

        // --- ESS monotonicity: uniform weights restore ESS to exactly n.
        const double ess_post = pf.effective_sample_size();
        EXPECT_NEAR(ess_post, static_cast<double>(n), 1e-6);
        EXPECT_GE(ess_post + 1e-9, ess_pre);

        // --- Systematic multiplicity bound: |count_i - n * w_i| <= 1.
        for (std::size_t i = 0; i < w_norm.size(); ++i) {
          const double expected = static_cast<double>(n) * w_norm[i];
          const double count = static_cast<double>(multiplicity[i]);
          EXPECT_LE(std::abs(count - expected), 1.0 + 1e-9)
              << "slot " << i << ": count " << count << " vs n*w " << expected;
        }
      }
    }
  }
}

TEST(ResamplingProperties, SpikeCollapsesToSingleAncestor) {
  auto map = make_room();
  ParticleFilter pf = make_filter(map, 500, 5);
  pf.init_pose({5.0, 3.0, 0.0});
  std::vector<double> w(500, 0.0);
  w[123] = 1.0;
  const Pose2 spike_pose = pf.cloud().pose(123);
  pf.set_weights(w);
  pf.force_resample();
  for (const Particle& p : pf.particles_snapshot()) {
    ASSERT_EQ(pose_key(p.pose), pose_key(spike_pose));
  }
  EXPECT_NEAR(pf.effective_sample_size(),
              static_cast<double>(pf.current_particles()), 1e-6);
}

TEST(ParticleFilter, CircularMeanAcrossWrap) {
  auto map = make_room();
  ParticleFilter pf = make_filter(map);
  pf.init_pose({5.0, 3.0, kPi});  // heading at the wrap
  const Pose2 est = pf.estimate();
  EXPECT_NEAR(angle_dist(est.theta, kPi), 0.0, 0.05);
}

// ---------------------------------------------------------------------------
// Governor resize orderings (PR-10 regressions): a govern_resize must leave
// the cloud and its weight scratch coherent for whatever runs next — the
// recovery layer's uniform injection and the flight recorder's top-K digest
// both consume the slabs immediately after a resize in the governed stack.
// ---------------------------------------------------------------------------

TEST(ParticleFilter, GovernResizeThenInjectUniformStaysCoherent) {
  auto map = make_room();
  for (const int target : {300, 1200}) {  // shrink and grow orderings
    ParticleFilter pf = make_filter(map);
    pf.set_recovery_map(map);
    pf.init_pose({5.0, 3.0, 0.0});
    pf.govern_resize(target, 7);
    ASSERT_EQ(pf.current_particles(), target);

    Rng rng{99};
    pf.inject_uniform(0.5, rng);  // would fire the mid-resize/size contracts
    EXPECT_EQ(pf.current_particles(), target);
    const std::vector<Particle> cloud = pf.particles_snapshot();
    const double uniform = 1.0 / static_cast<double>(target);
    int inside_free = 0;
    for (const Particle& p : cloud) {
      EXPECT_DOUBLE_EQ(p.weight, uniform);
      const GridIndex cell = map->world_to_grid({p.pose.x, p.pose.y});
      if (map->in_bounds(cell) && map->is_free(cell.ix, cell.iy)) {
        ++inside_free;
      }
    }
    // The injected half landed on free cells; the kept half started there.
    EXPECT_GT(inside_free, target / 2);
  }
}

TEST(ParticleFilter, GovernResizeThenTopParticlesDigestStaysCoherent) {
  auto map = make_room();
  for (const int target : {300, 1200}) {
    ParticleFilter pf = make_filter(map);
    pf.init_pose({5.0, 3.0, 0.0});
    pf.govern_resize(target, 3);
    ASSERT_EQ(pf.current_particles(), target);

    // Digest immediately after the resize: k capped at the new size, sorted
    // by weight descending with slot-index tie-breaks over the (uniform)
    // resized weights — i.e. the first k slots in order.
    const std::vector<Particle> digest = pf.top_particles(32);
    ASSERT_EQ(digest.size(), 32U);
    const double uniform = 1.0 / static_cast<double>(target);
    for (const Particle& p : digest) EXPECT_DOUBLE_EQ(p.weight, uniform);
    const std::vector<Particle> all = pf.particles_snapshot();
    for (std::size_t i = 0; i < digest.size(); ++i) {
      EXPECT_DOUBLE_EQ(digest[i].pose.x, all[i].pose.x) << i;
      EXPECT_DOUBLE_EQ(digest[i].pose.y, all[i].pose.y) << i;
    }
    // Oversized k clamps to the whole cloud instead of reading stale slots.
    EXPECT_EQ(pf.top_particles(static_cast<std::size_t>(target) + 64).size(),
              static_cast<std::size_t>(target));
  }
}

}  // namespace
}  // namespace srl
