#include "core/particle_filter.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/angles.hpp"
#include "motion/tum_model.hpp"
#include "range/bresenham.hpp"
#include "sensor/lidar_sim.hpp"
#include "sensor/scanline_layout.hpp"

namespace srl {
namespace {

std::shared_ptr<const OccupancyGrid> make_room() {
  // 10 x 6 m room with an internal pillar to break symmetry.
  auto grid = std::make_shared<OccupancyGrid>(200, 120, 0.05, Vec2{0.0, 0.0},
                                              OccupancyGrid::kFree);
  for (int x = 0; x < 200; ++x) {
    grid->at(x, 0) = OccupancyGrid::kOccupied;
    grid->at(x, 119) = OccupancyGrid::kOccupied;
  }
  for (int y = 0; y < 120; ++y) {
    grid->at(0, y) = OccupancyGrid::kOccupied;
    grid->at(199, y) = OccupancyGrid::kOccupied;
  }
  for (int y = 40; y < 60; ++y) {
    for (int x = 60, xe = 80; x < xe; ++x) {
      grid->at(x, y) = OccupancyGrid::kOccupied;
    }
  }
  return grid;
}

ParticleFilter make_filter(std::shared_ptr<const OccupancyGrid> map,
                           int particles = 800, std::uint64_t seed = 42) {
  const LidarConfig lidar;
  ParticleFilterConfig cfg;
  cfg.n_particles = particles;
  auto caster = std::make_shared<BresenhamCaster>(map, lidar.max_range);
  auto motion = std::make_shared<TumMotionModel>();
  return ParticleFilter{cfg,
                        std::move(caster),
                        std::move(motion),
                        BeamModel{},
                        lidar,
                        uniform_layout(lidar, 40),
                        seed};
}

LaserScan observe(std::shared_ptr<const OccupancyGrid> map, const Pose2& pose,
                  Rng& rng) {
  const LidarConfig lidar;
  auto caster = std::make_shared<BresenhamCaster>(std::move(map),
                                                  lidar.max_range);
  LidarNoise noise;
  noise.sigma_range = 0.01;
  noise.dropout_prob = 0.0;
  const LidarSim sim{lidar, std::move(caster), noise};
  return sim.scan(pose, 0.0, rng);
}

TEST(ParticleFilter, InitPoseSpread) {
  auto map = make_room();
  ParticleFilter pf = make_filter(map);
  const Pose2 start{5.0, 3.0, 0.5};
  pf.init_pose(start);
  const Pose2 est = pf.estimate();
  EXPECT_NEAR(est.x, start.x, 0.05);
  EXPECT_NEAR(est.y, start.y, 0.05);
  EXPECT_NEAR(angle_dist(est.theta, start.theta), 0.0, 0.03);
  const PoseCovariance cov = pf.covariance();
  EXPECT_NEAR(std::sqrt(cov.xx), pf.config().init_sigma_xy, 0.05);
  EXPECT_GT(cov.tt, 0.0);
}

TEST(ParticleFilter, InitGlobalOnlyFreeCells) {
  auto map = make_room();
  ParticleFilter pf = make_filter(map);
  pf.init_global(*map);
  for (const Particle& p : pf.particles()) {
    EXPECT_TRUE(map->is_free_at({p.pose.x, p.pose.y}))
        << p.pose.x << "," << p.pose.y;
  }
}

TEST(ParticleFilter, PredictMovesCloud) {
  auto map = make_room();
  ParticleFilter pf = make_filter(map);
  pf.init_pose({5.0, 3.0, 0.0});
  OdometryDelta odom;
  odom.delta = Pose2{0.5, 0.0, 0.0};
  odom.v = 2.0;
  odom.dt = 0.25;
  pf.predict(odom);
  EXPECT_NEAR(pf.estimate().x, 5.5, 0.1);
}

TEST(ParticleFilter, CorrectConcentratesNearTruth) {
  auto map = make_room();
  ParticleFilter pf = make_filter(map, 1500);
  const Pose2 truth{4.0, 2.0, 0.8};
  // Broad initialization around (but not at) the truth.
  ParticleFilterConfig cfg = pf.config();
  pf.init_pose({4.3, 2.3, 0.6});
  (void)cfg;

  Rng scan_rng{7};
  for (int i = 0; i < 6; ++i) {
    const LaserScan scan = observe(map, truth, scan_rng);
    pf.correct(scan);
  }
  const Pose2 est = pf.estimate();
  EXPECT_NEAR(est.x, truth.x, 0.12);
  EXPECT_NEAR(est.y, truth.y, 0.12);
  EXPECT_NEAR(angle_dist(est.theta, truth.theta), 0.0, 0.08);
  // The posterior tightened relative to the prior.
  const PoseCovariance cov = pf.covariance();
  EXPECT_LT(std::sqrt(cov.xx), pf.config().init_sigma_xy);
}

TEST(ParticleFilter, GlobalLocalizationConverges) {
  auto map = make_room();
  ParticleFilter pf = make_filter(map, 4000, 13);
  pf.init_global(*map);
  const Pose2 truth{7.5, 4.5, -2.0};
  Rng scan_rng{21};
  OdometryDelta odom;
  odom.delta = Pose2{0.08, 0.0, 0.03};
  odom.v = 1.0;
  odom.dt = 0.08;
  Pose2 truth_now = truth;
  for (int i = 0; i < 25; ++i) {
    const LaserScan scan = observe(map, truth_now, scan_rng);
    pf.correct(scan);
    pf.predict(odom);
    truth_now = (truth_now * odom.delta).normalized();
  }
  const LaserScan scan = observe(map, truth_now, scan_rng);
  pf.correct(scan);
  const Pose2 est = pf.estimate();
  EXPECT_NEAR(est.x, truth_now.x, 0.3);
  EXPECT_NEAR(est.y, truth_now.y, 0.3);
}

TEST(ParticleFilter, EssDropsOnConflictThenResamples) {
  auto map = make_room();
  ParticleFilter pf = make_filter(map, 500);
  pf.init_pose({5.0, 3.0, 0.0});
  const double ess0 = pf.effective_sample_size();
  EXPECT_NEAR(ess0, 500.0, 1.0);  // uniform weights
  Rng scan_rng{3};
  const LaserScan scan = observe(map, {5.0, 3.0, 0.0}, scan_rng);
  pf.correct(scan);
  // After a correction + possible resample the filter stays healthy.
  EXPECT_GT(pf.effective_sample_size(), 50.0);
  EXPECT_GE(pf.resample_count(), 0L);
}

TEST(ParticleFilter, ResamplePreservesMean) {
  auto map = make_room();
  ParticleFilter pf = make_filter(map, 3000);
  pf.init_pose({5.0, 3.0, 1.0});
  const Pose2 before = pf.estimate();
  Rng scan_rng{33};
  const LaserScan scan = observe(map, {5.0, 3.0, 1.0}, scan_rng);
  pf.correct(scan);  // likely triggers a resample
  const Pose2 after = pf.estimate();
  EXPECT_NEAR(before.x, after.x, 0.15);
  EXPECT_NEAR(before.y, after.y, 0.15);
}

TEST(ParticleFilter, WeightsNormalizedAfterCorrect) {
  auto map = make_room();
  ParticleFilter pf = make_filter(map);
  pf.init_pose({5.0, 3.0, 0.0});
  Rng scan_rng{9};
  const LaserScan scan = observe(map, {5.0, 3.0, 0.0}, scan_rng);
  pf.correct(scan);
  double sum = 0.0;
  for (const Particle& p : pf.particles()) sum += p.weight;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ParticleFilter, DeterministicWithSameSeed) {
  auto map = make_room();
  ParticleFilter a = make_filter(map, 300, 99);
  ParticleFilter b = make_filter(map, 300, 99);
  a.init_pose({5.0, 3.0, 0.0});
  b.init_pose({5.0, 3.0, 0.0});
  Rng ra{1};
  Rng rb{1};
  const LaserScan sa = observe(map, {5.0, 3.0, 0.0}, ra);
  const LaserScan sb = observe(map, {5.0, 3.0, 0.0}, rb);
  a.correct(sa);
  b.correct(sb);
  const Pose2 ea = a.estimate();
  const Pose2 eb = b.estimate();
  EXPECT_DOUBLE_EQ(ea.x, eb.x);
  EXPECT_DOUBLE_EQ(ea.theta, eb.theta);
}

TEST(ParticleFilter, CircularMeanAcrossWrap) {
  auto map = make_room();
  ParticleFilter pf = make_filter(map);
  pf.init_pose({5.0, 3.0, kPi});  // heading at the wrap
  const Pose2 est = pf.estimate();
  EXPECT_NEAR(angle_dist(est.theta, kPi), 0.0, 0.05);
}

}  // namespace
}  // namespace srl
