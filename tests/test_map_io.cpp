#include "gridmap/map_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.hpp"
#include "gridmap/track_generator.hpp"

namespace srl {
namespace {

class MapIoTest : public ::testing::Test {
 protected:
  void TearDown() override {
    std::remove((stem_ + ".pgm").c_str());
    std::remove((stem_ + ".yaml").c_str());
  }
  std::string stem_ = "map_io_test_tmp";
};

TEST_F(MapIoTest, RoundTripPreservesCells) {
  OccupancyGrid g{17, 9, 0.05, Vec2{-1.25, 3.5}};
  Rng rng{3};
  for (int y = 0; y < g.height(); ++y) {
    for (int x = 0; x < g.width(); ++x) {
      const int pick = rng.uniform_int(0, 2);
      g.at(x, y) = pick == 0 ? OccupancyGrid::kFree
                             : (pick == 1 ? OccupancyGrid::kOccupied
                                          : OccupancyGrid::kUnknown);
    }
  }
  ASSERT_TRUE(save_map(g, stem_));
  const auto loaded = load_map(stem_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->width(), g.width());
  EXPECT_EQ(loaded->height(), g.height());
  EXPECT_DOUBLE_EQ(loaded->resolution(), g.resolution());
  EXPECT_NEAR(loaded->origin().x, g.origin().x, 1e-9);
  EXPECT_NEAR(loaded->origin().y, g.origin().y, 1e-9);
  for (int y = 0; y < g.height(); ++y) {
    for (int x = 0; x < g.width(); ++x) {
      EXPECT_EQ(loaded->at(x, y), g.at(x, y)) << x << "," << y;
    }
  }
}

TEST_F(MapIoTest, RoundTripGeneratedTrack) {
  const Track track = TrackGenerator::oval(6.0, 2.0);
  ASSERT_TRUE(save_map(track.grid, stem_));
  const auto loaded = load_map(stem_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->count(OccupancyGrid::kFree),
            track.grid.count(OccupancyGrid::kFree));
  EXPECT_EQ(loaded->count(OccupancyGrid::kOccupied),
            track.grid.count(OccupancyGrid::kOccupied));
}

TEST_F(MapIoTest, LoadMissingFileFails) {
  EXPECT_FALSE(load_map("definitely_not_a_map").has_value());
}

}  // namespace
}  // namespace srl
