#include "eval/metrics.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "gridmap/track_generator.hpp"
#include "range/bresenham.hpp"
#include "sensor/lidar_sim.hpp"

namespace srl {
namespace {

struct Fixture {
  Track track = TrackGenerator::oval(6.0, 2.0);
  LidarConfig lidar{};
  std::shared_ptr<const OccupancyGrid> map =
      std::make_shared<const OccupancyGrid>(track.grid);
  LidarSim sim{lidar,
               std::make_shared<BresenhamCaster>(map, lidar.max_range),
               LidarNoise{.sigma_range = 0.0, .dropout_prob = 0.0}};
  Pose2 truth{0.0, -2.0, 0.0};
};

TEST(ScanAlignment, PerfectPoseScoresHigh) {
  Fixture f;
  const ScanAlignmentScorer scorer{f.track.grid, 0.1};
  Rng rng{1};
  const LaserScan scan = f.sim.scan(f.truth, 0.0, rng);
  EXPECT_GT(scorer.score(scan, f.lidar, f.truth), 95.0);
}

TEST(ScanAlignment, ShiftedPoseScoresLower) {
  Fixture f;
  const ScanAlignmentScorer scorer{f.track.grid, 0.1};
  Rng rng{1};
  const LaserScan scan = f.sim.scan(f.truth, 0.0, rng);
  const double good = scorer.score(scan, f.lidar, f.truth);
  const double bad = scorer.score(
      scan, f.lidar, Pose2{f.truth.x + 0.4, f.truth.y + 0.3, f.truth.theta});
  EXPECT_LT(bad, good - 20.0);
}

TEST(ScanAlignment, RotationHurtsMost) {
  Fixture f;
  const ScanAlignmentScorer scorer{f.track.grid, 0.1};
  Rng rng{1};
  const LaserScan scan = f.sim.scan(f.truth, 0.0, rng);
  const double rotated = scorer.score(
      scan, f.lidar, Pose2{f.truth.x, f.truth.y, f.truth.theta + 0.2});
  EXPECT_LT(rotated, 60.0);
}

TEST(ScanAlignment, ToleranceMonotone) {
  Fixture f;
  Rng rng{1};
  const LaserScan scan = f.sim.scan(f.truth, 0.0, rng);
  const Pose2 off{f.truth.x + 0.05, f.truth.y, f.truth.theta};
  const ScanAlignmentScorer tight{f.track.grid, 0.03};
  const ScanAlignmentScorer loose{f.track.grid, 0.3};
  EXPECT_LE(tight.score(scan, f.lidar, off), loose.score(scan, f.lidar, off));
}

TEST(ScanAlignment, EmptyScanScoresZero) {
  Fixture f;
  const ScanAlignmentScorer scorer{f.track.grid, 0.1};
  LaserScan empty;
  empty.ranges.assign(static_cast<std::size_t>(f.lidar.n_beams),
                      static_cast<float>(f.lidar.max_range));
  EXPECT_DOUBLE_EQ(scorer.score(empty, f.lidar, f.truth), 0.0);
}

}  // namespace
}  // namespace srl
