#include "range/range_method.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/angles.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "gridmap/track_generator.hpp"
#include "range/bresenham.hpp"
#include "range/cddt.hpp"
#include "range/lookup_table.hpp"
#include "range/ray_marching.hpp"

namespace srl {
namespace {

/// A square room: free interior, one-cell walls, 10 m x 10 m at 5 cm.
std::shared_ptr<const OccupancyGrid> make_room() {
  auto grid = std::make_shared<OccupancyGrid>(200, 200, 0.05, Vec2{0.0, 0.0},
                                              OccupancyGrid::kFree);
  for (int i = 0; i < 200; ++i) {
    grid->at(i, 0) = OccupancyGrid::kOccupied;
    grid->at(i, 199) = OccupancyGrid::kOccupied;
    grid->at(0, i) = OccupancyGrid::kOccupied;
    grid->at(199, i) = OccupancyGrid::kOccupied;
  }
  return grid;
}

TEST(Bresenham, AxisAlignedExact) {
  auto room = make_room();
  const BresenhamCaster caster{room, 20.0};
  const Pose2 center{5.0, 5.0, 0.0};
  // Wall inner face at x = 9.95 (the wall cell starts there).
  EXPECT_NEAR(caster.range({5.0, 5.0, 0.0}), 4.95, 1e-6);
  EXPECT_NEAR(caster.range({5.0, 5.0, kPi}), 4.95, 1e-6);
  EXPECT_NEAR(caster.range({5.0, 5.0, kPi / 2.0}), 4.95, 1e-6);
  EXPECT_NEAR(caster.range({5.0, 5.0, -kPi / 2.0}), 4.95, 1e-6);
}

TEST(Bresenham, DiagonalExact) {
  auto room = make_room();
  const BresenhamCaster caster{room, 20.0};
  // 45 degrees from center: hits the corner region at ~4.95 * sqrt(2).
  EXPECT_NEAR(caster.range({5.0, 5.0, kPi / 4.0}), 4.95 * std::sqrt(2.0),
              0.08);
}

TEST(Bresenham, FromBlockedCellIsZero) {
  auto room = make_room();
  const BresenhamCaster caster{room, 20.0};
  EXPECT_FLOAT_EQ(caster.range({0.01, 0.01, 0.0}), 0.0F);
}

TEST(Bresenham, OutsideMapIsZero) {
  auto room = make_room();
  const BresenhamCaster caster{room, 20.0};
  EXPECT_FLOAT_EQ(caster.range({-5.0, -5.0, 0.0}), 0.0F);
}

TEST(Bresenham, MaxRangeCap) {
  auto room = make_room();
  const BresenhamCaster caster{room, 2.0};
  EXPECT_FLOAT_EQ(caster.range({5.0, 5.0, 0.0}), 2.0F);
}

TEST(RangeFactory, BuildsEveryKind) {
  auto room = make_room();
  RangeMethodOptions opt;
  opt.max_range = 12.0;
  for (const auto kind :
       {RangeMethodKind::kBresenham, RangeMethodKind::kRayMarching,
        RangeMethodKind::kCddt, RangeMethodKind::kLut}) {
    const auto method = make_range_method(kind, room, opt);
    ASSERT_NE(method, nullptr);
    EXPECT_EQ(method->name(), to_string(kind));
    EXPECT_NEAR(method->range({5.0, 5.0, 0.0}), 4.95, 0.2);
  }
}

TEST(RangeMethods, BatchMatchesScalar) {
  auto room = make_room();
  const Cddt cddt{room, 12.0};
  std::vector<Pose2> rays;
  Rng rng{5};
  for (int i = 0; i < 50; ++i) {
    rays.push_back(
        {rng.uniform(1.0, 9.0), rng.uniform(1.0, 9.0), rng.uniform(-3, 3)});
  }
  std::vector<float> out(rays.size());
  cddt.ranges(rays, out);
  for (std::size_t i = 0; i < rays.size(); ++i) {
    EXPECT_FLOAT_EQ(out[i], cddt.range(rays[i]));
  }
}

TEST(Cddt, HasCompressedEntries) {
  auto room = make_room();
  const Cddt cddt{room, 12.0, 108};
  EXPECT_EQ(cddt.theta_bins(), 108);
  EXPECT_GT(cddt.total_entries(), 1000U);
  // Compression: entries should be far fewer than bins * all wall cells.
  EXPECT_LT(cddt.total_entries(), 108U * 800U * 2U);
}

TEST(Lut, MemoryAccounting) {
  auto room = make_room();
  const RangeLut lut{room, 12.0, 60, 2};
  // 100 x 100 sampled cells x 60 bins x 2 bytes.
  EXPECT_EQ(lut.memory_bytes(), 100U * 100U * 60U * 2U);
}

struct MethodCase {
  RangeMethodKind kind;
  double tolerance;        ///< per-ray deviation counted as "agreeing"
  double max_outlier_frac; ///< allowed fraction of grazing-incidence outliers
};

/// Approximate backends are compared to the exact caster with quantile
/// acceptance: at grazing wall incidence a sub-milliradian angular snap
/// legitimately changes a range by meters (the same behavior rangelibc
/// documents), so a small outlier fraction is expected, but the bulk of the
/// distribution must agree tightly.
class ApproxVsExact : public ::testing::TestWithParam<MethodCase> {};

TEST_P(ApproxVsExact, AgreesWithBresenhamOnTracks) {
  const MethodCase param = GetParam();
  Rng rng{2024};
  const Track track = TrackGenerator::test_track();
  auto map = std::make_shared<const OccupancyGrid>(track.grid);
  RangeMethodOptions opt;
  opt.max_range = 12.0;
  const auto method = make_range_method(param.kind, map, opt);
  const BresenhamCaster exact{map, 12.0};

  std::vector<double> errors;
  for (int i = 0; i < 4000; ++i) {
    // Random pose on the corridor (reuse centerline + jitter).
    const auto& cl = track.centerline;
    const Vec2 base = cl[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(cl.size()) - 1))];
    const Pose2 ray{base.x + rng.gaussian(0.3), base.y + rng.gaussian(0.3),
                    rng.uniform(-kPi, kPi)};
    const GridIndex g = map->world_to_grid({ray.x, ray.y});
    if (!map->in_bounds(g.ix, g.iy) || map->blocks_ray(g.ix, g.iy)) continue;
    const float ref = exact.range(ray);
    const float got = method->range(ray);
    ASSERT_TRUE(std::isfinite(got));
    EXPECT_GE(got, 0.0F);
    EXPECT_LE(got, 12.0F + 1e-4F);
    errors.push_back(std::abs(static_cast<double>(got - ref)));
  }
  ASSERT_GT(errors.size(), 2000U);

  std::size_t outliers = 0;
  for (double e : errors) {
    if (e > param.tolerance) ++outliers;
  }
  const double outlier_frac =
      static_cast<double>(outliers) / static_cast<double>(errors.size());
  EXPECT_LT(outlier_frac, param.max_outlier_frac) << method->name();
  EXPECT_LT(median(errors), 0.05) << method->name();
  EXPECT_LT(percentile(errors, 90.0), param.tolerance) << method->name();
}

INSTANTIATE_TEST_SUITE_P(
    Methods, ApproxVsExact,
    ::testing::Values(
        MethodCase{RangeMethodKind::kRayMarching, 0.15, 0.03},
        MethodCase{RangeMethodKind::kCddt, 0.30, 0.08},
        MethodCase{RangeMethodKind::kLut, 0.30, 0.08}),
    [](const ::testing::TestParamInfo<MethodCase>& info) {
      return to_string(info.param.kind);
    });

TEST(RangeMethods, BackendsAgreeOnOutOfMapAndBoundaryPoses) {
  // A query pose outside the map (or on a blocking boundary cell) is not an
  // error — a diverged particle can propose one — and every backend must
  // answer the same way: range 0. This includes far-away poses whose naive
  // world->cell cast would be UB and poses with arbitrary-magnitude headings.
  auto room = make_room();  // 10 m x 10 m, origin (0, 0)
  RangeMethodOptions opt;
  opt.max_range = 12.0;
  std::vector<std::unique_ptr<RangeMethod>> methods;
  for (const auto kind :
       {RangeMethodKind::kBresenham, RangeMethodKind::kRayMarching,
        RangeMethodKind::kCddt, RangeMethodKind::kLut}) {
    methods.push_back(make_range_method(kind, room, opt));
  }

  const Pose2 cases[] = {
      {-0.01, 5.0, 0.0},          // just past the left border
      {10.01, 5.0, kPi},          // just past the right border
      {5.0, -0.01, kPi / 2.0},    // just below
      {5.0, 10.01, -kPi / 2.0},   // just above
      {0.01, 0.01, 0.3},          // inside the map, on the boundary wall cell
      {9.99, 9.99, -2.0},         // opposite wall corner cell
      {-5.0, -5.0, 0.7},          // clearly outside
      {1e6, 1e6, 0.0},            // far outside, would overflow int cells
      {-1e9, 3.0, 1.0},           // negative-far
      {1e300, -1e300, 2.0},       // astronomically far
      {-3.0, -3.0, 1e8},          // outside with a huge heading
  };
  for (const Pose2& pose : cases) {
    for (const auto& method : methods) {
      EXPECT_EQ(method->range(pose), 0.0F)
          << method->name() << " at (" << pose.x << ", " << pose.y << ", "
          << pose.theta << ")";
    }
  }
}

TEST(RangeMethods, HugeHeadingsInMapAreDefined) {
  // In-map poses with arbitrary-magnitude headings must yield a valid range
  // from every backend (the old per-backend wrap loops were O(|theta|)).
  auto room = make_room();
  RangeMethodOptions opt;
  opt.max_range = 12.0;
  for (const auto kind :
       {RangeMethodKind::kBresenham, RangeMethodKind::kRayMarching,
        RangeMethodKind::kCddt, RangeMethodKind::kLut}) {
    const auto method = make_range_method(kind, room, opt);
    for (double theta : {1e7, -1e7, 4.0e15, -4.0e15}) {
      const float r = method->range({5.0, 5.0, theta});
      EXPECT_TRUE(std::isfinite(r)) << method->name() << " theta=" << theta;
      EXPECT_GE(r, 0.0F) << method->name() << " theta=" << theta;
      EXPECT_LE(r, 12.0F + 1e-4F) << method->name() << " theta=" << theta;
    }
  }
}

TEST(RangeMethods, ExactAngleAgreement) {
  // When the query angle is exactly on a discretization bin, CDDT and LUT
  // errors collapse to the band/cell level.
  auto room = make_room();
  const Cddt cddt{room, 12.0, 108};
  const RangeLut lut{room, 12.0, 120, 1};
  const BresenhamCaster exact{room, 12.0};
  // theta = 0 is a bin center for both.
  for (double y = 1.0; y < 9.0; y += 0.73) {
    const Pose2 ray{2.0, y, 0.0};
    EXPECT_NEAR(cddt.range(ray), exact.range(ray), 0.1) << y;
    EXPECT_NEAR(lut.range(ray), exact.range(ray), 0.1) << y;
  }
}

TEST(RayMarching, NeverOvershootsWalls) {
  // Sphere tracing can stop early but must never report a range that puts
  // the endpoint beyond a blocking cell.
  auto room = make_room();
  const RayMarching rm{room, 12.0};
  const BresenhamCaster exact{room, 12.0};
  Rng rng{77};
  for (int i = 0; i < 500; ++i) {
    const Pose2 ray{rng.uniform(0.5, 9.5), rng.uniform(0.5, 9.5),
                    rng.uniform(-kPi, kPi)};
    const GridIndex g = room->world_to_grid({ray.x, ray.y});
    if (room->blocks_ray(g.ix, g.iy)) continue;
    EXPECT_LE(rm.range(ray), exact.range(ray) + 0.08);
  }
}

}  // namespace
}  // namespace srl
