#include "sensor/lidar_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/angles.hpp"
#include "common/stats.hpp"
#include "gridmap/distance_transform.hpp"
#include "range/bresenham.hpp"
#include "sensor/lidar.hpp"

namespace srl {
namespace {

std::shared_ptr<const OccupancyGrid> make_room() {
  auto grid = std::make_shared<OccupancyGrid>(200, 200, 0.05, Vec2{0.0, 0.0},
                                              OccupancyGrid::kFree);
  for (int i = 0; i < 200; ++i) {
    grid->at(i, 0) = OccupancyGrid::kOccupied;
    grid->at(i, 199) = OccupancyGrid::kOccupied;
    grid->at(0, i) = OccupancyGrid::kOccupied;
    grid->at(199, i) = OccupancyGrid::kOccupied;
  }
  return grid;
}

LidarSim make_sim(std::shared_ptr<const OccupancyGrid> room,
                  LidarNoise noise) {
  LidarConfig cfg;
  auto caster = std::make_shared<BresenhamCaster>(std::move(room),
                                                  cfg.max_range);
  return LidarSim{cfg, std::move(caster), noise};
}

TEST(LidarSim, NoiselessStaticMatchesCaster) {
  auto room = make_room();
  LidarNoise noise;
  noise.sigma_range = 0.0;
  noise.dropout_prob = 0.0;
  const LidarSim sim = make_sim(room, noise);
  const BresenhamCaster exact{room, sim.config().max_range};

  Rng rng{1};
  const Pose2 body{5.0, 5.0, 0.3};
  const LaserScan scan = sim.scan(body, 1.0, rng);
  ASSERT_EQ(static_cast<int>(scan.ranges.size()), sim.config().n_beams);
  EXPECT_DOUBLE_EQ(scan.t, 1.0);
  for (int i = 0; i < sim.config().n_beams; i += 53) {
    const double a = body.theta + sim.config().beam_angle(i);
    EXPECT_FLOAT_EQ(scan.ranges[static_cast<std::size_t>(i)],
                    exact.range({body.x, body.y, a}));
  }
}

TEST(LidarSim, NoiseStatistics) {
  auto room = make_room();
  LidarNoise noise;
  noise.sigma_range = 0.05;
  noise.dropout_prob = 0.0;
  const LidarSim sim = make_sim(room, noise);
  const BresenhamCaster exact{room, sim.config().max_range};
  Rng rng{5};
  const Pose2 body{5.0, 5.0, 0.0};
  RunningStats residuals;
  for (int rep = 0; rep < 20; ++rep) {
    const LaserScan scan = sim.scan(body, 0.0, rng);
    for (int i = 0; i < sim.config().n_beams; i += 7) {
      const double a = body.theta + sim.config().beam_angle(i);
      const float ref = exact.range({body.x, body.y, a});
      if (ref >= sim.config().max_range) continue;
      residuals.add(scan.ranges[static_cast<std::size_t>(i)] - ref);
    }
  }
  EXPECT_NEAR(residuals.mean(), 0.0, 0.005);
  EXPECT_NEAR(residuals.stddev(), 0.05, 0.01);
}

TEST(LidarSim, DropoutsReturnMaxRange) {
  auto room = make_room();
  LidarNoise noise;
  noise.sigma_range = 0.0;
  noise.dropout_prob = 0.5;
  const LidarSim sim = make_sim(room, noise);
  Rng rng{7};
  const LaserScan scan = sim.scan({5.0, 5.0, 0.0}, 0.0, rng);
  int dropouts = 0;
  for (float r : scan.ranges) {
    if (r >= static_cast<float>(sim.config().max_range)) ++dropouts;
  }
  const double frac =
      static_cast<double>(dropouts) / static_cast<double>(scan.ranges.size());
  EXPECT_NEAR(frac, 0.5, 0.05);
}

TEST(LidarSim, MotionDistortionWarpsScan) {
  auto room = make_room();
  LidarNoise noise;
  noise.sigma_range = 0.0;
  noise.dropout_prob = 0.0;
  const LidarSim sim = make_sim(room, noise);
  Rng rng{9};
  const Pose2 body{5.0, 5.0, 0.0};
  const LaserScan still = sim.scan(body, Twist2{}, 0.0, rng);
  const LaserScan moving = sim.scan(body, Twist2{7.0, 0.0, 0.0}, 0.0, rng);
  // Early beams were fired from ~17 cm behind: forward-looking early beams
  // must differ; the final beam (fired at scan end) matches.
  double max_diff = 0.0;
  for (std::size_t i = 0; i < still.ranges.size(); ++i) {
    max_diff = std::max(
        max_diff, std::abs(static_cast<double>(still.ranges[i]) -
                           moving.ranges[i]));
  }
  EXPECT_GT(max_diff, 0.08);
  EXPECT_NEAR(still.ranges.back(), moving.ranges.back(), 1e-4);
}

TEST(ScanToPoints, FiltersInvalidReturns) {
  LidarConfig cfg;
  cfg.n_beams = 5;
  cfg.fov = deg2rad(90.0);
  LaserScan scan;
  scan.ranges = {1.0F, 0.01F, static_cast<float>(cfg.max_range), 2.0F, 3.0F};
  const auto pts = scan_to_points(scan, cfg);
  EXPECT_EQ(pts.size(), 3U);  // beam 1 too close, beam 2 is max range
}

TEST(ScanToPoints, GeometryCorrect) {
  LidarConfig cfg;
  cfg.n_beams = 3;
  cfg.fov = kPi;  // beams at -90, 0, +90 degrees
  LaserScan scan;
  scan.ranges = {2.0F, 3.0F, 4.0F};
  const auto pts = scan_to_points(scan, cfg);
  ASSERT_EQ(pts.size(), 3U);
  EXPECT_NEAR(pts[0].x, 0.0, 1e-6);
  EXPECT_NEAR(pts[0].y, -2.0, 1e-6);
  EXPECT_NEAR(pts[1].x, 3.0, 1e-6);
  EXPECT_NEAR(pts[2].y, 4.0, 1e-6);
}

TEST(ScanToPoints, MountOffsetApplied) {
  LidarConfig cfg;
  cfg.n_beams = 1;
  cfg.fov = 0.0;
  cfg.mount = Pose2{0.2, 0.0, 0.0};
  LaserScan scan;
  scan.ranges = {1.0F};
  const auto pts = scan_to_points(scan, cfg);
  ASSERT_EQ(pts.size(), 1U);
  EXPECT_NEAR(pts[0].x, 1.2, 1e-6);
}

TEST(Deskew, ZeroTwistMatchesScanToPoints) {
  LidarConfig cfg;
  LaserScan scan;
  scan.ranges.assign(static_cast<std::size_t>(cfg.n_beams), 4.0F);
  const auto a = scan_to_points(scan, cfg, 5);
  const auto b = deskew_scan(scan, cfg, Twist2{}, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(a[i].x, b[i].x, 1e-9);
    EXPECT_NEAR(a[i].y, b[i].y, 1e-9);
  }
}

TEST(Deskew, CorrectTwistRecoversStaticGeometry) {
  // Simulate a distorted scan while translating; deskewing with the true
  // twist must reproduce the static scan's point cloud.
  auto room = make_room();
  LidarNoise noise;
  noise.sigma_range = 0.0;
  noise.dropout_prob = 0.0;
  const LidarSim sim = make_sim(room, noise);
  Rng rng{3};
  const Pose2 body{5.0, 5.0, 0.2};
  const Twist2 twist{6.0, 0.0, 2.0};
  const LaserScan still = sim.scan(body, Twist2{}, 0.0, rng);
  const LaserScan moving = sim.scan(body, twist, 0.0, rng);

  // The decisive property: deskewing with the TRUE twist places every
  // point back on a wall (in the scan-end frame), while deskewing with a
  // wrong twist (here: negated) displaces points radially off the walls.
  // Per-beam comparison to the static scan would be misleading — a moving
  // sensor legitimately hits different wall points on the same surfaces.
  (void)still;
  const DistanceField walls = distance_to_occupied(*room);
  const auto wall_distances = [&](const Twist2& used_twist) {
    const auto cloud = deskew_scan(moving, sim.config(), used_twist, 9);
    std::vector<double> ds;
    ds.reserve(cloud.size());
    for (const Vec2& p : cloud) {
      ds.push_back(walls.interpolate(body.transform(p)));
    }
    return ds;
  };
  // Tail quantiles discriminate: a wrong twist pushes some points INTO the
  // walls (distance 0, flattering the median) and others far off them.
  const std::vector<double> good = wall_distances(twist);
  const std::vector<double> bad =
      wall_distances(Twist2{-twist.vx, -twist.vy, -twist.wz});
  const std::vector<double> none = wall_distances(Twist2{});
  ASSERT_GT(good.size(), 50U);
  EXPECT_LT(percentile(good, 95.0), 0.04);  // on-wall up to quantization
  EXPECT_GT(percentile(bad, 95.0), 3.0 * percentile(good, 95.0));
  EXPECT_GT(percentile(none, 95.0), 2.0 * percentile(good, 95.0));
}

}  // namespace
}  // namespace srl
