#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/particle_filter.hpp"
#include "motion/tum_model.hpp"
#include "range/bresenham.hpp"
#include "sensor/lidar_sim.hpp"
#include "sensor/scanline_layout.hpp"

namespace srl::telemetry {
namespace {

// ---------------------------------------------------------------- Histogram

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(Histogram, ExactMomentsApproximatePercentiles) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);   // min/max are exact, not bucketed
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  // Geometric buckets bound the relative percentile error by one bucket
  // width: 10^(1/24) - 1 < 10.1%.
  EXPECT_NEAR(h.percentile(0.50), 50.0, 50.0 * 0.11);
  EXPECT_NEAR(h.percentile(0.95), 95.0, 95.0 * 0.11);
  EXPECT_NEAR(h.percentile(0.99), 99.0, 99.0 * 0.11);
  // Percentiles are clamped to the exact observed range.
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);
  EXPECT_GE(h.percentile(0.0), 1.0);
}

TEST(Histogram, PercentileMonotoneAndSnapshotConsistent) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.record(0.1 + 0.01 * i);
  double prev = 0.0;
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    const double v = h.percentile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_DOUBLE_EQ(s.p50, h.percentile(0.50));
  EXPECT_DOUBLE_EQ(s.p95, h.percentile(0.95));
  EXPECT_DOUBLE_EQ(s.p99, h.percentile(0.99));
  EXPECT_DOUBLE_EQ(s.max, h.max());
}

TEST(Histogram, BucketIndexLayout) {
  HistogramOptions opt;
  opt.min_value = 1e-3;
  opt.max_value = 1e3;
  opt.buckets_per_decade = 10;
  Histogram h{opt};
  // Bucket 0 is the underflow bucket [0, min_value).
  EXPECT_EQ(h.bucket_index(0.0), 0);
  EXPECT_EQ(h.bucket_index(5e-4), 0);
  EXPECT_DOUBLE_EQ(h.bucket_lower(0), 0.0);
  // Values above max_value clamp into the last (overflow) bucket.
  EXPECT_EQ(h.bucket_index(1e6), h.bucket_count() - 1);
  // Indices are monotone in the value.
  int prev = -1;
  for (double v = 1e-3; v < 1e3; v *= 1.3) {
    const int i = h.bucket_index(v);
    EXPECT_GE(i, prev);
    EXPECT_LT(i, h.bucket_count());
    // The value lies inside its bucket's edges.
    EXPECT_GE(v, h.bucket_lower(i) * (1.0 - 1e-12));
    EXPECT_LE(v, h.bucket_upper(i) * (1.0 + 1e-12));
    prev = i;
  }
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(1.0);
  h.record(2.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
  h.record(3.0);
  EXPECT_DOUBLE_EQ(h.min(), 3.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.0);
}

// ----------------------------------------------------------------- Registry

TEST(MetricsRegistry, StableHandlesAndLookup) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("c"), nullptr);
  EXPECT_EQ(reg.find_histogram("h"), nullptr);
  EXPECT_EQ(reg.find_gauge("g"), nullptr);

  Counter& c = reg.counter("c");
  c.add(3);
  EXPECT_EQ(&reg.counter("c"), &c);  // same name -> same object
  EXPECT_EQ(reg.find_counter("c")->value(), 3u);

  reg.gauge("g").set(2.5);
  EXPECT_DOUBLE_EQ(reg.find_gauge("g")->value(), 2.5);

  Histogram& h = reg.histogram("h");
  h.record(1.0);
  EXPECT_EQ(&reg.histogram("h"), &h);
  EXPECT_EQ(reg.find_histogram("h")->count(), 1u);
  EXPECT_EQ(reg.histogram_names(), std::vector<std::string>{"h"});
}

TEST(MetricsRegistry, RowsAndCsv) {
  MetricsRegistry reg;
  reg.counter("n.updates").add(7);
  reg.gauge("ess").set(812.0);
  reg.histogram("lat_ms").record(1.25);

  const auto rows = reg.rows();
  ASSERT_EQ(rows.size(), 3u);
  bool saw_counter = false, saw_gauge = false, saw_hist = false;
  for (const auto& r : rows) {
    if (r.kind == "counter") {
      saw_counter = true;
      EXPECT_EQ(r.count, 7u);
    } else if (r.kind == "gauge") {
      saw_gauge = true;
      EXPECT_DOUBLE_EQ(r.value, 812.0);
    } else if (r.kind == "histogram") {
      saw_hist = true;
      EXPECT_EQ(r.hist.count, 1u);
    }
  }
  EXPECT_TRUE(saw_counter && saw_gauge && saw_hist);

  const std::string path = "test_telemetry_metrics.csv";
  ASSERT_TRUE(reg.write_csv(path));
  std::ifstream in{path};
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_NE(header.find("name"), std::string::npos);
  EXPECT_NE(header.find("p99"), std::string::npos);
  int lines = 0;
  for (std::string line; std::getline(in, line);) ++lines;
  EXPECT_EQ(lines, 3);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- Tracing

/// Minimal structural JSON check: quotes pair up, braces/brackets balance
/// outside strings, and the document is a single object.
bool json_well_formed(const std::string& text) {
  int brace = 0, bracket = 0;
  bool in_string = false, escaped = false;
  for (char ch : text) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (ch == '\\') escaped = true;
      else if (ch == '"') in_string = false;
      continue;
    }
    switch (ch) {
      case '"': in_string = true; break;
      case '{': ++brace; break;
      case '}': if (--brace < 0) return false; break;
      case '[': ++bracket; break;
      case ']': if (--bracket < 0) return false; break;
      default: break;
    }
  }
  return !in_string && brace == 0 && bracket == 0;
}

TEST(TraceBuffer, SpanNestingDepthsAndContainment) {
  TraceBuffer buf;
  {
    ScopedSpan outer{&buf, "outer"};
    {
      ScopedSpan inner{&buf, "inner"};
    }
    {
      ScopedSpan inner2{&buf, "inner2"};
    }
  }
  const auto events = buf.events();
  ASSERT_EQ(events.size(), 3u);  // inner, inner2, outer (closed in that order)
  const TraceEvent& inner = events[0];
  const TraceEvent& inner2 = events[1];
  const TraceEvent& outer = events[2];
  EXPECT_STREQ(outer.name, "outer");
  EXPECT_EQ(outer.depth, 0u);
  EXPECT_EQ(inner.depth, 1u);
  EXPECT_EQ(inner2.depth, 1u);  // sibling, not grandchild: depth unwinds
  // Children are contained in the parent interval.
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us + 1e-6);
  EXPECT_GE(inner2.ts_us, inner.ts_us + inner.dur_us - 1e-6);
  EXPECT_EQ(outer.tid, inner.tid);
}

TEST(TraceBuffer, NullBufferSpanIsNoOp) {
  // Must not touch thread-local depth: a real span after a null span still
  // starts at depth 0.
  {
    ScopedSpan null_span{nullptr, "ghost"};
  }
  TraceBuffer buf;
  {
    ScopedSpan s{&buf, "real"};
  }
  const auto events = buf.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].depth, 0u);
}

TEST(TraceBuffer, CapacityBoundsAndDropCount) {
  TraceBuffer buf{4};
  for (int i = 0; i < 10; ++i) buf.add("e", 0.0, 1.0, 0, 0);
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.dropped(), 6u);
  buf.clear();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.dropped(), 0u);
}

TEST(TraceBuffer, ChromeTraceJsonIsWellFormed) {
  TraceBuffer buf;
  {
    ScopedSpan a{&buf, "pf.correct"};
    ScopedSpan b{&buf, "pf.raycast"};
  }
  const std::string path = "test_telemetry_trace.json";
  ASSERT_TRUE(buf.write_chrome_trace(path));
  std::ifstream in{path};
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  std::remove(path.c_str());

  EXPECT_TRUE(json_well_formed(text));
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"pf.raycast\""), std::string::npos);
  EXPECT_NE(text.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Spans that didn't fit the buffer are accounted in the footer.
  EXPECT_NE(text.find("\"dropped_spans\":0"), std::string::npos);
}

TEST(TraceBuffer, DroppedSpansReachRegistryAndFooter) {
  MetricsRegistry registry;
  TraceBuffer buf{2};
  buf.set_dropped_counter(&registry.counter("telemetry.dropped_spans"));
  for (int i = 0; i < 5; ++i) buf.add("e", 0.0, 1.0, 0, 0);
  EXPECT_EQ(buf.dropped(), 3u);
  EXPECT_EQ(registry.counter("telemetry.dropped_spans").value(), 3u);

  const std::string path = "test_telemetry_trace_dropped.json";
  ASSERT_TRUE(buf.write_chrome_trace(path));
  std::ifstream in{path};
  std::stringstream ss;
  ss << in.rdbuf();
  std::remove(path.c_str());
  EXPECT_NE(ss.str().find("\"dropped_spans\":3"), std::string::npos);
}

// ------------------------------------------------------------ EventLog

TEST(EventLog, EmitsInOrderWithSeverityTallies) {
  EventLog log;
  log.emit(0.1, EventSeverity::kInfo, EventCategory::kExperiment, "e.start");
  log.emit(0.2, EventSeverity::kWarn, EventCategory::kFault, "fault.active");
  log.emit(0.3, EventSeverity::kCritical, EventCategory::kContract,
           "contract.violation");
  EXPECT_EQ(log.total(), 3u);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_EQ(log.count(EventSeverity::kWarn), 1u);
  EXPECT_EQ(log.critical_count(), 1u);
  const std::vector<Event> events = log.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[2].seq, 2u);
  EXPECT_EQ(events[1].code, "fault.active");
  EXPECT_EQ(events[1].category, EventCategory::kFault);
}

TEST(EventLog, KeepsFirstCapacityEventsAndCountsOverflow) {
  EventLog log{4};
  MetricsRegistry registry;
  log.set_dropped_counter(&registry.counter("telemetry.dropped_events"));
  for (int i = 0; i < 10; ++i) {
    log.emit(0.1 * i, EventSeverity::kInfo, EventCategory::kFilter,
             "e" + std::to_string(i));
  }
  EXPECT_EQ(log.total(), 10u);
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.dropped(), 6u);
  EXPECT_EQ(registry.counter("telemetry.dropped_events").value(), 6u);
  // The journal keeps the *beginning* of the causal chain.
  const std::vector<Event> events = log.events();
  EXPECT_EQ(events.front().code, "e0");
  EXPECT_EQ(events.back().code, "e3");
  // Severity tallies count every emission, kept or dropped.
  EXPECT_EQ(log.count(EventSeverity::kInfo), 10u);
}

TEST(EventLog, NdjsonRoundTrip) {
  EventLog log;
  json::Value data = json::Value::object();
  data.set("ess_fraction", json::Value::number(0.25));
  log.emit(1.5, EventSeverity::kDebug, EventCategory::kFilter, "pf.resample",
           std::move(data));
  log.emit(2.0, EventSeverity::kError, EventCategory::kRecovery,
           "recovery.transition");

  const std::string path = "test_telemetry_events.ndjson";
  std::remove(path.c_str());
  ASSERT_TRUE(log.write_ndjson(path));
  const auto back = EventLog::load_ndjson(path);
  std::remove(path.c_str());
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0].code, "pf.resample");
  EXPECT_EQ((*back)[0].severity, EventSeverity::kDebug);
  EXPECT_DOUBLE_EQ((*back)[0].t, 1.5);
  const json::Value* ess = (*back)[0].data.find("ess_fraction");
  ASSERT_NE(ess, nullptr);
  EXPECT_DOUBLE_EQ(ess->as_double(), 0.25);
  EXPECT_EQ((*back)[1].severity, EventSeverity::kError);
  EXPECT_EQ((*back)[1].category, EventCategory::kRecovery);
}

TEST(EventLog, EventJsonRejectsMalformed) {
  EXPECT_FALSE(event_from_json(json::Value::number(1.0)).has_value());
  json::Value missing = json::Value::object();
  missing.set("t", json::Value::number(0.0));
  EXPECT_FALSE(event_from_json(missing).has_value());
}

// ------------------------------------------------------------ FilterHealth

TEST(FilterHealth, UniformWeights) {
  const std::vector<double> w{0.25, 0.25, 0.25, 0.25};
  EXPECT_NEAR(effective_sample_size(w), 4.0, 1e-12);
  EXPECT_NEAR(weight_entropy(w), std::log(4.0), 1e-12);
  EXPECT_NEAR(max_weight_share(w), 0.25, 1e-12);
}

TEST(FilterHealth, DegenerateWeights) {
  const std::vector<double> w{1.0, 0.0, 0.0, 0.0};
  EXPECT_NEAR(effective_sample_size(w), 1.0, 1e-12);
  EXPECT_NEAR(weight_entropy(w), 0.0, 1e-12);
  EXPECT_NEAR(max_weight_share(w), 1.0, 1e-12);
}

TEST(FilterHealth, ScaleInvarianceAndEdgeCases) {
  // The diagnostics normalize internally: scaling all weights is a no-op.
  const std::vector<double> w{0.5, 0.3, 0.2};
  std::vector<double> scaled;
  for (double v : w) scaled.push_back(v * 37.0);
  EXPECT_NEAR(effective_sample_size(w), effective_sample_size(scaled), 1e-9);
  EXPECT_NEAR(weight_entropy(w), weight_entropy(scaled), 1e-12);
  EXPECT_NEAR(max_weight_share(w), max_weight_share(scaled), 1e-12);

  EXPECT_DOUBLE_EQ(effective_sample_size({}), 0.0);
  EXPECT_DOUBLE_EQ(weight_entropy({}), 0.0);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_DOUBLE_EQ(effective_sample_size(zeros), 0.0);
}

TEST(PoseJumpDetector, AlarmsOnlyAboveThreshold) {
  PoseJumpDetector det{0.5, 0.35};
  FilterHealth health;
  // Correction well inside the thresholds: no alarm.
  EXPECT_FALSE(det.update(Pose2{1.0, 2.0, 0.1}, Pose2{1.1, 2.0, 0.15},
                          health));
  EXPECT_NEAR(health.pose_jump_m, 0.1, 1e-12);
  EXPECT_FALSE(health.pose_jump_alarm);
  EXPECT_EQ(det.alarm_count(), 0);
  // Translation jump.
  EXPECT_TRUE(det.update(Pose2{0.0, 0.0, 0.0}, Pose2{1.0, 0.0, 0.0}, health));
  EXPECT_TRUE(health.pose_jump_alarm);
  // Heading jump alone also alarms; the angle distance wraps (2.5 -> -2.5
  // is 2*pi - 5, not 5).
  EXPECT_TRUE(det.update(Pose2{0.0, 0.0, 2.5}, Pose2{0.0, 0.0, -2.5},
                         health));
  EXPECT_NEAR(health.pose_jump_rad, 2.0 * kPi - 5.0, 1e-9);
  EXPECT_EQ(det.alarm_count(), 2);
}

// ------------------------------------------- Integration with the filter

std::shared_ptr<const OccupancyGrid> make_room() {
  auto grid = std::make_shared<OccupancyGrid>(200, 120, 0.05, Vec2{0.0, 0.0},
                                              OccupancyGrid::kFree);
  for (int x = 0; x < 200; ++x) {
    grid->at(x, 0) = OccupancyGrid::kOccupied;
    grid->at(x, 119) = OccupancyGrid::kOccupied;
  }
  for (int y = 0; y < 120; ++y) {
    grid->at(0, y) = OccupancyGrid::kOccupied;
    grid->at(199, y) = OccupancyGrid::kOccupied;
  }
  for (int y = 40; y < 60; ++y) {
    for (int x = 60; x < 80; ++x) grid->at(x, y) = OccupancyGrid::kOccupied;
  }
  return grid;
}

ParticleFilter make_filter(std::shared_ptr<const OccupancyGrid> map) {
  const LidarConfig lidar;
  ParticleFilterConfig cfg;
  cfg.n_particles = 400;
  return ParticleFilter{cfg,
                        std::make_shared<BresenhamCaster>(map, lidar.max_range),
                        std::make_shared<TumMotionModel>(),
                        BeamModel{},
                        lidar,
                        uniform_layout(lidar, 30),
                        42};
}

/// Telemetry must be purely observational: with and without an attached
/// registry the filter follows the exact same estimate trajectory.
TEST(TelemetryIntegration, AttachedRegistryDoesNotPerturbFilter) {
  auto map = make_room();
  const LidarConfig lidar;
  LidarNoise noise;
  noise.sigma_range = 0.01;
  noise.dropout_prob = 0.0;
  LidarSim sim{lidar, std::make_shared<BresenhamCaster>(map, lidar.max_range),
               noise};

  ParticleFilter plain = make_filter(map);
  ParticleFilter instrumented = make_filter(map);
  Telemetry telemetry;
  instrumented.set_telemetry(telemetry.sink());

  const Pose2 start{5.0, 3.0, 0.0};
  plain.init_pose(start);
  instrumented.init_pose(start);

  OdometryDelta odom;
  odom.delta = Pose2{0.05, 0.0, 0.01};
  odom.v = 2.5;
  odom.dt = 0.02;
  Rng scan_rng{7};
  Pose2 truth = start;
  for (int step = 0; step < 10; ++step) {
    truth = truth * odom.delta;
    const LaserScan scan = sim.scan(truth, 0.0, scan_rng);
    plain.predict(odom);
    instrumented.predict(odom);
    plain.correct(scan);
    instrumented.correct(scan);
    const Pose2 a = plain.estimate();
    const Pose2 b = instrumented.estimate();
    ASSERT_EQ(a.x, b.x) << "step " << step;
    ASSERT_EQ(a.y, b.y) << "step " << step;
    ASSERT_EQ(a.theta, b.theta) << "step " << step;
  }

  // The instrumented run actually populated its metrics.
  const Histogram* raycast = telemetry.metrics.find_histogram("pf.raycast_ms");
  ASSERT_NE(raycast, nullptr);
  EXPECT_EQ(raycast->count(), 10u);
  EXPECT_EQ(telemetry.metrics.find_counter("pf.updates")->value(), 10u);
  EXPECT_GT(telemetry.trace.size(), 0u);

  const FilterHealth& health = instrumented.health();
  EXPECT_EQ(health.n_particles, 400);
  EXPECT_GT(health.ess, 0.0);
  EXPECT_LE(health.ess_fraction, 1.0 + 1e-12);
  EXPECT_GT(health.normalized_entropy, 0.0);
  EXPECT_GE(health.max_weight_share, 1.0 / 400.0);
}

/// The disabled path must stay cheap: StageTimer/ScopedSpan with null sinks
/// are branch-only. This is a smoke bound (very loose to survive CI noise),
/// not a benchmark — the real comparison lives in bench_latency_rangelib.
TEST(TelemetryIntegration, NullSinkOverheadSmoke) {
  Stopwatch watch;
  double sink = 0.0;
  for (int i = 0; i < 1000000; ++i) {
    StageTimer timer{nullptr};
    ScopedSpan span{nullptr, "noop"};
    sink += static_cast<double>(i);
    timer.stop();
  }
  const double elapsed_ms = watch.elapsed_ms();
  EXPECT_GT(sink, 0.0);
  EXPECT_LT(elapsed_ms, 500.0) << "1e6 disabled telemetry ops took "
                               << elapsed_ms << " ms";
}

}  // namespace
}  // namespace srl::telemetry
