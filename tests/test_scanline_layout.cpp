#include "sensor/scanline_layout.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/angles.hpp"

namespace srl {
namespace {

bool sorted_unique(const std::vector<int>& v) {
  return std::is_sorted(v.begin(), v.end()) &&
         std::adjacent_find(v.begin(), v.end()) == v.end();
}

int count_within(const LidarConfig& cfg, const std::vector<int>& idx,
                 double half_angle) {
  int n = 0;
  for (int i : idx) {
    if (std::abs(cfg.beam_angle(i)) <= half_angle) ++n;
  }
  return n;
}

TEST(UniformLayout, CountAndCoverage) {
  const LidarConfig cfg;
  const auto idx = uniform_layout(cfg, 60);
  EXPECT_EQ(idx.size(), 60U);
  EXPECT_TRUE(sorted_unique(idx));
  EXPECT_EQ(idx.front(), 0);
  EXPECT_EQ(idx.back(), cfg.n_beams - 1);
}

TEST(UniformLayout, ClampsToBeamCount) {
  LidarConfig cfg;
  cfg.n_beams = 11;
  const auto idx = uniform_layout(cfg, 100);
  EXPECT_EQ(idx.size(), 11U);
}

TEST(UniformLayout, EvenAngularSpacing) {
  const LidarConfig cfg;
  const auto idx = uniform_layout(cfg, 30);
  const auto angles = layout_angles(cfg, idx);
  std::vector<double> gaps;
  for (std::size_t i = 1; i < angles.size(); ++i) {
    gaps.push_back(angles[i] - angles[i - 1]);
  }
  const double expected = cfg.fov / 29.0;
  for (double g : gaps) EXPECT_NEAR(g, expected, 0.15 * expected);
}

TEST(BoxedLayout, SortedUniqueWithinFov) {
  const LidarConfig cfg;
  const auto idx = boxed_layout(cfg, 60, 3.0);
  EXPECT_TRUE(sorted_unique(idx));
  EXPECT_GE(idx.size(), 30U);  // some dedup loss allowed
  for (int i : idx) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, cfg.n_beams);
  }
}

TEST(BoxedLayout, ConcentratesBeamsForward) {
  // The paper's motivation: with an elongated box, more beams point down
  // the corridor than with the uniform layout.
  const LidarConfig cfg;
  const int count = 60;
  const auto boxed = boxed_layout(cfg, count, 3.0);
  const auto uniform = uniform_layout(cfg, count);
  const double cone = deg2rad(30.0);
  const double boxed_frac =
      static_cast<double>(count_within(cfg, boxed, cone)) /
      static_cast<double>(boxed.size());
  const double uniform_frac =
      static_cast<double>(count_within(cfg, uniform, cone)) /
      static_cast<double>(uniform.size());
  EXPECT_GT(boxed_frac, 1.5 * uniform_frac);
}

TEST(BoxedLayout, AspectControlsConcentration) {
  const LidarConfig cfg;
  const auto slim = boxed_layout(cfg, 80, 6.0);
  const auto square = boxed_layout(cfg, 80, 1.0);
  const double cone = deg2rad(25.0);
  const double slim_frac = static_cast<double>(count_within(cfg, slim, cone)) /
                           static_cast<double>(slim.size());
  const double square_frac =
      static_cast<double>(count_within(cfg, square, cone)) /
      static_cast<double>(square.size());
  EXPECT_GT(slim_frac, square_frac);
}

TEST(BoxedLayout, AlwaysIncludesForwardBeam) {
  const LidarConfig cfg;
  for (double aspect : {1.0, 2.0, 3.0, 5.0}) {
    const auto idx = boxed_layout(cfg, 40, aspect);
    const auto angles = layout_angles(cfg, idx);
    const double closest = *std::min_element(
        angles.begin(), angles.end(),
        [](double a, double b) { return std::abs(a) < std::abs(b); });
    EXPECT_LT(std::abs(closest), deg2rad(3.0)) << "aspect " << aspect;
  }
}

TEST(LayoutAngles, MatchesConfig) {
  const LidarConfig cfg;
  const std::vector<int> idx = {0, cfg.n_beams / 2, cfg.n_beams - 1};
  const auto angles = layout_angles(cfg, idx);
  ASSERT_EQ(angles.size(), 3U);
  EXPECT_NEAR(angles[0], cfg.angle_min(), 1e-9);
  EXPECT_NEAR(angles[2], -cfg.angle_min(), 1e-9);
  EXPECT_NEAR(angles[1], 0.0, cfg.angle_increment());
}

TEST(LidarConfig, NearestBeamInverse) {
  const LidarConfig cfg;
  for (int i = 0; i < cfg.n_beams; i += 97) {
    EXPECT_EQ(cfg.nearest_beam(cfg.beam_angle(i)), i);
  }
  // Angles beyond the FOV clamp to the edges.
  EXPECT_EQ(cfg.nearest_beam(-kPi), 0);
  EXPECT_EQ(cfg.nearest_beam(kPi), cfg.n_beams - 1);
}

}  // namespace
}  // namespace srl
