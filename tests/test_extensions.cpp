/// Tests for the extension features: gyro-fused odometry and KLD-adaptive
/// particle counts.

#include <gtest/gtest.h>

#include <memory>

#include "common/angles.hpp"
#include "core/particle_filter.hpp"
#include "motion/tum_model.hpp"
#include "range/bresenham.hpp"
#include "sensor/lidar_sim.hpp"
#include "sensor/scanline_layout.hpp"
#include "vehicle/odometry_fusion.hpp"

namespace srl {
namespace {

// ---------------------------------------------------------------- fusion --

TEST(GyroFusedOdometry, ReplacesSteeringYawWithGyro) {
  GyroFusedOdometry fusion;
  OdometryDelta wheel;
  // Steering geometry claims a hard left that the car (understeering)
  // did not perform.
  wheel.delta = Pose2{0.2, 0.01, 0.10};
  wheel.v = 4.0;
  wheel.dt = 0.05;
  ImuReading imu;
  imu.yaw_rate = 0.4;  // the true yaw rate: 0.02 rad over the interval
  const OdometryDelta fused = fusion.fuse(wheel, imu);
  EXPECT_NEAR(fused.delta.theta, 0.02, 1e-6);
  // Longitudinal distance preserved.
  EXPECT_NEAR(std::hypot(fused.delta.x, fused.delta.y),
              std::hypot(wheel.delta.x, wheel.delta.y), 0.01);
  EXPECT_DOUBLE_EQ(fused.v, wheel.v);
  EXPECT_DOUBLE_EQ(fused.dt, wheel.dt);
}

TEST(GyroFusedOdometry, LearnsBiasAtStandstill) {
  GyroFusedOdometry fusion{0.2};
  OdometryDelta still;
  still.delta = Pose2{};
  still.v = 0.0;
  still.dt = 0.01;
  ImuReading imu;
  imu.yaw_rate = 0.05;  // pure bias: the car is not moving
  for (int i = 0; i < 200; ++i) fusion.fuse(still, imu);
  EXPECT_NEAR(fusion.bias(), 0.05, 0.005);

  // After convergence, a moving fuse subtracts the learned bias.
  OdometryDelta moving;
  moving.delta = Pose2{0.1, 0.0, 0.0};
  moving.v = 2.0;
  moving.dt = 0.05;
  imu.yaw_rate = 0.05;  // gyro still reads only the bias -> no rotation
  const OdometryDelta fused = fusion.fuse(moving, imu);
  EXPECT_NEAR(fused.delta.theta, 0.0, 0.001);
}

TEST(GyroFusedOdometry, NoBiasLearningWhileMoving) {
  GyroFusedOdometry fusion{0.2};
  OdometryDelta moving;
  moving.delta = Pose2{0.1, 0.0, 0.05};
  moving.v = 3.0;
  moving.dt = 0.05;
  ImuReading imu;
  imu.yaw_rate = 1.0;
  for (int i = 0; i < 100; ++i) fusion.fuse(moving, imu);
  EXPECT_NEAR(fusion.bias(), 0.0, 1e-9);
}

// ------------------------------------------------------------------- KLD --

std::shared_ptr<const OccupancyGrid> make_room() {
  auto grid = std::make_shared<OccupancyGrid>(200, 120, 0.05, Vec2{0.0, 0.0},
                                              OccupancyGrid::kFree);
  for (int x = 0; x < 200; ++x) {
    grid->at(x, 0) = OccupancyGrid::kOccupied;
    grid->at(x, 119) = OccupancyGrid::kOccupied;
  }
  for (int y = 0; y < 120; ++y) {
    grid->at(0, y) = OccupancyGrid::kOccupied;
    grid->at(199, y) = OccupancyGrid::kOccupied;
  }
  for (int y = 40; y < 60; ++y) {
    for (int x = 60; x < 80; ++x) grid->at(x, y) = OccupancyGrid::kOccupied;
  }
  return grid;
}

ParticleFilter make_kld_filter(std::shared_ptr<const OccupancyGrid> map,
                               int max_particles, int beams = 40) {
  const LidarConfig lidar;
  ParticleFilterConfig cfg;
  cfg.n_particles = max_particles;
  cfg.kld_adaptive = true;
  cfg.kld_min_particles = 200;
  auto caster = std::make_shared<BresenhamCaster>(map, lidar.max_range);
  return ParticleFilter{cfg,
                        std::move(caster),
                        std::make_shared<TumMotionModel>(),
                        BeamModel{},
                        lidar,
                        uniform_layout(lidar, beams),
                        7};
}

LaserScan observe(std::shared_ptr<const OccupancyGrid> map, const Pose2& pose,
                  Rng& rng) {
  const LidarConfig lidar;
  auto caster =
      std::make_shared<BresenhamCaster>(std::move(map), lidar.max_range);
  LidarNoise noise;
  noise.sigma_range = 0.01;
  noise.dropout_prob = 0.0;
  const LidarSim sim{lidar, std::move(caster), noise};
  return sim.scan(pose, 0.0, rng);
}

TEST(KldAdaptive, ShrinksOnConvergedCloud) {
  auto map = make_room();
  ParticleFilter pf = make_kld_filter(map, 4000);
  const Pose2 truth{4.0, 2.0, 0.5};
  pf.init_pose(truth);
  Rng rng{3};
  for (int i = 0; i < 5; ++i) {
    pf.correct(observe(map, truth, rng));
  }
  // A tight cloud occupies a handful of bins: far fewer particles needed.
  EXPECT_LT(pf.current_particles(), 1500);
  EXPECT_GE(pf.current_particles(), 200);
  // Accuracy is retained.
  const Pose2 est = pf.estimate();
  EXPECT_NEAR(est.x, truth.x, 0.12);
  EXPECT_NEAR(est.y, truth.y, 0.12);
}

TEST(KldAdaptive, PosteriorWidthControlsCount) {
  // The cloud size after resampling must track posterior width: a weak
  // sensor (3 beams) leaves a broad, multi-modal posterior after a global
  // init; a strong one (40 beams) collapses it. (With 40 beams even a
  // global prior collapses in one update — the sensor, not the prior,
  // determines the KLD count.)
  auto map = make_room();
  Rng rng{5};

  ParticleFilter weak = make_kld_filter(map, 4000, 3);
  weak.init_global(*map);
  for (int i = 0; i < 5 && weak.resample_count() == 0; ++i) {
    weak.correct(observe(map, {7.5, 4.5, -2.0}, rng));
  }
  ASSERT_GT(weak.resample_count(), 0L);
  const int broad_count = weak.current_particles();

  ParticleFilter strong = make_kld_filter(map, 4000, 40);
  strong.init_pose({4.0, 2.0, 0.5});
  for (int i = 0; i < 5; ++i) {
    strong.correct(observe(map, {4.0, 2.0, 0.5}, rng));
  }
  ASSERT_GT(strong.resample_count(), 0L);
  const int tight_count = strong.current_particles();

  EXPECT_GT(broad_count, 2 * tight_count);
  EXPECT_GT(broad_count, 600);
}

TEST(KldAdaptive, DisabledKeepsFixedCount) {
  auto map = make_room();
  const LidarConfig lidar;
  ParticleFilterConfig cfg;
  cfg.n_particles = 1234;
  cfg.kld_adaptive = false;
  auto caster = std::make_shared<BresenhamCaster>(map, lidar.max_range);
  ParticleFilter pf{cfg,
                    std::move(caster),
                    std::make_shared<TumMotionModel>(),
                    BeamModel{},
                    lidar,
                    uniform_layout(lidar, 40),
                    7};
  pf.init_pose({4.0, 2.0, 0.0});
  Rng rng{9};
  for (int i = 0; i < 3; ++i) pf.correct(observe(map, {4.0, 2.0, 0.0}, rng));
  EXPECT_EQ(pf.current_particles(), 1234);
}

TEST(KldAdaptive, GrowsBackWhenUncertaintyRises) {
  // Weak-sensor filter: converge it near the truth, then disperse the
  // cloud with noisy predictions; the next resampling must keep more
  // particles than the converged state did.
  auto map = make_room();
  ParticleFilter pf = make_kld_filter(map, 4000, 3);
  const Pose2 truth{4.0, 2.0, 0.5};
  pf.init_pose(truth);
  Rng rng{11};
  for (int i = 0; i < 6; ++i) pf.correct(observe(map, truth, rng));
  ASSERT_GT(pf.resample_count(), 0L);
  const int converged = pf.current_particles();

  // Large-noise predictions disperse the cloud again (standing still, so
  // the truth does not move)...
  OdometryDelta odom;
  odom.delta = Pose2{0.0, 0.0, 0.0};
  odom.v = 0.0;
  odom.dt = 0.2;
  ParticleFilterConfig cfg = pf.config();
  (void)cfg;
  for (int i = 0; i < 40; ++i) pf.predict(odom);
  const long before = pf.resample_count();
  for (int i = 0; i < 5 && pf.resample_count() == before; ++i) {
    pf.correct(observe(map, truth, rng));
  }
  if (pf.resample_count() > before) {
    EXPECT_GE(pf.current_particles(), converged);
  }
}

// -------------------------------------------------------------- recovery --

TEST(Recovery, InjectionProbRisesAfterKidnap) {
  auto map = make_room();
  const LidarConfig lidar;
  ParticleFilterConfig cfg;
  cfg.n_particles = 1500;
  cfg.recovery = true;
  auto caster = std::make_shared<BresenhamCaster>(map, lidar.max_range);
  ParticleFilter pf{cfg,
                    caster,
                    std::make_shared<TumMotionModel>(),
                    BeamModel{},
                    lidar,
                    uniform_layout(lidar, 40),
                    7};
  pf.set_recovery_map(map);

  const Pose2 home{4.0, 2.0, 0.5};
  pf.init_pose(home);
  Rng rng{3};
  // Healthy phase: likelihood stable, no injection.
  for (int i = 0; i < 8; ++i) pf.correct(observe(map, home, rng));
  EXPECT_LT(pf.recovery_injection_prob(), 0.05);

  // Kidnap: the car is teleported; the cloud's likelihood collapses and
  // the injection probability must rise.
  const Pose2 elsewhere{8.5, 4.5, -2.0};
  pf.correct(observe(map, elsewhere, rng));
  pf.correct(observe(map, elsewhere, rng));
  EXPECT_GT(pf.recovery_injection_prob(), 0.15);
}

TEST(Recovery, RelocalizesAfterKidnap) {
  auto map = make_room();
  const LidarConfig lidar;
  ParticleFilterConfig cfg;
  cfg.n_particles = 4000;
  cfg.recovery = true;
  auto caster = std::make_shared<BresenhamCaster>(map, lidar.max_range);
  ParticleFilter pf{cfg,
                    caster,
                    std::make_shared<TumMotionModel>(),
                    BeamModel{},
                    lidar,
                    uniform_layout(lidar, 40),
                    11};
  pf.set_recovery_map(map);

  const Pose2 home{4.0, 2.0, 0.5};
  pf.init_pose(home);
  Rng rng{5};
  for (int i = 0; i < 6; ++i) pf.correct(observe(map, home, rng));

  // Kidnap, then keep feeding scans from the new location: injected
  // uniform particles must find it.
  const Pose2 elsewhere{8.5, 4.5, -2.0};
  OdometryDelta idle;
  idle.dt = 0.05;
  for (int i = 0; i < 30; ++i) {
    pf.predict(idle);
    pf.correct(observe(map, elsewhere, rng));
  }
  const Pose2 est = pf.estimate();
  EXPECT_NEAR(est.x, elsewhere.x, 0.4);
  EXPECT_NEAR(est.y, elsewhere.y, 0.4);
}

TEST(Recovery, DisabledFilterStaysLost) {
  auto map = make_room();
  const LidarConfig lidar;
  ParticleFilterConfig cfg;
  cfg.n_particles = 1500;
  cfg.recovery = false;
  auto caster = std::make_shared<BresenhamCaster>(map, lidar.max_range);
  ParticleFilter pf{cfg,
                    caster,
                    std::make_shared<TumMotionModel>(),
                    BeamModel{},
                    lidar,
                    uniform_layout(lidar, 40),
                    11};
  const Pose2 home{4.0, 2.0, 0.5};
  pf.init_pose(home);
  Rng rng{5};
  for (int i = 0; i < 6; ++i) pf.correct(observe(map, home, rng));
  const Pose2 elsewhere{8.5, 4.5, -2.0};
  OdometryDelta idle;
  idle.dt = 0.05;
  for (int i = 0; i < 30; ++i) {
    pf.predict(idle);
    pf.correct(observe(map, elsewhere, rng));
  }
  // Without injection the cloud cannot jump across the room.
  const Pose2 est = pf.estimate();
  EXPECT_GT(std::hypot(est.x - elsewhere.x, est.y - elsewhere.y), 1.0);
}

}  // namespace
}  // namespace srl
