#include "common/polyline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/angles.hpp"
#include "common/rng.hpp"

namespace srl {
namespace {

std::vector<Vec2> circle(double r, int n) {
  std::vector<Vec2> pts;
  for (int i = 0; i < n; ++i) {
    const double a = kTwoPi * i / n;
    pts.emplace_back(r * std::cos(a), r * std::sin(a));
  }
  return pts;
}

TEST(Polyline, LengthOpenAndClosed) {
  const std::vector<Vec2> square = {{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  EXPECT_DOUBLE_EQ(polyline_length(square, false), 3.0);
  EXPECT_DOUBLE_EQ(polyline_length(square, true), 4.0);
  EXPECT_DOUBLE_EQ(polyline_length({}, true), 0.0);
  EXPECT_DOUBLE_EQ(polyline_length({{1, 1}}, true), 0.0);
}

TEST(Polyline, CircleLengthApproximation) {
  const auto c = circle(2.0, 256);
  EXPECT_NEAR(polyline_length(c, true), kTwoPi * 2.0, 0.01);
}

TEST(ResampleClosed, UniformSpacing) {
  const auto c = circle(1.0, 64);
  const auto r = resample_closed(c, 0.1);
  ASSERT_GE(r.size(), 3U);
  const double total = polyline_length(r, true);
  const double expected_ds = total / static_cast<double>(r.size());
  for (std::size_t i = 0; i < r.size(); ++i) {
    const double ds = distance(r[i], r[(i + 1) % r.size()]);
    EXPECT_NEAR(ds, expected_ds, 0.25 * expected_ds);
  }
}

TEST(ResampleClosed, PreservesShapeOnCircle) {
  const auto r = resample_closed(circle(3.0, 100), 0.2);
  for (const Vec2& p : r) EXPECT_NEAR(p.norm(), 3.0, 0.02);
}

TEST(ResampleOpen, EndpointsPreserved) {
  const std::vector<Vec2> line = {{0, 0}, {1, 0}, {4, 0}};
  const auto r = resample_open(line, 7);
  ASSERT_EQ(r.size(), 7U);
  EXPECT_NEAR(r.front().x, 0.0, 1e-9);
  EXPECT_NEAR(r.back().x, 4.0, 1e-9);
  for (std::size_t i = 1; i < r.size(); ++i) {
    EXPECT_NEAR(r[i].x - r[i - 1].x, 4.0 / 6.0, 1e-9);
  }
}

TEST(Chaikin, DoublesPointsAndSmooths) {
  const std::vector<Vec2> square = {{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  const auto s1 = chaikin_closed(square, 1);
  EXPECT_EQ(s1.size(), 8U);
  // Smoothing reduces the maximum discrete curvature of the square corner.
  const auto k0 = curvature_closed(resample_closed(square, 0.2));
  const auto k3 = curvature_closed(resample_closed(chaikin_closed(square, 3), 0.2));
  double max0 = 0.0;
  double max3 = 0.0;
  for (double k : k0) max0 = std::max(max0, std::abs(k));
  for (double k : k3) max3 = std::max(max3, std::abs(k));
  EXPECT_LT(max3, max0);
}

TEST(Curvature, CircleHasConstantCurvature) {
  const double r = 2.5;
  const auto k = curvature_closed(circle(r, 128));
  for (double ki : k) EXPECT_NEAR(ki, 1.0 / r, 0.01);
}

TEST(Curvature, SignFollowsOrientation) {
  auto ccw = circle(1.0, 32);
  auto cw = ccw;
  std::reverse(cw.begin(), cw.end());
  EXPECT_GT(curvature_closed(ccw)[5], 0.0);
  EXPECT_LT(curvature_closed(cw)[5], 0.0);
}

TEST(Curvature, StraightSegmentsAreZero) {
  const std::vector<Vec2> rect = {{0, 0}, {1, 0}, {2, 0}, {3, 0},
                                  {3, 1}, {2, 1}, {1, 1}, {0, 1}};
  const auto k = curvature_closed(rect);
  EXPECT_NEAR(k[1], 0.0, 1e-9);  // mid-edge vertex
  EXPECT_NEAR(k[2], 0.0, 1e-9);
}

TEST(SignedArea, OrientationAndMagnitude) {
  const std::vector<Vec2> ccw = {{0, 0}, {2, 0}, {2, 3}, {0, 3}};
  EXPECT_DOUBLE_EQ(signed_area(ccw), 6.0);
  std::vector<Vec2> cw = ccw;
  std::reverse(cw.begin(), cw.end());
  EXPECT_DOUBLE_EQ(signed_area(cw), -6.0);
}

/// Property: resampling random star-shaped polygons keeps total length and
/// stays near the original shape.
class ResampleProperty : public ::testing::TestWithParam<int> {};

TEST_P(ResampleProperty, LengthPreserved) {
  Rng rng{static_cast<std::uint64_t>(GetParam())};
  std::vector<Vec2> poly;
  const int n = 12;
  for (int i = 0; i < n; ++i) {
    const double a = kTwoPi * i / n;
    const double r = rng.uniform(2.0, 4.0);
    poly.emplace_back(r * std::cos(a), r * std::sin(a));
  }
  const double len0 = polyline_length(poly, true);
  const auto r = resample_closed(poly, 0.05);
  EXPECT_NEAR(polyline_length(r, true), len0, 0.02 * len0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResampleProperty, ::testing::Range(1, 8));

}  // namespace
}  // namespace srl
