#include "slam/submap.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/angles.hpp"

namespace srl {
namespace {

TEST(Submap, FrameTransformsAreInverse) {
  const Pose2 frame{3.0, -1.0, 0.7};
  Submap submap{frame, 0.05, 10.0};
  const Pose2 world{4.2, 0.3, -0.4};
  const Pose2 rt = submap.to_world(submap.to_local(world));
  EXPECT_NEAR(rt.x, world.x, 1e-9);
  EXPECT_NEAR(rt.y, world.y, 1e-9);
  EXPECT_NEAR(angle_dist(rt.theta, world.theta), 0.0, 1e-9);
}

TEST(Submap, InsertPlacesHitAtCorrectLocalCell) {
  const Pose2 frame{5.0, 5.0, kPi / 2.0};  // rotated frame
  Submap submap{frame, 0.1, 8.0};
  const Pose2 body_world{5.0, 5.0, kPi / 2.0};  // at the frame origin
  // One hit 2 m ahead of the body (world +y direction).
  const std::vector<Vec2> hits = {{2.0, 0.0}};
  submap.insert(body_world, hits, {});
  EXPECT_EQ(submap.scan_count(), 1);
  // In the local frame the hit is at (2, 0): grid origin is (-4, -4).
  const GridIndex g = submap.grid().world_to_grid({2.0, 0.0});
  EXPECT_GT(submap.grid().probability(g.ix, g.iy), 0.5F);
}

TEST(Submap, PoseUpdateMovesContentRigidly) {
  Submap submap{Pose2{}, 0.1, 8.0};
  submap.insert(Pose2{}, std::vector<Vec2>{{1.0, 0.0}}, {});
  // The hit is at local (1, 0). After re-anchoring the submap 1 m up, the
  // same local cell maps to world (1, 1).
  submap.set_pose(Pose2{0.0, 1.0, 0.0});
  const Pose2 world_of_hit = submap.to_world(Pose2{1.0, 0.0, 0.0});
  EXPECT_NEAR(world_of_hit.x, 1.0, 1e-9);
  EXPECT_NEAR(world_of_hit.y, 1.0, 1e-9);
}

TEST(Submap, FinishLifecycle) {
  Submap submap{Pose2{}, 0.1, 4.0};
  EXPECT_FALSE(submap.finished());
  submap.finish();
  EXPECT_TRUE(submap.finished());
}

TEST(Submap, ScanCountIncrements) {
  Submap submap{Pose2{}, 0.1, 4.0};
  for (int i = 0; i < 5; ++i) {
    submap.insert(Pose2{}, std::vector<Vec2>{{0.5, 0.0}}, {});
  }
  EXPECT_EQ(submap.scan_count(), 5);
}

}  // namespace
}  // namespace srl
