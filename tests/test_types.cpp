#include "common/types.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.hpp"
#include "common/rng.hpp"

namespace srl {
namespace {

void expect_pose_near(const Pose2& a, const Pose2& b, double tol = 1e-9) {
  EXPECT_NEAR(a.x, b.x, tol);
  EXPECT_NEAR(a.y, b.y, tol);
  EXPECT_NEAR(angle_dist(a.theta, b.theta), 0.0, tol);
}

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{-3.0, 0.5};
  EXPECT_DOUBLE_EQ((a + b).x, -2.0);
  EXPECT_DOUBLE_EQ((a - b).y, 1.5);
  EXPECT_DOUBLE_EQ((a * 2.0).x, 2.0);
  EXPECT_DOUBLE_EQ((2.0 * a).y, 4.0);
  EXPECT_DOUBLE_EQ(a.dot(b), -3.0 + 1.0);
  EXPECT_DOUBLE_EQ(a.cross(b), 1.0 * 0.5 - 2.0 * (-3.0));
  EXPECT_DOUBLE_EQ(Vec2(3.0, 4.0).norm(), 5.0);
}

TEST(Vec2, RotationAndPerp) {
  const Vec2 x{1.0, 0.0};
  const Vec2 r = x.rotated(kPi / 2.0);
  EXPECT_NEAR(r.x, 0.0, 1e-12);
  EXPECT_NEAR(r.y, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(x.perp().x, 0.0);
  EXPECT_DOUBLE_EQ(x.perp().y, 1.0);
  EXPECT_NEAR(Vec2(2.0, 0.0).normalized().norm(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(Vec2{}.normalized().norm(), 0.0);
}

TEST(Pose2, IdentityComposition) {
  const Pose2 p{1.0, -2.0, 0.7};
  expect_pose_near(p * Pose2{}, p);
  expect_pose_near(Pose2{} * p, p);
}

TEST(Pose2, InverseCancels) {
  const Pose2 p{3.0, 1.0, 2.2};
  expect_pose_near(p * p.inverse(), Pose2{});
  expect_pose_near(p.inverse() * p, Pose2{});
}

TEST(Pose2, BetweenRecoversTarget) {
  const Pose2 a{1.0, 2.0, 0.3};
  const Pose2 b{-0.5, 4.0, -1.1};
  expect_pose_near(a * a.between(b), b);
}

TEST(Pose2, TransformMatchesComposition) {
  const Pose2 p{2.0, -1.0, kPi / 3.0};
  const Vec2 q{0.5, 0.25};
  const Vec2 via_transform = p.transform(q);
  const Pose2 as_pose = p * Pose2{q.x, q.y, 0.0};
  EXPECT_NEAR(via_transform.x, as_pose.x, 1e-12);
  EXPECT_NEAR(via_transform.y, as_pose.y, 1e-12);
}

TEST(Pose2, InverseTransformRoundTrip) {
  const Pose2 p{-1.0, 5.0, 2.9};
  const Vec2 q{3.0, -2.0};
  const Vec2 rt = p.inverse_transform(p.transform(q));
  EXPECT_NEAR(rt.x, q.x, 1e-12);
  EXPECT_NEAR(rt.y, q.y, 1e-12);
}

/// Group axioms over random poses.
class PoseProperty : public ::testing::TestWithParam<int> {};

TEST_P(PoseProperty, Associativity) {
  Rng rng{static_cast<std::uint64_t>(GetParam())};
  for (int i = 0; i < 50; ++i) {
    const Pose2 a{rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-3, 3)};
    const Pose2 b{rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-3, 3)};
    const Pose2 c{rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-3, 3)};
    expect_pose_near((a * b) * c, a * (b * c), 1e-9);
  }
}

TEST_P(PoseProperty, InverseOfProduct) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) + 17};
  for (int i = 0; i < 50; ++i) {
    const Pose2 a{rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-3, 3)};
    const Pose2 b{rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-3, 3)};
    expect_pose_near((a * b).inverse(), b.inverse() * a.inverse(), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PoseProperty, ::testing::Range(1, 6));

TEST(IntegrateTwist, StraightLine) {
  const Pose2 p = integrate_twist(Pose2{}, Twist2{2.0, 0.0, 0.0}, 0.5);
  expect_pose_near(p, Pose2{1.0, 0.0, 0.0});
}

TEST(IntegrateTwist, PureRotation) {
  const Pose2 p = integrate_twist(Pose2{}, Twist2{0.0, 0.0, 1.0}, kPi / 2.0);
  expect_pose_near(p, Pose2{0.0, 0.0, kPi / 2.0}, 1e-9);
}

TEST(IntegrateTwist, QuarterCircleArc) {
  // vx = 1, wz = 1 for pi/2 seconds: quarter circle of radius 1 ending at
  // (1, 1) facing +y.
  const Pose2 p =
      integrate_twist(Pose2{}, Twist2{1.0, 0.0, 1.0}, kPi / 2.0);
  expect_pose_near(p, Pose2{1.0, 1.0, kPi / 2.0}, 1e-9);
}

TEST(IntegrateTwist, LateralVelocity) {
  const Pose2 p = integrate_twist(Pose2{}, Twist2{0.0, 1.5, 0.0}, 2.0);
  expect_pose_near(p, Pose2{0.0, 3.0, 0.0});
}

TEST(IntegrateTwist, NegativeDtReverses) {
  const Twist2 tw{1.3, -0.4, 0.8};
  const Pose2 fwd = integrate_twist(Pose2{}, tw, 0.37);
  const Pose2 back = integrate_twist(fwd, tw, -0.37);
  expect_pose_near(back, Pose2{}, 1e-9);
}

TEST(IntegrateTwist, MatchesSmallStepComposition) {
  // One big exact step equals many small steps (the exponential map is
  // exact for constant twists).
  const Twist2 tw{3.0, 0.5, -1.2};
  const double total = 0.8;
  const Pose2 one = integrate_twist(Pose2{1, 2, 0.3}, tw, total);
  Pose2 many{1, 2, 0.3};
  const int n = 2000;
  for (int i = 0; i < n; ++i) many = integrate_twist(many, tw, total / n);
  expect_pose_near(one, many, 1e-6);
}

TEST(IntegrateTwist, ZeroYawRateLimitContinuous) {
  // The wz->0 branch must agree with tiny-but-nonzero wz.
  const Twist2 small{2.0, 0.5, 1e-10};
  const Twist2 zero{2.0, 0.5, 0.0};
  const Pose2 a = integrate_twist(Pose2{}, small, 1.0);
  const Pose2 b = integrate_twist(Pose2{}, zero, 1.0);
  expect_pose_near(a, b, 1e-8);
}

}  // namespace
}  // namespace srl
