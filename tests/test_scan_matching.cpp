#include "slam/scan_matching.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/angles.hpp"
#include "gridmap/track_generator.hpp"
#include "range/bresenham.hpp"
#include "sensor/lidar.hpp"
#include "sensor/lidar_sim.hpp"

namespace srl {
namespace {

/// Fixture: likelihood field of an oval track + a noiseless scan taken at a
/// known pose, as body-frame points.
struct MatchFixture {
  Track track = TrackGenerator::oval(6.0, 2.0);
  std::shared_ptr<const OccupancyGrid> map =
      std::make_shared<const OccupancyGrid>(track.grid);
  ProbabilityGrid field = ProbabilityGrid::likelihood_field(*map, 0.15);
  LidarConfig lidar{};
  Pose2 truth{0.0, -2.0, 0.0};  // on the bottom straight... but corners
                                // visible, so the pose is observable
  std::vector<Vec2> points;

  MatchFixture() {
    auto caster = std::make_shared<BresenhamCaster>(map, lidar.max_range);
    LidarNoise noise;
    noise.sigma_range = 0.0;
    noise.dropout_prob = 0.0;
    const LidarSim sim{lidar, caster, noise};
    Rng rng{4};
    const LaserScan scan = sim.scan(truth, 0.0, rng);
    points = scan_to_points(scan, lidar, 6);
  }
};

TEST(ScorePose, HigherAtTruth) {
  MatchFixture f;
  const double at_truth = score_pose(f.field, f.truth, f.points);
  const double shifted =
      score_pose(f.field, Pose2{f.truth.x, f.truth.y + 0.4, f.truth.theta},
                 f.points);
  EXPECT_GT(at_truth, 0.5);
  EXPECT_GT(at_truth, shifted + 0.1);
}

TEST(ScorePose, EmptyPointsScoreZero) {
  MatchFixture f;
  EXPECT_DOUBLE_EQ(score_pose(f.field, f.truth, {}), 0.0);
}

TEST(Correlative, RecoversLateralOffset) {
  MatchFixture f;
  const CorrelativeScanMatcher csm{CorrelativeOptions{}};
  const Pose2 seed{f.truth.x, f.truth.y + 0.08, f.truth.theta};
  const ScanMatchResult r = csm.match(f.field, seed, f.points);
  EXPECT_TRUE(r.ok);
  EXPECT_NEAR(r.pose.y, f.truth.y, 0.04);
}

TEST(Correlative, RecoversRotationOffset) {
  MatchFixture f;
  CorrelativeOptions opt;
  opt.angular_window = 0.1;
  const CorrelativeScanMatcher csm{opt};
  const Pose2 seed{f.truth.x, f.truth.y, f.truth.theta + 0.06};
  const ScanMatchResult r = csm.match(f.field, seed, f.points);
  EXPECT_TRUE(r.ok);
  EXPECT_NEAR(angle_dist(r.pose.theta, f.truth.theta), 0.0, 0.03);
}

TEST(Correlative, TieBreaksTowardSeed) {
  // On a flat surface (uniform grid), the best candidate is the seed itself
  // rather than a window corner.
  ProbabilityGrid flat{100, 100, 0.05, Vec2{}};
  for (int y = 0; y < 100; ++y) {
    for (int x = 0; x < 100; ++x) flat.update_hit(x, y);
  }
  const CorrelativeScanMatcher csm{CorrelativeOptions{}};
  const std::vector<Vec2> pts = {{0.5, 0.0}, {0.0, 0.5}, {-0.5, 0.2}};
  const Pose2 seed{2.5, 2.5, 0.3};
  const ScanMatchResult r = csm.match(flat, seed, pts);
  EXPECT_NEAR(r.pose.x, seed.x, 1e-9);
  EXPECT_NEAR(r.pose.y, seed.y, 1e-9);
  EXPECT_NEAR(r.pose.theta, seed.theta, 1e-9);
}

TEST(Correlative, MinScoreGate) {
  MatchFixture f;
  CorrelativeOptions opt;
  opt.min_score = 0.99;  // unreachable
  const CorrelativeScanMatcher csm{opt};
  const ScanMatchResult r = csm.match(f.field, f.truth, f.points);
  EXPECT_FALSE(r.ok);
}

TEST(GaussNewton, SubCellRefinement) {
  MatchFixture f;
  GaussNewtonOptions opt;
  opt.translation_anchor = 0.1;  // nearly free: pure gradient refinement
  opt.rotation_anchor = 0.05;
  const GaussNewtonMatcher gn{opt};
  const Pose2 seed{f.truth.x + 0.04, f.truth.y - 0.05, f.truth.theta + 0.02};
  const ScanMatchResult r = gn.refine(f.field, seed, f.points);
  // The corridor constrains laterally and in heading; the longitudinal
  // direction is weakly observable on a straight, so allow more slack there.
  EXPECT_LT(std::abs(r.pose.y - f.truth.y), 0.04);
  EXPECT_LT(std::hypot(r.pose.x - f.truth.x, r.pose.y - f.truth.y), 0.09);
  EXPECT_LT(angle_dist(r.pose.theta, f.truth.theta), 0.02);
  EXPECT_GE(r.score, score_pose(f.field, seed, f.points) - 1e-6);
}

TEST(GaussNewton, StrongAnchorStaysAtSeed) {
  MatchFixture f;
  GaussNewtonOptions opt;
  opt.translation_anchor = 1e7;
  opt.rotation_anchor = 1e7;
  const GaussNewtonMatcher gn{opt};
  const Pose2 seed{f.truth.x + 0.1, f.truth.y, f.truth.theta};
  const ScanMatchResult r = gn.refine(f.field, seed, f.points);
  EXPECT_NEAR(r.pose.x, seed.x, 1e-3);
  EXPECT_NEAR(r.pose.y, seed.y, 1e-3);
}

TEST(GaussNewton, AnchorSeparateFromStart) {
  // With a flat grid, the solution must return to the ANCHOR even when the
  // iteration starts elsewhere — the degenerate-direction behavior.
  ProbabilityGrid flat{100, 100, 0.05, Vec2{}};
  for (int y = 0; y < 100; ++y) {
    for (int x = 0; x < 100; ++x) flat.update_hit(x, y);
  }
  GaussNewtonOptions opt;
  const GaussNewtonMatcher gn{opt};
  const std::vector<Vec2> pts = {{0.5, 0.0}, {0.0, 0.5}};
  const Pose2 anchor{2.5, 2.5, 0.0};
  const Pose2 start{2.6, 2.4, 0.05};
  const ScanMatchResult r = gn.refine(flat, anchor, start, pts);
  EXPECT_NEAR(r.pose.x, anchor.x, 0.01);
  EXPECT_NEAR(r.pose.y, anchor.y, 0.01);
  EXPECT_NEAR(angle_dist(r.pose.theta, anchor.theta), 0.0, 0.01);
}

TEST(GaussNewton, EmptyPointsReturnsSeed) {
  MatchFixture f;
  const GaussNewtonMatcher gn{GaussNewtonOptions{}};
  const Pose2 seed{1.0, 2.0, 0.5};
  const ScanMatchResult r = gn.refine(f.field, seed, {});
  EXPECT_NEAR(r.pose.x, seed.x, 1e-6);
}

TEST(Pipeline, CsmPlusGnBeatsEither) {
  MatchFixture f;
  const CorrelativeScanMatcher csm{CorrelativeOptions{}};
  GaussNewtonOptions gopt;
  gopt.translation_anchor = 1.0;
  gopt.rotation_anchor = 0.5;
  const GaussNewtonMatcher gn{gopt};
  const Pose2 seed{f.truth.x + 0.1, f.truth.y - 0.08, f.truth.theta + 0.04};
  const ScanMatchResult coarse = csm.match(f.field, seed, f.points);
  const ScanMatchResult fine =
      gn.refine(f.field, seed, coarse.ok ? coarse.pose : seed, f.points);
  // Lateral and heading must be pinned down; longitudinal is corridor-
  // degenerate and may keep part of the seed offset.
  EXPECT_LT(std::abs(fine.pose.y - f.truth.y), 0.05);
  EXPECT_LT(angle_dist(fine.pose.theta, f.truth.theta), 0.02);
  // GN optimizes the anchored objective, so the raw score may dip slightly
  // below the unanchored correlative optimum.
  EXPECT_GE(fine.score + 0.01, coarse.score);
}

}  // namespace
}  // namespace srl
