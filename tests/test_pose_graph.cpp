#include "slam/pose_graph.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.hpp"
#include "common/rng.hpp"

namespace srl {
namespace {

void expect_pose_near(const Pose2& a, const Pose2& b, double tol) {
  EXPECT_NEAR(a.x, b.x, tol);
  EXPECT_NEAR(a.y, b.y, tol);
  EXPECT_NEAR(angle_dist(a.theta, b.theta), 0.0, tol);
}

TEST(PoseGraph, PriorPinsNode) {
  PoseGraph2D g;
  const int n = g.add_node(Pose2{1.0, 1.0, 0.5});
  g.add_prior(n, Pose2{2.0, -1.0, 0.0}, 100.0, 100.0);
  const PoseGraphStats stats = g.optimize(10);
  expect_pose_near(g.node_pose(n), Pose2{2.0, -1.0, 0.0}, 1e-4);
  EXPECT_LT(stats.final_cost, stats.initial_cost);
}

TEST(PoseGraph, ChainRecoversGroundTruth) {
  // Ground truth: three poses along a quarter arc. Perfect odometry
  // constraints + prior on the first node -> exact recovery from a bad
  // initialization.
  const Pose2 t0{0.0, 0.0, 0.0};
  const Pose2 rel{1.0, 0.0, kPi / 6.0};
  const Pose2 t1 = t0 * rel;
  const Pose2 t2 = t1 * rel;

  PoseGraph2D g;
  const int n0 = g.add_node(Pose2{0.3, -0.3, 0.2});
  const int n1 = g.add_node(Pose2{0.5, 0.5, 1.0});
  const int n2 = g.add_node(Pose2{3.0, 3.0, -1.0});
  g.add_prior(n0, t0, 1e4, 1e4);
  g.add_relative(n0, n1, rel, 100.0, 100.0);
  g.add_relative(n1, n2, rel, 100.0, 100.0);
  g.optimize(20);
  expect_pose_near(g.node_pose(n0), t0, 1e-3);
  expect_pose_near(g.node_pose(n1), t1, 1e-3);
  expect_pose_near(g.node_pose(n2), t2, 1e-3);
}

TEST(PoseGraph, LoopClosureDistributesDrift) {
  // Square loop: odometry says four 90-degree legs of length 2, but the
  // initial guess has accumulated heading drift. The loop-closure
  // constraint from the last node back to the first fixes the shape.
  const Pose2 leg{2.0, 0.0, kPi / 2.0};
  PoseGraph2D g;
  std::vector<int> ids;
  Pose2 guess{};
  Rng rng{5};
  for (int i = 0; i < 5; ++i) {
    ids.push_back(g.add_node(guess));
    // Drifting dead reckoning for the next initial guess.
    const Pose2 noisy{leg.x + rng.gaussian(0.15), leg.y + rng.gaussian(0.15),
                      leg.theta + rng.gaussian(0.08)};
    guess = (guess * noisy).normalized();
  }
  g.add_prior(ids[0], Pose2{}, 1e4, 1e4);
  for (int i = 0; i < 4; ++i) {
    g.add_relative(ids[static_cast<std::size_t>(i)],
                   ids[static_cast<std::size_t>(i + 1)], leg, 50.0, 50.0);
  }
  // Loop closure: node 4 must coincide with node 0 (identity relative).
  g.add_relative(ids[4], ids[0], Pose2{}, 200.0, 200.0);
  const PoseGraphStats stats = g.optimize(30);
  EXPECT_LT(stats.final_cost, 1e-3);
  expect_pose_near(g.node_pose(ids[4]), g.node_pose(ids[0]), 0.01);
  // Interior nodes sit at the square corners.
  expect_pose_near(g.node_pose(ids[1]), Pose2{2.0, 0.0, kPi / 2.0}, 0.05);
  expect_pose_near(g.node_pose(ids[2]), Pose2{2.0, 2.0, kPi}, 0.05);
}

TEST(PoseGraph, CostZeroAtGroundTruth) {
  PoseGraph2D g;
  const Pose2 a{1.0, 2.0, 0.3};
  const Pose2 b{2.5, 2.5, 1.0};
  const int na = g.add_node(a);
  const int nb = g.add_node(b);
  g.add_relative(na, nb, a.between(b), 10.0, 10.0);
  g.add_prior(na, a, 10.0, 10.0);
  EXPECT_NEAR(g.cost(), 0.0, 1e-12);
}

TEST(PoseGraph, OptimizeReducesCostMonotonically) {
  PoseGraph2D g;
  Rng rng{9};
  std::vector<int> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(g.add_node(
        Pose2{rng.uniform(-3, 3), rng.uniform(-3, 3), rng.uniform(-2, 2)}));
  }
  g.add_prior(ids[0], Pose2{}, 1e4, 1e4);
  for (int i = 0; i + 1 < 10; ++i) {
    g.add_relative(ids[static_cast<std::size_t>(i)],
                   ids[static_cast<std::size_t>(i + 1)],
                   Pose2{1.0, 0.1, 0.05}, 20.0, 20.0);
  }
  const double cost0 = g.cost();
  g.optimize(15);
  EXPECT_LT(g.cost(), 0.01 * cost0);
}

TEST(PoseGraph, WeightsBalanceConflict) {
  // Two priors disagree: the strong one wins proportionally.
  PoseGraph2D g;
  const int n = g.add_node(Pose2{});
  g.add_prior(n, Pose2{0.0, 0.0, 0.0}, 100.0, 100.0);
  g.add_prior(n, Pose2{1.0, 0.0, 0.0}, 300.0, 300.0);
  g.optimize(10);
  EXPECT_NEAR(g.node_pose(n).x, 0.75, 0.01);
}

TEST(PoseGraph, AngleWrapInConstraints) {
  PoseGraph2D g;
  const int a = g.add_node(Pose2{0.0, 0.0, kPi - 0.05});
  const int b = g.add_node(Pose2{1.0, 0.0, -kPi + 0.05});
  g.add_prior(a, Pose2{0.0, 0.0, kPi - 0.05}, 1e4, 1e4);
  // Relative heading +0.1 crosses the wrap; the optimizer must not unwind
  // it the long way.
  g.add_relative(a, b, Pose2{1.0, 0.0, 0.1}, 100.0, 100.0);
  g.optimize(10);
  EXPECT_NEAR(angle_dist(g.node_pose(b).theta, normalize_angle(kPi + 0.05)),
              0.0, 0.01);
}

TEST(PoseGraph, EmptyGraphIsFine) {
  PoseGraph2D g;
  const PoseGraphStats stats = g.optimize(5);
  EXPECT_TRUE(stats.converged);
  EXPECT_EQ(g.num_nodes(), 0);
}

}  // namespace
}  // namespace srl
