#include "gridmap/morphology.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gridmap/distance_transform.hpp"

namespace srl {
namespace {

TEST(Inflate, GrowsObstacleByRadius) {
  OccupancyGrid g{21, 21, 0.1, Vec2{}, OccupancyGrid::kFree};
  g.at(10, 10) = OccupancyGrid::kOccupied;
  const OccupancyGrid inflated = inflate(g, 0.35);
  // Every free cell within 0.35 m becomes occupied; farther stays free.
  for (int y = 0; y < 21; ++y) {
    for (int x = 0; x < 21; ++x) {
      const double d = std::hypot(x - 10, y - 10) * 0.1;
      if (d <= 0.35) {
        EXPECT_EQ(inflated.at(x, y), OccupancyGrid::kOccupied)
            << x << "," << y;
      } else if (d > 0.45) {
        EXPECT_EQ(inflated.at(x, y), OccupancyGrid::kFree) << x << "," << y;
      }
    }
  }
}

TEST(Inflate, ZeroRadiusIsIdentity) {
  OccupancyGrid g{5, 5, 0.1, Vec2{}, OccupancyGrid::kFree};
  g.at(2, 2) = OccupancyGrid::kOccupied;
  const OccupancyGrid out = inflate(g, 0.0);
  EXPECT_EQ(out.count(OccupancyGrid::kOccupied), 1U);
}

TEST(Inflate, DoesNotTouchUnknown) {
  OccupancyGrid g{9, 9, 0.1, Vec2{}, OccupancyGrid::kUnknown};
  g.at(4, 4) = OccupancyGrid::kOccupied;
  const OccupancyGrid out = inflate(g, 0.2);
  // Unknown neighbours stay unknown (only free space is eaten).
  EXPECT_EQ(out.count(OccupancyGrid::kOccupied), 1U);
  EXPECT_EQ(out.at(5, 4), OccupancyGrid::kUnknown);
}

TEST(Inflate, ShrinksFreeSpaceMonotonically) {
  OccupancyGrid g{30, 30, 0.1, Vec2{}, OccupancyGrid::kFree};
  for (int x = 0; x < 30; ++x) {
    g.at(x, 0) = OccupancyGrid::kOccupied;
    g.at(x, 29) = OccupancyGrid::kOccupied;
  }
  const std::size_t free0 = g.count(OccupancyGrid::kFree);
  const std::size_t free1 = inflate(g, 0.2).count(OccupancyGrid::kFree);
  const std::size_t free2 = inflate(g, 0.5).count(OccupancyGrid::kFree);
  EXPECT_GT(free0, free1);
  EXPECT_GT(free1, free2);
}

}  // namespace
}  // namespace srl
