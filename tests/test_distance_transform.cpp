#include "gridmap/distance_transform.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"

namespace srl {
namespace {

/// O(cells^2) reference implementation.
DistanceField brute_force(const OccupancyGrid& grid) {
  DistanceField f{grid.width(), grid.height(), grid.resolution(),
                  grid.origin()};
  for (int y = 0; y < grid.height(); ++y) {
    for (int x = 0; x < grid.width(); ++x) {
      double best = std::numeric_limits<double>::max();
      for (int by = 0; by < grid.height(); ++by) {
        for (int bx = 0; bx < grid.width(); ++bx) {
          if (!grid.blocks_ray(bx, by)) continue;
          const double d = std::hypot(x - bx, y - by) * grid.resolution();
          best = std::min(best, d);
        }
      }
      if (best == std::numeric_limits<double>::max()) best = grid.diagonal();
      f.at(x, y) = static_cast<float>(std::min(best, grid.diagonal()));
    }
  }
  return f;
}

TEST(DistanceTransform, SingleObstacle) {
  OccupancyGrid g{11, 11, 1.0, Vec2{}, OccupancyGrid::kFree};
  g.at(5, 5) = OccupancyGrid::kOccupied;
  const DistanceField f = distance_transform(g);
  EXPECT_FLOAT_EQ(f.at(5, 5), 0.0F);
  EXPECT_FLOAT_EQ(f.at(6, 5), 1.0F);
  EXPECT_FLOAT_EQ(f.at(5, 0), 5.0F);
  EXPECT_NEAR(f.at(8, 9), std::hypot(3.0, 4.0), 1e-5);
}

TEST(DistanceTransform, AllBlockedIsZero) {
  OccupancyGrid g{5, 5, 0.5, Vec2{}, OccupancyGrid::kOccupied};
  const DistanceField f = distance_transform(g);
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 5; ++x) EXPECT_FLOAT_EQ(f.at(x, y), 0.0F);
  }
}

TEST(DistanceTransform, NoObstacleCapsAtDiagonal) {
  OccupancyGrid g{8, 6, 0.5, Vec2{}, OccupancyGrid::kFree};
  const DistanceField f = distance_transform(g);
  for (int y = 0; y < 6; ++y) {
    for (int x = 0; x < 8; ++x) {
      EXPECT_FLOAT_EQ(f.at(x, y), static_cast<float>(g.diagonal()));
    }
  }
}

TEST(DistanceTransform, UnknownBlocksButIsNotOccupied) {
  OccupancyGrid g{9, 9, 1.0, Vec2{}, OccupancyGrid::kFree};
  g.at(4, 4) = OccupancyGrid::kUnknown;
  const DistanceField to_block = distance_transform(g);
  const DistanceField to_occ = distance_to_occupied(g);
  EXPECT_FLOAT_EQ(to_block.at(4, 4), 0.0F);
  EXPECT_FLOAT_EQ(to_block.at(5, 4), 1.0F);
  // No occupied cell exists: distance_to_occupied caps at the diagonal.
  EXPECT_FLOAT_EQ(to_occ.at(5, 4), static_cast<float>(g.diagonal()));
}

class DtRandom : public ::testing::TestWithParam<int> {};

TEST_P(DtRandom, MatchesBruteForce) {
  Rng rng{static_cast<std::uint64_t>(GetParam()) * 7919};
  const int w = rng.uniform_int(3, 24);
  const int h = rng.uniform_int(3, 24);
  OccupancyGrid g{w, h, 0.25, Vec2{-1.0, 0.5}, OccupancyGrid::kFree};
  const double fill = rng.uniform(0.02, 0.4);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (rng.chance(fill)) g.at(x, y) = OccupancyGrid::kOccupied;
    }
  }
  const DistanceField fast = distance_transform(g);
  const DistanceField ref = brute_force(g);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      EXPECT_NEAR(fast.at(x, y), ref.at(x, y), 1e-4)
          << "cell (" << x << ", " << y << ") grid " << w << "x" << h;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DtRandom, ::testing::Range(1, 13));

TEST(DistanceField, InterpolationBetweenCells) {
  OccupancyGrid g{10, 3, 1.0, Vec2{}, OccupancyGrid::kFree};
  g.at(0, 1) = OccupancyGrid::kOccupied;
  const DistanceField f = distance_transform(g);
  // Along the row y=1, distance grows linearly with x: interpolation at a
  // half-cell should land mid-way.
  const float a = f.at(3, 1);
  const float b = f.at(4, 1);
  const float mid = f.interpolate(g.grid_to_world(3, 1) + Vec2{0.5, 0.0});
  EXPECT_NEAR(mid, 0.5F * (a + b), 1e-4);
}

TEST(DistanceField, AtWorldOutOfBoundsIsZero) {
  OccupancyGrid g{4, 4, 0.5, Vec2{}, OccupancyGrid::kFree};
  const DistanceField f = distance_transform(g);
  EXPECT_FLOAT_EQ(f.at_world({-10.0, 0.0}), 0.0F);
  EXPECT_FLOAT_EQ(f.at_world({100.0, 100.0}), 0.0F);
}

}  // namespace
}  // namespace srl
