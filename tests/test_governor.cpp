/// \file test_governor.cpp
/// \brief Compute-governor unit tests (src/governor, DESIGN.md §16): the
/// pure decision core's graceful-degradation ladder (stage ordering, floor
/// clamps, enforcer drops), the SUSPECT-growth-vs-budget precedence, the
/// GovernedLocalizer decorator's strict budget-off no-op, severity-0
/// compute-pressure neutrality, and KLD sizing monotonicity on a live
/// filter (tight posteriors shed particles, dispersed ones keep them).

#include "governor/governor.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/particle_filter.hpp"
#include "fault/pipeline.hpp"
#include "gridmap/occupancy_grid.hpp"
#include "motion/tum_model.hpp"
#include "range/bresenham.hpp"
#include "sensor/scanline_layout.hpp"

namespace srl::governor {
namespace {

// ---------------------------------------------------------------------------
// ComputeGovernor — the pure decision core.
// ---------------------------------------------------------------------------

GovernorConfig shedding_config() {
  GovernorConfig cfg;
  cfg.budget_ms = 1.0;  // 48000 work units at the default unit rate
  cfg.min_particles = 300;
  cfg.max_particles = 1200;
  cfg.max_beam_stride = 4;
  return cfg;
}

TEST(ComputeGovernor, CostModelMatchesTheFilterBeamDecimation) {
  // active_beams must mirror ParticleFilter::set_beam_stride (indices
  // 0, s, 2s, ... — a ceiling division, not a floor).
  EXPECT_EQ(ComputeGovernor::active_beams(60, 1), 60);
  EXPECT_EQ(ComputeGovernor::active_beams(60, 2), 30);
  EXPECT_EQ(ComputeGovernor::active_beams(60, 3), 20);
  EXPECT_EQ(ComputeGovernor::active_beams(61, 4), 16);
  EXPECT_DOUBLE_EQ(ComputeGovernor::cost_units(1200, 60, 1), 72000.0);
  EXPECT_DOUBLE_EQ(ComputeGovernor::cost_units(1200, 60, 3), 24000.0);
}

TEST(ComputeGovernor, LadderEngagesStagesInSeverityOrder) {
  const ComputeGovernor gov{shedding_config()};
  // 1200 particles x 60 beams = 72000 units against a 48000-unit budget,
  // squeezed further by pressure: the ladder must walk stride -> clamp ->
  // skip-resample, never jumping a stage it could avoid.
  const GovernorDecision d0 = gov.decide(1200, 60, 0.0, false);
  EXPECT_EQ(d0.shed_stage, 1);
  EXPECT_EQ(d0.beam_stride, 2);
  EXPECT_EQ(d0.particle_target, 1200);
  EXPECT_FALSE(d0.skip_resample);
  EXPECT_DOUBLE_EQ(d0.cost_units, 36000.0);

  const GovernorDecision d1 = gov.decide(1200, 60, 0.5, false);
  EXPECT_EQ(d1.shed_stage, 1);
  EXPECT_EQ(d1.beam_stride, 3);  // least aggressive stride that fits
  EXPECT_EQ(d1.particle_target, 1200);

  const GovernorDecision d2 = gov.decide(1200, 60, 0.75, false);
  EXPECT_EQ(d2.shed_stage, 2);
  EXPECT_EQ(d2.beam_stride, 4);
  EXPECT_EQ(d2.particle_target, 800);  // 12000 units / 15 beams
  EXPECT_FALSE(d2.skip_resample);

  const GovernorDecision d3 = gov.decide(1200, 60, 0.95, false);
  EXPECT_EQ(d3.shed_stage, 3);
  EXPECT_EQ(d3.particle_target, 300);  // the floor
  EXPECT_TRUE(d3.skip_resample);
  EXPECT_FALSE(d3.drop_update);  // shedding mode never drops

  const GovernorDecision d4 = gov.decide(1200, 60, 1.0, false);
  EXPECT_EQ(d4.shed_stage, 3);
  EXPECT_EQ(d4.particle_target, 300);
  EXPECT_FALSE(d4.drop_update);

  // Monotone engagement across a fine pressure sweep.
  int last_stage = 0;
  for (int i = 0; i <= 20; ++i) {
    const double pressure = static_cast<double>(i) / 20.0;
    const GovernorDecision d = gov.decide(1200, 60, pressure, false);
    EXPECT_GE(d.shed_stage, last_stage) << "pressure " << pressure;
    last_stage = d.shed_stage;
  }
}

TEST(ComputeGovernor, NoBudgetMeansSizingOnly) {
  GovernorConfig cfg = shedding_config();
  cfg.budget_ms = 0.0;
  const ComputeGovernor gov{cfg};
  const GovernorDecision d = gov.decide(1200, 60, 1.0, false);
  EXPECT_EQ(d.shed_stage, 0);
  EXPECT_EQ(d.beam_stride, 1);
  EXPECT_EQ(d.particle_target, 1200);
  EXPECT_FALSE(d.skip_resample);
  EXPECT_FALSE(d.drop_update);
  EXPECT_LT(d.budget_units, 0.0);  // unlimited
}

TEST(ComputeGovernor, SuspectGrowthYieldsToTheBudget) {
  const ComputeGovernor gov{shedding_config()};
  // Healthy + roomy budget: a shrunken cloud stays shrunken (KLD owns
  // shrinking; the governor only grows under SUSPECT).
  const GovernorDecision healthy = gov.decide(600, 60, 0.0, false);
  EXPECT_EQ(healthy.particle_target, 600);
  EXPECT_EQ(healthy.shed_stage, 0);  // 36000 units fit the 48000 budget

  // SUSPECT with budget headroom: grow back to the ceiling (stride pays
  // for it — degraded beams, full cloud).
  const GovernorDecision suspect = gov.decide(600, 60, 0.0, true);
  EXPECT_EQ(suspect.particle_target, 1200);
  EXPECT_EQ(suspect.beam_stride, 2);

  // SUSPECT under heavy pressure: ambition loses — the clamp vetoes the
  // growth all the way back to the floor.
  const GovernorDecision squeezed = gov.decide(600, 60, 0.95, true);
  EXPECT_EQ(squeezed.particle_target, 300);
  EXPECT_EQ(squeezed.shed_stage, 3);
}

TEST(ComputeGovernor, EnforcerDropsWholeUpdatesInsteadOfShedding) {
  GovernorConfig cfg = shedding_config();
  cfg.shed = false;
  cfg.budget_ms = 2.0;  // 96000 units
  const ComputeGovernor gov{cfg};

  const GovernorDecision fits = gov.decide(1200, 60, 0.0, false);
  EXPECT_FALSE(fits.drop_update);
  EXPECT_EQ(fits.shed_stage, 0);
  EXPECT_EQ(fits.beam_stride, 1);  // no knob is ever touched

  const GovernorDecision starved = gov.decide(1200, 60, 0.5, false);
  EXPECT_TRUE(starved.drop_update);  // 72000 > 48000, nothing to shed
  EXPECT_EQ(starved.shed_stage, 4);
  EXPECT_EQ(starved.beam_stride, 1);
  EXPECT_EQ(starved.particle_target, 1200);

  const GovernorDecision fixed = gov.decide_fixed(48000.0, 0.75);
  EXPECT_TRUE(fixed.drop_update);  // 48000 > 96000 * 0.25
  const GovernorDecision fine = gov.decide_fixed(20000.0, 0.75);
  EXPECT_FALSE(fine.drop_update);
}

// ---------------------------------------------------------------------------
// GovernedLocalizer — the decorator.
// ---------------------------------------------------------------------------

/// Minimal inner localizer: counts calls, returns a fixed pose.
class StubLocalizer final : public Localizer {
 public:
  void initialize(const Pose2& pose) override { pose_ = pose; }
  void on_odometry(const OdometryDelta& /*odom*/) override { ++odoms_; }
  Pose2 on_scan(const LaserScan& /*scan*/) override {
    ++scans_;
    return pose_;
  }
  Pose2 pose() const override { return pose_; }
  std::string name() const override { return "Stub"; }
  double mean_scan_update_ms() const override { return 0.0; }
  double total_busy_s() const override { return 0.0; }

  int scans() const { return scans_; }

 private:
  Pose2 pose_{1.0, 2.0, 0.5};
  int scans_{0};
  int odoms_{0};
};

LaserScan scan_at(double t) {
  LaserScan scan;
  scan.t = t;
  return scan;
}

TEST(GovernedLocalizer, BudgetOffAdaptiveOffIsAStrictNoOp) {
  StubLocalizer inner;
  GovernedLocalizer governed{inner, GovernorConfig::off()};
  fault::FaultPipeline pipeline{0x7a017ULL, LidarConfig{}};
  pipeline.add("compute_pressure", 1.0);
  governed.bind_pressure(&pipeline);

  for (int i = 0; i < 10; ++i) governed.on_scan(scan_at(0.1 * i));
  // The early-out forwards before any accounting: no update is counted, no
  // pressure is polled, no decision exists — bitwise the bare inner stack.
  EXPECT_EQ(inner.scans(), 10);
  EXPECT_EQ(governed.updates(), 0U);
  EXPECT_EQ(governed.deadline_misses(), 0U);
  EXPECT_DOUBLE_EQ(governed.last_pressure(), 0.0);
  EXPECT_EQ(governed.name(), "Stub");  // no suffix in pass-through mode
}

TEST(GovernedLocalizer, SeverityZeroPressureDecidesLikeNoPipeline) {
  GovernorConfig cfg;
  cfg.budget_ms = 2.0;
  cfg.nominal_cost_units = kCartoNominalCostUnits;

  StubLocalizer bare_inner;
  GovernedLocalizer bare{bare_inner, cfg};

  StubLocalizer zero_inner;
  GovernedLocalizer zero{zero_inner, cfg};
  fault::FaultPipeline pipeline{0x7a017ULL, LidarConfig{}};
  pipeline.add("compute_pressure", 0.0);
  zero.bind_pressure(&pipeline);

  for (int i = 0; i < 20; ++i) {
    bare.on_scan(scan_at(0.1 * i));
    zero.on_scan(scan_at(0.1 * i));
  }
  EXPECT_EQ(bare_inner.scans(), zero_inner.scans());
  EXPECT_EQ(bare.updates(), zero.updates());
  EXPECT_EQ(bare.deadline_misses(), zero.deadline_misses());
  EXPECT_DOUBLE_EQ(zero.last_pressure(), 0.0);
  EXPECT_EQ(zero.deadline_misses(), 0U);  // 48000 units fit 96000
}

TEST(GovernedLocalizer, EnforcerStarvesUnderFullPressure) {
  GovernorConfig cfg;
  cfg.budget_ms = 2.0;
  cfg.shed = false;
  cfg.adaptive = false;
  cfg.nominal_cost_units = kCartoNominalCostUnits;

  StubLocalizer inner;
  GovernedLocalizer governed{inner, cfg};
  fault::FaultPipeline pipeline{0x7a017ULL, LidarConfig{}};
  // Canonical profile: onset t=2s, full severity by t=8s, forever.
  pipeline.add("compute_pressure", 1.0);
  governed.bind_pressure(&pipeline);

  int forwarded_before = 0;
  for (int i = 0; i < 100; ++i) {
    const double t = 0.2 * i;  // stream reaches t=19.8s
    governed.on_scan(scan_at(t));
    if (t < 2.0) forwarded_before = inner.scans();
  }
  // Before onset every update runs; at full pressure the budget is zero
  // and every update drops — the inner stack is starved, not degraded.
  EXPECT_GT(forwarded_before, 0);
  EXPECT_GT(governed.deadline_misses(), 0U);
  EXPECT_EQ(governed.updates(),
            static_cast<std::uint64_t>(inner.scans()) +
                governed.deadline_misses());
  EXPECT_EQ(governed.name(), "Stub+budgeted");
}

// ---------------------------------------------------------------------------
// KLD sizing monotonicity on a live filter.
// ---------------------------------------------------------------------------

std::shared_ptr<const OccupancyGrid> make_room() {
  auto grid = std::make_shared<OccupancyGrid>(200, 120, 0.05, Vec2{0.0, 0.0},
                                              OccupancyGrid::kFree);
  for (int x = 0; x < 200; ++x) {
    grid->at(x, 0) = OccupancyGrid::kOccupied;
    grid->at(x, 119) = OccupancyGrid::kOccupied;
  }
  for (int y = 0; y < 120; ++y) {
    grid->at(0, y) = OccupancyGrid::kOccupied;
    grid->at(199, y) = OccupancyGrid::kOccupied;
  }
  return grid;
}

ParticleFilter make_filter(std::shared_ptr<const OccupancyGrid> map,
                           int particles, double sigma_xy,
                           double sigma_theta) {
  const LidarConfig lidar;
  ParticleFilterConfig cfg;
  cfg.n_particles = particles;
  cfg.init_sigma_xy = sigma_xy;
  cfg.init_sigma_theta = sigma_theta;
  auto caster = std::make_shared<BresenhamCaster>(map, lidar.max_range);
  auto motion = std::make_shared<TumMotionModel>();
  return ParticleFilter{cfg,
                        std::move(caster),
                        std::move(motion),
                        BeamModel{},
                        lidar,
                        uniform_layout(lidar, 40),
                        42};
}

TEST(GovernorKld, TightPosteriorsShedParticlesDispersedOnesKeepThem) {
  auto map = make_room();

  // Tight cloud: everything in one KLD bin — the Fox bound cuts the
  // resample at the configured floor.
  ParticleFilter tight = make_filter(map, 800, 0.01, 0.01);
  tight.set_kld_adaptive(true);
  tight.init_pose(Pose2{5.0, 3.0, 0.0});
  tight.force_resample();
  EXPECT_EQ(tight.current_particles(), tight.config().kld_min_particles);

  // Dispersed cloud: hundreds of occupied bins — the bound keeps (nearly)
  // the full budget.
  ParticleFilter spread = make_filter(map, 800, 0.01, 0.01);
  spread.set_kld_adaptive(true);
  spread.init_global(*map);
  spread.force_resample();
  EXPECT_GT(spread.current_particles(), tight.current_particles());

  // Monotonicity along the spread axis: widening the init spread never
  // shrinks the KLD-selected cloud.
  int last = 0;
  for (const double sigma : {0.02, 0.2, 1.0, 3.0}) {
    ParticleFilter pf = make_filter(map, 800, sigma, sigma);
    pf.set_kld_adaptive(true);
    pf.init_pose(Pose2{5.0, 3.0, 0.0});
    pf.force_resample();
    EXPECT_GE(pf.current_particles(), last) << "sigma " << sigma;
    EXPECT_LE(pf.current_particles(), 800);
    last = pf.current_particles();
  }
}

}  // namespace
}  // namespace srl::governor
