#include "gridmap/map_degrade.hpp"

#include <gtest/gtest.h>

#include "gridmap/track_generator.hpp"

namespace srl {
namespace {

TEST(MapDegrade, DeterministicFromSeed) {
  const Track track = TrackGenerator::oval(5.0, 1.8);
  Rng a{42};
  Rng b{42};
  const OccupancyGrid da = degrade_map(track.grid, a);
  const OccupancyGrid db = degrade_map(track.grid, b);
  EXPECT_EQ(da.data(), db.data());
}

TEST(MapDegrade, OnlyBoundaryCellsChange) {
  const Track track = TrackGenerator::oval(5.0, 1.8);
  Rng rng{7};
  const OccupancyGrid out = degrade_map(track.grid, rng);
  const OccupancyGrid& in = track.grid;
  for (int y = 0; y < in.height(); ++y) {
    for (int x = 0; x < in.width(); ++x) {
      if (out.at(x, y) == in.at(x, y)) continue;
      // A changed cell must have been on a free/occupied boundary.
      bool boundary = false;
      for (int dy = -1; dy <= 1 && !boundary; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          const std::int8_t self = in.at(x, y);
          const std::int8_t n = in.at_or_occupied(x + dx, y + dy);
          if ((self == OccupancyGrid::kOccupied && n == OccupancyGrid::kFree) ||
              (self == OccupancyGrid::kFree && n == OccupancyGrid::kOccupied)) {
            boundary = true;
            break;
          }
        }
      }
      EXPECT_TRUE(boundary) << "interior cell changed at " << x << "," << y;
    }
  }
}

TEST(MapDegrade, ChangeFractionTracksParameters) {
  const Track track = TrackGenerator::oval(5.0, 1.8);
  MapDegradeParams light;
  light.erode_prob = 0.05;
  light.dilate_prob = 0.05;
  light.warp_amplitude = 0.0;
  MapDegradeParams heavy;
  heavy.erode_prob = 0.5;
  heavy.dilate_prob = 0.5;
  heavy.warp_amplitude = 0.0;

  const auto count_changed = [&](const MapDegradeParams& p) {
    Rng rng{11};
    const OccupancyGrid out = degrade_map(track.grid, rng, p);
    std::size_t changed = 0;
    for (std::size_t i = 0; i < out.data().size(); ++i) {
      if (out.data()[i] != track.grid.data()[i]) ++changed;
    }
    return changed;
  };
  const std::size_t light_changed = count_changed(light);
  const std::size_t heavy_changed = count_changed(heavy);
  EXPECT_GT(light_changed, 0U);
  EXPECT_GT(heavy_changed, 3 * light_changed);
}

TEST(MapDegrade, ZeroParamsIsIdentity) {
  const Track track = TrackGenerator::oval(4.0, 1.5);
  MapDegradeParams none;
  none.erode_prob = 0.0;
  none.dilate_prob = 0.0;
  none.warp_amplitude = 0.0;
  Rng rng{1};
  const OccupancyGrid out = degrade_map(track.grid, rng, none);
  EXPECT_EQ(out.data(), track.grid.data());
}

}  // namespace
}  // namespace srl
