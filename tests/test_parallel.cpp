/// Unit wall for the deterministic parallel primitives (common/parallel.hpp):
/// chunk geometry, full coverage at any lane count (including heavy
/// oversubscription), lane pinning, reduction determinism and the
/// fixed-association cascade structure.

#include "common/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <vector>

#include "common/rng.hpp"

namespace srl {
namespace {

TEST(ResolveThreadCount, ExplicitRequestWinsAndClamps) {
  EXPECT_EQ(resolve_thread_count(1), 1);
  EXPECT_EQ(resolve_thread_count(6), 6);
  EXPECT_EQ(resolve_thread_count(kMaxThreads + 50), kMaxThreads);
  // 0 resolves to *something* runnable whatever the host/env says.
  const int dflt = resolve_thread_count(0);
  EXPECT_GE(dflt, 1);
  EXPECT_LE(dflt, kMaxThreads);
}

TEST(ThreadPool, ChunkGeometryPartitionsExactly) {
  for (const int lanes : {1, 2, 3, 7, 8}) {
    for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                                std::size_t{8}, std::size_t{1000},
                                std::size_t{1501}}) {
      EXPECT_EQ(ThreadPool::chunk_begin(n, lanes, 0), 0U);
      EXPECT_EQ(ThreadPool::chunk_begin(n, lanes, lanes), n);
      std::size_t covered = 0;
      for (int c = 0; c < lanes; ++c) {
        const std::size_t b = ThreadPool::chunk_begin(n, lanes, c);
        const std::size_t e = ThreadPool::chunk_begin(n, lanes, c + 1);
        ASSERT_LE(b, e);
        covered += e - b;
      }
      EXPECT_EQ(covered, n) << "lanes=" << lanes << " n=" << n;
    }
  }
}

TEST(ThreadPool, EveryIndexVisitedExactlyOnce) {
  for (const int lanes : {1, 2, 8}) {
    ThreadPool pool{lanes};
    ASSERT_EQ(pool.threads(), lanes);
    const std::size_t n = 777;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](int, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " lanes " << lanes;
    }
  }
}

TEST(ThreadPool, LaneAssignmentIsStatic) {
  ThreadPool pool{4};
  const std::size_t n = 100;
  std::vector<int> lane_of(n, -1);
  pool.parallel_for(n, [&](int lane, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) lane_of[i] = lane;
  });
  for (std::size_t i = 0; i < n; ++i) {
    const auto expected = static_cast<int>(i * 4 / n);
    EXPECT_EQ(lane_of[i], expected) << "index " << i;
  }
}

TEST(ThreadPool, SmallRangesSkipEmptyChunks) {
  ThreadPool pool{8};
  std::atomic<int> calls{0};
  std::atomic<int> total{0};
  pool.parallel_for(3, [&](int, std::size_t begin, std::size_t end) {
    calls.fetch_add(1);
    total.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(total.load(), 3);
  EXPECT_LE(calls.load(), 3);  // empty chunks never invoke the body
  pool.parallel_for(0, [&](int, std::size_t, std::size_t) { FAIL(); });
}

TEST(ThreadPool, BackToBackRegionsStaySynchronized) {
  ThreadPool pool{4};
  std::vector<double> v(10000, 0.0);
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(v.size(), [&](int, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) v[i] += 1.0;
    });
  }
  for (const double x : v) ASSERT_EQ(x, 50.0);
}

TEST(ThreadPool, ExceptionOnCallingLaneStillJoinsWorkers) {
  ThreadPool pool{4};
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](int lane, std::size_t, std::size_t) {
                          if (lane == 0) throw std::runtime_error{"boom"};
                        }),
      std::runtime_error);
  // The pool must be reusable after the unwound region.
  std::atomic<int> total{0};
  pool.parallel_for(100, [&](int, std::size_t begin, std::size_t end) {
    total.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(total.load(), 100);
}

TEST(PairwiseReduce, MatchesExactSumOnIntegers) {
  // Integer-valued doubles add exactly, so cascade == sequential == n(n+1)/2.
  std::vector<double> v(1000);
  std::iota(v.begin(), v.end(), 1.0);
  EXPECT_EQ(pairwise_sum(v), 500500.0);
  EXPECT_EQ(pairwise_reduce(v.size(), [&](std::size_t i) { return v[i]; }),
            500500.0);
}

TEST(PairwiseReduce, FixedAssociationIsReproducible) {
  Rng rng{99};
  std::vector<double> v(10001);
  for (double& x : v) x = rng.uniform(-1.0, 1.0) * 1e6;
  const double a = pairwise_sum(v);
  const double b = pairwise_sum(v);
  EXPECT_EQ(std::memcmp(&a, &b, sizeof(double)), 0);
  // The tree depends only on n: summing through the generic accessor form
  // must produce the identical bits.
  const double c = pairwise_reduce(v.size(), [&](std::size_t i) { return v[i]; });
  EXPECT_EQ(std::memcmp(&a, &c, sizeof(double)), 0);
}

TEST(PairwiseReduce, HandlesSmallAndEmptyRanges) {
  EXPECT_EQ(pairwise_sum(std::span<const double>{}), 0.0);
  const std::vector<double> one{3.25};
  EXPECT_EQ(pairwise_sum(one), 3.25);
  const std::vector<double> nine{1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(pairwise_sum(nine), 45.0);
}

TEST(PairwiseReduce, BetterConditionedThanSequentialSum) {
  // Classic ill-conditioned case: one huge value followed by many tiny ones
  // that sequential summation absorbs to nothing. The cascade keeps the tiny
  // tail in its own subtree, so it survives. (Not a determinism property —
  // a sanity check that the tree actually cascades.)
  const std::size_t n = 1 << 16;
  std::vector<double> v(n, 1e-8);
  v[0] = 1e8;
  const double cascade = pairwise_sum(v);
  double sequential = 0.0;
  for (const double x : v) sequential += x;
  const double exact_tail = static_cast<double>(n - 1) * 1e-8;
  EXPECT_LT(std::abs(cascade - (1e8 + exact_tail)),
            std::abs(sequential - (1e8 + exact_tail)) + 1e-12);
}

/// The determinism keystone at the primitive level: a chunked computation
/// whose per-index values come from slot substreams produces bitwise
/// identical output at every lane count.
TEST(DeterministicParallel, SubstreamedWorkIsLaneCountInvariant) {
  const std::size_t n = 4096;
  const Rng master{2024};
  const auto run = [&](int lanes) {
    ThreadPool pool{lanes};
    std::vector<double> out(n);
    pool.parallel_for(n, [&](int, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        Rng slot = master.substream(1, i);
        out[i] = slot.gaussian(2.0) + slot.uniform();
      }
    });
    return out;
  };
  const std::vector<double> r1 = run(1);
  for (const int lanes : {2, 3, 8}) {
    const std::vector<double> r = run(lanes);
    ASSERT_EQ(std::memcmp(r.data(), r1.data(), n * sizeof(double)), 0)
        << "lanes=" << lanes;
    const double s1 = pairwise_sum(r1);
    const double s = pairwise_sum(r);
    ASSERT_EQ(std::memcmp(&s, &s1, sizeof(double)), 0);
  }
}

}  // namespace
}  // namespace srl
