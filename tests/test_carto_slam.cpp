#include "slam/carto_slam.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/angles.hpp"
#include "gridmap/track_generator.hpp"
#include "range/bresenham.hpp"
#include "sensor/lidar_sim.hpp"
#include "track/raceline.hpp"

namespace srl {
namespace {

/// Drive the oval centerline with a known twist, feeding odometry and scans
/// into the SLAM pipeline. Returns the final pose error.
struct SlamRun {
  Track track = TrackGenerator::oval(6.0, 2.0);
  LidarConfig lidar{};
  std::shared_ptr<const OccupancyGrid> map =
      std::make_shared<const OccupancyGrid>(track.grid);
  LidarSim sim{lidar,
               std::make_shared<BresenhamCaster>(map, lidar.max_range),
               LidarNoise{.sigma_range = 0.01, .dropout_prob = 0.0}};
  Raceline line{track.centerline};
  Rng rng{19};

  /// Drive `distance` meters along the centerline at `v` m/s.
  void drive(CartoSlam& slam, double distance, double v,
             double odom_noise = 0.0) {
    const double dt = 0.025;  // 40 Hz
    double s = 1.0;
    const Vec2 p0 = line.position(s);
    Pose2 truth{p0.x, p0.y, line.heading(s)};
    slam.initialize(truth);
    double traveled = 0.0;
    double t = 0.0;
    while (traveled < distance) {
      // Follow the centerline exactly: yaw rate = v * curvature.
      const double kappa = line.curvature(s);
      const Twist2 twist{v, 0.0, v * kappa};
      truth = integrate_twist(truth, twist, dt).normalized();
      s = line.wrap(s + v * dt);
      traveled += v * dt;
      t += dt;
      OdometryDelta odom;
      const double v_noisy = v * (1.0 + rng.gaussian(odom_noise));
      odom.delta = integrate_twist(Pose2{}, Twist2{v_noisy, 0.0, v * kappa}, dt);
      odom.v = v_noisy;
      odom.dt = dt;
      slam.on_odometry(odom);
      slam.on_scan(sim.scan(truth, twist, t, rng));
    }
    final_truth = truth;
  }

  Pose2 final_truth{};
};

TEST(CartoSlam, LocalSlamTracksShortSegment) {
  SlamRun run;
  CartoSlamOptions opt;
  CartoSlam slam{opt, run.lidar};
  run.drive(slam, 8.0, 2.5, 0.01);
  const Pose2 est = slam.pose();
  EXPECT_NEAR(est.x, run.final_truth.x, 0.25);
  EXPECT_NEAR(est.y, run.final_truth.y, 0.25);
  EXPECT_NEAR(angle_dist(est.theta, run.final_truth.theta), 0.0, 0.1);
  EXPECT_GT(slam.num_nodes(), 20);
  EXPECT_GE(slam.num_submaps(), 1);
}

TEST(CartoSlam, FullLapClosesLoopAndBuildsMap) {
  SlamRun run;
  CartoSlamOptions opt;
  CartoSlam slam{opt, run.lidar};
  const double lap = run.line.length();
  run.drive(slam, lap + 3.0, 2.5, 0.01);

  EXPECT_GT(slam.num_loop_closures(), 0);

  const OccupancyGrid built = slam.build_map();
  EXPECT_GT(built.count(OccupancyGrid::kFree), 1000U);
  EXPECT_GT(built.count(OccupancyGrid::kOccupied), 300U);

  // Map quality: centerline points must be free in the built map, walls
  // near them occupied. Allow a small alignment offset of the SLAM frame.
  int free_hits = 0;
  int checked = 0;
  for (std::size_t i = 0; i < run.track.centerline.size(); i += 5) {
    const Vec2& p = run.track.centerline[i];
    const GridIndex g = built.world_to_grid(p);
    if (!built.in_bounds(g.ix, g.iy)) continue;
    ++checked;
    if (built.at(g.ix, g.iy) == OccupancyGrid::kFree) ++free_hits;
  }
  ASSERT_GT(checked, 10);
  EXPECT_GT(static_cast<double>(free_hits) / checked, 0.9);
}

TEST(CartoSlam, SurvivesOdometryNoise) {
  SlamRun run;
  CartoSlamOptions opt;
  CartoSlam slam{opt, run.lidar};
  run.drive(slam, 10.0, 2.5, 0.05);  // 5% speed noise
  const Pose2 est = slam.pose();
  EXPECT_NEAR(est.x, run.final_truth.x, 0.35);
  EXPECT_NEAR(est.y, run.final_truth.y, 0.35);
}

TEST(CartoSlam, NodeMotionFilter) {
  SlamRun run;
  CartoSlamOptions opt;
  opt.node_min_translation = 0.5;
  CartoSlam slam{opt, run.lidar};
  run.drive(slam, 5.0, 2.0, 0.0);
  // 5 m at >=0.5 m per node -> at most ~11 nodes (+1 initial).
  EXPECT_LE(slam.num_nodes(), 13);
  EXPECT_GE(slam.num_nodes(), 8);
}

}  // namespace
}  // namespace srl
