#include "fault/pipeline.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>

#include "core/synpf.hpp"
#include "eval/dead_reckoning.hpp"
#include "eval/experiment.hpp"
#include "eval/fault_replay.hpp"
#include "fault/faulted_localizer.hpp"
#include "fault/injector.hpp"
#include "gridmap/track_generator.hpp"

namespace srl {
namespace {

/// One short clean drive on the oval, recorded once for every test here.
class FaultTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    track_ = std::make_unique<Track>(TrackGenerator::oval(8.0, 2.5));
    trace_ = std::make_unique<SensorTrace>();
    ExperimentConfig cfg;
    cfg.laps = 1;
    cfg.max_sim_time = 12.0;
    cfg.profile.scale = 0.5;
    ExperimentRunner runner{*track_, cfg};
    DeadReckoning driver;
    runner.run(driver, trace_.get());
    ASSERT_FALSE(trace_->scans().empty());
  }
  static void TearDownTestSuite() {
    trace_.reset();
    track_.reset();
  }

  static std::unique_ptr<Track> track_;
  static std::unique_ptr<SensorTrace> trace_;
};

std::unique_ptr<Track> FaultTest::track_;
std::unique_ptr<SensorTrace> FaultTest::trace_;

fault::FaultPipeline make_stack(std::uint64_t seed) {
  fault::FaultPipeline pipeline{seed, LidarConfig{}};
  EXPECT_TRUE(pipeline.add("odom_slip_ramp", 0.7));
  EXPECT_TRUE(pipeline.add("lidar_dropout", 0.5));
  return pipeline;
}

TEST(FaultProfile, EnvelopeShapesSeverity) {
  fault::FaultProfile ramp{0.8, 2.0, 4.0, -1.0};
  EXPECT_DOUBLE_EQ(ramp.envelope(0.0), 0.0);    // before t_start
  EXPECT_DOUBLE_EQ(ramp.envelope(4.0), 0.4);    // mid-ramp
  EXPECT_DOUBLE_EQ(ramp.envelope(6.0), 0.8);    // ramp finished
  EXPECT_DOUBLE_EQ(ramp.envelope(100.0), 0.8);  // no duration: forever

  fault::FaultProfile window{1.0, 5.0, 0.0, 2.0};
  EXPECT_DOUBLE_EQ(window.envelope(4.999), 0.0);
  EXPECT_DOUBLE_EQ(window.envelope(5.0), 1.0);  // step, no ramp
  EXPECT_DOUBLE_EQ(window.envelope(7.0), 1.0);
  EXPECT_DOUBLE_EQ(window.envelope(7.001), 0.0);  // window closed
}

TEST(FaultFactory, KnownNamesRoundTrip) {
  for (const std::string& name : fault::known_faults()) {
    const auto injector = fault::make_injector(name, 0.5);
    ASSERT_NE(injector, nullptr) << name;
  }
  EXPECT_EQ(fault::make_injector("not_a_fault", 0.5), nullptr);

  fault::FaultPipeline pipeline;
  EXPECT_FALSE(pipeline.add("not_a_fault", 0.5));
  EXPECT_TRUE(pipeline.empty());
  EXPECT_EQ(pipeline.describe(), "none");
  EXPECT_TRUE(pipeline.add("odom_slip_ramp", 0.5));
  EXPECT_TRUE(pipeline.add("blackout", 1.0));
  EXPECT_EQ(pipeline.describe(), "odom_slip+blackout");
}

TEST_F(FaultTest, CorruptionIsDeterministic) {
  const SensorTrace a = corrupt_trace(make_stack(42), *trace_);
  const SensorTrace b = corrupt_trace(make_stack(42), *trace_);
  EXPECT_EQ(trace_hash(a), trace_hash(b));
  // The corruption actually did something...
  EXPECT_NE(trace_hash(a), trace_hash(*trace_));
  // ...and is keyed by the seed.
  EXPECT_NE(trace_hash(a), trace_hash(corrupt_trace(make_stack(43), *trace_)));
}

TEST_F(FaultTest, TruthIsNeverCorrupted) {
  const SensorTrace corrupted = corrupt_trace(make_stack(42), *trace_);
  ASSERT_EQ(corrupted.scans().size(), trace_->scans().size());
  for (std::size_t i = 0; i < corrupted.scans().size(); ++i) {
    const Pose2& truth = trace_->scans()[i].truth;
    const Pose2& kept = corrupted.scans()[i].truth;
    EXPECT_EQ(std::memcmp(&truth.x, &kept.x, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&truth.y, &kept.y, sizeof(double)), 0);
    EXPECT_EQ(std::memcmp(&truth.theta, &kept.theta, sizeof(double)), 0);
  }
}

TEST_F(FaultTest, SeverityZeroIsBitwiseNoOp) {
  // Every known fault at severity 0, stacked: not a single byte may move.
  fault::FaultPipeline pipeline{42, LidarConfig{}};
  for (const std::string& name : fault::known_faults()) {
    ASSERT_TRUE(pipeline.add(name, 0.0));
  }
  const SensorTrace corrupted = corrupt_trace(pipeline, *trace_);
  EXPECT_EQ(trace_hash(corrupted), trace_hash(*trace_));
}

TEST_F(FaultTest, StackingOrderIsWellDefined) {
  // noise-then-blackout wipes the noise inside the window; blackout-then-
  // noise perturbs the "no hit" returns. Different scenarios, each
  // individually reproducible.
  auto build = [](const char* first, const char* second) {
    fault::FaultPipeline pipeline{7, LidarConfig{}};
    EXPECT_TRUE(pipeline.add(first, 1.0));
    EXPECT_TRUE(pipeline.add(second, 1.0));
    return pipeline;
  };
  const std::uint64_t noise_first =
      trace_hash(corrupt_trace(build("lidar_noise", "blackout"), *trace_));
  const std::uint64_t blackout_first =
      trace_hash(corrupt_trace(build("blackout", "lidar_noise"), *trace_));
  EXPECT_EQ(noise_first,
            trace_hash(corrupt_trace(build("lidar_noise", "blackout"), *trace_)));
  EXPECT_EQ(blackout_first,
            trace_hash(corrupt_trace(build("blackout", "lidar_noise"), *trace_)));
  EXPECT_NE(noise_first, blackout_first);
}

TEST_F(FaultTest, CorruptedReplayIsThreadCountInvariant) {
  const SensorTrace corrupted = corrupt_trace(make_stack(42), *trace_);
  auto map = std::make_shared<const OccupancyGrid>(track_->grid);

  auto replay_with_threads = [&](int threads) {
    SynPfConfig cfg;
    cfg.filter.n_particles = 300;
    cfg.filter.n_threads = threads;
    SynPf filter{cfg, map, LidarConfig{}};
    return corrupted.replay(filter);
  };
  const auto serial = replay_with_threads(1);
  const auto pooled = replay_with_threads(8);
  ASSERT_EQ(serial.estimates.size(), pooled.estimates.size());
  for (std::size_t i = 0; i < serial.estimates.size(); ++i) {
    EXPECT_EQ(std::memcmp(&serial.estimates[i].x, &pooled.estimates[i].x,
                          sizeof(double)), 0) << "estimate " << i;
    EXPECT_EQ(std::memcmp(&serial.estimates[i].theta, &pooled.estimates[i].theta,
                          sizeof(double)), 0) << "estimate " << i;
  }
  EXPECT_EQ(std::memcmp(&serial.pose_rmse_m, &pooled.pose_rmse_m,
                        sizeof(double)), 0);
}

// ---------------------------------------------------------------------------
// Envelope algebra — property-based severity/shape checks
// ---------------------------------------------------------------------------

/// Aggregate corruption magnitude: total absolute change the pipeline made
/// to the stream, summed over every odometry component, every beam, and
/// every scan timestamp. Zero iff the corruption was a bitwise no-op.
double corruption_magnitude(const SensorTrace& clean, const SensorTrace& bad) {
  EXPECT_EQ(clean.odometry().size(), bad.odometry().size());
  EXPECT_EQ(clean.scans().size(), bad.scans().size());
  double magnitude = 0.0;
  for (std::size_t i = 0; i < clean.odometry().size(); ++i) {
    const OdometryDelta& a = clean.odometry()[i].odom;
    const OdometryDelta& b = bad.odometry()[i].odom;
    magnitude += std::abs(a.delta.x - b.delta.x) +
                 std::abs(a.delta.y - b.delta.y) +
                 std::abs(a.delta.theta - b.delta.theta) + std::abs(a.v - b.v);
  }
  for (std::size_t i = 0; i < clean.scans().size(); ++i) {
    const LaserScan& a = clean.scans()[i].scan;
    const LaserScan& b = bad.scans()[i].scan;
    magnitude += std::abs(a.t - b.t);
    EXPECT_EQ(a.ranges.size(), b.ranges.size());
    for (std::size_t j = 0; j < a.ranges.size(); ++j) {
      magnitude += std::abs(static_cast<double>(a.ranges[j]) -
                            static_cast<double>(b.ranges[j]));
    }
  }
  return magnitude;
}

TEST_F(FaultTest, CorruptionMagnitudeIsMonotoneInSeverity) {
  // The property the frontier bisector leans on: for every injector, under
  // common random numbers (draws keyed by the event, not the draw history),
  // dialing severity up never makes the stream *less* corrupted. Checked
  // for all eight canonical faults across several pipeline seeds.
  const double severities[] = {0.0, 0.25, 0.5, 1.0};
  for (const std::string& name : fault::known_faults()) {
    if (name == "none") continue;
    // compute_pressure is the one axis that corrupts *no* sensor bytes by
    // contract (it squeezes the governor's budget instead); its bitwise
    // invariance is pinned by ComputePressureLeavesStreamUntouched below.
    if (name == "compute_pressure") continue;
    for (const std::uint64_t seed : {11ULL, 42ULL, 0x7a017ULL}) {
      double previous = -1.0;
      for (const double severity : severities) {
        fault::FaultPipeline pipeline{seed, LidarConfig{}};
        ASSERT_TRUE(pipeline.add(name, severity));
        const double magnitude =
            corruption_magnitude(*trace_, corrupt_trace(pipeline, *trace_));
        EXPECT_GE(magnitude, previous)
            << name << " seed=" << seed << " severity=" << severity;
        previous = magnitude;
      }
      // Severity 0 is exactly zero; full severity corrupts for real.
      EXPECT_GT(previous, 0.0) << name << " seed=" << seed;
    }
  }
}

TEST_F(FaultTest, ComputePressureLeavesStreamUntouched) {
  // The 9th axis's defining property: at ANY severity the corrupted trace
  // is bitwise identical to the clean one. compute_pressure acts on the
  // governor's latency budget (polled through FaultPipeline::stage()),
  // never on the sensor bytes — so trace fingerprints are stable across
  // the whole severity range, and severity 0 is trivially a no-op.
  for (const double severity : {0.0, 0.5, 1.0}) {
    fault::FaultPipeline pipeline{0x7a017ULL, LidarConfig{}};
    ASSERT_TRUE(pipeline.add("compute_pressure", severity));
    EXPECT_EQ(trace_hash(corrupt_trace(pipeline, *trace_)),
              trace_hash(*trace_))
        << "severity=" << severity;
  }
}

TEST_F(FaultTest, ProfileFactoryMatchesSeverityOnlyFactory) {
  // The profile overload with each fault's canonical envelope must be the
  // same corruption as the severity-only factory — one vocabulary, two
  // spellings.
  auto canonical_profile = [](const std::string& name, double severity) {
    if (name == "odom_slip_ramp")
      return fault::FaultProfile{severity, 0.0, 10.0, -1.0};
    if (name == "blackout")
      return fault::FaultProfile{severity > 0.0 ? 1.0 : 0.0, 5.0, 0.0,
                                 2.0 * severity};
    if (name == "compute_pressure")
      return fault::FaultProfile{severity, 2.0, 6.0, -1.0};
    return fault::FaultProfile{severity, 0.0, 0.0, -1.0};
  };
  for (const std::string& name : fault::known_faults()) {
    fault::FaultPipeline by_severity{42, LidarConfig{}};
    ASSERT_TRUE(by_severity.add(name, 0.7));
    fault::FaultPipeline by_profile{42, LidarConfig{}};
    auto injector = fault::make_injector(name, canonical_profile(name, 0.7));
    ASSERT_NE(injector, nullptr) << name;
    by_profile.add(std::move(injector));
    EXPECT_EQ(trace_hash(corrupt_trace(by_severity, *trace_)),
              trace_hash(corrupt_trace(by_profile, *trace_)))
        << name;
  }
  EXPECT_EQ(fault::make_injector("not_a_fault", fault::FaultProfile{}),
            nullptr);
}

TEST_F(FaultTest, ZeroWidthWindowTouchesNothing) {
  // duration == 0: the envelope is non-zero only at t == t_start exactly.
  // No recorded event lands on that measure-zero instant, so the corruption
  // must be a bitwise no-op — the frontier's duration-bisected faults
  // (blackout) collapse to clean runs as the window shrinks to nothing.
  for (const std::string& name : fault::known_faults()) {
    if (name == "none") continue;
    fault::FaultPipeline pipeline{42, LidarConfig{}};
    auto injector = fault::make_injector(
        name, fault::FaultProfile{1.0, 0.12345, 0.0, 0.0});
    ASSERT_NE(injector, nullptr) << name;
    pipeline.add(std::move(injector));
    EXPECT_EQ(trace_hash(corrupt_trace(pipeline, *trace_)),
              trace_hash(*trace_))
        << name;
  }
  // The envelope itself is still well-defined at the instant.
  const fault::FaultProfile instant{1.0, 2.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(instant.envelope(2.0), 1.0);
  EXPECT_DOUBLE_EQ(instant.envelope(1.999), 0.0);
  EXPECT_DOUBLE_EQ(instant.envelope(2.001), 0.0);
}

TEST_F(FaultTest, RampLongerThanRunStaysPartial) {
  // A ramp far longer than the recorded stream: the envelope never reaches
  // its plateau, so the corruption is strictly weaker than the step version
  // of the same fault — but still deterministic and non-trivial.
  const double run_length = trace_->duration();
  ASSERT_GT(run_length, 0.0);
  const fault::FaultProfile slow{1.0, 0.0, 10.0 * run_length, -1.0};
  EXPECT_LT(slow.envelope(run_length), 0.11);
  EXPECT_GT(slow.envelope(run_length), 0.0);

  fault::FaultPipeline ramped{42, LidarConfig{}};
  ramped.add(fault::make_injector("odom_scale", slow));
  fault::FaultPipeline step{42, LidarConfig{}};
  step.add(fault::make_injector("odom_scale",
                                fault::FaultProfile{1.0, 0.0, 0.0, -1.0}));
  const double partial =
      corruption_magnitude(*trace_, corrupt_trace(ramped, *trace_));
  const double full =
      corruption_magnitude(*trace_, corrupt_trace(step, *trace_));
  EXPECT_GT(partial, 0.0);
  EXPECT_LT(partial, full);
  // Same pipeline, same trace: the partial ramp replays to the same bytes.
  fault::FaultPipeline again{42, LidarConfig{}};
  again.add(fault::make_injector("odom_scale", slow));
  EXPECT_EQ(trace_hash(corrupt_trace(ramped, *trace_)),
            trace_hash(corrupt_trace(again, *trace_)));
}

TEST_F(FaultTest, WindowBoundsCorruptionToTheWindow) {
  // Events outside [t_start, t_start + duration] are bitwise untouched;
  // at least something inside the window moves.
  const double run_length = trace_->duration();
  const double t_start = run_length * 0.3;
  const double duration = run_length * 0.3;
  fault::FaultPipeline pipeline{42, LidarConfig{}};
  pipeline.add(fault::make_injector(
      "lidar_noise", fault::FaultProfile{1.0, t_start, 0.0, duration}));
  const SensorTrace corrupted = corrupt_trace(pipeline, *trace_);

  const double t0 = trace_->scans().front().scan.t;
  bool touched_inside = false;
  for (std::size_t i = 0; i < trace_->scans().size(); ++i) {
    const LaserScan& clean = trace_->scans()[i].scan;
    const LaserScan& bad = corrupted.scans()[i].scan;
    const double t = clean.t - t0;  // stream time, as the pipeline sees it
    bool identical = clean.ranges.size() == bad.ranges.size();
    for (std::size_t j = 0; identical && j < clean.ranges.size(); ++j) {
      identical = std::memcmp(&clean.ranges[j], &bad.ranges[j],
                              sizeof(float)) == 0;
    }
    if (t < t_start || t > t_start + duration) {
      EXPECT_TRUE(identical) << "scan " << i << " at stream t=" << t
                             << " is outside the fault window";
    } else if (!identical) {
      touched_inside = true;
    }
  }
  EXPECT_TRUE(touched_inside);
}

TEST_F(FaultTest, FaultedLocalizerClosedLoopIsDeterministic) {
  auto run_once = [&] {
    ExperimentConfig cfg;
    cfg.laps = 1;
    cfg.max_sim_time = 8.0;
    cfg.profile.scale = 0.5;
    auto map = std::make_shared<const OccupancyGrid>(track_->grid);
    SynPfConfig pf_cfg;
    pf_cfg.filter.n_particles = 300;
    pf_cfg.filter.n_threads = 1;
    SynPf inner{pf_cfg, map, cfg.lidar};
    fault::FaultPipeline pipeline{42, cfg.lidar};
    pipeline.add("odom_slip_ramp", 0.8);
    fault::FaultedLocalizer faulted{inner, pipeline};
    EXPECT_EQ(faulted.name(), inner.name() + "+odom_slip");
    ExperimentRunner runner{*track_, cfg};
    return runner.run(faulted);
  };
  const ExperimentResult a = run_once();
  const ExperimentResult b = run_once();
  EXPECT_EQ(std::memcmp(&a.lateral_mean_cm, &b.lateral_mean_cm,
                        sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&a.pose_rmse_m, &b.pose_rmse_m, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&a.scan_alignment, &b.scan_alignment,
                        sizeof(double)), 0);
  EXPECT_EQ(a.crashed, b.crashed);
}

}  // namespace
}  // namespace srl
