#include "slam/probability_grid.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "gridmap/track_generator.hpp"

namespace srl {
namespace {

TEST(ProbabilityGrid, UnknownByDefault) {
  ProbabilityGrid g{10, 10, 0.05, Vec2{}};
  EXPECT_FALSE(g.known(3, 3));
  EXPECT_FLOAT_EQ(g.probability(3, 3), ProbabilityGrid::kUnknownMatchP);
  EXPECT_EQ(g.known_cells(), 0U);
}

TEST(ProbabilityGrid, HitRaisesMissLowers) {
  ProbabilityGrid g{10, 10, 0.05, Vec2{}};
  g.update_hit(2, 2);
  EXPECT_TRUE(g.known(2, 2));
  EXPECT_GT(g.probability(2, 2), 0.5F);
  g.update_miss(3, 3);
  EXPECT_LT(g.probability(3, 3), 0.5F);
}

TEST(ProbabilityGrid, RepeatedHitsSaturate) {
  ProbabilityGrid g{4, 4, 0.05, Vec2{}};
  for (int i = 0; i < 200; ++i) g.update_hit(1, 1);
  const float p = g.probability(1, 1);
  EXPECT_GT(p, 0.9F);
  EXPECT_LE(p, 1.0F);
  for (int i = 0; i < 400; ++i) g.update_miss(1, 1);
  EXPECT_LT(g.probability(1, 1), 0.1F);
  EXPECT_GT(g.probability(1, 1), 0.0F);
}

TEST(ProbabilityGrid, HitBeatsMissPerScan) {
  // A cell grazed and then hit within one scan nets positive evidence.
  ProbabilityGrid g{40, 3, 0.1, Vec2{}};
  const Pose2 sensor{0.05, 0.15, 0.0};
  const Vec2 hit{2.05, 0.15};
  g.insert_scan(sensor, std::vector<Vec2>{hit}, {});
  const GridIndex h = g.world_to_grid(hit);
  EXPECT_GT(g.probability(h.ix, h.iy), 0.5F);
}

TEST(ProbabilityGrid, InsertScanTracesMisses) {
  ProbabilityGrid g{40, 3, 0.1, Vec2{}};
  const Pose2 sensor{0.05, 0.15, 0.0};
  const Vec2 hit{3.05, 0.15};
  g.insert_scan(sensor, std::vector<Vec2>{hit}, {});
  // Cells strictly between sensor and hit are misses.
  for (double x = 0.35; x < 2.8; x += 0.3) {
    const GridIndex c = g.world_to_grid({x, 0.15});
    EXPECT_TRUE(g.known(c.ix, c.iy)) << x;
    EXPECT_LT(g.probability(c.ix, c.iy), 0.5F) << x;
  }
}

TEST(ProbabilityGrid, PassthroughIsAllMisses) {
  ProbabilityGrid g{40, 3, 0.1, Vec2{}};
  const Pose2 sensor{0.05, 0.15, 0.0};
  const Vec2 end{3.05, 0.15};
  g.insert_scan(sensor, {}, std::vector<Vec2>{end});
  const GridIndex e = g.world_to_grid(end);
  EXPECT_LT(g.probability(e.ix, e.iy), 0.5F);
}

TEST(ProbabilityGrid, InterpolationSmooth) {
  ProbabilityGrid g{10, 10, 0.1, Vec2{}};
  for (int i = 0; i < 50; ++i) g.update_hit(5, 5);
  const Vec2 peak = g.grid_to_world(5, 5);
  const double at_peak = g.interpolate(peak);
  const double off = g.interpolate(peak + Vec2{0.05, 0.0});
  EXPECT_GT(at_peak, off);
  EXPECT_GT(off, g.interpolate(peak + Vec2{0.1, 0.0}) - 1e-9);
}

TEST(LikelihoodField, PeaksAtWallsDecaysAway) {
  const Track track = TrackGenerator::oval(5.0, 1.8);
  const ProbabilityGrid field =
      ProbabilityGrid::likelihood_field(track.grid, 0.2, 0.05, 0.95);
  // Find a wall cell and a corridor-center cell.
  double wall_p = 0.0;
  double free_p = 1.0;
  for (int iy = 0; iy < track.grid.height(); ++iy) {
    for (int ix = 0; ix < track.grid.width(); ++ix) {
      if (track.grid.at(ix, iy) == OccupancyGrid::kOccupied) {
        wall_p = std::max(wall_p, static_cast<double>(field.probability(ix, iy)));
      }
    }
  }
  const Vec2 center = track.centerline.front();
  free_p = field.interpolate(center);
  EXPECT_GT(wall_p, 0.9);
  EXPECT_LT(free_p, 0.2);
}

TEST(LikelihoodField, UnknownStaysLow) {
  const Track track = TrackGenerator::oval(5.0, 1.8);
  const ProbabilityGrid field =
      ProbabilityGrid::likelihood_field(track.grid, 0.2, 0.05, 0.95);
  // A far-corner cell is unknown in the track map.
  EXPECT_EQ(track.grid.at(0, 0), OccupancyGrid::kUnknown);
  EXPECT_NEAR(field.probability(0, 0), 0.05F, 1e-5);
}

TEST(ProbabilityGrid, ToOccupancyThresholds) {
  ProbabilityGrid g{4, 1, 0.1, Vec2{}};
  for (int i = 0; i < 60; ++i) g.update_hit(0, 0);
  for (int i = 0; i < 60; ++i) g.update_miss(1, 0);
  g.update_hit(2, 0);
  g.update_miss(2, 0);  // stays near 0.5 -> stays unclassified
  const OccupancyGrid occ = g.to_occupancy();
  EXPECT_EQ(occ.at(0, 0), OccupancyGrid::kOccupied);
  EXPECT_EQ(occ.at(1, 0), OccupancyGrid::kFree);
  EXPECT_EQ(occ.at(2, 0), OccupancyGrid::kUnknown);
  EXPECT_EQ(occ.at(3, 0), OccupancyGrid::kUnknown);  // never touched
}

TEST(ProbabilityGrid, OutOfBoundsPessimistic) {
  ProbabilityGrid g{4, 4, 0.1, Vec2{}};
  EXPECT_LT(g.probability(-1, 0), 0.2F);
  EXPECT_LT(g.interpolate({-5.0, -5.0}), 0.2);
}

}  // namespace
}  // namespace srl
