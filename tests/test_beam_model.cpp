#include "sensor/beam_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace srl {
namespace {

TEST(BeamModel, PeaksAtExpectedRange) {
  const BeamModel model;
  const float e = 5.0F;
  const double at_peak = model.prob(e, e);
  EXPECT_GT(at_peak, model.prob(e + 1.0F, e));
  EXPECT_GT(at_peak, model.prob(e - 1.0F, e));
  EXPECT_GT(at_peak, model.prob(e + 0.5F, e));
}

TEST(BeamModel, TableMatchesExactOnGridPoints) {
  BeamModelParams params;
  const BeamModel model{params};
  for (double z = 0.0; z <= params.max_range; z += 0.5) {
    for (double e = 0.0; e <= params.max_range; e += 0.5) {
      const double exact = std::max(model.prob_exact(z, e), 1e-12);
      EXPECT_NEAR(model.log_prob(static_cast<float>(z),
                                 static_cast<float>(e)),
                  std::log(exact), 1e-9)
          << "z=" << z << " e=" << e;
    }
  }
}

TEST(BeamModel, ShortReturnsMoreLikelyThanLong) {
  // The z_short component makes measuring *short* of the expected range
  // (unexpected obstacle) more likely than measuring long.
  const BeamModel model;
  EXPECT_GT(model.prob(3.0F, 6.0F), model.prob(9.0F, 6.0F));
}

TEST(BeamModel, MaxRangeSpike) {
  const BeamModel model;
  const auto max_r = static_cast<float>(model.params().max_range);
  // A max-range reading with a short expectation: only z_max and z_rand
  // contribute, yet the probability stays clearly above the random floor.
  EXPECT_GT(model.prob(max_r, 3.0F),
            1.1 * model.params().z_rand / model.params().max_range);
}

TEST(BeamModel, NeverZero) {
  const BeamModel model;
  // The uniform floor keeps every combination strictly positive, which is
  // what keeps particle weights finite.
  EXPECT_GT(model.prob(0.0F, 12.0F), 0.0);
  EXPECT_GT(model.prob(12.0F, 0.0F), 0.0);
  EXPECT_TRUE(std::isfinite(model.log_prob(12.0F, 0.0F)));
}

TEST(BeamModel, ClampsOutOfRangeInputs) {
  const BeamModel model;
  EXPECT_DOUBLE_EQ(model.log_prob(-1.0F, 5.0F), model.log_prob(0.0F, 5.0F));
  EXPECT_DOUBLE_EQ(model.log_prob(50.0F, 5.0F), model.log_prob(12.0F, 5.0F));
}

TEST(BeamModel, NarrowSigmaSharpensPeak) {
  BeamModelParams wide;
  wide.sigma_hit = 0.3;
  BeamModelParams narrow;
  narrow.sigma_hit = 0.05;
  const BeamModel w{wide};
  const BeamModel n{narrow};
  const double ratio_w = w.prob(5.0F, 5.0F) / w.prob(5.4F, 5.0F);
  const double ratio_n = n.prob(5.0F, 5.0F) / n.prob(5.4F, 5.0F);
  EXPECT_GT(ratio_n, ratio_w);
}

TEST(BeamModel, ApproximatelyNormalized) {
  // Integral over measured z for a mid-range expectation should be near 1
  // (mixture components are individually normalized up to table effects).
  const BeamModel model;
  const double dz = 0.01;
  double integral = 0.0;
  for (double z = 0.0; z <= model.params().max_range; z += dz) {
    integral += model.prob_exact(z, 6.0) * dz;
  }
  EXPECT_NEAR(integral, 1.0, 0.15);
}

TEST(BeamModel, TableDimension) {
  BeamModelParams params;
  params.max_range = 10.0;
  params.table_resolution = 0.1;
  const BeamModel model{params};
  EXPECT_EQ(model.table_dim(), 101);
}

}  // namespace
}  // namespace srl
