#include "core/synpf.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/angles.hpp"
#include "gridmap/track_generator.hpp"
#include "range/ray_marching.hpp"
#include "sensor/lidar_sim.hpp"

namespace srl {
namespace {

struct Fixture {
  Track track = TrackGenerator::oval(8.0, 2.5);
  std::shared_ptr<const OccupancyGrid> map =
      std::make_shared<const OccupancyGrid>(track.grid);
  LidarConfig lidar{};
  std::shared_ptr<const RangeMethod> truth =
      std::make_shared<RayMarching>(map, lidar.max_range);
  LidarSim sim{lidar, truth, LidarNoise{.sigma_range = 0.01,
                                        .dropout_prob = 0.0}};
  Rng rng{17};

  SynPf make(SynPfConfig cfg = {}) {
    cfg.filter.n_particles = 800;
    // CDDT builds fast; the LUT variant is covered separately.
    cfg.range = RangeMethodKind::kCddt;
    return SynPf{cfg, map, lidar};
  }

  Pose2 start() const {
    return Pose2{-4.0 + 0.0, -2.5, 0.0};  // on the bottom straight
  }
};

TEST(SynPf, StationaryUpdatesStayPut) {
  Fixture f;
  SynPf pf = f.make();
  const Pose2 truth = f.start();
  pf.initialize(truth);
  for (int i = 0; i < 5; ++i) {
    OdometryDelta odom;
    odom.dt = 0.025;
    pf.on_odometry(odom);
    pf.on_scan(f.sim.scan(truth, 0.025 * i, f.rng));
  }
  const Pose2 est = pf.pose();
  EXPECT_NEAR(est.x, truth.x, 0.15);
  EXPECT_NEAR(est.y, truth.y, 0.15);
  EXPECT_NEAR(angle_dist(est.theta, truth.theta), 0.0, 0.08);
}

TEST(SynPf, TracksDrivenSegment) {
  Fixture f;
  SynPf pf = f.make();
  Pose2 truth = f.start();
  pf.initialize(truth);
  const Twist2 twist{3.0, 0.0, 0.0};
  double t = 0.0;
  for (int step = 0; step < 80; ++step) {
    const double dt = 0.01;
    truth = integrate_twist(truth, twist, dt);
    t += dt;
    OdometryDelta odom;
    odom.delta = integrate_twist(Pose2{}, twist, dt);
    odom.v = twist.vx;
    odom.dt = dt;
    pf.on_odometry(odom);
    if (step % 3 == 2) {
      pf.on_scan(f.sim.scan(truth, twist, t, f.rng));
    }
  }
  const Pose2 est = pf.pose();
  EXPECT_NEAR(est.x, truth.x, 0.25);
  EXPECT_NEAR(est.y, truth.y, 0.2);
}

TEST(SynPf, SurvivesCorruptedOdometry) {
  // Over-reporting odometry (wheel slip) must not break the filter.
  Fixture f;
  SynPf pf = f.make();
  Pose2 truth = f.start();
  pf.initialize(truth);
  const Twist2 twist{3.0, 0.0, 0.0};
  double t = 0.0;
  for (int step = 0; step < 80; ++step) {
    const double dt = 0.01;
    truth = integrate_twist(truth, twist, dt);
    t += dt;
    OdometryDelta odom;
    // 25% longitudinal over-report.
    odom.delta = integrate_twist(Pose2{}, Twist2{3.75, 0.0, 0.0}, dt);
    odom.v = 3.75;
    odom.dt = dt;
    pf.on_odometry(odom);
    if (step % 3 == 2) pf.on_scan(f.sim.scan(truth, twist, t, f.rng));
  }
  const Pose2 est = pf.pose();
  EXPECT_NEAR(est.x, truth.x, 0.35);
  EXPECT_NEAR(est.y, truth.y, 0.25);
}

TEST(SynPf, PoseDeadReckonsBetweenScans) {
  Fixture f;
  SynPf pf = f.make();
  pf.initialize(f.start());
  OdometryDelta odom;
  odom.delta = Pose2{0.3, 0.0, 0.0};
  odom.v = 3.0;
  odom.dt = 0.1;
  const Pose2 before = pf.pose();
  pf.on_odometry(odom);
  const Pose2 after = pf.pose();
  EXPECT_NEAR(after.x - before.x, 0.3, 1e-9);
}

TEST(SynPf, LatencyAccounting) {
  Fixture f;
  SynPf pf = f.make();
  const Pose2 truth = f.start();
  pf.initialize(truth);
  EXPECT_DOUBLE_EQ(pf.mean_scan_update_ms(), 0.0);
  pf.on_scan(f.sim.scan(truth, 0.0, f.rng));
  EXPECT_GT(pf.mean_scan_update_ms(), 0.0);
  EXPECT_GT(pf.total_busy_s(), 0.0);
  EXPECT_EQ(pf.name(), "SynPF");
}

TEST(SynPf, AblationConfigsConstructAndRun) {
  Fixture f;
  for (const PfMotionKind motion :
       {PfMotionKind::kTum, PfMotionKind::kDiffDrive}) {
    for (const PfLayoutKind layout :
         {PfLayoutKind::kBoxed, PfLayoutKind::kUniform}) {
      SynPfConfig cfg;
      cfg.motion = motion;
      cfg.layout = layout;
      SynPf pf = f.make(cfg);
      const Pose2 truth = f.start();
      pf.initialize(truth);
      pf.on_scan(f.sim.scan(truth, 0.0, f.rng));
      EXPECT_NEAR(pf.pose().x, truth.x, 0.3);
    }
  }
}

TEST(SynPf, LutBackendWorks) {
  Fixture f;
  SynPfConfig cfg;
  cfg.range = RangeMethodKind::kLut;
  cfg.range_options.lut_theta_bins = 90;
  cfg.range_options.lut_stride = 2;
  cfg.filter.n_particles = 600;
  SynPf pf{cfg, f.map, f.lidar};
  const Pose2 truth = f.start();
  pf.initialize(truth);
  for (int i = 0; i < 4; ++i) {
    pf.on_scan(f.sim.scan(truth, 0.025 * i, f.rng));
  }
  EXPECT_NEAR(pf.pose().x, truth.x, 0.2);
  EXPECT_NEAR(pf.pose().y, truth.y, 0.2);
}

TEST(SynPf, ReinitializeResets) {
  Fixture f;
  SynPf pf = f.make();
  pf.initialize(f.start());
  pf.on_scan(f.sim.scan(f.start(), 0.0, f.rng));
  const Pose2 elsewhere{4.0, 2.5, kPi};
  pf.initialize(elsewhere);
  EXPECT_NEAR(pf.pose().x, elsewhere.x, 1e-9);
  EXPECT_NEAR(angle_dist(pf.pose().theta, elsewhere.theta), 0.0, 1e-9);
}

}  // namespace
}  // namespace srl
