#include "gridmap/occupancy_grid.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace srl {
namespace {

TEST(OccupancyGrid, ConstructionAndFill) {
  OccupancyGrid g{10, 5, 0.1, Vec2{1.0, 2.0}, OccupancyGrid::kFree};
  EXPECT_EQ(g.width(), 10);
  EXPECT_EQ(g.height(), 5);
  EXPECT_EQ(g.size(), 50U);
  EXPECT_EQ(g.count(OccupancyGrid::kFree), 50U);
  EXPECT_DOUBLE_EQ(g.world_width(), 1.0);
  EXPECT_DOUBLE_EQ(g.world_height(), 0.5);
}

TEST(OccupancyGrid, WorldGridRoundTrip) {
  OccupancyGrid g{20, 20, 0.05, Vec2{-1.0, -1.0}};
  for (int iy = 0; iy < g.height(); iy += 3) {
    for (int ix = 0; ix < g.width(); ix += 3) {
      const Vec2 c = g.grid_to_world(ix, iy);
      const GridIndex back = g.world_to_grid(c);
      EXPECT_EQ(back.ix, ix);
      EXPECT_EQ(back.iy, iy);
    }
  }
}

TEST(OccupancyGrid, WorldToGridFloors) {
  OccupancyGrid g{10, 10, 1.0, Vec2{0.0, 0.0}};
  EXPECT_EQ(g.world_to_grid({0.999, 0.0}).ix, 0);
  EXPECT_EQ(g.world_to_grid({1.0, 0.0}).ix, 1);
  EXPECT_EQ(g.world_to_grid({-0.001, 0.0}).ix, -1);
}

TEST(OccupancyGrid, BoundsChecks) {
  OccupancyGrid g{4, 3, 0.1, Vec2{}};
  EXPECT_TRUE(g.in_bounds(0, 0));
  EXPECT_TRUE(g.in_bounds(3, 2));
  EXPECT_FALSE(g.in_bounds(4, 0));
  EXPECT_FALSE(g.in_bounds(0, 3));
  EXPECT_FALSE(g.in_bounds(-1, 0));
}

TEST(OccupancyGrid, OutOfBoundsReadsOccupied) {
  OccupancyGrid g{2, 2, 0.1, Vec2{}, OccupancyGrid::kFree};
  EXPECT_EQ(g.at_or_occupied(-1, 0), OccupancyGrid::kOccupied);
  EXPECT_EQ(g.at_or_occupied(0, 5), OccupancyGrid::kOccupied);
  EXPECT_TRUE(g.blocks_ray(-1, -1));
  EXPECT_FALSE(g.is_free(2, 2));
}

TEST(OccupancyGrid, RaySemantics) {
  OccupancyGrid g{3, 1, 0.1, Vec2{}};
  g.at(0, 0) = OccupancyGrid::kFree;
  g.at(1, 0) = OccupancyGrid::kOccupied;
  g.at(2, 0) = OccupancyGrid::kUnknown;
  EXPECT_FALSE(g.blocks_ray(0, 0));
  EXPECT_TRUE(g.blocks_ray(1, 0));
  EXPECT_TRUE(g.blocks_ray(2, 0));  // unknown blocks
  EXPECT_TRUE(g.is_occupied(1, 0));
  EXPECT_FALSE(g.is_occupied(2, 0));  // unknown is not "occupied"
}

TEST(OccupancyGrid, WorldQueries) {
  OccupancyGrid g{10, 10, 0.5, Vec2{0.0, 0.0}, OccupancyGrid::kFree};
  g.at(2, 3) = OccupancyGrid::kOccupied;
  EXPECT_TRUE(g.is_occupied_at({1.25, 1.75}));
  EXPECT_TRUE(g.is_free_at({0.25, 0.25}));
  EXPECT_FALSE(g.is_free_at({-1.0, 0.0}));
}

TEST(OccupancyGrid, CountByValue) {
  OccupancyGrid g{4, 4, 0.1, Vec2{}, OccupancyGrid::kUnknown};
  g.at(0, 0) = OccupancyGrid::kFree;
  g.at(1, 1) = OccupancyGrid::kOccupied;
  g.at(2, 2) = OccupancyGrid::kOccupied;
  EXPECT_EQ(g.count(OccupancyGrid::kFree), 1U);
  EXPECT_EQ(g.count(OccupancyGrid::kOccupied), 2U);
  EXPECT_EQ(g.count(OccupancyGrid::kUnknown), 13U);
}

TEST(OccupancyGrid, DiagonalBound) {
  OccupancyGrid g{30, 40, 0.1, Vec2{}};
  EXPECT_NEAR(g.diagonal(), 5.0, 1e-12);
}

TEST(FloorToCell, MatchesFloorInRange) {
  EXPECT_EQ(floor_to_cell(0.0), 0);
  EXPECT_EQ(floor_to_cell(0.999), 0);
  EXPECT_EQ(floor_to_cell(-0.001), -1);
  EXPECT_EQ(floor_to_cell(123.7), 123);
  EXPECT_EQ(floor_to_cell(-123.7), -124);
}

TEST(FloorToCell, ClampsExtremesWithoutUb) {
  // Regression: a plain static_cast<int>(huge double) is UB (UBSan
  // float-cast-overflow). Extremes now clamp to +-1e9 sentinels, which every
  // map bounds check rejects.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(floor_to_cell(1e18), 1000000000);
  EXPECT_EQ(floor_to_cell(-1e18), -1000000000);
  EXPECT_EQ(floor_to_cell(kInf), 1000000000);
  EXPECT_EQ(floor_to_cell(-kInf), -1000000000);
  EXPECT_EQ(floor_to_cell(std::numeric_limits<double>::quiet_NaN()),
            -1000000000);
  EXPECT_EQ(floor_to_cell(std::numeric_limits<double>::max()), 1000000000);
}

TEST(OccupancyGrid, WorldToGridDefinedForAnyInput) {
  // Far-away, infinite and NaN world points must land on out-of-bounds
  // sentinel cells, never in-bounds and never via a UB cast.
  OccupancyGrid g{10, 10, 0.1, Vec2{0.0, 0.0}, OccupancyGrid::kFree};
  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  for (const Vec2& w : {Vec2{1e300, 0.0}, Vec2{0.0, -1e300}, Vec2{kInf, kInf},
                        Vec2{-kInf, 0.5}, Vec2{kNan, 0.5}, Vec2{0.5, kNan}}) {
    const GridIndex idx = g.world_to_grid(w);
    EXPECT_FALSE(g.in_bounds(idx)) << w.x << ", " << w.y;
    EXPECT_EQ(g.at_or_occupied(idx.ix, idx.iy), OccupancyGrid::kOccupied);
    EXPECT_FALSE(g.is_free_at(w));
  }
}

TEST(OccupancyGrid, EmptyGridIsSafe) {
  OccupancyGrid g;
  EXPECT_TRUE(g.empty());
  EXPECT_FALSE(g.in_bounds(0, 0));
  EXPECT_TRUE(g.blocks_ray(0, 0));
}

}  // namespace
}  // namespace srl
