#include "slam/linalg.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace srl {
namespace {

TEST(DenseMatrix, Storage) {
  DenseMatrix m{3, 2};
  m(0, 0) = 1.0;
  m(2, 1) = 5.0;
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(2, 1), 5.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 0.0);
  m.set_zero();
  EXPECT_DOUBLE_EQ(m(2, 1), 0.0);
}

TEST(Cholesky, SolvesIdentity) {
  DenseMatrix a{3, 3};
  for (std::size_t i = 0; i < 3; ++i) a(i, i) = 1.0;
  std::vector<double> b = {1.0, -2.0, 3.0};
  ASSERT_TRUE(cholesky_solve(a, b));
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[1], -2.0);
  EXPECT_DOUBLE_EQ(b[2], 3.0);
}

TEST(Cholesky, SolvesKnownSystem) {
  // A = [[4,2],[2,3]], b = [8, 7] -> x = [1.25, 1.5]
  DenseMatrix a{2, 2};
  a(0, 0) = 4.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 3.0;
  std::vector<double> b = {8.0, 7.0};
  ASSERT_TRUE(cholesky_solve(a, b));
  EXPECT_NEAR(b[0], 1.25, 1e-12);
  EXPECT_NEAR(b[1], 1.5, 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
  DenseMatrix a{2, 2};
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 1.0;  // eigenvalues 3, -1
  std::vector<double> b = {1.0, 1.0};
  EXPECT_FALSE(cholesky_solve(a, b));
}

TEST(Cholesky, RejectsSizeMismatch) {
  DenseMatrix a{3, 2};
  std::vector<double> b = {1.0, 1.0, 1.0};
  EXPECT_FALSE(cholesky_solve(a, b));
}

TEST(Cholesky, RandomSpdSystems) {
  Rng rng{31};
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(2, 12));
    // Build SPD A = M^T M + eps I and a known solution x.
    std::vector<std::vector<double>> m(n, std::vector<double>(n));
    for (auto& row : m) {
      for (double& v : row) v = rng.uniform(-1.0, 1.0);
    }
    DenseMatrix a{n, n};
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        double s = 0.0;
        for (std::size_t k = 0; k < n; ++k) s += m[k][i] * m[k][j];
        a(i, j) = s + (i == j ? 0.1 : 0.0);
      }
    }
    std::vector<double> x(n);
    for (double& v : x) v = rng.uniform(-5.0, 5.0);
    std::vector<double> b(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) b[i] += a(i, j) * x[j];
    }
    ASSERT_TRUE(cholesky_solve(a, b));
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(b[i], x[i], 1e-7);
  }
}

}  // namespace
}  // namespace srl
