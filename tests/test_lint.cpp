/// \file test_lint.cpp
/// \brief srl-lint engine tests: every rule id positive + negative (committed
/// fixtures under tests/data/lint/, which the file walker deliberately
/// skips), suppression parsing, scoping/allowlist boundaries, stable-sorted
/// output, and the full-repo-clean gate.
///
/// Directive comments under test live inside string literals here, so this
/// file itself stays clean under the tree-wide lint pass.

#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

namespace srl::lint {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string{SRL_LINT_FIXTURE_DIR} + "/" + name;
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Lint a committed fixture under a pseudo repo-relative path (the path
/// drives rule scoping).
FileReport lint_fixture(const std::string& rel_path,
                        const std::string& fixture) {
  return lint_source(rel_path, read_fixture(fixture));
}

std::vector<int> lines_with(const FileReport& r, std::string_view rule) {
  std::vector<int> out;
  for (const Finding& f : r.findings) {
    if (f.rule == rule) out.push_back(f.line);
  }
  return out;
}

int count_rule(const FileReport& r, std::string_view rule) {
  return static_cast<int>(lines_with(r, rule).size());
}

using IntVec = std::vector<int>;

// ---------------------------------------------------------------------------
// Rule catalog
// ---------------------------------------------------------------------------

TEST(LintCatalog, HasThePinnedRuleIds) {
  const std::vector<std::string> expected{
      "det-rand",        "det-wall-clock",    "det-wall-clock-governor",
      "det-thread-id",   "det-unordered",     "det-accumulate",
      "rt-alloc",        "rt-lock",           "rt-io",
      "rt-throw",        "rt-marker",         "rng-stream-key",
      "hy-pragma-once",  "hy-using-namespace", "hy-printf",
      "hy-bad-directive", "hy-unused-suppression", "hy-unreadable-file"};
  EXPECT_EQ(rule_catalog().size(), expected.size());
  std::set<std::string> seen;
  for (const RuleInfo& r : rule_catalog()) {
    EXPECT_TRUE(seen.insert(std::string{r.id}).second)
        << "duplicate rule id " << r.id;
    EXPECT_FALSE(r.summary.empty()) << r.id;
    EXPECT_FALSE(r.hint.empty()) << r.id;
  }
  for (const std::string& id : expected) {
    EXPECT_TRUE(is_known_rule(id)) << id;
  }
  EXPECT_FALSE(is_known_rule("not-a-rule"));
  EXPECT_FALSE(is_known_rule(""));
}

// ---------------------------------------------------------------------------
// Determinism rules
// ---------------------------------------------------------------------------

TEST(LintDetRand, FlagsRawRandomnessAtIdentifierBoundaries) {
  const FileReport r = lint_fixture("src/core/det_rand.cpp", "det_rand.cpp");
  EXPECT_EQ(lines_with(r, "det-rand"), (IntVec{8, 12, 16, 21}));
  EXPECT_EQ(static_cast<int>(r.findings.size()), 4) << render_findings(r.findings);
}

TEST(LintDetRand, RngHeaderItselfIsExempt) {
  const FileReport r = lint_source("src/common/rng.hpp",
                                   "#pragma once\nstd::mt19937_64 gen_;\n");
  EXPECT_TRUE(r.findings.empty()) << render_findings(r.findings);
}

TEST(LintDetWallClock, FlagsClockReadsInSrcAndTests) {
  for (const char* rel : {"src/core/x.cpp", "tests/test_x.cpp"}) {
    const FileReport r = lint_fixture(rel, "det_wall_clock.cpp");
    EXPECT_EQ(lines_with(r, "det-wall-clock"), (IntVec{6, 11, 14})) << rel;
  }
}

TEST(LintDetWallClock, BenchToolsAndTelemetryAreExempt) {
  for (const char* rel :
       {"bench/bench_x.cpp", "tools/x.cpp", "src/telemetry/writer.cpp"}) {
    const FileReport r = lint_fixture(rel, "det_wall_clock.cpp");
    EXPECT_EQ(count_rule(r, "det-wall-clock"), 0) << rel;
  }
}

TEST(LintDetWallClock, TimerHeaderIsTheOneSrcAllowlistEntry) {
  const std::string content = "#pragma once\nauto t0 = clk::now();\n";
  EXPECT_TRUE(lint_source("src/common/timer.hpp", content).findings.empty());
}

TEST(LintDetWallClockGovernor, FlagsSanctionedTimersInsideGovernorOnly) {
  const FileReport r = lint_fixture("src/governor/governor.cpp",
                                    "det_wall_clock_governor.cpp");
  EXPECT_EQ(lines_with(r, "det-wall-clock-governor"), (IntVec{7, 9}))
      << render_findings(r.findings);
}

TEST(LintDetWallClockGovernor, OtherLayersMayUseTheTelemetryTimers) {
  for (const char* rel : {"src/core/x.cpp", "src/telemetry/writer.cpp",
                          "bench/bench_x.cpp", "tools/x.cpp"}) {
    const FileReport r = lint_fixture(rel, "det_wall_clock_governor.cpp");
    EXPECT_EQ(count_rule(r, "det-wall-clock-governor"), 0) << rel;
  }
}

TEST(LintDetThreadId, FlagsThreadIdentityEverywhere) {
  for (const char* rel : {"src/core/x.cpp", "tools/x.cpp", "bench/x.cpp"}) {
    const FileReport r = lint_fixture(rel, "det_thread_id.cpp");
    EXPECT_EQ(lines_with(r, "det-thread-id"), (IntVec{5, 10})) << rel;
  }
}

TEST(LintDetUnordered, FlagsUnorderedContainersInSrcOnly) {
  const FileReport in_src =
      lint_fixture("src/core/x.cpp", "det_unordered.cpp");
  // Lines 4/5 are the #include directives, 7/8 the declarations; the comment
  // and string mentions on lines 2 and 13 must not fire.
  EXPECT_EQ(lines_with(in_src, "det-unordered"), (IntVec{4, 5, 7, 8}));

  for (const char* rel :
       {"tests/test_x.cpp", "tools/x.cpp", "src/telemetry/writer.cpp"}) {
    EXPECT_EQ(count_rule(lint_fixture(rel, "det_unordered.cpp"),
                         "det-unordered"),
              0)
        << rel;
  }
}

TEST(LintDetAccumulate, FlagsStdReductionsButNotLocalHelpers) {
  const FileReport r =
      lint_fixture("src/slam/x.cpp", "det_accumulate.cpp");
  // The local lambda *named* accumulate (line 15/19) is fixed-order code and
  // must not fire — only the std:: qualified reductions do.
  EXPECT_EQ(lines_with(r, "det-accumulate"), (IntVec{6, 10}));
}

// ---------------------------------------------------------------------------
// Real-time hygiene
// ---------------------------------------------------------------------------

TEST(LintRealtime, FlagsAllocLockIoThrowOnlyInsideAnnotatedBlock) {
  const FileReport r = lint_fixture("tools/rt/x.cpp", "rt_dirty.cpp");
  EXPECT_EQ(lines_with(r, "rt-lock"), (IntVec{12, 12}));  // lock_guard + mutex
  EXPECT_EQ(lines_with(r, "rt-alloc"), (IntVec{13}));
  EXPECT_EQ(lines_with(r, "rt-io"), (IntVec{14}));
  EXPECT_EQ(lines_with(r, "rt-throw"), (IntVec{15}));
  // reserve() on line 9 and push_back() on line 18 are outside the block.
  EXPECT_EQ(static_cast<int>(r.findings.size()), 5) << render_findings(r.findings);
}

TEST(LintRealtime, CleanBlockProducesNothing) {
  const FileReport r = lint_fixture("src/core/x.cpp", "rt_clean.cpp");
  EXPECT_TRUE(r.findings.empty()) << render_findings(r.findings);
}

TEST(LintRealtime, UnclosedBlockIsAMarkerFinding) {
  const FileReport r = lint_fixture("tools/x.cpp", "rt_unbalanced.cpp");
  EXPECT_EQ(lines_with(r, "rt-marker"), (IntVec{5}));
}

TEST(LintRealtime, StrayEndAndNestedOpenAreMarkerFindings) {
  const FileReport stray =
      lint_source("src/x.cpp", "// srl-lint: end-realtime\nint x;\n");
  EXPECT_EQ(lines_with(stray, "rt-marker"), (IntVec{1}));

  const std::string nested =
      "// srl-lint: realtime\n"
      "// srl-lint: realtime\n"
      "int x;\n"
      "// srl-lint: end-realtime\n";
  EXPECT_EQ(lines_with(lint_source("src/x.cpp", nested), "rt-marker"),
            (IntVec{2}));
}

TEST(LintRealtime, UnknownMarkerWordIsABadDirective) {
  const FileReport r =
      lint_source("src/x.cpp", "// srl-lint: turbo\nint x;\n");
  EXPECT_EQ(lines_with(r, "hy-bad-directive"), (IntVec{1}));
}

// ---------------------------------------------------------------------------
// RNG discipline
// ---------------------------------------------------------------------------

TEST(LintRngStreamKey, RequiresPinnedStreamConstantsInSrc) {
  const FileReport r =
      lint_fixture("src/fault/x.cpp", "rng_stream_key.cpp");
  // Line 15: cast expression; line 20: free variable; line 24: magic number.
  // The pinned constants on lines 11 and 28-29 (multi-line call) pass.
  EXPECT_EQ(lines_with(r, "rng-stream-key"), (IntVec{15, 20, 24}));
}

TEST(LintRngStreamKey, QualifiedEnumeratorCountsAsPinned) {
  const std::string good =
      "srl::Rng a = rng.substream(PfStream::kPredictNoise, i);\n"
      "srl::Rng b = rng.substream(srl::fault::kRecoveryStreamInject, 0);\n";
  EXPECT_EQ(count_rule(lint_source("src/core/x.cpp", good), "rng-stream-key"),
            0);
}

TEST(LintRngStreamKey, TestsMayProbeArbitraryKeys) {
  const FileReport r =
      lint_fixture("tests/test_x.cpp", "rng_stream_key.cpp");
  EXPECT_EQ(count_rule(r, "rng-stream-key"), 0);
}

// ---------------------------------------------------------------------------
// Repo hygiene
// ---------------------------------------------------------------------------

TEST(LintHygiene, HeaderWithoutPragmaOnceOrWithNamespaceLeakFires) {
  const FileReport r =
      lint_fixture("src/fixture/hy_header_bad.hpp", "hy_header_bad.hpp");
  EXPECT_EQ(lines_with(r, "hy-pragma-once"), (IntVec{2}));
  EXPECT_EQ(lines_with(r, "hy-using-namespace"), (IntVec{4}));
}

TEST(LintHygiene, HygienicHeaderIsClean) {
  const FileReport r =
      lint_fixture("src/fixture/hy_header_good.hpp", "hy_header_good.hpp");
  EXPECT_TRUE(r.findings.empty()) << render_findings(r.findings);
}

TEST(LintHygiene, PrintfFamilyFiresInSrcOnly) {
  const FileReport in_src = lint_fixture("src/io/x.cpp", "hy_printf.cpp");
  // snprintf (line 12) formats into a caller buffer and is allowed.
  EXPECT_EQ(lines_with(in_src, "hy-printf"), (IntVec{6, 7, 8}));

  for (const char* rel : {"tools/x.cpp", "tests/test_x.cpp", "bench/x.cpp"}) {
    EXPECT_EQ(count_rule(lint_fixture(rel, "hy_printf.cpp"), "hy-printf"), 0)
        << rel;
  }
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

TEST(LintSuppressions, StandaloneTrailingUnusedAndMalformedForms) {
  const FileReport r =
      lint_fixture("src/core/suppressions.cpp", "suppressions.cpp");

  // Lines 6 (standalone) and 10 (trailing) are suppressed det-rand hits.
  EXPECT_EQ(lines_with(r, "det-rand"), (IntVec{25, 30}));
  // Line 13's allow targets code (line 14) that produces nothing; line 29's
  // allow names the wrong rule for line 30.
  EXPECT_EQ(lines_with(r, "hy-unused-suppression"), (IntVec{14, 30}));
  // Line 19: unknown rule id; line 24: missing reason.
  EXPECT_EQ(lines_with(r, "hy-bad-directive"), (IntVec{19, 24}));

  ASSERT_EQ(r.suppressions.size(), 4u);
  EXPECT_EQ(r.suppressions[0].line, 6);
  EXPECT_TRUE(r.suppressions[0].used);
  EXPECT_EQ(r.suppressions[1].line, 10);
  EXPECT_TRUE(r.suppressions[1].used);
  EXPECT_EQ(r.suppressions[2].line, 14);
  EXPECT_FALSE(r.suppressions[2].used);
  EXPECT_EQ(r.suppressions[3].line, 30);
  EXPECT_EQ(r.suppressions[3].rule, "rt-alloc");
  EXPECT_FALSE(r.suppressions[3].used);
  for (const Suppression& s : r.suppressions) {
    EXPECT_FALSE(s.reason.empty()) << s.file << ":" << s.line;
  }
}

TEST(LintSuppressions, MissingCloseParenIsABadDirective) {
  const FileReport r = lint_source(
      "src/x.cpp", "// srl-lint-allow(det-rand missing\nint x;\n");
  EXPECT_EQ(lines_with(r, "hy-bad-directive"), (IntVec{1}));
}

TEST(LintSuppressions, ProseMentioningTheSyntaxDoesNotParse) {
  // A doc comment *about* the directive (not starting with srl-lint) must
  // neither suppress nor produce a bad-directive finding.
  const FileReport r = lint_source(
      "src/x.cpp",
      "// write srl-lint-allow(rule-id): reason to suppress a finding\n"
      "int x;\n");
  EXPECT_TRUE(r.findings.empty()) << render_findings(r.findings);
  EXPECT_TRUE(r.suppressions.empty());
}

// ---------------------------------------------------------------------------
// Output stability and rendering
// ---------------------------------------------------------------------------

TEST(LintRender, FindingFormatIsExact) {
  Finding f;
  f.file = "src/a.cpp";
  f.line = 3;
  f.rule = "det-rand";
  f.message = "raw randomness primitive 'rand'";
  f.hint = "use srl::Rng";
  EXPECT_EQ(render_findings({f}),
            "src/a.cpp:3: det-rand: raw randomness primitive 'rand' "
            "(fix: use srl::Rng)\n");
}

TEST(LintRender, FindingsAreStableSortedByFileLineRule) {
  const FileReport r =
      lint_fixture("src/core/suppressions.cpp", "suppressions.cpp");
  EXPECT_TRUE(std::is_sorted(
      r.findings.begin(), r.findings.end(),
      [](const Finding& a, const Finding& b) {
        return std::tie(a.file, a.line, a.rule) < std::tie(b.file, b.line, b.rule);
      }));
}

// ---------------------------------------------------------------------------
// File discovery
// ---------------------------------------------------------------------------

TEST(LintDiscovery, WalkFindsSourcesAndSkipsDataDirs) {
  const std::vector<std::string> files = collect_files(SRL_LINT_REPO_ROOT);
  EXPECT_TRUE(std::is_sorted(files.begin(), files.end()));
  const auto has = [&](const std::string& f) {
    return std::find(files.begin(), files.end(), f) != files.end();
  };
  EXPECT_TRUE(has("src/lint/lint.cpp"));
  EXPECT_TRUE(has("src/lint/lint.hpp"));
  EXPECT_TRUE(has("tools/srl_lint.cpp"));
  EXPECT_TRUE(has("tests/test_lint.cpp"));
  for (const std::string& f : files) {
    EXPECT_EQ(f.find("/data/"), std::string::npos) << f;
    EXPECT_TRUE(f.size() > 4 && (f.rfind(".cpp") == f.size() - 4 ||
                                 f.rfind(".hpp") == f.size() - 4))
        << f;
  }
}

TEST(LintDiscovery, CompileCommandsFilterResolveAndDedupe) {
  const std::string dir = ::testing::TempDir();
  const std::string root = dir + "/lintdb_root";
  const std::string db = root + "/compile_commands.json";
  std::filesystem::create_directories(root + "/tools");
  {
    std::ofstream out{db};
    out << "[\n"
        << "  {\"directory\": \"" << root
        << "\", \"file\": \"" << root << "/src/a.cpp\"},\n"
        << "  {\"directory\": \"" << root
        << "/tools\", \"file\": \"b.cpp\"},\n"
        << "  {\"directory\": \"" << root
        << "\", \"file\": \"" << root << "/src/a.cpp\"},\n"
        << "  {\"directory\": \"" << root
        << "\", \"file\": \"/elsewhere/z.cpp\"},\n"
        << "  {\"directory\": \"" << root
        << "\", \"file\": \"" << root << "/src/tests/data/fix.cpp\"},\n"
        << "  {\"directory\": \"" << root
        << "\", \"file\": \"" << root << "/src/h.hpp\"}\n"
        << "]\n";
  }
  std::vector<std::string> files;
  ASSERT_TRUE(files_from_compile_commands(db, root, files));
  // One dedup, out-of-root and /data/ entries dropped, headers excluded
  // (they come from the walk).
  EXPECT_EQ(files, (std::vector<std::string>{"src/a.cpp", "tools/b.cpp"}));

  std::vector<std::string> none;
  EXPECT_FALSE(files_from_compile_commands(root + "/nope.json", root, none));
}

TEST(LintDiscovery, UnreadableFileIsAFindingNotACrash) {
  const TreeReport r = lint_tree(std::string{SRL_LINT_REPO_ROOT},
                                 {"src/does_not_exist.cpp"});
  ASSERT_EQ(r.findings.size(), 1u);
  EXPECT_EQ(r.findings[0].rule, "hy-unreadable-file");
}

// ---------------------------------------------------------------------------
// The gate: this repository lints clean, byte-identically, every time
// ---------------------------------------------------------------------------

TEST(LintRepo, FullTreeIsCleanAndEverySuppressionIsAuditedAndUsed) {
  const std::string root{SRL_LINT_REPO_ROOT};
  const TreeReport r = lint_tree(root, collect_files(root));
  EXPECT_GT(r.files_scanned, 100);
  EXPECT_TRUE(r.findings.empty()) << render_findings(r.findings);
  for (const Suppression& s : r.suppressions) {
    EXPECT_TRUE(s.used) << s.file << ":" << s.line << " (" << s.rule << ")";
    EXPECT_FALSE(s.reason.empty()) << s.file << ":" << s.line;
  }
}

TEST(LintRepo, RerunsAreByteIdentical) {
  const std::string root{SRL_LINT_REPO_ROOT};
  const TreeReport a = lint_tree(root, collect_files(root));
  const TreeReport b = lint_tree(root, collect_files(root));
  EXPECT_EQ(render_findings(a.findings), render_findings(b.findings));
  EXPECT_EQ(render_suppressions(a.suppressions),
            render_suppressions(b.suppressions));
  EXPECT_EQ(a.files_scanned, b.files_scanned);
}

}  // namespace
}  // namespace srl::lint
