#include "slam/pure_localization.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "common/angles.hpp"
#include "gridmap/track_generator.hpp"
#include "range/bresenham.hpp"
#include "sensor/lidar_sim.hpp"
#include "track/raceline.hpp"

namespace srl {
namespace {

struct LocRun {
  Track track = TrackGenerator::oval(6.0, 2.0);
  LidarConfig lidar{};
  std::shared_ptr<const OccupancyGrid> map =
      std::make_shared<const OccupancyGrid>(track.grid);
  LidarSim sim{lidar,
               std::make_shared<BresenhamCaster>(map, lidar.max_range),
               LidarNoise{.sigma_range = 0.01, .dropout_prob = 0.0}};
  Raceline line{track.centerline};
  Rng rng{23};
  Pose2 truth{};

  Pose2 start() {
    const Vec2 p = line.position(1.0);
    return Pose2{p.x, p.y, line.heading(1.0)};
  }

  /// Drive along the centerline, feeding 100 Hz odometry and 40 Hz scans.
  void drive(CartoLocalizer& loc, double distance, double v,
             double odom_speed_bias = 0.0) {
    double s = line.project({truth.x, truth.y}).s;
    double t = 0.0;
    double next_scan = 0.0;
    const double dt = 0.01;
    double traveled = 0.0;
    while (traveled < distance) {
      const double kappa = line.curvature(s);
      const Twist2 twist{v, 0.0, v * kappa};
      truth = integrate_twist(truth, twist, dt).normalized();
      s = line.wrap(s + v * dt);
      traveled += v * dt;
      t += dt;
      OdometryDelta odom;
      const double v_odom = v * (1.0 + odom_speed_bias);
      odom.delta =
          integrate_twist(Pose2{}, Twist2{v_odom, 0.0, v * kappa}, dt);
      odom.v = v_odom;
      odom.dt = dt;
      loc.on_odometry(odom);
      if (t >= next_scan) {
        next_scan += 0.025;
        loc.on_scan(sim.scan(truth, twist, t, rng));
      }
    }
  }
};

TEST(PureLocalization, StationaryHoldsPose) {
  LocRun run;
  PureLocalizationOptions opt;
  CartoLocalizer loc{opt, run.map, run.lidar};
  run.truth = run.start();
  loc.initialize(run.truth);
  for (int i = 0; i < 40; ++i) {
    OdometryDelta odom;
    odom.dt = 0.01;
    loc.on_odometry(odom);
    if (i % 3 == 0) {
      loc.on_scan(run.sim.scan(run.truth, 0.01 * i, run.rng));
    }
  }
  const Pose2 est = loc.pose();
  EXPECT_NEAR(est.x, run.truth.x, 0.1);
  EXPECT_NEAR(est.y, run.truth.y, 0.1);
  EXPECT_NEAR(angle_dist(est.theta, run.truth.theta), 0.0, 0.05);
}

TEST(PureLocalization, TracksDrivenLap) {
  LocRun run;
  PureLocalizationOptions opt;
  CartoLocalizer loc{opt, run.map, run.lidar};
  run.truth = run.start();
  loc.initialize(run.truth);
  run.drive(loc, run.line.length(), 3.0);
  const Pose2 est = loc.pose();
  EXPECT_NEAR(est.x, run.truth.x, 0.4);
  EXPECT_NEAR(est.y, run.truth.y, 0.4);
  EXPECT_GT(loc.global_fixes(), 5L);
}

TEST(PureLocalization, BiasedOdometryDegradesButSurvives) {
  LocRun run;
  PureLocalizationOptions opt;
  CartoLocalizer loc{opt, run.map, run.lidar};
  run.truth = run.start();
  loc.initialize(run.truth);
  run.drive(loc, run.line.length(), 3.0, 0.15);  // 15% over-reporting odom
  const Pose2 est = loc.pose();
  const double err = std::hypot(est.x - run.truth.x, est.y - run.truth.y);
  EXPECT_LT(err, 0.8);  // degraded, but the global fixes keep it on track
}

TEST(PureLocalization, OutputLatencyDelaysCorrections) {
  LocRun run;
  PureLocalizationOptions opt;
  opt.output_latency = 10.0;  // longer than the test: never published
  CartoLocalizer loc{opt, run.map, run.lidar};
  run.truth = run.start();
  loc.initialize(run.truth);
  // Odometry claims motion that did not happen; scans contradict it. With
  // infinite latency the published pose must follow raw odometry only.
  for (int i = 0; i < 12; ++i) {
    OdometryDelta odom;
    odom.delta = Pose2{0.05, 0.0, 0.0};
    odom.v = 5.0;
    odom.dt = 0.01;
    loc.on_odometry(odom);
    if (i % 3 == 0) loc.on_scan(run.sim.scan(run.truth, 0.01 * i, run.rng));
  }
  EXPECT_NEAR(loc.pose().x, run.truth.x + 12 * 0.05 * std::cos(run.truth.theta),
              0.1);
}

TEST(PureLocalization, ZeroLatencyPublishesImmediately) {
  LocRun run;
  PureLocalizationOptions opt;
  opt.output_latency = 0.0;
  CartoLocalizer loc{opt, run.map, run.lidar};
  run.truth = run.start();
  loc.initialize(run.truth);
  run.drive(loc, 5.0, 2.0);
  const Pose2 est = loc.pose();
  EXPECT_NEAR(est.x, run.truth.x, 0.25);
  EXPECT_NEAR(est.y, run.truth.y, 0.25);
}

TEST(PureLocalization, RelocalizesAfterKidnap) {
  LocRun run;
  PureLocalizationOptions opt;
  opt.global_period = 8;
  CartoLocalizer loc{opt, run.map, run.lidar};
  run.truth = run.start();
  loc.initialize(run.truth);
  run.drive(loc, 4.0, 2.0);
  // Kidnap: restart the filter 0.8 m off the truth (inside the reloc
  // window) and keep driving; the wide search must re-acquire.
  loc.initialize((run.truth * Pose2{0.0, 0.6, 0.1}).normalized());
  run.drive(loc, 8.0, 2.0);
  const Pose2 est = loc.pose();
  const double err = std::hypot(est.x - run.truth.x, est.y - run.truth.y);
  EXPECT_LT(err, 0.35);
}

TEST(PureLocalization, ReportsTiming) {
  LocRun run;
  CartoLocalizer loc{PureLocalizationOptions{}, run.map, run.lidar};
  run.truth = run.start();
  loc.initialize(run.truth);
  loc.on_scan(run.sim.scan(run.truth, 0.0, run.rng));
  EXPECT_GT(loc.mean_scan_update_ms(), 0.0);
  EXPECT_EQ(loc.name(), "Cartographer");
}

}  // namespace
}  // namespace srl
