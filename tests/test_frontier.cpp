#include "eval/frontier/frontier_search.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "eval/frontier/frontier_json.hpp"
#include "eval/frontier/scenario_sampler.hpp"

namespace srl::frontier {
namespace {

// ---------------------------------------------------------------------------
// Scenario index packing
// ---------------------------------------------------------------------------

TEST(ScenarioKey, PackUnpackRoundTripsEveryCoordinate) {
  for (const ScenarioKey key : {ScenarioKey{0, 0, 0, 0},
                                ScenarioKey{1024, 7, 2, 0},
                                ScenarioKey{513, 3, 1, 9},
                                ScenarioKey{1, 15, 3, (1 << 14) - 1}}) {
    const ScenarioKey back = ScenarioKey::unpack(key.pack());
    EXPECT_EQ(back.sev_step, key.sev_step);
    EXPECT_EQ(back.axis, key.axis);
    EXPECT_EQ(back.track_class, key.track_class);
    EXPECT_EQ(back.variant, key.variant);
  }
}

TEST(ScenarioKey, ProfileKeyClearsOnlySeverityBits) {
  const ScenarioKey a{100, 3, 1, 7};
  const ScenarioKey b{900, 3, 1, 7};
  EXPECT_EQ(a.profile_key(), b.profile_key());
  EXPECT_NE(a.pack(), b.pack());
  // A different axis must land on a different envelope stream.
  const ScenarioKey c{100, 4, 1, 7};
  EXPECT_NE(a.profile_key(), c.profile_key());
}

TEST(ScenarioKey, TrackKeyClearsSeverityAndAxisBits) {
  const ScenarioKey a{100, 3, 1, 7};
  const ScenarioKey b{900, 6, 1, 7};
  EXPECT_EQ(a.track_key(), b.track_key());
  // Class and variant still distinguish circuits.
  EXPECT_NE(a.track_key(), (ScenarioKey{100, 3, 2, 7}.track_key()));
  EXPECT_NE(a.track_key(), (ScenarioKey{100, 3, 1, 8}.track_key()));
}

// ---------------------------------------------------------------------------
// Sampler determinism & severity-coherence
// ---------------------------------------------------------------------------

bool scenarios_bitwise_equal(const SampledScenario& a,
                             const SampledScenario& b) {
  return a.severity == b.severity &&
         std::memcmp(&a.profile, &b.profile, sizeof(a.profile)) == 0 &&
         a.length_scale == b.length_scale &&
         a.spec.half_width == b.spec.half_width &&
         a.n_waypoints == b.n_waypoints &&
         a.waypoint_radius == b.waypoint_radius &&
         a.waypoint_jitter == b.waypoint_jitter;
}

TEST(ScenarioSampler, SampleIsAPureFunctionOfSeedAndIndex) {
  const std::uint32_t index = ScenarioKey{640, 4, 2, 3}.pack();
  const ScenarioSampler sampler{0xF407};
  const SampledScenario first = sampler.sample(index);
  // Unrelated samples in between must not perturb a re-derivation, and a
  // fresh sampler with the same seed must land on the same bits.
  (void)sampler.sample(ScenarioKey{1, 1, 0, 0}.pack());
  EXPECT_TRUE(scenarios_bitwise_equal(first, sampler.sample(index)));
  EXPECT_TRUE(
      scenarios_bitwise_equal(first, ScenarioSampler{0xF407}.sample(index)));
  // A different master seed is a different universe.
  EXPECT_FALSE(
      scenarios_bitwise_equal(first, ScenarioSampler{0xF408}.sample(index)));
}

TEST(ScenarioSampler, SeveritySweepKeepsEnvelopeShapeAndCircuitFixed) {
  const ScenarioSampler sampler{7};
  for (int track_class = 0; track_class < 3; ++track_class) {
    const SampledScenario lo =
        sampler.sample(ScenarioKey{64, 2, track_class, 1}.pack());
    const SampledScenario hi =
        sampler.sample(ScenarioKey{1024, 2, track_class, 1}.pack());
    // Only the severity (and the envelope level derived from it) moves.
    EXPECT_EQ(lo.profile.t_start, hi.profile.t_start);
    EXPECT_EQ(lo.profile.ramp_s, hi.profile.ramp_s);
    EXPECT_EQ(lo.profile.duration, hi.profile.duration);
    EXPECT_EQ(lo.profile.severity, lo.severity);
    EXPECT_EQ(hi.profile.severity, 1.0);
    // Circuit parameters are severity-independent.
    EXPECT_EQ(lo.spec.half_width, hi.spec.half_width);
    EXPECT_EQ(lo.length_scale, hi.length_scale);
    EXPECT_EQ(lo.n_waypoints, hi.n_waypoints);
  }
}

TEST(ScenarioSampler, AxesShareTheCircuitOfTheirTrackCell) {
  // track_key clears the axis bits: every fault axis of one {class, variant}
  // cell must race exactly the same circuit.
  const ScenarioSampler sampler{7};
  const SampledScenario slip = sampler.sample(ScenarioKey{512, 0, 0, 2}.pack());
  const SampledScenario noise =
      sampler.sample(ScenarioKey{512, 4, 0, 2}.pack());
  EXPECT_EQ(slip.spec.half_width, noise.spec.half_width);
  EXPECT_EQ(slip.length_scale, noise.length_scale);
  // But their envelopes come from per-axis streams.
  EXPECT_NE(slip.profile.t_start, noise.profile.t_start);
}

TEST(ScenarioSampler, SeverityGridIsDyadicAndExact) {
  const ScenarioSampler sampler{1};
  for (const int step : {0, 1, 3, 512, 767, 1024}) {
    const SampledScenario s =
        sampler.sample(ScenarioKey{step, 1, 0, 0}.pack());
    // Every grid severity is exact in binary FP: scaling back recovers the
    // integer step with no rounding.
    EXPECT_EQ(s.severity * kSeverityDenominator, static_cast<double>(step));
    // ... and survives the JSON number formatter bit-for-bit.
    const std::string text = json::format_number(s.severity);
    EXPECT_EQ(std::stod(text), s.severity);
  }
}

TEST(ScenarioSampler, BlackoutSeverityDialsTheOutageWindow) {
  // The blackout envelope is all-or-nothing, so the frontier walks outage
  // *duration*: level pinned to 1, window length scaling with severity.
  const ScenarioSampler sampler{7};
  const int axis = 7;  // "blackout"
  ASSERT_EQ(frontier_axes()[axis], "blackout");
  const SampledScenario half =
      sampler.sample(ScenarioKey{512, axis, 0, 0}.pack());
  const SampledScenario full =
      sampler.sample(ScenarioKey{1024, axis, 0, 0}.pack());
  EXPECT_EQ(half.profile.severity, 1.0);
  EXPECT_EQ(full.profile.severity, 1.0);
  EXPECT_GT(half.profile.duration, 0.0);
  EXPECT_EQ(half.profile.duration, 0.5 * full.profile.duration);
  // Severity 0 must stay a true no-op.
  const SampledScenario off = sampler.sample(ScenarioKey{0, axis, 0, 0}.pack());
  EXPECT_EQ(off.profile.severity, 0.0);
}

TEST(ScenarioSampler, OutOfRangeCoordinatesClampDeterministically) {
  const ScenarioSampler sampler{7};
  // Axis id 15 exceeds the 8 pinned axes; class id 3 exceeds the 3 classes.
  const SampledScenario s =
      sampler.sample(ScenarioKey{1024, 15, 3, 0}.pack());
  EXPECT_EQ(s.axis, frontier_axes().back());
  EXPECT_EQ(s.track_class, frontier_track_classes().back());
  EXPECT_LE(s.severity, 1.0);
}

TEST(ScenarioSampler, BuildTrackIsReproducibleAndClassShaped) {
  const ScenarioSampler sampler{0xF407};
  for (int track_class = 0; track_class < 3; ++track_class) {
    const SampledScenario s =
        sampler.sample(ScenarioKey{512, 0, track_class, 0}.pack());
    const Track t1 = sampler.build_track(s);
    const Track t2 = sampler.build_track(s);
    ASSERT_FALSE(t1.centerline.empty());
    ASSERT_EQ(t1.centerline.size(), t2.centerline.size());
    for (std::size_t i = 0; i < t1.centerline.size(); ++i) {
      EXPECT_EQ(t1.centerline[i].x, t2.centerline[i].x);
      EXPECT_EQ(t1.centerline[i].y, t2.centerline[i].y);
    }
  }
}

TEST(ScenarioSampler, ReplayRecipeRoundTrips) {
  const std::uint64_t seed = 0xF407;
  const std::uint32_t index = ScenarioKey{768, 5, 1, 3}.pack();
  const std::string recipe = ScenarioSampler::replay_recipe(seed, index);
  EXPECT_EQ(recipe.rfind("frontier:", 0), 0u);
  std::uint64_t seed_back = 0;
  std::uint32_t index_back = 0;
  ASSERT_TRUE(
      ScenarioSampler::parse_replay_recipe(recipe, seed_back, index_back));
  EXPECT_EQ(seed_back, seed);
  EXPECT_EQ(index_back, index);
  EXPECT_FALSE(
      ScenarioSampler::parse_replay_recipe("oval:8,2.5", seed_back,
                                           index_back));
  EXPECT_FALSE(
      ScenarioSampler::parse_replay_recipe("frontier:", seed_back,
                                           index_back));
}

// ---------------------------------------------------------------------------
// Bisection driver (synthetic oracles)
// ---------------------------------------------------------------------------

/// Oracle failing at severity >= threshold — the search must bracket it.
ScenarioEvaluator step_oracle(double threshold) {
  return [threshold](const std::string&, const SampledScenario& scenario) {
    FrontierEvaluation eval;
    eval.failed = scenario.severity >= threshold;
    eval.divergence_episodes = eval.failed ? 1 : 0;
    return eval;
  };
}

FrontierSearchConfig tiny_config() {
  FrontierSearchConfig config;
  config.localizers = {"SynPF"};
  config.axes = {0};
  config.track_classes = {0};
  config.bisect_iterations = 5;
  return config;
}

TEST(FrontierSearch, BisectionBracketsAKnownThreshold) {
  const double threshold = 0.37;  // not on the dyadic grid on purpose
  const FrontierResult result =
      run_frontier_search(tiny_config(), step_oracle(threshold));
  ASSERT_EQ(result.points.size(), 1u);
  const FrontierPoint& point = result.points[0];
  EXPECT_FALSE(point.censored);
  EXPECT_FALSE(point.degenerate);
  // The true threshold lies inside the final bracket and the reported
  // breaking severity is its failing edge.
  EXPECT_LE(point.bracket_lo, threshold);
  EXPECT_GE(point.bracket_hi, threshold);
  EXPECT_EQ(point.breaking_severity, point.bracket_hi);
  // After B bisections of the full grid the bracket is 1024/2^B steps wide.
  const double expected_width = 1024.0 / 32.0 / kSeverityDenominator;
  EXPECT_DOUBLE_EQ(point.bracket_hi - point.bracket_lo, expected_width);
  // The defining failure's replay key re-samples to a failing scenario.
  const SampledScenario defining =
      ScenarioSampler{result.seed}.sample(point.breaking_index);
  EXPECT_GE(defining.severity, threshold);
  EXPECT_EQ(defining.severity, point.breaking_severity);
}

TEST(FrontierSearch, BracketTightensWithMoreIterations) {
  for (const int iterations : {1, 3, 8}) {
    FrontierSearchConfig config = tiny_config();
    config.bisect_iterations = iterations;
    const FrontierResult result =
        run_frontier_search(config, step_oracle(0.37));
    ASSERT_EQ(result.points.size(), 1u);
    const double width =
        result.points[0].bracket_hi - result.points[0].bracket_lo;
    const double expected =
        1024.0 / static_cast<double>(1 << iterations) / kSeverityDenominator;
    EXPECT_DOUBLE_EQ(width, expected) << "iterations=" << iterations;
  }
}

TEST(FrontierSearch, SurvivorIsCensoredAfterOneProbe) {
  const FrontierResult result =
      run_frontier_search(tiny_config(), step_oracle(2.0));
  ASSERT_EQ(result.points.size(), 1u);
  EXPECT_TRUE(result.points[0].censored);
  EXPECT_FALSE(result.points[0].degenerate);
  // Censoring needs only the severity-1.0 bracket probe.
  ASSERT_EQ(result.points[0].evaluations.size(), 1u);
  EXPECT_EQ(result.points[0].evaluations[0].severity, 1.0);
  EXPECT_EQ(result.points[0].breaking_index, 0u);
}

TEST(FrontierSearch, CleanFailureIsDegenerate) {
  const FrontierResult result =
      run_frontier_search(tiny_config(), step_oracle(0.0));
  ASSERT_EQ(result.points.size(), 1u);
  EXPECT_TRUE(result.points[0].degenerate);
  EXPECT_EQ(result.points[0].breaking_severity, 0.0);
}

TEST(FrontierSearch, ProbeSequenceIsDeterministicAndThreadInvariant) {
  FrontierSearchConfig config;
  config.localizers = {"SynPF", "CartoLite"};
  config.axes = {0, 1, 2, 3, 4};
  config.track_classes = {0, 1};
  config.bisect_iterations = 6;
  // Per-combination threshold so every cell walks a different path.
  const ScenarioEvaluator oracle = [](const std::string& localizer,
                                      const SampledScenario& scenario) {
    FrontierEvaluation eval;
    const double threshold =
        (localizer == "SynPF" ? 0.55 : 0.2) + 0.07 * scenario.key.axis;
    eval.failed = scenario.severity >= threshold;
    eval.lateral_mean_cm = 2.0 + 30.0 * scenario.severity;
    return eval;
  };
  config.search_threads = 1;
  const FrontierResult serial = run_frontier_search(config, oracle);
  config.search_threads = 8;
  const FrontierResult parallel = run_frontier_search(config, oracle);

  ASSERT_EQ(serial.points.size(), 20u);
  ASSERT_EQ(parallel.points.size(), serial.points.size());
  for (std::size_t i = 0; i < serial.points.size(); ++i) {
    const FrontierPoint& a = serial.points[i];
    const FrontierPoint& b = parallel.points[i];
    EXPECT_EQ(a.cell(), b.cell());
    EXPECT_EQ(a.breaking_index, b.breaking_index);
    EXPECT_EQ(a.bracket_lo, b.bracket_lo);
    EXPECT_EQ(a.bracket_hi, b.bracket_hi);
    ASSERT_EQ(a.evaluations.size(), b.evaluations.size());
    for (std::size_t j = 0; j < a.evaluations.size(); ++j) {
      EXPECT_EQ(a.evaluations[j].index, b.evaluations[j].index);
      EXPECT_EQ(a.evaluations[j].failed, b.evaluations[j].failed);
      EXPECT_EQ(a.evaluations[j].lateral_mean_cm,
                b.evaluations[j].lateral_mean_cm);
    }
  }
}

TEST(FrontierSearch, HeadlineComparesTheTwoLocalizers) {
  FrontierSearchConfig config = tiny_config();
  config.localizers = {"SynPF", "CartoLite"};
  const ScenarioEvaluator oracle = [](const std::string& localizer,
                                      const SampledScenario& scenario) {
    FrontierEvaluation eval;
    eval.failed = scenario.severity >= (localizer == "SynPF" ? 0.8 : 0.3);
    return eval;
  };
  const FrontierResult result = run_frontier_search(config, oracle);
  FrontierHeadline headline;
  ASSERT_TRUE(compute_frontier_headline(result, "odom_slip_ramp", "club",
                                        headline));
  EXPECT_FALSE(headline.synpf_censored);
  EXPECT_FALSE(headline.carto_censored);
  EXPECT_GT(headline.synpf_breaking, headline.carto_breaking);
  EXPECT_TRUE(headline.synpf_exceeds());
  // Unknown axis/class: no headline.
  EXPECT_FALSE(
      compute_frontier_headline(result, "no_such_axis", "club", headline));
}

TEST(FrontierSearch, CensoredSynPfStillExceedsABrokenCarto) {
  FrontierHeadline headline;
  headline.synpf_censored = true;
  headline.carto_breaking = 0.5;
  EXPECT_TRUE(headline.synpf_exceeds());
  // Both censored: the comparison is inconclusive, not a win.
  headline.carto_censored = true;
  EXPECT_FALSE(headline.synpf_exceeds());
}

}  // namespace
}  // namespace srl::frontier
