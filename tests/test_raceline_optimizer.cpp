#include "track/raceline_optimizer.hpp"

#include "track/raceline.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/polyline.hpp"
#include "control/speed_profile.hpp"
#include "gridmap/distance_transform.hpp"
#include "gridmap/track_generator.hpp"

namespace srl {
namespace {

double max_abs_curvature(const std::vector<Vec2>& line) {
  double m = 0.0;
  for (double k : curvature_closed(line)) m = std::max(m, std::abs(k));
  return m;
}

TEST(RacelineOptimizer, ReducesCurvatureOnTestTrack) {
  const Track track = TrackGenerator::test_track();
  const RacelineOptimizerResult result =
      optimize_raceline(track.centerline, track.half_width);
  EXPECT_LT(result.final_cost, result.initial_cost);
  EXPECT_LT(max_abs_curvature(result.line),
            0.9 * max_abs_curvature(track.centerline));
}

TEST(RacelineOptimizer, StaysInsideCorridor) {
  const Track track = TrackGenerator::test_track();
  RacelineOptimizerParams params;
  params.margin = 0.25;
  const RacelineOptimizerResult result =
      optimize_raceline(track.centerline, track.half_width, params);
  const DistanceField walls = distance_transform(track.grid);
  for (const Vec2& p : result.line) {
    EXPECT_TRUE(track.grid.is_free_at(p)) << p.x << "," << p.y;
    // Wall clearance respects the margin (minus grid quantization).
    EXPECT_GT(walls.at_world(p), params.margin - 0.08) << p.x << "," << p.y;
  }
}

TEST(RacelineOptimizer, PreservesPointCountAndOrientation) {
  const Track track = TrackGenerator::oval(8.0, 2.5);
  const RacelineOptimizerResult result =
      optimize_raceline(track.centerline, track.half_width);
  EXPECT_EQ(result.line.size(), track.centerline.size());
  EXPECT_GT(signed_area(result.line), 0.0);  // still CCW
}

TEST(RacelineOptimizer, UsesCorridorWidth) {
  // A minimum-curvature line is not the centerline: it swings
  // outside-inside-outside through corners, actually *lengthening* the lap
  // while flattening it. Verify the optimizer exploits a substantial part
  // of the available corridor and stays length-sane.
  const Track track = TrackGenerator::oval(8.0, 2.5);
  RacelineOptimizerParams params;
  params.margin = 0.25;
  const RacelineOptimizerResult result =
      optimize_raceline(track.centerline, track.half_width, params);
  const Raceline center{track.centerline};
  double max_offset = 0.0;
  for (const Vec2& p : result.line) {
    max_offset = std::max(max_offset, std::abs(center.project(p).lateral));
  }
  const double bound = track.half_width - params.margin;
  EXPECT_GT(max_offset, 0.4 * bound);
  EXPECT_LE(max_offset, bound + 0.1);
  const double len_ratio = polyline_length(result.line, true) /
                           polyline_length(track.centerline, true);
  EXPECT_GT(len_ratio, 0.9);
  EXPECT_LT(len_ratio, 1.25);
}

TEST(RacelineOptimizer, EnablesFasterSpeedProfile) {
  // The point of the exercise: lower curvature -> higher corner speeds.
  const Track track = TrackGenerator::test_track();
  const RacelineOptimizerResult result =
      optimize_raceline(track.centerline, track.half_width);
  const Raceline center{track.centerline};
  const Raceline optimized{result.line};
  const SpeedProfile sp_center{center, SpeedProfileParams{}};
  const SpeedProfile sp_optimized{optimized, SpeedProfileParams{}};
  EXPECT_GT(sp_optimized.min_speed(), sp_center.min_speed());
  // Estimated lap time (integrate ds / v) improves.
  const auto lap_time = [](const Raceline& line, const SpeedProfile& sp) {
    double t = 0.0;
    const double ds = 0.1;
    for (double s = 0.0; s < line.length(); s += ds) t += ds / sp.speed(s);
    return t;
  };
  EXPECT_LT(lap_time(optimized, sp_optimized), lap_time(center, sp_center));
}

TEST(RacelineOptimizer, DegenerateInputPassesThrough) {
  const std::vector<Vec2> tiny = {{0, 0}, {1, 0}, {0, 1}};
  const RacelineOptimizerResult result = optimize_raceline(tiny, 1.0);
  EXPECT_EQ(result.line.size(), tiny.size());
}

TEST(RacelineOptimizer, ZeroBoundKeepsCenterline) {
  const Track track = TrackGenerator::oval(6.0, 2.0);
  RacelineOptimizerParams params;
  params.margin = track.half_width;  // no room to move
  const RacelineOptimizerResult result =
      optimize_raceline(track.centerline, track.half_width, params);
  for (std::size_t i = 0; i < result.line.size(); ++i) {
    EXPECT_NEAR(distance(result.line[i], track.centerline[i]), 0.0, 0.05);
  }
}

}  // namespace
}  // namespace srl
