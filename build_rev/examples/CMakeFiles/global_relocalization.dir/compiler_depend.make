# Empty compiler generated dependencies file for global_relocalization.
# This may be replaced when dependencies are built.
