file(REMOVE_RECURSE
  "CMakeFiles/global_relocalization.dir/global_relocalization.cpp.o"
  "CMakeFiles/global_relocalization.dir/global_relocalization.cpp.o.d"
  "global_relocalization"
  "global_relocalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_relocalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
