file(REMOVE_RECURSE
  "CMakeFiles/robustness_study.dir/robustness_study.cpp.o"
  "CMakeFiles/robustness_study.dir/robustness_study.cpp.o.d"
  "robustness_study"
  "robustness_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robustness_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
