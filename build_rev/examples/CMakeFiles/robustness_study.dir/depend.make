# Empty dependencies file for robustness_study.
# This may be replaced when dependencies are built.
