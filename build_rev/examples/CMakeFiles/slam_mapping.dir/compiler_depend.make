# Empty compiler generated dependencies file for slam_mapping.
# This may be replaced when dependencies are built.
