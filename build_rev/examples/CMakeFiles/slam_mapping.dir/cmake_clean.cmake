file(REMOVE_RECURSE
  "CMakeFiles/slam_mapping.dir/slam_mapping.cpp.o"
  "CMakeFiles/slam_mapping.dir/slam_mapping.cpp.o.d"
  "slam_mapping"
  "slam_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slam_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
