# Empty compiler generated dependencies file for raceline_demo.
# This may be replaced when dependencies are built.
