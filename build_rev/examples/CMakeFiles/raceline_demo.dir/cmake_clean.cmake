file(REMOVE_RECURSE
  "CMakeFiles/raceline_demo.dir/raceline_demo.cpp.o"
  "CMakeFiles/raceline_demo.dir/raceline_demo.cpp.o.d"
  "raceline_demo"
  "raceline_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raceline_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
