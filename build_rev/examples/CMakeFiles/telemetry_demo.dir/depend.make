# Empty dependencies file for telemetry_demo.
# This may be replaced when dependencies are built.
