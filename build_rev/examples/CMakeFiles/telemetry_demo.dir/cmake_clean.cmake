file(REMOVE_RECURSE
  "CMakeFiles/telemetry_demo.dir/telemetry_demo.cpp.o"
  "CMakeFiles/telemetry_demo.dir/telemetry_demo.cpp.o.d"
  "telemetry_demo"
  "telemetry_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/telemetry_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
