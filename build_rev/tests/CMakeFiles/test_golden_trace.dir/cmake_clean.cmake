file(REMOVE_RECURSE
  "CMakeFiles/test_golden_trace.dir/test_golden_trace.cpp.o"
  "CMakeFiles/test_golden_trace.dir/test_golden_trace.cpp.o.d"
  "test_golden_trace"
  "test_golden_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_golden_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
