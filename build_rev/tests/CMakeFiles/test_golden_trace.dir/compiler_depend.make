# Empty compiler generated dependencies file for test_golden_trace.
# This may be replaced when dependencies are built.
