# Empty compiler generated dependencies file for test_synpf.
# This may be replaced when dependencies are built.
