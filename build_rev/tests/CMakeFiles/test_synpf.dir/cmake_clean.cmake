file(REMOVE_RECURSE
  "CMakeFiles/test_synpf.dir/test_synpf.cpp.o"
  "CMakeFiles/test_synpf.dir/test_synpf.cpp.o.d"
  "test_synpf"
  "test_synpf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synpf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
