file(REMOVE_RECURSE
  "CMakeFiles/test_trace.dir/test_trace.cpp.o"
  "CMakeFiles/test_trace.dir/test_trace.cpp.o.d"
  "test_trace"
  "test_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
