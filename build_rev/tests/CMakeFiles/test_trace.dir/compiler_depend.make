# Empty compiler generated dependencies file for test_trace.
# This may be replaced when dependencies are built.
