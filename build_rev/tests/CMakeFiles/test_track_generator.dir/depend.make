# Empty dependencies file for test_track_generator.
# This may be replaced when dependencies are built.
