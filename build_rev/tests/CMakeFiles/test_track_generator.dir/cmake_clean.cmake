file(REMOVE_RECURSE
  "CMakeFiles/test_track_generator.dir/test_track_generator.cpp.o"
  "CMakeFiles/test_track_generator.dir/test_track_generator.cpp.o.d"
  "test_track_generator"
  "test_track_generator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_track_generator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
