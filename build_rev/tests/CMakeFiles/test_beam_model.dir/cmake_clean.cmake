file(REMOVE_RECURSE
  "CMakeFiles/test_beam_model.dir/test_beam_model.cpp.o"
  "CMakeFiles/test_beam_model.dir/test_beam_model.cpp.o.d"
  "test_beam_model"
  "test_beam_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_beam_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
