# Empty dependencies file for test_beam_model.
# This may be replaced when dependencies are built.
