file(REMOVE_RECURSE
  "CMakeFiles/test_lidar.dir/test_lidar.cpp.o"
  "CMakeFiles/test_lidar.dir/test_lidar.cpp.o.d"
  "test_lidar"
  "test_lidar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lidar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
