# Empty dependencies file for test_lidar.
# This may be replaced when dependencies are built.
