# Empty dependencies file for test_raceline.
# This may be replaced when dependencies are built.
