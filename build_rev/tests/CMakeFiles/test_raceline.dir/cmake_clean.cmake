file(REMOVE_RECURSE
  "CMakeFiles/test_raceline.dir/test_raceline.cpp.o"
  "CMakeFiles/test_raceline.dir/test_raceline.cpp.o.d"
  "test_raceline"
  "test_raceline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_raceline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
