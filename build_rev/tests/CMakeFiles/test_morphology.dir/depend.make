# Empty dependencies file for test_morphology.
# This may be replaced when dependencies are built.
