file(REMOVE_RECURSE
  "CMakeFiles/test_morphology.dir/test_morphology.cpp.o"
  "CMakeFiles/test_morphology.dir/test_morphology.cpp.o.d"
  "test_morphology"
  "test_morphology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_morphology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
