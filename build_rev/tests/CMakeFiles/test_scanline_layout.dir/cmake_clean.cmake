file(REMOVE_RECURSE
  "CMakeFiles/test_scanline_layout.dir/test_scanline_layout.cpp.o"
  "CMakeFiles/test_scanline_layout.dir/test_scanline_layout.cpp.o.d"
  "test_scanline_layout"
  "test_scanline_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scanline_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
