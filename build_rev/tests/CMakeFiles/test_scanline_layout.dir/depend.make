# Empty dependencies file for test_scanline_layout.
# This may be replaced when dependencies are built.
