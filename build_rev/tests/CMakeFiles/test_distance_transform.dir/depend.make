# Empty dependencies file for test_distance_transform.
# This may be replaced when dependencies are built.
