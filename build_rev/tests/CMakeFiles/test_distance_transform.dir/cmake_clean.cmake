file(REMOVE_RECURSE
  "CMakeFiles/test_distance_transform.dir/test_distance_transform.cpp.o"
  "CMakeFiles/test_distance_transform.dir/test_distance_transform.cpp.o.d"
  "test_distance_transform"
  "test_distance_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distance_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
