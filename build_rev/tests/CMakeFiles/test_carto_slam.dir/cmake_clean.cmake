file(REMOVE_RECURSE
  "CMakeFiles/test_carto_slam.dir/test_carto_slam.cpp.o"
  "CMakeFiles/test_carto_slam.dir/test_carto_slam.cpp.o.d"
  "test_carto_slam"
  "test_carto_slam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_carto_slam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
