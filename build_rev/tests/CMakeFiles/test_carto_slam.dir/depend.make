# Empty dependencies file for test_carto_slam.
# This may be replaced when dependencies are built.
