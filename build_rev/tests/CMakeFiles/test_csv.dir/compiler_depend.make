# Empty compiler generated dependencies file for test_csv.
# This may be replaced when dependencies are built.
