file(REMOVE_RECURSE
  "CMakeFiles/test_csv.dir/test_csv.cpp.o"
  "CMakeFiles/test_csv.dir/test_csv.cpp.o.d"
  "test_csv"
  "test_csv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
