# Empty compiler generated dependencies file for test_fault.
# This may be replaced when dependencies are built.
