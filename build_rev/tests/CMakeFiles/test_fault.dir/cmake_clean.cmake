file(REMOVE_RECURSE
  "CMakeFiles/test_fault.dir/test_fault.cpp.o"
  "CMakeFiles/test_fault.dir/test_fault.cpp.o.d"
  "test_fault"
  "test_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
