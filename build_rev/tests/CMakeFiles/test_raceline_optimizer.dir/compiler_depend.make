# Empty compiler generated dependencies file for test_raceline_optimizer.
# This may be replaced when dependencies are built.
