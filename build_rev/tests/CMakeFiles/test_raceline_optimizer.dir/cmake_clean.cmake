file(REMOVE_RECURSE
  "CMakeFiles/test_raceline_optimizer.dir/test_raceline_optimizer.cpp.o"
  "CMakeFiles/test_raceline_optimizer.dir/test_raceline_optimizer.cpp.o.d"
  "test_raceline_optimizer"
  "test_raceline_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_raceline_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
