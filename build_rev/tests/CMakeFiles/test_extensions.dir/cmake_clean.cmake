file(REMOVE_RECURSE
  "CMakeFiles/test_extensions.dir/test_extensions.cpp.o"
  "CMakeFiles/test_extensions.dir/test_extensions.cpp.o.d"
  "test_extensions"
  "test_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
