# Empty compiler generated dependencies file for test_extensions.
# This may be replaced when dependencies are built.
