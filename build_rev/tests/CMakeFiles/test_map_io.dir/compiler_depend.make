# Empty compiler generated dependencies file for test_map_io.
# This may be replaced when dependencies are built.
