file(REMOVE_RECURSE
  "CMakeFiles/test_map_io.dir/test_map_io.cpp.o"
  "CMakeFiles/test_map_io.dir/test_map_io.cpp.o.d"
  "test_map_io"
  "test_map_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_map_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
