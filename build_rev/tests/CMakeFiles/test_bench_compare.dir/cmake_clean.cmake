file(REMOVE_RECURSE
  "CMakeFiles/test_bench_compare.dir/test_bench_compare.cpp.o"
  "CMakeFiles/test_bench_compare.dir/test_bench_compare.cpp.o.d"
  "test_bench_compare"
  "test_bench_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bench_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
