# Empty compiler generated dependencies file for test_bench_compare.
# This may be replaced when dependencies are built.
