# Empty dependencies file for test_postmortem.
# This may be replaced when dependencies are built.
