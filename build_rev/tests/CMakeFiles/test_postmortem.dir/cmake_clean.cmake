file(REMOVE_RECURSE
  "CMakeFiles/test_postmortem.dir/test_postmortem.cpp.o"
  "CMakeFiles/test_postmortem.dir/test_postmortem.cpp.o.d"
  "test_postmortem"
  "test_postmortem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_postmortem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
