# Empty compiler generated dependencies file for test_scan_matching.
# This may be replaced when dependencies are built.
