file(REMOVE_RECURSE
  "CMakeFiles/test_scan_matching.dir/test_scan_matching.cpp.o"
  "CMakeFiles/test_scan_matching.dir/test_scan_matching.cpp.o.d"
  "test_scan_matching"
  "test_scan_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scan_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
