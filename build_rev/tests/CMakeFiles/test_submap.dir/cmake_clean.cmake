file(REMOVE_RECURSE
  "CMakeFiles/test_submap.dir/test_submap.cpp.o"
  "CMakeFiles/test_submap.dir/test_submap.cpp.o.d"
  "test_submap"
  "test_submap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_submap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
