# Empty dependencies file for test_submap.
# This may be replaced when dependencies are built.
