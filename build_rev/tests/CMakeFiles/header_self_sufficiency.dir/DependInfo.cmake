
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/build_rev/tests/header_checks/common_angles.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/common_angles.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/common_angles.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/common_contracts.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/common_contracts.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/common_contracts.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/common_csv.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/common_csv.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/common_csv.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/common_json.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/common_json.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/common_json.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/common_parallel.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/common_parallel.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/common_parallel.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/common_polyline.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/common_polyline.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/common_polyline.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/common_rng.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/common_rng.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/common_rng.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/common_stats.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/common_stats.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/common_stats.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/common_timer.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/common_timer.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/common_timer.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/common_types.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/common_types.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/common_types.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/control_pure_pursuit.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/control_pure_pursuit.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/control_pure_pursuit.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/control_speed_profile.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/control_speed_profile.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/control_speed_profile.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/core_localizer.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/core_localizer.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/core_localizer.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/core_particle_filter.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/core_particle_filter.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/core_particle_filter.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/core_synpf.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/core_synpf.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/core_synpf.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/eval_bench_compare.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/eval_bench_compare.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/eval_bench_compare.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/eval_benchmark_json.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/eval_benchmark_json.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/eval_benchmark_json.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/eval_dead_reckoning.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/eval_dead_reckoning.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/eval_dead_reckoning.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/eval_experiment.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/eval_experiment.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/eval_experiment.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/eval_fault_replay.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/eval_fault_replay.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/eval_fault_replay.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/eval_metrics.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/eval_metrics.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/eval_metrics.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/eval_postmortem.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/eval_postmortem.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/eval_postmortem.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/eval_scenario_matrix.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/eval_scenario_matrix.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/eval_scenario_matrix.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/eval_table.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/eval_table.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/eval_table.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/eval_trace.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/eval_trace.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/eval_trace.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/fault_faulted_localizer.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/fault_faulted_localizer.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/fault_faulted_localizer.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/fault_injector.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/fault_injector.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/fault_injector.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/fault_pipeline.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/fault_pipeline.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/fault_pipeline.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/gridmap_distance_transform.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/gridmap_distance_transform.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/gridmap_distance_transform.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/gridmap_map_degrade.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/gridmap_map_degrade.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/gridmap_map_degrade.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/gridmap_map_io.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/gridmap_map_io.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/gridmap_map_io.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/gridmap_morphology.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/gridmap_morphology.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/gridmap_morphology.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/gridmap_occupancy_grid.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/gridmap_occupancy_grid.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/gridmap_occupancy_grid.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/gridmap_track_generator.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/gridmap_track_generator.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/gridmap_track_generator.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/motion_ackermann.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/motion_ackermann.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/motion_ackermann.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/motion_diff_drive.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/motion_diff_drive.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/motion_diff_drive.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/motion_motion_model.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/motion_motion_model.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/motion_motion_model.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/motion_tum_model.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/motion_tum_model.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/motion_tum_model.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/range_bresenham.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/range_bresenham.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/range_bresenham.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/range_cddt.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/range_cddt.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/range_cddt.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/range_lookup_table.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/range_lookup_table.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/range_lookup_table.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/range_range_method.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/range_range_method.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/range_range_method.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/range_ray_marching.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/range_ray_marching.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/range_ray_marching.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/recovery_divergence_detector.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/recovery_divergence_detector.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/recovery_divergence_detector.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/recovery_recovery_policy.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/recovery_recovery_policy.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/recovery_recovery_policy.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/recovery_supervised_localizer.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/recovery_supervised_localizer.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/recovery_supervised_localizer.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/sensor_beam_model.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/sensor_beam_model.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/sensor_beam_model.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/sensor_lidar.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/sensor_lidar.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/sensor_lidar.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/sensor_lidar_sim.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/sensor_lidar_sim.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/sensor_lidar_sim.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/sensor_scanline_layout.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/sensor_scanline_layout.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/sensor_scanline_layout.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/slam_carto_slam.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/slam_carto_slam.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/slam_carto_slam.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/slam_linalg.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/slam_linalg.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/slam_linalg.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/slam_pose_graph.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/slam_pose_graph.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/slam_pose_graph.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/slam_probability_grid.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/slam_probability_grid.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/slam_probability_grid.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/slam_pure_localization.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/slam_pure_localization.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/slam_pure_localization.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/slam_scan_matching.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/slam_scan_matching.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/slam_scan_matching.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/slam_submap.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/slam_submap.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/slam_submap.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/telemetry_contract_monitor.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/telemetry_contract_monitor.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/telemetry_contract_monitor.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/telemetry_events.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/telemetry_events.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/telemetry_events.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/telemetry_filter_health.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/telemetry_filter_health.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/telemetry_filter_health.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/telemetry_flight_recorder.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/telemetry_flight_recorder.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/telemetry_flight_recorder.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/telemetry_metrics.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/telemetry_metrics.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/telemetry_metrics.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/telemetry_telemetry.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/telemetry_telemetry.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/telemetry_telemetry.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/telemetry_trace_buffer.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/telemetry_trace_buffer.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/telemetry_trace_buffer.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/track_raceline.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/track_raceline.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/track_raceline.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/track_raceline_optimizer.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/track_raceline_optimizer.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/track_raceline_optimizer.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/vehicle_odometry_fusion.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/vehicle_odometry_fusion.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/vehicle_odometry_fusion.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/vehicle_sensors.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/vehicle_sensors.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/vehicle_sensors.cpp.o.d"
  "/root/repo/build_rev/tests/header_checks/vehicle_vehicle_sim.cpp" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/vehicle_vehicle_sim.cpp.o" "gcc" "tests/CMakeFiles/header_self_sufficiency.dir/header_checks/vehicle_vehicle_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
