# Empty dependencies file for header_self_sufficiency.
# This may be replaced when dependencies are built.
