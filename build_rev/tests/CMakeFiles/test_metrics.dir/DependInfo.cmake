
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/test_metrics.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/test_metrics.dir/test_metrics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_rev/src/eval/CMakeFiles/srl_eval.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/recovery/CMakeFiles/srl_recovery.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/slam/CMakeFiles/srl_slam.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/core/CMakeFiles/srl_core_pf.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/control/CMakeFiles/srl_control.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/track/CMakeFiles/srl_track.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/vehicle/CMakeFiles/srl_vehicle.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/sensor/CMakeFiles/srl_sensor.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/range/CMakeFiles/srl_range.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/gridmap/CMakeFiles/srl_gridmap.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/telemetry/CMakeFiles/srl_telemetry.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/common/CMakeFiles/srl_common.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/fault/CMakeFiles/srl_fault.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/motion/CMakeFiles/srl_motion.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
