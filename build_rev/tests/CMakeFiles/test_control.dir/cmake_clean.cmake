file(REMOVE_RECURSE
  "CMakeFiles/test_control.dir/test_control.cpp.o"
  "CMakeFiles/test_control.dir/test_control.cpp.o.d"
  "test_control"
  "test_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
