# Empty compiler generated dependencies file for test_control.
# This may be replaced when dependencies are built.
