file(REMOVE_RECURSE
  "CMakeFiles/test_telemetry.dir/test_telemetry.cpp.o"
  "CMakeFiles/test_telemetry.dir/test_telemetry.cpp.o.d"
  "test_telemetry"
  "test_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
