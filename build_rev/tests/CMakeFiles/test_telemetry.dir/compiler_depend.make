# Empty compiler generated dependencies file for test_telemetry.
# This may be replaced when dependencies are built.
