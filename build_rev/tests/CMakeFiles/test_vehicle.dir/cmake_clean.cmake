file(REMOVE_RECURSE
  "CMakeFiles/test_vehicle.dir/test_vehicle.cpp.o"
  "CMakeFiles/test_vehicle.dir/test_vehicle.cpp.o.d"
  "test_vehicle"
  "test_vehicle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vehicle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
