# Empty compiler generated dependencies file for test_vehicle.
# This may be replaced when dependencies are built.
