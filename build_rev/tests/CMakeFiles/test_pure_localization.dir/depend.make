# Empty dependencies file for test_pure_localization.
# This may be replaced when dependencies are built.
