file(REMOVE_RECURSE
  "CMakeFiles/test_pure_localization.dir/test_pure_localization.cpp.o"
  "CMakeFiles/test_pure_localization.dir/test_pure_localization.cpp.o.d"
  "test_pure_localization"
  "test_pure_localization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pure_localization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
