file(REMOVE_RECURSE
  "CMakeFiles/test_json.dir/test_json.cpp.o"
  "CMakeFiles/test_json.dir/test_json.cpp.o.d"
  "test_json"
  "test_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
