# Empty dependencies file for test_json.
# This may be replaced when dependencies are built.
