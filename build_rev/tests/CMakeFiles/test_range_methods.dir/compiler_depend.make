# Empty compiler generated dependencies file for test_range_methods.
# This may be replaced when dependencies are built.
