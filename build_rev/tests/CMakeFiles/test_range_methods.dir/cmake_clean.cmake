file(REMOVE_RECURSE
  "CMakeFiles/test_range_methods.dir/test_range_methods.cpp.o"
  "CMakeFiles/test_range_methods.dir/test_range_methods.cpp.o.d"
  "test_range_methods"
  "test_range_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_range_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
