# Empty compiler generated dependencies file for test_experiment.
# This may be replaced when dependencies are built.
