file(REMOVE_RECURSE
  "CMakeFiles/test_experiment.dir/test_experiment.cpp.o"
  "CMakeFiles/test_experiment.dir/test_experiment.cpp.o.d"
  "test_experiment"
  "test_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
