# Empty dependencies file for test_polyline.
# This may be replaced when dependencies are built.
