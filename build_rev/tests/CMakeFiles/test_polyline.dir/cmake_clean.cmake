file(REMOVE_RECURSE
  "CMakeFiles/test_polyline.dir/test_polyline.cpp.o"
  "CMakeFiles/test_polyline.dir/test_polyline.cpp.o.d"
  "test_polyline"
  "test_polyline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_polyline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
