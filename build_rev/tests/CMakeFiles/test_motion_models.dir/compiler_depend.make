# Empty compiler generated dependencies file for test_motion_models.
# This may be replaced when dependencies are built.
