file(REMOVE_RECURSE
  "CMakeFiles/test_motion_models.dir/test_motion_models.cpp.o"
  "CMakeFiles/test_motion_models.dir/test_motion_models.cpp.o.d"
  "test_motion_models"
  "test_motion_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_motion_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
