# Empty dependencies file for test_angles.
# This may be replaced when dependencies are built.
