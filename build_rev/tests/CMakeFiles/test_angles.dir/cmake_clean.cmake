file(REMOVE_RECURSE
  "CMakeFiles/test_angles.dir/test_angles.cpp.o"
  "CMakeFiles/test_angles.dir/test_angles.cpp.o.d"
  "test_angles"
  "test_angles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_angles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
