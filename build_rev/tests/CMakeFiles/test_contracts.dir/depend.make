# Empty dependencies file for test_contracts.
# This may be replaced when dependencies are built.
