file(REMOVE_RECURSE
  "CMakeFiles/test_contracts.dir/test_contracts.cpp.o"
  "CMakeFiles/test_contracts.dir/test_contracts.cpp.o.d"
  "test_contracts"
  "test_contracts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_contracts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
