# Empty compiler generated dependencies file for test_linalg.
# This may be replaced when dependencies are built.
