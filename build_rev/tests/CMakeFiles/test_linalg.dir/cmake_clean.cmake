file(REMOVE_RECURSE
  "CMakeFiles/test_linalg.dir/test_linalg.cpp.o"
  "CMakeFiles/test_linalg.dir/test_linalg.cpp.o.d"
  "test_linalg"
  "test_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
