file(REMOVE_RECURSE
  "CMakeFiles/test_types.dir/test_types.cpp.o"
  "CMakeFiles/test_types.dir/test_types.cpp.o.d"
  "test_types"
  "test_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
