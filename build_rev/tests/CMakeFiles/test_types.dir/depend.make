# Empty dependencies file for test_types.
# This may be replaced when dependencies are built.
