# Empty compiler generated dependencies file for test_particle_filter.
# This may be replaced when dependencies are built.
