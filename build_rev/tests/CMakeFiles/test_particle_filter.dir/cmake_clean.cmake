file(REMOVE_RECURSE
  "CMakeFiles/test_particle_filter.dir/test_particle_filter.cpp.o"
  "CMakeFiles/test_particle_filter.dir/test_particle_filter.cpp.o.d"
  "test_particle_filter"
  "test_particle_filter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_particle_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
