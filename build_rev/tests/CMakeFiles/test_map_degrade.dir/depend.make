# Empty dependencies file for test_map_degrade.
# This may be replaced when dependencies are built.
