file(REMOVE_RECURSE
  "CMakeFiles/test_map_degrade.dir/test_map_degrade.cpp.o"
  "CMakeFiles/test_map_degrade.dir/test_map_degrade.cpp.o.d"
  "test_map_degrade"
  "test_map_degrade.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_map_degrade.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
