# Empty dependencies file for test_recovery.
# This may be replaced when dependencies are built.
