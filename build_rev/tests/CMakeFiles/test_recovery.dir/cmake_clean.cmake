file(REMOVE_RECURSE
  "CMakeFiles/test_recovery.dir/test_recovery.cpp.o"
  "CMakeFiles/test_recovery.dir/test_recovery.cpp.o.d"
  "test_recovery"
  "test_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
