file(REMOVE_RECURSE
  "CMakeFiles/test_occupancy_grid.dir/test_occupancy_grid.cpp.o"
  "CMakeFiles/test_occupancy_grid.dir/test_occupancy_grid.cpp.o.d"
  "test_occupancy_grid"
  "test_occupancy_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_occupancy_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
