# Empty compiler generated dependencies file for test_occupancy_grid.
# This may be replaced when dependencies are built.
