# Empty compiler generated dependencies file for test_probability_grid.
# This may be replaced when dependencies are built.
