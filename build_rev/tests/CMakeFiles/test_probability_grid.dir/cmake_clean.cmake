file(REMOVE_RECURSE
  "CMakeFiles/test_probability_grid.dir/test_probability_grid.cpp.o"
  "CMakeFiles/test_probability_grid.dir/test_probability_grid.cpp.o.d"
  "test_probability_grid"
  "test_probability_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_probability_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
