# Empty compiler generated dependencies file for test_pose_graph.
# This may be replaced when dependencies are built.
