file(REMOVE_RECURSE
  "CMakeFiles/test_pose_graph.dir/test_pose_graph.cpp.o"
  "CMakeFiles/test_pose_graph.dir/test_pose_graph.cpp.o.d"
  "test_pose_graph"
  "test_pose_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pose_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
