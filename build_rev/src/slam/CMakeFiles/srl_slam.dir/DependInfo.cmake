
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/slam/carto_slam.cpp" "src/slam/CMakeFiles/srl_slam.dir/carto_slam.cpp.o" "gcc" "src/slam/CMakeFiles/srl_slam.dir/carto_slam.cpp.o.d"
  "/root/repo/src/slam/linalg.cpp" "src/slam/CMakeFiles/srl_slam.dir/linalg.cpp.o" "gcc" "src/slam/CMakeFiles/srl_slam.dir/linalg.cpp.o.d"
  "/root/repo/src/slam/pose_graph.cpp" "src/slam/CMakeFiles/srl_slam.dir/pose_graph.cpp.o" "gcc" "src/slam/CMakeFiles/srl_slam.dir/pose_graph.cpp.o.d"
  "/root/repo/src/slam/probability_grid.cpp" "src/slam/CMakeFiles/srl_slam.dir/probability_grid.cpp.o" "gcc" "src/slam/CMakeFiles/srl_slam.dir/probability_grid.cpp.o.d"
  "/root/repo/src/slam/pure_localization.cpp" "src/slam/CMakeFiles/srl_slam.dir/pure_localization.cpp.o" "gcc" "src/slam/CMakeFiles/srl_slam.dir/pure_localization.cpp.o.d"
  "/root/repo/src/slam/scan_matching.cpp" "src/slam/CMakeFiles/srl_slam.dir/scan_matching.cpp.o" "gcc" "src/slam/CMakeFiles/srl_slam.dir/scan_matching.cpp.o.d"
  "/root/repo/src/slam/submap.cpp" "src/slam/CMakeFiles/srl_slam.dir/submap.cpp.o" "gcc" "src/slam/CMakeFiles/srl_slam.dir/submap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_rev/src/core/CMakeFiles/srl_core_pf.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/sensor/CMakeFiles/srl_sensor.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/gridmap/CMakeFiles/srl_gridmap.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/common/CMakeFiles/srl_common.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/motion/CMakeFiles/srl_motion.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/range/CMakeFiles/srl_range.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/telemetry/CMakeFiles/srl_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
