file(REMOVE_RECURSE
  "CMakeFiles/srl_slam.dir/carto_slam.cpp.o"
  "CMakeFiles/srl_slam.dir/carto_slam.cpp.o.d"
  "CMakeFiles/srl_slam.dir/linalg.cpp.o"
  "CMakeFiles/srl_slam.dir/linalg.cpp.o.d"
  "CMakeFiles/srl_slam.dir/pose_graph.cpp.o"
  "CMakeFiles/srl_slam.dir/pose_graph.cpp.o.d"
  "CMakeFiles/srl_slam.dir/probability_grid.cpp.o"
  "CMakeFiles/srl_slam.dir/probability_grid.cpp.o.d"
  "CMakeFiles/srl_slam.dir/pure_localization.cpp.o"
  "CMakeFiles/srl_slam.dir/pure_localization.cpp.o.d"
  "CMakeFiles/srl_slam.dir/scan_matching.cpp.o"
  "CMakeFiles/srl_slam.dir/scan_matching.cpp.o.d"
  "CMakeFiles/srl_slam.dir/submap.cpp.o"
  "CMakeFiles/srl_slam.dir/submap.cpp.o.d"
  "libsrl_slam.a"
  "libsrl_slam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srl_slam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
