# Empty dependencies file for srl_slam.
# This may be replaced when dependencies are built.
