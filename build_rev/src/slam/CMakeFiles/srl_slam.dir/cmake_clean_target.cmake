file(REMOVE_RECURSE
  "libsrl_slam.a"
)
