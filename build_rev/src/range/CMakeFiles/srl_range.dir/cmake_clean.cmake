file(REMOVE_RECURSE
  "CMakeFiles/srl_range.dir/bresenham.cpp.o"
  "CMakeFiles/srl_range.dir/bresenham.cpp.o.d"
  "CMakeFiles/srl_range.dir/cddt.cpp.o"
  "CMakeFiles/srl_range.dir/cddt.cpp.o.d"
  "CMakeFiles/srl_range.dir/lookup_table.cpp.o"
  "CMakeFiles/srl_range.dir/lookup_table.cpp.o.d"
  "CMakeFiles/srl_range.dir/range_factory.cpp.o"
  "CMakeFiles/srl_range.dir/range_factory.cpp.o.d"
  "CMakeFiles/srl_range.dir/ray_marching.cpp.o"
  "CMakeFiles/srl_range.dir/ray_marching.cpp.o.d"
  "libsrl_range.a"
  "libsrl_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srl_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
