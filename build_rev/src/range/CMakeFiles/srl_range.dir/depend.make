# Empty dependencies file for srl_range.
# This may be replaced when dependencies are built.
