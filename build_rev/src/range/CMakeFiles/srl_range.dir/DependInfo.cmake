
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/range/bresenham.cpp" "src/range/CMakeFiles/srl_range.dir/bresenham.cpp.o" "gcc" "src/range/CMakeFiles/srl_range.dir/bresenham.cpp.o.d"
  "/root/repo/src/range/cddt.cpp" "src/range/CMakeFiles/srl_range.dir/cddt.cpp.o" "gcc" "src/range/CMakeFiles/srl_range.dir/cddt.cpp.o.d"
  "/root/repo/src/range/lookup_table.cpp" "src/range/CMakeFiles/srl_range.dir/lookup_table.cpp.o" "gcc" "src/range/CMakeFiles/srl_range.dir/lookup_table.cpp.o.d"
  "/root/repo/src/range/range_factory.cpp" "src/range/CMakeFiles/srl_range.dir/range_factory.cpp.o" "gcc" "src/range/CMakeFiles/srl_range.dir/range_factory.cpp.o.d"
  "/root/repo/src/range/ray_marching.cpp" "src/range/CMakeFiles/srl_range.dir/ray_marching.cpp.o" "gcc" "src/range/CMakeFiles/srl_range.dir/ray_marching.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_rev/src/gridmap/CMakeFiles/srl_gridmap.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/telemetry/CMakeFiles/srl_telemetry.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/common/CMakeFiles/srl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
