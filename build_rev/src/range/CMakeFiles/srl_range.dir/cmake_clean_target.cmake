file(REMOVE_RECURSE
  "libsrl_range.a"
)
