# CMake generated Testfile for 
# Source directory: /root/repo/src/range
# Build directory: /root/repo/build_rev/src/range
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
