file(REMOVE_RECURSE
  "libsrl_fault.a"
)
