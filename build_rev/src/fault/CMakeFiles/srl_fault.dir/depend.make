# Empty dependencies file for srl_fault.
# This may be replaced when dependencies are built.
