file(REMOVE_RECURSE
  "CMakeFiles/srl_fault.dir/faulted_localizer.cpp.o"
  "CMakeFiles/srl_fault.dir/faulted_localizer.cpp.o.d"
  "CMakeFiles/srl_fault.dir/injector.cpp.o"
  "CMakeFiles/srl_fault.dir/injector.cpp.o.d"
  "CMakeFiles/srl_fault.dir/pipeline.cpp.o"
  "CMakeFiles/srl_fault.dir/pipeline.cpp.o.d"
  "libsrl_fault.a"
  "libsrl_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srl_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
