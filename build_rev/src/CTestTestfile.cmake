# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build_rev/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("telemetry")
subdirs("gridmap")
subdirs("range")
subdirs("motion")
subdirs("sensor")
subdirs("core")
subdirs("fault")
subdirs("slam")
subdirs("vehicle")
subdirs("control")
subdirs("track")
subdirs("recovery")
subdirs("eval")
