# Empty dependencies file for srl_sensor.
# This may be replaced when dependencies are built.
