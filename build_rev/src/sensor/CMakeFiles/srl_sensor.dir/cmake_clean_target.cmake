file(REMOVE_RECURSE
  "libsrl_sensor.a"
)
