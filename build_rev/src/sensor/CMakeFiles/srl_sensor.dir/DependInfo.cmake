
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensor/beam_model.cpp" "src/sensor/CMakeFiles/srl_sensor.dir/beam_model.cpp.o" "gcc" "src/sensor/CMakeFiles/srl_sensor.dir/beam_model.cpp.o.d"
  "/root/repo/src/sensor/lidar.cpp" "src/sensor/CMakeFiles/srl_sensor.dir/lidar.cpp.o" "gcc" "src/sensor/CMakeFiles/srl_sensor.dir/lidar.cpp.o.d"
  "/root/repo/src/sensor/lidar_sim.cpp" "src/sensor/CMakeFiles/srl_sensor.dir/lidar_sim.cpp.o" "gcc" "src/sensor/CMakeFiles/srl_sensor.dir/lidar_sim.cpp.o.d"
  "/root/repo/src/sensor/scanline_layout.cpp" "src/sensor/CMakeFiles/srl_sensor.dir/scanline_layout.cpp.o" "gcc" "src/sensor/CMakeFiles/srl_sensor.dir/scanline_layout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_rev/src/range/CMakeFiles/srl_range.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/common/CMakeFiles/srl_common.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/gridmap/CMakeFiles/srl_gridmap.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/telemetry/CMakeFiles/srl_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
