file(REMOVE_RECURSE
  "CMakeFiles/srl_sensor.dir/beam_model.cpp.o"
  "CMakeFiles/srl_sensor.dir/beam_model.cpp.o.d"
  "CMakeFiles/srl_sensor.dir/lidar.cpp.o"
  "CMakeFiles/srl_sensor.dir/lidar.cpp.o.d"
  "CMakeFiles/srl_sensor.dir/lidar_sim.cpp.o"
  "CMakeFiles/srl_sensor.dir/lidar_sim.cpp.o.d"
  "CMakeFiles/srl_sensor.dir/scanline_layout.cpp.o"
  "CMakeFiles/srl_sensor.dir/scanline_layout.cpp.o.d"
  "libsrl_sensor.a"
  "libsrl_sensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srl_sensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
