# Empty dependencies file for srl_control.
# This may be replaced when dependencies are built.
