file(REMOVE_RECURSE
  "libsrl_control.a"
)
