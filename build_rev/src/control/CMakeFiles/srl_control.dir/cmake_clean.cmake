file(REMOVE_RECURSE
  "CMakeFiles/srl_control.dir/pure_pursuit.cpp.o"
  "CMakeFiles/srl_control.dir/pure_pursuit.cpp.o.d"
  "CMakeFiles/srl_control.dir/speed_profile.cpp.o"
  "CMakeFiles/srl_control.dir/speed_profile.cpp.o.d"
  "libsrl_control.a"
  "libsrl_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srl_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
