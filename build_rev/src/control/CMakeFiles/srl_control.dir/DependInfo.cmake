
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/control/pure_pursuit.cpp" "src/control/CMakeFiles/srl_control.dir/pure_pursuit.cpp.o" "gcc" "src/control/CMakeFiles/srl_control.dir/pure_pursuit.cpp.o.d"
  "/root/repo/src/control/speed_profile.cpp" "src/control/CMakeFiles/srl_control.dir/speed_profile.cpp.o" "gcc" "src/control/CMakeFiles/srl_control.dir/speed_profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_rev/src/track/CMakeFiles/srl_track.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/vehicle/CMakeFiles/srl_vehicle.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/motion/CMakeFiles/srl_motion.dir/DependInfo.cmake"
  "/root/repo/build_rev/src/common/CMakeFiles/srl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
