file(REMOVE_RECURSE
  "libsrl_motion.a"
)
