# Empty dependencies file for srl_motion.
# This may be replaced when dependencies are built.
