file(REMOVE_RECURSE
  "CMakeFiles/srl_motion.dir/diff_drive.cpp.o"
  "CMakeFiles/srl_motion.dir/diff_drive.cpp.o.d"
  "CMakeFiles/srl_motion.dir/tum_model.cpp.o"
  "CMakeFiles/srl_motion.dir/tum_model.cpp.o.d"
  "libsrl_motion.a"
  "libsrl_motion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srl_motion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
