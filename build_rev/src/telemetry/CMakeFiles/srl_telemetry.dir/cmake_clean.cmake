file(REMOVE_RECURSE
  "CMakeFiles/srl_telemetry.dir/contract_monitor.cpp.o"
  "CMakeFiles/srl_telemetry.dir/contract_monitor.cpp.o.d"
  "CMakeFiles/srl_telemetry.dir/events.cpp.o"
  "CMakeFiles/srl_telemetry.dir/events.cpp.o.d"
  "CMakeFiles/srl_telemetry.dir/filter_health.cpp.o"
  "CMakeFiles/srl_telemetry.dir/filter_health.cpp.o.d"
  "CMakeFiles/srl_telemetry.dir/flight_recorder.cpp.o"
  "CMakeFiles/srl_telemetry.dir/flight_recorder.cpp.o.d"
  "CMakeFiles/srl_telemetry.dir/metrics.cpp.o"
  "CMakeFiles/srl_telemetry.dir/metrics.cpp.o.d"
  "CMakeFiles/srl_telemetry.dir/trace_buffer.cpp.o"
  "CMakeFiles/srl_telemetry.dir/trace_buffer.cpp.o.d"
  "libsrl_telemetry.a"
  "libsrl_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srl_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
