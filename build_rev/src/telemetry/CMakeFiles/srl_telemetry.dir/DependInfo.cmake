
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/contract_monitor.cpp" "src/telemetry/CMakeFiles/srl_telemetry.dir/contract_monitor.cpp.o" "gcc" "src/telemetry/CMakeFiles/srl_telemetry.dir/contract_monitor.cpp.o.d"
  "/root/repo/src/telemetry/events.cpp" "src/telemetry/CMakeFiles/srl_telemetry.dir/events.cpp.o" "gcc" "src/telemetry/CMakeFiles/srl_telemetry.dir/events.cpp.o.d"
  "/root/repo/src/telemetry/filter_health.cpp" "src/telemetry/CMakeFiles/srl_telemetry.dir/filter_health.cpp.o" "gcc" "src/telemetry/CMakeFiles/srl_telemetry.dir/filter_health.cpp.o.d"
  "/root/repo/src/telemetry/flight_recorder.cpp" "src/telemetry/CMakeFiles/srl_telemetry.dir/flight_recorder.cpp.o" "gcc" "src/telemetry/CMakeFiles/srl_telemetry.dir/flight_recorder.cpp.o.d"
  "/root/repo/src/telemetry/metrics.cpp" "src/telemetry/CMakeFiles/srl_telemetry.dir/metrics.cpp.o" "gcc" "src/telemetry/CMakeFiles/srl_telemetry.dir/metrics.cpp.o.d"
  "/root/repo/src/telemetry/trace_buffer.cpp" "src/telemetry/CMakeFiles/srl_telemetry.dir/trace_buffer.cpp.o" "gcc" "src/telemetry/CMakeFiles/srl_telemetry.dir/trace_buffer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_rev/src/common/CMakeFiles/srl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
