file(REMOVE_RECURSE
  "libsrl_telemetry.a"
)
