# Empty dependencies file for srl_telemetry.
# This may be replaced when dependencies are built.
