# CMake generated Testfile for 
# Source directory: /root/repo/src/track
# Build directory: /root/repo/build_rev/src/track
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
