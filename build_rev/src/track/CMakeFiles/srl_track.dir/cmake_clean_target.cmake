file(REMOVE_RECURSE
  "libsrl_track.a"
)
