# Empty dependencies file for srl_track.
# This may be replaced when dependencies are built.
