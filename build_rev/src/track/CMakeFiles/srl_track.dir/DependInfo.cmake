
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/track/raceline.cpp" "src/track/CMakeFiles/srl_track.dir/raceline.cpp.o" "gcc" "src/track/CMakeFiles/srl_track.dir/raceline.cpp.o.d"
  "/root/repo/src/track/raceline_optimizer.cpp" "src/track/CMakeFiles/srl_track.dir/raceline_optimizer.cpp.o" "gcc" "src/track/CMakeFiles/srl_track.dir/raceline_optimizer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_rev/src/common/CMakeFiles/srl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
