file(REMOVE_RECURSE
  "CMakeFiles/srl_track.dir/raceline.cpp.o"
  "CMakeFiles/srl_track.dir/raceline.cpp.o.d"
  "CMakeFiles/srl_track.dir/raceline_optimizer.cpp.o"
  "CMakeFiles/srl_track.dir/raceline_optimizer.cpp.o.d"
  "libsrl_track.a"
  "libsrl_track.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srl_track.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
