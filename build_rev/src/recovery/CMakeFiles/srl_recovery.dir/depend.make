# Empty dependencies file for srl_recovery.
# This may be replaced when dependencies are built.
