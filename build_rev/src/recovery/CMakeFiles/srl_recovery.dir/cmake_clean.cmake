file(REMOVE_RECURSE
  "CMakeFiles/srl_recovery.dir/divergence_detector.cpp.o"
  "CMakeFiles/srl_recovery.dir/divergence_detector.cpp.o.d"
  "CMakeFiles/srl_recovery.dir/recovery_policy.cpp.o"
  "CMakeFiles/srl_recovery.dir/recovery_policy.cpp.o.d"
  "CMakeFiles/srl_recovery.dir/supervised_localizer.cpp.o"
  "CMakeFiles/srl_recovery.dir/supervised_localizer.cpp.o.d"
  "libsrl_recovery.a"
  "libsrl_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srl_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
