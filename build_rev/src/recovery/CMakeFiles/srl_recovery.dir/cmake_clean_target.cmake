file(REMOVE_RECURSE
  "libsrl_recovery.a"
)
