file(REMOVE_RECURSE
  "CMakeFiles/srl_eval.dir/bench_compare.cpp.o"
  "CMakeFiles/srl_eval.dir/bench_compare.cpp.o.d"
  "CMakeFiles/srl_eval.dir/benchmark_json.cpp.o"
  "CMakeFiles/srl_eval.dir/benchmark_json.cpp.o.d"
  "CMakeFiles/srl_eval.dir/experiment.cpp.o"
  "CMakeFiles/srl_eval.dir/experiment.cpp.o.d"
  "CMakeFiles/srl_eval.dir/fault_replay.cpp.o"
  "CMakeFiles/srl_eval.dir/fault_replay.cpp.o.d"
  "CMakeFiles/srl_eval.dir/metrics.cpp.o"
  "CMakeFiles/srl_eval.dir/metrics.cpp.o.d"
  "CMakeFiles/srl_eval.dir/postmortem.cpp.o"
  "CMakeFiles/srl_eval.dir/postmortem.cpp.o.d"
  "CMakeFiles/srl_eval.dir/scenario_matrix.cpp.o"
  "CMakeFiles/srl_eval.dir/scenario_matrix.cpp.o.d"
  "CMakeFiles/srl_eval.dir/table.cpp.o"
  "CMakeFiles/srl_eval.dir/table.cpp.o.d"
  "CMakeFiles/srl_eval.dir/trace.cpp.o"
  "CMakeFiles/srl_eval.dir/trace.cpp.o.d"
  "libsrl_eval.a"
  "libsrl_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srl_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
