# Empty dependencies file for srl_eval.
# This may be replaced when dependencies are built.
