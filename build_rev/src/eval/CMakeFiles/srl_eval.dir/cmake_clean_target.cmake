file(REMOVE_RECURSE
  "libsrl_eval.a"
)
