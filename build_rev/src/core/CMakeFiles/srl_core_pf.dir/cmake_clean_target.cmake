file(REMOVE_RECURSE
  "libsrl_core_pf.a"
)
