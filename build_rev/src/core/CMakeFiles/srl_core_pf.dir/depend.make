# Empty dependencies file for srl_core_pf.
# This may be replaced when dependencies are built.
