file(REMOVE_RECURSE
  "CMakeFiles/srl_core_pf.dir/particle_filter.cpp.o"
  "CMakeFiles/srl_core_pf.dir/particle_filter.cpp.o.d"
  "CMakeFiles/srl_core_pf.dir/synpf.cpp.o"
  "CMakeFiles/srl_core_pf.dir/synpf.cpp.o.d"
  "libsrl_core_pf.a"
  "libsrl_core_pf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srl_core_pf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
