file(REMOVE_RECURSE
  "libsrl_common.a"
)
