# Empty dependencies file for srl_common.
# This may be replaced when dependencies are built.
