file(REMOVE_RECURSE
  "CMakeFiles/srl_common.dir/contracts.cpp.o"
  "CMakeFiles/srl_common.dir/contracts.cpp.o.d"
  "CMakeFiles/srl_common.dir/csv.cpp.o"
  "CMakeFiles/srl_common.dir/csv.cpp.o.d"
  "CMakeFiles/srl_common.dir/json.cpp.o"
  "CMakeFiles/srl_common.dir/json.cpp.o.d"
  "CMakeFiles/srl_common.dir/parallel.cpp.o"
  "CMakeFiles/srl_common.dir/parallel.cpp.o.d"
  "CMakeFiles/srl_common.dir/polyline.cpp.o"
  "CMakeFiles/srl_common.dir/polyline.cpp.o.d"
  "CMakeFiles/srl_common.dir/stats.cpp.o"
  "CMakeFiles/srl_common.dir/stats.cpp.o.d"
  "CMakeFiles/srl_common.dir/types.cpp.o"
  "CMakeFiles/srl_common.dir/types.cpp.o.d"
  "libsrl_common.a"
  "libsrl_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srl_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
