
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/contracts.cpp" "src/common/CMakeFiles/srl_common.dir/contracts.cpp.o" "gcc" "src/common/CMakeFiles/srl_common.dir/contracts.cpp.o.d"
  "/root/repo/src/common/csv.cpp" "src/common/CMakeFiles/srl_common.dir/csv.cpp.o" "gcc" "src/common/CMakeFiles/srl_common.dir/csv.cpp.o.d"
  "/root/repo/src/common/json.cpp" "src/common/CMakeFiles/srl_common.dir/json.cpp.o" "gcc" "src/common/CMakeFiles/srl_common.dir/json.cpp.o.d"
  "/root/repo/src/common/parallel.cpp" "src/common/CMakeFiles/srl_common.dir/parallel.cpp.o" "gcc" "src/common/CMakeFiles/srl_common.dir/parallel.cpp.o.d"
  "/root/repo/src/common/polyline.cpp" "src/common/CMakeFiles/srl_common.dir/polyline.cpp.o" "gcc" "src/common/CMakeFiles/srl_common.dir/polyline.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/common/CMakeFiles/srl_common.dir/stats.cpp.o" "gcc" "src/common/CMakeFiles/srl_common.dir/stats.cpp.o.d"
  "/root/repo/src/common/types.cpp" "src/common/CMakeFiles/srl_common.dir/types.cpp.o" "gcc" "src/common/CMakeFiles/srl_common.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
