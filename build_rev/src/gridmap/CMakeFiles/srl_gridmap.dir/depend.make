# Empty dependencies file for srl_gridmap.
# This may be replaced when dependencies are built.
