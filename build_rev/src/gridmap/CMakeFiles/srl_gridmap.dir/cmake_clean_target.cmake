file(REMOVE_RECURSE
  "libsrl_gridmap.a"
)
