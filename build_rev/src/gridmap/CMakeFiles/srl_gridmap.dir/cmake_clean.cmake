file(REMOVE_RECURSE
  "CMakeFiles/srl_gridmap.dir/distance_transform.cpp.o"
  "CMakeFiles/srl_gridmap.dir/distance_transform.cpp.o.d"
  "CMakeFiles/srl_gridmap.dir/map_degrade.cpp.o"
  "CMakeFiles/srl_gridmap.dir/map_degrade.cpp.o.d"
  "CMakeFiles/srl_gridmap.dir/map_io.cpp.o"
  "CMakeFiles/srl_gridmap.dir/map_io.cpp.o.d"
  "CMakeFiles/srl_gridmap.dir/morphology.cpp.o"
  "CMakeFiles/srl_gridmap.dir/morphology.cpp.o.d"
  "CMakeFiles/srl_gridmap.dir/occupancy_grid.cpp.o"
  "CMakeFiles/srl_gridmap.dir/occupancy_grid.cpp.o.d"
  "CMakeFiles/srl_gridmap.dir/track_generator.cpp.o"
  "CMakeFiles/srl_gridmap.dir/track_generator.cpp.o.d"
  "libsrl_gridmap.a"
  "libsrl_gridmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srl_gridmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
