
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gridmap/distance_transform.cpp" "src/gridmap/CMakeFiles/srl_gridmap.dir/distance_transform.cpp.o" "gcc" "src/gridmap/CMakeFiles/srl_gridmap.dir/distance_transform.cpp.o.d"
  "/root/repo/src/gridmap/map_degrade.cpp" "src/gridmap/CMakeFiles/srl_gridmap.dir/map_degrade.cpp.o" "gcc" "src/gridmap/CMakeFiles/srl_gridmap.dir/map_degrade.cpp.o.d"
  "/root/repo/src/gridmap/map_io.cpp" "src/gridmap/CMakeFiles/srl_gridmap.dir/map_io.cpp.o" "gcc" "src/gridmap/CMakeFiles/srl_gridmap.dir/map_io.cpp.o.d"
  "/root/repo/src/gridmap/morphology.cpp" "src/gridmap/CMakeFiles/srl_gridmap.dir/morphology.cpp.o" "gcc" "src/gridmap/CMakeFiles/srl_gridmap.dir/morphology.cpp.o.d"
  "/root/repo/src/gridmap/occupancy_grid.cpp" "src/gridmap/CMakeFiles/srl_gridmap.dir/occupancy_grid.cpp.o" "gcc" "src/gridmap/CMakeFiles/srl_gridmap.dir/occupancy_grid.cpp.o.d"
  "/root/repo/src/gridmap/track_generator.cpp" "src/gridmap/CMakeFiles/srl_gridmap.dir/track_generator.cpp.o" "gcc" "src/gridmap/CMakeFiles/srl_gridmap.dir/track_generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_rev/src/common/CMakeFiles/srl_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
