# CMake generated Testfile for 
# Source directory: /root/repo/src/gridmap
# Build directory: /root/repo/build_rev/src/gridmap
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
