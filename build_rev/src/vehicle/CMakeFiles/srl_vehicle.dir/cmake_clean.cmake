file(REMOVE_RECURSE
  "CMakeFiles/srl_vehicle.dir/sensors.cpp.o"
  "CMakeFiles/srl_vehicle.dir/sensors.cpp.o.d"
  "CMakeFiles/srl_vehicle.dir/vehicle_sim.cpp.o"
  "CMakeFiles/srl_vehicle.dir/vehicle_sim.cpp.o.d"
  "libsrl_vehicle.a"
  "libsrl_vehicle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/srl_vehicle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
