# Empty dependencies file for srl_vehicle.
# This may be replaced when dependencies are built.
