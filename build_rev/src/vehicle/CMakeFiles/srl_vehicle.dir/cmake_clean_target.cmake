file(REMOVE_RECURSE
  "libsrl_vehicle.a"
)
