# CMake generated Testfile for 
# Source directory: /root/repo/src/vehicle
# Build directory: /root/repo/build_rev/src/vehicle
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
