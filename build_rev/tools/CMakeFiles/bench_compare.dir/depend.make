# Empty dependencies file for bench_compare.
# This may be replaced when dependencies are built.
