file(REMOVE_RECURSE
  "CMakeFiles/bench_compare.dir/bench_compare.cpp.o"
  "CMakeFiles/bench_compare.dir/bench_compare.cpp.o.d"
  "bench_compare"
  "bench_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
