file(REMOVE_RECURSE
  "CMakeFiles/check_determinism.dir/check_determinism.cpp.o"
  "CMakeFiles/check_determinism.dir/check_determinism.cpp.o.d"
  "check_determinism"
  "check_determinism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/check_determinism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
