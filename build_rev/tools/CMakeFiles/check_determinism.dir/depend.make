# Empty dependencies file for check_determinism.
# This may be replaced when dependencies are built.
