file(REMOVE_RECURSE
  "CMakeFiles/postmortem.dir/postmortem.cpp.o"
  "CMakeFiles/postmortem.dir/postmortem.cpp.o.d"
  "postmortem"
  "postmortem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/postmortem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
