# Empty dependencies file for postmortem.
# This may be replaced when dependencies are built.
