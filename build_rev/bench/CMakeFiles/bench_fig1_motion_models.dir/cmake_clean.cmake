file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_motion_models.dir/bench_fig1_motion_models.cpp.o"
  "CMakeFiles/bench_fig1_motion_models.dir/bench_fig1_motion_models.cpp.o.d"
  "bench_fig1_motion_models"
  "bench_fig1_motion_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_motion_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
