# Empty compiler generated dependencies file for bench_fig1_motion_models.
# This may be replaced when dependencies are built.
