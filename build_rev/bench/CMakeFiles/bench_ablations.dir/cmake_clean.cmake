file(REMOVE_RECURSE
  "CMakeFiles/bench_ablations.dir/bench_ablations.cpp.o"
  "CMakeFiles/bench_ablations.dir/bench_ablations.cpp.o.d"
  "bench_ablations"
  "bench_ablations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
