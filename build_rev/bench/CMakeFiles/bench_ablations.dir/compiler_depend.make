# Empty compiler generated dependencies file for bench_ablations.
# This may be replaced when dependencies are built.
