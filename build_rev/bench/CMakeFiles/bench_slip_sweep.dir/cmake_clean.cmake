file(REMOVE_RECURSE
  "CMakeFiles/bench_slip_sweep.dir/bench_slip_sweep.cpp.o"
  "CMakeFiles/bench_slip_sweep.dir/bench_slip_sweep.cpp.o.d"
  "bench_slip_sweep"
  "bench_slip_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slip_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
