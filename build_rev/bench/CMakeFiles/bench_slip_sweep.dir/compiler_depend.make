# Empty compiler generated dependencies file for bench_slip_sweep.
# This may be replaced when dependencies are built.
