# Empty compiler generated dependencies file for bench_robustness_matrix.
# This may be replaced when dependencies are built.
