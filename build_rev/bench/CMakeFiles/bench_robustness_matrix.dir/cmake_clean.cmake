file(REMOVE_RECURSE
  "CMakeFiles/bench_robustness_matrix.dir/bench_robustness_matrix.cpp.o"
  "CMakeFiles/bench_robustness_matrix.dir/bench_robustness_matrix.cpp.o.d"
  "bench_robustness_matrix"
  "bench_robustness_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_robustness_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
