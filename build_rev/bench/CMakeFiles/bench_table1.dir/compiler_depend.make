# Empty compiler generated dependencies file for bench_table1.
# This may be replaced when dependencies are built.
