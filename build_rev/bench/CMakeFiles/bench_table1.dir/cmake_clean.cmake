file(REMOVE_RECURSE
  "CMakeFiles/bench_table1.dir/bench_table1.cpp.o"
  "CMakeFiles/bench_table1.dir/bench_table1.cpp.o.d"
  "bench_table1"
  "bench_table1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
