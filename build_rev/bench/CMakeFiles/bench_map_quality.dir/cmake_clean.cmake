file(REMOVE_RECURSE
  "CMakeFiles/bench_map_quality.dir/bench_map_quality.cpp.o"
  "CMakeFiles/bench_map_quality.dir/bench_map_quality.cpp.o.d"
  "bench_map_quality"
  "bench_map_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_map_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
