# Empty dependencies file for bench_map_quality.
# This may be replaced when dependencies are built.
