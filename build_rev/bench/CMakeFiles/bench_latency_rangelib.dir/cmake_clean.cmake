file(REMOVE_RECURSE
  "CMakeFiles/bench_latency_rangelib.dir/bench_latency_rangelib.cpp.o"
  "CMakeFiles/bench_latency_rangelib.dir/bench_latency_rangelib.cpp.o.d"
  "bench_latency_rangelib"
  "bench_latency_rangelib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_latency_rangelib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
