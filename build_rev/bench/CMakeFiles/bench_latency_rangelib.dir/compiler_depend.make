# Empty compiler generated dependencies file for bench_latency_rangelib.
# This may be replaced when dependencies are built.
