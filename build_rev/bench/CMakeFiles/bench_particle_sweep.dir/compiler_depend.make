# Empty compiler generated dependencies file for bench_particle_sweep.
# This may be replaced when dependencies are built.
