file(REMOVE_RECURSE
  "CMakeFiles/bench_particle_sweep.dir/bench_particle_sweep.cpp.o"
  "CMakeFiles/bench_particle_sweep.dir/bench_particle_sweep.cpp.o.d"
  "bench_particle_sweep"
  "bench_particle_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_particle_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
