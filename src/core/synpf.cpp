#include "core/synpf.hpp"

#include <utility>

#include "sensor/scanline_layout.hpp"

namespace srl {

SynPf::SynPf(SynPfConfig config, std::shared_ptr<const OccupancyGrid> map,
             LidarConfig lidar)
    : config_{config} {
  config_.range_options.max_range = lidar.max_range;
  config_.beam.max_range = lidar.max_range;

  std::shared_ptr<const OccupancyGrid> recovery_map =
      config_.filter.recovery ? map : nullptr;
  std::shared_ptr<const RangeMethod> caster =
      make_range_method(config_.range, std::move(map), config_.range_options);

  std::shared_ptr<const MotionModel> motion;
  if (config_.motion == PfMotionKind::kTum) {
    motion = std::make_shared<TumMotionModel>(config_.tum);
  } else {
    motion = std::make_shared<DiffDriveModel>(config_.diff_drive);
  }

  std::vector<int> layout =
      config_.layout == PfLayoutKind::kBoxed
          ? boxed_layout(lidar, config_.beams, config_.boxed_aspect)
          : uniform_layout(lidar, config_.beams);

  pf_ = std::make_unique<ParticleFilter>(
      config_.filter, std::move(caster), std::move(motion),
      BeamModel{config_.beam}, lidar, std::move(layout), config_.seed);
  if (recovery_map) pf_->set_recovery_map(std::move(recovery_map));
}

void SynPf::initialize(const Pose2& pose) {
  pf_->init_pose(pose);
  propagated_ = pose;
  pending_ = OdometryDelta{};
}

void SynPf::on_odometry(const OdometryDelta& odom) {
  pending_.delta = (pending_.delta * odom.delta).normalized();
  pending_.dt += odom.dt;
  pending_.v = odom.v;
  propagated_ = (propagated_ * odom.delta).normalized();
}

void SynPf::set_telemetry(const telemetry::Sink& sink) {
  sink_ = sink;
  h_update_ = sink.metrics != nullptr
                  ? &sink.metrics->histogram("synpf.update_ms")
                  : nullptr;
  pf_->set_telemetry(sink);
}

Pose2 SynPf::on_scan(const LaserScan& scan) {
  telemetry::ScopedSpan span{sink_.trace, "synpf.on_scan"};
  Stopwatch watch;
  pf_->predict(pending_);
  pending_ = OdometryDelta{};
  pf_->correct(scan);
  propagated_ = pf_->estimate();
  const double busy_s = watch.elapsed_s();
  load_.add_busy(busy_s);
  if (h_update_ != nullptr) h_update_->record(busy_s * 1e3);
  return propagated_;
}

}  // namespace srl
