#include "core/synpf.hpp"

#include <utility>

#include "sensor/scanline_layout.hpp"

namespace srl {

SynPf::SynPf(SynPfConfig config, std::shared_ptr<const OccupancyGrid> map,
             LidarConfig lidar)
    : config_{config} {
  config_.range_options.max_range = lidar.max_range;
  config_.beam.max_range = lidar.max_range;

  std::shared_ptr<const OccupancyGrid> recovery_map =
      config_.filter.recovery ? map : nullptr;
  std::shared_ptr<const RangeMethod> caster =
      make_range_method(config_.range, std::move(map), config_.range_options);

  std::shared_ptr<const MotionModel> motion;
  if (config_.motion == PfMotionKind::kTum) {
    motion = std::make_shared<TumMotionModel>(config_.tum);
  } else {
    motion = std::make_shared<DiffDriveModel>(config_.diff_drive);
  }

  std::vector<int> layout =
      config_.layout == PfLayoutKind::kBoxed
          ? boxed_layout(lidar, config_.beams, config_.boxed_aspect)
          : uniform_layout(lidar, config_.beams);

  pf_ = std::make_unique<ParticleFilter>(
      config_.filter, std::move(caster), std::move(motion),
      BeamModel{config_.beam}, lidar, std::move(layout), config_.seed);
  if (recovery_map) pf_->set_recovery_map(std::move(recovery_map));
}

void SynPf::initialize(const Pose2& pose) {
  pf_->init_pose(pose);
  propagated_ = pose;
  pending_ = OdometryDelta{};
}

void SynPf::on_odometry(const OdometryDelta& odom) {
  pending_.delta = (pending_.delta * odom.delta).normalized();
  pending_.dt += odom.dt;
  pending_.v = odom.v;
  propagated_ = (propagated_ * odom.delta).normalized();
}

Pose2 SynPf::on_scan(const LaserScan& scan) {
  Stopwatch watch;
  pf_->predict(pending_);
  pending_ = OdometryDelta{};
  pf_->correct(scan);
  propagated_ = pf_->estimate();
  load_.add_busy(watch.elapsed_s());
  return propagated_;
}

}  // namespace srl
