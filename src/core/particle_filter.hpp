#pragma once

/// \file particle_filter.hpp
/// \brief Monte-Carlo localization core: particle cloud, motion prediction,
/// beam-model correction with likelihood squashing, low-variance resampling,
/// and weighted/circular pose extraction. The filter is assembled from
/// injectable pieces (motion model, range backend, beam layout) so SynPF and
/// its ablations are configurations of this one class.
///
/// The per-particle stages (predict / raycast / weight) fan out over a
/// static-chunked thread pool (`ParticleFilterConfig::n_threads`) and are
/// bitwise-deterministic at any lane count: slot-indexed RNG substreams,
/// per-lane scratch slabs, and fixed-order pairwise reductions remove every
/// scheduling dependence. See DESIGN.md §9 and the PfStream key schedule.
///
/// The cloud itself is a structure-of-arrays slab (ParticleCloud): the
/// weight stage dispatches between a scalar and an AVX2 kernel at runtime
/// (common/simd.hpp) with bit-identical results per lane, and the raycast
/// stage hands each particle's beam fan to the backend's batched
/// ranges_from() entry point. See DESIGN.md §15.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "core/particle_cloud.hpp"
#include "core/pf_kernels.hpp"
#include "gridmap/occupancy_grid.hpp"
#include "motion/motion_model.hpp"
#include "range/range_method.hpp"
#include "sensor/beam_model.hpp"
#include "sensor/lidar.hpp"
#include "telemetry/telemetry.hpp"

namespace srl {

/// Substream key schedule of the particle filter (see Rng::substream). The
/// filter's randomness is split into named streams so that parallelizing one
/// stage can never silently reorder the draws of another:
///
///  - **Master stream** (`rng()`, the seed itself): consumed *only* by
///    init_pose / init_global (serially, in particle order) and by the one
///    systematic-resampling jitter draw per resample event. Nothing else
///    touches it, so its draw schedule is independent of thread count.
///  - **kPredictNoise**: slot `i` of the cloud draws its motion noise from
///    `substream(kPredictNoise, (init_epoch << 32) | i)`, where init_epoch
///    counts init_pose/init_global calls. Streams persist across updates
///    (each predict advances them) and are re-derived on every init, so the
///    noise particle `i` sees is a pure function of (seed, epoch, i) and the
///    number of predicts so far — never of the thread that ran it.
///  - **kRecovery**: resample event `r` draws its per-slot injection trials
///    and replacement poses serially from `substream(kRecovery, r)`.
///  - **kGovernor**: governor-driven cloud resizes (src/governor) draw their
///    systematic-subsample jitter and growth noise from
///    `substream(kGovernor, ordinal)`, where the ordinal is the governor's
///    own update index — the resize is a pure function of (seed, cloud,
///    target, ordinal), never of thread count or wall clock.
///
/// These tag values are pinned — append new streams, never renumber — and
/// test_determinism hardcodes first draws per tag to catch reordering.
enum PfStream : std::uint64_t {
  kPfStreamPredictNoise = 1,
  kPfStreamRecovery = 2,
  kPfStreamGovernor = 3,
};

/// Weighted pose second moments (theta treated via circular statistics).
struct PoseCovariance {
  double xx{0.0};
  double xy{0.0};
  double yy{0.0};
  double tt{0.0};  ///< circular variance proxy: -2 ln(R)
};

struct ParticleFilterConfig {
  int n_particles = 1500;
  /// Likelihood tempering: per-particle weight = exp(sum_log_p / squash).
  /// Values > 1 flatten the posterior, preventing weight collapse when many
  /// beams are scored (MIT racecar PF uses the same device).
  double squash_factor = 3.0;
  /// Resample when effective sample size falls below this fraction of N.
  double resample_ess_fraction = 0.5;
  /// Initialization spread around a known start pose.
  double init_sigma_xy = 0.25;
  double init_sigma_theta = 0.10;

  /// KLD-adaptive sampling (Fox 2001): at each resampling the cloud size is
  /// chosen so that, with probability `kld_quantile_z`, the KL divergence
  /// between the sampled and the true posterior stays below `kld_epsilon`.
  /// A converged cloud occupies few (x, y, theta) bins and shrinks toward
  /// `kld_min_particles`; a dispersed one grows back to `n_particles`.
  bool kld_adaptive = false;
  int kld_min_particles = 300;
  double kld_epsilon = 0.05;
  double kld_quantile_z = 2.33;  ///< 99% normal quantile
  double kld_bin_xy = 0.25;      ///< m, histogram bin size
  double kld_bin_theta = 0.20;   ///< rad

  /// AMCL-style recovery: track slow/fast exponential averages of the
  /// per-beam measurement likelihood; when the fast average falls below
  /// the slow one (the cloud no longer explains the scans — kidnapped or
  /// diverged), inject uniform random particles with probability
  /// max(0, 1 - w_fast / w_slow) per resampled slot. Requires a map via
  /// set_recovery_map().
  bool recovery = false;
  double recovery_alpha_slow = 0.05;
  double recovery_alpha_fast = 0.5;

  /// Worker lanes for the per-particle hot stages (predict / raycast /
  /// weight). 0 = hardware default (overridable via the SRL_THREADS env
  /// knob), 1 = the exact serial path (no pool wakeups), >1 = a fixed pool
  /// of that many lanes. Estimates, covariances, resample decisions and
  /// metrics are **bitwise identical at every setting** — per-slot RNG
  /// substreams, static chunking and fixed-order pairwise reductions remove
  /// every scheduling dependence (DESIGN.md §9). Resampling itself stays
  /// serial: it is O(N), memory-bound, and its systematic CDF walk (plus the
  /// KLD early exit) is inherently order-sensitive.
  int n_threads = 0;
};

class ParticleFilter {
 public:
  /// `caster` evaluates expected ranges on the localization map;
  /// `beam_indices` selects which scan beams are scored (a layout from
  /// scanline_layout.hpp).
  ParticleFilter(ParticleFilterConfig config,
                 std::shared_ptr<const RangeMethod> caster,
                 std::shared_ptr<const MotionModel> motion,
                 BeamModel beam_model, LidarConfig lidar,
                 std::vector<int> beam_indices, std::uint64_t seed = 42);

  /// Gaussian cloud around a known pose.
  void init_pose(const Pose2& pose);
  /// Uniform cloud over the free cells of `map` (global localization).
  void init_global(const OccupancyGrid& map);

  /// Motion prediction: every particle is advanced through the motion model.
  void predict(const OdometryDelta& odom);

  /// Measurement update: re-weight with the beam model, then resample if the
  /// effective sample size has degenerated.
  void correct(const LaserScan& scan);

  /// Weighted mean position and weighted circular mean heading.
  Pose2 estimate() const;
  PoseCovariance covariance() const;

  /// Effective sample size of the current weights.
  double effective_sample_size() const;

  /// The live structure-of-arrays cloud (poses and weights as separate
  /// 64-byte-aligned slabs). Views into it are invalidated by the next
  /// predict/correct/init; copy via particles_snapshot() to keep values.
  const ParticleCloud& cloud() const { return cloud_; }
  /// AoS copy of the cloud for value-semantics consumers (tests, recovery
  /// bookkeeping). Allocates; not a hot-path call.
  std::vector<Particle> particles_snapshot() const { return cloud_.snapshot(); }
  /// Deterministic top-K digest of the cloud: the K heaviest particles in
  /// descending weight order, ties broken by slot index. Pure read — the
  /// flight recorder snapshots this per tick without touching the filter.
  std::vector<Particle> top_particles(std::size_t k) const;
  const ParticleFilterConfig& config() const { return config_; }
  Rng& rng() { return rng_; }
  /// Resolved worker-lane count of the execution pool (>= 1).
  int threads() const { return pool_.threads(); }

  /// Test/diagnostic seam: overwrite the weight vector (one entry per
  /// current particle; finite and non-negative) and renormalize. A
  /// non-positive or non-finite total resets to uniform, mirroring
  /// normalize_weights()'s collapse handling.
  void set_weights(std::span<const double> weights);
  /// Test/diagnostic seam: run one systematic resampling pass regardless of
  /// the ESS trigger (counts toward resample_count()).
  void force_resample();

  /// Number of resampling events so far (diagnostic).
  long resample_count() const { return resamples_; }
  /// Current cloud size (== config n_particles unless KLD-adaptive).
  int current_particles() const { return static_cast<int>(cloud_.size()); }

  /// Governor seam (src/governor): score only every `stride`-th configured
  /// beam in subsequent correct() calls — the first rung of the shedding
  /// ladder. `stride <= 1` restores the exact full-layout path (the same
  /// vectors are used, so it is bitwise identical to a filter that never
  /// changed stride); larger strides rebuild the decimated subset once per
  /// change, never per update.
  void set_beam_stride(int stride);
  int beam_stride() const { return beam_stride_; }
  /// Beams scored by the next correct() under the current stride.
  int active_beams() const {
    return beam_stride_ <= 1 ? static_cast<int>(beam_indices_.size())
                             : static_cast<int>(active_indices_.size());
  }
  /// Configured beam count, independent of any decimation stride (the
  /// governor's decision input — deciding against active_beams() would
  /// compound last update's stride into this one's).
  int total_beams() const { return static_cast<int>(beam_indices_.size()); }

  /// Governor seam: while true, correct() skips the ESS-triggered resample
  /// (the last rung of the shedding ladder — resampling is O(N) and not
  /// size-sheddable). force_resample() is unaffected.
  void set_resample_suppressed(bool suppressed) {
    resample_suppressed_ = suppressed;
  }
  bool resample_suppressed() const { return resample_suppressed_; }

  /// Governor seam: toggle KLD-adaptive resampling at runtime (same effect
  /// as constructing with `config.kld_adaptive`; applies from the next
  /// resample event on).
  void set_kld_adaptive(bool on) { config_.kld_adaptive = on; }

  /// Governor seam: deterministically resize the cloud *between* updates.
  /// Shrinking keeps a weight-proportional systematic subsample of the
  /// current cloud; growing clones slots round-robin with Gaussian jitter
  /// so the clones explore rather than duplicate. All draws come serially
  /// from `substream(kPfStreamGovernor, ordinal)` (the caller's update
  /// ordinal), so the result is a pure function of (seed, cloud, target,
  /// ordinal) — bitwise identical at any thread count. Weights reset to
  /// uniform (the resized cloud is re-scored by the next correct()).
  /// `target == current_particles()` is a strict no-op.
  void govern_resize(int target, std::uint64_t ordinal);

  /// Provide the map used to draw recovery particles (and enable the
  /// kidnapped-robot recovery configured by `config.recovery`).
  void set_recovery_map(std::shared_ptr<const OccupancyGrid> map) {
    recovery_map_ = std::move(map);
  }
  /// Last computed injection probability (diagnostic; 0 while healthy).
  double recovery_injection_prob() const { return injection_prob_; }

  /// Recovery seam (src/recovery): replace each particle, with independent
  /// probability `fraction`, by a uniform pose over the recovery map's free
  /// cells, then reset the weights to uniform (the injected particles carry
  /// no likelihood yet; the next correct() re-scores the whole cloud). All
  /// draws come from the caller-provided `rng` serially in slot order, so
  /// the outcome is a pure function of (cloud, fraction, rng state) — never
  /// of the thread count. Requires set_recovery_map(); `fraction <= 0` is a
  /// strict no-op (no draw, no weight touch).
  void inject_uniform(double fraction, Rng& rng);

  /// Recovery seam: temperature multiplier on the likelihood squash for
  /// subsequent correct() calls (effective squash = squash_factor * scale).
  /// Values > 1 flatten the posterior further — measurement tempering while
  /// a supervisor distrusts the scans. 1.0 is the bitwise-exact nominal
  /// path (x * 1.0 == x for every finite squash factor).
  void set_squash_scale(double scale);
  double squash_scale() const { return squash_scale_; }

  /// Attach a telemetry sink. With a metrics registry, every correct()
  /// records per-stage latency histograms (pf.predict_ms / pf.raycast_ms /
  /// pf.weight_ms / pf.resample_ms), samples a FilterHealth snapshot into
  /// gauges (pf.ess, pf.weight_entropy, pf.max_weight_share, ...), and
  /// forwards the registry to the range backend's query counters. With a
  /// trace buffer, stages emit nested spans. A default-constructed sink
  /// detaches; the filter then runs the exact un-instrumented hot path.
  void set_telemetry(const telemetry::Sink& sink);
  /// Health snapshot of the most recent measurement update (only populated
  /// while a metrics registry is attached).
  const telemetry::FilterHealth& health() const { return health_; }

 private:
  void normalize_weights();
  /// Contract helper: every weight finite and non-negative, sum within 1e-6
  /// of 1. Only evaluated in SYNPF_CHECKED builds.
  bool weights_normalized() const;
  void resample();
  /// Sample ESS / entropy / max-share gauges on the pre-resample weights.
  void sample_health();
  /// KLD bound: particles required for k occupied histogram bins.
  std::size_t kld_bound(std::size_t k) const;
  /// Uniform random pose over the recovery map's free cells, drawn from
  /// `rng` (a kPfStreamRecovery substream during injection).
  Pose2 sample_free_pose(Rng& rng);
  /// Grow the per-slot prediction-noise streams to cover `n` slots
  /// (substream key schedule documented at PfStream).
  void ensure_slot_rngs(std::size_t n);

  ParticleFilterConfig config_;
  std::shared_ptr<const RangeMethod> caster_;
  std::shared_ptr<const MotionModel> motion_;
  BeamModel beam_model_;
  LidarConfig lidar_;
  std::vector<int> beam_indices_;
  std::vector<double> beam_angles_;
  /// Governor beam decimation (set_beam_stride): every `beam_stride_`-th
  /// entry of the full layout. Empty (and unused) while the stride is 1.
  int beam_stride_{1};
  std::vector<int> active_indices_;
  std::vector<double> active_angles_;
  bool resample_suppressed_{false};
  /// True only inside govern_resize()/resample(): the cloud and its
  /// side arrays are transiently inconsistent, so the digest/injection
  /// seams contract against observing it (SYNPF_CHECKED).
  bool resizing_{false};

  ParticleCloud cloud_;
  /// Resampling scratch: the systematic draws land here, then the clouds
  /// swap (non-KLD) or the kept prefix is written back (KLD). Member so
  /// steady-state resamples never allocate.
  ParticleCloud drawn_scratch_;
  std::vector<double> log_weights_;  ///< scratch for correct()
  /// Scratch: n x k expected ranges. Chunks own contiguous row ranges, so
  /// concurrent writes land in disjoint slabs (no sharing beyond the one
  /// cache line straddling each chunk boundary).
  std::vector<float> expected_;
  /// Scan-dependent half of the weight-stage table lookup, rebuilt once
  /// per correct() (see pf_kernels.hpp).
  pf_kernels::ScanContext scan_ctx_;
  Rng rng_;
  /// Per-slot prediction-noise substreams (grow-only within an init epoch;
  /// re-derived on every init_pose/init_global).
  std::vector<Rng> slot_rngs_;
  std::uint32_t init_epoch_{0};
  ThreadPool pool_;
  long resamples_{0};

  // Telemetry (all pointers null while detached).
  telemetry::Sink sink_{};
  telemetry::Histogram* h_predict_{nullptr};
  telemetry::Histogram* h_raycast_{nullptr};
  telemetry::Histogram* h_weight_{nullptr};
  telemetry::Histogram* h_resample_{nullptr};
  telemetry::Histogram* h_ess_fraction_{nullptr};
  telemetry::Gauge* g_ess_{nullptr};
  telemetry::Gauge* g_ess_fraction_{nullptr};
  telemetry::Gauge* g_entropy_{nullptr};
  telemetry::Gauge* g_max_share_{nullptr};
  telemetry::Gauge* g_particles_{nullptr};
  telemetry::Gauge* g_pose_jump_{nullptr};
  telemetry::Gauge* g_threads_{nullptr};
  telemetry::Counter* c_updates_{nullptr};
  telemetry::Counter* c_resamples_{nullptr};
  telemetry::Counter* c_jump_alarms_{nullptr};
  telemetry::PoseJumpDetector jump_detector_{};
  telemetry::FilterHealth health_{};

  std::shared_ptr<const OccupancyGrid> recovery_map_;
  double squash_scale_{1.0};
  double w_slow_{0.0};
  double w_fast_{0.0};
  double injection_prob_{0.0};
};

}  // namespace srl
