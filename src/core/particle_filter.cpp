#include "core/particle_filter.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_set>
#include <utility>

#include "common/angles.hpp"
#include "sensor/scanline_layout.hpp"

namespace srl {

ParticleFilter::ParticleFilter(ParticleFilterConfig config,
                               std::shared_ptr<const RangeMethod> caster,
                               std::shared_ptr<const MotionModel> motion,
                               BeamModel beam_model, LidarConfig lidar,
                               std::vector<int> beam_indices,
                               std::uint64_t seed)
    : config_{config},
      caster_{std::move(caster)},
      motion_{std::move(motion)},
      beam_model_{std::move(beam_model)},
      lidar_{std::move(lidar)},
      beam_indices_{std::move(beam_indices)},
      beam_angles_{layout_angles(lidar_, beam_indices_)},
      rng_{seed} {
  particles_.resize(static_cast<std::size_t>(std::max(config_.n_particles, 1)));
  log_weights_.resize(particles_.size());
}

void ParticleFilter::init_pose(const Pose2& pose) {
  const double w = 1.0 / static_cast<double>(particles_.size());
  for (Particle& p : particles_) {
    p.pose = Pose2{pose.x + rng_.gaussian(config_.init_sigma_xy),
                   pose.y + rng_.gaussian(config_.init_sigma_xy),
                   normalize_angle(pose.theta +
                                   rng_.gaussian(config_.init_sigma_theta))};
    p.weight = w;
  }
}

void ParticleFilter::init_global(const OccupancyGrid& map) {
  // Rejection-sample uniformly over free cells with random headings.
  const double w = 1.0 / static_cast<double>(particles_.size());
  for (Particle& p : particles_) {
    for (int tries = 0; tries < 10000; ++tries) {
      const int ix = rng_.uniform_int(0, map.width() - 1);
      const int iy = rng_.uniform_int(0, map.height() - 1);
      if (!map.is_free(ix, iy)) continue;
      const Vec2 c = map.grid_to_world(ix, iy);
      p.pose = Pose2{c.x, c.y, rng_.uniform(-kPi, kPi)};
      break;
    }
    p.weight = w;
  }
}

void ParticleFilter::predict(const OdometryDelta& odom) {
  for (Particle& p : particles_) {
    p.pose = motion_->sample(p.pose, odom, rng_);
  }
}

void ParticleFilter::correct(const LaserScan& scan) {
  const std::size_t n = particles_.size();
  const std::size_t k = beam_indices_.size();
  double max_log = -std::numeric_limits<double>::infinity();

  for (std::size_t i = 0; i < n; ++i) {
    const Pose2 sensor = particles_[i].pose * lidar_.mount;
    double log_w = 0.0;
    for (std::size_t j = 0; j < k; ++j) {
      const auto idx = static_cast<std::size_t>(beam_indices_[j]);
      if (idx >= scan.ranges.size()) continue;
      const float measured = scan.ranges[idx];
      const float expected =
          caster_->range({sensor.x, sensor.y, sensor.theta + beam_angles_[j]});
      log_w += beam_model_.log_prob(measured, expected);
    }
    log_weights_[i] = log_w;
    max_log = std::max(max_log, log_w);
  }

  // Recovery bookkeeping (AMCL w_slow / w_fast): the per-beam geometric
  // mean likelihood of the cloud is the health signal.
  if (config_.recovery && k > 0) {
    double sum_log = 0.0;
    for (std::size_t i = 0; i < n; ++i) sum_log += log_weights_[i];
    const double w_avg =
        std::exp(sum_log / (static_cast<double>(n) * static_cast<double>(k)));
    if (w_slow_ == 0.0) w_slow_ = w_avg;
    if (w_fast_ == 0.0) w_fast_ = w_avg;
    w_slow_ += config_.recovery_alpha_slow * (w_avg - w_slow_);
    w_fast_ += config_.recovery_alpha_fast * (w_avg - w_fast_);
    injection_prob_ =
        w_slow_ > 0.0 ? std::max(0.0, 1.0 - w_fast_ / w_slow_) : 0.0;
  }

  // Squash and exponentiate relative to the max for numerical stability;
  // fold in the prior weights (uniform after a resample, so usually a no-op).
  const double inv_squash = 1.0 / std::max(config_.squash_factor, 1e-6);
  for (std::size_t i = 0; i < n; ++i) {
    particles_[i].weight *=
        std::exp((log_weights_[i] - max_log) * inv_squash);
  }
  normalize_weights();

  if (effective_sample_size() <
      config_.resample_ess_fraction * static_cast<double>(n)) {
    resample();
  }
}

void ParticleFilter::normalize_weights() {
  double sum = 0.0;
  for (const Particle& p : particles_) sum += p.weight;
  if (sum <= 0.0 || !std::isfinite(sum)) {
    // Total weight collapse (all particles in impossible states): reset to
    // uniform rather than propagating NaNs; the next updates re-shape it.
    const double w = 1.0 / static_cast<double>(particles_.size());
    for (Particle& p : particles_) p.weight = w;
    return;
  }
  for (Particle& p : particles_) p.weight /= sum;
}

double ParticleFilter::effective_sample_size() const {
  double sum_sq = 0.0;
  for (const Particle& p : particles_) sum_sq += p.weight * p.weight;
  return sum_sq > 0.0 ? 1.0 / sum_sq : 0.0;
}

std::size_t ParticleFilter::kld_bound(std::size_t k) const {
  if (k <= 1) return static_cast<std::size_t>(config_.kld_min_particles);
  // Fox's chi-square/Wilson-Hilferty bound on the required sample count.
  const double kd = static_cast<double>(k - 1);
  const double a = 2.0 / (9.0 * kd);
  const double b = 1.0 - a + std::sqrt(a) * config_.kld_quantile_z;
  const double n = kd / (2.0 * config_.kld_epsilon) * b * b * b;
  return static_cast<std::size_t>(std::ceil(n));
}

Pose2 ParticleFilter::sample_free_pose() {
  const OccupancyGrid& map = *recovery_map_;
  for (int tries = 0; tries < 10000; ++tries) {
    const int ix = rng_.uniform_int(0, map.width() - 1);
    const int iy = rng_.uniform_int(0, map.height() - 1);
    if (!map.is_free(ix, iy)) continue;
    const Vec2 c = map.grid_to_world(ix, iy);
    return Pose2{c.x, c.y, rng_.uniform(-kPi, kPi)};
  }
  return particles_.empty() ? Pose2{} : particles_.front().pose;
}

void ParticleFilter::resample() {
  // Low-variance (systematic) resampling: one uniform draw, `max_n` equally
  // spaced pointers into the cumulative weight distribution. O(N), preserves
  // particle diversity better than multinomial sampling.
  //
  // With KLD adaptation, the cloud is cut off once the Fox bound for the
  // number of occupied (x, y, theta) histogram bins is met — tight
  // posteriors need few particles, dispersed ones keep the full budget.
  // A plain prefix of the systematic draws would cover only the low-CDF
  // region, so the draws are visited with a stride coprime to their count,
  // making every prefix an approximately uniform subsample of the CDF.
  const std::size_t n = particles_.size();
  const auto max_n = static_cast<std::size_t>(
      std::max(config_.n_particles, config_.kld_min_particles));
  std::vector<Particle> drawn;
  drawn.reserve(max_n);
  const double step = 1.0 / static_cast<double>(max_n);
  double target = rng_.uniform(0.0, step);
  double cumulative = particles_[0].weight;
  std::size_t i = 0;
  for (std::size_t m = 0; m < max_n; ++m) {
    while (cumulative < target && i + 1 < n) {
      ++i;
      cumulative += particles_[i].weight;
    }
    drawn.push_back(Particle{particles_[i].pose, step});
    target += step;
  }

  // Kidnapped-robot recovery: replace a fraction of the resampled cloud
  // with uniform random poses when the measurement likelihood collapsed.
  const auto inject_recovery = [this](std::vector<Particle>& cloud) {
    if (!config_.recovery || !recovery_map_ || injection_prob_ <= 0.0) return;
    for (Particle& p : cloud) {
      if (rng_.uniform() < injection_prob_) p.pose = sample_free_pose();
    }
  };

  if (!config_.kld_adaptive) {
    particles_ = std::move(drawn);
    inject_recovery(particles_);
    log_weights_.resize(particles_.size());
    for (Particle& p : particles_) {
      p.weight = 1.0 / static_cast<double>(particles_.size());
    }
    ++resamples_;
    return;
  }

  // Visit the systematic draws in a coprime stride so any prefix is an
  // (approximately) uniform subsample of the CDF.
  std::size_t stride = max_n / 2 + 1;
  while (std::gcd(stride, max_n) != 1) ++stride;

  std::vector<Particle> kept;
  kept.reserve(max_n);
  std::unordered_set<std::uint64_t> bins;
  const auto min_keep =
      static_cast<std::size_t>(std::max(config_.kld_min_particles, 1));
  std::size_t idx = 0;
  for (std::size_t m = 0; m < max_n; ++m, idx = (idx + stride) % max_n) {
    const Particle& p = drawn[idx];
    kept.push_back(p);
    const auto bx = static_cast<std::int64_t>(
        std::floor(p.pose.x / config_.kld_bin_xy));
    const auto by = static_cast<std::int64_t>(
        std::floor(p.pose.y / config_.kld_bin_xy));
    const auto bt = static_cast<std::int64_t>(
        std::floor(normalize_angle(p.pose.theta) / config_.kld_bin_theta));
    bins.insert((static_cast<std::uint64_t>(bx & 0x1FFFFF) << 42) |
                (static_cast<std::uint64_t>(by & 0x1FFFFF) << 21) |
                static_cast<std::uint64_t>(bt & 0x1FFFFF));
    if (kept.size() >= min_keep && kept.size() >= kld_bound(bins.size())) {
      break;
    }
  }
  particles_ = std::move(kept);
  inject_recovery(particles_);
  log_weights_.resize(particles_.size());
  for (Particle& p : particles_) {
    p.weight = 1.0 / static_cast<double>(particles_.size());
  }
  ++resamples_;
}

Pose2 ParticleFilter::estimate() const {
  double x = 0.0;
  double y = 0.0;
  double cs = 0.0;
  double sn = 0.0;
  for (const Particle& p : particles_) {
    x += p.weight * p.pose.x;
    y += p.weight * p.pose.y;
    cs += p.weight * std::cos(p.pose.theta);
    sn += p.weight * std::sin(p.pose.theta);
  }
  return Pose2{x, y, std::atan2(sn, cs)};
}

PoseCovariance ParticleFilter::covariance() const {
  const Pose2 mean = estimate();
  PoseCovariance cov;
  double r = 0.0;
  for (const Particle& p : particles_) {
    const double dx = p.pose.x - mean.x;
    const double dy = p.pose.y - mean.y;
    cov.xx += p.weight * dx * dx;
    cov.xy += p.weight * dx * dy;
    cov.yy += p.weight * dy * dy;
    r += p.weight * std::cos(angle_diff(p.pose.theta, mean.theta));
  }
  r = std::clamp(r, 1e-12, 1.0);
  cov.tt = -2.0 * std::log(r);
  return cov;
}

}  // namespace srl
