#include "core/particle_filter.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "common/angles.hpp"
#include "common/contracts.hpp"
#include "common/simd.hpp"
#include "common/u64_set.hpp"
#include "sensor/scanline_layout.hpp"

namespace srl {

ParticleFilter::ParticleFilter(ParticleFilterConfig config,
                               std::shared_ptr<const RangeMethod> caster,
                               std::shared_ptr<const MotionModel> motion,
                               BeamModel beam_model, LidarConfig lidar,
                               std::vector<int> beam_indices,
                               std::uint64_t seed)
    : config_{config},
      caster_{std::move(caster)},
      motion_{std::move(motion)},
      beam_model_{std::move(beam_model)},
      lidar_{std::move(lidar)},
      beam_indices_{std::move(beam_indices)},
      beam_angles_{layout_angles(lidar_, beam_indices_)},
      rng_{seed},
      pool_{config_.n_threads} {
  cloud_.resize(static_cast<std::size_t>(std::max(config_.n_particles, 1)));
  log_weights_.resize(cloud_.size());
}

void ParticleFilter::ensure_slot_rngs(std::size_t n) {
  while (slot_rngs_.size() < n) {
    // Key schedule pinned at PfStream: (epoch << 32) | slot, so re-inits
    // re-key every stream and mid-run KLD growth extends deterministically.
    const auto key = (static_cast<std::uint64_t>(init_epoch_) << 32) |
                     static_cast<std::uint64_t>(slot_rngs_.size());
    slot_rngs_.push_back(rng_.substream(kPfStreamPredictNoise, key));
  }
}

void ParticleFilter::init_pose(const Pose2& pose) {
  ++init_epoch_;
  slot_rngs_.clear();
  const double w = 1.0 / static_cast<double>(cloud_.size());
  for (std::size_t i = 0; i < cloud_.size(); ++i) {
    cloud_.set_pose(
        i, Pose2{pose.x + rng_.gaussian(config_.init_sigma_xy),
                 pose.y + rng_.gaussian(config_.init_sigma_xy),
                 normalize_angle(pose.theta +
                                 rng_.gaussian(config_.init_sigma_theta))});
    cloud_.weight()[i] = w;
  }
}

void ParticleFilter::init_global(const OccupancyGrid& map) {
  ++init_epoch_;
  slot_rngs_.clear();
  // Rejection-sample uniformly over free cells with random headings.
  const double w = 1.0 / static_cast<double>(cloud_.size());
  for (std::size_t i = 0; i < cloud_.size(); ++i) {
    for (int tries = 0; tries < 10000; ++tries) {
      const int ix = rng_.uniform_int(0, map.width() - 1);
      const int iy = rng_.uniform_int(0, map.height() - 1);
      if (!map.is_free(ix, iy)) continue;
      const Vec2 c = map.grid_to_world(ix, iy);
      cloud_.set_pose(i, Pose2{c.x, c.y, rng_.uniform(-kPi, kPi)});
      break;
    }
    cloud_.weight()[i] = w;
  }
}

void ParticleFilter::set_telemetry(const telemetry::Sink& sink) {
  sink_ = sink;
  if (sink.metrics != nullptr) {
    telemetry::MetricsRegistry& m = *sink.metrics;
    h_predict_ = &m.histogram("pf.predict_ms");
    h_raycast_ = &m.histogram("pf.raycast_ms");
    h_weight_ = &m.histogram("pf.weight_ms");
    h_resample_ = &m.histogram("pf.resample_ms");
    // ESS *distribution* (the gauges below keep only the last value): the
    // scenario matrix reads its percentiles as the filter-health score.
    h_ess_fraction_ = &m.histogram("pf.ess_fraction_dist");
    g_ess_ = &m.gauge("pf.ess");
    g_ess_fraction_ = &m.gauge("pf.ess_fraction");
    g_entropy_ = &m.gauge("pf.weight_entropy");
    g_max_share_ = &m.gauge("pf.max_weight_share");
    g_particles_ = &m.gauge("pf.particles");
    g_pose_jump_ = &m.gauge("pf.pose_jump_m");
    g_threads_ = &m.gauge("pf.threads");
    g_threads_->set(static_cast<double>(pool_.threads()));
    c_updates_ = &m.counter("pf.updates");
    c_resamples_ = &m.counter("pf.resamples");
    c_jump_alarms_ = &m.counter("pf.pose_jump_alarms");
    caster_->attach_telemetry(m);
  } else {
    h_predict_ = h_raycast_ = h_weight_ = h_resample_ = nullptr;
    h_ess_fraction_ = nullptr;
    g_ess_ = g_ess_fraction_ = g_entropy_ = g_max_share_ = nullptr;
    g_particles_ = g_pose_jump_ = g_threads_ = nullptr;
    c_updates_ = c_resamples_ = c_jump_alarms_ = nullptr;
  }
}

void ParticleFilter::predict(const OdometryDelta& odom) {
  SYNPF_EXPECTS_MSG(finite(odom.delta) && std::isfinite(odom.v) &&
                        std::isfinite(odom.dt),
                    "odometry increment must be finite");
  telemetry::ScopedSpan span{sink_.trace, "pf.predict"};
  telemetry::StageTimer timer{h_predict_};
  ensure_slot_rngs(cloud_.size());
  // Scalar per lane by design: each slot consumes its own RNG substream
  // draw sequence and the motion model's libm trig pins the bits, so a
  // vectorized predict could not stay bitwise identical (DESIGN.md §15).
  pool_.parallel_for(cloud_.size(), [&](int /*lane*/, std::size_t begin,
                                        std::size_t end) {
    telemetry::ScopedSpan chunk{sink_.trace, "pf.predict.chunk"};
    // srl-lint: realtime
    for (std::size_t i = begin; i < end; ++i) {
      // Slot i's noise comes from its own substream, so the sample is the
      // same whichever lane runs it.
      cloud_.set_pose(i, motion_->sample(cloud_.pose(i), odom, slot_rngs_[i]));
    }
    // srl-lint: end-realtime
  });
  timer.stop();
}

void ParticleFilter::correct(const LaserScan& scan) {
  const std::size_t n = cloud_.size();
  // Governor beam decimation: at stride 1 the full layout vectors are used
  // directly, so a filter whose stride never changed runs the exact
  // historical path bit for bit.
  const std::vector<int>& beams =
      beam_stride_ <= 1 ? beam_indices_ : active_indices_;
  const std::vector<double>& angles =
      beam_stride_ <= 1 ? beam_angles_ : active_angles_;
  const std::size_t k = beams.size();

  // Propagated prior estimate, kept only for the pose-jump detector.
  const bool health_on = sink_.metrics != nullptr;
  const Pose2 predicted = health_on ? estimate() : Pose2{};

  // One backend per update: hoisted out of the parallel regions so every
  // lane of this correct() runs the same kernel even if a test re-pins
  // the dispatch concurrently.
  const simd::Backend backend = simd::active();

  // Stage 1 — raycast: expected range for every (particle, beam) pair
  // through the backend's per-particle batch entry point. Chunks write
  // disjoint contiguous row slabs of `expected_`.
  {
    telemetry::ScopedSpan span{sink_.trace, "pf.raycast"};
    telemetry::StageTimer timer{h_raycast_};
    expected_.resize(n * k);
    pool_.parallel_for(n, [&](int /*lane*/, std::size_t begin,
                              std::size_t end) {
      telemetry::ScopedSpan chunk{sink_.trace, "pf.raycast.chunk"};
      // srl-lint: realtime
      for (std::size_t i = begin; i < end; ++i) {
        const Pose2 sensor = cloud_.pose(i) * lidar_.mount;
        caster_->ranges_from(sensor, angles,
                             std::span<float>{expected_}.subspan(i * k, k));
      }
      // srl-lint: end-realtime
    });
    timer.stop();
  }

  // Stage 2 — weight: score each particle's expected ranges against the
  // measured scan with the beam model, then squash and normalize. The
  // scan-dependent half of the table lookup is hoisted into scan_ctx_
  // once; the per-particle scoring fans out through the dispatched
  // kernel (each chunk writes only its own log_weights_ rows); the max
  // scan and the recovery/normalization sums run in fixed order so the
  // result is thread-count independent.
  {
    telemetry::ScopedSpan weight_span{sink_.trace, "pf.weight"};
    telemetry::StageTimer weight_timer{h_weight_};
    scan_ctx_.build(beam_model_, scan, beams);
    log_weights_.resize(n);
    pool_.parallel_for(n, [&](int /*lane*/, std::size_t begin,
                              std::size_t end) {
      telemetry::ScopedSpan chunk{sink_.trace, "pf.weight.chunk"};
      // srl-lint: realtime
      pf_kernels::accumulate_log_weights(backend, scan_ctx_, expected_.data(),
                                         k, begin, end, log_weights_.data());
      // srl-lint: end-realtime
    });
    double max_log = -std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      max_log = std::max(max_log, log_weights_[i]);
    }

    // Recovery bookkeeping (AMCL w_slow / w_fast): the per-beam geometric
    // mean likelihood of the cloud is the health signal.
    if (config_.recovery && k > 0) {
      const double sum_log = pairwise_sum(log_weights_);
      const double w_avg = std::exp(
          sum_log / (static_cast<double>(n) * static_cast<double>(k)));
      if (w_slow_ == 0.0) w_slow_ = w_avg;
      if (w_fast_ == 0.0) w_fast_ = w_avg;
      w_slow_ += config_.recovery_alpha_slow * (w_avg - w_slow_);
      w_fast_ += config_.recovery_alpha_fast * (w_avg - w_fast_);
      injection_prob_ =
          w_slow_ > 0.0 ? std::max(0.0, 1.0 - w_fast_ / w_slow_) : 0.0;
    }

    // Squash and exponentiate relative to the max for numerical stability;
    // fold in the prior weights (uniform after a resample, usually a no-op).
    const double inv_squash =
        1.0 / std::max(config_.squash_factor * squash_scale_, 1e-6);
    double* weights = cloud_.weight();
    pool_.parallel_for(n, [&](int /*lane*/, std::size_t begin,
                              std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        weights[i] *= std::exp((log_weights_[i] - max_log) * inv_squash);
      }
    });
    normalize_weights();
    weight_timer.stop();
  }

  SYNPF_INVARIANT_MSG(effective_sample_size() > 0.0,
                      "ESS must be positive after weighting");

  // Health is sampled on the post-update, pre-resample weights — after a
  // resample they are uniform by construction and carry no signal.
  if (health_on) sample_health();

  const double pre_resample_ess = effective_sample_size();
  if (!resample_suppressed_ &&
      pre_resample_ess <
          config_.resample_ess_fraction * static_cast<double>(n)) {
    telemetry::ScopedSpan span{sink_.trace, "pf.resample"};
    telemetry::StageTimer timer{h_resample_};
    resample();
    timer.stop();
    if (c_resamples_ != nullptr) c_resamples_->add();
    if (sink_.events != nullptr) {
      json::Value data = json::Value::object();
      data.set("ess_fraction",
               json::Value::number(pre_resample_ess / static_cast<double>(n)));
      data.set("particles",
               json::Value::number(static_cast<double>(cloud_.size())));
      sink_.events->emit(scan.t, telemetry::EventSeverity::kDebug,
                         telemetry::EventCategory::kFilter, "pf.resample",
                         std::move(data));
    }
  }

  if (health_on) {
    health_.resample_count = resamples_;
    jump_detector_.update(predicted, estimate(), health_);
    if (health_.pose_jump_alarm) {
      if (c_jump_alarms_ != nullptr) c_jump_alarms_->add();
      if (sink_.events != nullptr) {
        json::Value data = json::Value::object();
        data.set("jump_m", json::Value::number(health_.pose_jump_m));
        sink_.events->emit(scan.t, telemetry::EventSeverity::kWarn,
                           telemetry::EventCategory::kFilter, "pf.pose_jump",
                           std::move(data));
      }
    }
    g_pose_jump_->set(health_.pose_jump_m);
    g_particles_->set(static_cast<double>(cloud_.size()));
    c_updates_->add();
  }
}

void ParticleFilter::sample_health() {
  // The SoA weight slab is already the contiguous array the estimators
  // want — no copy (the AoS layout needed a gather into scratch here).
  const std::span<const double> weights = cloud_.weights();
  health_.n_particles = static_cast<int>(cloud_.size());
  health_.ess = telemetry::effective_sample_size(weights);
  health_.ess_fraction =
      health_.n_particles > 0
          ? health_.ess / static_cast<double>(health_.n_particles)
          : 0.0;
  health_.weight_entropy = telemetry::weight_entropy(weights);
  health_.normalized_entropy =
      health_.n_particles > 1
          ? health_.weight_entropy /
                std::log(static_cast<double>(health_.n_particles))
          : 0.0;
  health_.max_weight_share = telemetry::max_weight_share(weights);
  g_ess_->set(health_.ess);
  g_ess_fraction_->set(health_.ess_fraction);
  if (h_ess_fraction_ != nullptr) h_ess_fraction_->record(health_.ess_fraction);
  g_entropy_->set(health_.weight_entropy);
  g_max_share_->set(health_.max_weight_share);
}

void ParticleFilter::normalize_weights() {
  // Fixed pairwise order: the sum (and so every normalized weight) is
  // bitwise identical at any thread count.
  double* weights = cloud_.weight();
  const double sum = pairwise_reduce(
      cloud_.size(), [weights](std::size_t i) { return weights[i]; });
  if (sum <= 0.0 || !std::isfinite(sum)) {
    // Total weight collapse (all particles in impossible states): reset to
    // uniform rather than propagating NaNs; the next updates re-shape it.
    cloud_.fill_weights(1.0 / static_cast<double>(cloud_.size()));
    return;
  }
  for (std::size_t i = 0; i < cloud_.size(); ++i) {
    weights[i] /= sum;
  }
  SYNPF_ENSURES_MSG(weights_normalized(),
                    "particle weights must be finite, non-negative and sum to 1");
}

bool ParticleFilter::weights_normalized() const {
  const double* weights = cloud_.weight();
  double sum = 0.0;
  for (std::size_t i = 0; i < cloud_.size(); ++i) {
    if (!std::isfinite(weights[i]) || weights[i] < 0.0) return false;
    sum += weights[i];
  }
  return std::abs(sum - 1.0) < 1e-6;
}

double ParticleFilter::effective_sample_size() const {
  const double* weights = cloud_.weight();
  const double sum_sq =
      pairwise_reduce(cloud_.size(), [weights](std::size_t i) {
        const double w = weights[i];
        return w * w;
      });
  return sum_sq > 0.0 ? 1.0 / sum_sq : 0.0;
}

std::vector<Particle> ParticleFilter::top_particles(std::size_t k) const {
  // Digest consumers (flight recorder, tests) must never observe the cloud
  // mid-resize: the pose and weight slabs are transiently inconsistent
  // while resample()/govern_resize() rebuild them.
  SYNPF_EXPECTS_MSG(!resizing_,
                    "top_particles must not be called mid-resize");
  SYNPF_EXPECTS_MSG(log_weights_.size() == cloud_.size(),
                    "cloud and weight scratch must agree before a digest");
  k = std::min(k, cloud_.size());
  const double* weights = cloud_.weight();
  std::vector<std::size_t> idx(cloud_.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                    idx.end(), [weights](std::size_t a, std::size_t b) {
                      const double wa = weights[a];
                      const double wb = weights[b];
                      if (wa != wb) return wa > wb;
                      return a < b;  // stable under weight ties
                    });
  std::vector<Particle> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) out.push_back(cloud_.particle(idx[i]));
  return out;
}

void ParticleFilter::set_weights(std::span<const double> weights) {
  SYNPF_EXPECTS_MSG(weights.size() == cloud_.size(),
                    "one weight per current particle");
  for (std::size_t i = 0; i < cloud_.size(); ++i) {
    cloud_.weight()[i] = weights[i];
  }
  normalize_weights();
}

void ParticleFilter::force_resample() { resample(); }

void ParticleFilter::inject_uniform(double fraction, Rng& rng) {
  SYNPF_EXPECTS_MSG(std::isfinite(fraction),
                    "injection fraction must be finite");
  SYNPF_EXPECTS_MSG(!resizing_,
                    "inject_uniform must not be called mid-resize");
  SYNPF_EXPECTS_MSG(log_weights_.size() == cloud_.size(),
                    "cloud and weight scratch must agree before injection");
  if (fraction <= 0.0 || recovery_map_ == nullptr) return;
  const double f = std::min(fraction, 1.0);
  for (std::size_t i = 0; i < cloud_.size(); ++i) {
    if (rng.uniform() < f) cloud_.set_pose(i, sample_free_pose(rng));
  }
  cloud_.fill_weights(1.0 / static_cast<double>(cloud_.size()));
}

void ParticleFilter::set_beam_stride(int stride) {
  SYNPF_EXPECTS_MSG(stride >= 1, "beam stride must be >= 1");
  stride = std::max(stride, 1);
  if (stride == beam_stride_) return;
  beam_stride_ = stride;
  active_indices_.clear();
  active_angles_.clear();
  if (stride == 1) return;  // correct() reads the full layout directly
  const auto step = static_cast<std::size_t>(stride);
  for (std::size_t b = 0; b < beam_indices_.size(); b += step) {
    active_indices_.push_back(beam_indices_[b]);
    active_angles_.push_back(beam_angles_[b]);
  }
}

void ParticleFilter::govern_resize(int target, std::uint64_t ordinal) {
  SYNPF_EXPECTS_MSG(target > 0, "resize target must be positive");
  const std::size_t n = cloud_.size();
  const auto want = static_cast<std::size_t>(std::max(target, 1));
  if (want == n) return;  // strict no-op: no draw, no weight touch
  resizing_ = true;
  Rng rng = rng_.substream(kPfStreamGovernor, ordinal);
  if (want < n) {
    // Weight-proportional systematic subsample: the shrunken cloud is an
    // unbiased low-variance resampling of the old one (same CDF walk as
    // resample(), just to a smaller count).
    drawn_scratch_.resize(want);
    const double step = 1.0 / static_cast<double>(want);
    double cdf_target = rng.uniform(0.0, step);
    const double* weights = cloud_.weight();
    double cumulative = weights[0];
    std::size_t i = 0;
    for (std::size_t m = 0; m < want; ++m) {
      while (cumulative < cdf_target && i + 1 < n) {
        ++i;
        cumulative += weights[i];
      }
      drawn_scratch_.set_pose(m, cloud_.pose(i));
      cdf_target += step;
    }
    cloud_.swap(drawn_scratch_);
  } else {
    // Grow: clone existing slots round-robin with init-sigma jitter so the
    // new particles explore instead of duplicating. Serial in slot order;
    // the new slots' prediction streams are re-derived by the next
    // predict()'s ensure_slot_rngs with the pinned (epoch, slot) keys.
    cloud_.resize(want);
    for (std::size_t m = n; m < want; ++m) {
      const Pose2 base = cloud_.pose(m % n);
      cloud_.set_pose(
          m, Pose2{base.x + rng.gaussian(config_.init_sigma_xy),
                   base.y + rng.gaussian(config_.init_sigma_xy),
                   normalize_angle(base.theta +
                                   rng.gaussian(config_.init_sigma_theta))});
    }
  }
  log_weights_.resize(cloud_.size());
  cloud_.fill_weights(1.0 / static_cast<double>(cloud_.size()));
  resizing_ = false;
  SYNPF_ENSURES_MSG(cloud_.size() == want && log_weights_.size() == want,
                    "cloud and weight scratch must agree after a resize");
}

void ParticleFilter::set_squash_scale(double scale) {
  SYNPF_EXPECTS_MSG(std::isfinite(scale) && scale > 0.0,
                    "squash scale must be positive and finite");
  squash_scale_ = scale;
}

std::size_t ParticleFilter::kld_bound(std::size_t k) const {
  if (k <= 1) return static_cast<std::size_t>(config_.kld_min_particles);
  // Fox's chi-square/Wilson-Hilferty bound on the required sample count.
  const double kd = static_cast<double>(k - 1);
  const double a = 2.0 / (9.0 * kd);
  const double b = 1.0 - a + std::sqrt(a) * config_.kld_quantile_z;
  const double n = kd / (2.0 * config_.kld_epsilon) * b * b * b;
  return static_cast<std::size_t>(std::ceil(n));
}

Pose2 ParticleFilter::sample_free_pose(Rng& rng) {
  const OccupancyGrid& map = *recovery_map_;
  for (int tries = 0; tries < 10000; ++tries) {
    const int ix = rng.uniform_int(0, map.width() - 1);
    const int iy = rng.uniform_int(0, map.height() - 1);
    if (!map.is_free(ix, iy)) continue;
    const Vec2 c = map.grid_to_world(ix, iy);
    return Pose2{c.x, c.y, rng.uniform(-kPi, kPi)};
  }
  return cloud_.empty() ? Pose2{} : cloud_.pose(0);
}

void ParticleFilter::resample() {
  // Low-variance (systematic) resampling: one uniform draw, `max_n` equally
  // spaced pointers into the cumulative weight distribution. O(N), preserves
  // particle diversity better than multinomial sampling.
  //
  // With KLD adaptation, the cloud is cut off once the Fox bound for the
  // number of occupied (x, y, theta) histogram bins is met — tight
  // posteriors need few particles, dispersed ones keep the full budget.
  // A plain prefix of the systematic draws would cover only the low-CDF
  // region, so the draws are visited with a stride coprime to their count,
  // making every prefix an approximately uniform subsample of the CDF.
  const std::size_t n = cloud_.size();
  const auto max_n = static_cast<std::size_t>(
      std::max(config_.n_particles, config_.kld_min_particles));
  resizing_ = true;
  drawn_scratch_.resize(max_n);
  const double step = 1.0 / static_cast<double>(max_n);
  // The one master-stream draw per resample event (see PfStream schedule).
  double target = rng_.uniform(0.0, step);
  const double* weights = cloud_.weight();
  double cumulative = weights[0];
  std::size_t i = 0;
  // srl-lint: realtime
  for (std::size_t m = 0; m < max_n; ++m) {
    while (cumulative < target && i + 1 < n) {
      ++i;
      cumulative += weights[i];
    }
    drawn_scratch_.set_pose(m, cloud_.pose(i));
    target += step;
  }
  // srl-lint: end-realtime

  // Kidnapped-robot recovery: replace a fraction of the resampled cloud
  // with uniform random poses when the measurement likelihood collapsed.
  // All draws come from this event's kPfStreamRecovery substream (keyed by
  // the resample ordinal), so injection never perturbs the master stream.
  const auto inject_recovery = [this](ParticleCloud& cloud) {
    if (!config_.recovery || !recovery_map_ || injection_prob_ <= 0.0) return;
    Rng recovery_rng = rng_.substream(
        kPfStreamRecovery, static_cast<std::uint64_t>(resamples_));
    for (std::size_t s = 0; s < cloud.size(); ++s) {
      if (recovery_rng.uniform() < injection_prob_) {
        cloud.set_pose(s, sample_free_pose(recovery_rng));
      }
    }
  };

  if (!config_.kld_adaptive) {
    cloud_.swap(drawn_scratch_);
    inject_recovery(cloud_);
    log_weights_.resize(cloud_.size());
    cloud_.fill_weights(1.0 / static_cast<double>(cloud_.size()));
    ++resamples_;
    resizing_ = false;
    return;
  }

  // Visit the systematic draws in a coprime stride so any prefix is an
  // (approximately) uniform subsample of the CDF.
  std::size_t stride = max_n / 2 + 1;
  while (std::gcd(stride, max_n) != 1) ++stride;

  // The kept prefix overwrites cloud_ in place: the old particles are dead
  // once the systematic draws above are complete.
  cloud_.resize(max_n);
  std::size_t kept = 0;
  // Deterministic by construction (pinned SplitMix64 hashing, no iteration):
  // the KLD bin count must be a pure function of the particle sequence on
  // every platform, which std::unordered_set does not promise.
  U64Set bins;
  const auto min_keep =
      static_cast<std::size_t>(std::max(config_.kld_min_particles, 1));
  std::size_t idx = 0;
  for (std::size_t m = 0; m < max_n; ++m, idx = (idx + stride) % max_n) {
    const Pose2 p = drawn_scratch_.pose(idx);
    cloud_.set_pose(kept, p);
    ++kept;
    const auto bx =
        static_cast<std::int64_t>(std::floor(p.x / config_.kld_bin_xy));
    const auto by =
        static_cast<std::int64_t>(std::floor(p.y / config_.kld_bin_xy));
    const auto bt = static_cast<std::int64_t>(
        std::floor(normalize_angle(p.theta) / config_.kld_bin_theta));
    bins.insert((static_cast<std::uint64_t>(bx & 0x1FFFFF) << 42) |
                (static_cast<std::uint64_t>(by & 0x1FFFFF) << 21) |
                static_cast<std::uint64_t>(bt & 0x1FFFFF));
    if (kept >= min_keep && kept >= kld_bound(bins.size())) {
      break;
    }
  }
  cloud_.resize(kept);
  inject_recovery(cloud_);
  log_weights_.resize(kept);
  cloud_.fill_weights(1.0 / static_cast<double>(kept));
  ++resamples_;
  resizing_ = false;
}

Pose2 ParticleFilter::estimate() const {
  const double* xs = cloud_.x();
  const double* ys = cloud_.y();
  const double* ts = cloud_.theta();
  const double* weights = cloud_.weight();
  double x = 0.0;
  double y = 0.0;
  double cs = 0.0;
  double sn = 0.0;
  for (std::size_t i = 0; i < cloud_.size(); ++i) {
    x += weights[i] * xs[i];
    y += weights[i] * ys[i];
    cs += weights[i] * std::cos(ts[i]);
    sn += weights[i] * std::sin(ts[i]);
  }
  return Pose2{x, y, std::atan2(sn, cs)};
}

PoseCovariance ParticleFilter::covariance() const {
  const Pose2 mean = estimate();
  const double* xs = cloud_.x();
  const double* ys = cloud_.y();
  const double* ts = cloud_.theta();
  const double* weights = cloud_.weight();
  PoseCovariance cov;
  double r = 0.0;
  for (std::size_t i = 0; i < cloud_.size(); ++i) {
    const double dx = xs[i] - mean.x;
    const double dy = ys[i] - mean.y;
    cov.xx += weights[i] * dx * dx;
    cov.xy += weights[i] * dx * dy;
    cov.yy += weights[i] * dy * dy;
    r += weights[i] * std::cos(angle_diff(ts[i], mean.theta));
  }
  r = std::clamp(r, 1e-12, 1.0);
  cov.tt = -2.0 * std::log(r);
  return cov;
}

}  // namespace srl
