#pragma once

/// \file localizer.hpp
/// \brief The localizer interface shared by SynPF and the CartoLite
/// pure-localization baseline — the two systems Table I compares. A
/// localizer consumes proprioception (odometry increments) at high rate and
/// exteroception (LiDAR scans) at scan rate, and maintains a pose estimate.

#include <string>

#include "common/types.hpp"
#include "motion/motion_model.hpp"
#include "sensor/lidar.hpp"
#include "telemetry/telemetry.hpp"

namespace srl {

class Localizer {
 public:
  virtual ~Localizer() = default;

  /// (Re)initialize at a known pose (e.g. the starting grid).
  virtual void initialize(const Pose2& pose) = 0;

  /// Feed one wheel-odometry increment (called at odometry rate).
  virtual void on_odometry(const OdometryDelta& odom) = 0;

  /// Feed one LiDAR revolution; returns the refreshed pose estimate.
  virtual Pose2 on_scan(const LaserScan& scan) = 0;

  /// Current best pose estimate (valid between scans too: odometry-propagated).
  virtual Pose2 pose() const = 0;

  virtual std::string name() const = 0;

  /// Mean wall-clock cost of one on_scan call, ms (the latency metric).
  virtual double mean_scan_update_ms() const = 0;
  /// Total busy seconds across all updates (for the CPU-load column).
  virtual double total_busy_s() const = 0;

  /// Attach a telemetry sink (metrics registry and/or trace buffer); an
  /// implementation that overrides this records per-stage latency
  /// histograms, spans, and health gauges into it. Either pointer may be
  /// null; the default implementation ignores the sink entirely.
  virtual void set_telemetry(const telemetry::Sink& sink) { (void)sink; }
};

}  // namespace srl
