#pragma once

/// \file particle_cloud.hpp
/// \brief Structure-of-arrays particle storage for the SynPF hot path.
///
/// The filter used to keep `std::vector<Particle>` (array-of-structs).
/// Every stage of the sensor update touches exactly one or two fields of
/// every particle, so AoS wasted two thirds of each cache line and made
/// the weight stage un-vectorizable. The cloud stores the four fields as
/// separate 64-byte-aligned slabs (`x[] / y[] / theta[] / weight[]`):
/// unit-stride streams for the scalar loops, aligned 4-wide `__m256d`
/// lanes for the AVX2 kernels, and the exact same iteration order either
/// way (bitwise determinism is the repo's contract — layout may change
/// performance, never bits).
///
/// `chunk()` exposes the per-lane view the ThreadPool's static partition
/// hands each worker: chunk c of T covers [c*n/T, (c+1)*n/T), matching
/// `ThreadPool::chunk_begin`, so per-lane kernels can be handed raw slab
/// pointers without re-deriving offsets.

#include <cstddef>
#include <span>
#include <vector>

#include "common/simd.hpp"
#include "common/types.hpp"

namespace srl {

/// One hypothesis: a pose and its importance weight. Kept as the AoS
/// interchange type for snapshots, resampling digests, and tests; the
/// filter's working storage is ParticleCloud.
struct Particle {
  Pose2 pose;
  double weight{1.0};
};

class ParticleCloud {
 public:
  ParticleCloud() = default;
  explicit ParticleCloud(std::size_t n) { resize(n); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Grow or shrink to n particles. The surviving prefix keeps its values
  /// bit-for-bit; new slots get pose (0,0,0) and weight 1.
  void resize(std::size_t n);

  // Raw slab access (64-byte aligned, `size()` valid elements each).
  double* x() { return x_.data(); }
  double* y() { return y_.data(); }
  double* theta() { return theta_.data(); }
  double* weight() { return weight_.data(); }
  const double* x() const { return x_.data(); }
  const double* y() const { return y_.data(); }
  const double* theta() const { return theta_.data(); }
  const double* weight() const { return weight_.data(); }

  std::span<const double> weights() const { return {weight_.data(), size_}; }
  std::span<double> weights() { return {weight_.data(), size_}; }

  Pose2 pose(std::size_t i) const { return Pose2{x_[i], y_[i], theta_[i]}; }
  void set_pose(std::size_t i, const Pose2& p) {
    x_[i] = p.x;
    y_[i] = p.y;
    theta_[i] = p.theta;
  }
  Particle particle(std::size_t i) const { return {pose(i), weight_[i]}; }
  void set_particle(std::size_t i, const Particle& p) {
    set_pose(i, p.pose);
    weight_[i] = p.weight;
  }

  void fill_weights(double w);

  /// One thread-pool lane's slice of the slabs: raw pointers offset to
  /// `begin`, plus the slice extent. Pointers stay valid until the next
  /// resize()/swap().
  struct ChunkView {
    double* x{nullptr};
    double* y{nullptr};
    double* theta{nullptr};
    double* weight{nullptr};
    std::size_t begin{0};
    std::size_t count{0};
  };
  ChunkView chunk(std::size_t begin, std::size_t end);

  /// AoS copy for consumers that want value semantics (tests, digests,
  /// recovery bookkeeping). Allocates; not for the per-update path.
  std::vector<Particle> snapshot() const;

  void swap(ParticleCloud& other) noexcept;

 private:
  std::size_t size_{0};
  simd::AlignedVector<double> x_;
  simd::AlignedVector<double> y_;
  simd::AlignedVector<double> theta_;
  simd::AlignedVector<double> weight_;
};

}  // namespace srl
