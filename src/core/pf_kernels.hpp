#pragma once

/// \file pf_kernels.hpp
/// \brief Batched weight-stage kernels for the particle filter.
///
/// The sensor update's weight stage evaluates, for every particle i,
///
///     log_w[i] = sum_j log_table[bin(measured_j) * dim + bin(expected_ij)]
///
/// over the scored beams j in ascending order. Everything that depends
/// only on the measured scan — which beams are scored, each beam's
/// measured-bin row offset, the table pointer and bin scale — is hoisted
/// into a ScanContext built once per update (it used to be re-derived
/// per particle). The kernels then run either as a portable scalar loop
/// or as an AVX2 path scoring four particles per iteration.
///
/// Bitwise contract: both kernels perform, per particle, the *same*
/// operations in the *same* order — bin arithmetic `trunc(double(e) *
/// inv_res + 0.5)` clamped to [0, dim), additions in ascending beam
/// order from +0.0. The AVX2 path vectorizes across particles (lanes
/// never mix), uses unfused multiply/add intrinsics (the kernels are
/// compiled without FMA, so no contraction can occur), and its
/// `_mm256_cvttpd_epi32` truncation matches the scalar `static_cast
/// <int>` (both are x86 cvttpd; out-of-range lanes saturate to INT_MIN
/// and clamp to bin 0 either way). tests/test_simd.cpp and
/// check_determinism regime 9 hold the two paths bit-equal.

#include <cstdint>
#include <span>

#include "common/simd.hpp"
#include "sensor/beam_model.hpp"
#include "sensor/lidar.hpp"

namespace srl::pf_kernels {

/// Per-update context for the weight kernels: the scan-dependent half of
/// the table lookup, computed once instead of n_particles times.
struct ScanContext {
  /// Column (beam slot j in the expected-range matrix) of each scored
  /// beam, ascending. Beams whose index falls outside the measured scan
  /// are dropped here, exactly like the old per-particle `continue`.
  simd::AlignedVector<std::int32_t> columns;
  /// Row offset `range_bin(measured) * dim` of each scored beam.
  simd::AlignedVector<std::int32_t> row_offsets;
  const double* log_table{nullptr};
  double inv_resolution{0.0};
  std::int32_t table_dim{0};
  /// True when columns == {0, 1, ..., m-1} (no beam fell outside the
  /// scan): each particle's scored expected ranges are contiguous, so the
  /// AVX2 kernel can swap its strided gathers for plain loads + a 4x4
  /// transpose — same values into the same lanes, just cheaper.
  bool dense_columns{false};

  std::size_t scored_beams() const { return columns.size(); }

  /// Rebuild for a new scan. Reuses capacity; O(beams).
  void build(const BeamModel& model, const LaserScan& scan,
             std::span<const int> beam_indices);
};

/// Scalar reference: out[i] = summed log-likelihood of particle i's
/// expected-range row, for i in [begin, end). `expected` is the n x k
/// row-major matrix; `k` its row stride.
void accumulate_log_weights_scalar(const ScanContext& ctx,
                                   const float* expected, std::size_t k,
                                   std::size_t begin, std::size_t end,
                                   double* out);

#if defined(SRL_SIMD_X86_AVX2)
/// AVX2 path: four particles per iteration, bit-identical to the scalar
/// reference per lane. Call only when simd::cpu_has_avx2().
void accumulate_log_weights_avx2(const ScanContext& ctx,
                                 const float* expected, std::size_t k,
                                 std::size_t begin, std::size_t end,
                                 double* out);
#endif

/// Dispatch on `backend` (degrades to scalar where AVX2 is unavailable).
/// The caller hoists `simd::active()` out of its parallel region so every
/// lane of one update runs the same kernel.
void accumulate_log_weights(simd::Backend backend, const ScanContext& ctx,
                            const float* expected, std::size_t k,
                            std::size_t begin, std::size_t end, double* out);

}  // namespace srl::pf_kernels
