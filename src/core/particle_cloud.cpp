#include "core/particle_cloud.hpp"

#include <utility>

#include "common/contracts.hpp"

namespace srl {

void ParticleCloud::resize(std::size_t n) {
  x_.resize(n, 0.0);
  y_.resize(n, 0.0);
  theta_.resize(n, 0.0);
  weight_.resize(n, 1.0);
  size_ = n;
}

void ParticleCloud::fill_weights(double w) {
  for (std::size_t i = 0; i < size_; ++i) {
    weight_[i] = w;
  }
}

ParticleCloud::ChunkView ParticleCloud::chunk(std::size_t begin,
                                              std::size_t end) {
  SYNPF_EXPECTS(begin <= end && end <= size_);
  return ChunkView{x_.data() + begin,      y_.data() + begin,
                   theta_.data() + begin,  weight_.data() + begin,
                   begin,                  end - begin};
}

std::vector<Particle> ParticleCloud::snapshot() const {
  std::vector<Particle> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(particle(i));
  }
  return out;
}

void ParticleCloud::swap(ParticleCloud& other) noexcept {
  std::swap(size_, other.size_);
  x_.swap(other.x_);
  y_.swap(other.y_);
  theta_.swap(other.theta_);
  weight_.swap(other.weight_);
}

}  // namespace srl
