#include "core/pf_kernels.hpp"

#include <cstddef>

#if defined(SRL_SIMD_X86_AVX2)
#include <immintrin.h>
#endif

namespace srl::pf_kernels {

void ScanContext::build(const BeamModel& model, const LaserScan& scan,
                        std::span<const int> beam_indices) {
  log_table = model.log_table_data();
  inv_resolution = model.inv_resolution();
  table_dim = model.table_dim();
  columns.clear();
  row_offsets.clear();
  columns.reserve(beam_indices.size());
  row_offsets.reserve(beam_indices.size());
  for (std::size_t j = 0; j < beam_indices.size(); ++j) {
    const auto idx = static_cast<std::size_t>(beam_indices[j]);
    if (idx >= scan.ranges.size()) continue;
    columns.push_back(static_cast<std::int32_t>(j));
    row_offsets.push_back(model.range_bin(scan.ranges[idx]) * table_dim);
  }
  // Sequential pushes of j mean columns is the identity iff nothing was
  // skipped.
  dense_columns = columns.size() == beam_indices.size();
}

void accumulate_log_weights_scalar(const ScanContext& ctx,
                                   const float* expected, std::size_t k,
                                   std::size_t begin, std::size_t end,
                                   double* out) {
  const double* table = ctx.log_table;
  const double inv_res = ctx.inv_resolution;
  const std::int32_t dim_m1 = ctx.table_dim - 1;
  const std::int32_t* cols = ctx.columns.data();
  const std::int32_t* rows = ctx.row_offsets.data();
  const std::size_t m = ctx.scored_beams();
  for (std::size_t i = begin; i < end; ++i) {
    const float* row = expected + i * k;
    double log_w = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      // Exactly BeamModel::range_bin on the expected value; the measured
      // half of the lookup is already folded into rows[j].
      std::int32_t b = static_cast<std::int32_t>(
          static_cast<double>(row[cols[j]]) * inv_res + 0.5);
      b = b < 0 ? 0 : (b > dim_m1 ? dim_m1 : b);
      log_w += table[static_cast<std::size_t>(rows[j] + b)];
    }
    out[i] = log_w;
  }
}

#if defined(SRL_SIMD_X86_AVX2)
// GCC's gather intrinsics seed their destination register with
// _mm256_undefined_pd(), which -Wmaybe-uninitialized flags under -Werror
// (GCC PR105593). The gathers here use the all-ones-mask forms, so every
// lane is written; the warning is a false positive.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
__attribute__((target("avx2"))) void accumulate_log_weights_avx2(
    const ScanContext& ctx, const float* expected, std::size_t k,
    std::size_t begin, std::size_t end, double* out) {
  const double* table = ctx.log_table;
  const std::int32_t* cols = ctx.columns.data();
  const std::int32_t* rows = ctx.row_offsets.data();
  const std::size_t m = ctx.scored_beams();
  const __m256d inv_res = _mm256_set1_pd(ctx.inv_resolution);
  const __m256d half = _mm256_set1_pd(0.5);
  const __m128i zero = _mm_setzero_si128();
  const __m128i dim_m1 = _mm_set1_epi32(ctx.table_dim - 1);
  const auto kk = static_cast<std::int32_t>(k);
  // Lane l reads particle (i + l)'s row: stride k floats apart.
  const __m128i row_stride = _mm_setr_epi32(0, kk, 2 * kk, 3 * kk);

  std::size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    const float* base = expected + i * k;
    __m256d acc = _mm256_setzero_pd();
    std::size_t j = 0;
    // Dense hot path: the four particles' scored ranges are contiguous
    // rows, so four plain 16-byte loads plus a 4x4 transpose replace four
    // strided `_mm_i32gather_ps` per beam group (gathers are the
    // bottleneck on gather-slow cores). Lanes receive the same values in
    // the same ascending beam order — bitwise identical, just cheaper.
    if (ctx.dense_columns) {
      for (; j + 4 <= m; j += 4) {
        __m128 e0 = _mm_loadu_ps(base + 0 * k + j);
        __m128 e1 = _mm_loadu_ps(base + 1 * k + j);
        __m128 e2 = _mm_loadu_ps(base + 2 * k + j);
        __m128 e3 = _mm_loadu_ps(base + 3 * k + j);
        _MM_TRANSPOSE4_PS(e0, e1, e2, e3);
        const __m128 beams[4] = {e0, e1, e2, e3};
        for (int l = 0; l < 4; ++l) {
          __m256d ed = _mm256_cvtps_pd(beams[l]);
          // Unfused mul then add — same two roundings as the scalar path.
          ed = _mm256_add_pd(_mm256_mul_pd(ed, inv_res), half);
          __m128i b = _mm256_cvttpd_epi32(ed);
          b = _mm_min_epi32(_mm_max_epi32(b, zero), dim_m1);
          const __m128i idx =
              _mm_add_epi32(b, _mm_set1_epi32(rows[j + static_cast<std::size_t>(l)]));
          acc = _mm256_add_pd(acc, _mm256_i32gather_pd(table, idx, 8));
        }
      }
    }
    // Sparse columns, and the dense tail of fewer than four beams.
    for (; j < m; ++j) {
      const __m128 e4 = _mm_i32gather_ps(base + cols[j], row_stride, 4);
      __m256d ed = _mm256_cvtps_pd(e4);
      // Unfused mul then add — same two roundings as the scalar path.
      ed = _mm256_add_pd(_mm256_mul_pd(ed, inv_res), half);
      __m128i b = _mm256_cvttpd_epi32(ed);
      b = _mm_min_epi32(_mm_max_epi32(b, zero), dim_m1);
      const __m128i idx = _mm_add_epi32(b, _mm_set1_epi32(rows[j]));
      acc = _mm256_add_pd(acc, _mm256_i32gather_pd(table, idx, 8));
    }
    _mm256_storeu_pd(out + i, acc);
  }
  if (i < end) {
    accumulate_log_weights_scalar(ctx, expected, k, i, end, out);
  }
}
#pragma GCC diagnostic pop
#endif

void accumulate_log_weights(simd::Backend backend, const ScanContext& ctx,
                            const float* expected, std::size_t k,
                            std::size_t begin, std::size_t end, double* out) {
#if defined(SRL_SIMD_X86_AVX2)
  if (backend == simd::Backend::kAvx2 && simd::cpu_has_avx2()) {
    accumulate_log_weights_avx2(ctx, expected, k, begin, end, out);
    return;
  }
#else
  (void)backend;
#endif
  accumulate_log_weights_scalar(ctx, expected, k, begin, end, out);
}

}  // namespace srl::pf_kernels
