#pragma once

/// \file synpf.hpp
/// \brief SynPF — the paper's localization algorithm, assembled from its
/// three synergized ingredients:
///   1. the TUM speed-adaptive Ackermann motion model (motion/tum_model.hpp),
///   2. the boxed LiDAR scanline layout (sensor/scanline_layout.hpp),
///   3. rangelibc-accelerated expected-range queries, LUT mode by default
///      (range/lookup_table.hpp) for GPU-less on-board computers.
///
/// Every ingredient is switchable through SynPfConfig, which is how the
/// ablation benches turn SynPF back into a vanilla MCL (diff-drive motion,
/// uniform layout, Bresenham ranges).

#include <cstdint>
#include <memory>

#include "core/localizer.hpp"
#include "core/particle_filter.hpp"
#include "common/timer.hpp"
#include "motion/diff_drive.hpp"
#include "motion/tum_model.hpp"

namespace srl {

enum class PfMotionKind { kTum, kDiffDrive };
enum class PfLayoutKind { kBoxed, kUniform };

struct SynPfConfig {
  ParticleFilterConfig filter{};
  PfMotionKind motion = PfMotionKind::kTum;
  PfLayoutKind layout = PfLayoutKind::kBoxed;
  RangeMethodKind range = RangeMethodKind::kLut;
  RangeMethodOptions range_options{};
  int beams = 60;              ///< scored beams per particle
  double boxed_aspect = 3.0;   ///< corridor aspect ratio for the boxed layout
  BeamModelParams beam{};
  TumModelParams tum{};
  DiffDriveParams diff_drive{};
  std::uint64_t seed = 42;
};

class SynPf final : public Localizer {
 public:
  /// Builds the range backend over `map` (which for the LUT involves the
  /// precomputation pass — done once, before the race).
  SynPf(SynPfConfig config, std::shared_ptr<const OccupancyGrid> map,
        LidarConfig lidar);

  void initialize(const Pose2& pose) override;
  void on_odometry(const OdometryDelta& odom) override;
  Pose2 on_scan(const LaserScan& scan) override;
  Pose2 pose() const override { return propagated_; }
  std::string name() const override { return "SynPF"; }
  double mean_scan_update_ms() const override { return load_.mean_ms(); }
  double total_busy_s() const override { return load_.busy_s(); }
  /// Attach metrics/tracing: records "synpf.update_ms" and the per-stage
  /// pf.* histograms, spans, and filter-health gauges (see
  /// ParticleFilter::set_telemetry).
  void set_telemetry(const telemetry::Sink& sink) override;

  ParticleFilter& filter() { return *pf_; }
  const SynPfConfig& config() const { return config_; }

 private:
  SynPfConfig config_;
  std::unique_ptr<ParticleFilter> pf_;
  OdometryDelta pending_{};   ///< odometry accumulated since the last scan
  Pose2 propagated_{};        ///< last estimate, dead-reckoned by odometry
  LoadAccumulator load_;
  telemetry::Sink sink_{};
  telemetry::Histogram* h_update_{nullptr};
};

}  // namespace srl
