#pragma once

/// \file odometry_fusion.hpp
/// \brief Gyro-fused wheel odometry.
///
/// The steering-derived yaw rate of plain wheel odometry is wrong whenever
/// the commanded curvature is not the achieved one — understeer, slides —
/// which is exactly the low-grip regime of the paper. F1TENTH race stacks
/// therefore fuse the wheel encoder's speed with the IMU gyro's yaw rate.
/// `GyroFusedOdometry` rebuilds the odometry increment with the gyro
/// (bias-compensated by a slow online estimate taken while standing still)
/// replacing the steering geometry. The longitudinal channel is untouched:
/// wheel slip still corrupts it, so this is a partial mitigation — useful
/// as an ablation axis for the robustness study.

#include "common/types.hpp"
#include "motion/motion_model.hpp"
#include "vehicle/sensors.hpp"

namespace srl {

class GyroFusedOdometry {
 public:
  /// `bias_alpha`: exponential forgetting for the standstill bias estimate.
  explicit GyroFusedOdometry(double bias_alpha = 0.02)
      : bias_alpha_{bias_alpha} {}

  /// Combine a wheel-odometry increment with the gyro reading covering the
  /// same interval. The returned delta keeps the wheel's translation and
  /// replaces the heading increment with the integrated (bias-corrected)
  /// gyro rate.
  OdometryDelta fuse(const OdometryDelta& wheel, const ImuReading& imu) {
    // Standstill: the gyro should read zero; learn the bias.
    if (std::abs(wheel.v) < 0.05) {
      bias_ = (1.0 - bias_alpha_) * bias_ + bias_alpha_ * imu.yaw_rate;
    }
    const double yaw_rate = imu.yaw_rate - bias_;
    OdometryDelta fused = wheel;
    fused.delta = integrate_twist(
        Pose2{}, Twist2{wheel.dt > 0.0 ? wheel.delta.x / wheel.dt : 0.0,
                        wheel.dt > 0.0 ? wheel.delta.y / wheel.dt : 0.0,
                        yaw_rate},
        wheel.dt);
    return fused;
  }

  double bias() const { return bias_; }

 private:
  double bias_alpha_;
  double bias_{0.0};
};

}  // namespace srl
