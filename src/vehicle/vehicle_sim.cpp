#include "vehicle/vehicle_sim.hpp"

#include <algorithm>
#include <cmath>

#include "common/angles.hpp"
#include "common/contracts.hpp"

namespace srl {

VehicleSim::VehicleSim(VehicleParams params, Pose2 start) : params_{params} {
  reset(start);
}

void VehicleSim::reset(const Pose2& pose) {
  state_ = VehicleState{};
  state_.pose = pose;
}

void VehicleSim::step(const DriveCommand& cmd, double dt) {
  SYNPF_EXPECTS_MSG(std::isfinite(dt) && dt > 0.0,
                    "simulation step needs a positive finite dt");
  SYNPF_EXPECTS_MSG(std::isfinite(cmd.target_speed) && std::isfinite(cmd.steer),
                    "drive command must be finite");
  const VehicleParams& p = params_;
  VehicleState& s = state_;

  // Steering servo: slew-limited tracking of the commanded angle.
  const double steer_cmd =
      std::clamp(cmd.steer, -p.ackermann.max_steer, p.ackermann.max_steer);
  const double max_dsteer = p.steer_rate * dt;
  s.steer += std::clamp(steer_cmd - s.steer, -max_dsteer, max_dsteer);

  // Motor: slews the wheel speed toward the setpoint. The motor is strong
  // enough to spin/brake the wheel regardless of available grip.
  const double target =
      std::clamp(cmd.target_speed, 0.0, p.ackermann.max_speed);
  const double dv_wheel = target - s.wheel_speed;
  const double wheel_slew = dv_wheel >= 0.0 ? p.motor_accel : p.motor_brake;
  s.wheel_speed += std::clamp(dv_wheel, -wheel_slew * dt, wheel_slew * dt);

  // Lateral: the kinematic bicycle demands a_lat = v^2 * kappa; the tires
  // deliver at most mu * g. Excess demand is shed as understeer (achieved
  // curvature capped) plus a lateral slide: the car pushes wide, building a
  // body-frame lateral velocity that wheel odometry cannot see — a primary
  // odometry-degradation channel of slippery racing.
  const double kappa_cmd = std::tan(s.steer) / p.ackermann.wheelbase;
  const double mu_g = p.mu * p.gravity;
  double kappa = kappa_cmd;
  double lat_usage = 0.0;
  double slide_accel = 0.0;
  if (std::abs(s.v) > 0.2) {
    const double kappa_max = mu_g / (s.v * s.v);
    kappa = std::clamp(kappa_cmd, -kappa_max, kappa_max);
    lat_usage = std::min(1.0, std::abs(kappa) * s.v * s.v / mu_g);
    const double excess = (std::abs(kappa_cmd) - kappa_max) * s.v * s.v;
    if (excess > 0.0) {
      // Pushing wide: slide opposes the turn direction (negative vy in a
      // left turn).
      slide_accel = -p.slide_gain * excess *
                    (kappa_cmd >= 0.0 ? 1.0 : -1.0);
    }
  }
  s.yaw_rate = s.v * kappa;
  s.lat_accel = s.v * s.yaw_rate;
  s.vy += (slide_accel - p.slide_relax * s.vy) * dt;

  // Longitudinal: tire force ~ slip, saturated by what the friction circle
  // leaves over after the lateral demand.
  s.slip = s.wheel_speed - s.v;
  const double long_budget =
      mu_g * std::sqrt(std::max(0.0, 1.0 - lat_usage * lat_usage));
  const double a_tire =
      std::clamp(p.slip_stiffness * s.slip, -long_budget, long_budget);
  const double a_body = a_tire - p.drag * s.v;
  s.v = std::max(0.0, s.v + a_body * dt);

  // Pose integration on the achieved (grip-limited) arc, including slide.
  s.pose = integrate_twist(s.pose, Twist2{s.v, s.vy, s.yaw_rate}, dt)
               .normalized();

  SYNPF_ENSURES_MSG(finite(s.pose) && std::isfinite(s.v) &&
                        std::isfinite(s.vy) && std::isfinite(s.wheel_speed) &&
                        std::isfinite(s.yaw_rate),
                    "vehicle state went non-finite during step");
}

}  // namespace srl
