#pragma once

/// \file vehicle_sim.hpp
/// \brief Single-track (bicycle) vehicle dynamics with a friction-circle
/// tire model and explicit longitudinal wheel slip.
///
/// This is the testbed substitution for the physical F1TENTH car (see
/// DESIGN.md). The essential fidelity requirement is the *causal chain of
/// the paper's experiment*: grip level -> wheel slip -> wheel-odometry
/// error. To that end the simulator integrates the wheel speed separately
/// from the body speed:
///
///  - the motor slews the wheel speed toward the commanded speed (a strong
///    motor spins the wheel regardless of grip, like the real VESC);
///  - the tire transmits longitudinal force proportional to slip
///    (wheel speed - body speed), saturated by the friction circle
///    mu * g * sqrt(1 - (a_lat / (mu g))^2);
///  - lateral acceleration demand beyond the circle causes understeer
///    (the achieved curvature is capped at mu*g / v^2).
///
/// Wheel odometry reads the *wheel* speed (vehicle/sensors.hpp), so taping
/// the tires (lowering mu) degrades odometry exactly as in the paper while
/// the car still completes laps at nearly the same pace.

#include "common/types.hpp"
#include "motion/ackermann.hpp"

namespace srl {

struct VehicleParams {
  AckermannParams ackermann{};
  double mass = 3.5;          ///< kg (F1TENTH-class car)
  double gravity = 9.81;      ///< m/s^2
  /// Tire-ground friction coefficient. The paper's pull test: 26 N nominal
  /// vs 19 N taped on a ~3.5 kg car -> mu 0.76 (HQ) vs 0.55 (LQ).
  double mu = 0.76;
  /// Longitudinal tire stiffness: accel transmitted per m/s of slip (1/s).
  double slip_stiffness = 18.0;
  double drag = 0.06;         ///< 1/s, speed-proportional resistive decel
  /// Motor/brake wheel-speed slew limits. Chosen between the two grip
  /// levels of the experiment (mu*g = 7.45 nominal vs 5.4 taped): nominal
  /// tires transmit full torque with little slip, taped tires spin up /
  /// lock under the same commands — the paper's odometry contrast.
  double motor_accel = 6.5;   ///< m/s^2, wheel-speed slew when accelerating
  double motor_brake = 7.5;   ///< m/s^2, wheel-speed slew when braking
  double steer_rate = 8.0;    ///< rad/s, steering servo slew
  /// Lateral slide: excess lateral demand beyond the friction circle feeds
  /// the slide velocity, which relaxes with this rate once grip returns.
  /// Steady slide = gain * excess / relax: over-driving taped tires by
  /// ~1.6 m/s^2 yields a visible ~0.5 m/s drift, as on a real 1:10 car.
  double slide_relax = 3.0;   ///< 1/s
  double slide_gain = 1.6;    ///< fraction of excess a_lat turned into slide
};

struct VehicleState {
  Pose2 pose{};            ///< body pose, world frame (ground truth)
  double v{0.0};           ///< body longitudinal speed, m/s
  double vy{0.0};          ///< body lateral (slide) velocity, m/s
  double wheel_speed{0.0}; ///< driven-wheel equivalent linear speed, m/s
  double steer{0.0};       ///< current steering angle, rad
  double yaw_rate{0.0};    ///< achieved yaw rate, rad/s
  double slip{0.0};        ///< wheel_speed - v (diagnostic)
  double lat_accel{0.0};   ///< achieved lateral acceleration (diagnostic)

  /// True body twist — what the LiDAR experiences during a revolution.
  Twist2 twist() const { return {v, vy, yaw_rate}; }
};

struct DriveCommand {
  double target_speed{0.0};  ///< m/s, wheel-speed setpoint
  double steer{0.0};         ///< rad, steering setpoint
};

class VehicleSim {
 public:
  explicit VehicleSim(VehicleParams params = {}, Pose2 start = {});

  /// Advance the dynamics by `dt` seconds under `cmd`. Stable for the
  /// sub-10 ms steps the experiment harness uses.
  void step(const DriveCommand& cmd, double dt);

  const VehicleState& state() const { return state_; }
  const VehicleParams& params() const { return params_; }

  /// Reset to a pose at rest.
  void reset(const Pose2& pose);

 private:
  VehicleParams params_;
  VehicleState state_;
};

}  // namespace srl
