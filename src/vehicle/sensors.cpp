#include "vehicle/sensors.hpp"

#include <cmath>

namespace srl {

OdometryDelta WheelOdometrySensor::measure(const VehicleState& state,
                                           double dt, Rng& rng) const {
  // Encoder speed: wheel speed with small multiplicative noise. Slip is the
  // dominant error and comes from the state itself, not from this noise.
  const double v_meas =
      state.wheel_speed * (1.0 + rng.gaussian(noise_.speed_noise));
  const double steer_meas = state.steer + rng.gaussian(noise_.steer_noise);
  // VESC-style odometry: yaw rate from the kinematic bicycle on measured
  // speed and steering. A slipping wheel corrupts both channels.
  const double yaw_rate =
      v_meas * std::tan(steer_meas) / ackermann_.wheelbase;

  OdometryDelta odom;
  odom.delta = integrate_twist(Pose2{}, Twist2{v_meas, 0.0, yaw_rate}, dt);
  odom.v = v_meas;
  odom.dt = dt;
  return odom;
}

ImuReading ImuSensor::measure(const VehicleState& state, double prev_v,
                              double dt, Rng& rng) const {
  ImuReading r;
  r.yaw_rate = state.yaw_rate + bias_ + rng.gaussian(noise_.gyro_noise);
  const double ax = dt > 0.0 ? (state.v - prev_v) / dt : 0.0;
  r.accel_x = ax + rng.gaussian(noise_.accel_noise);
  r.accel_y = state.lat_accel + rng.gaussian(noise_.accel_noise);
  return r;
}

}  // namespace srl
