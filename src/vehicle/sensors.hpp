#pragma once

/// \file sensors.hpp
/// \brief Proprioceptive sensor models over the vehicle state.
///
/// `WheelOdometrySensor` is the paper's independent variable made concrete:
/// it integrates the *wheel* speed (plus the steering-derived yaw rate, as
/// the F1TENTH VESC odometry does), so any slip between wheel and ground
/// goes straight into the reported pose increments. `ImuSensor` provides a
/// gyro yaw rate with bias and noise for the sensor-fusion extension.

#include "common/rng.hpp"
#include "common/types.hpp"
#include "motion/motion_model.hpp"
#include "vehicle/vehicle_sim.hpp"

namespace srl {

struct WheelOdometryNoise {
  double speed_noise = 0.01;   ///< multiplicative std on the speed reading
  double steer_noise = 0.005;  ///< rad, additive std on the steering reading
};

/// Produces OdometryDelta increments from wheel speed + steering angle.
class WheelOdometrySensor {
 public:
  WheelOdometrySensor(AckermannParams ackermann, WheelOdometryNoise noise = {})
      : ackermann_{ackermann}, noise_{noise} {}

  /// Sample the sensors at the current state and integrate over `dt`.
  /// The returned delta is what a localizer receives — computed from
  /// wheel_speed, NOT the true body speed.
  OdometryDelta measure(const VehicleState& state, double dt, Rng& rng) const;

  const AckermannParams& ackermann() const { return ackermann_; }

 private:
  AckermannParams ackermann_;
  WheelOdometryNoise noise_;
};

struct ImuNoise {
  double gyro_noise = 0.02;       ///< rad/s, white noise
  double gyro_bias = 0.005;       ///< rad/s, constant bias magnitude
  double accel_noise = 0.15;      ///< m/s^2
};

struct ImuReading {
  double yaw_rate{0.0};   ///< rad/s
  double accel_x{0.0};    ///< m/s^2, body longitudinal
  double accel_y{0.0};    ///< m/s^2, body lateral
};

class ImuSensor {
 public:
  explicit ImuSensor(ImuNoise noise = {}, std::uint64_t seed = 7)
      : noise_{noise} {
    Rng boot{seed};
    bias_ = boot.gaussian(noise_.gyro_bias);
  }

  ImuReading measure(const VehicleState& state, double prev_v, double dt,
                     Rng& rng) const;

  double bias() const { return bias_; }

 private:
  ImuNoise noise_;
  double bias_{0.0};
};

}  // namespace srl
