#include "lint/lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/json.hpp"

namespace srl::lint {

namespace {

// ---------------------------------------------------------------------------
// Rule catalog
// ---------------------------------------------------------------------------

const std::vector<RuleInfo>& catalog() {
  static const std::vector<RuleInfo> kRules = {
      {"det-rand",
       "raw randomness primitives (rand/srand/random_device/raw engines) "
       "outside common/rng.hpp",
       "draw from an explicitly seeded srl::Rng (or Rng::substream) instead"},
      {"det-wall-clock",
       "wall-clock reads (system/steady/high_resolution_clock, time(), "
       "gettimeofday) outside src/telemetry/ and common/timer.hpp",
       "time only flows through telemetry::StageTimer/Stopwatch in "
       "instrumented layers; estimate-affecting code must be clock-free"},
      {"det-wall-clock-governor",
       "timer reads (telemetry::Stopwatch/StageTimer) inside src/governor/ "
       "— even the sanctioned wrappers are banned in the governor's "
       "control path",
       "the governor accounts compute in deterministic virtual work units "
       "(particles x beams, DESIGN.md §16); a measured duration in a "
       "shedding decision would break bitwise replay"},
      {"det-thread-id",
       "thread-identity reads (this_thread::get_id, pthread_self)",
       "results must not depend on which lane runs the work; key work by "
       "slot index (DESIGN.md §9)"},
      {"det-unordered",
       "std::unordered_{map,set} in estimate-affecting code (iteration "
       "order is implementation-defined)",
       "use std::map/std::set, a sorted vector, or common/u64_set.hpp for "
       "pure count/membership"},
      {"det-accumulate",
       "std::accumulate/std::reduce float reductions (association order is "
       "not pinned)",
       "use pairwise_sum/pairwise_reduce (common/parallel.hpp) so sums are "
       "bitwise identical at any thread count"},
      {"rt-alloc",
       "heap allocation inside a `// srl-lint: realtime` block",
       "pre-size buffers outside the hot loop; realtime blocks are "
       "allocation-free"},
      {"rt-lock",
       "lock primitives inside a realtime block",
       "hot loops are wait-free by construction (static chunking, disjoint "
       "slabs); synchronization belongs at the fork/join boundary"},
      {"rt-io",
       "stream/file I/O inside a realtime block",
       "record telemetry/events outside the hot loop"},
      {"rt-throw",
       "`throw` inside a realtime block",
       "hot paths report failure via contracts or return values"},
      {"rt-marker",
       "unbalanced or nested realtime block markers",
       "every `// srl-lint: realtime` needs exactly one matching "
       "`// srl-lint: end-realtime`"},
      {"rng-stream-key",
       "Rng::substream key that is not a pinned compile-time stream "
       "constant",
       "key substreams with a documented kXxxStream* constant (see the "
       "schedules in core/particle_filter.hpp, recovery/recovery_policy.hpp)"},
      {"hy-pragma-once",
       "header whose first code line is not #pragma once",
       "start every header with #pragma once (the self-sufficiency wall "
       "compiles each header twice)"},
      {"hy-using-namespace",
       "`using namespace` in a header",
       "qualify names; headers must not leak namespaces into every includer"},
      {"hy-printf",
       "stdout/stderr I/O (printf family, std::cout/cerr) from library code",
       "library layers report via telemetry, events or return values; "
       "printing belongs to tools/ and bench/"},
      {"hy-bad-directive",
       "malformed srl-lint directive (unknown rule id, missing reason, or "
       "unknown marker)",
       "write `// srl-lint-allow(rule-id): reason` or `// srl-lint: "
       "realtime` / `// srl-lint: end-realtime`"},
      {"hy-unused-suppression",
       "srl-lint-allow that suppressed nothing",
       "delete the stale allow (or re-target the line it was written for)"},
      {"hy-unreadable-file",
       "file in the lint set that could not be read",
       "check the path and permissions"},
  };
  return kRules;
}

// ---------------------------------------------------------------------------
// Path scoping
// ---------------------------------------------------------------------------

bool has_prefix(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool has_suffix(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

enum class Root { kSrc, kTools, kBench, kTests, kOther };

Root root_of(std::string_view rel_path) {
  if (has_prefix(rel_path, "src/")) return Root::kSrc;
  if (has_prefix(rel_path, "tools/")) return Root::kTools;
  if (has_prefix(rel_path, "bench/")) return Root::kBench;
  if (has_prefix(rel_path, "tests/")) return Root::kTests;
  return Root::kOther;
}

// ---------------------------------------------------------------------------
// Comment/string-aware source model
// ---------------------------------------------------------------------------

/// `code` mirrors the input byte-for-byte except comment bodies and
/// string/char literal contents are blanked to spaces (newlines preserved),
/// so token scans never fire inside either. `comments[i]` holds the comment
/// text that appears on 1-based line i+1 (directives are only recognized
/// there).
struct Stripped {
  std::string code;
  std::vector<std::string> comments;
  std::vector<std::size_t> line_starts;  ///< byte offset of each line start
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

Stripped strip(std::string_view text) {
  Stripped out;
  out.code.reserve(text.size());
  out.comments.emplace_back();
  out.line_starts.push_back(0);

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar,
                     kRawString };
  State state = State::kCode;
  std::string raw_terminator;  // ")delim\"" for the active raw string

  auto newline = [&]() {
    out.code.push_back('\n');
    out.comments.emplace_back();
    out.line_starts.push_back(out.code.size());
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out.code += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out.code += "  ";
          ++i;
        } else if (c == '"') {
          // Raw string literal? An identifier-boundary `R` right before the
          // quote (covers R"..", u8R"..", LR"..", ...).
          const bool raw = i > 0 && text[i - 1] == 'R' &&
                           (i < 2 || !ident_char(text[i - 2]) ||
                            has_suffix(text.substr(0, i), "u8R") ||
                            has_suffix(text.substr(0, i), "uR") ||
                            has_suffix(text.substr(0, i), "UR") ||
                            has_suffix(text.substr(0, i), "LR"));
          out.code.push_back('"');
          if (raw) {
            std::size_t j = i + 1;
            std::string delim;
            while (j < text.size() && text[j] != '(') delim.push_back(text[j++]);
            raw_terminator = ")" + delim + "\"";
            state = State::kRawString;
            for (std::size_t k = i + 1; k <= j && k < text.size(); ++k) {
              out.code.push_back(text[k] == '\n' ? '\n' : ' ');
              if (text[k] == '\n') {
                out.comments.emplace_back();
                out.line_starts.push_back(out.code.size());
              }
            }
            i = j;
          } else {
            state = State::kString;
          }
        } else if (c == '\'') {
          out.code.push_back('\'');
          state = State::kChar;
        } else if (c == '\n') {
          newline();
        } else {
          out.code.push_back(c);
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          newline();
          state = State::kCode;
        } else {
          out.comments.back().push_back(c);
          out.code.push_back(' ');
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out.code += "  ";
          ++i;
          state = State::kCode;
        } else if (c == '\n') {
          newline();
        } else {
          out.comments.back().push_back(c);
          out.code.push_back(' ');
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          out.code += "  ";
          ++i;
        } else if (c == '"') {
          out.code.push_back('"');
          state = State::kCode;
        } else if (c == '\n') {
          newline();  // unterminated; recover at EOL
          state = State::kCode;
        } else {
          out.code.push_back(' ');
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          out.code += "  ";
          ++i;
        } else if (c == '\'') {
          out.code.push_back('\'');
          state = State::kCode;
        } else if (c == '\n') {
          newline();
          state = State::kCode;
        } else {
          out.code.push_back(' ');
        }
        break;
      case State::kRawString:
        if (text.compare(i, raw_terminator.size(), raw_terminator) == 0) {
          for (std::size_t k = 0; k < raw_terminator.size(); ++k) {
            out.code.push_back(' ');
          }
          out.code.back() = '"';
          i += raw_terminator.size() - 1;
          state = State::kCode;
        } else if (c == '\n') {
          newline();
        } else {
          out.code.push_back(' ');
        }
        break;
    }
  }
  return out;
}

int line_of(const Stripped& s, std::size_t pos) {
  const auto it = std::upper_bound(s.line_starts.begin(), s.line_starts.end(),
                                   pos);
  return static_cast<int>(it - s.line_starts.begin());
}

bool line_has_code(const Stripped& s, int line) {
  const std::size_t begin = s.line_starts[static_cast<std::size_t>(line - 1)];
  const std::size_t end =
      static_cast<std::size_t>(line) < s.line_starts.size()
          ? s.line_starts[static_cast<std::size_t>(line)]
          : s.code.size();
  for (std::size_t i = begin; i < end; ++i) {
    if (!std::isspace(static_cast<unsigned char>(s.code[i]))) return true;
  }
  return false;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string{s.substr(b, e - b)};
}

// ---------------------------------------------------------------------------
// Directives: suppressions and realtime markers
// ---------------------------------------------------------------------------

struct Directives {
  std::vector<Suppression> suppressions;  // line = target line
  std::vector<bool> realtime;             // per 1-based line, index line-1
  std::vector<Finding> findings;          // hy-bad-directive / rt-marker
};

Directives parse_directives(std::string_view rel_path, const Stripped& s) {
  Directives out;
  const int n_lines = static_cast<int>(s.comments.size());
  out.realtime.assign(static_cast<std::size_t>(n_lines), false);

  auto bad = [&](int line, std::string msg) {
    out.findings.push_back({std::string{rel_path}, line, "hy-bad-directive",
                            std::move(msg),
                            std::string{"write `// srl-lint-allow(rule-id): "
                                        "reason` or `// srl-lint: realtime` / "
                                        "`// srl-lint: end-realtime`"}});
  };

  // Standalone allow-comments target the next code-bearing line.
  std::vector<Suppression> pending;
  int open_realtime = 0;  // 0 = closed, else 1-based open-marker line

  for (int line = 1; line <= n_lines; ++line) {
    const std::string& comment =
        s.comments[static_cast<std::size_t>(line - 1)];
    const bool has_code = line_has_code(s, line);
    // Only a comment that *is* a directive participates: prose that merely
    // mentions the syntax (docs, this very file) must not parse as one.
    const bool directive_comment = has_prefix(trim(comment), "srl-lint");

    // Attach pending standalone suppressions to the first code line.
    if (has_code && !pending.empty()) {
      for (Suppression& sup : pending) {
        sup.line = line;
        out.suppressions.push_back(std::move(sup));
      }
      pending.clear();
    }

    // -- srl-lint-allow(rule): reason --
    std::size_t pos = 0;
    static constexpr std::string_view kAllow = "srl-lint-allow(";
    while (directive_comment &&
           (pos = comment.find(kAllow, pos)) != std::string::npos) {
      const std::size_t id_begin = pos + kAllow.size();
      const std::size_t close = comment.find(')', id_begin);
      if (close == std::string::npos) {
        bad(line, "srl-lint-allow is missing its closing ')'");
        break;
      }
      const std::string rule = trim(
          std::string_view{comment}.substr(id_begin, close - id_begin));
      std::size_t after = close + 1;
      while (after < comment.size() &&
             std::isspace(static_cast<unsigned char>(comment[after]))) {
        ++after;
      }
      std::string reason;
      if (after < comment.size() && comment[after] == ':') {
        reason = trim(std::string_view{comment}.substr(after + 1));
      }
      if (!is_known_rule(rule)) {
        bad(line, "srl-lint-allow names unknown rule '" + rule + "'");
      } else if (reason.empty()) {
        bad(line, "srl-lint-allow(" + rule +
                      ") has no reason — every suppression is audited");
      } else {
        Suppression sup{std::string{rel_path}, line, rule, reason, false};
        if (has_code) {
          out.suppressions.push_back(std::move(sup));  // trailing: own line
        } else {
          pending.push_back(std::move(sup));  // standalone: next code line
        }
      }
      pos = close + 1;
    }

    // -- srl-lint: realtime / end-realtime --
    static constexpr std::string_view kMarker = "srl-lint:";
    if (const std::size_t mpos =
            directive_comment ? comment.find(kMarker) : std::string::npos;
        mpos != std::string::npos) {
      const std::string word =
          trim(std::string_view{comment}.substr(mpos + kMarker.size()));
      if (word == "realtime") {
        if (open_realtime != 0) {
          out.findings.push_back(
              {std::string{rel_path}, line, "rt-marker",
               "nested `srl-lint: realtime` (block already open since line " +
                   std::to_string(open_realtime) + ")",
               "close the open block before starting another"});
        } else {
          open_realtime = line;
        }
      } else if (word == "end-realtime") {
        if (open_realtime == 0) {
          out.findings.push_back(
              {std::string{rel_path}, line, "rt-marker",
               "`srl-lint: end-realtime` without an open realtime block",
               "every end-realtime needs a preceding `srl-lint: realtime`"});
        } else {
          for (int l = open_realtime; l <= line; ++l) {
            out.realtime[static_cast<std::size_t>(l - 1)] = true;
          }
          open_realtime = 0;
        }
      } else {
        bad(line, "unknown srl-lint marker '" + word + "'");
      }
    }
  }
  for (Suppression& sup : pending) {  // allows with no code after them
    out.findings.push_back(
        {std::string{rel_path}, sup.line, "hy-unused-suppression",
         "srl-lint-allow(" + sup.rule + ") targets no code line",
         "delete the stale allow (or re-target the line it was written for)"});
  }
  if (open_realtime != 0) {
    out.findings.push_back(
        {std::string{rel_path}, open_realtime, "rt-marker",
         "`srl-lint: realtime` block is never closed",
         "add `// srl-lint: end-realtime` after the hot loop"});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Token scanning
// ---------------------------------------------------------------------------

const RuleInfo& rule_info(std::string_view id) {
  for (const RuleInfo& r : catalog()) {
    if (r.id == id) return r;
  }
  return catalog().front();  // unreachable for catalog ids
}

/// Emit `rule` for every identifier-boundary occurrence of `token` in the
/// stripped code. `call_only` additionally requires an immediately following
/// '(' (skipping whitespace), separating `rand()` from the word "rand".
/// `line_filter` (optional) restricts matches to flagged lines.
void token_scan(std::string_view rel_path, const Stripped& s,
                std::string_view token, bool call_only, std::string_view rule,
                std::string_view what, const std::vector<bool>* line_filter,
                std::vector<Finding>& out) {
  const std::string& code = s.code;
  std::size_t pos = 0;
  while ((pos = code.find(token, pos)) != std::string::npos) {
    const std::size_t end = pos + token.size();
    const bool left_ok = pos == 0 || !ident_char(code[pos - 1]);
    const bool right_ok = end >= code.size() || !ident_char(code[end]);
    bool call_ok = true;
    if (call_only) {
      std::size_t j = end;
      while (j < code.size() &&
             std::isspace(static_cast<unsigned char>(code[j]))) {
        ++j;
      }
      call_ok = j < code.size() && code[j] == '(';
    }
    if (left_ok && right_ok && call_ok) {
      const int line = line_of(s, pos);
      if (line_filter == nullptr ||
          (*line_filter)[static_cast<std::size_t>(line - 1)]) {
        out.push_back({std::string{rel_path}, line, std::string{rule},
                       std::string{what} + " '" + std::string{token} + "'",
                       std::string{rule_info(rule).hint}});
      }
    }
    pos = end;
  }
}

struct TokenRule {
  std::string_view token;
  bool call_only;
};

// -- determinism ------------------------------------------------------------

constexpr std::array<TokenRule, 8> kRandTokens{{
    {"rand", true},
    {"srand", true},
    {"rand_r", true},
    {"drand48", true},
    {"random_device", false},
    {"mt19937", false},
    {"mt19937_64", false},
    {"default_random_engine", false},
}};

constexpr std::array<TokenRule, 9> kClockTokens{{
    {"system_clock", false},
    {"steady_clock", false},
    {"high_resolution_clock", false},
    {"gettimeofday", true},
    {"clock", true},
    {"time", true},
    {"localtime", true},
    {"mktime", true},
    {"strftime", true},
}};

constexpr std::array<TokenRule, 2> kThreadIdTokens{{
    {"get_id", true},
    {"pthread_self", true},
}};

constexpr std::array<TokenRule, 4> kUnorderedTokens{{
    {"unordered_map", false},
    {"unordered_set", false},
    {"unordered_multimap", false},
    {"unordered_multiset", false},
}};

// Qualified names only: a serial fixed-order helper may legitimately be
// *named* accumulate (slam/pose_graph.cpp has one); it is the std:: library
// reductions whose association order floats with the implementation.
constexpr std::array<TokenRule, 4> kAccumulateTokens{{
    {"std::accumulate", false},
    {"std::reduce", false},
    {"std::transform_reduce", false},
    {"std::inner_product", false},
}};

// -- realtime hygiene -------------------------------------------------------

constexpr std::array<TokenRule, 12> kRtAllocTokens{{
    {"new", false},
    {"delete", false},
    {"malloc", true},
    {"calloc", true},
    {"realloc", true},
    {"free", true},
    {"resize", true},
    {"reserve", true},
    {"push_back", true},
    {"emplace_back", true},
    {"make_unique", false},
    {"make_shared", false},
}};

constexpr std::array<TokenRule, 7> kRtLockTokens{{
    {"mutex", false},
    {"lock_guard", false},
    {"unique_lock", false},
    {"scoped_lock", false},
    {"condition_variable", false},
    {"lock", true},
    {"unlock", true},
}};

constexpr std::array<TokenRule, 12> kRtIoTokens{{
    {"printf", true},
    {"fprintf", true},
    {"puts", true},
    {"fputs", true},
    {"cout", false},
    {"cerr", false},
    {"clog", false},
    {"fopen", true},
    {"fwrite", true},
    {"fread", true},
    {"ofstream", false},
    {"ifstream", false},
}};

// -- hygiene ----------------------------------------------------------------

constexpr std::array<TokenRule, 9> kPrintfTokens{{
    {"printf", true},
    {"fprintf", true},
    {"vprintf", true},
    {"vfprintf", true},
    {"puts", true},
    {"fputs", true},
    {"putchar", true},
    {"cout", false},
    {"cerr", false},
}};

// ---------------------------------------------------------------------------
// The substream-key rule: extract the first argument of every substream(...)
// call and require a pinned `kXxx` stream constant (optionally qualified).
// ---------------------------------------------------------------------------

bool pinned_stream_constant(std::string_view arg) {
  // ([A-Za-z_][A-Za-z0-9_]*::)* k[A-Z][A-Za-z0-9_]*
  std::size_t i = 0;
  while (true) {
    const std::size_t start = i;
    if (i >= arg.size() || (!std::isalpha(static_cast<unsigned char>(arg[i])) &&
                            arg[i] != '_')) {
      return false;
    }
    while (i < arg.size() && ident_char(arg[i])) ++i;
    const std::string_view seg = arg.substr(start, i - start);
    if (i + 1 < arg.size() && arg[i] == ':' && arg[i + 1] == ':') {
      i += 2;  // qualifier segment; keep walking
      continue;
    }
    // Final segment: must be the whole remaining string and k-prefixed.
    return i == arg.size() && seg.size() >= 2 && seg[0] == 'k' &&
           std::isupper(static_cast<unsigned char>(seg[1])) != 0;
  }
}

void scan_substream_keys(std::string_view rel_path, const Stripped& s,
                         std::vector<Finding>& out) {
  static constexpr std::string_view kCall = "substream";
  const std::string& code = s.code;
  std::size_t pos = 0;
  while ((pos = code.find(kCall, pos)) != std::string::npos) {
    const std::size_t end = pos + kCall.size();
    const bool left_ok = pos == 0 || !ident_char(code[pos - 1]);
    std::size_t j = end;
    while (j < code.size() &&
           std::isspace(static_cast<unsigned char>(code[j]))) {
      ++j;
    }
    if (!left_ok || j >= code.size() || code[j] != '(') {
      pos = end;
      continue;
    }
    // First argument: up to a top-level ',' or ')'.
    std::size_t k = j + 1;
    int depth = 0;
    const std::size_t arg_begin = k;
    while (k < code.size()) {
      const char c = code[k];
      if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
      if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
      if (depth < 0 || (depth == 0 && c == ',')) break;
      ++k;
    }
    const std::string arg = trim(code.substr(arg_begin, k - arg_begin));
    if (!pinned_stream_constant(arg)) {
      out.push_back(
          {std::string{rel_path}, line_of(s, pos), "rng-stream-key",
           "Rng::substream key `" + arg + "` is not a pinned stream constant",
           std::string{rule_info("rng-stream-key").hint}});
    }
    pos = end;
  }
}

// ---------------------------------------------------------------------------
// Per-file rule driver
// ---------------------------------------------------------------------------

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  findings.erase(std::unique(findings.begin(), findings.end(),
                             [](const Finding& a, const Finding& b) {
                               return a.file == b.file && a.line == b.line &&
                                      a.rule == b.rule &&
                                      a.message == b.message;
                             }),
                 findings.end());
}

void sort_suppressions(std::vector<Suppression>& sups) {
  std::sort(sups.begin(), sups.end(),
            [](const Suppression& a, const Suppression& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() { return catalog(); }

bool is_known_rule(std::string_view id) {
  for (const RuleInfo& r : catalog()) {
    if (r.id == id) return true;
  }
  return false;
}

FileReport lint_source(std::string_view rel_path, std::string_view content) {
  const Stripped s = strip(content);
  Directives directives = parse_directives(rel_path, s);

  const Root root = root_of(rel_path);
  const bool is_header = has_suffix(rel_path, ".hpp");
  const bool in_src = root == Root::kSrc;
  const bool telemetry = has_prefix(rel_path, "src/telemetry/");
  const bool timer_hpp = rel_path == "src/common/timer.hpp";
  const bool rng_hpp = rel_path == "src/common/rng.hpp";

  std::vector<Finding> raw = std::move(directives.findings);

  // -- determinism --
  if (!rng_hpp) {
    for (const TokenRule& t : kRandTokens) {
      token_scan(rel_path, s, t.token, t.call_only, "det-rand",
                 "raw randomness primitive", nullptr, raw);
    }
  }
  if ((in_src || root == Root::kTests) && !telemetry && !timer_hpp) {
    for (const TokenRule& t : kClockTokens) {
      token_scan(rel_path, s, t.token, t.call_only, "det-wall-clock",
                 "wall-clock read", nullptr, raw);
    }
  }
  // The governor's control path must never consult a measured duration —
  // not even through the sanctioned telemetry timers (cost is virtual work
  // units there; forwarding *metrics* like mean_scan_update_ms is fine,
  // constructing a timer is not).
  if (has_prefix(rel_path, "src/governor/")) {
    token_scan(rel_path, s, "Stopwatch", false, "det-wall-clock-governor",
               "timer in governor control path", nullptr, raw);
    token_scan(rel_path, s, "StageTimer", false, "det-wall-clock-governor",
               "timer in governor control path", nullptr, raw);
  }
  for (const TokenRule& t : kThreadIdTokens) {
    token_scan(rel_path, s, t.token, t.call_only, "det-thread-id",
               "thread-identity read", nullptr, raw);
  }
  if (in_src && !telemetry) {
    for (const TokenRule& t : kUnorderedTokens) {
      token_scan(rel_path, s, t.token, t.call_only, "det-unordered",
                 "implementation-ordered container", nullptr, raw);
    }
    for (const TokenRule& t : kAccumulateTokens) {
      token_scan(rel_path, s, t.token, t.call_only, "det-accumulate",
                 "association-order-dependent reduction", nullptr, raw);
    }
  }

  // -- realtime hygiene (only inside annotated blocks) --
  for (const TokenRule& t : kRtAllocTokens) {
    token_scan(rel_path, s, t.token, t.call_only, "rt-alloc",
               "heap allocation", &directives.realtime, raw);
  }
  for (const TokenRule& t : kRtLockTokens) {
    token_scan(rel_path, s, t.token, t.call_only, "rt-lock", "lock primitive",
               &directives.realtime, raw);
  }
  for (const TokenRule& t : kRtIoTokens) {
    token_scan(rel_path, s, t.token, t.call_only, "rt-io", "I/O",
               &directives.realtime, raw);
  }
  token_scan(rel_path, s, "throw", false, "rt-throw", "exception",
             &directives.realtime, raw);

  // -- RNG discipline --
  if (in_src && !rng_hpp) scan_substream_keys(rel_path, s, raw);

  // -- hygiene --
  if (is_header) {
    static constexpr std::string_view kPragma = "#pragma once";
    const std::size_t first =
        s.code.find_first_not_of(" \t\r\n");
    if (first == std::string::npos ||
        s.code.compare(first, kPragma.size(), kPragma) != 0) {
      raw.push_back({std::string{rel_path},
                     first == std::string::npos ? 1 : line_of(s, first),
                     "hy-pragma-once",
                     "header's first code line is not #pragma once",
                     std::string{rule_info("hy-pragma-once").hint}});
    }
    token_scan(rel_path, s, "using namespace", false, "hy-using-namespace",
               "namespace leak", nullptr, raw);
  }
  if (in_src) {
    for (const TokenRule& t : kPrintfTokens) {
      token_scan(rel_path, s, t.token, t.call_only, "hy-printf",
                 "stdout/stderr I/O", nullptr, raw);
    }
  }

  // -- apply suppressions --
  FileReport report;
  report.suppressions = std::move(directives.suppressions);
  for (Finding& f : raw) {
    bool suppressed = false;
    for (Suppression& sup : report.suppressions) {
      if (sup.line == f.line && sup.rule == f.rule) {
        sup.used = true;
        suppressed = true;
      }
    }
    if (!suppressed) report.findings.push_back(std::move(f));
  }
  for (const Suppression& sup : report.suppressions) {
    if (!sup.used) {
      report.findings.push_back(
          {sup.file, sup.line, "hy-unused-suppression",
           "srl-lint-allow(" + sup.rule + ") suppressed nothing on this line",
           std::string{rule_info("hy-unused-suppression").hint}});
    }
  }
  sort_findings(report.findings);
  sort_suppressions(report.suppressions);
  return report;
}

TreeReport lint_tree(const std::string& root,
                     const std::vector<std::string>& rel_files) {
  TreeReport out;
  for (const std::string& rel : rel_files) {
    std::ifstream in{root + "/" + rel, std::ios::binary};
    if (!in) {
      out.findings.push_back({rel, 1, "hy-unreadable-file",
                              "could not read file",
                              std::string{rule_info("hy-unreadable-file").hint}});
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string content = buf.str();
    FileReport report = lint_source(rel, content);
    out.findings.insert(out.findings.end(),
                        std::make_move_iterator(report.findings.begin()),
                        std::make_move_iterator(report.findings.end()));
    out.suppressions.insert(
        out.suppressions.end(),
        std::make_move_iterator(report.suppressions.begin()),
        std::make_move_iterator(report.suppressions.end()));
    ++out.files_scanned;
  }
  sort_findings(out.findings);
  sort_suppressions(out.suppressions);
  return out;
}

std::vector<std::string> collect_files(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<std::string> out;
  for (const char* sub : {"src", "tools", "bench", "tests"}) {
    const fs::path dir = fs::path{root} / sub;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    for (auto it = fs::recursive_directory_iterator{dir, ec};
         !ec && it != fs::recursive_directory_iterator{}; it.increment(ec)) {
      if (it->is_directory() && it->path().filename() == "data") {
        it.disable_recursion_pending();  // fixtures/golden traces, not source
        continue;
      }
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext != ".hpp" && ext != ".cpp") continue;
      out.push_back(
          fs::path{it->path()}.lexically_relative(root).generic_string());
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool files_from_compile_commands(const std::string& db_path,
                                 const std::string& root,
                                 std::vector<std::string>& out) {
  namespace fs = std::filesystem;
  const std::optional<json::Value> doc = json::Value::load(db_path);
  if (!doc || !doc->is_array()) return false;
  std::error_code ec;
  const fs::path canon_root = fs::weakly_canonical(root, ec);
  if (ec) return false;
  for (std::size_t i = 0; i < doc->size(); ++i) {
    const json::Value* entry = doc->at(i);
    if (entry == nullptr || !entry->is_object()) continue;
    const json::Value* file = entry->find("file");
    if (file == nullptr || !file->is_string()) continue;
    fs::path p{file->as_string()};
    if (p.is_relative()) {
      const json::Value* dir = entry->find("directory");
      if (dir != nullptr && dir->is_string()) {
        p = fs::path{dir->as_string()} / p;
      }
    }
    const fs::path canon = fs::weakly_canonical(p, ec);
    if (ec) continue;
    const std::string rel = canon.lexically_relative(canon_root).generic_string();
    if (root_of(rel) == Root::kOther) continue;
    if (rel.find("/data/") != std::string::npos) continue;
    if (!has_suffix(rel, ".cpp")) continue;
    out.push_back(rel);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return true;
}

std::vector<std::string> collect_files_with_db(const std::string& root,
                                               const std::string& db_path) {
  std::vector<std::string> walked = collect_files(root);
  if (db_path.empty()) return walked;
  std::vector<std::string> from_db;
  if (!files_from_compile_commands(db_path, root, from_db)) return walked;
  // Headers always come from the walk (a compile database has no headers);
  // TUs come from the database so linter/tidy/editors agree on the set.
  std::vector<std::string> out;
  for (const std::string& f : walked) {
    if (has_suffix(f, ".hpp")) out.push_back(f);
  }
  out.insert(out.end(), from_db.begin(), from_db.end());
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string render_findings(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += f.file;
    out += ':';
    out += std::to_string(f.line);
    out += ": ";
    out += f.rule;
    out += ": ";
    out += f.message;
    if (!f.hint.empty()) {
      out += " (fix: ";
      out += f.hint;
      out += ')';
    }
    out += '\n';
  }
  return out;
}

std::string render_suppressions(const std::vector<Suppression>& suppressions) {
  std::string out;
  for (const Suppression& s : suppressions) {
    out += s.file;
    out += ':';
    out += std::to_string(s.line);
    out += ": ";
    out += s.rule;
    out += ": ";
    out += s.reason;
    out += '\n';
  }
  return out;
}

}  // namespace srl::lint
