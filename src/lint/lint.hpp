#pragma once

/// \file lint.hpp
/// \brief `srl-lint`: project-specific determinism & real-time static
/// analysis (DESIGN.md §13).
///
/// The repo's headline property — every localizer stage is bitwise
/// deterministic at any thread count (DESIGN.md §9) — is enforced
/// dynamically by `tools/check_determinism` replays. That catches a stray
/// `std::rand()` or wall-clock read only *after* it has shipped, hours later,
/// in a replay regime. This pass makes the invariants machine-checkable at
/// review time: a dependency-free lexical analyzer (comment/string-aware, no
/// compiler front end) that walks `src/`, `tools/`, `bench/` and `tests/`
/// and enforces four SRL-specific rule families generic clang-tidy checks
/// cannot express:
///
///  - **determinism** (`det-*`): unseeded/raw randomness outside `Rng`,
///    wall-clock reads outside the telemetry allowlist, thread-identity
///    logic, unordered-container use in estimate-affecting code, and
///    non-pairwise float accumulation (the PR-3 reductions must stay
///    fixed-association).
///  - **real-time hygiene** (`rt-*`): inside `// srl-lint: realtime` ...
///    `// srl-lint: end-realtime` blocks (the PF predict/raycast/weight/
///    resample hot loops) no heap allocation, locks, I/O or `throw`.
///  - **RNG discipline** (`rng-*`): every `Rng::substream` key in library
///    code must be a pinned, compile-time-identifiable stream constant
///    (`kPfStream*` / `kRecoveryStream*`-style) per the PR-3/PR-5 stream
///    schedule.
///  - **repo hygiene** (`hy-*`): `#pragma once` in every header, no
///    `using namespace` at header scope, no stdout/stderr I/O from library
///    code.
///
/// Suppressions are explicit and audited: `// srl-lint-allow(rule-id):
/// reason` on its own line (targets the next code line) or trailing (targets
/// its own line). An empty reason or unknown rule id is itself a finding, as
/// is a suppression that suppresses nothing — the inventory is printable so
/// reviewers see every allow with its justification.
///
/// Findings carry file:line, rule id, message and a fix hint; all output is
/// stable-sorted so the tool itself is bitwise deterministic across reruns.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace srl::lint {

/// One rule in the catalog (also the source of `--list-rules` and the
/// DESIGN.md §13 table).
struct RuleInfo {
  std::string_view id;       ///< stable rule id, e.g. "det-rand"
  std::string_view summary;  ///< one-line description of what it bans
  std::string_view hint;     ///< one-line fix hint attached to findings
};

/// Every rule the pass knows, in catalog order. Ids are pinned: suppressions
/// reference them in committed code.
const std::vector<RuleInfo>& rule_catalog();

/// True when `id` names a catalog rule.
bool is_known_rule(std::string_view id);

/// One diagnostic. `file` is the repo-relative path it was produced for,
/// `line` is 1-based.
struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  std::string hint;
};

/// One `srl-lint-allow` directive found in a file.
struct Suppression {
  std::string file;
  int line = 0;       ///< line the directive *targets* (not the comment line)
  std::string rule;   ///< rule id it names
  std::string reason; ///< justification text after the ':'
  bool used = false;  ///< did it suppress at least one finding?
};

/// Result of linting one file: the findings that survived suppression and
/// every suppression encountered (with use marks), both stable-sorted.
struct FileReport {
  std::vector<Finding> findings;
  std::vector<Suppression> suppressions;
};

/// Result of linting a file set.
struct TreeReport {
  std::vector<Finding> findings;
  std::vector<Suppression> suppressions;
  int files_scanned = 0;
};

/// Lint one in-memory source. `rel_path` is the repo-relative path with '/'
/// separators; it drives rule scoping (e.g. `det-unordered-container` only
/// fires under `src/`), so tests can exercise scoping with pseudo paths.
FileReport lint_source(std::string_view rel_path, std::string_view content);

/// Lint `rel_files` (repo-relative) under `root`, reading each from disk.
/// Unreadable files produce a `hy-unreadable-file` finding instead of
/// aborting the run.
TreeReport lint_tree(const std::string& root,
                     const std::vector<std::string>& rel_files);

/// Directory-walk file discovery: every `*.hpp` / `*.cpp` under
/// `<root>/{src,tools,bench,tests}`, skipping any `data/` component (test
/// fixtures and golden traces are not source). Sorted, '/' separators.
std::vector<std::string> collect_files(const std::string& root);

/// File discovery from a CMake `compile_commands.json`: the translation
/// units it lists, filtered to the four linted roots, made repo-relative,
/// deduplicated and sorted. Headers never appear in a compile database, so
/// callers union this with the headers from `collect_files` (see
/// `collect_files_with_db`). Returns false when the database is missing or
/// malformed (callers fall back to the walk).
bool files_from_compile_commands(const std::string& db_path,
                                 const std::string& root,
                                 std::vector<std::string>& out);

/// The file list `srl_lint` actually lints: `.cpp` TUs from the compile
/// database when `db_path` is non-empty and parseable (so the linter, editors
/// and clang-tidy share one source-of-truth file set), every header from the
/// directory walk either way, walk-only as the fallback.
std::vector<std::string> collect_files_with_db(const std::string& root,
                                               const std::string& db_path);

/// Render findings one per line — `file:line: rule: message (fix: hint)` —
/// stable-sorted, byte-identical across reruns.
std::string render_findings(const std::vector<Finding>& findings);

/// Render the suppression inventory — `file:line: rule: reason` — sorted.
std::string render_suppressions(const std::vector<Suppression>& suppressions);

}  // namespace srl::lint
