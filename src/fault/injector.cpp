#include "fault/injector.hpp"

#include <algorithm>
#include <cmath>

namespace srl::fault {

double FaultProfile::envelope(double t) const {
  if (severity <= 0.0) return 0.0;
  if (t < t_start) return 0.0;
  if (duration >= 0.0 && t > t_start + duration) return 0.0;
  if (ramp_s > 0.0) {
    const double ramp = std::min(1.0, (t - t_start) / ramp_s);
    return severity * ramp;
  }
  return severity;
}

void OdometrySlipInjector::corrupt_odometry(const FaultEvent& event,
                                            OdometryDelta& odom,
                                            Rng& rng) const {
  const double s = strength_at(event.t);
  if (s <= 0.0) return;
  // Slip over-reports forward motion; the jitter models slip-stick chatter
  // (always >= 0 so the fault never under-reports on average).
  const double chatter = std::abs(rng.gaussian(jitter_ * s));
  const double scale = 1.0 + max_slip_ * s + chatter;
  odom.delta.x *= scale;
  odom.v *= scale;
}

void OdometryScaleInjector::corrupt_odometry(const FaultEvent& event,
                                             OdometryDelta& odom,
                                             Rng& rng) const {
  (void)rng;
  const double s = strength_at(event.t);
  if (s <= 0.0) return;
  const double scale = 1.0 + max_scale_ * s;
  odom.delta.x *= scale;
  odom.delta.y *= scale;
  odom.v *= scale;
}

void OdometryYawBiasInjector::corrupt_odometry(const FaultEvent& event,
                                               OdometryDelta& odom,
                                               Rng& rng) const {
  (void)rng;
  const double s = strength_at(event.t);
  if (s <= 0.0) return;
  odom.delta.theta += max_bias_rad_s_ * s * odom.dt;
}

void LidarDropoutInjector::corrupt_scan(const FaultEvent& event,
                                        const LidarConfig& lidar,
                                        LaserScan& scan, Rng& rng) const {
  const double s = strength_at(event.t);
  if (s <= 0.0) return;
  const double p = std::min(1.0, max_dropout_ * s);
  const auto no_hit = static_cast<float>(lidar.max_range);
  for (float& r : scan.ranges) {
    // Draw for every beam (valid or not) so the draw sequence — and hence
    // every downstream beam's fate — depends only on the beam index.
    const bool drop = rng.chance(p);
    if (drop && r < no_hit) r = no_hit;
  }
}

void LidarNoiseInjector::corrupt_scan(const FaultEvent& event,
                                      const LidarConfig& lidar,
                                      LaserScan& scan, Rng& rng) const {
  const double s = strength_at(event.t);
  if (s <= 0.0) return;
  const double sigma = max_sigma_m_ * s;
  const auto lo = static_cast<float>(lidar.min_range);
  const auto hi = static_cast<float>(lidar.max_range);
  for (float& r : scan.ranges) {
    const double noise = rng.gaussian(sigma);
    if (r <= lo || r >= hi) continue;  // invalid / no-hit returns stay put
    r = std::clamp(static_cast<float>(r + noise), lo, hi);
  }
}

void ScanDecimationInjector::corrupt_scan(const FaultEvent& event,
                                          const LidarConfig& lidar,
                                          LaserScan& scan, Rng& rng) const {
  (void)rng;
  const double s = strength_at(event.t);
  if (s <= 0.0) return;
  const int keep_every =
      1 + static_cast<int>(std::lround(s * (max_keep_every_ - 1)));
  if (keep_every <= 1) return;
  const auto no_hit = static_cast<float>(lidar.max_range);
  for (std::size_t i = 0; i < scan.ranges.size(); ++i) {
    if (i % static_cast<std::size_t>(keep_every) != 0) {
      scan.ranges[i] = no_hit;
    }
  }
}

void LatencyJitterInjector::corrupt_scan(const FaultEvent& event,
                                         const LidarConfig& lidar,
                                         LaserScan& scan, Rng& rng) const {
  (void)lidar;
  const double s = strength_at(event.t);
  if (s <= 0.0) return;
  const double latency = max_latency_s_ * s;
  const double jitter = latency * jitter_fraction_ * rng.uniform();
  scan.t += latency + jitter;
}

void BlackoutInjector::corrupt_scan(const FaultEvent& event,
                                    const LidarConfig& lidar, LaserScan& scan,
                                    Rng& rng) const {
  (void)rng;
  const double s = strength_at(event.t);
  if (s <= 0.0) return;
  const auto no_hit = static_cast<float>(lidar.max_range);
  std::fill(scan.ranges.begin(), scan.ranges.end(), no_hit);
}

namespace {

/// "none": the identity fault — the baseline row of every scenario grid.
class IdentityInjector final : public Injector {
 public:
  explicit IdentityInjector(FaultProfile profile) : Injector{profile} {}
  std::string name() const override { return "none"; }
};

}  // namespace

const std::vector<std::string>& known_faults() {
  static const std::vector<std::string> kNames{
      "none",          "odom_slip_ramp", "odom_scale",
      "odom_yaw_bias", "lidar_dropout",  "lidar_noise",
      "scan_decimation", "latency_jitter", "blackout",
      "compute_pressure",
  };
  return kNames;
}

std::unique_ptr<Injector> make_injector(const std::string& name,
                                        double severity) {
  if (name == "odom_slip_ramp") {
    // The paper's condition: grip degrades over the run, not instantly.
    return make_injector(name, FaultProfile{severity, 0.0, 10.0});
  }
  if (name == "blackout") {
    // A 2 s sensor loss a few seconds into the run; severity stretches the
    // window up to its full length.
    FaultProfile window{1.0, 5.0, 0.0, 2.0 * severity};
    if (severity <= 0.0) window.severity = 0.0;
    return make_injector(name, window);
  }
  if (name == "compute_pressure") {
    // Load builds up over the first few seconds (a co-located process
    // warming up), then stays: budget pressure ramps to full by t = 8 s.
    return make_injector(name, FaultProfile{severity, 2.0, 6.0});
  }
  return make_injector(name, FaultProfile{severity});
}

std::unique_ptr<Injector> make_injector(const std::string& name,
                                        const FaultProfile& profile) {
  if (name == "none") {
    return std::make_unique<IdentityInjector>(FaultProfile{0.0});
  }
  if (name == "odom_slip_ramp") {
    return std::make_unique<OdometrySlipInjector>(profile);
  }
  if (name == "odom_scale") {
    return std::make_unique<OdometryScaleInjector>(profile);
  }
  if (name == "odom_yaw_bias") {
    return std::make_unique<OdometryYawBiasInjector>(profile);
  }
  if (name == "lidar_dropout") {
    return std::make_unique<LidarDropoutInjector>(profile);
  }
  if (name == "lidar_noise") {
    return std::make_unique<LidarNoiseInjector>(profile);
  }
  if (name == "scan_decimation") {
    return std::make_unique<ScanDecimationInjector>(profile);
  }
  if (name == "latency_jitter") {
    return std::make_unique<LatencyJitterInjector>(profile);
  }
  if (name == "blackout") {
    return std::make_unique<BlackoutInjector>(profile);
  }
  if (name == "compute_pressure") {
    return std::make_unique<ComputePressureInjector>(profile);
  }
  return nullptr;
}

}  // namespace srl::fault
