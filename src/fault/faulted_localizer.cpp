#include "fault/faulted_localizer.hpp"

#include <algorithm>

namespace srl::fault {

void FaultedLocalizer::initialize(const Pose2& pose) {
  // Deliberately does NOT rewind the fault stream: initialize() sets the
  // pose belief, and a supervision layer may call it mid-run to relocalize
  // a lost filter. Faults are scheduled on the *scenario* clock — a
  // recovery action must not replay the blackout window or restart a slip
  // ramp. Stream bookkeeping starts at construction; use reset_stream()
  // to reuse one wrapper across runs.
  inner_.initialize(pose);
}

void FaultedLocalizer::reset_stream() {
  odom_index_ = 0;
  scan_index_ = 0;
  odom_clock_ = 0.0;
  first_scan_t_ = 0.0;
  seen_scan_ = false;
  pipeline_.reset();
}

void FaultedLocalizer::on_odometry(const OdometryDelta& odom) {
  OdometryDelta corrupted = odom;
  const FaultEvent event{odom_index_, odom_clock_};
  pipeline_.corrupt_odometry(event, corrupted);
  ++odom_index_;
  odom_clock_ += odom.dt;
  inner_.on_odometry(corrupted);
}

Pose2 FaultedLocalizer::on_scan(const LaserScan& scan) {
  if (!seen_scan_) {
    first_scan_t_ = scan.t;
    seen_scan_ = true;
  }
  LaserScan corrupted = scan;
  const FaultEvent event{scan_index_, scan.t - first_scan_t_};
  pipeline_.corrupt_scan(event, corrupted);
  ++scan_index_;
  journal_envelopes(scan.t, event.t);
  return inner_.on_scan(corrupted);
}

void FaultedLocalizer::set_telemetry(const telemetry::Sink& sink) {
  events_ = sink.events;
  inner_.set_telemetry(sink);
}

void FaultedLocalizer::journal_envelopes(double scan_t, double stream_t) {
  // Poll every stage's envelope at the scan boundary; journal rising and
  // falling edges. The poll reads config-derived profiles only — no stream
  // state advances — so running it (or not) is estimate-invariant.
  stage_active_.resize(pipeline_.size(), false);
  double level = 0.0;
  for (std::size_t i = 0; i < pipeline_.size(); ++i) {
    const Injector& stage = pipeline_.stage(i);
    const double strength = stage.strength_at(stream_t);
    level = std::max(level, strength);
    const bool active = strength > 0.0;
    if (active == static_cast<bool>(stage_active_[i])) continue;
    stage_active_[i] = active;
    if (events_ == nullptr) continue;
    json::Value data = json::Value::object();
    data.set("fault", json::Value::string(stage.name()));
    data.set("stage", json::Value::number(static_cast<double>(i)));
    data.set("strength", json::Value::number(strength));
    data.set("stream_t", json::Value::number(stream_t));
    events_->emit(scan_t,
                  active ? telemetry::EventSeverity::kWarn
                         : telemetry::EventSeverity::kInfo,
                  telemetry::EventCategory::kFault,
                  active ? "fault.active" : "fault.cleared", std::move(data));
  }
  fault_level_ = level;
}

}  // namespace srl::fault
