#include "fault/faulted_localizer.hpp"

namespace srl::fault {

void FaultedLocalizer::initialize(const Pose2& pose) {
  // Deliberately does NOT rewind the fault stream: initialize() sets the
  // pose belief, and a supervision layer may call it mid-run to relocalize
  // a lost filter. Faults are scheduled on the *scenario* clock — a
  // recovery action must not replay the blackout window or restart a slip
  // ramp. Stream bookkeeping starts at construction; use reset_stream()
  // to reuse one wrapper across runs.
  inner_.initialize(pose);
}

void FaultedLocalizer::reset_stream() {
  odom_index_ = 0;
  scan_index_ = 0;
  odom_clock_ = 0.0;
  first_scan_t_ = 0.0;
  seen_scan_ = false;
  pipeline_.reset();
}

void FaultedLocalizer::on_odometry(const OdometryDelta& odom) {
  OdometryDelta corrupted = odom;
  const FaultEvent event{odom_index_, odom_clock_};
  pipeline_.corrupt_odometry(event, corrupted);
  ++odom_index_;
  odom_clock_ += odom.dt;
  inner_.on_odometry(corrupted);
}

Pose2 FaultedLocalizer::on_scan(const LaserScan& scan) {
  if (!seen_scan_) {
    first_scan_t_ = scan.t;
    seen_scan_ = true;
  }
  LaserScan corrupted = scan;
  const FaultEvent event{scan_index_, scan.t - first_scan_t_};
  pipeline_.corrupt_scan(event, corrupted);
  ++scan_index_;
  return inner_.on_scan(corrupted);
}

}  // namespace srl::fault
