#include "fault/pipeline.hpp"

#include <algorithm>

namespace srl::fault {

namespace {
// Event-kind tags folded into the substream key so an injector's odometry
// and scan draws never share a stream.
constexpr std::uint64_t kOdomKind = 1;
constexpr std::uint64_t kScanKind = 2;
}  // namespace

FaultPipeline::FaultPipeline(std::uint64_t seed, LidarConfig lidar)
    : seed_{seed}, lidar_{lidar} {}

FaultPipeline& FaultPipeline::add(std::unique_ptr<Injector> injector) {
  if (injector != nullptr) stack_.push_back(std::move(injector));
  return *this;
}

bool FaultPipeline::add(const std::string& name, double severity) {
  std::unique_ptr<Injector> injector = make_injector(name, severity);
  if (injector == nullptr) return false;
  stack_.push_back(std::move(injector));
  return true;
}

std::string FaultPipeline::describe() const {
  if (stack_.empty()) return "none";
  std::string out;
  for (const auto& injector : stack_) {
    if (!out.empty()) out += '+';
    out += injector->name();
  }
  return out;
}

Rng FaultPipeline::event_rng(std::size_t slot, std::uint64_t kind,
                             std::uint64_t index) const {
  // Stream key = (slot, kind); index keys the event. Rng::substream mixes
  // each through SplitMix64 chains over the master seed, so distinct
  // (slot, kind, index) triples yield independent streams regardless of
  // how many events any injector has processed.
  const std::uint64_t stream = (static_cast<std::uint64_t>(slot) << 8) | kind;
  // srl-lint-allow(rng-stream-key): key is (slot << 8) | kind — the pinned injector-slot/event-kind schedule above, not a free variable
  return Rng{seed_}.substream(stream, index);
}

void FaultPipeline::corrupt_odometry(const FaultEvent& event,
                                     OdometryDelta& odom) const {
  for (std::size_t slot = 0; slot < stack_.size(); ++slot) {
    Rng rng = event_rng(slot, kOdomKind, event.index);
    stack_[slot]->corrupt_odometry(event, odom, rng);
  }
}

void FaultPipeline::corrupt_scan(const FaultEvent& event,
                                 LaserScan& scan) const {
  const double original_t = scan.t;
  for (std::size_t slot = 0; slot < stack_.size(); ++slot) {
    Rng rng = event_rng(slot, kScanKind, event.index);
    stack_[slot]->corrupt_scan(event, lidar_, scan, rng);
  }
  // Latency faults may push timestamps later; never let them reorder the
  // stream. The clamp only engages when something actually moved `t`, so a
  // severity-0 pass stays a bitwise no-op.
  if (scan.t != original_t) {
    scan.t = std::max(scan.t, last_scan_t_);
  }
  last_scan_t_ = scan.t;
}

void FaultPipeline::reset() const { last_scan_t_ = -1e300; }

}  // namespace srl::fault
