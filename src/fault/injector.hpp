#pragma once

/// \file injector.hpp
/// \brief Deterministic sensor-fault injectors — the degradation vocabulary
/// behind the robustness scenario matrix (DESIGN.md §10).
///
/// The paper's headline claim is about *robustness*: SynPF stays flat under
/// low-quality (slipping) odometry while Cartographer-style localization
/// degrades sharply. The repo previously exercised degradation through one
/// knob only (the grip coefficient mu). An `Injector` generalizes that into
/// a composable fault taxonomy that corrupts the *sensor stream itself* —
/// odometry slip/scale/bias, LiDAR beam dropout and range noise, scan
/// decimation, latency, transient blackout — so any localizer can be graded
/// against any degradation without touching the filters.
///
/// Determinism contract (the repo-wide guarantee extends to faults):
///  - every stochastic draw comes from an `Rng::substream` keyed by
///    (pipeline seed, injector slot, event kind, event index) — a pure
///    function of the seed and the event, never of thread count, wall
///    clock, or how many draws other injectors made;
///  - severity 0 (or an event outside the fault's time window) is a
///    *bitwise* no-op: the injector returns before touching a byte;
///  - stacking is well-defined: a `FaultPipeline` applies injectors in the
///    order they were added, each seeing the previous one's output, and
///    each drawing from its own slot-keyed substream (fault/pipeline.hpp).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "motion/motion_model.hpp"
#include "sensor/lidar.hpp"

namespace srl::fault {

/// When (and how strongly) a fault is active. The envelope shapes the
/// configured severity over stream time:
///
///     envelope(t) = 0                                   t < t_start
///                 = severity * min(1, (t-t_start)/ramp) t in window, ramp>0
///                 = severity                            t in window, ramp=0
///                 = 0                                   t > t_start+duration
///
/// so `ramp_s > 0` gives the paper-style degradation *ramp* (the fault grows
/// as the tires heat / tape wears), and a finite `duration` gives transient
/// faults (blackouts).
struct FaultProfile {
  double severity = 1.0;  ///< peak intensity in [0, 1]
  double t_start = 0.0;   ///< s from stream start before the fault begins
  double ramp_s = 0.0;    ///< s to ramp 0 -> severity (0 = step)
  double duration = -1.0; ///< active window length, s (< 0 = forever)

  double envelope(double t) const;
};

/// One corrupted event: `index` counts events of this kind (odometry and
/// scans independently) from stream start, `t` is seconds since the first
/// event of the stream. Both are pure stream properties, so the same trace
/// always presents the same events.
struct FaultEvent {
  std::uint64_t index{0};
  double t{0.0};
};

/// Interface: stateless corruptors, safe to share across threads. `rng` is
/// a fresh per-(injector, event) substream handed in by the pipeline; an
/// injector must draw only from it. Implementations override the hooks for
/// the stream(s) they corrupt and leave the other untouched.
class Injector {
 public:
  explicit Injector(FaultProfile profile) : profile_{profile} {}
  virtual ~Injector() = default;

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  virtual std::string name() const = 0;

  /// Corrupt one odometry increment in place.
  virtual void corrupt_odometry(const FaultEvent& event, OdometryDelta& odom,
                                Rng& rng) const {
    (void)event;
    (void)odom;
    (void)rng;
  }

  /// Corrupt one LiDAR revolution in place. `lidar` supplies the sensor
  /// geometry (max_range is the "no hit" encoding dropped beams map to).
  virtual void corrupt_scan(const FaultEvent& event, const LidarConfig& lidar,
                            LaserScan& scan, Rng& rng) const {
    (void)event;
    (void)lidar;
    (void)scan;
    (void)rng;
  }

  const FaultProfile& profile() const { return profile_; }
  /// Effective intensity at stream time `t` (0 = leave the event alone).
  double strength_at(double t) const { return profile_.envelope(t); }

 private:
  FaultProfile profile_;
};

/// Wheel slip: odometry over-reports longitudinal motion (the driven wheels
/// spin faster than the car moves — exactly what low grip does to the
/// wheel-odometry pipeline). At full strength the reported forward delta and
/// speed are scaled by (1 + max_slip), plus a per-increment multiplicative
/// jitter that models slip-stick chatter.
class OdometrySlipInjector final : public Injector {
 public:
  OdometrySlipInjector(FaultProfile profile, double max_slip = 0.35,
                       double jitter = 0.10)
      : Injector{profile}, max_slip_{max_slip}, jitter_{jitter} {}

  std::string name() const override { return "odom_slip"; }
  void corrupt_odometry(const FaultEvent& event, OdometryDelta& odom,
                        Rng& rng) const override;

 private:
  double max_slip_;
  double jitter_;
};

/// Systematic odometry scale error (wrong wheel radius / tire wear): all
/// translation components and the reported speed are scaled by
/// (1 + max_scale * strength). Deterministic — no rng draws.
class OdometryScaleInjector final : public Injector {
 public:
  OdometryScaleInjector(FaultProfile profile, double max_scale = 0.20)
      : Injector{profile}, max_scale_{max_scale} {}

  std::string name() const override { return "odom_scale"; }
  void corrupt_odometry(const FaultEvent& event, OdometryDelta& odom,
                        Rng& rng) const override;

 private:
  double max_scale_;
};

/// Yaw-rate bias (miscalibrated IMU / unequal tire pressures): the heading
/// increment drifts by `max_bias_rad_s * strength * dt` every increment.
/// Deterministic — no rng draws.
class OdometryYawBiasInjector final : public Injector {
 public:
  OdometryYawBiasInjector(FaultProfile profile, double max_bias_rad_s = 0.15)
      : Injector{profile}, max_bias_rad_s_{max_bias_rad_s} {}

  std::string name() const override { return "odom_yaw_bias"; }
  void corrupt_odometry(const FaultEvent& event, OdometryDelta& odom,
                        Rng& rng) const override;

 private:
  double max_bias_rad_s_;
};

/// Random beam dropout (dust, rain, absorptive surfaces): each valid return
/// is independently replaced by "no hit" (max_range) with probability
/// `max_dropout * strength`.
class LidarDropoutInjector final : public Injector {
 public:
  LidarDropoutInjector(FaultProfile profile, double max_dropout = 0.6)
      : Injector{profile}, max_dropout_{max_dropout} {}

  std::string name() const override { return "lidar_dropout"; }
  void corrupt_scan(const FaultEvent& event, const LidarConfig& lidar,
                    LaserScan& scan, Rng& rng) const override;

 private:
  double max_dropout_;
};

/// Additive Gaussian range noise (sensor aging, interference): every valid
/// return is perturbed with stddev `max_sigma_m * strength`, clamped into
/// [min_range, max_range].
class LidarNoiseInjector final : public Injector {
 public:
  LidarNoiseInjector(FaultProfile profile, double max_sigma_m = 0.20)
      : Injector{profile}, max_sigma_m_{max_sigma_m} {}

  std::string name() const override { return "lidar_noise"; }
  void corrupt_scan(const FaultEvent& event, const LidarConfig& lidar,
                    LaserScan& scan, Rng& rng) const override;

 private:
  double max_sigma_m_;
};

/// Angular decimation (a cheaper scanner, or a driver dropping packets):
/// only every k-th beam survives, the rest become "no hit". k grows with
/// strength from 1 (no-op) to `max_keep_every`.
class ScanDecimationInjector final : public Injector {
 public:
  ScanDecimationInjector(FaultProfile profile, int max_keep_every = 8)
      : Injector{profile}, max_keep_every_{max_keep_every} {}

  std::string name() const override { return "scan_decimation"; }
  void corrupt_scan(const FaultEvent& event, const LidarConfig& lidar,
                    LaserScan& scan, Rng& rng) const override;

 private:
  int max_keep_every_;
};

/// Measurement latency + jitter: each scan's timestamp is pushed later by
/// `max_latency_s * strength` plus a uniform jitter fraction, so replay
/// delivers the (stale) scan after the odometry that actually followed it —
/// the classic stale-scan failure of a loaded compute box. Timestamps stay
/// monotone within a pipeline pass.
class LatencyJitterInjector final : public Injector {
 public:
  LatencyJitterInjector(FaultProfile profile, double max_latency_s = 0.08,
                        double jitter_fraction = 0.5)
      : Injector{profile},
        max_latency_s_{max_latency_s},
        jitter_fraction_{jitter_fraction} {}

  std::string name() const override { return "latency_jitter"; }
  void corrupt_scan(const FaultEvent& event, const LidarConfig& lidar,
                    LaserScan& scan, Rng& rng) const override;

 private:
  double max_latency_s_;
  double jitter_fraction_;
};

/// Transient total blackout (connector glitch, sun glare): inside the
/// profile window every return is "no hit" — the localizer must coast on
/// odometry and re-converge when the sensor returns.
class BlackoutInjector final : public Injector {
 public:
  explicit BlackoutInjector(FaultProfile profile) : Injector{profile} {}

  std::string name() const override { return "blackout"; }
  void corrupt_scan(const FaultEvent& event, const LidarConfig& lidar,
                    LaserScan& scan, Rng& rng) const override;
};

/// Compute pressure (the 9th fault axis, DESIGN.md §16): a co-located
/// workload squeezes the localizer's per-update latency budget. Unlike every
/// other injector it corrupts *no* sensor bytes — trace fingerprints are
/// unchanged at any severity, and severity 0 is trivially a bitwise no-op.
/// Instead the compute governor (src/governor) polls this stage's envelope
/// through `FaultPipeline::stage()` and scales its declared budget by
/// (1 - strength): at full strength the budget collapses to zero and the
/// governor must shed (or, ungoverned, miss) every deadline. Keeping the
/// pressure signal in the fault vocabulary gives the scenario matrix,
/// frontier bisection and black-box replay the axis for free.
class ComputePressureInjector final : public Injector {
 public:
  explicit ComputePressureInjector(FaultProfile profile) : Injector{profile} {}

  std::string name() const override { return "compute_pressure"; }
};

/// Canonical fault names the factory understands — the vocabulary of the
/// scenario matrix, bench grids, and CI smoke job.
const std::vector<std::string>& known_faults();

/// Build a named fault at `severity` in [0, 1] with its canonical profile
/// ("odom_slip_ramp" ramps over the first 10 s; "blackout" opens a 2 s
/// window at t = 5 s; everything else is a step at t = 0). Returns nullptr
/// for unknown names. "none" yields an identity injector.
std::unique_ptr<Injector> make_injector(const std::string& name,
                                        double severity);

/// Build a named fault with an explicit envelope (the frontier sampler's
/// entry point: sampled phases, ramps and windows instead of the canonical
/// shapes above). `profile.severity` carries the intensity; the injector's
/// magnitude parameters stay at their defaults so a given (name, profile)
/// names exactly one corruption. Returns nullptr for unknown names.
std::unique_ptr<Injector> make_injector(const std::string& name,
                                        const FaultProfile& profile);

}  // namespace srl::fault
