#pragma once

/// \file pipeline.hpp
/// \brief FaultPipeline — an ordered stack of injectors bound to one seed,
/// applied to a sensor stream event by event.
///
/// The pipeline is the composition point of the fault subsystem: injectors
/// are applied in the order they were added (each sees its predecessor's
/// output), and each injector's stochastic draws come from a substream
/// keyed by (pipeline seed, injector slot, event kind, event index). Two
/// consequences, both load-bearing for the robustness benchmarks:
///
///  1. **Bitwise determinism.** A corrupted event is a pure function of the
///     seed, the stack, and the clean event. No thread count, wall clock,
///     or draw history enters the derivation, so the corrupted-trace hash
///     is a stable fingerprint CI can diff across commits.
///  2. **Well-defined stacking.** Reordering the stack changes the output
///     (deterministically): slot keys move with the injector, and the data
///     transformation composes in add-order. `[slip, dropout]` is one
///     scenario, `[dropout, slip]` another.
///
/// The pipeline itself is stateless across events except for the scan
/// timestamp monotonicity clamp (latency faults must not reorder a trace),
/// which `reset()` rewinds between passes.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fault/injector.hpp"

namespace srl::fault {

class FaultPipeline {
 public:
  /// `seed` keys every substream; `lidar` supplies scan geometry to the
  /// injectors (no-hit encoding, valid-range window).
  explicit FaultPipeline(std::uint64_t seed = 0x7a017ULL,
                         LidarConfig lidar = {});

  /// Append `injector` to the stack (applied after everything added so
  /// far). Returns *this for chaining.
  FaultPipeline& add(std::unique_ptr<Injector> injector);

  /// Convenience: append the canonical fault `name` at `severity`
  /// (fault/injector.hpp factory). Unknown names are ignored and reported
  /// by the return value.
  bool add(const std::string& name, double severity);

  std::size_t size() const { return stack_.size(); }
  bool empty() const { return stack_.empty(); }
  /// Injector at stack slot `i` (application order). Observers use this to
  /// poll per-stage envelope strength; it never advances any stream state.
  const Injector& stage(std::size_t i) const { return *stack_[i]; }
  std::uint64_t seed() const { return seed_; }
  const LidarConfig& lidar() const { return lidar_; }

  /// "a+b+c" — the stack's names in application order ("none" when empty).
  std::string describe() const;

  /// Corrupt one odometry increment in place. `event.index` must count
  /// odometry events from stream start and `event.t` must be seconds since
  /// the stream began; the caller owns that bookkeeping (FaultedLocalizer
  /// and eval/fault_replay.hpp both do).
  void corrupt_odometry(const FaultEvent& event, OdometryDelta& odom) const;

  /// Corrupt one scan in place; clamps the (possibly latency-shifted)
  /// timestamp to stay monotone with the previous corrupted scan.
  void corrupt_scan(const FaultEvent& event, LaserScan& scan) const;

  /// Rewind the timestamp-monotonicity clamp before replaying a new stream
  /// through the same pipeline.
  void reset() const;

 private:
  Rng event_rng(std::size_t slot, std::uint64_t kind,
                std::uint64_t index) const;

  std::uint64_t seed_;
  LidarConfig lidar_;
  std::vector<std::unique_ptr<Injector>> stack_;
  mutable double last_scan_t_{-1e300};
};

}  // namespace srl::fault
