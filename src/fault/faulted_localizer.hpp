#pragma once

/// \file faulted_localizer.hpp
/// \brief Decorator that corrupts a localizer's sensor diet in flight —
/// fault injection for *closed-loop* experiments.
///
/// `ExperimentRunner::run` races whatever `Localizer` it is handed; wrapping
/// the candidate in a `FaultedLocalizer` slots a `FaultPipeline` between the
/// simulated sensors and the filter without the runner or the filter
/// noticing. The controller then steers from the estimate produced under
/// degraded data, so lateral error measures the *system-level* consequence
/// of the fault — the paper's robustness experiment, generalized from grip
/// alone to the whole fault taxonomy.
///
/// Event bookkeeping: odometry and scan indices count from construction
/// (or an explicit `reset_stream()`), and event time is seconds since the
/// first event (odometry time is the accumulated sum of increment dts;
/// scans use their own timestamps). `initialize` deliberately does NOT
/// rewind the stream: it sets the pose belief, and a supervision layer
/// (recovery/supervised_localizer.hpp) may call it mid-run to relocalize a
/// lost filter — faults are scheduled on the scenario clock, so a recovery
/// action must not replay a blackout window or restart a slip ramp. An
/// empty pipeline makes the wrapper a bitwise pass-through.

#include <string>
#include <vector>

#include "core/localizer.hpp"
#include "fault/pipeline.hpp"

namespace srl::fault {

class FaultedLocalizer final : public Localizer {
 public:
  /// Neither pointer-like argument is owned; both must outlive the wrapper.
  FaultedLocalizer(Localizer& inner, const FaultPipeline& pipeline)
      : inner_{inner}, pipeline_{pipeline} {}

  void initialize(const Pose2& pose) override;
  /// Rewind event indices, the stream clock, and the pipeline's timestamp
  /// clamp, to replay a fresh stream through the same wrapper.
  void reset_stream();
  void on_odometry(const OdometryDelta& odom) override;
  Pose2 on_scan(const LaserScan& scan) override;
  Pose2 pose() const override { return inner_.pose(); }
  std::string name() const override {
    return inner_.name() + "+" + pipeline_.describe();
  }
  double mean_scan_update_ms() const override {
    return inner_.mean_scan_update_ms();
  }
  double total_busy_s() const override { return inner_.total_busy_s(); }
  /// Forwards the sink to the wrapped localizer and keeps the event-log
  /// pointer locally: the wrapper journals fault-envelope edges
  /// (`fault.active` / `fault.cleared`) at scan boundaries. Event emission
  /// never touches the corruption math, so an attached sink cannot change
  /// any estimate.
  void set_telemetry(const telemetry::Sink& sink) override;

  /// Strongest per-stage envelope strength observed at the last scan
  /// boundary (0 while every stage is dormant). Flight-recorder probe.
  double last_fault_level() const { return fault_level_; }

 private:
  void journal_envelopes(double scan_t, double stream_t);

  Localizer& inner_;
  const FaultPipeline& pipeline_;
  std::uint64_t odom_index_{0};
  std::uint64_t scan_index_{0};
  double odom_clock_{0.0};  ///< accumulated odometry time since initialize
  double first_scan_t_{0.0};
  bool seen_scan_{false};

  telemetry::EventLog* events_{nullptr};
  std::vector<bool> stage_active_;  ///< envelope > 0 at the last boundary
  double fault_level_{0.0};
};

}  // namespace srl::fault
