#pragma once

/// \file beam_model.hpp
/// \brief Beam-based range likelihood p(z | z*) (Probabilistic Robotics,
/// ch. 6.3): a mixture of a Gaussian around the expected range, an
/// exponential short-return component, a max-range spike, and a uniform
/// noise floor. Likelihoods are precomputed into a 2-D table over
/// (measured, expected) so the particle filter's inner loop is two integer
/// ops and a load — the same trick as the MIT racecar particle filter.

#include <vector>

#include "common/types.hpp"

namespace srl {

struct BeamModelParams {
  double z_hit = 0.75;    ///< weight of the Gaussian hit component
  double z_short = 0.05;  ///< weight of unexpected-obstacle short returns
  double z_max = 0.05;    ///< weight of the max-range spike
  double z_rand = 0.15;   ///< weight of the uniform floor
  double sigma_hit = 0.12;     ///< m, hit Gaussian std
  double lambda_short = 1.0;   ///< 1/m, short-return decay
  double max_range = 12.0;     ///< m
  double table_resolution = 0.05;  ///< m per table bin
};

class BeamModel {
 public:
  explicit BeamModel(const BeamModelParams& params = {});

  /// Log-likelihood of measuring `measured` when the map predicts
  /// `expected`, both clamped to [0, max_range]. Table lookup, O(1).
  double log_prob(float measured, float expected) const {
    return log_table_[index(measured, expected)];
  }
  double prob(float measured, float expected) const;

  const BeamModelParams& params() const { return params_; }
  int table_dim() const { return dim_; }

  /// Table bin of a range value — the exact clamp arithmetic log_prob()
  /// uses for both axes. Exposed so the vectorized weight kernels
  /// (src/core/pf_kernels.cpp) can reproduce the lookup bit-for-bit;
  /// any change here is a golden-trace regeneration event.
  int range_bin(float v) const {
    const int b = static_cast<int>(static_cast<double>(v) * inv_res_ + 0.5);
    return b < 0 ? 0 : (b > dim_ - 1 ? dim_ - 1 : b);
  }

  /// Raw log-likelihood table (dim x dim, [measured][expected]) and the
  /// bin scale, for the batched kernels. The table outlives any kernel
  /// call; the model is immutable after construction.
  const double* log_table_data() const { return log_table_.data(); }
  double inv_resolution() const { return inv_res_; }

  /// Direct (un-tabled) evaluation, used to build the table and by tests.
  double prob_exact(double measured, double expected) const;

 private:
  std::size_t index(float measured, float expected) const;

  BeamModelParams params_;
  int dim_;
  double inv_res_;
  std::vector<double> log_table_;  ///< dim_ x dim_, [measured][expected]
};

}  // namespace srl
