#pragma once

/// \file lidar.hpp
/// \brief Planar LiDAR scan types: sensor geometry and one revolution of
/// range data. Modeled on the Hokuyo-class scanner of the F1TENTH platform
/// (270 degrees, 1081 beams, 40 Hz).

#include <vector>

#include "common/angles.hpp"
#include "common/types.hpp"

namespace srl {

/// Static geometry of the scanner.
struct LidarConfig {
  double fov = deg2rad(270.0);  ///< total field of view, rad
  int n_beams = 1081;           ///< beams across the FOV
  double max_range = 12.0;      ///< m
  double min_range = 0.05;      ///< m, closer returns are invalid
  double rate_hz = 40.0;        ///< scan frequency
  Pose2 mount{};                ///< sensor pose in the body frame

  double angle_min() const { return -0.5 * fov; }
  double angle_increment() const {
    return n_beams > 1 ? fov / (n_beams - 1) : 0.0;
  }
  /// Beam angle in the sensor frame.
  double beam_angle(int i) const { return angle_min() + i * angle_increment(); }
  /// Index of the beam closest to a sensor-frame angle, clamped to the FOV.
  int nearest_beam(double angle) const;
};

/// One scan: ranges[i] corresponds to config.beam_angle(i). Returns at
/// max_range (or beyond) indicate "no hit".
struct LaserScan {
  std::vector<float> ranges;
  double t{0.0};  ///< acquisition timestamp, s
};

/// Convert scan returns to 2-D points in the *body* frame, skipping invalid
/// (< min_range) and no-hit (>= max_range) returns. `stride` subsamples.
std::vector<Vec2> scan_to_points(const LaserScan& scan,
                                 const LidarConfig& config, int stride = 1);

/// Motion-corrected conversion: assuming the body moved with constant
/// `twist` during the revolution (beam n-1 newest), re-express every return
/// in the scan-end body frame. This is what Cartographer's extrapolator
/// does with odometry — and therefore inherits the odometry's errors: a
/// slipping wheel deskews with the wrong twist and *warps* the cloud.
std::vector<Vec2> deskew_scan(const LaserScan& scan, const LidarConfig& config,
                              const Twist2& twist, int stride = 1);

}  // namespace srl
