#include "sensor/lidar.hpp"

#include <algorithm>
#include <cmath>

namespace srl {

int LidarConfig::nearest_beam(double angle) const {
  if (n_beams <= 1) return 0;
  const double inc = angle_increment();
  const int i = static_cast<int>(std::lround((angle - angle_min()) / inc));
  return std::clamp(i, 0, n_beams - 1);
}

std::vector<Vec2> scan_to_points(const LaserScan& scan,
                                 const LidarConfig& config, int stride) {
  std::vector<Vec2> pts;
  const int step = std::max(stride, 1);
  pts.reserve(scan.ranges.size() / static_cast<std::size_t>(step) + 1);
  const int n = static_cast<int>(scan.ranges.size());
  for (int i = 0; i < n; i += step) {
    const float r = scan.ranges[static_cast<std::size_t>(i)];
    if (r < config.min_range || r >= config.max_range) continue;
    const double a = config.beam_angle(i);
    const Vec2 in_sensor{r * std::cos(a), r * std::sin(a)};
    pts.push_back(config.mount.transform(in_sensor));
  }
  return pts;
}

std::vector<Vec2> deskew_scan(const LaserScan& scan, const LidarConfig& config,
                              const Twist2& twist, int stride) {
  std::vector<Vec2> pts;
  const int step = std::max(stride, 1);
  pts.reserve(scan.ranges.size() / static_cast<std::size_t>(step) + 1);
  const int n = static_cast<int>(scan.ranges.size());
  const double period = config.rate_hz > 0.0 ? 1.0 / config.rate_hz : 0.0;
  for (int i = 0; i < n; i += step) {
    const float r = scan.ranges[static_cast<std::size_t>(i)];
    if (r < config.min_range || r >= config.max_range) continue;
    const double a = config.beam_angle(i);
    const Vec2 in_sensor{r * std::cos(a), r * std::sin(a)};
    const Vec2 in_body = config.mount.transform(in_sensor);
    // Pose of the body at beam time, relative to the scan-end body frame.
    const double tau =
        period * (static_cast<double>(i) / std::max(n - 1, 1) - 1.0);
    const Pose2 rel = integrate_twist(Pose2{}, twist, tau);
    pts.push_back(rel.transform(in_body));
  }
  return pts;
}

}  // namespace srl
