#pragma once

/// \file lidar_sim.hpp
/// \brief Simulated LiDAR: casts every beam against the ground-truth map
/// with an exact/fast range backend and perturbs the returns with Gaussian
/// range noise and dropouts. This is the exteroceptive half of the testbed
/// substitution (see DESIGN.md): localizers consume these scans exactly as
/// they would consume Hokuyo data.

#include <memory>

#include "common/rng.hpp"
#include "range/range_method.hpp"
#include "sensor/lidar.hpp"

namespace srl {

struct LidarNoise {
  double sigma_range = 0.02;   ///< m, per-return Gaussian noise
  double dropout_prob = 0.002; ///< chance a beam returns max range
};

class LidarSim {
 public:
  /// `caster` must be built over the ground-truth map with
  /// max_range >= config.max_range.
  LidarSim(LidarConfig config, std::shared_ptr<const RangeMethod> caster,
           LidarNoise noise = {});

  /// Simulate one revolution finishing at body pose `body` at time `t`,
  /// while the body moves with `twist` — each beam is cast from the pose
  /// the sensor actually occupied when that beam fired (motion
  /// distortion). At racing speed the pose moves ~17 cm during one 25 ms
  /// revolution, so consumers that do not deskew see warped geometry.
  LaserScan scan(const Pose2& body, const Twist2& twist, double t,
                 Rng& rng) const;

  /// Distortion-free convenience overload (static captures, tests).
  LaserScan scan(const Pose2& body, double t, Rng& rng) const {
    return scan(body, Twist2{}, t, rng);
  }

  const LidarConfig& config() const { return config_; }

 private:
  LidarConfig config_;
  std::shared_ptr<const RangeMethod> caster_;
  LidarNoise noise_;
};

}  // namespace srl
