#include "sensor/beam_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/angles.hpp"

namespace srl {

BeamModel::BeamModel(const BeamModelParams& params)
    : params_{params},
      dim_{static_cast<int>(
               std::ceil(params.max_range / params.table_resolution)) +
           1},
      inv_res_{1.0 / params.table_resolution},
      log_table_(static_cast<std::size_t>(dim_) * dim_) {
  for (int zi = 0; zi < dim_; ++zi) {
    const double z = zi * params_.table_resolution;
    for (int ei = 0; ei < dim_; ++ei) {
      const double e = ei * params_.table_resolution;
      log_table_[static_cast<std::size_t>(zi) * dim_ + ei] =
          std::log(std::max(prob_exact(z, e), 1e-12));
    }
  }
}

double BeamModel::prob_exact(double measured, double expected) const {
  const BeamModelParams& p = params_;
  const double z = std::clamp(measured, 0.0, p.max_range);
  const double e = std::clamp(expected, 0.0, p.max_range);

  // Hit: Gaussian about the expected range. The normalizer over [0, max]
  // is folded into the constant; the mixture weights dominate anyway.
  const double hit = std::exp(-0.5 * (z - e) * (z - e) /
                              (p.sigma_hit * p.sigma_hit)) /
                     (p.sigma_hit * std::sqrt(kTwoPi));

  // Short: exponential decay up to the expected range.
  double shrt = 0.0;
  if (z <= e && e > 0.0) {
    const double eta =
        1.0 / (1.0 - std::exp(-p.lambda_short * e) + 1e-12);
    shrt = eta * p.lambda_short * std::exp(-p.lambda_short * z);
  }

  // Max: spike in the last table bin's worth of range.
  const double max_band = p.table_resolution;
  const double zmax = z >= p.max_range - max_band ? 1.0 / max_band : 0.0;

  // Rand: uniform over the measurable interval.
  const double rnd = 1.0 / p.max_range;

  return p.z_hit * hit + p.z_short * shrt + p.z_max * zmax + p.z_rand * rnd;
}

double BeamModel::prob(float measured, float expected) const {
  return std::exp(log_prob(measured, expected));
}

std::size_t BeamModel::index(float measured, float expected) const {
  return static_cast<std::size_t>(range_bin(measured)) *
             static_cast<std::size_t>(dim_) +
         static_cast<std::size_t>(range_bin(expected));
}

}  // namespace srl
