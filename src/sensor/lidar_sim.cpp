#include "sensor/lidar_sim.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace srl {

LidarSim::LidarSim(LidarConfig config,
                   std::shared_ptr<const RangeMethod> caster, LidarNoise noise)
    : config_{std::move(config)}, caster_{std::move(caster)}, noise_{noise} {}

LaserScan LidarSim::scan(const Pose2& body, const Twist2& twist, double t,
                         Rng& rng) const {
  LaserScan out;
  out.t = t;
  out.ranges.resize(static_cast<std::size_t>(config_.n_beams));
  const auto max_r = static_cast<float>(config_.max_range);
  const double period = config_.rate_hz > 0.0 ? 1.0 / config_.rate_hz : 0.0;
  const bool moving =
      period > 0.0 && (std::abs(twist.vx) > 1e-6 ||
                       std::abs(twist.vy) > 1e-6 || std::abs(twist.wz) > 1e-6);
  const int n = config_.n_beams;
  for (int i = 0; i < n; ++i) {
    float r;
    if (rng.chance(noise_.dropout_prob)) {
      r = max_r;
    } else {
      // Beam i fired tau seconds before scan end (beam n-1 is the newest).
      Pose2 body_i = body;
      if (moving) {
        const double tau =
            period * (static_cast<double>(i) / std::max(n - 1, 1) - 1.0);
        body_i = integrate_twist(body, twist, tau);
      }
      const Pose2 sensor = body_i * config_.mount;
      const double a = sensor.theta + config_.beam_angle(i);
      r = caster_->range({sensor.x, sensor.y, a});
      if (r < max_r) {
        r += static_cast<float>(rng.gaussian(noise_.sigma_range));
      }
    }
    out.ranges[static_cast<std::size_t>(i)] = std::clamp(r, 0.0F, max_r);
  }
  return out;
}

}  // namespace srl
