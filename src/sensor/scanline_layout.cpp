#include "sensor/scanline_layout.hpp"

#include <algorithm>
#include <cmath>

namespace srl {

std::vector<int> uniform_layout(const LidarConfig& config, int count) {
  std::vector<int> idx;
  const int n = config.n_beams;
  const int k = std::clamp(count, 1, n);
  idx.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    idx.push_back(k > 1 ? i * (n - 1) / (k - 1) : n / 2);
  }
  idx.erase(std::unique(idx.begin(), idx.end()), idx.end());
  return idx;
}

std::vector<int> boxed_layout(const LidarConfig& config, int count,
                              double aspect) {
  // Virtual box centered on the sensor, elongated along the heading (+x).
  // Width is arbitrary (angles only depend on the aspect ratio); use 1.
  const double w = 1.0;
  const double l = std::max(aspect, 0.1) * w;
  const double perimeter = 2.0 * (l + w);

  const int k = std::clamp(count, 1, config.n_beams);
  std::vector<int> idx;
  idx.reserve(static_cast<std::size_t>(k));
  // Walk the perimeter starting at the middle of the front edge so the
  // forward direction always receives a beam.
  for (int i = 0; i < k; ++i) {
    double s = perimeter * i / k;
    double px;
    double py;
    if (s < w / 2.0) {  // front edge, upper half
      px = l / 2.0;
      py = s;
    } else if (s < w / 2.0 + l) {  // left edge, front to back
      px = l / 2.0 - (s - w / 2.0);
      py = w / 2.0;
    } else if (s < 1.5 * w + l) {  // rear edge
      px = -l / 2.0;
      py = w / 2.0 - (s - w / 2.0 - l);
    } else if (s < 1.5 * w + 2.0 * l) {  // right edge, back to front
      px = -l / 2.0 + (s - 1.5 * w - l);
      py = -w / 2.0;
    } else {  // front edge, lower half
      px = l / 2.0;
      py = -w / 2.0 + (s - 1.5 * w - 2.0 * l);
    }
    const double angle = std::atan2(py, px);
    if (angle < config.angle_min() || angle > -config.angle_min()) {
      continue;  // behind the scanner's FOV
    }
    idx.push_back(config.nearest_beam(angle));
  }
  std::sort(idx.begin(), idx.end());
  idx.erase(std::unique(idx.begin(), idx.end()), idx.end());
  return idx;
}

std::vector<double> layout_angles(const LidarConfig& config,
                                  const std::vector<int>& indices) {
  std::vector<double> angles;
  angles.reserve(indices.size());
  for (int i : indices) angles.push_back(config.beam_angle(i));
  return angles;
}

}  // namespace srl
