#pragma once

/// \file scanline_layout.hpp
/// \brief Beam-subset selection for the particle filter.
///
/// Evaluating all 1081 beams per particle is wasteful; both the MIT and TUM
/// filters score a subset. Two strategies:
///
///  - `uniform_layout`: every k-th beam — equal angular spacing.
///  - `boxed_layout` (TUM, adopted by SynPF): race tracks are corridors, so
///    beams are chosen such that their intersections with a virtual
///    corridor-shaped box around the car are *uniformly spaced along the box
///    perimeter*. With an elongated box (aspect > 1) this concentrates beams
///    near the heading axis, where they see far down the track and carry the
///    most longitudinal information — the paper's "more information with a
///    constant number of scanlines".

#include <vector>

#include "sensor/lidar.hpp"

namespace srl {

/// Indices (sorted, unique) of `count` beams equally spaced across the FOV.
std::vector<int> uniform_layout(const LidarConfig& config, int count);

/// Boxed layout: `aspect` = box length / box width (length along heading).
/// `count` target beams; the result may be slightly smaller after removing
/// duplicates (several box points can snap to one beam at coarse angular
/// resolution) and beams outside the FOV.
std::vector<int> boxed_layout(const LidarConfig& config, int count,
                              double aspect = 3.0);

/// Angles (sensor frame) for a set of beam indices.
std::vector<double> layout_angles(const LidarConfig& config,
                                  const std::vector<int>& indices);

}  // namespace srl
