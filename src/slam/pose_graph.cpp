#include "slam/pose_graph.hpp"

#include <array>
#include <cmath>

#include "common/angles.hpp"
#include "common/contracts.hpp"
#include "slam/linalg.hpp"

namespace srl {
namespace {

/// Residual of a relative constraint: e = t2v(rel^-1 * (Ti^-1 * Tj)).
std::array<double, 3> relative_residual(const Pose2& ti, const Pose2& tj,
                                        const Pose2& rel) {
  const Pose2 delta = ti.inverse() * tj;
  const Pose2 err = rel.inverse() * delta;
  return {err.x, err.y, normalize_angle(err.theta)};
}

std::array<double, 3> prior_residual(const Pose2& tj, const Pose2& abs) {
  return {tj.x - abs.x, tj.y - abs.y, angle_diff(tj.theta, abs.theta)};
}

}  // namespace

int PoseGraph2D::add_node(const Pose2& initial) {
  nodes_.push_back(initial.normalized());
  return static_cast<int>(nodes_.size()) - 1;
}

void PoseGraph2D::add_relative(int i, int j, const Pose2& rel, double wt,
                               double wr) {
  SYNPF_EXPECTS_MSG(i >= 0 && i < num_nodes() && j >= 0 && j < num_nodes(),
                    "relative constraint references unknown nodes");
  // The per-constraint information matrix is diag(wt, wt, wr); it is SPD
  // exactly when both weights are finite and strictly positive. Zero or
  // negative weights silently de-rank the normal equations.
  SYNPF_EXPECTS_MSG(std::isfinite(wt) && wt > 0.0 && std::isfinite(wr) &&
                        wr > 0.0,
                    "information matrix must be SPD (wt > 0, wr > 0)");
  SYNPF_EXPECTS_MSG(finite(rel), "relative measurement must be finite");
  relatives_.emplace_back(i, j, rel.normalized(), wt, wr);
}

void PoseGraph2D::add_prior(int j, const Pose2& abs, double wt, double wr) {
  SYNPF_EXPECTS_MSG(j >= 0 && j < num_nodes(),
                    "prior constraint references an unknown node");
  SYNPF_EXPECTS_MSG(std::isfinite(wt) && wt > 0.0 && std::isfinite(wr) &&
                        wr > 0.0,
                    "information matrix must be SPD (wt > 0, wr > 0)");
  SYNPF_EXPECTS_MSG(finite(abs), "prior measurement must be finite");
  priors_.emplace_back(j, abs.normalized(), wt, wr);
}

double PoseGraph2D::cost() const {
  double c = 0.0;
  for (const Relative& r : relatives_) {
    const auto e = relative_residual(nodes_[static_cast<std::size_t>(r.i)],
                                     nodes_[static_cast<std::size_t>(r.j)],
                                     r.rel);
    c += r.wt * (e[0] * e[0] + e[1] * e[1]) + r.wr * e[2] * e[2];
  }
  for (const Prior& p : priors_) {
    const auto e = prior_residual(nodes_[static_cast<std::size_t>(p.j)], p.abs);
    c += p.wt * (e[0] * e[0] + e[1] * e[1]) + p.wr * e[2] * e[2];
  }
  return c;
}

PoseGraphStats PoseGraph2D::optimize(int max_iterations) {
  PoseGraphStats stats;
  stats.initial_cost = cost();
  const std::size_t n = nodes_.size();
  if (n == 0) {
    stats.final_cost = stats.initial_cost;
    stats.converged = true;
    return stats;
  }
  const std::size_t dim = 3 * n;
  constexpr double kStep = 1e-6;   // numeric differentiation step
  constexpr double kDamping = 1e-6;

  DenseMatrix h{dim, dim};
  std::vector<double> b(dim);

  for (int it = 0; it < max_iterations; ++it) {
    ++stats.iterations;
    h.set_zero();
    std::fill(b.begin(), b.end(), 0.0);

    // Accumulate one block-constraint into H and b given its residual
    // function evaluated at perturbed variables.
    const auto accumulate = [&](const std::array<int, 2>& vars,
                                auto residual_fn, double wt, double wr) {
      const auto r0 = residual_fn();
      // Numeric Jacobian: columns for each involved variable component.
      std::array<std::array<double, 3>, 6> jac{};
      int n_vars = 0;
      for (int v = 0; v < 2; ++v) {
        if (vars[static_cast<std::size_t>(v)] < 0) continue;
        const auto node = static_cast<std::size_t>(vars[static_cast<std::size_t>(v)]);
        for (int comp = 0; comp < 3; ++comp) {
          Pose2& pose = nodes_[node];
          double* field = comp == 0 ? &pose.x : (comp == 1 ? &pose.y : &pose.theta);
          const double saved = *field;
          *field = saved + kStep;
          const auto r1 = residual_fn();
          *field = saved;
          auto& col = jac[static_cast<std::size_t>(3 * v + comp)];
          for (int k = 0; k < 3; ++k) {
            double diff = r1[static_cast<std::size_t>(k)] -
                          r0[static_cast<std::size_t>(k)];
            if (k == 2) diff = normalize_angle(diff);
            col[static_cast<std::size_t>(k)] = diff / kStep;
          }
        }
        ++n_vars;
      }
      (void)n_vars;
      const double w[3] = {wt, wt, wr};
      for (int va = 0; va < 2; ++va) {
        if (vars[static_cast<std::size_t>(va)] < 0) continue;
        const std::size_t base_a =
            3 * static_cast<std::size_t>(vars[static_cast<std::size_t>(va)]);
        for (int ca = 0; ca < 3; ++ca) {
          const auto& col_a = jac[static_cast<std::size_t>(3 * va + ca)];
          double ba = 0.0;
          for (int k = 0; k < 3; ++k) {
            ba -= w[k] * col_a[static_cast<std::size_t>(k)] *
                  r0[static_cast<std::size_t>(k)];
          }
          b[base_a + static_cast<std::size_t>(ca)] += ba;
          for (int vb = 0; vb < 2; ++vb) {
            if (vars[static_cast<std::size_t>(vb)] < 0) continue;
            const std::size_t base_b =
                3 * static_cast<std::size_t>(vars[static_cast<std::size_t>(vb)]);
            for (int cb = 0; cb < 3; ++cb) {
              const auto& col_b = jac[static_cast<std::size_t>(3 * vb + cb)];
              double hv = 0.0;
              for (int k = 0; k < 3; ++k) {
                hv += w[k] * col_a[static_cast<std::size_t>(k)] *
                      col_b[static_cast<std::size_t>(k)];
              }
              h(base_a + static_cast<std::size_t>(ca),
                base_b + static_cast<std::size_t>(cb)) += hv;
            }
          }
        }
      }
    };

    for (const Relative& r : relatives_) {
      accumulate({r.i, r.j},
                 [&]() {
                   return relative_residual(
                       nodes_[static_cast<std::size_t>(r.i)],
                       nodes_[static_cast<std::size_t>(r.j)], r.rel);
                 },
                 r.wt, r.wr);
    }
    for (const Prior& p : priors_) {
      accumulate({p.j, -1},
                 [&]() {
                   return prior_residual(nodes_[static_cast<std::size_t>(p.j)],
                                         p.abs);
                 },
                 p.wt, p.wr);
    }

    for (std::size_t d = 0; d < dim; ++d) h(d, d) += kDamping;

    std::vector<double> dx = b;
    DenseMatrix h_copy = h;
    if (!cholesky_solve(h_copy, dx)) {
      // Singular system (under-constrained graph): add stronger damping once.
      h_copy = h;
      for (std::size_t d = 0; d < dim; ++d) h_copy(d, d) += 1e-3;
      dx = b;
      if (!cholesky_solve(h_copy, dx)) break;
    }

    double step_norm_sq = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      Pose2& pose = nodes_[k];
      pose.x += dx[3 * k];
      pose.y += dx[3 * k + 1];
      pose.theta = normalize_angle(pose.theta + dx[3 * k + 2]);
      step_norm_sq += dx[3 * k] * dx[3 * k] + dx[3 * k + 1] * dx[3 * k + 1] +
                      dx[3 * k + 2] * dx[3 * k + 2];
    }
    if (step_norm_sq < 1e-16) {
      stats.converged = true;
      break;
    }
  }
  stats.final_cost = cost();
  SYNPF_ENSURES_MSG(std::isfinite(stats.final_cost) && stats.final_cost >= 0.0,
                    "optimization left a non-finite cost");
  return stats;
}

}  // namespace srl
