#include "slam/scan_matching.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/angles.hpp"

namespace srl {

double score_pose(const ProbabilityGrid& grid, const Pose2& pose,
                  std::span<const Vec2> points) {
  if (points.empty()) return 0.0;
  double sum = 0.0;
  for (const Vec2& p : points) sum += grid.interpolate(pose.transform(p));
  return sum / static_cast<double>(points.size());
}

ScanMatchResult CorrelativeScanMatcher::match(
    const ProbabilityGrid& grid, const Pose2& seed,
    std::span<const Vec2> points) const {
  ScanMatchResult best;
  best.pose = seed;
  best.score = -1.0;

  const int n_ang = std::max(
      1, static_cast<int>(std::round(options_.angular_window /
                                     options_.angular_step)));
  const int n_lin = std::max(
      1,
      static_cast<int>(std::round(options_.linear_window /
                                  options_.linear_step)));

  // Rotate the point cloud once per candidate angle, then slide it across
  // the translation window (the standard CSM factorization).
  //
  // Candidates carry a tiny offset penalty so that flat score plateaus —
  // e.g. the longitudinal direction of a featureless corridor — resolve to
  // the *seed* instead of the first-visited window corner. Without it the
  // matcher acquires a systematic drift along any degenerate direction.
  constexpr double kTieBreak = 2e-3;
  double best_penalized = -1.0;
  std::vector<Vec2> rotated(points.size());
  for (int ia = -n_ang; ia <= n_ang; ++ia) {
    const double theta =
        normalize_angle(seed.theta + ia * options_.angular_step);
    const double c = std::cos(theta);
    const double s = std::sin(theta);
    for (std::size_t i = 0; i < points.size(); ++i) {
      rotated[i] = {c * points[i].x - s * points[i].y,
                    s * points[i].x + c * points[i].y};
    }
    const double ang_frac =
        static_cast<double>(ia) / std::max(n_ang, 1);
    for (int iy = -n_lin; iy <= n_lin; ++iy) {
      for (int ix = -n_lin; ix <= n_lin; ++ix) {
        const double tx = seed.x + ix * options_.linear_step;
        const double ty = seed.y + iy * options_.linear_step;
        double sum = 0.0;
        for (const Vec2& p : rotated) {
          sum += grid.interpolate({tx + p.x, ty + p.y});
        }
        const double score =
            points.empty() ? 0.0 : sum / static_cast<double>(points.size());
        const double lin_frac_sq =
            (static_cast<double>(ix) * ix + static_cast<double>(iy) * iy) /
            (static_cast<double>(n_lin) * n_lin + 1e-9);
        const double penalized =
            score - kTieBreak * (lin_frac_sq + ang_frac * ang_frac);
        if (penalized > best_penalized) {
          best_penalized = penalized;
          best.score = score;
          best.pose = Pose2{tx, ty, theta};
        }
      }
    }
  }
  best.ok = best.score >= options_.min_score;
  return best;
}

ScanMatchResult GaussNewtonMatcher::refine(const ProbabilityGrid& grid,
                                           const Pose2& anchor,
                                           const Pose2& start,
                                           std::span<const Vec2> points) const {
  Pose2 est = start;
  const Pose2& seed = anchor;
  const double res = grid.resolution();
  const double inv_n =
      points.empty() ? 0.0 : 1.0 / static_cast<double>(points.size());

  for (int it = 0; it < options_.max_iterations; ++it) {
    // Accumulate the 3x3 normal equations for residuals r_i = 1 - P(T p_i),
    // J_i = -dP/dxi, plus the quadratic anchor terms about the seed.
    double h[3][3] = {{0.0}};
    double b[3] = {0.0, 0.0, 0.0};
    const double c = std::cos(est.theta);
    const double s = std::sin(est.theta);

    for (const Vec2& p : points) {
      const Vec2 w = est.transform(p);
      const double pc = grid.interpolate(w);
      // Central-difference probability gradient at half-cell spacing.
      const double gx = (grid.interpolate({w.x + 0.5 * res, w.y}) -
                         grid.interpolate({w.x - 0.5 * res, w.y})) /
                        res;
      const double gy = (grid.interpolate({w.x, w.y + 0.5 * res}) -
                         grid.interpolate({w.x, w.y - 0.5 * res})) /
                        res;
      // d(T p)/dtheta = R'(theta) * p.
      const double dxt = -s * p.x - c * p.y;
      const double dyt = c * p.x - s * p.y;
      const double jt = gx * dxt + gy * dyt;
      const double r = 1.0 - pc;
      const double j[3] = {-gx, -gy, -jt};
      for (int a = 0; a < 3; ++a) {
        b[a] += -j[a] * r * inv_n;
        for (int bb = 0; bb < 3; ++bb) h[a][bb] += j[a] * j[bb] * inv_n;
      }
    }

    // Anchor residuals: sqrt(w) * (x - seed.x) etc. — Cartographer's
    // translation/rotation delta costs.
    const double wt = options_.translation_anchor;
    const double wr = options_.rotation_anchor;
    h[0][0] += wt;
    h[1][1] += wt;
    h[2][2] += wr;
    b[0] += -wt * (est.x - seed.x);
    b[1] += -wt * (est.y - seed.y);
    b[2] += -wr * angle_diff(est.theta, seed.theta);

    for (int a = 0; a < 3; ++a) h[a][a] += options_.damping;

    // Solve the 3x3 system by Cramer-free Gaussian elimination.
    double m[3][4] = {{h[0][0], h[0][1], h[0][2], b[0]},
                      {h[1][0], h[1][1], h[1][2], b[1]},
                      {h[2][0], h[2][1], h[2][2], b[2]}};
    bool singular = false;
    for (int col = 0; col < 3; ++col) {
      int piv = col;
      for (int r2 = col + 1; r2 < 3; ++r2) {
        if (std::abs(m[r2][col]) > std::abs(m[piv][col])) piv = r2;
      }
      if (std::abs(m[piv][col]) < 1e-12) {
        singular = true;
        break;
      }
      std::swap(m[piv], m[col]);
      for (int r2 = 0; r2 < 3; ++r2) {
        if (r2 == col) continue;
        const double f = m[r2][col] / m[col][col];
        for (int c2 = col; c2 < 4; ++c2) m[r2][c2] -= f * m[col][c2];
      }
    }
    if (singular) break;
    const double dx = m[0][3] / m[0][0];
    const double dy = m[1][3] / m[1][1];
    const double dt = m[2][3] / m[2][2];

    est.x += dx;
    est.y += dy;
    est.theta = normalize_angle(est.theta + dt);
    if (dx * dx + dy * dy + dt * dt <
        options_.converge_eps * options_.converge_eps) {
      break;
    }
  }

  ScanMatchResult out;
  out.pose = est;
  out.score = score_pose(grid, est, points);
  out.ok = true;
  return out;
}

}  // namespace srl
