#include "slam/linalg.hpp"

#include <cmath>

namespace srl {

bool cholesky_solve(DenseMatrix& a, std::vector<double>& b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) return false;

  // In-place lower Cholesky: A = L L^T.
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= a(j, k) * a(j, k);
    if (d <= 0.0 || !std::isfinite(d)) return false;
    const double ljj = std::sqrt(d);
    a(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= a(i, k) * a(j, k);
      a(i, j) = s / ljj;
    }
  }
  // Forward substitution: L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= a(i, k) * b[k];
    b[i] = s / a(i, i);
  }
  // Back substitution: L^T x = y.
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double s = b[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= a(k, i) * b[k];
    b[i] = s / a(i, i);
  }
  return true;
}

}  // namespace srl
