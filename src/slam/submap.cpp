#include "slam/submap.hpp"

#include <vector>

namespace srl {

Submap::Submap(const Pose2& pose, double resolution, double extent)
    : pose_{pose},
      grid_{static_cast<int>(extent / resolution),
            static_cast<int>(extent / resolution), resolution,
            Vec2{-extent / 2.0, -extent / 2.0}} {}

void Submap::insert(const Pose2& world_pose, std::span<const Vec2> body_hits,
                    std::span<const Vec2> body_passthrough) {
  const Pose2 local = to_local(world_pose);
  std::vector<Vec2> hits;
  hits.reserve(body_hits.size());
  for (const Vec2& p : body_hits) hits.push_back(local.transform(p));
  std::vector<Vec2> pass;
  pass.reserve(body_passthrough.size());
  for (const Vec2& p : body_passthrough) pass.push_back(local.transform(p));
  grid_.insert_scan(local, hits, pass);
  ++scan_count_;
}

}  // namespace srl
