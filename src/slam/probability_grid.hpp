#pragma once

/// \file probability_grid.hpp
/// \brief Log-odds occupancy grid used by the CartoLite SLAM stack: submaps
/// accumulate hit/miss evidence, scan matchers read smooth probabilities.
/// Also provides a likelihood-field construction from a finished occupancy
/// map (Gaussian of the distance to the nearest wall) — the smooth surface
/// the pure-localization matcher optimizes on, analogous to Cartographer's
/// interpolated grid costs.

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "gridmap/occupancy_grid.hpp"

namespace srl {

class ProbabilityGrid {
 public:
  ProbabilityGrid() = default;
  ProbabilityGrid(int width, int height, double resolution, Vec2 origin);

  /// Build a likelihood field from a finished map: cell value =
  /// p_min + (p_max - p_min) * exp(-d^2 / (2 sigma^2)) where d is the
  /// distance to the nearest occupied cell. Cells outside the mapped free
  /// space keep p_min so the matcher is repelled from unknown territory.
  static ProbabilityGrid likelihood_field(const OccupancyGrid& map,
                                          double sigma = 0.2,
                                          double p_min = 0.05,
                                          double p_max = 0.95);

  int width() const { return width_; }
  int height() const { return height_; }
  double resolution() const { return resolution_; }
  const Vec2& origin() const { return origin_; }

  bool in_bounds(int ix, int iy) const {
    return ix >= 0 && iy >= 0 && ix < width_ && iy < height_;
  }

  /// Occupancy probability of a cell as seen by the scan matchers. Never-
  /// touched cells return a LOW value (0.1, Cartographer's convention):
  /// a matcher must prefer placing scan hits on observed structure over
  /// drifting into unexplored space. Out-of-bounds returns `p_min` used at
  /// construction. Probabilities are stored directly (not as log odds) so
  /// this is a plain load — it sits in the innermost correlative loop.
  float probability(int ix, int iy) const {
    if (!in_bounds(ix, iy)) return out_of_bounds_p_;
    const float p = prob_[cell_index(ix, iy)];
    return p == kUnknownP ? kUnknownMatchP : p;
  }

  /// Matcher score for unknown cells.
  static constexpr float kUnknownMatchP = 0.1F;
  bool known(int ix, int iy) const {
    return in_bounds(ix, iy) && prob_[cell_index(ix, iy)] != kUnknownP;
  }

  /// Bilinearly interpolated probability at a world point (cell centers are
  /// the sample sites); clamps at the border.
  double interpolate(const Vec2& w) const;

  /// Evidence updates (clamped log-odds, Cartographer-style hit/miss odds).
  void update_hit(int ix, int iy);
  void update_miss(int ix, int iy);

  /// Integrate one scan taken at `sensor` (world pose): each `hit` (world
  /// point) gets a hit update and the cells on the sensor->hit segment get
  /// miss updates; `passthrough` points (max-range beams) get misses only.
  void insert_scan(const Pose2& sensor, std::span<const Vec2> hits,
                   std::span<const Vec2> passthrough);

  GridIndex world_to_grid(const Vec2& w) const {
    return {static_cast<int>(std::floor((w.x - origin_.x) / resolution_)),
            static_cast<int>(std::floor((w.y - origin_.y) / resolution_))};
  }
  Vec2 grid_to_world(int ix, int iy) const {
    return {origin_.x + (ix + 0.5) * resolution_,
            origin_.y + (iy + 0.5) * resolution_};
  }

  /// Export to the ROS-convention occupancy grid (for map saving and for
  /// building localization backends on a SLAM-produced map).
  OccupancyGrid to_occupancy(double occupied_threshold = 0.65,
                             double free_threshold = 0.35) const;

  std::size_t known_cells() const;

 private:
  /// Sentinel for never-updated cells (outside the valid (0,1) range).
  static constexpr float kUnknownP = -1.0F;

  std::size_t cell_index(int ix, int iy) const {
    return static_cast<std::size_t>(iy) * width_ + ix;
  }
  void apply_odds(int ix, int iy, float odds_factor);

  int width_{0};
  int height_{0};
  double resolution_{0.05};
  Vec2 origin_{};
  float out_of_bounds_p_{0.05F};
  std::vector<float> prob_;
};

}  // namespace srl
