#pragma once

/// \file linalg.hpp
/// \brief Minimal dense linear algebra for the SE(2) pose-graph optimizer:
/// a column-major matrix, symmetric solves via Cholesky, and a tiny vector
/// type. Pose graphs in this project stay in the hundreds of nodes, where a
/// dense normal-equation solve is simpler and fast enough.

#include <cstddef>
#include <vector>

namespace srl {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_{rows}, cols_{cols}, data_(rows * cols, 0.0) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[c * rows_ + r];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[c * rows_ + r];
  }

  void set_zero() { std::fill(data_.begin(), data_.end(), 0.0); }

 private:
  std::size_t rows_{0};
  std::size_t cols_{0};
  std::vector<double> data_;
};

/// Solve A x = b for symmetric positive-definite A via in-place Cholesky.
/// `a` is destroyed. Returns false if A is not (numerically) SPD; callers
/// should add damping and retry. b is overwritten with the solution.
bool cholesky_solve(DenseMatrix& a, std::vector<double>& b);

}  // namespace srl
