#pragma once

/// \file carto_slam.hpp
/// \brief CartoLite online SLAM (mapping mode), mirroring Cartographer's
/// architecture (Hess et al., ICRA 2016):
///
///  - local SLAM: odometry-extrapolated seed -> correlative search ->
///    anchored Gauss-Newton refinement against the active submap;
///  - submaps: two active (current + next) so consecutive submaps overlap;
///  - backend: pose graph over scan nodes and submap frames with
///    scan-to-submap constraints, odometry constraints, and loop closures
///    found by wide-window matching against finished submaps;
///  - map export: finished submaps fused into one occupancy grid.

#include <memory>
#include <vector>

#include "common/timer.hpp"
#include "common/types.hpp"
#include "motion/motion_model.hpp"
#include "sensor/lidar.hpp"
#include "slam/pose_graph.hpp"
#include "slam/scan_matching.hpp"
#include "slam/submap.hpp"

namespace srl {

struct CartoSlamOptions {
  double submap_resolution = 0.05;  ///< m
  double submap_extent = 14.0;      ///< m, local grid side
  int scans_per_submap = 50;        ///< finish threshold
  /// New node only after this much motion (Cartographer's motion filter).
  double node_min_translation = 0.15;  ///< m
  double node_min_rotation = 0.10;     ///< rad
  int points_stride = 4;               ///< scan subsampling for matching
  CorrelativeOptions csm{};
  GaussNewtonOptions gn{};
  /// Loop closure: wide-window search against finished submaps.
  double loop_search_radius = 4.0;   ///< m, candidate submap distance
  double loop_linear_window = 1.5;   ///< m
  double loop_angular_window = 0.35; ///< rad
  double loop_min_score = 0.55;
  int optimize_every_n_nodes = 30;
  /// Constraint weights (1/sigma^2-like).
  double odom_weight_t = 50.0;
  double odom_weight_r = 100.0;
  double match_weight_t = 400.0;
  double match_weight_r = 800.0;
  double loop_weight_t = 200.0;
  double loop_weight_r = 400.0;
};

class CartoSlam {
 public:
  CartoSlam(CartoSlamOptions options, LidarConfig lidar);

  /// Start at a known pose (world frame of the map being built).
  void initialize(const Pose2& pose);

  void on_odometry(const OdometryDelta& odom);
  /// Process one scan; returns the refreshed local-SLAM pose estimate.
  Pose2 on_scan(const LaserScan& scan);

  Pose2 pose() const { return pose_; }

  /// Run a final full optimization and fuse all submaps into one map.
  OccupancyGrid build_map();

  int num_nodes() const { return static_cast<int>(scan_nodes_.size()); }
  int num_submaps() const { return static_cast<int>(submaps_.size()); }
  int num_loop_closures() const { return loop_closures_; }
  const PoseGraph2D& graph() const { return graph_; }
  double mean_scan_update_ms() const { return load_.mean_ms(); }

 private:
  struct SubmapEntry {
    std::unique_ptr<Submap> submap;
    int graph_id;  ///< pose-graph variable holding the submap frame pose
  };
  struct NodeEntry {
    int graph_id;
    std::vector<Vec2> points;  ///< matched body-frame points (kept for loops)
  };

  void add_submap(const Pose2& pose);
  /// `points`: matching-resolution cloud kept on the node for loop closure;
  /// `dense_points`: full-resolution cloud used for submap insertion.
  void maybe_add_node(const Pose2& pose, std::vector<Vec2> points,
                      const std::vector<Vec2>& dense_points);
  void search_loop_closures(int node_index);
  void run_optimization();

  CartoSlamOptions options_;
  LidarConfig lidar_;

  Pose2 pose_{};                 ///< current local-SLAM estimate
  OdometryDelta pending_{};      ///< odometry since last scan
  Pose2 last_node_pose_{};
  bool has_node_{false};

  std::vector<SubmapEntry> submaps_;
  std::vector<NodeEntry> scan_nodes_;
  PoseGraph2D graph_;
  int nodes_since_optimize_{0};
  int loop_closures_{0};

  CorrelativeScanMatcher csm_;
  GaussNewtonMatcher gn_;
  LoadAccumulator load_;
};

}  // namespace srl
