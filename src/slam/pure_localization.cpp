#include "slam/pure_localization.hpp"

#include <utility>
#include <vector>

namespace srl {
namespace {

GaussNewtonOptions make_global_gn(const GaussNewtonOptions& base) {
  // The global refinement is a constraint search, not odometry tracking:
  // the anchor is nearly released so the solution can travel to the map.
  GaussNewtonOptions gn = base;
  gn.translation_anchor = 0.2;
  gn.rotation_anchor = 0.1;
  return gn;
}

}  // namespace

CartoLocalizer::CartoLocalizer(PureLocalizationOptions options,
                               std::shared_ptr<const OccupancyGrid> map,
                               LidarConfig lidar)
    : options_{options},
      lidar_{std::move(lidar)},
      field_{ProbabilityGrid::likelihood_field(*map,
                                               options.likelihood_sigma)},
      local_gn_{options.gn},
      global_gn_{make_global_gn(options.gn)},
      local_csm_{options.local_csm},
      global_csm_{options.global_csm},
      reloc_csm_{options.reloc_csm} {}

void CartoLocalizer::initialize(const Pose2& pose) {
  pose_ = pose;
  scan_counter_ = 0;
  global_fixes_ = 0;
  failed_global_ = 0;
  last_global_score_ = 0.0;
  live_ = std::make_unique<Submap>(pose, options_.submap_resolution,
                                   options_.submap_extent);
  pending_.clear();
  published_base_ = pose;
  published_accum_ = Pose2{};
  clock_ = 0.0;
}

void CartoLocalizer::on_odometry(const OdometryDelta& odom) {
  // Cartographer's pose extrapolator: odometry dead-reckons between scans
  // and supplies the twist used to deskew scan motion distortion. A
  // slipping wheel corrupts both uses.
  pose_ = (pose_ * odom.delta).normalized();
  if (odom.dt > 0.0) {
    odom_twist_ = Twist2{odom.delta.x / odom.dt, odom.delta.y / odom.dt,
                         odom.delta.theta / odom.dt};
  }
  clock_ += odom.dt;
  published_accum_ = (published_accum_ * odom.delta).normalized();
  for (PendingOutput& p : pending_) {
    p.odom_accum = (p.odom_accum * odom.delta).normalized();
  }
  // Promote corrections whose pipeline latency has elapsed.
  while (!pending_.empty() && pending_.front().effective_t <= clock_) {
    published_base_ = pending_.front().internal_pose;
    published_accum_ = pending_.front().odom_accum;
    pending_.pop_front();
  }
}

void CartoLocalizer::set_telemetry(const telemetry::Sink& sink) {
  sink_ = sink;
  if (sink.metrics != nullptr) {
    telemetry::MetricsRegistry& m = *sink.metrics;
    h_update_ = &m.histogram("carto.update_ms");
    h_local_match_ = &m.histogram("carto.local_match_ms");
    h_insert_ = &m.histogram("carto.insert_ms");
    h_global_ = &m.histogram("carto.global_ms");
    c_global_fixes_ = &m.counter("carto.global_fixes");
    c_global_failures_ = &m.counter("carto.global_failures");
    c_relocs_ = &m.counter("carto.reloc_searches");
  } else {
    h_update_ = h_local_match_ = h_insert_ = h_global_ = nullptr;
    c_global_fixes_ = c_global_failures_ = c_relocs_ = nullptr;
  }
}

Pose2 CartoLocalizer::on_scan(const LaserScan& scan) {
  telemetry::ScopedSpan span{sink_.trace, "carto.on_scan"};
  Stopwatch watch;
  const std::vector<Vec2> points =
      deskew_scan(scan, lidar_, odom_twist_, options_.points_stride);

  // Local SLAM: anchored Gauss-Newton against the live submap. The first
  // couple of scans of a fresh submap have too little evidence to match.
  if (!points.empty() && live_->scan_count() >= 2) {
    telemetry::ScopedSpan match_span{sink_.trace, "carto.local_match"};
    telemetry::StageTimer timer{h_local_match_};
    const Pose2 seed_local = live_->to_local(pose_);
    const ScanMatchResult coarse =
        local_csm_.match(live_->grid(), seed_local, points);
    const ScanMatchResult fine =
        local_gn_.refine(live_->grid(), /*anchor=*/seed_local,
                         /*start=*/coarse.ok ? coarse.pose : seed_local,
                         points);
    pose_ = live_->to_world(fine.pose).normalized();
    timer.stop();
  }

  // Insert the scan at the matched pose; roll the submap when full.
  // Insertion is dense (every beam, like Cartographer): subsampled hits
  // would leave dotted walls at range whose lattice aliases the
  // correlative search and pulls the match toward the denser region.
  const std::vector<Vec2> dense = deskew_scan(scan, lidar_, odom_twist_, 1);
  if (!dense.empty()) {
    telemetry::ScopedSpan insert_span{sink_.trace, "carto.submap_insert"};
    telemetry::StageTimer timer{h_insert_};
    live_->insert(pose_, dense, {});
    if (live_->scan_count() >= options_.scans_per_submap) {
      live_ = std::make_unique<Submap>(pose_, options_.submap_resolution,
                                       options_.submap_extent);
    }
    timer.stop();
  }

  // Backend: periodic constraint search against the frozen map.
  ++scan_counter_;
  if (scan_counter_ % options_.global_period == 0 && !points.empty()) {
    telemetry::ScopedSpan global_span{sink_.trace, "carto.global_correction"};
    telemetry::StageTimer timer{h_global_};
    global_correction(points);
    timer.stop();
  }

  // Queue this correction for publication after the pipeline latency.
  if (options_.output_latency <= 0.0) {
    published_base_ = pose_;
    published_accum_ = Pose2{};
    pending_.clear();
  } else {
    pending_.emplace_back(clock_ + options_.output_latency, pose_, Pose2{});
  }

  const double busy_s = watch.elapsed_s();
  load_.add_busy(busy_s);
  if (h_update_ != nullptr) h_update_->record(busy_s * 1e3);
  return pose();
}

void CartoLocalizer::global_correction(const std::vector<Vec2>& points) {
  ScanMatchResult coarse = global_csm_.match(field_, pose_, points);
  last_global_score_ = coarse.score;
  if (!coarse.ok) {
    if (c_global_failures_ != nullptr) c_global_failures_->add();
    // Repeatedly failing to find a constraint means the trajectory has left
    // the search window: fall back to the wide relocalization search.
    if (++failed_global_ < options_.reloc_after_failures) return;
    if (c_relocs_ != nullptr) c_relocs_->add();
    coarse = reloc_csm_.match(field_, pose_, points);
    last_global_score_ = coarse.score;
    if (!coarse.ok) return;
  }
  failed_global_ = 0;
  const ScanMatchResult fine = global_gn_.refine(field_, coarse.pose, points);

  // Rigid trajectory correction (the optimization's step change): move the
  // current pose and the live submap together so local consistency holds.
  const Pose2 correction = fine.pose * pose_.inverse();
  Pose2 corrected = (correction * pose_).normalized();
  if (options_.correction_gain < 1.0) {
    const double g = options_.correction_gain;
    corrected = Pose2{pose_.x + g * (corrected.x - pose_.x),
                      pose_.y + g * (corrected.y - pose_.y),
                      pose_.theta + g * angle_diff(corrected.theta,
                                                   pose_.theta)}
                    .normalized();
  }
  const Pose2 applied = corrected * pose_.inverse();
  live_->set_pose((applied * live_->pose()).normalized());
  pose_ = corrected;
  ++global_fixes_;
  if (c_global_fixes_ != nullptr) c_global_fixes_->add();
}

}  // namespace srl
