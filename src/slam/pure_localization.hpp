#pragma once

/// \file pure_localization.hpp
/// \brief CartoLite pure-localization mode — the Cartographer baseline of
/// Table I, mirroring how cartographer_ros localizes against a frozen map:
///
///  - **local SLAM runs in full**: every scan is matched (seed-anchored
///    Gauss-Newton, odometry-extrapolated seed) against a *live submap*
///    built from the system's own recent scans, and inserted into it;
///  - **global corrections are sparse**: only at constraint-search cadence
///    (every `global_period` scans, mimicking the pose-graph optimization
///    period) is the current scan matched against the frozen prior map, and
///    the resulting constraint snaps the trajectory and the live submap
///    rigidly back onto the map.
///
/// This two-tier structure is what makes Cartographer odometry-sensitive:
/// between global fixes the estimate rides on odometry + local matching
/// (whose submap itself drifts with the corrupted poses), so wheel slip
/// accumulates into a sawtooth error that the periodic optimization only
/// partially removes. With clean odometry the same structure is extremely
/// precise — exactly the HQ/LQ asymmetry of Table I.

#include <deque>
#include <memory>

#include "common/timer.hpp"
#include "core/localizer.hpp"
#include "slam/probability_grid.hpp"
#include "slam/scan_matching.hpp"
#include "slam/submap.hpp"

namespace srl {

struct PureLocalizationOptions {
  GaussNewtonOptions gn{};            ///< local matcher (seed-anchored)
  /// Online correlative matcher in front of the local GN (Cartographer's
  /// use_online_correlative_scan_matching, commonly enabled for racing):
  /// small window around the odometry seed, covers yaw transients that the
  /// gradient matcher's basin cannot.
  CorrelativeOptions local_csm{
      .linear_window = 0.06,
      .angular_window = 0.10,
      .linear_step = 0.03,
      .angular_step = 0.02,
      .min_score = 0.10};
  CorrelativeOptions global_csm{      ///< global constraint search window
      .linear_window = 0.35,
      .angular_window = 0.1,
      .linear_step = 0.05,
      .angular_step = 0.02,
      .min_score = 0.45};
  /// Wide relocalization search (Cartographer's loop-closure-scale window)
  /// used after `reloc_after_failures` consecutive failed constraint
  /// searches.
  CorrelativeOptions reloc_csm{
      .linear_window = 1.2,
      .angular_window = 0.25,
      .linear_step = 0.06,
      .angular_step = 0.025,
      .min_score = 0.50};
  int reloc_after_failures = 2;
  int points_stride = 7;              ///< scan subsampling for matching
  double likelihood_sigma = 0.15;     ///< m, prior-map field smoothing
  int scans_per_submap = 40;          ///< live-submap span
  /// Submap side length: must cover sensor range + travel during the
  /// submap's life (12 m + ~5 m + slack, each way), or hits beyond the
  /// border are dropped and the matcher drifts toward the mapped interior.
  double submap_extent = 36.0;        ///< m
  double submap_resolution = 0.05;    ///< m
  /// Constraint-search / optimization cadence in scans (40 Hz LiDAR:
  /// 24 scans ~ 0.6 s, Cartographer-like backend latency).
  int global_period = 24;
  /// Fraction of the global correction applied (1 = hard snap, as
  /// Cartographer's optimization step changes).
  double correction_gain = 1.0;
  /// Pose pipeline latency (s): a scan's correction becomes visible on the
  /// published pose only this long after the scan fired; until then the
  /// published pose is extrapolated with raw odometry. Models the
  /// cartographer_ros matching + TF pipeline delay that the paper's SynPF
  /// (1.25 ms updates) is designed to avoid. On clean odometry the delay is
  /// invisible; under wheel slip the controller acts on err_rate * latency
  /// of stale dead reckoning.
  double output_latency = 0.15;
};

class CartoLocalizer final : public Localizer {
 public:
  CartoLocalizer(PureLocalizationOptions options,
                 std::shared_ptr<const OccupancyGrid> map, LidarConfig lidar);

  void initialize(const Pose2& pose) override;
  void on_odometry(const OdometryDelta& odom) override;
  Pose2 on_scan(const LaserScan& scan) override;
  /// Published (latency-delayed) pose: the newest correction older than
  /// `output_latency`, dead-reckoned forward with raw odometry.
  Pose2 pose() const override {
    return (published_base_ * published_accum_).normalized();
  }
  std::string name() const override { return "Cartographer"; }
  double mean_scan_update_ms() const override { return load_.mean_ms(); }
  double total_busy_s() const override { return load_.busy_s(); }
  /// Attach metrics/tracing: per-stage histograms (carto.update_ms,
  /// carto.local_match_ms, carto.insert_ms, carto.global_ms), spans, and
  /// counters for global fixes / relocalization searches / failed
  /// constraint searches.
  void set_telemetry(const telemetry::Sink& sink) override;

  const ProbabilityGrid& field() const { return field_; }
  double last_global_score() const { return last_global_score_; }
  long global_fixes() const { return global_fixes_; }

 private:
  void global_correction(const std::vector<Vec2>& points);

  PureLocalizationOptions options_;
  LidarConfig lidar_;
  ProbabilityGrid field_;  ///< likelihood field of the frozen prior map
  GaussNewtonMatcher local_gn_;
  GaussNewtonMatcher global_gn_;
  CorrelativeScanMatcher local_csm_;
  CorrelativeScanMatcher global_csm_;
  CorrelativeScanMatcher reloc_csm_;
  int failed_global_{0};  ///< consecutive failed constraint searches

  std::unique_ptr<Submap> live_;  ///< submap under construction
  Pose2 pose_{};         ///< internal (pipeline) estimate
  Twist2 odom_twist_{};  ///< latest odometry twist, used to deskew scans
  int scan_counter_{0};

  /// Output-latency model: corrections queue until their effective time.
  struct PendingOutput {
    double effective_t;
    Pose2 internal_pose;  ///< estimate at the scan that produced it
    Pose2 odom_accum;     ///< odometry composed since that scan
  };
  std::deque<PendingOutput> pending_;
  Pose2 published_base_{};   ///< last applied correction
  Pose2 published_accum_{};  ///< odometry composed since it
  double clock_{0.0};        ///< internal time, advanced by odometry dts
  double last_global_score_{0.0};
  long global_fixes_{0};
  LoadAccumulator load_;

  telemetry::Sink sink_{};
  telemetry::Histogram* h_update_{nullptr};
  telemetry::Histogram* h_local_match_{nullptr};
  telemetry::Histogram* h_insert_{nullptr};
  telemetry::Histogram* h_global_{nullptr};
  telemetry::Counter* c_global_fixes_{nullptr};
  telemetry::Counter* c_global_failures_{nullptr};
  telemetry::Counter* c_relocs_{nullptr};
};

}  // namespace srl
