#include "slam/carto_slam.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/angles.hpp"

namespace srl {

CartoSlam::CartoSlam(CartoSlamOptions options, LidarConfig lidar)
    : options_{options},
      lidar_{std::move(lidar)},
      csm_{options_.csm},
      gn_{options_.gn} {}

void CartoSlam::initialize(const Pose2& pose) {
  pose_ = pose;
  pending_ = OdometryDelta{};
  submaps_.clear();
  scan_nodes_.clear();
  graph_ = PoseGraph2D{};
  has_node_ = false;
  nodes_since_optimize_ = 0;
  loop_closures_ = 0;
  add_submap(pose);
  // Gauge: anchor the first submap frame.
  graph_.add_prior(submaps_.front().graph_id, pose, 1e6, 1e6);
}

void CartoSlam::add_submap(const Pose2& pose) {
  SubmapEntry entry;
  entry.submap = std::make_unique<Submap>(pose, options_.submap_resolution,
                                          options_.submap_extent);
  entry.graph_id = graph_.add_node(pose);
  submaps_.push_back(std::move(entry));
}

void CartoSlam::on_odometry(const OdometryDelta& odom) {
  pending_.delta = (pending_.delta * odom.delta).normalized();
  pending_.dt += odom.dt;
  pending_.v = odom.v;
  pose_ = (pose_ * odom.delta).normalized();
}

Pose2 CartoSlam::on_scan(const LaserScan& scan) {
  Stopwatch watch;
  std::vector<Vec2> points =
      scan_to_points(scan, lidar_, options_.points_stride);

  // Match against the most mature active submap (the older of the two).
  int match_idx = -1;
  for (int i = static_cast<int>(submaps_.size()) - 1; i >= 0; --i) {
    if (!submaps_[static_cast<std::size_t>(i)].submap->finished()) {
      match_idx = i;
    }
  }
  if (match_idx >= 0 &&
      submaps_[static_cast<std::size_t>(match_idx)].submap->scan_count() > 0 &&
      !points.empty()) {
    Submap& submap = *submaps_[static_cast<std::size_t>(match_idx)].submap;
    const Pose2 seed_local = submap.to_local(pose_);
    const ScanMatchResult coarse =
        csm_.match(submap.grid(), seed_local, points);
    // Anchor at the odometry seed; start from the correlative match. Along
    // scan-degenerate directions the solution then follows dead reckoning
    // instead of matcher noise.
    const ScanMatchResult fine =
        gn_.refine(submap.grid(), /*anchor=*/seed_local,
                   /*start=*/coarse.ok ? coarse.pose : seed_local, points);
    pose_ = submap.to_world(fine.pose).normalized();
  }

  maybe_add_node(pose_, std::move(points),
                 scan_to_points(scan, lidar_, 1));
  load_.add_busy(watch.elapsed_s());
  return pose_;
}

void CartoSlam::maybe_add_node(const Pose2& pose, std::vector<Vec2> points,
                               const std::vector<Vec2>& dense_points) {
  if (has_node_) {
    const Pose2 delta = last_node_pose_.between(pose);
    const double trans = std::hypot(delta.x, delta.y);
    if (trans < options_.node_min_translation &&
        std::abs(delta.theta) < options_.node_min_rotation) {
      return;
    }
  }

  const int node_id = graph_.add_node(pose);
  NodeEntry node;
  node.graph_id = node_id;
  node.points = std::move(points);

  // Odometry constraint between consecutive nodes. The raw odometry since
  // the previous node is what `pending_` accumulated; after the scan match
  // moved pose_, the *measured* relative motion is the better odometry
  // surrogate here, weighted as odometry.
  if (!scan_nodes_.empty()) {
    const int prev = scan_nodes_.back().graph_id;
    const Pose2 rel = graph_.node_pose(prev).between(pose);
    graph_.add_relative(prev, node_id, rel, options_.odom_weight_t,
                        options_.odom_weight_r);
  }
  pending_ = OdometryDelta{};

  // Insert into all active submaps and add scan-to-submap constraints.
  // Insertion uses the dense cloud: subsampled hits leave dotted walls at
  // range whose lattice aliases the correlative matcher.
  for (SubmapEntry& entry : submaps_) {
    if (entry.submap->finished()) continue;
    entry.submap->insert(pose, dense_points, {});
    graph_.add_relative(entry.graph_id, node_id,
                        entry.submap->to_local(pose),
                        options_.match_weight_t, options_.match_weight_r);
  }

  const int node_index = static_cast<int>(scan_nodes_.size());
  scan_nodes_.push_back(std::move(node));
  last_node_pose_ = pose;
  has_node_ = true;

  // Submap lifecycle: spawn the second active submap at half fill so
  // consecutive submaps overlap; finish the oldest at the full threshold.
  std::vector<SubmapEntry*> active;
  for (SubmapEntry& e : submaps_) {
    if (!e.submap->finished()) active.push_back(&e);
  }
  if (active.size() == 1 &&
      active[0]->submap->scan_count() >= options_.scans_per_submap / 2) {
    add_submap(pose);
  } else if (!active.empty() &&
             active[0]->submap->scan_count() >= options_.scans_per_submap) {
    active[0]->submap->finish();
    search_loop_closures(node_index);
    if (active.size() < 2) add_submap(pose);
  }

  ++nodes_since_optimize_;
  if (nodes_since_optimize_ >= options_.optimize_every_n_nodes) {
    run_optimization();
  }
}

void CartoSlam::search_loop_closures(int node_index) {
  const NodeEntry& node = scan_nodes_[static_cast<std::size_t>(node_index)];
  if (node.points.empty()) return;
  const Pose2 node_pose = graph_.node_pose(node.graph_id);

  CorrelativeOptions wide = options_.csm;
  wide.linear_window = options_.loop_linear_window;
  wide.angular_window = options_.loop_angular_window;
  wide.linear_step = 2.0 * options_.submap_resolution;
  wide.angular_step = 0.02;
  wide.min_score = options_.loop_min_score;
  const CorrelativeScanMatcher wide_matcher{wide};

  for (const SubmapEntry& entry : submaps_) {
    if (!entry.submap->finished()) continue;
    const Pose2 submap_pose = entry.submap->pose();
    const double dist = std::hypot(submap_pose.x - node_pose.x,
                                   submap_pose.y - node_pose.y);
    if (dist > options_.loop_search_radius) continue;

    const Pose2 seed_local = entry.submap->to_local(node_pose);
    const ScanMatchResult coarse =
        wide_matcher.match(entry.submap->grid(), seed_local, node.points);
    if (!coarse.ok) continue;
    const ScanMatchResult fine =
        gn_.refine(entry.submap->grid(), coarse.pose, node.points);
    graph_.add_relative(entry.graph_id, node.graph_id, fine.pose,
                        options_.loop_weight_t, options_.loop_weight_r);
    ++loop_closures_;
  }
}

void CartoSlam::run_optimization() {
  if (scan_nodes_.empty()) return;
  const int last_id = scan_nodes_.back().graph_id;
  const Pose2 before = graph_.node_pose(last_id);
  graph_.optimize(5);
  // Write back submap frames.
  for (SubmapEntry& entry : submaps_) {
    entry.submap->set_pose(graph_.node_pose(entry.graph_id));
  }
  // Propagate the last node's correction to the live pose estimate.
  const Pose2 after = graph_.node_pose(last_id);
  pose_ = (after * before.inverse() * pose_).normalized();
  nodes_since_optimize_ = 0;
}

OccupancyGrid CartoSlam::build_map() {
  run_optimization();

  // Bounding box over all submap corners.
  double min_x = pose_.x;
  double max_x = pose_.x;
  double min_y = pose_.y;
  double max_y = pose_.y;
  const double half = options_.submap_extent / 2.0;
  for (const SubmapEntry& entry : submaps_) {
    const Pose2& sp = entry.submap->pose();
    const double reach = half * std::numbers::sqrt2;
    min_x = std::min(min_x, sp.x - reach);
    max_x = std::max(max_x, sp.x + reach);
    min_y = std::min(min_y, sp.y - reach);
    max_y = std::max(max_y, sp.y + reach);
  }
  const double res = options_.submap_resolution;
  const int w = static_cast<int>(std::ceil((max_x - min_x) / res));
  const int h = static_cast<int>(std::ceil((max_y - min_y) / res));
  OccupancyGrid map{w, h, res, Vec2{min_x, min_y}, OccupancyGrid::kUnknown};

  // Fuse: occupied beats free beats unknown (later submaps refine earlier).
  for (const SubmapEntry& entry : submaps_) {
    const Submap& submap = *entry.submap;
    const ProbabilityGrid& grid = submap.grid();
    for (int iy = 0; iy < grid.height(); ++iy) {
      for (int ix = 0; ix < grid.width(); ++ix) {
        if (!grid.known(ix, iy)) continue;
        const float p = grid.probability(ix, iy);
        std::int8_t value = OccupancyGrid::kUnknown;
        if (p >= 0.65F) {
          value = OccupancyGrid::kOccupied;
        } else if (p <= 0.35F) {
          value = OccupancyGrid::kFree;
        } else {
          continue;
        }
        const Vec2 world = submap.pose().transform(grid.grid_to_world(ix, iy));
        const GridIndex g = map.world_to_grid(world);
        if (!map.in_bounds(g.ix, g.iy)) continue;
        std::int8_t& cell = map.at(g.ix, g.iy);
        if (cell == OccupancyGrid::kOccupied) continue;
        cell = value;
      }
    }
  }
  return map;
}

}  // namespace srl
