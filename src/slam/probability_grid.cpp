#include "slam/probability_grid.hpp"

#include <algorithm>
#include <cmath>

#include "gridmap/distance_transform.hpp"

namespace srl {
namespace {

// Cartographer defaults: hit odds 0.55, miss odds 0.49, probability clamped.
constexpr float kHitOdds = 0.55F / 0.45F;
constexpr float kMissOdds = 0.49F / 0.51F;
constexpr float kMinP = 0.02F;
constexpr float kMaxP = 0.98F;

}  // namespace

ProbabilityGrid::ProbabilityGrid(int width, int height, double resolution,
                                 Vec2 origin)
    : width_{std::max(width, 0)},
      height_{std::max(height, 0)},
      resolution_{resolution},
      origin_{origin},
      prob_(static_cast<std::size_t>(width_) * height_, kUnknownP) {}

ProbabilityGrid ProbabilityGrid::likelihood_field(const OccupancyGrid& map,
                                                  double sigma, double p_min,
                                                  double p_max) {
  ProbabilityGrid grid{map.width(), map.height(), map.resolution(),
                       map.origin()};
  grid.out_of_bounds_p_ = static_cast<float>(p_min);
  const DistanceField df = distance_to_occupied(map);
  const double inv_two_sigma_sq = 1.0 / (2.0 * sigma * sigma);
  for (int iy = 0; iy < map.height(); ++iy) {
    for (int ix = 0; ix < map.width(); ++ix) {
      // Unknown cells outside the corridor keep p_min: the matcher should
      // never prefer placing scan hits in unobserved space.
      double p = p_min;
      if (map.at(ix, iy) != OccupancyGrid::kUnknown) {
        const double d = df.at(ix, iy);
        p = p_min + (p_max - p_min) * std::exp(-d * d * inv_two_sigma_sq);
      }
      grid.prob_[grid.cell_index(ix, iy)] = static_cast<float>(p);
    }
  }
  return grid;
}

double ProbabilityGrid::interpolate(const Vec2& w) const {
  if (width_ < 2 || height_ < 2) return probability(0, 0);
  const double gx = (w.x - origin_.x) / resolution_ - 0.5;
  const double gy = (w.y - origin_.y) / resolution_ - 0.5;
  const int x0 = static_cast<int>(std::floor(gx));
  const int y0 = static_cast<int>(std::floor(gy));
  const double tx = gx - x0;
  const double ty = gy - y0;
  const double d00 = probability(x0, y0);
  const double d10 = probability(x0 + 1, y0);
  const double d01 = probability(x0, y0 + 1);
  const double d11 = probability(x0 + 1, y0 + 1);
  const double top = d00 + tx * (d10 - d00);
  const double bot = d01 + tx * (d11 - d01);
  return top + ty * (bot - top);
}

void ProbabilityGrid::apply_odds(int ix, int iy, float odds_factor) {
  if (!in_bounds(ix, iy)) return;
  float& p = prob_[cell_index(ix, iy)];
  if (p == kUnknownP) p = 0.5F;
  const float odds = p / (1.0F - p) * odds_factor;
  p = std::clamp(odds / (1.0F + odds), kMinP, kMaxP);
}

void ProbabilityGrid::update_hit(int ix, int iy) {
  apply_odds(ix, iy, kHitOdds);
}

void ProbabilityGrid::update_miss(int ix, int iy) {
  apply_odds(ix, iy, kMissOdds);
}

void ProbabilityGrid::insert_scan(const Pose2& sensor,
                                  std::span<const Vec2> hits,
                                  std::span<const Vec2> passthrough) {
  const GridIndex s = world_to_grid({sensor.x, sensor.y});

  // Walk the cells between sensor and endpoint with a DDA in grid space.
  const auto trace_misses = [&](const Vec2& end, bool include_end) {
    const GridIndex e = world_to_grid(end);
    int x = s.ix;
    int y = s.iy;
    const int dx = std::abs(e.ix - s.ix);
    const int dy = std::abs(e.iy - s.iy);
    const int sx = s.ix < e.ix ? 1 : -1;
    const int sy = s.iy < e.iy ? 1 : -1;
    int err = dx - dy;
    while (true) {
      if (x == e.ix && y == e.iy) {
        if (include_end) update_miss(x, y);
        break;
      }
      update_miss(x, y);
      const int e2 = 2 * err;
      if (e2 > -dy) {
        err -= dy;
        x += sx;
      }
      if (e2 < dx) {
        err += dx;
        y += sy;
      }
    }
  };

  for (const Vec2& h : hits) trace_misses(h, /*include_end=*/false);
  for (const Vec2& p : passthrough) trace_misses(p, /*include_end=*/true);
  // Hits are applied after misses so a cell that is both grazed and hit in
  // one scan nets positive evidence.
  for (const Vec2& h : hits) {
    const GridIndex g = world_to_grid(h);
    update_hit(g.ix, g.iy);
  }
}

OccupancyGrid ProbabilityGrid::to_occupancy(double occupied_threshold,
                                            double free_threshold) const {
  OccupancyGrid out{width_, height_, resolution_, origin_,
                    OccupancyGrid::kUnknown};
  for (int iy = 0; iy < height_; ++iy) {
    for (int ix = 0; ix < width_; ++ix) {
      if (!known(ix, iy)) continue;
      const float p = probability(ix, iy);
      if (p >= occupied_threshold) {
        out.at(ix, iy) = OccupancyGrid::kOccupied;
      } else if (p <= free_threshold) {
        out.at(ix, iy) = OccupancyGrid::kFree;
      }
    }
  }
  return out;
}

std::size_t ProbabilityGrid::known_cells() const {
  return static_cast<std::size_t>(
      std::count_if(prob_.begin(), prob_.end(),
                    [](float p) { return p != kUnknownP; }));
}

}  // namespace srl
