#pragma once

/// \file pose_graph.hpp
/// \brief Sparse nonlinear least-squares over SE(2) poses — the global
/// optimization ("SPA") behind the CartoLite SLAM backend and the sliding
/// window of the pure-localization mode.
///
/// Variables are world poses (scan nodes and submap frames alike).
/// Constraints:
///  - relative: T_i^{-1} T_j should equal a measured relative pose
///    (odometry between consecutive nodes, scan-to-submap matches,
///    loop closures);
///  - prior: T_j should equal an absolute pose (gauge fixing, map-anchored
///    scan matches in pure localization).
///
/// Solved by damped Gauss-Newton on the dense normal equations; Jacobians
/// are computed numerically (graphs here are hundreds of poses, where the
/// simplicity beats hand-derived sparsity).

#include <vector>

#include "common/types.hpp"

namespace srl {

struct PoseGraphStats {
  int iterations{0};
  double initial_cost{0.0};
  double final_cost{0.0};
  bool converged{false};
};

class PoseGraph2D {
 public:
  /// Add a variable; returns its id.
  int add_node(const Pose2& initial);

  /// Relative constraint: measured T_i^{-1} T_j = `rel`, with translation
  /// weight `wt` (1/sigma^2-like) and rotation weight `wr`.
  void add_relative(int i, int j, const Pose2& rel, double wt, double wr);

  /// Absolute prior on node j.
  void add_prior(int j, const Pose2& abs, double wt, double wr);

  /// Damped Gauss-Newton. Returns optimization statistics.
  PoseGraphStats optimize(int max_iterations = 10);

  const Pose2& node_pose(int i) const {
    return nodes_[static_cast<std::size_t>(i)];
  }
  void set_node_pose(int i, const Pose2& p) {
    nodes_[static_cast<std::size_t>(i)] = p;
  }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  std::size_t num_constraints() const {
    return relatives_.size() + priors_.size();
  }

  /// Total weighted squared error at the current estimate.
  double cost() const;

 private:
  struct Relative {
    int i;
    int j;
    Pose2 rel;
    double wt;
    double wr;
  };
  struct Prior {
    int j;
    Pose2 abs;
    double wt;
    double wr;
  };

  std::vector<Pose2> nodes_;
  std::vector<Relative> relatives_;
  std::vector<Prior> priors_;
};

}  // namespace srl
