#pragma once

/// \file submap.hpp
/// \brief Cartographer-style submap: a probability grid in its own local
/// frame, anchored to the world by a rigid `pose` that the pose graph may
/// later revise. Scans are matched and inserted in local coordinates, so
/// optimizing a submap's pose moves all its content rigidly without
/// re-rendering.

#include <memory>
#include <span>

#include "common/types.hpp"
#include "slam/probability_grid.hpp"

namespace srl {

class Submap {
 public:
  /// `pose`: world pose of the submap frame (initialized from the first
  /// scan's estimated pose). `extent`: side length in meters of the square
  /// local grid, centered on the frame origin.
  Submap(const Pose2& pose, double resolution, double extent);

  /// Insert one scan: `body_hits` / `body_passthrough` are scan points in
  /// the *body* frame; `world_pose` is the body's world pose at scan time.
  void insert(const Pose2& world_pose, std::span<const Vec2> body_hits,
              std::span<const Vec2> body_passthrough);

  const ProbabilityGrid& grid() const { return grid_; }
  const Pose2& pose() const { return pose_; }
  void set_pose(const Pose2& pose) { pose_ = pose; }

  /// World -> submap-local transform for a pose.
  Pose2 to_local(const Pose2& world) const { return pose_.inverse() * world; }
  Pose2 to_world(const Pose2& local) const { return pose_ * local; }

  int scan_count() const { return scan_count_; }
  bool finished() const { return finished_; }
  void finish() { finished_ = true; }

 private:
  Pose2 pose_;
  ProbabilityGrid grid_;
  int scan_count_{0};
  bool finished_{false};
};

}  // namespace srl
