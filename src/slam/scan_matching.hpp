#pragma once

/// \file scan_matching.hpp
/// \brief The two-stage scan matcher of the CartoLite stack, mirroring
/// Cartographer's local SLAM:
///
///  1. `CorrelativeScanMatcher` — brute-force search over a small
///     (x, y, theta) window around the odometry seed (Olson 2009 /
///     Cartographer's RealTimeCorrelativeScanMatcher). Robust to moderate
///     seed error but limited to its window: when odometry degrades faster
///     than the window, the match is lost — this is the failure mode the
///     paper observes on slippery tires.
///
///  2. `GaussNewtonMatcher` — sub-cell refinement maximizing the smoothed
///     map probability at each scan point, with quadratic anchor terms that
///     penalize deviating from the seed (Cartographer's
///     translation/rotation_delta_cost_weight). The anchor is precisely the
///     mechanism that couples the final estimate to odometry quality.

#include <span>

#include "common/types.hpp"
#include "slam/probability_grid.hpp"

namespace srl {

struct ScanMatchResult {
  Pose2 pose;
  double score{0.0};  ///< mean scan-point probability at `pose`, in [0, 1]
  bool ok{false};     ///< whether the score cleared the matcher's threshold
};

struct CorrelativeOptions {
  double linear_window = 0.12;    ///< m, +/- search extent in x and y
  double angular_window = 0.05;   ///< rad, +/- search extent in theta
  double linear_step = 0.03;      ///< m
  double angular_step = 0.0125;   ///< rad
  double min_score = 0.25;        ///< matches below this report ok = false
};

class CorrelativeScanMatcher {
 public:
  explicit CorrelativeScanMatcher(CorrelativeOptions options = {})
      : options_{options} {}

  /// Exhaustive window search around `seed`. `points` are scan returns in
  /// the body frame. Returns the best-scoring pose in the window.
  ScanMatchResult match(const ProbabilityGrid& grid, const Pose2& seed,
                        std::span<const Vec2> points) const;

  const CorrelativeOptions& options() const { return options_; }

 private:
  CorrelativeOptions options_;
};

struct GaussNewtonOptions {
  int max_iterations = 12;
  /// Anchor weights pulling the solution toward the (odometry) seed —
  /// Cartographer's translation/rotation_delta_cost_weight. High values
  /// make the matcher superbly stable on clean odometry and drag it along
  /// with wheel slip: the central trade-off of Table I.
  double translation_anchor = 100.0; ///< weight pulling x,y toward the seed
  double rotation_anchor = 40.0;    ///< weight pulling theta toward the seed
  double damping = 1e-4;            ///< Levenberg damping added to H
  double converge_eps = 1e-5;       ///< stop when the update norm drops below
};

class GaussNewtonMatcher {
 public:
  explicit GaussNewtonMatcher(GaussNewtonOptions options = {})
      : options_{options} {}

  /// Refine by maximizing sum_i P(T(p_i)) - anchors, where P is the
  /// bilinearly interpolated grid probability. The anchor terms keep the
  /// solution near `anchor`, reproducing Cartographer's odometry trust.
  ScanMatchResult refine(const ProbabilityGrid& grid, const Pose2& anchor,
                         std::span<const Vec2> points) const {
    return refine(grid, anchor, anchor, points);
  }

  /// As above, but start the iteration from `start` (e.g. a correlative
  /// match) while still anchoring the cost at `anchor` (the odometry seed).
  /// Along directions the scan does not constrain — the longitudinal axis
  /// of a featureless corridor — the anchor dominates and the solution
  /// returns to dead reckoning instead of following matcher noise.
  ScanMatchResult refine(const ProbabilityGrid& grid, const Pose2& anchor,
                         const Pose2& start,
                         std::span<const Vec2> points) const;

  const GaussNewtonOptions& options() const { return options_; }

 private:
  GaussNewtonOptions options_;
};

/// Mean interpolated probability of `points` (body frame) transformed by
/// `pose` — the common scoring function of both matchers.
double score_pose(const ProbabilityGrid& grid, const Pose2& pose,
                  std::span<const Vec2> points);

}  // namespace srl
