#pragma once

/// \file raceline_optimizer.hpp
/// \brief Minimum-curvature race line — the "ideal race line" the paper's
/// lateral-error metric is defined against.
///
/// The optimizer shifts every centerline point along its normal within the
/// corridor (|offset| <= half_width - margin) to minimize
///
///     sum_i kappa_i^2 + lambda * sum_i (o_i - o_{i+1})^2
///
/// i.e. squared discrete curvature plus an offset-smoothness regularizer,
/// by coordinate descent with a shrinking step. This is the standard
/// minimum-curvature heuristic of F1TENTH race stacks (cf. the TUM global
/// race trajectory optimizer) in a dependency-free form: corners get cut
/// to the inside, straights stay centered, and the resulting line supports
/// visibly higher profile speeds through every corner.

#include <vector>

#include "common/types.hpp"
#include "track/raceline.hpp"

namespace srl {

struct RacelineOptimizerParams {
  double margin = 0.25;        ///< m kept clear of each wall
  double smoothness = 0.08;    ///< offset-smoothness weight (lambda)
  int iterations = 60;         ///< coordinate-descent sweeps
  double initial_step = 0.08;  ///< m, first offset probe
  double min_step = 0.005;     ///< m, convergence floor
};

struct RacelineOptimizerResult {
  std::vector<Vec2> line;      ///< optimized closed line
  double initial_cost{0.0};
  double final_cost{0.0};
  double max_abs_curvature{0.0};
  int sweeps{0};
};

/// Optimize a closed centerline within a corridor of `half_width`.
/// The input must be approximately uniformly sampled (as produced by
/// TrackGenerator); the output has the same point count and orientation.
RacelineOptimizerResult optimize_raceline(
    const std::vector<Vec2>& centerline, double half_width,
    const RacelineOptimizerParams& params = {});

}  // namespace srl
