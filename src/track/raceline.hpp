#pragma once

/// \file raceline.hpp
/// \brief Arc-length parametrized closed race line with Frenet projection.
/// The Table-I "lateral error" metric is the distance between the car's
/// true position and this line; the pure-pursuit controller tracks it using
/// the *estimated* pose, which is how localization quality turns into
/// driving quality.

#include <vector>

#include "common/types.hpp"

namespace srl {

class Raceline {
 public:
  /// `points`: closed polyline (last connects to first), ordered in the
  /// direction of travel. Requires at least 3 points.
  explicit Raceline(std::vector<Vec2> points);

  double length() const { return length_; }
  std::size_t size() const { return points_.size(); }
  const std::vector<Vec2>& points() const { return points_; }

  /// Wrap an arc-length coordinate into [0, length).
  double wrap(double s) const;

  /// Position / tangent heading / signed curvature at arc length s.
  Vec2 position(double s) const;
  double heading(double s) const;
  double curvature(double s) const;

  /// Largest |curvature| over the line's vertices — the track-difficulty
  /// scalar the frontier artifact stamps per sampled circuit (a tight
  /// hairpin and a sweeping oval at the same corridor width are very
  /// different localization problems).
  double max_abs_curvature() const;

  struct Projection {
    double s{0.0};        ///< arc length of the closest point
    double lateral{0.0};  ///< signed offset: positive = left of travel
    Vec2 closest{};       ///< closest point on the line
  };

  /// Closest point on the line to `p` (exact over all segments, O(n)).
  Projection project(const Vec2& p) const;

  /// Signed arc-length progress from `s_from` to `s_to` along the direction
  /// of travel, in (-length/2, length/2].
  double progress(double s_from, double s_to) const;

 private:
  std::vector<Vec2> points_;
  std::vector<double> cum_s_;      ///< cumulative arc length at each vertex
  std::vector<double> curvature_;  ///< per-vertex discrete curvature
  double length_{0.0};
};

/// Detects start/finish crossings from a stream of arc-length samples and
/// accumulates lap times. The line is at s = 0; the first crossing arms the
/// timer (out-lap discarded), each subsequent crossing closes a lap.
class LapTimer {
 public:
  explicit LapTimer(double track_length) : length_{track_length} {}

  /// Feed the current arc-length position and time. Returns true if a lap
  /// was completed by this update.
  bool update(double s, double t);

  const std::vector<double>& lap_times() const { return laps_; }
  int laps() const { return static_cast<int>(laps_.size()); }
  bool armed() const { return armed_; }

 private:
  double length_;
  bool has_prev_{false};
  bool armed_{false};
  double prev_s_{0.0};
  double start_t_{0.0};
  std::vector<double> laps_;
};

}  // namespace srl
