#include "track/raceline.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "common/angles.hpp"
#include "common/polyline.hpp"

namespace srl {

Raceline::Raceline(std::vector<Vec2> points) : points_{std::move(points)} {
  if (points_.size() < 3) {
    throw std::invalid_argument{"Raceline needs at least 3 points"};
  }
  cum_s_.resize(points_.size() + 1);
  cum_s_[0] = 0.0;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const Vec2& a = points_[i];
    const Vec2& b = points_[(i + 1) % points_.size()];
    cum_s_[i + 1] = cum_s_[i] + distance(a, b);
  }
  length_ = cum_s_.back();
  curvature_ = curvature_closed(points_);
}

double Raceline::wrap(double s) const {
  s = std::fmod(s, length_);
  if (s < 0.0) s += length_;
  return s;
}

Vec2 Raceline::position(double s) const {
  s = wrap(s);
  const auto it = std::upper_bound(cum_s_.begin(), cum_s_.end(), s);
  const auto seg = static_cast<std::size_t>(
      std::max<std::ptrdiff_t>(0, it - cum_s_.begin() - 1));
  const std::size_t i = std::min(seg, points_.size() - 1);
  const Vec2& a = points_[i];
  const Vec2& b = points_[(i + 1) % points_.size()];
  const double seg_len = cum_s_[i + 1] - cum_s_[i];
  const double t = seg_len > 0.0 ? (s - cum_s_[i]) / seg_len : 0.0;
  return a + (b - a) * t;
}

double Raceline::heading(double s) const {
  s = wrap(s);
  const auto it = std::upper_bound(cum_s_.begin(), cum_s_.end(), s);
  const auto seg = static_cast<std::size_t>(
      std::max<std::ptrdiff_t>(0, it - cum_s_.begin() - 1));
  const std::size_t i = std::min(seg, points_.size() - 1);
  const Vec2& a = points_[i];
  const Vec2& b = points_[(i + 1) % points_.size()];
  return std::atan2(b.y - a.y, b.x - a.x);
}

double Raceline::curvature(double s) const {
  s = wrap(s);
  const auto it = std::upper_bound(cum_s_.begin(), cum_s_.end(), s);
  const auto seg = static_cast<std::size_t>(
      std::max<std::ptrdiff_t>(0, it - cum_s_.begin() - 1));
  const std::size_t i = std::min(seg, points_.size() - 1);
  return curvature_[i];
}

double Raceline::max_abs_curvature() const {
  double best = 0.0;
  for (const double k : curvature_) best = std::max(best, std::abs(k));
  return best;
}

Raceline::Projection Raceline::project(const Vec2& p) const {
  Projection best;
  double best_d2 = std::numeric_limits<double>::max();
  for (std::size_t i = 0; i < points_.size(); ++i) {
    const Vec2& a = points_[i];
    const Vec2& b = points_[(i + 1) % points_.size()];
    const Vec2 ab = b - a;
    const double len2 = ab.squared_norm();
    double t = len2 > 0.0 ? (p - a).dot(ab) / len2 : 0.0;
    t = std::clamp(t, 0.0, 1.0);
    const Vec2 q = a + ab * t;
    const double d2 = (p - q).squared_norm();
    if (d2 < best_d2) {
      best_d2 = d2;
      best.closest = q;
      best.s = wrap(cum_s_[i] + t * std::sqrt(len2));
      // Signed lateral: positive when p is left of the travel direction.
      best.lateral = ab.normalized().cross(p - q) >= 0.0 ? std::sqrt(d2)
                                                         : -std::sqrt(d2);
    }
  }
  return best;
}

double Raceline::progress(double s_from, double s_to) const {
  double d = wrap(s_to) - wrap(s_from);
  if (d > length_ / 2.0) d -= length_;
  if (d <= -length_ / 2.0) d += length_;
  return d;
}

bool LapTimer::update(double s, double t) {
  bool completed = false;
  if (has_prev_) {
    // Forward crossing of s = 0: previous sample near the end of the lap,
    // current sample near the start.
    const bool crossed = prev_s_ > 0.75 * length_ && s < 0.25 * length_;
    if (crossed) {
      if (armed_) {
        laps_.push_back(t - start_t_);
        completed = true;
      }
      armed_ = true;
      start_t_ = t;
    }
  }
  prev_s_ = s;
  has_prev_ = true;
  return completed;
}

}  // namespace srl
