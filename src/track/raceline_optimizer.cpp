#include "track/raceline_optimizer.hpp"

#include <algorithm>
#include <cmath>

#include "common/angles.hpp"
#include "common/polyline.hpp"

namespace srl {
namespace {

/// Squared circumscribed-circle curvature at vertex b of (a, b, c).
double curvature_sq(const Vec2& a, const Vec2& b, const Vec2& c) {
  const Vec2 ab = b - a;
  const Vec2 bc = c - b;
  const Vec2 ac = c - a;
  const double cross = ab.cross(bc);
  const double denom = ab.norm() * bc.norm() * ac.norm();
  if (denom < 1e-12) return 0.0;
  const double k = 2.0 * cross / denom;
  return k * k;
}

}  // namespace

RacelineOptimizerResult optimize_raceline(
    const std::vector<Vec2>& centerline, double half_width,
    const RacelineOptimizerParams& params) {
  RacelineOptimizerResult result;
  const std::size_t n = centerline.size();
  if (n < 8) {
    result.line = centerline;
    return result;
  }

  // Outward normals of the centerline (left of travel for a CCW line).
  std::vector<Vec2> normals(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2& prev = centerline[(i + n - 1) % n];
    const Vec2& next = centerline[(i + 1) % n];
    normals[i] = (next - prev).normalized().perp();
  }

  const double bound = std::max(0.0, half_width - params.margin);
  std::vector<double> offsets(n, 0.0);

  const auto point = [&](std::size_t i) {
    return centerline[i] + normals[i] * offsets[i];
  };
  const auto cost_at = [&](std::size_t i) {
    double c = curvature_sq(point((i + n - 1) % n), point(i),
                            point((i + 1) % n));
    const double d = offsets[i] - offsets[(i + 1) % n];
    return c + params.smoothness * d * d;
  };
  const auto total_cost = [&]() {
    double c = 0.0;
    for (std::size_t i = 0; i < n; ++i) c += cost_at(i);
    return c;
  };

  result.initial_cost = total_cost();

  // Moving a single vertex between ~0.1 m-spaced neighbours only ever
  // creates a kink, so descent proceeds with smooth raised-cosine *bumps*
  // spanning 2w+1 vertices: the whole window shifts laterally together
  // and the curvature change is governed by the bump's own (gentle)
  // second derivative.
  const int w = std::clamp(static_cast<int>(n) / 16, 4, 16);
  std::vector<double> bump(static_cast<std::size_t>(2 * w + 1));
  for (int d = -w; d <= w; ++d) {
    bump[static_cast<std::size_t>(d + w)] =
        0.5 * (1.0 + std::cos(kPi * d / (w + 1)));
  }
  // Cost of the region a bump at center i can affect.
  const auto region_cost = [&](std::size_t i) {
    double c = 0.0;
    for (int d = -w - 2; d <= w + 2; ++d) {
      c += cost_at((i + n + static_cast<std::size_t>(d + static_cast<int>(n)))
                   % n);
    }
    return c;
  };
  const auto apply_bump = [&](std::size_t i, double amount) {
    for (int d = -w; d <= w; ++d) {
      const std::size_t j =
          (i + n + static_cast<std::size_t>(d + static_cast<int>(n))) % n;
      offsets[j] = std::clamp(
          offsets[j] + amount * bump[static_cast<std::size_t>(d + w)],
          -bound, bound);
    }
  };

  double step = params.initial_step;
  for (int sweep = 0; sweep < params.iterations; ++sweep) {
    ++result.sweeps;
    bool improved = false;
    for (std::size_t i = 0; i < n; i += static_cast<std::size_t>(
                                        std::max(w / 2, 1))) {
      const double before = region_cost(i);
      const std::vector<double> saved = offsets;
      double best = before;
      std::vector<double> best_offsets = saved;
      for (const double amount : {step, -step}) {
        apply_bump(i, amount);
        const double after = region_cost(i);
        if (after < best - 1e-12) {
          best = after;
          best_offsets = offsets;
        }
        offsets = saved;
      }
      if (best < before - 1e-12) {
        offsets = std::move(best_offsets);
        improved = true;
      }
    }
    if (!improved) {
      step *= 0.5;
      if (step < params.min_step) break;
    }
  }

  result.final_cost = total_cost();
  result.line.reserve(n);
  for (std::size_t i = 0; i < n; ++i) result.line.push_back(point(i));
  // Re-space points uniformly (offsets stretch segment lengths unevenly).
  result.line = resample_closed(
      result.line,
      polyline_length(result.line, true) / static_cast<double>(n));
  for (const double k : curvature_closed(result.line)) {
    result.max_abs_curvature = std::max(result.max_abs_curvature,
                                        std::abs(k));
  }
  return result;
}

}  // namespace srl
