#pragma once

/// \file speed_profile.hpp
/// \brief Curvature-limited speed profile over a race line: the "speed
/// scaling" of the paper's experiment. The same profile is used in both
/// grip regimes (the paper completes both settings "at the same speed
/// scaling"), so the slippery runs are deliberately over-driven — which is
/// what produces the slip.

#include <vector>

#include "track/raceline.hpp"

namespace srl {

struct SpeedProfileParams {
  /// Designed for the nominal tires (mu 0.76 -> 7.45 m/s^2 available):
  /// racing uses nearly all of it, so the slippery setting (5.4 m/s^2) is
  /// over-driven by design — the paper keeps "the same speed scaling".
  double a_lat_budget = 7.0;   ///< m/s^2, design lateral acceleration
  double a_long_accel = 5.5;   ///< m/s^2, forward accel limit in the profile
  double a_long_brake = 6.5;   ///< m/s^2, braking limit in the profile
  double v_max = 7.6;          ///< m/s, paper's top tested speed
  double v_min = 1.5;          ///< m/s, floor in tight corners
  double ds = 0.1;             ///< m, sampling step along the line
  double scale = 1.0;          ///< global speed scaling factor
};

/// Precomputes v(s): curvature cap sqrt(a_lat / |kappa|), then a
/// forward/backward pass bounding longitudinal accel / braking (the
/// standard two-pass velocity-profile algorithm).
class SpeedProfile {
 public:
  SpeedProfile(const Raceline& line, SpeedProfileParams params = {});

  double speed(double s) const;
  const SpeedProfileParams& params() const { return params_; }
  double min_speed() const;
  double max_speed() const;

 private:
  SpeedProfileParams params_;
  double length_;
  double ds_;
  std::vector<double> v_;
};

}  // namespace srl
