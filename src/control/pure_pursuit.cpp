#include "control/pure_pursuit.hpp"

#include <algorithm>
#include <cmath>

#include "common/angles.hpp"

namespace srl {

DriveCommand PurePursuit::control(const Pose2& believed_pose,
                                  double believed_speed, const Raceline& line,
                                  const SpeedProfile& profile) const {
  const Raceline::Projection proj =
      line.project({believed_pose.x, believed_pose.y});

  // Speed-scaled lookahead point along the race line.
  const double lookahead =
      std::min(params_.lookahead_max,
               params_.lookahead_base +
                   params_.lookahead_gain * std::max(believed_speed, 0.0));
  const Vec2 target = line.position(proj.s + lookahead);

  // Pure-pursuit law: curvature through the target point in the body frame.
  const Vec2 local = believed_pose.inverse_transform(target);
  const double d2 = local.squared_norm();
  double kappa = 0.0;
  if (d2 > 1e-6) kappa = 2.0 * local.y / d2;
  const double steer = curvature_to_steer(ackermann_, kappa);

  // Speed from the profile slightly ahead of the car.
  const double preview_s =
      proj.s + std::max(believed_speed, 1.0) * params_.speed_preview;
  const double speed = profile.speed(preview_s);

  return DriveCommand{speed, steer};
}

}  // namespace srl
