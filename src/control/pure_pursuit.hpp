#pragma once

/// \file pure_pursuit.hpp
/// \brief Pure-pursuit path tracker — the racing controller of the
/// experiment harness. It is driven by the *estimated* pose from a
/// localizer, so localization error translates directly into tracking
/// error, slower laps, and (in the limit) wall contact: the closed-loop
/// coupling that makes Table I a racing benchmark rather than a pose-RMSE
/// table.

#include "control/speed_profile.hpp"
#include "motion/ackermann.hpp"
#include "track/raceline.hpp"
#include "vehicle/vehicle_sim.hpp"

namespace srl {

struct PurePursuitParams {
  double lookahead_base = 0.7;   ///< m
  double lookahead_gain = 0.22;  ///< s — lookahead grows with speed
  double lookahead_max = 2.8;    ///< m
  double speed_preview = 0.45;   ///< s of preview for the speed command
};

class PurePursuit {
 public:
  PurePursuit(PurePursuitParams params, AckermannParams ackermann)
      : params_{params}, ackermann_{ackermann} {}

  /// Compute steering/speed from the believed pose and speed. `line` is the
  /// race line, `profile` its speed profile.
  DriveCommand control(const Pose2& believed_pose, double believed_speed,
                       const Raceline& line, const SpeedProfile& profile) const;

  const PurePursuitParams& params() const { return params_; }

 private:
  PurePursuitParams params_;
  AckermannParams ackermann_;
};

}  // namespace srl
