#include "control/speed_profile.hpp"

#include <algorithm>
#include <cmath>

namespace srl {

SpeedProfile::SpeedProfile(const Raceline& line, SpeedProfileParams params)
    : params_{params}, length_{line.length()}, ds_{params.ds} {
  const auto n = static_cast<std::size_t>(
      std::max(4.0, std::ceil(length_ / ds_)));
  ds_ = length_ / static_cast<double>(n);
  v_.resize(n);

  // Pass 0: curvature cap. Curvature is smoothed over a short window so a
  // single kinked vertex doesn't spike the profile.
  for (std::size_t i = 0; i < n; ++i) {
    const double s = static_cast<double>(i) * ds_;
    double kappa = 0.0;
    constexpr int kWindow = 3;
    for (int w = -kWindow; w <= kWindow; ++w) {
      kappa = std::max(kappa, std::abs(line.curvature(s + w * ds_)));
    }
    double v = params_.v_max;
    if (kappa > 1e-6) {
      v = std::min(v, std::sqrt(params_.a_lat_budget / kappa));
    }
    v_[i] = std::max(v, params_.v_min);
  }

  // Pass 1 (two wraps): forward acceleration limit v' <= sqrt(v^2 + 2 a ds).
  for (int wrap = 0; wrap < 2; ++wrap) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t j = (i + 1) % n;
      v_[j] = std::min(
          v_[j], std::sqrt(v_[i] * v_[i] + 2.0 * params_.a_long_accel * ds_));
    }
  }
  // Pass 2 (two wraps): braking limit going backward.
  for (int wrap = 0; wrap < 2; ++wrap) {
    for (std::size_t ii = n; ii > 0; --ii) {
      const std::size_t i = ii - 1;
      const std::size_t j = (i + 1) % n;
      v_[i] = std::min(
          v_[i], std::sqrt(v_[j] * v_[j] + 2.0 * params_.a_long_brake * ds_));
    }
  }
  for (double& v : v_) v = std::max(params_.v_min, v * params_.scale);
}

double SpeedProfile::speed(double s) const {
  s = std::fmod(s, length_);
  if (s < 0.0) s += length_;
  const auto i =
      static_cast<std::size_t>(s / ds_) % v_.size();
  return v_[i];
}

double SpeedProfile::min_speed() const {
  return *std::min_element(v_.begin(), v_.end());
}

double SpeedProfile::max_speed() const {
  return *std::max_element(v_.begin(), v_.end());
}

}  // namespace srl
