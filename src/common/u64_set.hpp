#pragma once

/// \file u64_set.hpp
/// \brief `U64Set`: a deterministic insert-only set of 64-bit keys.
///
/// Replacement for `std::unordered_set<std::uint64_t>` in estimate-affecting
/// code (srl-lint rule `det-unordered`). The standard container is banned
/// there because its iteration order — and, across standard libraries, its
/// bucket geometry and growth schedule — is implementation-defined, so code
/// that ever walks one stops being bitwise reproducible across platforms.
///
/// `U64Set` closes the loophole by construction instead of by code review:
///
///  - it exposes **no iteration at all** — only `insert`, `contains` and
///    `size`, the operations whose results are order-free;
///  - hashing is the repo's pinned SplitMix64 finalizer (`splitmix64`,
///    common/rng.hpp), not `std::hash`, so probe sequences are identical on
///    every platform;
///  - open addressing with linear probing over a power-of-two table, growth
///    at 70% load — behavior is a pure function of the key sequence.
///
/// The particle filter's KLD-adaptive resample uses it to count occupied
/// (x, y, θ) histogram bins in its hot loop (DESIGN.md §13).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace srl {

class U64Set {
 public:
  /// `expected` keys are accommodated without rehashing (rounded up to the
  /// next power of two over the load limit).
  explicit U64Set(std::size_t expected = 0) {
    std::size_t cap = 16;
    while (cap * 7 / 10 < expected) cap *= 2;
    slots_.assign(cap, 0);
    used_.assign(cap, 0);
  }

  /// Insert `key`; returns true when the key was not present before.
  bool insert(std::uint64_t key) {
    if ((count_ + 1) * 10 > slots_.size() * 7) grow();
    const std::size_t i = probe(key);
    if (used_[i] != 0) return false;
    used_[i] = 1;
    slots_[i] = key;
    ++count_;
    return true;
  }

  bool contains(std::uint64_t key) const { return used_[probe(key)] != 0; }

  std::size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

 private:
  /// Slot holding `key`, or the empty slot where it would go. The table is
  /// never full (grow() keeps load under 70%), so the probe terminates.
  std::size_t probe(std::uint64_t key) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(splitmix64(key)) & mask;
    while (used_[i] != 0 && slots_[i] != key) i = (i + 1) & mask;
    return i;
  }

  void grow() {
    std::vector<std::uint64_t> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    slots_.assign(old_slots.size() * 2, 0);
    used_.assign(old_used.size() * 2, 0);
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (old_used[i] == 0) continue;
      const std::size_t j = probe(old_slots[i]);
      used_[j] = 1;
      slots_[j] = old_slots[i];
    }
  }

  std::vector<std::uint64_t> slots_;
  std::vector<std::uint8_t> used_;
  std::size_t count_ = 0;
};

}  // namespace srl
