#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/angles.hpp"

namespace srl {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> v{xs.begin(), xs.end()};
  std::sort(v.begin(), v.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double idx = clamped / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(idx));
  const auto hi = static_cast<std::size_t>(std::ceil(idx));
  const double frac = idx - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

double circular_mean(std::span<const double> angles) {
  double sx = 0.0;
  double sy = 0.0;
  for (double a : angles) {
    sx += std::cos(a);
    sy += std::sin(a);
  }
  return std::atan2(sy, sx);
}

double weighted_circular_mean(std::span<const double> angles,
                              std::span<const double> weights) {
  double sx = 0.0;
  double sy = 0.0;
  const std::size_t n = std::min(angles.size(), weights.size());
  for (std::size_t i = 0; i < n; ++i) {
    sx += weights[i] * std::cos(angles[i]);
    sy += weights[i] * std::sin(angles[i]);
  }
  return std::atan2(sy, sx);
}

double circular_stddev(std::span<const double> angles) {
  if (angles.empty()) return 0.0;
  double sx = 0.0;
  double sy = 0.0;
  for (double a : angles) {
    sx += std::cos(a);
    sy += std::sin(a);
  }
  const double n = static_cast<double>(angles.size());
  const double r = std::hypot(sx / n, sy / n);
  if (r <= 0.0) return kPi;  // fully dispersed
  if (r >= 1.0) return 0.0;
  return std::sqrt(-2.0 * std::log(r));
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, counts_(bins == 0 ? 1 : bins, 0) {}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  double t = span > 0.0 ? (x - lo_) / span : 0.0;
  t = std::clamp(t, 0.0, 1.0);
  auto i = static_cast<std::size_t>(t * static_cast<double>(counts_.size()));
  if (i >= counts_.size()) i = counts_.size() - 1;
  ++counts_[i];
  ++total_;
}

double Histogram::bin_center(std::size_t i) const {
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * w;
}

std::string Histogram::ascii(std::size_t max_width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto w = counts_[i] * max_width / peak;
    os.precision(3);
    os.setf(std::ios::fixed);
    os << bin_center(i) << " | " << std::string(w, '#') << " " << counts_[i]
       << "\n";
  }
  return os.str();
}

}  // namespace srl
