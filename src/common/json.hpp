#pragma once

/// \file json.hpp
/// \brief Minimal dependency-free JSON: an ordered document model, a stable
/// pretty-printer, and a strict recursive-descent parser.
///
/// Built for the machine-readable benchmark pipeline (BENCH_*.json and the
/// `bench_compare` CI gate), where two properties matter more than feature
/// count:
///
///  - **Stable output.** Object members serialize in insertion order and
///    numbers print with up-to-17-significant-digit round-trip formatting,
///    so identical documents produce identical bytes and diffs stay
///    readable across commits.
///  - **Strict round-trip.** `parse(dump(v))` reconstructs `v` exactly
///    (numbers bit-for-bit); malformed input yields nullopt, never a
///    partially-filled document.
///
/// Not a general-purpose JSON library: no comments, no NaN/Inf (rejected on
/// both ends — encode them out-of-band), numbers are doubles.

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace srl::json {

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() : kind_{Kind::kNull} {}
  static Value null() { return Value{}; }
  static Value boolean(bool b);
  static Value number(double d);
  static Value string(std::string s);
  static Value array();
  static Value object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed readers; the fallback is returned on kind mismatch.
  bool as_bool(bool fallback = false) const;
  double as_double(double fallback = 0.0) const;
  const std::string& as_string() const;  ///< empty string on mismatch

  // -- array --
  /// Append to an array (no-op on other kinds).
  void push_back(Value v);
  std::size_t size() const;  ///< array/object element count, else 0
  /// Array element i; nullptr out of range or not an array.
  const Value* at(std::size_t i) const;

  // -- object --
  /// Insert or overwrite member `key` (keeps first-insertion order).
  void set(const std::string& key, Value v);
  /// Member lookup; nullptr when absent or not an object.
  const Value* find(const std::string& key) const;
  /// Members in insertion order (empty for non-objects).
  const std::vector<std::pair<std::string, Value>>& members() const;

  /// Serialize. `indent` spaces per level; 0 = compact single line.
  std::string dump(int indent = 2) const;

  /// Strict parse of a complete JSON document (trailing garbage rejected).
  static std::optional<Value> parse(const std::string& text);

  /// File convenience wrappers.
  bool save(const std::string& path, int indent = 2) const;
  static std::optional<Value> load(const std::string& path);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_{false};
  double number_{0.0};
  std::string string_{};
  std::vector<Value> array_{};
  std::vector<std::pair<std::string, Value>> object_{};
};

/// Round-trip double formatting ("%.17g"-class, shortest faithful): the one
/// number format used across every benchmark JSON.
std::string format_number(double d);

// -- NDJSON (newline-delimited JSON) ----------------------------------------
// The append-only sink format of the telemetry event journal: one compact
// document per line, so a crash mid-write loses at most the last line and a
// reader can stream a journal without holding it in memory.

/// Append `v` to `path` as one compact line (file created when absent).
bool append_ndjson(const std::string& path, const Value& v);

/// Parse every non-empty line of an NDJSON file. Strict like `parse`: any
/// malformed line fails the whole load (nullopt), so a truncated tail line
/// is detected rather than silently dropped. Blank lines are permitted.
std::optional<std::vector<Value>> load_ndjson(const std::string& path);

}  // namespace srl::json
