#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace srl::json {

Value Value::boolean(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::number(double d) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}

Value Value::string(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::array() {
  Value v;
  v.kind_ = Kind::kArray;
  return v;
}

Value Value::object() {
  Value v;
  v.kind_ = Kind::kObject;
  return v;
}

bool Value::as_bool(bool fallback) const {
  return kind_ == Kind::kBool ? bool_ : fallback;
}

double Value::as_double(double fallback) const {
  return kind_ == Kind::kNumber ? number_ : fallback;
}

const std::string& Value::as_string() const {
  static const std::string kEmpty;
  return kind_ == Kind::kString ? string_ : kEmpty;
}

void Value::push_back(Value v) {
  if (kind_ == Kind::kArray) array_.push_back(std::move(v));
}

std::size_t Value::size() const {
  if (kind_ == Kind::kArray) return array_.size();
  if (kind_ == Kind::kObject) return object_.size();
  return 0;
}

const Value* Value::at(std::size_t i) const {
  if (kind_ != Kind::kArray || i >= array_.size()) return nullptr;
  return &array_[i];
}

void Value::set(const std::string& key, Value v) {
  if (kind_ != Kind::kObject) return;
  for (auto& member : object_) {
    if (member.first == key) {
      member.second = std::move(v);
      return;
    }
  }
  object_.emplace_back(key, std::move(v));
}

const Value* Value::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& member : object_) {
    if (member.first == key) return &member.second;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, Value>>& Value::members() const {
  static const std::vector<std::pair<std::string, Value>> kEmpty;
  return kind_ == Kind::kObject ? object_ : kEmpty;
}

std::string format_number(double d) {
  // Shortest representation that round-trips: try increasing precision and
  // take the first that parses back to the same bits.
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, d);
    if (std::strtod(buf, nullptr) == d) break;
  }
  return buf;
}

namespace {

void escape_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 passes through untouched
        }
    }
  }
  out += '"';
}

void append_newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * depth, ' ');
}

}  // namespace

void Value::dump_to(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      // Non-finite doubles have no JSON spelling and the strict parser
      // rejects "nan"/"inf"; degrade to null so dump() never emits a
      // document parse() refuses.
      out += std::isfinite(number_) ? format_number(number_) : "null";
      return;
    case Kind::kString:
      escape_string(string_, out);
      return;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out += ',';
        append_newline_indent(out, indent, depth + 1);
        array_[i].dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out += ',';
        append_newline_indent(out, indent, depth + 1);
        escape_string(object_[i].first, out);
        out += indent > 0 ? ": " : ":";
        object_[i].second.dump_to(out, indent, depth + 1);
      }
      append_newline_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

namespace {

/// Strict recursive-descent parser over a string view of the document.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_{text} {}

  std::optional<Value> run() {
    std::optional<Value> v = parse_value();
    if (!v.has_value()) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool match_literal(const char* lit) {
    std::size_t i = 0;
    while (lit[i] != '\0') {
      if (pos_ + i >= text_.size() || text_[pos_ + i] != lit[i]) return false;
      ++i;
    }
    pos_ += i;
    return true;
  }

  std::optional<Value> parse_value() {
    if (depth_ > kMaxDepth) return std::nullopt;
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case 'n': return match_literal("null") ? std::optional<Value>{Value::null()} : std::nullopt;
      case 't': return match_literal("true") ? std::optional<Value>{Value::boolean(true)} : std::nullopt;
      case 'f': return match_literal("false") ? std::optional<Value>{Value::boolean(false)} : std::nullopt;
      case '"': {
        std::optional<std::string> s = parse_string();
        if (!s.has_value()) return std::nullopt;
        return Value::string(std::move(*s));
      }
      case '[': return parse_array();
      case '{': return parse_object();
      default: return parse_number();
    }
  }

  std::optional<Value> parse_array() {
    ++pos_;  // '['
    ++depth_;
    Value arr = Value::array();
    skip_ws();
    if (consume(']')) {
      --depth_;
      return arr;
    }
    while (true) {
      std::optional<Value> v = parse_value();
      if (!v.has_value()) return std::nullopt;
      arr.push_back(std::move(*v));
      skip_ws();
      if (consume(']')) break;
      if (!consume(',')) return std::nullopt;
    }
    --depth_;
    return arr;
  }

  std::optional<Value> parse_object() {
    ++pos_;  // '{'
    ++depth_;
    Value obj = Value::object();
    skip_ws();
    if (consume('}')) {
      --depth_;
      return obj;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') return std::nullopt;
      std::optional<std::string> key = parse_string();
      if (!key.has_value()) return std::nullopt;
      skip_ws();
      if (!consume(':')) return std::nullopt;
      std::optional<Value> v = parse_value();
      if (!v.has_value()) return std::nullopt;
      obj.set(*key, std::move(*v));
      skip_ws();
      if (consume('}')) break;
      if (!consume(',')) return std::nullopt;
    }
    --depth_;
    return obj;
  }

  std::optional<std::string> parse_string() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) return std::nullopt;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::optional<unsigned> cp = parse_hex4();
          if (!cp.has_value()) return std::nullopt;
          unsigned code = *cp;
          if (code >= 0xD800 && code <= 0xDBFF) {  // surrogate pair
            if (!(consume('\\') && consume('u'))) return std::nullopt;
            std::optional<unsigned> low = parse_hex4();
            if (!low.has_value() || *low < 0xDC00 || *low > 0xDFFF) {
              return std::nullopt;
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (*low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return std::nullopt;  // unpaired low surrogate
          }
          append_utf8(out, code);
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<unsigned> parse_hex4() {
    if (pos_ + 4 > text_.size()) return std::nullopt;
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<unsigned>(c - 'A' + 10);
      else return std::nullopt;
    }
    return value;
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  std::optional<Value> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) ++pos_;
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return std::nullopt;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      const std::size_t frac = pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) ++pos_;
      if (pos_ == frac) return std::nullopt;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      const std::size_t exp = pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) ++pos_;
      if (pos_ == exp) return std::nullopt;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(d)) return std::nullopt;
    return Value::number(d);
  }

  static constexpr int kMaxDepth = 64;

  const std::string& text_;
  std::size_t pos_{0};
  int depth_{0};
};

}  // namespace

std::optional<Value> Value::parse(const std::string& text) {
  return Parser{text}.run();
}

bool Value::save(const std::string& path, int indent) const {
  std::ofstream out{path};
  if (!out) return false;
  out << dump(indent);
  return static_cast<bool>(out);
}

std::optional<Value> Value::load(const std::string& path) {
  std::ifstream in{path};
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

bool append_ndjson(const std::string& path, const Value& v) {
  std::ofstream out{path, std::ios::app};
  if (!out) return false;
  out << v.dump(0) << '\n';
  return static_cast<bool>(out);
}

std::optional<std::vector<Value>> load_ndjson(const std::string& path) {
  std::ifstream in{path};
  if (!in) return std::nullopt;
  std::vector<Value> docs;
  std::string line;
  while (std::getline(in, line)) {
    bool blank = true;
    for (const char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') {
        blank = false;
        break;
      }
    }
    if (blank) continue;
    std::optional<Value> v = Value::parse(line);
    if (!v.has_value()) return std::nullopt;
    docs.push_back(std::move(*v));
  }
  return docs;
}

}  // namespace srl::json
