#pragma once

/// \file simd.hpp
/// \brief Runtime SIMD dispatch and 64-byte-aligned storage for the
/// vectorized particle-filter stages.
///
/// The repo's headline guarantee is bitwise determinism, so the dispatch
/// contract here is stricter than the usual "fast path wins": every
/// vector kernel must produce *bit-identical per-lane results* to its
/// scalar reference (same operation order within a lane, no FMA
/// contraction, no reassociation). Backend selection therefore only
/// changes throughput, never output — `check_determinism` regime 9 and
/// `tests/test_simd.cpp` enforce this.
///
/// Selection order:
///   1. `force()` (test / tool seam) if set,
///   2. the `SRL_SIMD` environment variable (`scalar` | `avx2` | `auto`),
///   3. CPU capability probe (`__builtin_cpu_supports("avx2")`).
/// Requests for AVX2 on hardware without it degrade to scalar — which is
/// safe precisely because both paths emit the same bits.

#include <cstddef>
#include <new>
#include <vector>

// Vector kernels are only compiled for x86-64 GCC/Clang, where
// target("avx2") function multiversioning and the immintrin gather
// intrinsics are available. Other hosts build the scalar path only.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define SRL_SIMD_X86_AVX2 1
#endif

namespace srl::simd {

enum class Backend {
  kScalar,  ///< portable reference path; always available
  kAvx2,    ///< 4-wide double / gather path; x86-64 with AVX2 only
};

/// Human-readable backend name ("scalar" / "avx2") for logs and JSON.
const char* name(Backend backend);

/// True when the host CPU (and this build) can execute the AVX2 kernels.
bool cpu_has_avx2();

/// The backend every dispatching kernel uses right now. Resolved once
/// from `SRL_SIMD` + CPU probe on first use, unless pinned via force().
Backend active();

/// Pin the backend, overriding SRL_SIMD (clamped to CPU support at the
/// dispatch sites). Test/tool seam — call from a single thread while no
/// filter update is in flight; the setting is process-global.
void force(Backend backend);

/// Drop a force() pin and fall back to SRL_SIMD / CPU resolution.
void reset();

/// Minimal allocator pinning slab storage to 64-byte boundaries so
/// aligned vector loads/stores never straddle cache lines. Stateless;
/// all instances compare equal.
template <typename T>
struct AlignedAlloc {
  using value_type = T;
  static constexpr std::size_t kAlignment = 64;

  AlignedAlloc() noexcept = default;
  template <typename U>
  AlignedAlloc(const AlignedAlloc<U>& /*other*/) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kAlignment}));
  }
  void deallocate(T* p, std::size_t /*n*/) noexcept {
    ::operator delete(p, std::align_val_t{kAlignment});
  }

  template <typename U>
  bool operator==(const AlignedAlloc<U>& /*other*/) const noexcept {
    return true;
  }
};

/// Contiguous storage whose data() is always 64-byte aligned.
template <typename T>
using AlignedVector = std::vector<T, AlignedAlloc<T>>;

}  // namespace srl::simd
