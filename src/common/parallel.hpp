#pragma once

/// \file parallel.hpp
/// \brief Deterministic parallel execution primitives: a static-chunked
/// thread pool and fixed-order (pairwise) reductions.
///
/// The particle filter's per-particle stages (predict / raycast / weight)
/// are embarrassingly parallel, but the repo's headline guarantee — replays
/// are *bitwise* reproducible from a seed — must survive parallelization at
/// any thread count. Two rules make that possible (DESIGN.md §9):
///
///  1. **Static chunking, no work stealing.** `ThreadPool::parallel_for`
///     splits `[0, n)` into exactly `threads()` contiguous chunks with a
///     fixed chunk→lane assignment (lane 0 is the calling thread). Chunk
///     boundaries depend only on `(n, threads())`, and — crucially — every
///     per-index result must depend only on the index, never on the chunk it
///     landed in. Under that discipline the output is identical for *any*
///     lane count, including 1 (which runs the body inline with zero
///     synchronization — the exact serial path).
///  2. **Fixed-order reductions.** Floating-point addition does not
///     associate, so sums must not be accumulated per-chunk. `pairwise_reduce`
///     computes a cascade (pairwise-tree) sum whose association structure is
///     a pure function of the element count — independent of thread count
///     and scheduling. (It also happens to have O(log n) error growth vs the
///     O(n) of sequential summation.) The per-update reductions here are
///     O(n_particles) over doubles — memory-bound and tiny next to the
///     per-particle stages — so they run serially; determinism, not speed,
///     is why they exist.
///
/// The pool is intentionally minimal: persistent workers parked on a
/// condition variable, one fork/join region at a time, no task queue. That
/// is all the filter needs, and every extra feature (stealing, nested
/// regions, futures) is a determinism hazard.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

namespace srl {

/// Maximum lanes a pool will run, however many cores the host reports.
inline constexpr int kMaxThreads = 64;

/// Resolve a thread-count knob: `requested > 0` is used as-is (clamped to
/// [1, kMaxThreads]); `requested <= 0` means "hardware default" — the
/// `SRL_THREADS` environment variable when set to a positive integer,
/// otherwise std::thread::hardware_concurrency(). The env override applies
/// *only* to the default, so tests that pin explicit counts (the
/// thread-invariance suite) are immune to it while CI can sweep the whole
/// suite through 1/4/8 lanes without touching configs.
int resolve_thread_count(int requested);

/// Fork/join pool with `threads()` lanes: lane 0 is the calling thread,
/// lanes 1.. are persistent workers. With one lane no workers are spawned
/// and `parallel_for` is a plain inline loop.
class ThreadPool {
 public:
  /// `n_threads` is resolved via resolve_thread_count().
  explicit ThreadPool(int n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return n_lanes_; }

  /// Chunk body: run indices [begin, end) on `lane`. Bodies must be
  /// exception-free on worker lanes and must only write per-index state
  /// (plus lane-private scratch) — that is the determinism contract.
  using ChunkBody = std::function<void(int lane, std::size_t begin,
                                       std::size_t end)>;

  /// Split [0, n) into threads() contiguous chunks — chunk c covers
  /// [c*n/T, (c+1)*n/T) — and run chunk c on lane c, blocking until every
  /// chunk finished. Empty chunks (n < T) are skipped. Regions do not nest:
  /// a body must not call parallel_for on the same pool.
  void parallel_for(std::size_t n, const ChunkBody& body);

  /// Lower bound of lane `lane`'s chunk over [0, n) with `lanes` lanes.
  /// Exposed so tests can pin the chunk geometry.
  static std::size_t chunk_begin(std::size_t n, int lanes, int lane);

 private:
  void worker_loop(int lane);
  void run_chunk(const ChunkBody& body, std::size_t n, int lane) const;

  const int n_lanes_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t generation_{0};  ///< bumped once per parallel_for region
  int pending_{0};               ///< workers still inside the current region
  const ChunkBody* body_{nullptr};
  std::size_t n_{0};
  bool stop_{false};
};

/// Fixed-structure pairwise (cascade) reduction of get(i) for i in [0, n):
/// the association tree depends only on `n`, so the result is bitwise
/// reproducible regardless of thread count or scheduling. `get` must be a
/// pure function of the index.
template <typename Get>
double pairwise_reduce(std::size_t begin, std::size_t n, const Get& get) {
  if (n <= 8) {
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) sum += get(begin + j);
    return sum;
  }
  const std::size_t half = n / 2;
  return pairwise_reduce(begin, half, get) +
         pairwise_reduce(begin + half, n - half, get);
}

template <typename Get>
double pairwise_reduce(std::size_t n, const Get& get) {
  return pairwise_reduce(std::size_t{0}, n, get);
}

/// Deterministic sum of a contiguous array (fixed pairwise order).
inline double pairwise_sum(std::span<const double> values) {
  return pairwise_reduce(values.size(),
                         [&values](std::size_t i) { return values[i]; });
}

}  // namespace srl
