#include "common/contracts.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace srl::contracts {
namespace {

// Handler/observer registration is cold (startup, test setup) and dispatch
// is cold (violations only), so a mutex around the state is fine.
std::mutex& state_mutex() {
  static std::mutex m;
  return m;
}

struct State {
  Handler handler{abort_handler};
  Observer observer{nullptr};
  void* observer_context{nullptr};
};

State& state() {
  static State s;
  return s;
}

}  // namespace

const char* to_string(Kind kind) {
  switch (kind) {
    case Kind::kExpects:
      return "EXPECTS";
    case Kind::kEnsures:
      return "ENSURES";
    case Kind::kInvariant:
      return "INVARIANT";
  }
  return "CONTRACT";
}

std::string describe(const Violation& v) {
  std::string out = to_string(v.kind);
  out += " failed: ";
  out += v.condition;
  if (v.message != nullptr && v.message[0] != '\0') {
    out += " (";
    out += v.message;
    out += ")";
  }
  out += " at ";
  out += v.file;
  out += ":";
  out += std::to_string(v.line);
  out += " in ";
  out += v.function;
  return out;
}

Handler set_handler(Handler handler) {
  const std::lock_guard<std::mutex> lock{state_mutex()};
  Handler previous = state().handler;
  state().handler = handler != nullptr ? handler : abort_handler;
  return previous;
}

void set_observer(Observer observer, void* context) {
  const std::lock_guard<std::mutex> lock{state_mutex()};
  state().observer = observer;
  state().observer_context = context;
}

void abort_handler(const Violation& v) {
  // The process is about to die; stderr is the only channel guaranteed to
  // still work (telemetry sinks may be mid-teardown or never attached).
  // srl-lint-allow(hy-printf): last-resort diagnostic immediately before abort()
  std::fputs(describe(v).c_str(), stderr);
  std::fputc('\n', stderr);
  std::abort();
}

void throwing_handler(const Violation& v) { throw ViolationError{v}; }

void handle_violation(const Violation& v) {
  Handler handler = nullptr;
  Observer observer = nullptr;
  void* context = nullptr;
  {
    const std::lock_guard<std::mutex> lock{state_mutex()};
    handler = state().handler;
    observer = state().observer;
    context = state().observer_context;
  }
  if (observer != nullptr) observer(v, context);
  handler(v);
}

}  // namespace srl::contracts
