#pragma once

/// \file csv.hpp
/// \brief Minimal CSV writer for experiment outputs so benches can dump the
/// series behind every table/figure for external plotting.

#include <fstream>
#include <initializer_list>
#include <string>
#include <vector>

namespace srl {

/// Writes rows of mixed string/number cells to a CSV file. Values containing
/// commas or quotes are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens (truncates) `path`. `ok()` reports whether the stream is usable.
  explicit CsvWriter(const std::string& path);

  bool ok() const { return out_.good(); }

  void write_header(std::initializer_list<std::string> cols);
  void write_row(const std::vector<std::string>& cells);

  /// Convenience: write a row of doubles with full precision.
  void write_row(const std::vector<double>& cells);

  static std::string escape(const std::string& cell);

 private:
  std::ofstream out_;
};

}  // namespace srl
