#pragma once

/// \file contracts.hpp
/// \brief Runtime contract checks (preconditions, postconditions, invariants)
/// behind the `SYNPF_CHECKED` build flavor.
///
/// The paper's headline claim is *robustness*, so the reproduction's
/// credibility rests on every numerical stage being verifiably sane. These
/// macros let hot seams state their contracts — particle weights finite and
/// normalized, query poses finite, grid indices in bounds, information
/// matrices positive definite — without paying for the checks in the release
/// benchmark build:
///
///  - In a `SYNPF_CHECKED` build (CMake `-DSRL_CHECKED=ON`, the `checked`
///    preset) every contract is evaluated. A violation is forwarded to the
///    installed observer (e.g. `telemetry::ContractMonitor`, which counts it
///    in a `MetricsRegistry`) and then to the violation handler, which by
///    default prints the contract and aborts.
///  - In any other build the macros compile to nothing: the condition sits
///    in an unevaluated operand, so it is type-checked but generates no code
///    — `bench_table1` release numbers are unaffected.
///
/// Usage:
///
///     void step(double dt) {
///       SYNPF_EXPECTS(std::isfinite(dt) && dt > 0.0);
///       ...
///       SYNPF_ENSURES_MSG(std::isfinite(state_.v), "state NaN after step");
///     }
///
/// Tests exercise contracts by installing a throwing handler via
/// `contracts::ScopedHandler` and asserting on `contracts::ViolationError`.

#include <stdexcept>
#include <string>

namespace srl::contracts {

/// Which contract family fired.
enum class Kind { kExpects, kEnsures, kInvariant };

const char* to_string(Kind kind);

/// Everything known about one failed contract check.
struct Violation {
  Kind kind{Kind::kExpects};
  const char* condition{""};  ///< stringized condition text
  const char* message{""};    ///< optional extra context ("" when none)
  const char* file{""};
  int line{0};
  const char* function{""};
};

/// Render "EXPECTS failed: <cond> (<msg>) at file:line in function".
std::string describe(const Violation& v);

/// Thrown by the handler installed in tests (see `throwing_handler`).
class ViolationError : public std::logic_error {
 public:
  explicit ViolationError(const Violation& v)
      : std::logic_error(describe(v)), violation_(v) {}
  const Violation& violation() const { return violation_; }

 private:
  Violation violation_;
};

/// Terminal response to a violation. The default handler writes the
/// description to stderr and aborts. A handler may instead throw (tests) or
/// return (log-and-continue soak runs); when it returns, execution resumes
/// after the failed check.
using Handler = void (*)(const Violation&);

/// Passive tap invoked for every violation *before* the handler — the seam
/// through which `telemetry::ContractMonitor` counts violations into the
/// PR-1 metrics registry. Must not throw.
using Observer = void (*)(const Violation&, void* context);

/// Install a handler; returns the previous one. Thread-safe.
Handler set_handler(Handler handler);

/// Install (or clear, with nullptr) the observer. Thread-safe.
void set_observer(Observer observer, void* context);

/// Default handler: print to stderr, then std::abort().
void abort_handler(const Violation& v);

/// Test handler: throw `ViolationError`.
void throwing_handler(const Violation& v);

/// Called by the SYNPF_* macros on a failed check. Cold path.
void handle_violation(const Violation& v);

/// RAII handler swap for tests:
///     contracts::ScopedHandler guard{contracts::throwing_handler};
///     EXPECT_THROW(filter.predict(bad_odom), contracts::ViolationError);
class ScopedHandler {
 public:
  explicit ScopedHandler(Handler handler) : previous_{set_handler(handler)} {}
  ~ScopedHandler() { set_handler(previous_); }
  ScopedHandler(const ScopedHandler&) = delete;
  ScopedHandler& operator=(const ScopedHandler&) = delete;

 private:
  Handler previous_;
};

/// Whether contracts are compiled into this build.
constexpr bool enabled() {
#if defined(SYNPF_CHECKED)
  return true;
#else
  return false;
#endif
}

}  // namespace srl::contracts

#if defined(SYNPF_CHECKED)
#define SYNPF_CONTRACT_IMPL_(kind_, cond_, msg_)                         \
  do {                                                                   \
    if (!(cond_)) {                                                      \
      ::srl::contracts::handle_violation(::srl::contracts::Violation{    \
          ::srl::contracts::Kind::kind_, #cond_, msg_, __FILE__,         \
          __LINE__, static_cast<const char*>(__func__)});                \
    }                                                                    \
  } while (false)
#else
// Unevaluated operand: the condition must still compile, but no code or
// side effects survive into the release build.
#define SYNPF_CONTRACT_IMPL_(kind_, cond_, msg_) \
  do {                                           \
    (void)sizeof(static_cast<bool>(cond_));      \
    (void)sizeof(msg_);                          \
  } while (false)
#endif

/// Precondition: argument/state requirements at function entry.
#define SYNPF_EXPECTS(cond_) SYNPF_CONTRACT_IMPL_(kExpects, cond_, "")
#define SYNPF_EXPECTS_MSG(cond_, msg_) SYNPF_CONTRACT_IMPL_(kExpects, cond_, msg_)

/// Postcondition: guarantees at function exit.
#define SYNPF_ENSURES(cond_) SYNPF_CONTRACT_IMPL_(kEnsures, cond_, "")
#define SYNPF_ENSURES_MSG(cond_, msg_) SYNPF_CONTRACT_IMPL_(kEnsures, cond_, msg_)

/// Invariant: conditions that must hold at interior checkpoints.
#define SYNPF_INVARIANT(cond_) SYNPF_CONTRACT_IMPL_(kInvariant, cond_, "")
#define SYNPF_INVARIANT_MSG(cond_, msg_) SYNPF_CONTRACT_IMPL_(kInvariant, cond_, msg_)
