#include "common/csv.hpp"

#include <sstream>

namespace srl {

CsvWriter::CsvWriter(const std::string& path) : out_{path} {}

std::string CsvWriter::escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

void CsvWriter::write_header(std::initializer_list<std::string> cols) {
  bool first = true;
  for (const auto& c : cols) {
    if (!first) out_ << ',';
    out_ << escape(c);
    first = false;
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row(const std::vector<double>& cells) {
  std::ostringstream os;
  os.precision(10);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) os << ',';
    os << cells[i];
  }
  out_ << os.str() << '\n';
}

}  // namespace srl
