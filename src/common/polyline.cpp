#include "common/polyline.hpp"

#include <algorithm>
#include <cmath>

namespace srl {

double polyline_length(const std::vector<Vec2>& pts, bool closed) {
  if (pts.size() < 2) return 0.0;
  double len = 0.0;
  for (std::size_t i = 0; i + 1 < pts.size(); ++i)
    len += distance(pts[i], pts[i + 1]);
  if (closed) len += distance(pts.back(), pts.front());
  return len;
}

std::vector<Vec2> resample_closed(const std::vector<Vec2>& pts, double ds) {
  if (pts.size() < 3 || ds <= 0.0) return pts;
  const double total = polyline_length(pts, /*closed=*/true);
  const int n = std::max(3, static_cast<int>(std::round(total / ds)));
  const double step = total / n;

  std::vector<Vec2> out;
  out.reserve(static_cast<std::size_t>(n));
  double target = 0.0;
  double walked = 0.0;
  std::size_t seg = 0;
  Vec2 a = pts[0];
  Vec2 b = pts[1 % pts.size()];
  double seg_len = distance(a, b);
  for (int i = 0; i < n; ++i) {
    while (walked + seg_len < target && seg < pts.size()) {
      walked += seg_len;
      ++seg;
      a = pts[seg % pts.size()];
      b = pts[(seg + 1) % pts.size()];
      seg_len = distance(a, b);
    }
    const double t = seg_len > 0.0 ? (target - walked) / seg_len : 0.0;
    out.push_back(a + (b - a) * std::clamp(t, 0.0, 1.0));
    target += step;
  }
  return out;
}

std::vector<Vec2> resample_open(const std::vector<Vec2>& pts, int n) {
  if (pts.size() < 2 || n < 2) return pts;
  const double total = polyline_length(pts, /*closed=*/false);
  std::vector<Vec2> out;
  out.reserve(static_cast<std::size_t>(n));
  double walked = 0.0;
  std::size_t seg = 0;
  double seg_len = distance(pts[0], pts[1]);
  for (int i = 0; i < n; ++i) {
    const double target =
        total * static_cast<double>(i) / static_cast<double>(n - 1);
    while (walked + seg_len < target && seg + 2 < pts.size()) {
      walked += seg_len;
      ++seg;
      seg_len = distance(pts[seg], pts[seg + 1]);
    }
    const double t = seg_len > 0.0 ? (target - walked) / seg_len : 0.0;
    out.push_back(pts[seg] + (pts[seg + 1] - pts[seg]) * std::clamp(t, 0.0, 1.0));
  }
  return out;
}

std::vector<Vec2> chaikin_closed(const std::vector<Vec2>& pts, int iterations) {
  std::vector<Vec2> cur = pts;
  for (int it = 0; it < iterations && cur.size() >= 3; ++it) {
    std::vector<Vec2> next;
    next.reserve(cur.size() * 2);
    for (std::size_t i = 0; i < cur.size(); ++i) {
      const Vec2& p = cur[i];
      const Vec2& q = cur[(i + 1) % cur.size()];
      next.push_back(p * 0.75 + q * 0.25);
      next.push_back(p * 0.25 + q * 0.75);
    }
    cur = std::move(next);
  }
  return cur;
}

std::vector<double> curvature_closed(const std::vector<Vec2>& pts) {
  const std::size_t n = pts.size();
  std::vector<double> kappa(n, 0.0);
  if (n < 3) return kappa;
  for (std::size_t i = 0; i < n; ++i) {
    const Vec2& a = pts[(i + n - 1) % n];
    const Vec2& b = pts[i];
    const Vec2& c = pts[(i + 1) % n];
    const Vec2 ab = b - a;
    const Vec2 bc = c - b;
    const Vec2 ac = c - a;
    const double cross = ab.cross(bc);
    const double denom = ab.norm() * bc.norm() * ac.norm();
    kappa[i] = denom > 1e-12 ? 2.0 * cross / denom : 0.0;
  }
  return kappa;
}

double signed_area(const std::vector<Vec2>& pts) {
  double a = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const Vec2& p = pts[i];
    const Vec2& q = pts[(i + 1) % pts.size()];
    a += p.cross(q);
  }
  return 0.5 * a;
}

}  // namespace srl
