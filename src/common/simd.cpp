#include "common/simd.hpp"

#include <cstdlib>
#include <cstring>

namespace srl::simd {
namespace {

enum class Pin { kNone, kScalar, kAvx2 };

Pin& pinned() {
  static Pin pin = Pin::kNone;
  return pin;
}

/// Resolve SRL_SIMD + CPU probe. Unknown values behave like "auto" so a
/// typo'd env var degrades to the default instead of changing semantics
/// silently in only some translation units.
Backend resolve_from_env() {
  const char* env = std::getenv("SRL_SIMD");
  if (env != nullptr && std::strcmp(env, "scalar") == 0) {
    return Backend::kScalar;
  }
  return cpu_has_avx2() ? Backend::kAvx2 : Backend::kScalar;
}

}  // namespace

const char* name(Backend backend) {
  return backend == Backend::kAvx2 ? "avx2" : "scalar";
}

bool cpu_has_avx2() {
#if defined(SRL_SIMD_X86_AVX2)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

Backend active() {
  switch (pinned()) {
    case Pin::kScalar:
      return Backend::kScalar;
    case Pin::kAvx2:
      return cpu_has_avx2() ? Backend::kAvx2 : Backend::kScalar;
    case Pin::kNone:
      break;
  }
  // Env + CPU resolution is cached: the answer cannot change mid-process
  // and the dispatch sites sit on hot per-update paths.
  static const Backend resolved = resolve_from_env();
  return resolved;
}

void force(Backend backend) {
  pinned() = backend == Backend::kAvx2 ? Pin::kAvx2 : Pin::kScalar;
}

void reset() { pinned() = Pin::kNone; }

}  // namespace srl::simd
