#pragma once

/// \file angles.hpp
/// \brief Angle normalization and arithmetic on the circle.

#include <cmath>
#include <numbers>

namespace srl {

inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Wrap an angle into (-pi, pi].
inline double normalize_angle(double a) {
  a = std::fmod(a, kTwoPi);
  if (a <= -kPi) {
    a += kTwoPi;
  } else if (a > kPi) {
    a -= kTwoPi;
  }
  return a;
}

/// Shortest signed angular difference a - b, in (-pi, pi].
inline double angle_diff(double a, double b) { return normalize_angle(a - b); }

/// Absolute shortest angular distance between two angles, in [0, pi].
inline double angle_dist(double a, double b) {
  return std::abs(angle_diff(a, b));
}

inline constexpr double deg2rad(double deg) { return deg * kPi / 180.0; }
inline constexpr double rad2deg(double rad) { return rad * 180.0 / kPi; }

/// Linear interpolation between angles along the shortest arc.
inline double angle_lerp(double a, double b, double t) {
  return normalize_angle(a + t * angle_diff(b, a));
}

}  // namespace srl
