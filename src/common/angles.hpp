#pragma once

/// \file angles.hpp
/// \brief Angle normalization and arithmetic on the circle.

#include <cmath>
#include <numbers>

namespace srl {

inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Wrap an angle into (-pi, pi].
inline double normalize_angle(double a) {
  a = std::fmod(a, kTwoPi);
  if (a <= -kPi) {
    a += kTwoPi;
  } else if (a > kPi) {
    a -= kTwoPi;
  }
  return a;
}

/// Shortest signed angular difference a - b, in (-pi, pi].
inline double angle_diff(double a, double b) { return normalize_angle(a - b); }

/// Absolute shortest angular distance between two angles, in [0, pi].
inline double angle_dist(double a, double b) {
  return std::abs(angle_diff(a, b));
}

inline constexpr double deg2rad(double deg) { return deg * kPi / 180.0; }
inline constexpr double rad2deg(double rad) { return rad * 180.0 / kPi; }

/// Linear interpolation between angles along the shortest arc.
inline double angle_lerp(double a, double b, double t) {
  return normalize_angle(a + t * angle_diff(b, a));
}

/// Wrap an angle into [0, period), in bounded time for *any* input.
/// Hot-path friendly: one branch when already in range and one addition /
/// subtraction when within a turn (the common case for pose headings plus
/// beam offsets), falling back to fmod for arbitrary magnitudes. Non-finite
/// inputs wrap to 0 instead of looping forever or feeding NaN into a
/// UB float->int cast downstream.
inline double wrap_into(double a, double period) {
  if (a >= 0.0 && a < period) return a;
  if (a >= -period && a < 0.0) {
    a += period;
    // -eps + period can round up to exactly `period`.
    return a < period ? a : 0.0;
  }
  if (a >= period && a < 2.0 * period) return a - period;
  a = std::fmod(a, period);
  if (std::isnan(a)) return 0.0;
  if (a < 0.0) a += period;
  return a < period ? a : 0.0;
}

}  // namespace srl
