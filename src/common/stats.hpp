#pragma once

/// \file stats.hpp
/// \brief Streaming and batch statistics used by the evaluation harness:
/// Welford running moments, percentiles, histograms, and circular means.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace srl {

/// Numerically stable streaming mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (divides by n-1); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_{0};
  double mean_{0.0};
  double m2_{0.0};
  double min_{0.0};
  double max_{0.0};
};

/// Mean of a batch; 0 for an empty span.
double mean(std::span<const double> xs);

/// Sample standard deviation of a batch; 0 for fewer than two values.
double stddev(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Copies and sorts.
double percentile(std::span<const double> xs, double p);
inline double median(std::span<const double> xs) { return percentile(xs, 50.0); }

/// Circular (directional) mean of angles in radians, result in (-pi, pi].
double circular_mean(std::span<const double> angles);

/// Weighted circular mean; weights need not be normalized.
double weighted_circular_mean(std::span<const double> angles,
                              std::span<const double> weights);

/// Circular standard deviation sqrt(-2 ln R) where R is the mean resultant
/// length; 0 for an empty span.
double circular_stddev(std::span<const double> angles);

/// Fixed-bin histogram over [lo, hi); values outside are clamped to the
/// boundary bins. Used for dispersion plots in the figure benches.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t count() const { return total_; }
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  double bin_center(std::size_t i) const;
  /// Render as a compact one-line-per-bin ASCII bar chart.
  std::string ascii(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_{0};
};

}  // namespace srl
