#pragma once

/// \file timer.hpp
/// \brief Wall-clock timing helpers used for the latency measurements
/// (the paper's 1.25 ms sensor-update claim and the CPU-load column).

#include <chrono>

namespace srl {

/// Monotonic stopwatch. `elapsed_*` reads without stopping.
class Stopwatch {
 public:
  using Clock = std::chrono::steady_clock;

  Stopwatch() : start_{Clock::now()} {}

  void restart() { start_ = Clock::now(); }

  double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double elapsed_ms() const { return elapsed_s() * 1e3; }
  double elapsed_us() const { return elapsed_s() * 1e6; }

 private:
  Clock::time_point start_;
};

/// Accumulates total busy time over repeated timed sections; the ratio of
/// busy time to wall time is the compute-load proxy reported in Table I.
///
/// Deliberately minimal: only the aggregate busy-time bookkeeping behind the
/// CPU-load column and the per-section mean live here. Per-section latency
/// *distributions* (min/max/percentiles) belong to `telemetry::Histogram`
/// (src/telemetry/metrics.hpp), which all instrumented code now uses.
class LoadAccumulator {
 public:
  /// Record one timed section of `seconds` busy time.
  void add_busy(double seconds) {
    busy_s_ += seconds;
    ++sections_;
  }

  double busy_s() const { return busy_s_; }
  long sections() const { return sections_; }
  /// Mean busy time per section in milliseconds.
  double mean_ms() const {
    return sections_ > 0 ? busy_s_ * 1e3 / static_cast<double>(sections_) : 0.0;
  }
  /// Busy fraction of `wall_s` as a CPU-core percentage (htop-style).
  double load_percent(double wall_s) const {
    return wall_s > 0.0 ? 100.0 * busy_s_ / wall_s : 0.0;
  }

 private:
  double busy_s_{0.0};
  long sections_{0};
};

}  // namespace srl
