#pragma once

/// \file types.hpp
/// \brief Fundamental 2-D geometric types shared across the library:
/// vectors, SE(2) poses, and planar twists, with the usual group operations.
///
/// Conventions:
///  - world frame: x forward/east, y left/north, theta counter-clockwise
///    from +x, radians, normalized to (-pi, pi];
///  - `Pose2` is an element of SE(2); composition `a * b` applies `b` in the
///    frame of `a` (i.e. T_a * T_b);
///  - `Twist2` is a body-frame velocity (vx forward, vy lateral, wz yaw rate).

#include <cmath>
#include <iosfwd>

#include "common/angles.hpp"

namespace srl {

/// A 2-D vector / point. Plain aggregate: no invariants.
struct Vec2 {
  double x{0.0};
  double y{0.0};

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x{x_}, y{y_} {}

  constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }
  Vec2& operator+=(const Vec2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  Vec2& operator-=(const Vec2& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  Vec2& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }

  constexpr double dot(const Vec2& o) const { return x * o.x + y * o.y; }
  /// z-component of the 3-D cross product (signed parallelogram area).
  constexpr double cross(const Vec2& o) const { return x * o.y - y * o.x; }
  double norm() const { return std::hypot(x, y); }
  constexpr double squared_norm() const { return x * x + y * y; }
  /// Unit vector in the same direction; returns {0,0} for the zero vector.
  Vec2 normalized() const {
    const double n = norm();
    return n > 0.0 ? Vec2{x / n, y / n} : Vec2{};
  }
  /// This vector rotated CCW by `angle` radians.
  Vec2 rotated(double angle) const {
    const double c = std::cos(angle);
    const double s = std::sin(angle);
    return {c * x - s * y, s * x + c * y};
  }
  /// Perpendicular vector (rotated +90 degrees).
  constexpr Vec2 perp() const { return {-y, x}; }
};

constexpr Vec2 operator*(double s, const Vec2& v) { return v * s; }

inline double distance(const Vec2& a, const Vec2& b) { return (a - b).norm(); }

/// An SE(2) pose: translation + heading.
struct Pose2 {
  double x{0.0};
  double y{0.0};
  double theta{0.0};  ///< heading, radians, CCW from +x

  constexpr Pose2() = default;
  constexpr Pose2(double x_, double y_, double theta_)
      : x{x_}, y{y_}, theta{theta_} {}
  constexpr Pose2(const Vec2& t, double theta_)
      : x{t.x}, y{t.y}, theta{theta_} {}

  constexpr Vec2 translation() const { return {x, y}; }
  /// Unit heading vector (cos theta, sin theta).
  Vec2 heading_vec() const { return {std::cos(theta), std::sin(theta)}; }

  /// Group composition: `this` followed by `o` expressed in `this`'s frame.
  Pose2 operator*(const Pose2& o) const {
    const double c = std::cos(theta);
    const double s = std::sin(theta);
    return {x + c * o.x - s * o.y, y + s * o.x + c * o.y,
            normalize_angle(theta + o.theta)};
  }

  /// Transform a point from this pose's frame into the world frame.
  Vec2 transform(const Vec2& p) const {
    const double c = std::cos(theta);
    const double s = std::sin(theta);
    return {x + c * p.x - s * p.y, y + s * p.x + c * p.y};
  }

  /// Transform a world point into this pose's frame.
  Vec2 inverse_transform(const Vec2& p) const {
    const double c = std::cos(theta);
    const double s = std::sin(theta);
    const double dx = p.x - x;
    const double dy = p.y - y;
    return {c * dx + s * dy, -s * dx + c * dy};
  }

  /// Group inverse: `inverse() * (*this)` is identity.
  Pose2 inverse() const {
    const double c = std::cos(theta);
    const double s = std::sin(theta);
    return {-(c * x + s * y), -(-s * x + c * y), normalize_angle(-theta)};
  }

  /// Relative pose taking `this` to `to`: `(*this) * between(to) == to`.
  Pose2 between(const Pose2& to) const { return inverse() * to; }

  /// Pose with theta wrapped into (-pi, pi].
  Pose2 normalized() const { return {x, y, normalize_angle(theta)}; }
};

/// A planar body-frame velocity.
struct Twist2 {
  double vx{0.0};  ///< longitudinal velocity, m/s (body frame, + forward)
  double vy{0.0};  ///< lateral velocity, m/s (body frame, + left)
  double wz{0.0};  ///< yaw rate, rad/s (+ CCW)

  constexpr Twist2() = default;
  constexpr Twist2(double vx_, double vy_, double wz_)
      : vx{vx_}, vy{vy_}, wz{wz_} {}

  double speed() const { return std::hypot(vx, vy); }
};

/// Exact SE(2) exponential of a body twist applied for `dt` seconds,
/// composed onto `pose`. Handles the wz -> 0 limit analytically.
Pose2 integrate_twist(const Pose2& pose, const Twist2& twist, double dt);

/// Componentwise finiteness — the contract helpers used by preconditions on
/// geometry-consuming seams (range queries, motion prediction, simulation).
inline bool finite(const Vec2& v) {
  return std::isfinite(v.x) && std::isfinite(v.y);
}
inline bool finite(const Pose2& p) {
  return std::isfinite(p.x) && std::isfinite(p.y) && std::isfinite(p.theta);
}
inline bool finite(const Twist2& t) {
  return std::isfinite(t.vx) && std::isfinite(t.vy) && std::isfinite(t.wz);
}

std::ostream& operator<<(std::ostream& os, const Vec2& v);
std::ostream& operator<<(std::ostream& os, const Pose2& p);
std::ostream& operator<<(std::ostream& os, const Twist2& t);

}  // namespace srl
