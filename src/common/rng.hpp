#pragma once

/// \file rng.hpp
/// \brief Deterministic random number generation for simulation and
/// particle filtering. All stochastic components of the library draw from an
/// explicitly passed `Rng` so experiments are reproducible from a seed.

#include <cstdint>
#include <istream>
#include <ostream>
#include <random>

namespace srl {

/// A seeded pseudo-random generator with the distributions the library needs.
/// Thin wrapper over std::mt19937_64; copyable, so particle clouds can fork
/// deterministic sub-streams if needed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_{seed} {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>{lo, hi}(engine_);
  }

  /// Zero-mean Gaussian with the given standard deviation. Draws from a
  /// persistent standard-normal distribution and scales, so the
  /// Box-Muller pair cache survives across calls (this sits in the
  /// particle filter's prediction hot loop).
  double gaussian(double stddev) {
    if (stddev <= 0.0) return 0.0;
    return stddev * standard_normal_(engine_);
  }

  /// Gaussian with explicit mean.
  double gaussian(double mean, double stddev) {
    return mean + gaussian(stddev);
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Fresh 64-bit value (e.g. to seed a child Rng).
  std::uint64_t next_seed() { return engine_(); }

  std::mt19937_64& engine() { return engine_; }

  /// Serialize the *complete* generator state — the engine and the cached
  /// Box-Muller pair of the persistent normal distribution — so a restored
  /// Rng reproduces the exact remaining stream bit for bit (the determinism
  /// checker round-trips this across a save/restore).
  friend std::ostream& operator<<(std::ostream& os, const Rng& rng) {
    return os << rng.engine_ << ' ' << rng.standard_normal_;
  }
  friend std::istream& operator>>(std::istream& is, Rng& rng) {
    return is >> rng.engine_ >> rng.standard_normal_;
  }

 private:
  std::mt19937_64 engine_;
  std::normal_distribution<double> standard_normal_{0.0, 1.0};
};

}  // namespace srl
