#pragma once

/// \file rng.hpp
/// \brief Deterministic random number generation for simulation and
/// particle filtering. All stochastic components of the library draw from an
/// explicitly passed `Rng` so experiments are reproducible from a seed.
///
/// Beyond the single sequential stream, an `Rng` can derive *substreams*:
/// independent child generators keyed by a (stream tag, index) pair and the
/// master seed only — never by the parent's draw history. Substreams are the
/// foundation of the bitwise-deterministic parallel particle filter
/// (DESIGN.md §9): particle *i* draws its prediction noise from
/// `substream(kTag, i)`, so the noise it sees is a pure function of the seed
/// and its slot index, regardless of which thread advances it or how many
/// draws other components have made.

#include <cstdint>
#include <istream>
#include <ostream>
#include <random>

namespace srl {

/// SplitMix64 finalizer (Steele, Lea & Flood 2014): bijective 64-bit mixing
/// used to derive substream seeds. This derivation is *pinned*: changing it
/// silently re-keys every substream and breaks replay compatibility
/// (test_determinism hardcodes known outputs to catch exactly that).
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// A seeded pseudo-random generator with the distributions the library needs.
/// Thin wrapper over std::mt19937_64; copyable, so particle clouds can fork
/// deterministic sub-streams if needed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL)
      : seed_{seed}, engine_{seed} {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    return std::uniform_int_distribution<int>{lo, hi}(engine_);
  }

  /// Zero-mean Gaussian with the given standard deviation. Draws from a
  /// persistent standard-normal distribution and scales, so the
  /// Box-Muller pair cache survives across calls (this sits in the
  /// particle filter's prediction hot loop).
  double gaussian(double stddev) {
    if (stddev <= 0.0) return 0.0;
    return stddev * standard_normal_(engine_);
  }

  /// Gaussian with explicit mean.
  double gaussian(double mean, double stddev) {
    return mean + gaussian(stddev);
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Fresh 64-bit value (e.g. to seed a child Rng).
  std::uint64_t next_seed() { return engine_(); }

  /// The seed this generator (and all its substreams) derive from.
  std::uint64_t master_seed() const { return seed_; }

  /// Deterministic child stream keyed by (stream, index): a fresh Rng whose
  /// seed is a SplitMix64 chain over the *master seed* and the key. Pure —
  /// does not advance this engine and does not depend on how many draws the
  /// parent has made. Distinct keys yield independent streams; the same key
  /// always yields the same stream, so callers that need per-call freshness
  /// must fold an epoch counter into `index` (the particle filter documents
  /// its key schedule in core/particle_filter.hpp).
  Rng substream(std::uint64_t stream, std::uint64_t index = 0) const {
    std::uint64_t s = splitmix64(seed_ ^ (0x9E3779B97F4A7C15ULL * (stream + 1)));
    s = splitmix64(s ^ (0xBF58476D1CE4E5B9ULL * (index + 1)));
    return Rng{s};
  }

  std::mt19937_64& engine() { return engine_; }

  /// Serialize the *complete* generator state — the master seed (which keys
  /// every substream derivation), the engine, and the cached Box-Muller pair
  /// of the persistent normal distribution — so a restored Rng reproduces
  /// the exact remaining stream, and every substream, bit for bit (the
  /// determinism checker round-trips this across a save/restore).
  friend std::ostream& operator<<(std::ostream& os, const Rng& rng) {
    return os << rng.seed_ << ' ' << rng.engine_ << ' ' << rng.standard_normal_;
  }
  friend std::istream& operator>>(std::istream& is, Rng& rng) {
    return is >> rng.seed_ >> rng.engine_ >> rng.standard_normal_;
  }

 private:
  std::uint64_t seed_;
  std::mt19937_64 engine_;
  std::normal_distribution<double> standard_normal_{0.0, 1.0};
};

}  // namespace srl
