#include "common/types.hpp"

#include <cmath>
#include <ostream>

namespace srl {

Pose2 integrate_twist(const Pose2& pose, const Twist2& twist, double dt) {
  const double wt = twist.wz * dt;
  double dx;
  double dy;
  if (std::abs(twist.wz) < 1e-9) {
    // Straight-line limit of the SE(2) exponential.
    dx = twist.vx * dt - 0.5 * twist.vy * wt * dt;
    dy = twist.vy * dt + 0.5 * twist.vx * wt * dt;
  } else {
    const double s = std::sin(wt);
    const double c = std::cos(wt);
    // V(wt) * [vx, vy] * dt with V the SE(2) left Jacobian.
    dx = (twist.vx * s - twist.vy * (1.0 - c)) / twist.wz;
    dy = (twist.vx * (1.0 - c) + twist.vy * s) / twist.wz;
  }
  return pose * Pose2{dx, dy, wt};
}

std::ostream& operator<<(std::ostream& os, const Vec2& v) {
  return os << "(" << v.x << ", " << v.y << ")";
}

std::ostream& operator<<(std::ostream& os, const Pose2& p) {
  return os << "(" << p.x << ", " << p.y << "; " << p.theta << ")";
}

std::ostream& operator<<(std::ostream& os, const Twist2& t) {
  return os << "[vx=" << t.vx << ", vy=" << t.vy << ", wz=" << t.wz << "]";
}

}  // namespace srl
