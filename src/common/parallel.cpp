#include "common/parallel.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/contracts.hpp"

namespace srl {

int resolve_thread_count(int requested) {
  if (requested > 0) return std::min(requested, kMaxThreads);
  if (const char* env = std::getenv("SRL_THREADS"); env != nullptr) {
    const int from_env = std::atoi(env);
    if (from_env > 0) return std::min(from_env, kMaxThreads);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(static_cast<int>(hw), 1, kMaxThreads);
}

ThreadPool::ThreadPool(int n_threads)
    : n_lanes_{resolve_thread_count(n_threads)} {
  workers_.reserve(static_cast<std::size_t>(n_lanes_ - 1));
  for (int lane = 1; lane < n_lanes_; ++lane) {
    workers_.emplace_back([this, lane] { worker_loop(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock{mutex_};
    stop_ = true;
  }
  cv_start_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::size_t ThreadPool::chunk_begin(std::size_t n, int lanes, int lane) {
  // Monotone in `lane`, chunk_begin(n, T, 0) == 0, chunk_begin(n, T, T) == n:
  // the chunks partition [0, n) exactly, with sizes differing by at most 1.
  return n * static_cast<std::size_t>(lane) / static_cast<std::size_t>(lanes);
}

void ThreadPool::run_chunk(const ChunkBody& body, std::size_t n,
                           int lane) const {
  const std::size_t begin = chunk_begin(n, n_lanes_, lane);
  const std::size_t end = chunk_begin(n, n_lanes_, lane + 1);
  SYNPF_INVARIANT_MSG(begin <= end && end <= n,
                      "chunk bounds must partition the index range");
  if (begin < end) body(lane, begin, end);
}

void ThreadPool::parallel_for(std::size_t n, const ChunkBody& body) {
  if (n == 0) return;
  if (n_lanes_ == 1) {
    // The exact serial path: no locks, no wakeups, no memory traffic.
    body(0, 0, n);
    return;
  }

  {
    std::lock_guard lock{mutex_};
    SYNPF_EXPECTS_MSG(pending_ == 0 && body_ == nullptr,
                      "parallel_for regions must not nest on one pool");
    body_ = &body;
    n_ = n;
    pending_ = n_lanes_ - 1;
    ++generation_;
  }
  cv_start_.notify_all();

  // Lane 0 runs on the calling thread. If the body throws here, the workers
  // must still drain before the region state is torn down.
  try {
    run_chunk(body, n, 0);
  } catch (...) {
    std::unique_lock lock{mutex_};
    cv_done_.wait(lock, [this] { return pending_ == 0; });
    body_ = nullptr;
    throw;
  }

  std::unique_lock lock{mutex_};
  cv_done_.wait(lock, [this] { return pending_ == 0; });
  body_ = nullptr;
}

void ThreadPool::worker_loop(int lane) {
  std::uint64_t seen = 0;
  for (;;) {
    const ChunkBody* body = nullptr;
    std::size_t n = 0;
    {
      std::unique_lock lock{mutex_};
      cv_start_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      body = body_;
      n = n_;
    }
    // Worker bodies are noexcept by contract; an escaping exception would
    // std::terminate, which is the correct loud failure for a broken chunk.
    run_chunk(*body, n, lane);
    {
      std::lock_guard lock{mutex_};
      --pending_;
      SYNPF_INVARIANT_MSG(pending_ >= 0, "pool join underflow");
    }
    cv_done_.notify_one();
  }
}

}  // namespace srl
