#pragma once

/// \file polyline.hpp
/// \brief Closed/open polyline utilities: arc length, uniform resampling,
/// Chaikin smoothing, and discrete curvature. Shared by the synthetic track
/// generator and the race-line representation.

#include <vector>

#include "common/types.hpp"

namespace srl {

/// Total length of a polyline; if `closed`, includes the last->first segment.
double polyline_length(const std::vector<Vec2>& pts, bool closed);

/// Resample a closed polyline to points uniformly spaced (approximately `ds`
/// apart) by arc length. The result keeps the original orientation and starts
/// near pts[0]. Requires at least 3 points.
std::vector<Vec2> resample_closed(const std::vector<Vec2>& pts, double ds);

/// Resample an open polyline to exactly `n` points uniformly by arc length
/// (endpoints preserved). Requires n >= 2 and at least 2 input points.
std::vector<Vec2> resample_open(const std::vector<Vec2>& pts, int n);

/// One or more iterations of Chaikin corner cutting on a closed polyline.
/// Each iteration doubles the point count and smooths corners; the limit
/// curve is C1. Requires at least 3 points.
std::vector<Vec2> chaikin_closed(const std::vector<Vec2>& pts, int iterations);

/// Discrete signed curvature at every vertex of a closed polyline using the
/// circumscribed-circle formula on (prev, this, next). Positive = left turn.
std::vector<double> curvature_closed(const std::vector<Vec2>& pts);

/// Signed area (shoelace); positive for counter-clockwise orientation.
double signed_area(const std::vector<Vec2>& pts);

}  // namespace srl
