#include "recovery/divergence_detector.hpp"

namespace srl::recovery {

const char* to_string(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "HEALTHY";
    case HealthState::kSuspect:
      return "SUSPECT";
    case HealthState::kDiverged:
      return "DIVERGED";
    case HealthState::kRecovering:
      return "RECOVERING";
  }
  return "?";
}

int DivergenceDetector::tripped_signals() const {
  return static_cast<int>(ess_tripped_) + static_cast<int>(align_tripped_) +
         static_cast<int>(jump_tripped_) + static_cast<int>(disagree_tripped_);
}

void DivergenceDetector::transition(HealthState next) {
  if (next == state_) return;
  state_ = next;
  suspect_run_ = 0;
  diverged_run_ = 0;
  clean_run_ = 0;
  switch (next) {
    case HealthState::kSuspect:
      ++transitions_.to_suspect;
      break;
    case HealthState::kDiverged:
      ++transitions_.to_diverged;
      break;
    case HealthState::kRecovering:
      ++transitions_.to_recovering;
      break;
    case HealthState::kHealthy:
      ++transitions_.to_healthy;
      break;
  }
}

void DivergenceDetector::note_recovery_action() {
  // The action invalidates the latches: a relocalization is itself a pose
  // jump, and the alignment/ESS evidence predates the new hypothesis.
  ess_tripped_ = align_tripped_ = jump_tripped_ = disagree_tripped_ = false;
  cooldown_ = config_.recovering_cooldown;
  transition(HealthState::kRecovering);
}

void DivergenceDetector::reset() {
  const DivergenceDetectorConfig config = config_;
  *this = DivergenceDetector{config};
}

HealthState DivergenceDetector::update(const DetectorInputs& inputs) {
  if (inputs.blackout) return state_;  // no evidence, no judgement

  // Per-signal hysteresis latches. A negative input leaves its latch alone.
  auto latch_low = [](double value, double trip, double clear, bool& tripped) {
    if (value < 0.0) return;
    if (value < trip) tripped = true;
    if (value > clear) tripped = false;
  };
  auto latch_high = [](double value, double trip, double clear, bool& tripped) {
    if (value < 0.0) return;
    if (value > trip) tripped = true;
    if (value < clear) tripped = false;
  };
  latch_low(inputs.ess_fraction, config_.ess_trip, config_.ess_clear,
            ess_tripped_);
  latch_low(inputs.scan_alignment, config_.align_trip, config_.align_clear,
            align_tripped_);
  // Right after a recovery action the estimate is *supposed* to jump; the
  // latches were cleared by note_recovery_action and the jump signal stays
  // muted until the cooldown runs out.
  if (state_ != HealthState::kRecovering || cooldown_ <= 0) {
    latch_high(inputs.pose_jump_m, config_.jump_trip_m, config_.jump_clear_m,
               jump_tripped_);
  }
  latch_high(inputs.odom_disagreement_m, config_.disagree_trip_m,
             config_.disagree_clear_m, disagree_tripped_);

  const int tripped = tripped_signals();
  const bool suspicious = tripped > 0;
  const bool fast = tripped >= config_.multi_signal_fast_path;

  switch (state_) {
    case HealthState::kHealthy:
      if (suspicious) {
        ++suspect_run_;
        if (fast || suspect_run_ >= config_.suspect_dwell) {
          transition(HealthState::kSuspect);
        }
      } else {
        suspect_run_ = 0;
      }
      break;

    case HealthState::kSuspect:
      if (suspicious) {
        clean_run_ = 0;
        // Several independent witnesses accumulate dwell twice as fast.
        diverged_run_ += fast ? 2 : 1;
        if (diverged_run_ >= config_.diverged_dwell) {
          transition(HealthState::kDiverged);
        }
      } else {
        diverged_run_ = 0;
        ++clean_run_;
        if (clean_run_ >= config_.healthy_dwell) {
          transition(HealthState::kHealthy);
        }
      }
      break;

    case HealthState::kDiverged:
      // Waiting for the supervisor (note_recovery_action). The signals may
      // also clear on their own — the filter's built-in machinery recovered.
      if (!suspicious) {
        ++clean_run_;
        if (clean_run_ >= config_.healthy_dwell) {
          transition(HealthState::kHealthy);
        }
      } else {
        clean_run_ = 0;
      }
      break;

    case HealthState::kRecovering:
      if (cooldown_ > 0) --cooldown_;
      if (!suspicious) {
        ++clean_run_;
        if (clean_run_ >= config_.healthy_dwell) {
          transition(HealthState::kHealthy);
        }
      } else {
        clean_run_ = 0;
        if (cooldown_ <= 0) {
          // The action did not take: relapse so the supervisor escalates.
          transition(HealthState::kDiverged);
        }
      }
      break;
  }
  return state_;
}

}  // namespace srl::recovery
