#pragma once

/// \file divergence_detector.hpp
/// \brief Online divergence detection: per-signal hysteresis fused into a
/// debounced health state machine.
///
/// The detector consumes the filter-health signals the telemetry layer
/// already computes — ESS fraction, scan-alignment score, pose-jump
/// magnitude, odometry/estimate disagreement — and turns them into one
/// discrete judgement:
///
///     HEALTHY ──suspect_dwell──► SUSPECT ──diverged_dwell──► DIVERGED
///        ▲                          │                           │
///        │◄──────healthy_dwell──────┘      note_recovery_action │
///        │                                                      ▼
///        └────────────healthy_dwell───────────────── RECOVERING
///                                  (cooldown elapsed + still bad ► DIVERGED)
///
/// Each signal has its own trip/clear hysteresis pair (a tripped signal
/// stays tripped until it crosses the *clear* threshold, so a value jittering
/// around one threshold cannot flap the latch). The state machine debounces
/// on top: transitions require `*_dwell` consecutive qualifying updates, and
/// tripping several independent signals at once takes the fast path. While a
/// recovery action settles (`RECOVERING`) the detector grants a cooldown
/// before re-judging; if the signals are still bad afterwards it relapses to
/// `DIVERGED`, telling the supervisor to escalate.
///
/// The detector is a pure observer — no RNG, no filter access — so running
/// it (or not) can never perturb an estimate.

#include <cstdint>

namespace srl::recovery {

enum class HealthState : int {
  kHealthy = 0,
  kSuspect = 1,
  kDiverged = 2,
  kRecovering = 3,
};

const char* to_string(HealthState state);

/// One update's evidence. Signals are optional: a negative value means "not
/// available this update" and leaves that signal's latch untouched.
struct DetectorInputs {
  /// ESS / particle count, in [0, 1] (particle-filter cells only).
  double ess_fraction{-1.0};
  /// Fraction of probed beams whose measured range matches the expected
  /// range at the estimate, in [0, 1] (recovery_policy.hpp AlignmentProbe).
  double scan_alignment{-1.0};
  /// Distance between the odometry-propagated prior and the corrected
  /// estimate of this update, m.
  double pose_jump_m{-1.0};
  /// | |odometry delta| - |estimate delta| | over the last scan interval, m.
  double odom_disagreement_m{-1.0};
  /// Full sensor blackout: judgement is suspended (state held) because
  /// exteroceptive evidence is absent, not bad.
  bool blackout{false};
};

struct DivergenceDetectorConfig {
  // Per-signal hysteresis: trip when worse than `*_trip`, clear only when
  // better than `*_clear` (trip < clear for low-is-bad signals, trip >
  // clear for high-is-bad ones).
  double ess_trip = 0.02;
  double ess_clear = 0.10;
  /// Alignment calibration (test_track, 0.15 m probe tolerance): a healthy
  /// estimate never scores below ~0.92 over whole laps, while a kidnapped
  /// one aliases into 0.4-0.85 (the corridor cross-section repeats around
  /// the track, so even a pose meters wrong keeps most beams in tolerance).
  /// The trip sits under the healthy band's observed floor, the clear just
  /// above the aliased band's ceiling — detection latency is what turns a
  /// kidnap into a wall, so the margin is deliberately thin and the
  /// verification gate on relocalization absorbs any false trip.
  double align_trip = 0.85;
  double align_clear = 0.90;
  double jump_trip_m = 0.60;
  double jump_clear_m = 0.20;
  double disagree_trip_m = 0.40;
  double disagree_clear_m = 0.15;

  // Debounce dwells, in updates.
  int suspect_dwell = 2;    ///< suspicious updates before HEALTHY -> SUSPECT
  int diverged_dwell = 4;   ///< suspicious updates in SUSPECT -> DIVERGED
  int healthy_dwell = 5;    ///< clean updates before returning to HEALTHY
  /// Tripping at least this many signals at once doubles the SUSPECT ->
  /// DIVERGED dwell rate and skips the HEALTHY -> SUSPECT dwell entirely:
  /// independent witnesses beat debounce caution.
  int multi_signal_fast_path = 2;
  /// Updates granted to a recovery action before the detector may relapse
  /// RECOVERING -> DIVERGED (the filter needs a few corrections to
  /// re-concentrate on an injected/relocalized hypothesis).
  int recovering_cooldown = 10;
};

/// State-transition counters (telemetry: recovery.to_* counters).
struct TransitionCounts {
  std::uint64_t to_suspect{0};
  std::uint64_t to_diverged{0};
  std::uint64_t to_recovering{0};
  std::uint64_t to_healthy{0};
  std::uint64_t total() const {
    return to_suspect + to_diverged + to_recovering + to_healthy;
  }
};

class DivergenceDetector {
 public:
  explicit DivergenceDetector(DivergenceDetectorConfig config = {})
      : config_{config} {}

  /// Fold one update's evidence into the latches and advance the machine.
  HealthState update(const DetectorInputs& inputs);

  /// The supervisor applied a recovery action: enter RECOVERING with a
  /// fresh cooldown and clear the signal latches (the action invalidates
  /// them — a relocalization *is* a pose jump).
  void note_recovery_action();

  void reset();

  HealthState state() const { return state_; }
  /// Number of currently tripped signal latches.
  int tripped_signals() const;
  /// Bitmask of the tripped latches (bit0 = ess, bit1 = alignment,
  /// bit2 = pose jump, bit3 = odometry disagreement). Snapshotted into
  /// flight-recorder ticks so a postmortem can see *which* witnesses fired.
  int latch_mask() const {
    return (ess_tripped_ ? 1 : 0) | (align_tripped_ ? 2 : 0) |
           (jump_tripped_ ? 4 : 0) | (disagree_tripped_ ? 8 : 0);
  }
  const TransitionCounts& transitions() const { return transitions_; }
  const DivergenceDetectorConfig& config() const { return config_; }

 private:
  void transition(HealthState next);

  DivergenceDetectorConfig config_;
  HealthState state_{HealthState::kHealthy};
  TransitionCounts transitions_{};

  bool ess_tripped_{false};
  bool align_tripped_{false};
  bool jump_tripped_{false};
  bool disagree_tripped_{false};

  int suspect_run_{0};   ///< consecutive suspicious updates while HEALTHY
  int diverged_run_{0};  ///< dwell accumulator while SUSPECT
  int clean_run_{0};     ///< consecutive clean updates
  int cooldown_{0};      ///< remaining RECOVERING grace updates
};

}  // namespace srl::recovery
