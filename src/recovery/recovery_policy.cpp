#include "recovery/recovery_policy.hpp"

#include <algorithm>
#include <cmath>

#include "common/angles.hpp"
#include "common/contracts.hpp"
#include "sensor/scanline_layout.hpp"

namespace srl::recovery {

AlignmentProbe::AlignmentProbe(std::shared_ptr<const OccupancyGrid> map,
                               LidarConfig lidar, int beams,
                               double tolerance_m)
    : lidar_{lidar},
      beam_indices_{uniform_layout(lidar, beams)},
      beam_angles_{layout_angles(lidar, beam_indices_)},
      tolerance_m_{tolerance_m} {
  SYNPF_EXPECTS_MSG(map != nullptr, "alignment probe needs a map");
  RangeMethodOptions options;
  options.max_range = lidar_.max_range;
  // Exact ray casting: the probe runs K beams per scan, not K x N, so the
  // Bresenham backend is cheap and needs no precomputation pass.
  caster_ = make_range_method(RangeMethodKind::kBresenham, std::move(map),
                              options);
}

double AlignmentProbe::valid_fraction(const LaserScan& scan) const {
  if (scan.ranges.empty()) return 0.0;
  const auto min_r = static_cast<float>(lidar_.min_range);
  const auto max_r = static_cast<float>(lidar_.max_range) * 0.999F;
  std::size_t valid = 0;
  for (const float r : scan.ranges) {
    if (r > min_r && r < max_r) ++valid;
  }
  return static_cast<double>(valid) / static_cast<double>(scan.ranges.size());
}

double AlignmentProbe::score(const Pose2& pose, const LaserScan& scan) const {
  const std::size_t k = beam_indices_.size();
  rays_.resize(k);
  expected_.resize(k);
  const Pose2 sensor = pose * lidar_.mount;
  for (std::size_t j = 0; j < k; ++j) {
    rays_[j] = Pose2{sensor.x, sensor.y, sensor.theta + beam_angles_[j]};
  }
  caster_->ranges(rays_, expected_);

  const auto min_r = static_cast<float>(lidar_.min_range);
  const auto max_r = static_cast<float>(lidar_.max_range) * 0.999F;
  int valid = 0;
  int hits = 0;
  for (std::size_t j = 0; j < k; ++j) {
    const auto idx = static_cast<std::size_t>(beam_indices_[j]);
    if (idx >= scan.ranges.size()) continue;
    const float measured = scan.ranges[idx];
    if (measured <= min_r || measured >= max_r) continue;
    ++valid;
    if (std::abs(static_cast<double>(measured) -
                 static_cast<double>(expected_[j])) <= tolerance_m_) {
      ++hits;
    }
  }
  if (valid < kMinValidBeams) return -1.0;
  return static_cast<double>(hits) / static_cast<double>(valid);
}

RecoveryPolicyConfig RecoveryPolicyConfig::none() {
  RecoveryPolicyConfig config;
  config.amcl_injection = false;
  config.global_reloc = false;
  config.tempering = false;
  config.blackout_fallback = false;
  return config;
}

RecoveryPolicy::RecoveryPolicy(RecoveryPolicyConfig config,
                               std::shared_ptr<const OccupancyGrid> map,
                               LidarConfig lidar, std::uint64_t seed)
    : config_{config}, map_{std::move(map)}, lidar_{lidar}, base_{seed} {
  SYNPF_EXPECTS_MSG(map_ != nullptr, "recovery policy needs a map");
}

void RecoveryPolicy::observe_alignment(double score) {
  if (score < 0.0) return;
  // Thrun's averages over the per-update measurement quality. Floor the
  // sample so a single all-miss scan cannot zero w_slow forever.
  const double sample = std::max(score, 1e-3);
  if (w_slow_ == 0.0) w_slow_ = sample;
  if (w_fast_ == 0.0) w_fast_ = sample;
  w_slow_ += config_.amcl_alpha_slow * (sample - w_slow_);
  w_fast_ += config_.amcl_alpha_fast * (sample - w_fast_);
}

double RecoveryPolicy::injection_fraction() const {
  const double raw =
      w_slow_ > 0.0 ? std::max(0.0, 1.0 - w_fast_ / w_slow_) : 0.0;
  return std::clamp(raw, config_.min_injection_fraction,
                    config_.max_injection_fraction);
}

RecoveryPolicy::Action RecoveryPolicy::plan_recovery(bool has_filter) {
  ++diverged_entries_;
  const bool can_inject = config_.amcl_injection && has_filter;
  const bool escalated = diverged_entries_ > config_.escalate_after;
  if (config_.global_reloc && (escalated || !can_inject)) {
    return Action::kGlobalReloc;
  }
  if (can_inject) return Action::kInject;
  return Action::kNone;
}

void RecoveryPolicy::note_healthy() { diverged_entries_ = 0; }

Rng RecoveryPolicy::inject_rng() {
  return base_.substream(kRecoveryStreamInject, inject_ordinal_++);
}

std::optional<Pose2> RecoveryPolicy::global_relocalize(
    const LaserScan& scan, const AlignmentProbe& probe, const Pose2& current) {
  ++scatter_ordinal_;

  // Stage 1 — sweep a fixed lattice over map free space, probe a heading
  // fan at each position, and keep a shortlist of the best-aligned
  // candidates. The lattice spacing guarantees some candidate lands inside
  // the matcher's capture window around the true pose — a property a random
  // scatter cannot give — and makes the whole search a pure function of
  // (map, config, scan): deterministic with no RNG draw at all. The
  // shortlist matters because on a corridor track many wrong poses alias to
  // high probe scores, so the raw winner alone is unreliable.
  struct Candidate {
    Pose2 pose;
    double score;
  };
  const auto top_n =
      static_cast<std::size_t>(std::max(config_.reloc_refine_top, 1));
  std::vector<Candidate> shortlist;
  shortlist.reserve(top_n + 1);
  const int headings = std::max(config_.reloc_headings, 1);
  const OccupancyGrid& map = *map_;
  const int stride = std::max(
      1, static_cast<int>(std::lround(config_.reloc_grid_m /
                                      map.resolution())));
  for (int iy = stride / 2; iy < map.height(); iy += stride) {
    for (int ix = stride / 2; ix < map.width(); ix += stride) {
      if (!map.is_free(ix, iy)) continue;
      const Vec2 c = map.grid_to_world(ix, iy);
      Pose2 candidate{c.x, c.y, 0.0};
      for (int h = 0; h < headings; ++h) {
        candidate.theta = normalize_angle(2.0 * kPi * static_cast<double>(h) /
                                          static_cast<double>(headings));
        const double score = probe.score(candidate, scan);
        if (score < 0.0) continue;
        if (shortlist.size() == top_n && score <= shortlist.back().score) {
          continue;
        }
        // Insert sorted (descending, earlier candidate wins ties).
        auto it = shortlist.begin();
        while (it != shortlist.end() && it->score >= score) ++it;
        shortlist.insert(it, Candidate{candidate, score});
        if (shortlist.size() > top_n) shortlist.pop_back();
      }
    }
  }
  if (shortlist.empty()) return std::nullopt;

  // Stage 2 — refine every shortlisted candidate with the correlative
  // matcher and re-score the refined pose; the refinement pulls a candidate
  // that is merely *near* the true pose onto it, which separates it from
  // aliased look-alikes that refine nowhere better.
  const std::vector<Vec2> points =
      config_.reloc_scan_match ? scan_to_points(scan, lidar_, 8)
                               : std::vector<Vec2>{};
  std::unique_ptr<CorrelativeScanMatcher> matcher;
  if (!points.empty()) {
    if (field_ == nullptr) {
      field_ = std::make_unique<ProbabilityGrid>(
          ProbabilityGrid::likelihood_field(*map_));
    }
    // The linear window must cover the worst-case lattice offset
    // (reloc_grid_m * sqrt(2) / 2); the matcher closes the last few cm.
    CorrelativeOptions options;
    options.linear_window = 0.40;
    options.angular_window = 0.20;
    options.linear_step = 0.05;
    options.angular_step = 0.025;
    matcher = std::make_unique<CorrelativeScanMatcher>(options);
  }
  Pose2 best{};
  double best_score = -1.0;
  for (const Candidate& cand : shortlist) {
    Pose2 refined = cand.pose;
    double refined_score = cand.score;
    if (matcher != nullptr) {
      const ScanMatchResult match = matcher->match(*field_, cand.pose, points);
      if (match.ok) {
        const double score = probe.score(match.pose, scan);
        if (score > refined_score) {
          refined = match.pose;
          refined_score = score;
        }
      }
    }
    if (refined_score > best_score) {
      best_score = refined_score;
      best = refined;
    }
  }

  // Stage 3 — verification gate: apply the relocalization only when it is
  // decisively better than where the estimate already is. A failed search
  // must never destroy the state it was meant to repair.
  const double current_score = probe.score(current, scan);
  if (current_score >= 0.0 &&
      best_score < current_score + config_.reloc_accept_margin) {
    return std::nullopt;
  }
  return best;
}

void RecoveryPolicy::reset() {
  w_slow_ = 0.0;
  w_fast_ = 0.0;
  diverged_entries_ = 0;
  // Ordinals deliberately survive: the substream schedule is keyed by the
  // lifetime action count, so a mid-run re-initialization cannot replay an
  // earlier action's draws.
}

}  // namespace srl::recovery
