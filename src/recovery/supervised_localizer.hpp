#pragma once

/// \file supervised_localizer.hpp
/// \brief Decorator that supervises any `Localizer` with online divergence
/// detection and automated recovery — the mirror image of
/// `fault::FaultedLocalizer`, which corrupts the sensor diet upstream.
///
/// Every scan the wrapper (1) probes the inner estimate's scan alignment
/// against the map, (2) folds alignment + ESS + pose-jump + odometry
/// disagreement into the `DivergenceDetector`, and (3) applies the
/// `RecoveryPolicy` ladder when divergence is confirmed: measurement
/// tempering while SUSPECT, Augmented-MCL uniform re-injection on the first
/// DIVERGED entries, global relocalization on relapse. During a full sensor
/// blackout it degrades gracefully to a dead-reckoning fallback: the last
/// estimate is propagated by odometry, the filter never sees the returnless
/// scans, and the `recovery.blackout_drift_m` gauge reports the inflated
/// uncertainty proxy.
///
/// Composition with fault injection (canonical order):
///
///     SupervisedLocalizer(FaultedLocalizer(SynPf))
///
/// i.e. supervise *outside* the faults, so corruption hits the filter
/// upstream of detection exactly as a real sensor fault would. The reverse
/// nesting is legal (both are `Localizer` decorators) but measures a
/// different thing: faults applied to an already-supervised stack.
///
/// Determinism: with `RecoveryPolicyConfig::none()` the wrapper observes
/// only (detector + telemetry, no filter access) and is a bitwise no-op on
/// estimates. With policies on, every stochastic recovery draw comes from
/// the policy's pinned substream schedule, so runs are bitwise identical
/// at any thread count.

#include <cstdint>
#include <memory>
#include <string>

#include "core/localizer.hpp"
#include "core/particle_filter.hpp"
#include "gridmap/occupancy_grid.hpp"
#include "recovery/divergence_detector.hpp"
#include "recovery/recovery_policy.hpp"
#include "sensor/lidar.hpp"
#include "telemetry/telemetry.hpp"

namespace srl::recovery {

struct SupervisedLocalizerConfig {
  DivergenceDetectorConfig detector{};
  RecoveryPolicyConfig policy{};
  int probe_beams = 40;           ///< alignment-probe subsample size
  double probe_tolerance_m = 0.15;
  std::uint64_t seed = 0x7ec0;    ///< recovery substream master seed
};

class SupervisedLocalizer final : public Localizer {
 public:
  /// `inner` is not owned and must outlive the wrapper.
  SupervisedLocalizer(Localizer& inner, SupervisedLocalizerConfig config,
                      std::shared_ptr<const OccupancyGrid> map,
                      LidarConfig lidar);

  /// Bind the particle cloud the supervisor may repair (injection, ESS
  /// signal, tempering). Optional: without it the ladder skips injection
  /// and escalates straight to relocalization via `initialize`. Also hands
  /// the recovery map to the filter for free-space sampling.
  void bind_filter(ParticleFilter* pf);

  void initialize(const Pose2& pose) override;
  void on_odometry(const OdometryDelta& odom) override;
  Pose2 on_scan(const LaserScan& scan) override;
  Pose2 pose() const override;
  std::string name() const override { return inner_.name() + "+supervised"; }
  double mean_scan_update_ms() const override {
    return inner_.mean_scan_update_ms();
  }
  double total_busy_s() const override { return inner_.total_busy_s(); }
  void set_telemetry(const telemetry::Sink& sink) override;

  HealthState state() const { return detector_.state(); }
  const DivergenceDetector& detector() const { return detector_; }
  const RecoveryPolicy& policy() const { return policy_; }
  bool blackout_engaged() const { return blackout_engaged_; }
  /// Dead-reckoned distance accumulated during the current blackout, m.
  double blackout_drift_m() const { return blackout_dist_m_; }
  /// Alignment-probe score of the most recent non-blackout scan
  /// (-1 before the first one). Flight-recorder probe.
  double last_alignment() const { return last_alignment_; }

 private:
  void apply_recovery(const LaserScan& scan);
  void set_tempering(bool want);
  void publish(const TransitionCounts& before, double t);
  void emit_event(double t, telemetry::EventSeverity severity,
                  const char* code, json::Value data);

  Localizer& inner_;
  SupervisedLocalizerConfig config_;
  std::shared_ptr<const OccupancyGrid> map_;
  AlignmentProbe probe_;
  DivergenceDetector detector_;
  RecoveryPolicy policy_;
  ParticleFilter* pf_{nullptr};

  // Dead-reckoning fallback state (blackout degradation).
  bool blackout_engaged_{false};
  Pose2 fallback_pose_{};
  double blackout_dist_m_{0.0};

  // Odometry/estimate disagreement bookkeeping.
  Pose2 pending_odom_{};  ///< composed odometry delta since the last scan
  Pose2 last_estimate_{};
  bool have_last_estimate_{false};

  bool tempering_engaged_{false};
  bool relocated_this_scan_{false};
  double diverged_since_{-1.0};  ///< scan time of the open divergence episode
  double last_alignment_{-1.0};

  telemetry::Sink sink_{};
  telemetry::Gauge* g_state_{nullptr};
  telemetry::Gauge* g_inject_fraction_{nullptr};
  telemetry::Gauge* g_blackout_drift_{nullptr};
  telemetry::Counter* c_to_suspect_{nullptr};
  telemetry::Counter* c_to_diverged_{nullptr};
  telemetry::Counter* c_to_recovering_{nullptr};
  telemetry::Counter* c_to_healthy_{nullptr};
  telemetry::Counter* c_injections_{nullptr};
  telemetry::Counter* c_global_relocs_{nullptr};
  telemetry::Counter* c_blackouts_{nullptr};
  telemetry::Histogram* h_time_to_reloc_{nullptr};
};

}  // namespace srl::recovery
