#include "recovery/supervised_localizer.hpp"

#include <cmath>
#include <optional>

namespace srl::recovery {

SupervisedLocalizer::SupervisedLocalizer(
    Localizer& inner, SupervisedLocalizerConfig config,
    std::shared_ptr<const OccupancyGrid> map, LidarConfig lidar)
    : inner_{inner},
      config_{config},
      map_{map},
      probe_{map, lidar, config.probe_beams, config.probe_tolerance_m},
      detector_{config.detector},
      policy_{config.policy, std::move(map), lidar, config.seed} {}

void SupervisedLocalizer::bind_filter(ParticleFilter* pf) {
  pf_ = pf;
  if (pf_ != nullptr) pf_->set_recovery_map(map_);
}

void SupervisedLocalizer::initialize(const Pose2& pose) {
  inner_.initialize(pose);
  detector_.reset();
  policy_.reset();
  set_tempering(false);
  blackout_engaged_ = false;
  fallback_pose_ = pose;
  blackout_dist_m_ = 0.0;
  pending_odom_ = Pose2{};
  have_last_estimate_ = false;
  diverged_since_ = -1.0;
  last_alignment_ = -1.0;
  if (g_state_ != nullptr) {
    g_state_->set(static_cast<double>(static_cast<int>(detector_.state())));
  }
}

void SupervisedLocalizer::on_odometry(const OdometryDelta& odom) {
  inner_.on_odometry(odom);
  pending_odom_ = (pending_odom_ * odom.delta).normalized();
  if (blackout_engaged_) {
    fallback_pose_ = (fallback_pose_ * odom.delta).normalized();
    blackout_dist_m_ += std::abs(odom.v) * odom.dt;
    if (g_blackout_drift_ != nullptr) {
      g_blackout_drift_->set(blackout_dist_m_);
    }
  }
}

Pose2 SupervisedLocalizer::pose() const {
  return blackout_engaged_ ? fallback_pose_ : inner_.pose();
}

void SupervisedLocalizer::set_tempering(bool want) {
  if (!config_.policy.tempering || pf_ == nullptr) return;
  if (want == tempering_engaged_) return;
  pf_->set_squash_scale(want ? config_.policy.temper_scale : 1.0);
  tempering_engaged_ = want;
}

void SupervisedLocalizer::emit_event(double t,
                                     telemetry::EventSeverity severity,
                                     const char* code, json::Value data) {
  if (sink_.events == nullptr) return;
  sink_.events->emit(t, severity, telemetry::EventCategory::kRecovery, code,
                     std::move(data));
}

void SupervisedLocalizer::publish(const TransitionCounts& before, double t) {
  const TransitionCounts& now = detector_.transitions();
  auto bump = [](telemetry::Counter* c, std::uint64_t then,
                 std::uint64_t current) {
    if (c != nullptr && current > then) c->add(current - then);
  };
  bump(c_to_suspect_, before.to_suspect, now.to_suspect);
  bump(c_to_diverged_, before.to_diverged, now.to_diverged);
  bump(c_to_recovering_, before.to_recovering, now.to_recovering);
  bump(c_to_healthy_, before.to_healthy, now.to_healthy);
  if (g_state_ != nullptr) {
    g_state_->set(static_cast<double>(static_cast<int>(detector_.state())));
  }
  if (sink_.events != nullptr && now.total() > before.total()) {
    // Journal the detector transition (at most one per update) with the
    // evidence snapshot: which latches were tripped when the machine moved.
    json::Value data = json::Value::object();
    data.set("state", json::Value::string(to_string(detector_.state())));
    data.set("tripped",
             json::Value::number(static_cast<double>(detector_.tripped_signals())));
    data.set("latch_mask",
             json::Value::number(static_cast<double>(detector_.latch_mask())));
    const bool diverged = detector_.state() == HealthState::kDiverged;
    emit_event(t,
               diverged ? telemetry::EventSeverity::kError
                        : telemetry::EventSeverity::kInfo,
               "recovery.transition", std::move(data));
  }
}

void SupervisedLocalizer::apply_recovery(const LaserScan& scan) {
  const RecoveryPolicy::Action action = policy_.plan_recovery(pf_ != nullptr);
  switch (action) {
    case RecoveryPolicy::Action::kNone:
      // Observe-only configuration: stay DIVERGED, touch nothing.
      return;
    case RecoveryPolicy::Action::kInject: {
      telemetry::ScopedSpan span{sink_.trace, "recovery.inject"};
      const double fraction = policy_.injection_fraction();
      Rng rng = policy_.inject_rng();
      pf_->inject_uniform(fraction, rng);
      if (g_inject_fraction_ != nullptr) g_inject_fraction_->set(fraction);
      if (c_injections_ != nullptr) c_injections_->add();
      {
        json::Value data = json::Value::object();
        data.set("fraction", json::Value::number(fraction));
        emit_event(scan.t, telemetry::EventSeverity::kWarn, "recovery.inject",
                   std::move(data));
      }
      break;
    }
    case RecoveryPolicy::Action::kGlobalReloc: {
      telemetry::ScopedSpan span{sink_.trace, "recovery.global_reloc"};
      const std::optional<Pose2> best =
          policy_.global_relocalize(scan, probe_, inner_.pose());
      {
        json::Value data = json::Value::object();
        data.set("accepted", json::Value::boolean(best.has_value()));
        if (best.has_value()) {
          data.set("x", json::Value::number(best->x));
          data.set("y", json::Value::number(best->y));
          data.set("theta", json::Value::number(best->theta));
        }
        emit_event(scan.t, telemetry::EventSeverity::kWarn,
                   "recovery.global_reloc", std::move(data));
      }
      if (best.has_value()) {
        inner_.initialize(*best);
        relocated_this_scan_ = true;
        if (c_global_relocs_ != nullptr) c_global_relocs_->add();
      }
      // A rejected search (nothing beat the current estimate's own score)
      // leaves the filter untouched; the RECOVERING cooldown below paces
      // the next attempt.
      break;
    }
  }
  detector_.note_recovery_action();
}

Pose2 SupervisedLocalizer::on_scan(const LaserScan& scan) {
  // Graceful degradation: a (near-)returnless scan carries no evidence.
  // Hold the last estimate under dead reckoning instead of feeding the
  // filter garbage, and suspend the detector's judgement.
  if (config_.policy.blackout_fallback &&
      probe_.valid_fraction(scan) < config_.policy.blackout_valid_fraction) {
    telemetry::ScopedSpan span{sink_.trace, "recovery.blackout"};
    if (!blackout_engaged_) {
      blackout_engaged_ = true;
      fallback_pose_ = inner_.pose();
      blackout_dist_m_ = 0.0;
      if (c_blackouts_ != nullptr) c_blackouts_->add();
      emit_event(scan.t, telemetry::EventSeverity::kWarn,
                 "recovery.blackout_enter", json::Value::object());
    }
    const TransitionCounts before = detector_.transitions();
    DetectorInputs in;
    in.blackout = true;
    detector_.update(in);
    publish(before, scan.t);
    return fallback_pose_;
  }
  if (blackout_engaged_) {
    // First live scan after the blackout: the inner filter kept integrating
    // odometry while blind, so hand judgement of the residual drift back to
    // the detector on the normal path below.
    blackout_engaged_ = false;
    {
      json::Value data = json::Value::object();
      data.set("drift_m", json::Value::number(blackout_dist_m_));
      emit_event(scan.t, telemetry::EventSeverity::kInfo,
                 "recovery.blackout_exit", std::move(data));
    }
    blackout_dist_m_ = 0.0;
    if (g_blackout_drift_ != nullptr) g_blackout_drift_->set(0.0);
  }

  const Pose2 predicted = inner_.pose();
  const Pose2 estimate = inner_.on_scan(scan);

  const double align = probe_.score(estimate, scan);
  policy_.observe_alignment(align);
  last_alignment_ = align;

  DetectorInputs in;
  in.scan_alignment = align;
  if (pf_ != nullptr && pf_->current_particles() > 0) {
    in.ess_fraction = pf_->effective_sample_size() /
                      static_cast<double>(pf_->current_particles());
  }
  in.pose_jump_m =
      std::hypot(estimate.x - predicted.x, estimate.y - predicted.y);
  if (have_last_estimate_) {
    const Pose2 est_delta = last_estimate_.between(estimate);
    in.odom_disagreement_m = std::hypot(est_delta.x - pending_odom_.x,
                                        est_delta.y - pending_odom_.y);
  }
  pending_odom_ = Pose2{};
  last_estimate_ = estimate;
  have_last_estimate_ = true;

  const TransitionCounts before = detector_.transitions();
  relocated_this_scan_ = false;
  HealthState state = detector_.update(in);

  // Temper the measurement model whenever the estimate is under suspicion:
  // don't sharpen a posterior that may be concentrating on the wrong mode.
  set_tempering(state != HealthState::kHealthy);

  if (state == HealthState::kDiverged) {
    if (diverged_since_ < 0.0) diverged_since_ = scan.t;
    apply_recovery(scan);
    state = detector_.state();
  }
  if (state == HealthState::kHealthy) {
    policy_.note_healthy();
    if (diverged_since_ >= 0.0) {
      if (h_time_to_reloc_ != nullptr) {
        h_time_to_reloc_->record(scan.t - diverged_since_);
      }
      diverged_since_ = -1.0;
    }
  }
  publish(before, scan.t);
  // After a relocalization the inner estimate moved; report the repaired
  // pose. On every other path return the inner estimate verbatim so an
  // all-policies-off supervisor is a bitwise pass-through.
  return relocated_this_scan_ ? inner_.pose() : estimate;
}

void SupervisedLocalizer::set_telemetry(const telemetry::Sink& sink) {
  inner_.set_telemetry(sink);
  sink_ = sink;
  if (sink.metrics == nullptr) {
    g_state_ = g_inject_fraction_ = g_blackout_drift_ = nullptr;
    c_to_suspect_ = c_to_diverged_ = c_to_recovering_ = c_to_healthy_ =
        c_injections_ = c_global_relocs_ = c_blackouts_ = nullptr;
    h_time_to_reloc_ = nullptr;
    return;
  }
  telemetry::MetricsRegistry& m = *sink.metrics;
  g_state_ = &m.gauge("recovery.state");
  g_inject_fraction_ = &m.gauge("recovery.injection_fraction");
  g_blackout_drift_ = &m.gauge("recovery.blackout_drift_m");
  c_to_suspect_ = &m.counter("recovery.to_suspect");
  c_to_diverged_ = &m.counter("recovery.to_diverged");
  c_to_recovering_ = &m.counter("recovery.to_recovering");
  c_to_healthy_ = &m.counter("recovery.to_healthy");
  c_injections_ = &m.counter("recovery.injections");
  c_global_relocs_ = &m.counter("recovery.global_relocs");
  c_blackouts_ = &m.counter("recovery.blackouts");
  h_time_to_reloc_ = &m.histogram("recovery.time_to_relocalize_s");
  g_state_->set(static_cast<double>(static_cast<int>(detector_.state())));
}

}  // namespace srl::recovery
