#pragma once

/// \file recovery_policy.hpp
/// \brief The recovery vocabulary a SupervisedLocalizer can apply once the
/// DivergenceDetector confirms divergence, plus the scan-alignment probe
/// both of them score poses with.
///
/// Policies, in escalation order:
///
///  1. **Measurement tempering** (while SUSPECT): scale the particle
///     filter's likelihood squash up so a possibly-wrong posterior is not
///     sharpened further while the judgement is pending.
///  2. **Augmented-MCL re-injection** (first DIVERGED entries): Thrun's
///     w_slow/w_fast likelihood averages give an injection fraction
///     max(0, 1 - w_fast / w_slow); that fraction of the cloud is replaced
///     by uniform free-space poses (ParticleFilter::inject_uniform).
///  3. **Global relocalization** (relapse after `escalate_after` injection
///     rounds): sweep a candidate lattice over map free space, score each
///     pose with the alignment probe against the live scan, refine the
///     best few with the correlative scan matcher over a likelihood field,
///     and re-initialize the localizer on the winner — but only when the
///     winner decisively out-scores the current estimate.
///
/// Every stochastic draw comes from `Rng::substream` keyed by a pinned
/// RecoveryStream tag and the per-kind action ordinal, so recovery is a
/// pure function of (seed, event sequence) — bitwise identical at any
/// thread count, exactly like the filter it repairs.

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "gridmap/occupancy_grid.hpp"
#include "range/range_method.hpp"
#include "sensor/lidar.hpp"
#include "slam/probability_grid.hpp"
#include "slam/scan_matching.hpp"

namespace srl::recovery {

/// Substream key schedule of the recovery layer (see Rng::substream and the
/// PfStream precedent): action `n` of a kind draws from
/// `substream(kRecoveryStream<Kind>, n)`. Tags are pinned — append new
/// streams, never renumber.
enum RecoveryStream : std::uint64_t {
  kRecoveryStreamInject = 1,
  /// Reserved: early designs scattered relocalization candidates randomly;
  /// the lattice sweep draws nothing, but the tag stays pinned.
  kRecoveryStreamScatter = 2,
};

/// Deterministic expected-vs-measured range probe: the fraction of K
/// subsampled beams whose measured range agrees with the range an exact
/// ray cast predicts from a candidate pose. Cheap enough to run every scan
/// (K beams, not K x N particles) and map-grounded, so it keeps working
/// when the filter's own health signals are the thing in question.
class AlignmentProbe {
 public:
  AlignmentProbe(std::shared_ptr<const OccupancyGrid> map, LidarConfig lidar,
                 int beams = 40, double tolerance_m = 0.15);

  /// Fraction of probed valid beams within tolerance at `pose`, in [0, 1];
  /// -1 when fewer than `kMinValidBeams` returns are valid (blackout /
  /// heavy dropout — no evidence either way).
  double score(const Pose2& pose, const LaserScan& scan) const;

  /// Fraction of scan returns inside (min_range, max_range), in [0, 1].
  double valid_fraction(const LaserScan& scan) const;

  static constexpr int kMinValidBeams = 8;

 private:
  std::shared_ptr<const RangeMethod> caster_;
  LidarConfig lidar_;
  std::vector<int> beam_indices_;
  std::vector<double> beam_angles_;
  double tolerance_m_;
  // Per-call scratch (the probe is used single-threaded per instance).
  mutable std::vector<Pose2> rays_;
  mutable std::vector<float> expected_;
};

struct RecoveryPolicyConfig {
  /// Augmented-MCL uniform re-injection (Thrun et al. 2005, table 8.3).
  bool amcl_injection = true;
  double amcl_alpha_slow = 0.05;
  double amcl_alpha_fast = 0.5;
  /// Injection fraction clamp: even a collapsed w_fast/w_slow keeps some of
  /// the cloud (the filter may be right after all), and even a marginal
  /// ratio injects enough particles to matter.
  double min_injection_fraction = 0.10;
  double max_injection_fraction = 0.90;

  /// Global relocalization (lattice sweep + probe-score + scan-match
  /// refine).
  bool global_reloc = true;
  /// Candidate-lattice spacing over map free space. Must keep every
  /// reachable pose within the matcher's linear capture window of some
  /// lattice point (0.5 m spacing -> <= 0.36 m diagonal offset, inside the
  /// 0.40 m refinement window) — a random scatter gives no such guarantee,
  /// and on a corridor track missing the true pose's basin means an aliased
  /// look-alike wins.
  double reloc_grid_m = 0.5;
  /// Headings probed per lattice position. Must be dense enough that the
  /// best fan heading lands inside the matcher's angular window (16 ->
  /// <= 11.25 deg off, within the 0.20 rad refinement window).
  int reloc_headings = 16;
  /// DIVERGED entries answered with injection before escalating to global
  /// relocalization (0 = relocalize immediately).
  int escalate_after = 1;
  bool reloc_scan_match = true;  ///< correlative refinement of the shortlist
  /// Shortlist size: the best-scoring scatter candidates are each refined
  /// with the matcher and re-scored (aliased corridors mean the raw scatter
  /// winner is often wrong; refinement separates the true pose from its
  /// look-alikes).
  int reloc_refine_top = 6;
  /// Verification gate: a relocalization is only applied when its refined
  /// score beats the current estimate's score by this margin. A failed
  /// search must never destroy the state it was meant to repair.
  double reloc_accept_margin = 0.05;

  /// Measurement-weight tempering while SUSPECT or worse.
  bool tempering = true;
  double temper_scale = 2.0;  ///< squash multiplier (1.0 = off)

  /// Dead-reckoning fallback during full sensor blackout: hold the last
  /// estimate, integrate odometry, and report inflated uncertainty instead
  /// of feeding returnless scans to the filter.
  bool blackout_fallback = true;
  /// A scan with fewer valid returns than this fraction is a blackout.
  double blackout_valid_fraction = 0.05;
  /// Covariance-inflation proxy: position sigma grows by this much per
  /// dead-reckoned meter (recovery.blackout_drift_m gauge).
  double blackout_inflation_per_m = 0.15;

  /// Everything off: the supervisor observes (detector, telemetry) but
  /// never touches the filter — bitwise no-op on estimates.
  static RecoveryPolicyConfig none();
};

/// Stateful policy engine: tracks the w_slow/w_fast averages, the
/// escalation ladder, and the per-kind action ordinals feeding the
/// substream schedule. The SupervisedLocalizer owns one and asks it what to
/// do on each confirmed divergence.
class RecoveryPolicy {
 public:
  RecoveryPolicy(RecoveryPolicyConfig config,
                 std::shared_ptr<const OccupancyGrid> map, LidarConfig lidar,
                 std::uint64_t seed);

  /// Feed this update's alignment score (< 0 = unavailable, ignored) into
  /// the slow/fast averages.
  void observe_alignment(double score);
  /// max(0, 1 - w_fast / w_slow), clamped to the config bounds.
  double injection_fraction() const;
  double w_slow() const { return w_slow_; }
  double w_fast() const { return w_fast_; }

  enum class Action { kNone, kInject, kGlobalReloc };
  /// Decide the response to a fresh DIVERGED entry. `has_filter` reports
  /// whether a particle cloud is bound (injection needs one; without it the
  /// ladder skips straight to relocalization).
  Action plan_recovery(bool has_filter);
  /// The detector returned to HEALTHY: reset the escalation ladder.
  void note_healthy();

  /// Substream for the next injection event (advances the ordinal).
  Rng inject_rng();
  /// Sweep a `reloc_grid_m` lattice x `reloc_headings` fan over map free
  /// space, probe-score every candidate against `scan`, refine the
  /// `reloc_refine_top` best with the correlative matcher, and return the
  /// best refined pose — but only if it beats `current`'s own score by
  /// `reloc_accept_margin`. nullopt when no candidate qualifies (the search
  /// found nothing better than where the estimate already is) or the probe
  /// has no valid evidence. Fully deterministic: the lattice is fixed by
  /// the map and config, no RNG draw involved.
  std::optional<Pose2> global_relocalize(const LaserScan& scan,
                                         const AlignmentProbe& probe,
                                         const Pose2& current);

  void reset();

  const RecoveryPolicyConfig& config() const { return config_; }
  std::uint64_t injections() const { return inject_ordinal_; }
  std::uint64_t relocalizations() const { return scatter_ordinal_; }
  int diverged_entries() const { return diverged_entries_; }

 private:
  RecoveryPolicyConfig config_;
  std::shared_ptr<const OccupancyGrid> map_;
  LidarConfig lidar_;
  Rng base_;
  double w_slow_{0.0};
  double w_fast_{0.0};
  std::uint64_t inject_ordinal_{0};
  std::uint64_t scatter_ordinal_{0};
  int diverged_entries_{0};
  /// Likelihood field + matcher for refinement, built on first use.
  mutable std::unique_ptr<ProbabilityGrid> field_;
};

}  // namespace srl::recovery
