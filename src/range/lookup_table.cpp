#include "range/lookup_table.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

#include "common/angles.hpp"
#include "range/bresenham.hpp"

namespace srl {

RangeLut::RangeLut(std::shared_ptr<const OccupancyGrid> map, double max_range,
                   int theta_bins, int stride)
    : RangeMethod{std::move(map), max_range},
      theta_bins_{std::max(theta_bins, 1)},
      stride_{std::max(stride, 1)},
      quantum_{max_range / 65535.0} {
  const OccupancyGrid& grid = *map_;
  cells_x_ = (grid.width() + stride_ - 1) / stride_;
  cells_y_ = (grid.height() + stride_ - 1) / stride_;
  table_.assign(static_cast<std::size_t>(cells_x_) * cells_y_ * theta_bins_, 0);

  const BresenhamCaster exact{map_, max_range_};
  const auto fill_rows = [&](int y_begin, int y_end) {
    for (int cy = y_begin; cy < y_end; ++cy) {
      const int iy = cy * stride_;
      for (int cx = 0; cx < cells_x_; ++cx) {
        const int ix = cx * stride_;
        if (grid.blocks_ray(ix, iy)) continue;  // stays 0
        const Vec2 p = grid.grid_to_world(ix, iy);
        for (int bt = 0; bt < theta_bins_; ++bt) {
          const double theta = kTwoPi * bt / theta_bins_;
          const float r = exact.range({p.x, p.y, theta});
          const auto q = static_cast<std::uint16_t>(
              std::clamp(std::lround(r / quantum_), 0L, 65535L));
          table_[index(cx, cy, bt)] = q;
        }
      }
    }
  };

  const unsigned hw = std::max(1U, std::thread::hardware_concurrency());
  const int n_threads = static_cast<int>(std::min<unsigned>(hw, 16));
  if (n_threads <= 1 || cells_y_ < 2 * n_threads) {
    fill_rows(0, cells_y_);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(n_threads));
    const int rows_per = (cells_y_ + n_threads - 1) / n_threads;
    for (int t = 0; t < n_threads; ++t) {
      const int y0 = t * rows_per;
      const int y1 = std::min(cells_y_, y0 + rows_per);
      if (y0 >= y1) break;
      workers.emplace_back(fill_rows, y0, y1);
    }
    for (auto& w : workers) w.join();
  }
}

float RangeLut::range(const Pose2& ray) const {
  SYNPF_EXPECTS_MSG(valid_ray_pose(ray), "lut query pose not finite");
  note_query();
  const OccupancyGrid& grid = *map_;
  const GridIndex g = grid.world_to_grid({ray.x, ray.y});
  if (grid.blocks_ray(g.ix, g.iy)) return 0.0F;

  const int cx = std::clamp(g.ix / stride_, 0, cells_x_ - 1);
  const int cy = std::clamp(g.iy / stride_, 0, cells_y_ - 1);
  // Angles arriving here are pose headings plus beam offsets — wrap_into is
  // a single add/subtract for those, and stays bounded for any input.
  const double phi = wrap_into(ray.theta, kTwoPi);
  int bt = static_cast<int>(phi * theta_bins_ / kTwoPi + 0.5);
  if (bt >= theta_bins_) bt -= theta_bins_;
  return static_cast<float>(table_[index(cx, cy, bt)] * quantum_);
}

}  // namespace srl
