#include "range/lookup_table.hpp"

#include <algorithm>
#include <cmath>
#include <thread>

#include "common/angles.hpp"
#include "range/bresenham.hpp"

#if defined(SRL_SIMD_X86_AVX2)
#include <immintrin.h>
#endif

namespace srl {

RangeLut::RangeLut(std::shared_ptr<const OccupancyGrid> map, double max_range,
                   int theta_bins, int stride)
    : RangeMethod{std::move(map), max_range},
      theta_bins_{std::max(theta_bins, 1)},
      stride_{std::max(stride, 1)},
      quantum_{max_range / 65535.0} {
  const OccupancyGrid& grid = *map_;
  cells_x_ = (grid.width() + stride_ - 1) / stride_;
  cells_y_ = (grid.height() + stride_ - 1) / stride_;
  // +1 guard entry: the AVX2 path gathers each uint16 with a 32-bit load
  // (low half masked out), so the last real entry needs two readable bytes
  // after it. The guard is never indexed.
  table_.assign(
      static_cast<std::size_t>(cells_x_) * cells_y_ * theta_bins_ + 1, 0);

  const BresenhamCaster exact{map_, max_range_};
  const auto fill_rows = [&](int y_begin, int y_end) {
    for (int cy = y_begin; cy < y_end; ++cy) {
      const int iy = cy * stride_;
      for (int cx = 0; cx < cells_x_; ++cx) {
        const int ix = cx * stride_;
        if (grid.blocks_ray(ix, iy)) continue;  // stays 0
        const Vec2 p = grid.grid_to_world(ix, iy);
        for (int bt = 0; bt < theta_bins_; ++bt) {
          const double theta = kTwoPi * bt / theta_bins_;
          const float r = exact.range({p.x, p.y, theta});
          const auto q = static_cast<std::uint16_t>(
              std::clamp(std::lround(r / quantum_), 0L, 65535L));
          table_[index(cx, cy, bt)] = q;
        }
      }
    }
  };

  const unsigned hw = std::max(1U, std::thread::hardware_concurrency());
  const int n_threads = static_cast<int>(std::min<unsigned>(hw, 16));
  if (n_threads <= 1 || cells_y_ < 2 * n_threads) {
    fill_rows(0, cells_y_);
  } else {
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(n_threads));
    const int rows_per = (cells_y_ + n_threads - 1) / n_threads;
    for (int t = 0; t < n_threads; ++t) {
      const int y0 = t * rows_per;
      const int y1 = std::min(cells_y_, y0 + rows_per);
      if (y0 >= y1) break;
      workers.emplace_back(fill_rows, y0, y1);
    }
    for (auto& w : workers) w.join();
  }
}

float RangeLut::range(const Pose2& ray) const {
  SYNPF_EXPECTS_MSG(valid_ray_pose(ray), "lut query pose not finite");
  note_query();
  const OccupancyGrid& grid = *map_;
  const GridIndex g = grid.world_to_grid({ray.x, ray.y});
  if (grid.blocks_ray(g.ix, g.iy)) return 0.0F;

  const int cx = std::clamp(g.ix / stride_, 0, cells_x_ - 1);
  const int cy = std::clamp(g.iy / stride_, 0, cells_y_ - 1);
  // Angles arriving here are pose headings plus beam offsets — wrap_into is
  // a single add/subtract for those, and stays bounded for any input.
  const double phi = wrap_into(ray.theta, kTwoPi);
  int bt = static_cast<int>(phi * theta_bins_ / kTwoPi + 0.5);
  if (bt >= theta_bins_) bt -= theta_bins_;
  return static_cast<float>(table_[index(cx, cy, bt)] * quantum_);
}

void RangeLut::ranges_from(const Pose2& sensor,
                           std::span<const double> beam_angles,
                           std::span<float> out) const {
  SYNPF_EXPECTS_MSG(valid_ray_pose(sensor), "lut query pose not finite");
  telemetry::StageTimer timer{batch_ms_};
  note_queries(beam_angles.size());
  const OccupancyGrid& grid = *map_;
  const GridIndex g = grid.world_to_grid({sensor.x, sensor.y});
  if (grid.blocks_ray(g.ix, g.iy)) {
    for (std::size_t j = 0; j < out.size(); ++j) out[j] = 0.0F;
    timer.stop();
    return;
  }
  const int cx = std::clamp(g.ix / stride_, 0, cells_x_ - 1);
  const int cy = std::clamp(g.iy / stride_, 0, cells_y_ - 1);
  const std::size_t base = index(cx, cy, 0);
#if defined(SRL_SIMD_X86_AVX2)
  if (simd::active() == simd::Backend::kAvx2) {
    ranges_from_avx2(base, sensor.theta, beam_angles, out);
    timer.stop();
    return;
  }
#endif
  for (std::size_t j = 0; j < beam_angles.size(); ++j) {
    // Exactly range()'s tail on theta = sensor.theta + beam_angles[j].
    const double phi = wrap_into(sensor.theta + beam_angles[j], kTwoPi);
    int bt = static_cast<int>(phi * theta_bins_ / kTwoPi + 0.5);
    if (bt >= theta_bins_) bt -= theta_bins_;
    out[j] = static_cast<float>(table_[base + static_cast<std::size_t>(bt)] *
                                quantum_);
  }
  timer.stop();
}

#if defined(SRL_SIMD_X86_AVX2)
__attribute__((target("avx2"))) void RangeLut::ranges_from_avx2(
    std::size_t base, double theta0, std::span<const double> beam_angles,
    std::span<float> out) const {
  // Pointer-offset the row so the 32-bit gather indices only need to span
  // theta_bins_ (the table itself can exceed the int32 index range).
  const std::uint16_t* row = table_.data() + base;
  const auto* row32 = reinterpret_cast<const int*>(row);
  const std::size_t k = beam_angles.size();

  const __m256d v_theta0 = _mm256_set1_pd(theta0);
  const __m256d v_zero = _mm256_setzero_pd();
  const __m256d v_period = _mm256_set1_pd(kTwoPi);
  const __m256d v_neg_period = _mm256_set1_pd(-kTwoPi);
  const __m256d v_two_period = _mm256_set1_pd(2.0 * kTwoPi);
  const __m256d v_half = _mm256_set1_pd(0.5);
  const __m256d v_bins = _mm256_set1_pd(static_cast<double>(theta_bins_));
  const __m128i v_bins_i = _mm_set1_epi32(theta_bins_);
  const __m128i v_bins_m1 = _mm_set1_epi32(theta_bins_ - 1);
  const __m256d v_quantum = _mm256_set1_pd(quantum_);
  const __m128i v_mask16 = _mm_set1_epi32(0xFFFF);

  const auto scalar_beam = [&](std::size_t j) {
    const double phi = wrap_into(theta0 + beam_angles[j], kTwoPi);
    int bt = static_cast<int>(phi * theta_bins_ / kTwoPi + 0.5);
    if (bt >= theta_bins_) bt -= theta_bins_;
    out[j] = static_cast<float>(row[bt] * quantum_);
  };

  std::size_t j = 0;
  for (; j + 4 <= k; j += 4) {
    const __m256d a = _mm256_add_pd(v_theta0,
                                    _mm256_loadu_pd(beam_angles.data() + j));
    // wrap_into(a, 2pi), vectorized over its three branch-free regions.
    // Lanes outside [-2pi, 4pi) would need the scalar fmod tail — punt the
    // whole group to the scalar path (headings plus beam offsets are a few
    // radians; this is the NaN/huge-angle escape hatch, not the hot case).
    const __m256d in_lo = _mm256_cmp_pd(a, v_neg_period, _CMP_GE_OQ);
    const __m256d in_hi = _mm256_cmp_pd(a, v_two_period, _CMP_LT_OQ);
    if (_mm256_movemask_pd(_mm256_and_pd(in_lo, in_hi)) != 0xF) {
      for (std::size_t l = 0; l < 4; ++l) scalar_beam(j + l);
      continue;
    }
    const __m256d is_neg = _mm256_cmp_pd(a, v_zero, _CMP_LT_OQ);
    const __m256d is_high = _mm256_cmp_pd(a, v_period, _CMP_GE_OQ);
    // Same single add / subtract as the scalar branches (unfused).
    const __m256d plus = _mm256_add_pd(a, v_period);
    // "-eps + period can round up to exactly period" guard: keep the sum
    // only while it is < period, else 0.0 (bitwise AND with the mask).
    const __m256d plus_ok = _mm256_cmp_pd(plus, v_period, _CMP_LT_OQ);
    const __m256d plus_guarded = _mm256_and_pd(plus, plus_ok);
    const __m256d minus = _mm256_sub_pd(a, v_period);
    __m256d phi = _mm256_blendv_pd(a, plus_guarded, is_neg);
    phi = _mm256_blendv_pd(phi, minus, is_high);
    // range()'s bin math, same operation order: mul, div, add, truncate.
    const __m256d t =
        _mm256_add_pd(_mm256_div_pd(_mm256_mul_pd(phi, v_bins), v_period),
                      v_half);
    __m128i bt = _mm256_cvttpd_epi32(t);
    const __m128i wrap = _mm_cmpgt_epi32(bt, v_bins_m1);
    bt = _mm_sub_epi32(bt, _mm_and_si128(wrap, v_bins_i));
    // 32-bit gather of uint16 entries (scale 2), low half masked; the +1
    // guard entry in table_ keeps the last load in bounds.
    const __m128i raw = _mm_i32gather_epi32(row32, bt, 2);
    const __m128i q = _mm_and_si128(raw, v_mask16);
    const __m256d meters = _mm256_mul_pd(_mm256_cvtepi32_pd(q), v_quantum);
    _mm_storeu_ps(out.data() + j, _mm256_cvtpd_ps(meters));
  }
  for (; j < k; ++j) scalar_beam(j);
}
#endif

}  // namespace srl
