#pragma once

/// \file cddt.hpp
/// \brief Compressed Directional Distance Transform (Walsh & Karaman, ICRA
/// 2018) — the core rangelibc data structure.
///
/// The angle space is discretized into M bins over [0, pi) (a ray at theta
/// and theta + pi travel the same line in opposite directions). For each bin
/// the map is conceptually rotated so rays run along +u; blocking cells are
/// projected to (u, v) and bucketed into bands of width one cell along v.
/// Each band keeps a sorted, deduplicated ("compressed") list of obstacle u
/// coordinates, so a query is: locate band from v, binary-search the first
/// obstacle ahead of u. Query cost is O(log band size); the approximation
/// error is bounded by the angular bin width and the band discretization.

#include <span>
#include <vector>

#include "range/range_method.hpp"

namespace srl {

class Cddt final : public RangeMethod {
 public:
  Cddt(std::shared_ptr<const OccupancyGrid> map, double max_range,
       int theta_bins = 108);

  float range(const Pose2& ray) const override;
  std::string name() const override { return "cddt"; }

  /// Per-particle batch: hoists the shared grid lookup / occupancy test
  /// out of the beam loop; per-beam results are bit-identical to range().
  void ranges_from(const Pose2& sensor, std::span<const double> beam_angles,
                   std::span<float> out) const override;

  int theta_bins() const { return static_cast<int>(bins_.size()); }
  /// Total stored obstacle projections (memory diagnostic).
  std::size_t total_entries() const;

 private:
  struct ThetaBin {
    double cos_t;
    double sin_t;
    double angle;                            ///< bin axis angle kPi * b / m
    double v_min;                            ///< band-0 offset along v
    std::vector<std::vector<float>> bands;   ///< sorted obstacle u per band
  };

  /// range() after the shared precondition / occupancy checks: bin
  /// selection, direction test, band search for the ray (x, y, theta).
  float range_line(double x, double y, double theta) const;

  std::vector<ThetaBin> bins_;
  double band_width_;
};

}  // namespace srl
