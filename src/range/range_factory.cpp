#include "range/bresenham.hpp"
#include "range/cddt.hpp"
#include "range/lookup_table.hpp"
#include "range/range_method.hpp"
#include "range/ray_marching.hpp"

namespace srl {

std::string to_string(RangeMethodKind kind) {
  switch (kind) {
    case RangeMethodKind::kBresenham:
      return "bresenham";
    case RangeMethodKind::kRayMarching:
      return "ray_marching";
    case RangeMethodKind::kCddt:
      return "cddt";
    case RangeMethodKind::kLut:
      return "lut";
  }
  return "unknown";
}

std::unique_ptr<RangeMethod> make_range_method(
    RangeMethodKind kind, std::shared_ptr<const OccupancyGrid> map,
    const RangeMethodOptions& options) {
  switch (kind) {
    case RangeMethodKind::kBresenham:
      return std::make_unique<BresenhamCaster>(std::move(map),
                                               options.max_range);
    case RangeMethodKind::kRayMarching:
      return std::make_unique<RayMarching>(std::move(map), options.max_range);
    case RangeMethodKind::kCddt:
      return std::make_unique<Cddt>(std::move(map), options.max_range,
                                    options.cddt_theta_bins);
    case RangeMethodKind::kLut:
      return std::make_unique<RangeLut>(std::move(map), options.max_range,
                                        options.lut_theta_bins,
                                        options.lut_stride);
  }
  return nullptr;
}

}  // namespace srl
