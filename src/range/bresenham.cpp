#include "range/bresenham.hpp"

#include <cmath>
#include <limits>

namespace srl {

float BresenhamCaster::range(const Pose2& ray) const {
  SYNPF_EXPECTS_MSG(valid_ray_pose(ray), "bresenham query pose not finite");
  note_query();
  const OccupancyGrid& grid = *map_;
  const double res = grid.resolution();

  GridIndex cell = grid.world_to_grid({ray.x, ray.y});
  if (grid.blocks_ray(cell.ix, cell.iy)) return 0.0F;

  const double dx = std::cos(ray.theta);
  const double dy = std::sin(ray.theta);

  // Amanatides–Woo: track the parametric distance t at which the ray crosses
  // the next vertical (tmax_x) and horizontal (tmax_y) cell boundary.
  const int step_x = dx > 0.0 ? 1 : (dx < 0.0 ? -1 : 0);
  const int step_y = dy > 0.0 ? 1 : (dy < 0.0 ? -1 : 0);

  const double inf = std::numeric_limits<double>::infinity();
  const double tdelta_x = step_x != 0 ? res / std::abs(dx) : inf;
  const double tdelta_y = step_y != 0 ? res / std::abs(dy) : inf;

  // Distance to the first boundary crossing in each axis.
  const double cell_min_x = grid.origin().x + cell.ix * res;
  const double cell_min_y = grid.origin().y + cell.iy * res;
  double tmax_x;
  if (step_x > 0) {
    tmax_x = (cell_min_x + res - ray.x) / dx;
  } else if (step_x < 0) {
    tmax_x = (cell_min_x - ray.x) / dx;
  } else {
    tmax_x = inf;
  }
  double tmax_y;
  if (step_y > 0) {
    tmax_y = (cell_min_y + res - ray.y) / dy;
  } else if (step_y < 0) {
    tmax_y = (cell_min_y - ray.y) / dy;
  } else {
    tmax_y = inf;
  }

  double t = 0.0;
  while (t <= max_range_) {
    if (tmax_x < tmax_y) {
      t = tmax_x;
      tmax_x += tdelta_x;
      cell.ix += step_x;
    } else {
      t = tmax_y;
      tmax_y += tdelta_y;
      cell.iy += step_y;
    }
    if (t > max_range_) break;
    if (grid.blocks_ray(cell.ix, cell.iy)) return static_cast<float>(t);
    if (!grid.in_bounds(cell.ix, cell.iy)) break;  // left the map
  }
  return static_cast<float>(max_range_);
}

}  // namespace srl
