#pragma once

/// \file ray_marching.hpp
/// \brief Sphere-tracing ray cast over the Euclidean distance transform.
/// From the current point, the nearest obstacle is `d` meters away in *any*
/// direction, so the ray can safely advance `d` meters. Converges to the
/// obstacle surface in a handful of steps in corridor-like maps; cost is
/// O(steps) with steps ~ log of range in open space.

#include "gridmap/distance_transform.hpp"
#include "range/range_method.hpp"

namespace srl {

class RayMarching final : public RangeMethod {
 public:
  RayMarching(std::shared_ptr<const OccupancyGrid> map, double max_range)
      : RangeMethod{std::move(map), max_range},
        field_{distance_transform(*map_)},
        epsilon_{0.5 * map_->resolution()} {}

  float range(const Pose2& ray) const override;
  std::string name() const override { return "ray_marching"; }

  const DistanceField& field() const { return field_; }

 private:
  DistanceField field_;
  double epsilon_;  ///< convergence threshold, meters
};

}  // namespace srl
