#pragma once

/// \file lookup_table.hpp
/// \brief Precomputed 3-D range lookup table — the rangelibc mode the paper
/// runs on the GPU-less Intel NUC. Ranges are precomputed with the exact
/// caster for every (x, y, theta) on a discretized grid and quantized to
/// uint16, giving constant-time queries at the cost of memory
/// (width/stride * height/stride * theta_bins * 2 bytes).

#include <cstdint>
#include <span>
#include <vector>

#include "common/simd.hpp"
#include "range/range_method.hpp"

namespace srl {

class RangeLut final : public RangeMethod {
 public:
  /// Builds the table by exhaustive exact ray casting (parallelized over
  /// rows). `stride` samples every Nth cell in x and y; queries snap to the
  /// nearest sample. `theta_bins` discretizes the full [0, 2pi) circle.
  RangeLut(std::shared_ptr<const OccupancyGrid> map, double max_range,
           int theta_bins = 120, int stride = 1);

  float range(const Pose2& ray) const override;
  std::string name() const override { return "lut"; }

  /// Per-particle batch: the grid lookup and occupancy test are shared by
  /// all beams of one origin, so they hoist out of the beam loop; the
  /// per-beam bin math and table gather vectorize under AVX2 (4 beams per
  /// iteration) with bit-identical results to range() per beam.
  void ranges_from(const Pose2& sensor, std::span<const double> beam_angles,
                   std::span<float> out) const override;

  /// Payload size (the slab carries one extra guard entry so 32-bit SIMD
  /// gathers of the final uint16 never read past the allocation).
  std::size_t memory_bytes() const {
    return (table_.size() - 1) * sizeof(std::uint16_t);
  }
  int theta_bins() const { return theta_bins_; }

 private:
  std::size_t index(int cx, int cy, int bt) const {
    return (static_cast<std::size_t>(cy) * cells_x_ + cx) * theta_bins_ + bt;
  }

#if defined(SRL_SIMD_X86_AVX2)
  /// AVX2 tail of ranges_from(): bins and gathers 4 beams at a time from
  /// the row slab at `base`. Bitwise identical to the scalar loop.
  void ranges_from_avx2(std::size_t base, double theta0,
                        std::span<const double> beam_angles,
                        std::span<float> out) const;
#endif

  int theta_bins_;
  int stride_;
  int cells_x_{0};
  int cells_y_{0};
  double quantum_;  ///< meters per uint16 step
  std::vector<std::uint16_t> table_;
};

}  // namespace srl
