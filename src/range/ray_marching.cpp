#include "range/ray_marching.hpp"

#include <cmath>

namespace srl {

float RayMarching::range(const Pose2& ray) const {
  SYNPF_EXPECTS_MSG(valid_ray_pose(ray), "ray-marching query pose not finite");
  note_query();
  const double dx = std::cos(ray.theta);
  const double dy = std::sin(ray.theta);
  double x = ray.x;
  double y = ray.y;
  double t = 0.0;

  // Bounded iterations: each step is at least epsilon once near a surface,
  // so max_range / epsilon is a hard ceiling.
  const int max_steps =
      static_cast<int>(std::ceil(max_range_ / epsilon_)) + 2;
  for (int i = 0; i < max_steps && t < max_range_; ++i) {
    const float d = field_.at_world({x, y});
    if (d <= static_cast<float>(epsilon_)) return static_cast<float>(t);
    t += d;
    x += d * dx;
    y += d * dy;
  }
  return static_cast<float>(max_range_);
}

}  // namespace srl
