#pragma once

/// \file range_method.hpp
/// \brief Interface for 2-D ray-cast range queries against an occupancy grid
/// — our reproduction of the rangelibc library (Walsh & Karaman, "CDDT: Fast
/// Approximate 2D Ray Casting for Accelerated Localization", ICRA 2018).
///
/// A range query asks: standing at world (x, y) looking along world angle
/// theta, how far to the first ray-blocking cell? All methods clamp results
/// to a configured maximum range (the simulated LiDAR's max range).

#include <memory>
#include <span>
#include <string>

#include "common/contracts.hpp"
#include "common/types.hpp"
#include "gridmap/occupancy_grid.hpp"
#include "telemetry/telemetry.hpp"

namespace srl {

/// Shared precondition of every range backend: query poses must be finite.
/// Out-of-map poses are legal (they read the border as occupied and return
/// 0), but NaN/inf coordinates indicate a diverged caller — checked builds
/// flag them at the query site via `SYNPF_EXPECTS(valid_ray_pose(ray))`.
inline bool valid_ray_pose(const Pose2& ray) { return finite(ray); }

/// Abstract range-query backend. Implementations are immutable after
/// construction and safe for concurrent queries.
class RangeMethod {
 public:
  RangeMethod(std::shared_ptr<const OccupancyGrid> map, double max_range)
      : map_{std::move(map)}, max_range_{max_range} {}
  virtual ~RangeMethod() = default;

  RangeMethod(const RangeMethod&) = delete;
  RangeMethod& operator=(const RangeMethod&) = delete;

  /// Distance (meters) from (ray.x, ray.y) along ray.theta to the first
  /// blocking cell, clamped to [0, max_range]. Queries from inside a
  /// blocking cell return 0.
  virtual float range(const Pose2& ray) const = 0;

  /// Human-readable method name ("bresenham", "ray_marching", "cddt", "lut").
  virtual std::string name() const = 0;

  /// Batch query; default loops over range(). `out.size()` must equal
  /// `rays.size()`.
  virtual void ranges(std::span<const Pose2> rays, std::span<float> out) const {
    telemetry::StageTimer timer{batch_ms_};
    for (std::size_t i = 0; i < rays.size(); ++i) out[i] = range(rays[i]);
    timer.stop();
  }

  /// Per-particle batch: every beam shares `sensor`'s origin and looks
  /// along `sensor.theta + beam_angles[j]`. Semantically identical to
  /// calling range() beam by beam — the default does exactly that, with
  /// the exact ray construction the particle filter used to perform — but
  /// backends override it to hoist the shared per-origin work (grid
  /// lookup, occupancy test) out of the beam loop and to vectorize the
  /// per-beam tail. Overrides must stay bitwise identical to this loop.
  /// `out.size()` must equal `beam_angles.size()`.
  virtual void ranges_from(const Pose2& sensor,
                           std::span<const double> beam_angles,
                           std::span<float> out) const {
    telemetry::StageTimer timer{batch_ms_};
    for (std::size_t j = 0; j < beam_angles.size(); ++j) {
      out[j] = range(Pose2{sensor.x, sensor.y, sensor.theta + beam_angles[j]});
    }
    timer.stop();
  }

  double max_range() const { return max_range_; }
  const OccupancyGrid& map() const { return *map_; }
  std::shared_ptr<const OccupancyGrid> map_ptr() const { return map_; }

  /// Register this backend's query counter ("range.<name>.queries") and
  /// batch latency histogram ("range.<name>.batch_ms") with `registry`.
  /// Declared const because backends are logically immutable — the telemetry
  /// handles are the only mutable state. Attach before concurrent use; the
  /// recorded metrics themselves are thread-safe.
  void attach_telemetry(telemetry::MetricsRegistry& registry) const {
    queries_ = &registry.counter("range." + name() + ".queries");
    batch_ms_ = &registry.histogram("range." + name() + ".batch_ms");
  }

 protected:
  /// Called by every backend's range() — one relaxed increment when
  /// attached, one predictable branch when not.
  void note_query() const {
    if (queries_ != nullptr) queries_->add();
  }

  /// Batched variant for ranges_from() overrides: one atomic add for the
  /// whole beam fan instead of one per beam. Counter totals stay equal to
  /// the per-query path.
  void note_queries(std::size_t n) const {
    if (queries_ != nullptr) queries_->add(n);
  }

  std::shared_ptr<const OccupancyGrid> map_;
  double max_range_;
  mutable telemetry::Counter* queries_{nullptr};
  mutable telemetry::Histogram* batch_ms_{nullptr};
};

/// Which backend to build. `kLut` is the mode the paper uses on the GPU-less
/// NUC; `kCddt` is the Walsh & Karaman structure; `kBresenham` is the exact
/// reference; `kRayMarching` sphere-traces the Euclidean distance field.
enum class RangeMethodKind { kBresenham, kRayMarching, kCddt, kLut };

std::string to_string(RangeMethodKind kind);

/// Tuning for the approximate backends.
struct RangeMethodOptions {
  double max_range = 12.0;   ///< meters
  int cddt_theta_bins = 108; ///< angular discretization for CDDT
  int lut_theta_bins = 120;  ///< angular discretization for the LUT
  int lut_stride = 1;        ///< LUT spatial stride in cells (1 = per cell)
};

/// Build a backend of the requested kind over `map`.
std::unique_ptr<RangeMethod> make_range_method(
    RangeMethodKind kind, std::shared_ptr<const OccupancyGrid> map,
    const RangeMethodOptions& options = {});

}  // namespace srl
