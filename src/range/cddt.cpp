#include "range/cddt.hpp"

#include <algorithm>
#include <cmath>

#include "common/angles.hpp"

namespace srl {
namespace {

/// Only blocking cells that touch free space can be the first hit of a ray
/// cast from free space; interior fill (deep unknown/occupied regions) is
/// skipped, which is the dominant memory saving on corridor maps.
bool is_surface_cell(const OccupancyGrid& grid, int ix, int iy) {
  if (!grid.blocks_ray(ix, iy)) return false;
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      if (dx == 0 && dy == 0) continue;
      if (grid.is_free(ix + dx, iy + dy)) return true;
    }
  }
  return false;
}

}  // namespace

Cddt::Cddt(std::shared_ptr<const OccupancyGrid> map, double max_range,
           int theta_bins)
    : RangeMethod{std::move(map), max_range},
      band_width_{map_->resolution()} {
  const OccupancyGrid& grid = *map_;
  const int m = std::max(theta_bins, 1);

  // Collect surface cells once.
  std::vector<Vec2> surface;
  for (int iy = 0; iy < grid.height(); ++iy) {
    for (int ix = 0; ix < grid.width(); ++ix) {
      if (is_surface_cell(grid, ix, iy)) surface.push_back(grid.grid_to_world(ix, iy));
    }
  }

  // Map corners bound the v extent for every rotation.
  const Vec2 corners[4] = {
      grid.origin(),
      grid.origin() + Vec2{grid.world_width(), 0.0},
      grid.origin() + Vec2{0.0, grid.world_height()},
      grid.origin() + Vec2{grid.world_width(), grid.world_height()},
  };

  bins_.resize(static_cast<std::size_t>(m));
  for (int b = 0; b < m; ++b) {
    ThetaBin& bin = bins_[static_cast<std::size_t>(b)];
    const double theta = kPi * b / m;
    bin.angle = theta;
    bin.cos_t = std::cos(theta);
    bin.sin_t = std::sin(theta);

    double v_min = 0.0;
    double v_max = 0.0;
    for (int c = 0; c < 4; ++c) {
      const double v = -corners[c].x * bin.sin_t + corners[c].y * bin.cos_t;
      if (c == 0) {
        v_min = v_max = v;
      } else {
        v_min = std::min(v_min, v);
        v_max = std::max(v_max, v);
      }
    }
    bin.v_min = v_min;
    const auto n_bands = static_cast<std::size_t>(
                             std::floor((v_max - v_min) / band_width_)) +
                         1;
    bin.bands.assign(n_bands, {});

    for (const Vec2& p : surface) {
      const double u = p.x * bin.cos_t + p.y * bin.sin_t;
      const double v = -p.x * bin.sin_t + p.y * bin.cos_t;
      auto band = static_cast<std::size_t>((v - bin.v_min) / band_width_);
      if (band >= bin.bands.size()) band = bin.bands.size() - 1;
      bin.bands[band].push_back(static_cast<float>(u));
    }
    // Compress: sort each band and drop duplicates within half a cell.
    const float quantum = static_cast<float>(0.5 * band_width_);
    for (auto& band : bin.bands) {
      std::sort(band.begin(), band.end());
      auto last = std::unique(band.begin(), band.end(),
                              [quantum](float a, float c) {
                                return c - a < quantum;
                              });
      band.erase(last, band.end());
      band.shrink_to_fit();
    }
  }
}

float Cddt::range(const Pose2& ray) const {
  SYNPF_EXPECTS_MSG(valid_ray_pose(ray), "cddt query pose not finite");
  note_query();
  const OccupancyGrid& grid = *map_;
  const GridIndex start = grid.world_to_grid({ray.x, ray.y});
  if (grid.blocks_ray(start.ix, start.iy)) return 0.0F;
  return range_line(ray.x, ray.y, ray.theta);
}

void Cddt::ranges_from(const Pose2& sensor,
                       std::span<const double> beam_angles,
                       std::span<float> out) const {
  SYNPF_EXPECTS_MSG(valid_ray_pose(sensor), "cddt query pose not finite");
  telemetry::StageTimer timer{batch_ms_};
  note_queries(beam_angles.size());
  const OccupancyGrid& grid = *map_;
  const GridIndex start = grid.world_to_grid({sensor.x, sensor.y});
  if (grid.blocks_ray(start.ix, start.iy)) {
    for (std::size_t j = 0; j < out.size(); ++j) out[j] = 0.0F;
    timer.stop();
    return;
  }
  for (std::size_t j = 0; j < beam_angles.size(); ++j) {
    out[j] = range_line(sensor.x, sensor.y, sensor.theta + beam_angles[j]);
  }
  timer.stop();
}

float Cddt::range_line(double x, double y, double theta) const {
  // Snap the ray's line direction to the nearest theta bin in [0, pi);
  // wrap_into stays bounded for any heading magnitude.
  const int m = static_cast<int>(bins_.size());
  const double line_angle = wrap_into(theta, kPi);
  int b = static_cast<int>(line_angle * m / kPi + 0.5);
  if (b >= m) b -= m;
  const ThetaBin& bin = bins_[static_cast<std::size_t>(b)];

  // Forward along +u if the actual ray direction agrees with the bin axis.
  // Historically this evaluated sign(cos(theta)*cos_t + sin(theta)*sin_t)
  // = sign(cos(theta - bin.angle)) with two libm calls per query. Because
  // b is the *nearest* bin line to theta (up to rounding ties), the line
  // distance |theta - bin.angle| mod pi is at most pi/2m + O(ulp), so
  // |cos(theta - bin.angle)| >= cos(pi/2m) — at least ~0.7 for m >= 2 and
  // ~0.9996 at the default m = 108. The sign therefore survives absolute
  // angle errors up to ~0.7 rad, while computing theta - bin.angle for
  // |theta| <= 1e8 is accurate to ~1e-8: the branch below is bitwise
  // equivalent to the libm form on the entire guarded domain, just
  // trig-free. Degenerate bin counts and astronomically large headings
  // (absorption could eat the margin) keep the original evaluation.
  bool forward = false;
  if (m >= 2 && std::abs(theta) <= 1e8) {
    const double d = wrap_into(theta - bin.angle, kTwoPi);
    forward = d < 0.5 * kPi || d > 1.5 * kPi;
  } else {
    const double dir_dot =
        std::cos(theta) * bin.cos_t + std::sin(theta) * bin.sin_t;
    forward = dir_dot >= 0.0;
  }

  const double u = x * bin.cos_t + y * bin.sin_t;
  const double v = -x * bin.sin_t + y * bin.cos_t;
  const double band_f = (v - bin.v_min) / band_width_;
  if (band_f < 0.0) return static_cast<float>(max_range_);
  auto band = static_cast<std::size_t>(band_f);
  if (band >= bin.bands.size()) return static_cast<float>(max_range_);
  const std::vector<float>& obstacles = bin.bands[band];

  // Half-cell slack keeps a particle standing on a wall surface from seeing
  // "through" the obstacle it is touching.
  const float slack = static_cast<float>(0.5 * band_width_);
  float r = static_cast<float>(max_range_);
  if (forward) {
    const auto it = std::upper_bound(obstacles.begin(), obstacles.end(),
                                     static_cast<float>(u) - slack);
    if (it != obstacles.end()) r = *it - static_cast<float>(u);
  } else {
    const auto it = std::lower_bound(obstacles.begin(), obstacles.end(),
                                     static_cast<float>(u) + slack);
    if (it != obstacles.begin()) r = static_cast<float>(u) - *std::prev(it);
  }
  return std::clamp(r, 0.0F, static_cast<float>(max_range_));
}

std::size_t Cddt::total_entries() const {
  std::size_t n = 0;
  for (const ThetaBin& bin : bins_) {
    for (const auto& band : bin.bands) n += band.size();
  }
  return n;
}

}  // namespace srl
