#pragma once

/// \file bresenham.hpp
/// \brief Exact cell-walking ray cast (Amanatides–Woo traversal). This is the
/// ground-truth backend: it visits every cell the ray passes through and
/// reports the exact distance to the entry face of the first blocking cell.
/// Slowest method (O(range / resolution) per query) but has no
/// discretization error beyond the grid itself — all approximate backends
/// are validated against it in the tests.

#include "range/range_method.hpp"

namespace srl {

class BresenhamCaster final : public RangeMethod {
 public:
  BresenhamCaster(std::shared_ptr<const OccupancyGrid> map, double max_range)
      : RangeMethod{std::move(map), max_range} {}

  float range(const Pose2& ray) const override;
  std::string name() const override { return "bresenham"; }
};

}  // namespace srl
