#include "eval/metrics.hpp"

#include <cmath>

namespace srl {

ScanAlignmentScorer::ScanAlignmentScorer(const OccupancyGrid& map,
                                         double tolerance)
    : wall_distance_{distance_to_occupied(map)}, tolerance_{tolerance} {}

double ScanAlignmentScorer::score(const LaserScan& scan,
                                  const LidarConfig& config,
                                  const Pose2& estimated_body_pose,
                                  int stride) const {
  const Pose2 sensor = estimated_body_pose * config.mount;
  int valid = 0;
  int aligned = 0;
  const int n = static_cast<int>(scan.ranges.size());
  const int step = std::max(stride, 1);
  for (int i = 0; i < n; i += step) {
    const float r = scan.ranges[static_cast<std::size_t>(i)];
    if (r < config.min_range || r >= config.max_range) continue;
    ++valid;
    const double a = sensor.theta + config.beam_angle(i);
    const Vec2 endpoint{sensor.x + r * std::cos(a),
                        sensor.y + r * std::sin(a)};
    if (wall_distance_.at_world(endpoint) <= tolerance_) ++aligned;
  }
  if (valid == 0) return 0.0;
  return 100.0 * static_cast<double>(aligned) / static_cast<double>(valid);
}

}  // namespace srl
