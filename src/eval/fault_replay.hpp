#pragma once

/// \file fault_replay.hpp
/// \brief Glue between the fault subsystem and the rosbag workflow: corrupt
/// a recorded `SensorTrace` offline, and fingerprint traces bitwise.
///
/// Open-loop fault studies work on copies: record one clean trace, derive a
/// corrupted variant per (fault, severity) cell, replay each into any
/// number of localizers. Because a `FaultPipeline` is a pure function of
/// (seed, stack, clean trace), the corrupted trace — and therefore
/// `trace_hash` of it — is a stable fingerprint: the determinism checker
/// demands it is identical across reruns and thread counts, and
/// `bench_compare` can diff it across commits to catch silent re-keying of
/// the fault RNG schedule.

#include <cstdint>

#include "eval/trace.hpp"
#include "fault/pipeline.hpp"

namespace srl {

/// Apply `pipeline` to every event of `trace` (in stream order, indices and
/// times measured from the first event) and return the corrupted copy. The
/// input trace is untouched; ground-truth poses are copied verbatim — faults
/// corrupt what the localizer *senses*, never what actually happened.
SensorTrace corrupt_trace(const fault::FaultPipeline& pipeline,
                          const SensorTrace& trace);

/// FNV-1a 64-bit hash over every byte of the trace's sensor content
/// (timestamps, odometry increments, truth poses, ranges) — bitwise: two
/// traces hash equal iff every double/float matches bit for bit.
std::uint64_t trace_hash(const SensorTrace& trace);

}  // namespace srl
