#include "eval/trace.hpp"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/angles.hpp"

namespace srl {
namespace {

constexpr char kMagic[4] = {'S', 'R', 'L', 'T'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool read_pod(std::ifstream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

double SensorTrace::duration() const {
  double t0 = 0.0;
  double t1 = 0.0;
  bool any = false;
  const auto consider = [&](double t) {
    if (!any) {
      t0 = t1 = t;
      any = true;
    } else {
      t0 = std::min(t0, t);
      t1 = std::max(t1, t);
    }
  };
  for (const OdomRecord& r : odometry_) consider(r.t);
  for (const ScanRecord& r : scans_) consider(r.scan.t);
  return any ? t1 - t0 : 0.0;
}

SensorTrace::ReplayResult SensorTrace::replay(Localizer& localizer,
                                              telemetry::Sink sink) const {
  ReplayResult result;
  if (scans_.empty()) return result;
  if (sink.enabled()) localizer.set_telemetry(sink);
  localizer.initialize(scans_.front().truth);

  // The replay loop measures update latency itself so every localizer gets
  // a percentile readout, with or without its own instrumentation.
  telemetry::Histogram update_ms;

  std::size_t oi = 0;
  double err_sq = 0.0;
  double hdg_sq = 0.0;
  for (const ScanRecord& rec : scans_) {
    // Deliver all odometry up to (and including) this scan's timestamp.
    while (oi < odometry_.size() && odometry_[oi].t <= rec.scan.t) {
      localizer.on_odometry(odometry_[oi].odom);
      ++oi;
    }
    Stopwatch watch;
    Pose2 est;
    {
      telemetry::ScopedSpan span{sink.trace, "replay.scan_update"};
      est = localizer.on_scan(rec.scan);
    }
    update_ms.record(watch.elapsed_ms());
    result.estimates.push_back(est);
    const double ex = est.x - rec.truth.x;
    const double ey = est.y - rec.truth.y;
    err_sq += ex * ex + ey * ey;
    const double eh = angle_dist(est.theta, rec.truth.theta);
    hdg_sq += eh * eh;
    if (sink.recorder != nullptr) {
      telemetry::TickSnapshot snap;
      snap.tick = result.estimates.size() - 1;
      snap.t = rec.scan.t;
      snap.est_x = est.x;
      snap.est_y = est.y;
      snap.est_theta = est.theta;
      snap.truth_err_m = std::hypot(ex, ey);
      sink.recorder->record_tick(std::move(snap));
    }
  }
  const auto n = static_cast<double>(result.estimates.size());
  result.pose_rmse_m = std::sqrt(err_sq / n);
  result.heading_rmse_rad = std::sqrt(hdg_sq / n);
  result.mean_update_ms = localizer.mean_scan_update_ms();
  result.p50_update_ms = update_ms.percentile(0.50);
  result.p95_update_ms = update_ms.percentile(0.95);
  result.p99_update_ms = update_ms.percentile(0.99);
  result.max_update_ms = update_ms.max();
  return result;
}

bool SensorTrace::save(const std::string& path) const {
  std::ofstream out{path, std::ios::binary};
  if (!out) return false;
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint64_t>(odometry_.size()));
  write_pod(out, static_cast<std::uint64_t>(scans_.size()));
  for (const OdomRecord& r : odometry_) {
    write_pod(out, r.t);
    write_pod(out, r.odom.delta.x);
    write_pod(out, r.odom.delta.y);
    write_pod(out, r.odom.delta.theta);
    write_pod(out, r.odom.v);
    write_pod(out, r.odom.dt);
  }
  for (const ScanRecord& r : scans_) {
    write_pod(out, r.scan.t);
    write_pod(out, r.truth.x);
    write_pod(out, r.truth.y);
    write_pod(out, r.truth.theta);
    write_pod(out, static_cast<std::uint32_t>(r.scan.ranges.size()));
    out.write(reinterpret_cast<const char*>(r.scan.ranges.data()),
              static_cast<std::streamsize>(r.scan.ranges.size() *
                                           sizeof(float)));
  }
  return static_cast<bool>(out);
}

std::optional<SensorTrace> SensorTrace::load(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) return std::nullopt;
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  std::uint32_t version = 0;
  if (!read_pod(in, version) || version != kVersion) return std::nullopt;
  std::uint64_t n_odom = 0;
  std::uint64_t n_scans = 0;
  if (!read_pod(in, n_odom) || !read_pod(in, n_scans)) return std::nullopt;

  SensorTrace trace;
  for (std::uint64_t i = 0; i < n_odom; ++i) {
    OdomRecord r;
    if (!read_pod(in, r.t) || !read_pod(in, r.odom.delta.x) ||
        !read_pod(in, r.odom.delta.y) || !read_pod(in, r.odom.delta.theta) ||
        !read_pod(in, r.odom.v) || !read_pod(in, r.odom.dt)) {
      return std::nullopt;
    }
    trace.odometry_.push_back(r);
  }
  for (std::uint64_t i = 0; i < n_scans; ++i) {
    ScanRecord r;
    std::uint32_t n_ranges = 0;
    if (!read_pod(in, r.scan.t) || !read_pod(in, r.truth.x) ||
        !read_pod(in, r.truth.y) || !read_pod(in, r.truth.theta) ||
        !read_pod(in, n_ranges)) {
      return std::nullopt;
    }
    if (n_ranges > 1000000U) return std::nullopt;  // sanity bound
    r.scan.ranges.resize(n_ranges);
    in.read(reinterpret_cast<char*>(r.scan.ranges.data()),
            static_cast<std::streamsize>(n_ranges * sizeof(float)));
    if (!in) return std::nullopt;
    trace.scans_.push_back(std::move(r));
  }
  return trace;
}

}  // namespace srl
