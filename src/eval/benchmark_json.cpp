#include "eval/benchmark_json.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace srl {

namespace {

/// 64-bit hashes do not fit a double exactly, so they travel as fixed-width
/// hex strings.
std::string hash_to_hex(std::uint64_t h) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016" PRIx64, h);
  return buf;
}

std::uint64_t hex_to_hash(const std::string& s) {
  return std::strtoull(s.c_str(), nullptr, 16);
}

double num(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  return v != nullptr ? v->as_double() : 0.0;
}

bool flag(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  return v != nullptr && v->as_bool();
}

std::string str(const json::Value& obj, const char* key) {
  const json::Value* v = obj.find(key);
  return v != nullptr ? v->as_string() : std::string{};
}

}  // namespace

std::string compiler_id() {
#if defined(__clang__)
  return "clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__) + "." +
         std::to_string(__clang_patchlevel__);
#elif defined(__GNUC__)
  return "gcc " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__) + "." +
         std::to_string(__GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

json::Value bench_to_json(const BenchDocument& doc) {
  json::Value root = json::Value::object();
  root.set("schema", json::Value::string(kBenchRobustnessSchema));

  json::Value provenance = json::Value::object();
  provenance.set("compiler", json::Value::string(doc.provenance.compiler));
  provenance.set("build", json::Value::string(doc.provenance.build));
  provenance.set("git_sha", json::Value::string(doc.provenance.git_sha));
  provenance.set("seed",
                 json::Value::number(static_cast<double>(doc.provenance.seed)));
  provenance.set("fault_seed", json::Value::number(static_cast<double>(
                                   doc.provenance.fault_seed)));
  provenance.set("laps", json::Value::number(doc.provenance.laps));
  provenance.set("n_particles",
                 json::Value::number(doc.provenance.n_particles));
  provenance.set("matrix_threads",
                 json::Value::number(doc.provenance.matrix_threads));
  provenance.set("fast_mode", json::Value::boolean(doc.provenance.fast_mode));
  // Schema v3: recorder provenance. Informational (the compare gate never
  // reads it), so wall-clock numbers here cannot fail a bitwise self-diff.
  provenance.set("recorder", json::Value::boolean(doc.provenance.recorder));
  provenance.set("recorder_wall_s",
                 json::Value::number(doc.provenance.recorder_wall_s));
  provenance.set("baseline_wall_s",
                 json::Value::number(doc.provenance.baseline_wall_s));
  provenance.set("recorder_overhead_pct",
                 json::Value::number(doc.provenance.recorder_overhead_pct));
  root.set("provenance", std::move(provenance));

  json::Value traces = json::Value::array();
  for (const FaultTraceFingerprint& fp : doc.fault_traces) {
    json::Value t = json::Value::object();
    t.set("fault", json::Value::string(fp.fault));
    t.set("severity", json::Value::number(fp.severity));
    t.set("trace_hash", json::Value::string(hash_to_hex(fp.trace_hash)));
    t.set("n_scans",
          json::Value::number(static_cast<double>(fp.n_scans)));
    t.set("n_odometry",
          json::Value::number(static_cast<double>(fp.n_odometry)));
    traces.push_back(std::move(t));
  }
  root.set("fault_traces", std::move(traces));

  json::Value cells = json::Value::array();
  for (const ScenarioCell& cell : doc.cells) {
    json::Value c = json::Value::object();
    c.set("localizer", json::Value::string(cell.localizer));
    c.set("fault", json::Value::string(cell.scenario.fault));
    c.set("severity", json::Value::number(cell.scenario.severity));
    c.set("lateral_mean_cm", json::Value::number(cell.result.lateral_mean_cm));
    c.set("lateral_std_cm", json::Value::number(cell.result.lateral_std_cm));
    c.set("scan_alignment", json::Value::number(cell.result.scan_alignment));
    c.set("pose_rmse_m", json::Value::number(cell.result.pose_rmse_m));
    c.set("heading_rmse_rad",
          json::Value::number(cell.result.heading_rmse_rad));
    c.set("lap_time_mean_s", json::Value::number(cell.result.lap_time_mean));
    c.set("update_p50_ms", json::Value::number(cell.result.update_p50_ms));
    c.set("update_p99_ms", json::Value::number(cell.result.update_p99_ms));
    c.set("update_max_ms", json::Value::number(cell.result.update_max_ms));
    c.set("load_percent", json::Value::number(cell.result.load_percent));
    c.set("ess_fraction_p50", json::Value::number(cell.ess_fraction_p50));
    c.set("ess_fraction_min", json::Value::number(cell.ess_fraction_min));
    c.set("resamples",
          json::Value::number(static_cast<double>(cell.resamples)));
    c.set("pose_jump_alarms",
          json::Value::number(static_cast<double>(cell.pose_jump_alarms)));
    c.set("stage_p50_ms", json::Value::number(cell.stage_p50_ms));
    c.set("stage_p99_ms", json::Value::number(cell.stage_p99_ms));
    c.set("crashed", json::Value::boolean(cell.result.crashed));
    c.set("completed", json::Value::boolean(cell.result.completed));
    // Schema v2: recovery block. `recovery_success` doubles as the
    // presence marker the reader keys `has_recovery` on.
    c.set("recovery_success", json::Value::boolean(cell.recovery_success));
    c.set("kidnaps", json::Value::number(static_cast<double>(cell.kidnaps)));
    c.set("divergence_episodes",
          json::Value::number(static_cast<double>(cell.divergence_episodes)));
    c.set("recoveries",
          json::Value::number(static_cast<double>(cell.recoveries)));
    c.set("time_to_reloc_mean_s",
          json::Value::number(cell.time_to_reloc_mean_s));
    c.set("time_to_reloc_max_s", json::Value::number(cell.time_to_reloc_max_s));
    c.set("post_divergence_lateral_cm",
          json::Value::number(cell.post_divergence_lateral_cm));
    c.set("reinjections",
          json::Value::number(static_cast<double>(cell.reinjections)));
    c.set("global_relocs",
          json::Value::number(static_cast<double>(cell.global_relocs)));
    c.set("recovery_transitions",
          json::Value::number(static_cast<double>(cell.recovery_transitions)));
    // Schema v3: event-journal summary + black-box artifacts.
    json::Value events = json::Value::object();
    events.set("total",
               json::Value::number(static_cast<double>(cell.events_total)));
    events.set("warn",
               json::Value::number(static_cast<double>(cell.events_warn)));
    events.set("error",
               json::Value::number(static_cast<double>(cell.events_error)));
    events.set("critical",
               json::Value::number(static_cast<double>(cell.events_critical)));
    events.set("dropped",
               json::Value::number(static_cast<double>(cell.events_dropped)));
    c.set("events", std::move(events));
    json::Value boxes = json::Value::array();
    for (const std::string& box : cell.blackboxes) {
      boxes.push_back(json::Value::string(box));
    }
    c.set("blackboxes", std::move(boxes));
    // Schema v4: compute-governor block, present only on governed cells so
    // ungoverned documents stay byte-compatible with v3 modulo the schema
    // string. Costs are virtual work units — deterministic, gate-safe.
    if (cell.governed) {
      json::Value g = json::Value::object();
      g.set("mode", json::Value::string(cell.governor_shed ? "govern"
                                                           : "enforce"));
      g.set("budget_ms", json::Value::number(cell.budget_ms));
      g.set("updates", json::Value::number(
                           static_cast<double>(cell.governor_updates)));
      g.set("deadline_misses",
            json::Value::number(static_cast<double>(cell.deadline_misses)));
      g.set("shed_beam_updates",
            json::Value::number(static_cast<double>(cell.shed_beam_updates)));
      g.set("shed_particle_updates",
            json::Value::number(
                static_cast<double>(cell.shed_particle_updates)));
      g.set("skipped_resamples",
            json::Value::number(
                static_cast<double>(cell.skipped_resamples)));
      g.set("resizes", json::Value::number(
                           static_cast<double>(cell.governor_resizes)));
      g.set("mean_particles",
            json::Value::number(cell.governor_mean_particles));
      g.set("min_particles", json::Value::number(static_cast<double>(
                                 cell.governor_min_particles)));
      g.set("mean_beams", json::Value::number(cell.governor_mean_beams));
      g.set("cost_units_p50", json::Value::number(cell.governor_cost_p50));
      g.set("cost_units_p99", json::Value::number(cell.governor_cost_p99));
      c.set("governor", std::move(g));
    }
    cells.push_back(std::move(c));
  }
  root.set("cells", std::move(cells));

  if (doc.has_headline) {
    json::Value h = json::Value::object();
    h.set("fault", json::Value::string(doc.headline.fault));
    h.set("severity", json::Value::number(doc.headline.severity));
    h.set("synpf_baseline_cm",
          json::Value::number(doc.headline.synpf_baseline_cm));
    h.set("synpf_faulted_cm",
          json::Value::number(doc.headline.synpf_faulted_cm));
    h.set("synpf_degradation",
          json::Value::number(doc.headline.synpf_degradation));
    h.set("synpf_crashed", json::Value::boolean(doc.headline.synpf_crashed));
    h.set("carto_baseline_cm",
          json::Value::number(doc.headline.carto_baseline_cm));
    h.set("carto_faulted_cm",
          json::Value::number(doc.headline.carto_faulted_cm));
    h.set("carto_degradation",
          json::Value::number(doc.headline.carto_degradation));
    h.set("carto_crashed", json::Value::boolean(doc.headline.carto_crashed));
    h.set("synpf_flat", json::Value::boolean(doc.headline.synpf_flat()));
    root.set("headline", std::move(h));
  }

  if (doc.has_governor_headline) {
    const GovernorHeadline& gh = doc.governor_headline;
    json::Value h = json::Value::object();
    h.set("severity", json::Value::number(gh.severity));
    h.set("budget_ms", json::Value::number(gh.budget_ms));
    h.set("governed_baseline_cm",
          json::Value::number(gh.governed_baseline_cm));
    h.set("governed_pressured_cm",
          json::Value::number(gh.governed_pressured_cm));
    h.set("governed_degradation",
          json::Value::number(gh.governed_degradation));
    h.set("governed_crashed", json::Value::boolean(gh.governed_crashed));
    h.set("governed_misses",
          json::Value::number(static_cast<double>(gh.governed_misses)));
    h.set("governed_shed_updates",
          json::Value::number(static_cast<double>(gh.governed_shed_updates)));
    h.set("enforcer_pressured_cm",
          json::Value::number(gh.enforcer_pressured_cm));
    h.set("enforcer_crashed", json::Value::boolean(gh.enforcer_crashed));
    h.set("enforcer_misses",
          json::Value::number(static_cast<double>(gh.enforcer_misses)));
    h.set("graceful", json::Value::boolean(gh.graceful()));
    root.set("governor_headline", std::move(h));
  }
  return root;
}

bool write_bench_json(const std::string& path, const BenchDocument& doc) {
  return bench_to_json(doc).save(path);
}

std::optional<BenchDocument> bench_from_json(const json::Value& root) {
  if (!root.is_object()) return std::nullopt;
  const std::string schema = str(root, "schema");
  if (schema != kBenchRobustnessSchema && schema != kBenchRobustnessSchemaV3 &&
      schema != kBenchRobustnessSchemaV2 && schema != kBenchRobustnessSchemaV1) {
    return std::nullopt;
  }

  BenchDocument doc;
  if (const json::Value* p = root.find("provenance");
      p != nullptr && p->is_object()) {
    doc.provenance.compiler = str(*p, "compiler");
    doc.provenance.build = str(*p, "build");
    doc.provenance.git_sha = str(*p, "git_sha");
    doc.provenance.seed = static_cast<std::uint64_t>(num(*p, "seed"));
    doc.provenance.fault_seed =
        static_cast<std::uint64_t>(num(*p, "fault_seed"));
    doc.provenance.laps = static_cast<int>(num(*p, "laps"));
    doc.provenance.n_particles = static_cast<int>(num(*p, "n_particles"));
    doc.provenance.matrix_threads =
        static_cast<int>(num(*p, "matrix_threads"));
    doc.provenance.fast_mode = flag(*p, "fast_mode");
    doc.provenance.recorder = flag(*p, "recorder");
    doc.provenance.recorder_wall_s = num(*p, "recorder_wall_s");
    doc.provenance.baseline_wall_s = num(*p, "baseline_wall_s");
    doc.provenance.recorder_overhead_pct = num(*p, "recorder_overhead_pct");
  }

  if (const json::Value* traces = root.find("fault_traces");
      traces != nullptr && traces->is_array()) {
    for (std::size_t i = 0; i < traces->size(); ++i) {
      const json::Value& t = *traces->at(i);
      if (!t.is_object()) return std::nullopt;
      FaultTraceFingerprint fp;
      fp.fault = str(t, "fault");
      fp.severity = num(t, "severity");
      fp.trace_hash = hex_to_hash(str(t, "trace_hash"));
      fp.n_scans = static_cast<std::uint64_t>(num(t, "n_scans"));
      fp.n_odometry = static_cast<std::uint64_t>(num(t, "n_odometry"));
      doc.fault_traces.push_back(std::move(fp));
    }
  }

  const json::Value* cells = root.find("cells");
  if (cells == nullptr || !cells->is_array()) return std::nullopt;
  for (std::size_t i = 0; i < cells->size(); ++i) {
    const json::Value& c = *cells->at(i);
    if (!c.is_object()) return std::nullopt;
    ScenarioCell cell;
    cell.localizer = str(c, "localizer");
    cell.scenario.fault = str(c, "fault");
    cell.scenario.severity = num(c, "severity");
    cell.result.lateral_mean_cm = num(c, "lateral_mean_cm");
    cell.result.lateral_std_cm = num(c, "lateral_std_cm");
    cell.result.scan_alignment = num(c, "scan_alignment");
    cell.result.pose_rmse_m = num(c, "pose_rmse_m");
    cell.result.heading_rmse_rad = num(c, "heading_rmse_rad");
    cell.result.lap_time_mean = num(c, "lap_time_mean_s");
    cell.result.update_p50_ms = num(c, "update_p50_ms");
    cell.result.update_p99_ms = num(c, "update_p99_ms");
    cell.result.update_max_ms = num(c, "update_max_ms");
    cell.result.load_percent = num(c, "load_percent");
    cell.ess_fraction_p50 = num(c, "ess_fraction_p50");
    cell.ess_fraction_min = num(c, "ess_fraction_min");
    cell.resamples = static_cast<std::uint64_t>(num(c, "resamples"));
    cell.pose_jump_alarms =
        static_cast<std::uint64_t>(num(c, "pose_jump_alarms"));
    cell.stage_p50_ms = num(c, "stage_p50_ms");
    cell.stage_p99_ms = num(c, "stage_p99_ms");
    cell.result.crashed = flag(c, "crashed");
    cell.result.completed = flag(c, "completed");
    // v1 documents have no recovery block: leave has_recovery false so the
    // compare gates know not to judge recovery against this baseline.
    cell.has_recovery = c.find("recovery_success") != nullptr;
    if (cell.has_recovery) {
      cell.recovery_success = flag(c, "recovery_success");
      cell.kidnaps = static_cast<int>(num(c, "kidnaps"));
      cell.divergence_episodes =
          static_cast<int>(num(c, "divergence_episodes"));
      cell.recoveries = static_cast<int>(num(c, "recoveries"));
      cell.time_to_reloc_mean_s = num(c, "time_to_reloc_mean_s");
      cell.time_to_reloc_max_s = num(c, "time_to_reloc_max_s");
      cell.post_divergence_lateral_cm = num(c, "post_divergence_lateral_cm");
      cell.reinjections = static_cast<std::uint64_t>(num(c, "reinjections"));
      cell.global_relocs =
          static_cast<std::uint64_t>(num(c, "global_relocs"));
      cell.recovery_transitions =
          static_cast<std::uint64_t>(num(c, "recovery_transitions"));
    }
    // v3 event summary (zeros when absent).
    if (const json::Value* events = c.find("events");
        events != nullptr && events->is_object()) {
      cell.events_total = static_cast<std::uint64_t>(num(*events, "total"));
      cell.events_warn = static_cast<std::uint64_t>(num(*events, "warn"));
      cell.events_error = static_cast<std::uint64_t>(num(*events, "error"));
      cell.events_critical =
          static_cast<std::uint64_t>(num(*events, "critical"));
      cell.events_dropped =
          static_cast<std::uint64_t>(num(*events, "dropped"));
    }
    if (const json::Value* boxes = c.find("blackboxes");
        boxes != nullptr && boxes->is_array()) {
      for (std::size_t b = 0; b < boxes->size(); ++b) {
        cell.blackboxes.push_back(boxes->at(b)->as_string());
      }
    }
    // v4 governor block (governed == false when absent).
    if (const json::Value* g = c.find("governor");
        g != nullptr && g->is_object()) {
      cell.governed = true;
      cell.governor_shed = str(*g, "mode") == "govern";
      cell.budget_ms = num(*g, "budget_ms");
      cell.governor_updates = static_cast<std::uint64_t>(num(*g, "updates"));
      cell.deadline_misses =
          static_cast<std::uint64_t>(num(*g, "deadline_misses"));
      cell.shed_beam_updates =
          static_cast<std::uint64_t>(num(*g, "shed_beam_updates"));
      cell.shed_particle_updates =
          static_cast<std::uint64_t>(num(*g, "shed_particle_updates"));
      cell.skipped_resamples =
          static_cast<std::uint64_t>(num(*g, "skipped_resamples"));
      cell.governor_resizes = static_cast<std::uint64_t>(num(*g, "resizes"));
      cell.governor_mean_particles = num(*g, "mean_particles");
      cell.governor_min_particles =
          static_cast<int>(num(*g, "min_particles"));
      cell.governor_mean_beams = num(*g, "mean_beams");
      cell.governor_cost_p50 = num(*g, "cost_units_p50");
      cell.governor_cost_p99 = num(*g, "cost_units_p99");
    }
    doc.cells.push_back(std::move(cell));
  }

  if (const json::Value* h = root.find("headline");
      h != nullptr && h->is_object()) {
    doc.has_headline = true;
    doc.headline.fault = str(*h, "fault");
    doc.headline.severity = num(*h, "severity");
    doc.headline.synpf_baseline_cm = num(*h, "synpf_baseline_cm");
    doc.headline.synpf_faulted_cm = num(*h, "synpf_faulted_cm");
    doc.headline.synpf_degradation = num(*h, "synpf_degradation");
    doc.headline.synpf_crashed = flag(*h, "synpf_crashed");
    doc.headline.carto_baseline_cm = num(*h, "carto_baseline_cm");
    doc.headline.carto_faulted_cm = num(*h, "carto_faulted_cm");
    doc.headline.carto_degradation = num(*h, "carto_degradation");
    doc.headline.carto_crashed = flag(*h, "carto_crashed");
  }

  if (const json::Value* h = root.find("governor_headline");
      h != nullptr && h->is_object()) {
    doc.has_governor_headline = true;
    GovernorHeadline& gh = doc.governor_headline;
    gh.severity = num(*h, "severity");
    gh.budget_ms = num(*h, "budget_ms");
    gh.governed_baseline_cm = num(*h, "governed_baseline_cm");
    gh.governed_pressured_cm = num(*h, "governed_pressured_cm");
    gh.governed_degradation = num(*h, "governed_degradation");
    gh.governed_crashed = flag(*h, "governed_crashed");
    gh.governed_misses = static_cast<std::uint64_t>(num(*h, "governed_misses"));
    gh.governed_shed_updates =
        static_cast<std::uint64_t>(num(*h, "governed_shed_updates"));
    gh.enforcer_pressured_cm = num(*h, "enforcer_pressured_cm");
    gh.enforcer_crashed = flag(*h, "enforcer_crashed");
    gh.enforcer_misses = static_cast<std::uint64_t>(num(*h, "enforcer_misses"));
  }
  return doc;
}

std::optional<BenchDocument> read_bench_json(const std::string& path) {
  std::optional<json::Value> root = json::Value::load(path);
  if (!root.has_value()) return std::nullopt;
  return bench_from_json(*root);
}

}  // namespace srl
