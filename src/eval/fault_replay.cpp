#include "eval/fault_replay.hpp"

#include <algorithm>

namespace srl {

SensorTrace corrupt_trace(const fault::FaultPipeline& pipeline,
                          const SensorTrace& trace) {
  pipeline.reset();
  SensorTrace corrupted;

  // Stream time starts at the earliest event of either stream, so envelopes
  // (ramps, blackout windows) line up with "seconds into the run".
  double t0 = 0.0;
  if (!trace.odometry().empty() && !trace.scans().empty()) {
    t0 = std::min(trace.odometry().front().t, trace.scans().front().scan.t);
  } else if (!trace.odometry().empty()) {
    t0 = trace.odometry().front().t;
  } else if (!trace.scans().empty()) {
    t0 = trace.scans().front().scan.t;
  }

  std::uint64_t odom_index = 0;
  for (const SensorTrace::OdomRecord& rec : trace.odometry()) {
    OdometryDelta odom = rec.odom;
    pipeline.corrupt_odometry({odom_index, rec.t - t0}, odom);
    ++odom_index;
    corrupted.add_odometry(rec.t, odom);
  }

  std::uint64_t scan_index = 0;
  for (const SensorTrace::ScanRecord& rec : trace.scans()) {
    LaserScan scan = rec.scan;
    pipeline.corrupt_scan({scan_index, rec.scan.t - t0}, scan);
    ++scan_index;
    corrupted.add_scan(scan, rec.truth);
  }
  return corrupted;
}

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void hash_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
}

template <typename T>
void hash_pod(std::uint64_t& h, const T& value) {
  hash_bytes(h, &value, sizeof(T));
}

}  // namespace

std::uint64_t trace_hash(const SensorTrace& trace) {
  std::uint64_t h = kFnvOffset;
  hash_pod(h, static_cast<std::uint64_t>(trace.odometry().size()));
  hash_pod(h, static_cast<std::uint64_t>(trace.scans().size()));
  for (const SensorTrace::OdomRecord& rec : trace.odometry()) {
    hash_pod(h, rec.t);
    hash_pod(h, rec.odom.delta.x);
    hash_pod(h, rec.odom.delta.y);
    hash_pod(h, rec.odom.delta.theta);
    hash_pod(h, rec.odom.v);
    hash_pod(h, rec.odom.dt);
  }
  for (const SensorTrace::ScanRecord& rec : trace.scans()) {
    hash_pod(h, rec.scan.t);
    hash_pod(h, rec.truth.x);
    hash_pod(h, rec.truth.y);
    hash_pod(h, rec.truth.theta);
    hash_pod(h, static_cast<std::uint64_t>(rec.scan.ranges.size()));
    if (!rec.scan.ranges.empty()) {
      hash_bytes(h, rec.scan.ranges.data(),
                 rec.scan.ranges.size() * sizeof(float));
    }
  }
  return h;
}

}  // namespace srl
