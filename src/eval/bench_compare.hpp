#pragma once

/// \file bench_compare.hpp
/// \brief The regression gate: diff two `srl.bench_robustness` documents
/// against configurable thresholds.
///
/// Comparison semantics (baseline vs candidate):
///  - every baseline cell must exist in the candidate (coverage may grow,
///    never silently shrink);
///  - lateral-error mu and update-latency p99 may exceed the baseline by a
///    relative fraction plus an absolute slack (latency is wall-clock, so
///    its defaults are generous; accuracy is deterministic per machine, so
///    its defaults are tight);
///  - a cell that crashes where the baseline did not is a robustness
///    regression (switchable for cross-machine smoke runs);
///  - a cell that recovered from divergence in the baseline but not in the
///    candidate is a recovery regression, and its mean time-to-relocalize
///    may not regress past the tolerance (cells parsed from pre-recovery
///    schema-v1 baselines skip both gates);
///  - with `require_hash_match`, every fault-trace fingerprint must match
///    bitwise — the determinism gate: same seed, same faults, same bytes.
///
/// The library returns a structured report (each failure names the cell,
/// the metric, both values, and the allowed limit); `tools/bench_compare`
/// maps it onto exit codes for CI.

#include <string>
#include <vector>

#include "eval/benchmark_json.hpp"
#include "eval/throughput_json.hpp"

namespace srl {

struct CompareThresholds {
  /// lateral_mean_cm gate: candidate <= baseline * (1 + frac) + slack.
  double lateral_tol_frac = 0.10;
  double lateral_slack_cm = 1.0;
  /// update_p99_ms gate: candidate <= baseline * (1 + frac) + slack.
  double p99_tol_frac = 1.0;
  double p99_slack_ms = 2.0;
  /// time_to_reloc_mean_s gate: candidate <= baseline * (1 + frac) + slack.
  /// Binds only where both runs recovered and the baseline saw an episode.
  double reloc_tol_frac = 0.5;
  double reloc_slack_s = 0.5;
  /// Gate on lost recovery: baseline recovered, candidate did not (crashing
  /// counts as not recovering). Off only for schema-v1 baselines or
  /// explicitly via --no-recovery-gate.
  bool gate_recovery = true;
  /// Demand bitwise-equal fault-trace fingerprints (same-machine runs).
  bool require_hash_match = false;
  /// Tolerate candidate crashes in cells the baseline survived
  /// (cross-machine smoke comparisons where FP environments differ).
  bool allow_new_crashes = false;
};

struct CompareFailure {
  std::string cell;    ///< "SynPF/odom_slip_ramp@1" or "fault_traces/..."
  std::string metric;  ///< offending metric name, e.g. "lateral_mean_cm"
  double baseline{0.0};
  double candidate{0.0};
  double limit{0.0};  ///< the value the candidate had to stay under

  std::string describe() const;
};

struct CompareReport {
  std::vector<CompareFailure> failures;
  /// Advisory observations that never fail the gate: improvements past the
  /// note threshold, baseline cells skipped because the candidate host
  /// lacks the instruction set, and similar context a reviewer wants
  /// printed but CI must not block on.
  std::vector<std::string> notes;
  int cells_compared{0};
  int hashes_compared{0};
  bool ok() const { return failures.empty(); }
};

CompareReport compare_bench(const BenchDocument& baseline,
                            const BenchDocument& candidate,
                            const CompareThresholds& thresholds);

/// Thresholds for the `srl.bench_throughput` gate. Throughput is gated
/// *downward* only: a candidate cell may be slower than the baseline by at
/// most `tol_frac` (relative), while a speedup beyond `improve_frac` is
/// surfaced as an advisory note (a hint to refresh the committed
/// baseline), never a failure.
struct ThroughputThresholds {
  /// items_per_sec gate: candidate >= baseline * (1 - frac).
  double tol_frac = 0.5;
  /// Note (not fail) when candidate > baseline * (1 + frac).
  double improve_frac = 0.5;
  /// Skip the rate gate entirely — coverage, beam counts, and (optionally)
  /// hashes still compare. For same-machine rerun self-diffs, where
  /// wall-clock noise is meaningless but bits are not.
  bool structural_only = false;
  /// Demand bitwise-equal estimate fingerprints per cell (same-machine
  /// runs — estimates are deterministic per build, not across compilers).
  bool require_hash_match = false;
};

/// Diff two throughput documents. Baseline cells are paired by
/// (stage, simd, particles, threads); a missing candidate cell fails
/// unless it is an avx2 cell and the candidate host reports
/// `avx2_available == false` (noted, not failed — scalar-only hosts still
/// gate their scalar rows). Mismatched beam counts fail structurally:
/// the rates would not be comparable.
CompareReport compare_throughput(const ThroughputDocument& baseline,
                                 const ThroughputDocument& candidate,
                                 const ThroughputThresholds& thresholds);

/// Thresholds for the compute-governor *tradeoff* gate
/// (`tools/bench_compare --tradeoff`). Unlike the plain regression gate,
/// the tradeoff gate judges governed cells on the (lateral error, compute
/// cost) plane: a candidate may spend more compute if it buys accuracy, or
/// lose accuracy if it sheds compute — what it may not do is regress on
/// one axis without improving on the other. Cost is the governor's virtual
/// p99 (deterministic work units) when both documents carry it, falling
/// back to wall-clock update_p99_ms for mixed-schema comparisons.
struct TradeoffThresholds {
  /// Error axis: candidate <= baseline * (1 + frac) + slack holds the axis.
  double err_tol_frac = 0.10;
  double err_slack_cm = 1.0;
  /// Cost axis: candidate <= baseline * (1 + frac) + slack holds the axis.
  double cost_tol_frac = 0.10;
  double cost_slack = 2000.0;  ///< work units (or ms on the fallback axis)
  /// "Improved" on an axis means candidate < baseline * (1 - improve_frac);
  /// only a genuine improvement excuses a regression on the other axis.
  double improve_frac = 0.05;
  /// Demand the candidate's graceful-degradation headline: governed stack
  /// un-crashed and deadline-clean at max compute pressure while the
  /// budget-enforcer twin missed deadlines or crashed.
  bool require_headline = true;
};

/// Diff the governed cells of two robustness documents on the tradeoff
/// plane. Baseline governed cells must exist in the candidate; new crashes
/// fail unconditionally (a crash is not a tradeoff).
CompareReport compare_tradeoff(const BenchDocument& baseline,
                               const BenchDocument& candidate,
                               const TradeoffThresholds& thresholds);

}  // namespace srl
