#pragma once

/// \file benchmark_json.hpp
/// \brief The stable machine-readable benchmark schema
/// (`srl.bench_robustness/1`) and its (de)serialization.
///
/// Every robustness-matrix run serializes to one JSON document:
///
///     {
///       "schema": "srl.bench_robustness/1",
///       "provenance": { compiler, build, seeds, grid shape, ... },
///       "fault_traces": [ {fault, severity, trace_hash, n_scans, ...} ],
///       "cells":        [ {localizer, fault, severity, metrics...} ],
///       "headline":     { slip-ramp degradation factors }
///     }
///
/// `fault_traces` fingerprints the *input* each fault regime produces
/// (bitwise hash of the corrupted sensor trace — seed-deterministic and
/// thread-count invariant), `cells` the *outcome* per scenario. The schema
/// is the contract of the CI gate: `tools/bench_compare` diffs two
/// documents cell-by-cell, so fields may be added in later versions but
/// never renamed or repurposed without bumping the version suffix.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "eval/scenario_matrix.hpp"

namespace srl {

/// Current schema: v4 added the per-cell compute-governor block (governed
/// mode + budget, deadline misses, shed counts, particle/beam means,
/// deterministic virtual-cost percentiles) and the governor headline. v3
/// added the per-cell event-journal summary
/// (events_total/warn/error/critical/dropped + black-box artifact paths)
/// and the recorder provenance block (recorder on/off, recorder vs
/// baseline wall time). v2 added the per-cell recovery block
/// (recovery_success, divergence episodes, time-to-relocalize). The reader
/// accepts v1–v4; absent blocks parse to zeros (and v1 cells carry
/// `has_recovery == false`, so the compare gates skip recovery checks;
/// pre-v4 cells carry `governed == false`).
inline constexpr const char* kBenchRobustnessSchema = "srl.bench_robustness/4";
inline constexpr const char* kBenchRobustnessSchemaV3 =
    "srl.bench_robustness/3";
inline constexpr const char* kBenchRobustnessSchemaV2 =
    "srl.bench_robustness/2";
inline constexpr const char* kBenchRobustnessSchemaV1 =
    "srl.bench_robustness/1";

/// Where the numbers came from — enough to explain a regression without
/// reproducing it. Everything here is informational except `seed` and
/// `fault_seed`, which the determinism hash depends on.
struct BenchProvenance {
  std::string compiler;      ///< e.g. "gcc 13.2.0" (compiler_id())
  std::string build;         ///< "release" / "checked" / ...
  std::string git_sha;       ///< from SRL_GIT_SHA env when set
  std::uint64_t seed{0};
  std::uint64_t fault_seed{0};
  int laps{0};
  int n_particles{0};
  int matrix_threads{0};
  bool fast_mode{false};
  // -- schema v3: flight-recorder provenance (informational, not gated) --
  bool recorder{false};          ///< grid ran with the flight recorder on
  double recorder_wall_s{0.0};   ///< grid wall time, recorder on
  double baseline_wall_s{0.0};   ///< recorder-off A/B wall time (0 = not run)
  double recorder_overhead_pct{0.0};  ///< 100*(on/off - 1) when A/B was run
};

/// Bitwise fingerprint of one fault regime applied to the canonical
/// recorded trace.
struct FaultTraceFingerprint {
  std::string fault;
  double severity{0.0};
  std::uint64_t trace_hash{0};
  std::uint64_t n_scans{0};
  std::uint64_t n_odometry{0};
};

struct BenchDocument {
  BenchProvenance provenance{};
  std::vector<FaultTraceFingerprint> fault_traces{};
  std::vector<ScenarioCell> cells{};
  bool has_headline{false};
  HeadlineComparison headline{};
  // -- schema v4: graceful-degradation headline (absent pre-v4) --
  bool has_governor_headline{false};
  GovernorHeadline governor_headline{};
};

/// Compile-time compiler identification for provenance.
std::string compiler_id();

/// Serialize to the schema above (insertion-ordered, round-trip numbers).
json::Value bench_to_json(const BenchDocument& doc);
bool write_bench_json(const std::string& path, const BenchDocument& doc);

/// Parse a document; nullopt on I/O error, malformed JSON, or a schema
/// string this reader does not understand.
std::optional<BenchDocument> read_bench_json(const std::string& path);
std::optional<BenchDocument> bench_from_json(const json::Value& root);

}  // namespace srl
