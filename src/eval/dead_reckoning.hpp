#pragma once

/// \file dead_reckoning.hpp
/// \brief Odometry-only localizer: integrates every increment, ignores
/// scans. The weakest baseline, and the cheapest driver for *recording* a
/// `SensorTrace` (the determinism checker, the golden-trace fixture and the
/// thread-scaling bench all record through it so the captured sensor stream
/// is independent of any filter's estimate).

#include <string>

#include "core/localizer.hpp"

namespace srl {

class DeadReckoning final : public Localizer {
 public:
  void initialize(const Pose2& pose) override { pose_ = pose; }
  void on_odometry(const OdometryDelta& odom) override {
    pose_ = (pose_ * odom.delta).normalized();
  }
  Pose2 on_scan(const LaserScan&) override { return pose_; }
  Pose2 pose() const override { return pose_; }
  std::string name() const override { return "DeadReckoning"; }
  double mean_scan_update_ms() const override { return 0.0; }
  double total_busy_s() const override { return 0.0; }

 private:
  Pose2 pose_{};
};

}  // namespace srl
