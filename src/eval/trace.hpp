#pragma once

/// \file trace.hpp
/// \brief Sensor trace recording and replay — the rosbag workflow.
///
/// A `SensorTrace` captures the exact stream a localizer consumes (odometry
/// increments + LiDAR scans) together with the ground-truth pose at each
/// scan. Recorded once (e.g. by `ExperimentRunner::run`), it can be
/// replayed into any number of localizers, which makes comparisons
/// *open-loop*: every candidate sees byte-identical sensor data instead of
/// driving its own (slightly different) lap. Traces serialize to a simple
/// binary container for offline experiments.

#include <optional>
#include <string>
#include <vector>

#include "core/localizer.hpp"
#include "motion/motion_model.hpp"
#include "sensor/lidar.hpp"
#include "telemetry/telemetry.hpp"

namespace srl {

class SensorTrace {
 public:
  struct ScanRecord {
    LaserScan scan;
    Pose2 truth;  ///< ground-truth body pose at scan end
  };
  struct OdomRecord {
    double t;
    OdometryDelta odom;
  };

  void add_odometry(double t, const OdometryDelta& odom) {
    odometry_.push_back({t, odom});
  }
  void add_scan(const LaserScan& scan, const Pose2& truth) {
    scans_.push_back({scan, truth});
  }
  void clear() {
    odometry_.clear();
    scans_.clear();
  }

  const std::vector<OdomRecord>& odometry() const { return odometry_; }
  const std::vector<ScanRecord>& scans() const { return scans_; }
  bool empty() const { return odometry_.empty() && scans_.empty(); }
  double duration() const;

  /// Result of replaying the trace into one localizer.
  struct ReplayResult {
    std::vector<Pose2> estimates;  ///< localizer pose at each scan
    double pose_rmse_m{0.0};       ///< vs the recorded ground truth
    double heading_rmse_rad{0.0};
    double mean_update_ms{0.0};    ///< localizer-reported mean (back-compat)
    /// Update-latency distribution, measured around every on_scan call by
    /// the replay loop itself (telemetry::Histogram percentiles).
    double p50_update_ms{0.0};
    double p95_update_ms{0.0};
    double p99_update_ms{0.0};
    double max_update_ms{0.0};
  };

  /// Feed every event in time order into `localizer` (initialized at the
  /// first recorded truth pose) and score it against the recorded truth.
  /// When `sink` is non-empty it is attached to the localizer (per-stage
  /// histograms, health gauges) and each scan update emits a span.
  ReplayResult replay(Localizer& localizer, telemetry::Sink sink = {}) const;

  /// Binary container I/O ("SRLT" magic + version). Returns false / nullopt
  /// on I/O or format errors.
  bool save(const std::string& path) const;
  static std::optional<SensorTrace> load(const std::string& path);

 private:
  std::vector<OdomRecord> odometry_;
  std::vector<ScanRecord> scans_;
};

}  // namespace srl
