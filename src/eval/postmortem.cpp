#include "eval/postmortem.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <sstream>

#include "core/synpf.hpp"
#include "eval/frontier/scenario_sampler.hpp"
#include "fault/faulted_localizer.hpp"
#include "fault/pipeline.hpp"
#include "governor/governor.hpp"
#include "gridmap/track_generator.hpp"
#include "recovery/supervised_localizer.hpp"
#include "slam/pure_localization.hpp"
#include "telemetry/flight_recorder.hpp"

namespace srl {

namespace {

std::uint64_t parse_hash(const std::string& hex) {
  return std::strtoull(hex.c_str(), nullptr, 16);
}

double num_field(const json::Value& v, const char* key, double fallback) {
  const json::Value* f = v.find(key);
  return f != nullptr ? f->as_double(fallback) : fallback;
}

std::string str_field(const json::Value& v, const char* key) {
  const json::Value* f = v.find(key);
  return f != nullptr ? f->as_string() : std::string{};
}

std::optional<RangeMethodKind> range_from_string(const std::string& name) {
  if (name == "bresenham") return RangeMethodKind::kBresenham;
  if (name == "ray_marching") return RangeMethodKind::kRayMarching;
  if (name == "cddt") return RangeMethodKind::kCddt;
  if (name == "lut") return RangeMethodKind::kLut;
  return std::nullopt;
}

bool has_suffix(const std::string& kind, const std::string& suffix) {
  return kind.size() > suffix.size() &&
         kind.compare(kind.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string strip_suffix(const std::string& kind, const std::string& suffix) {
  return has_suffix(kind, suffix)
             ? kind.substr(0, kind.size() - suffix.size())
             : kind;
}

/// Same kind vocabulary as the scenario matrix: the governor suffix
/// ("+Governor"/"+Budget") is outermost and named last, recovery inside.
std::string ungoverned_kind(const std::string& kind) {
  return strip_suffix(strip_suffix(kind, "+Governor"), "+Budget");
}

bool wants_recovery(const std::string& kind) {
  return has_suffix(ungoverned_kind(kind), "+Recovery");
}

std::string base_kind(const std::string& kind) {
  return strip_suffix(ungoverned_kind(kind), "+Recovery");
}

/// Frontier recipes ("frontier:<seed>:<index>") resolve through the
/// scenario sampler: the replay key alone rebuilds the sampled circuit AND
/// the sampled fault envelope (eval/frontier/scenario_sampler.hpp).
std::optional<frontier::SampledScenario> frontier_scenario(
    const std::string& recipe) {
  std::uint64_t seed = 0;
  std::uint32_t index = 0;
  if (!frontier::ScenarioSampler::parse_replay_recipe(recipe, seed, index)) {
    return std::nullopt;
  }
  return frontier::ScenarioSampler{seed}.sample(index);
}

/// Track recipe parser (see PostmortemStackSpec::track).
std::optional<Track> build_track(const std::string& recipe) {
  if (recipe == "test_track") return TrackGenerator::test_track();
  if (recipe == "hairpin") return TrackGenerator::hairpin();
  const std::string oval_prefix = "oval:";
  if (recipe.compare(0, oval_prefix.size(), oval_prefix) == 0) {
    double straight = 0.0;
    double radius = 0.0;
    if (std::sscanf(recipe.c_str() + oval_prefix.size(), "%lf,%lf", &straight,
                    &radius) == 2 &&
        straight > 0.0 && radius > 0.0) {
      return TrackGenerator::oval(straight, radius);
    }
  }
  if (const auto scenario = frontier_scenario(recipe); scenario.has_value()) {
    return frontier::ScenarioSampler{scenario->seed}.build_track(*scenario);
  }
  return std::nullopt;
}

}  // namespace

json::Value stack_spec_to_json(const PostmortemStackSpec& spec) {
  json::Value v = json::Value::object();
  v.set("track", json::Value::string(spec.track));
  v.set("localizer", json::Value::string(spec.localizer));
  v.set("n_particles",
        json::Value::number(static_cast<double>(spec.n_particles)));
  v.set("threads", json::Value::number(static_cast<double>(spec.threads)));
  v.set("range", json::Value::string(spec.range));
  v.set("beams", json::Value::number(static_cast<double>(spec.beams)));
  v.set("pf_seed", json::Value::number(static_cast<double>(spec.pf_seed)));
  v.set("fault", json::Value::string(spec.fault));
  v.set("severity", json::Value::number(spec.severity));
  v.set("fault_seed",
        json::Value::number(static_cast<double>(spec.fault_seed)));
  // Governor fields only when a governor was in the stack: pre-governor
  // readers (and byte-for-byte artifact diffs) see unchanged documents.
  if (!spec.governor.empty()) {
    v.set("governor", json::Value::string(spec.governor));
    v.set("budget_ms", json::Value::number(spec.budget_ms));
  }
  return v;
}

bool stack_spec_from_json(const json::Value& v, PostmortemStackSpec& out) {
  if (!v.is_object()) return false;
  const std::string localizer = str_field(v, "localizer");
  if (localizer.empty()) return false;
  out = PostmortemStackSpec{};
  out.localizer = localizer;
  const std::string track = str_field(v, "track");
  if (!track.empty()) out.track = track;
  out.n_particles = static_cast<int>(
      num_field(v, "n_particles", static_cast<double>(out.n_particles)));
  out.threads = static_cast<int>(
      num_field(v, "threads", static_cast<double>(out.threads)));
  const std::string range = str_field(v, "range");
  if (!range.empty()) out.range = range;
  out.beams =
      static_cast<int>(num_field(v, "beams", static_cast<double>(out.beams)));
  out.pf_seed = static_cast<std::uint64_t>(
      num_field(v, "pf_seed", static_cast<double>(out.pf_seed)));
  const std::string fault = str_field(v, "fault");
  if (!fault.empty()) out.fault = fault;
  out.severity = num_field(v, "severity", out.severity);
  out.fault_seed = static_cast<std::uint64_t>(
      num_field(v, "fault_seed", static_cast<double>(out.fault_seed)));
  out.governor = str_field(v, "governor");
  out.budget_ms = num_field(v, "budget_ms", out.budget_ms);
  return true;
}

std::optional<Blackbox> load_blackbox(const std::string& path) {
  const std::optional<json::Value> doc = json::Value::load(path);
  if (!doc.has_value() || !doc->is_object()) return std::nullopt;
  if (str_field(*doc, "schema") != telemetry::kBlackboxSchema) {
    return std::nullopt;
  }

  Blackbox box;
  box.path = path;
  box.reason = str_field(*doc, "reason");
  box.label = str_field(*doc, "label");
  box.t = num_field(*doc, "t", 0.0);
  box.ticks = static_cast<std::uint64_t>(num_field(*doc, "ticks", 0.0));
  box.estimate_hash = parse_hash(str_field(*doc, "estimate_hash"));
  box.sim_seed = static_cast<std::uint64_t>(num_field(*doc, "sim_seed", 0.0));
  box.sim_rng_state = str_field(*doc, "sim_rng_state");
  const json::Value* crashed = doc->find("crashed");
  box.crashed = crashed != nullptr && crashed->as_bool(false);

  if (const json::Value* sp = doc->find("start_pose");
      sp != nullptr && sp->is_array() && sp->size() == 3) {
    box.start_pose = Pose2{sp->at(0)->as_double(), sp->at(1)->as_double(),
                           sp->at(2)->as_double()};
  }
  if (const json::Value* prov = doc->find("provenance"); prov != nullptr) {
    box.provenance = *prov;
    if (const json::Value* stack = prov->find("stack"); stack != nullptr) {
      box.has_stack = stack_spec_from_json(*stack, box.stack);
    }
  }
  if (const json::Value* snaps = doc->find("snapshots");
      snaps != nullptr && snaps->is_array()) {
    box.snapshots = *snaps;
  }
  if (const json::Value* events = doc->find("events");
      events != nullptr && events->is_array()) {
    for (std::size_t i = 0; i < events->size(); ++i) {
      std::optional<telemetry::Event> event =
          telemetry::event_from_json(*events->at(i));
      if (event.has_value()) box.events.push_back(std::move(*event));
    }
  }
  box.events_total = static_cast<std::uint64_t>(
      num_field(*doc, "events_total", static_cast<double>(box.events.size())));
  box.events_dropped =
      static_cast<std::uint64_t>(num_field(*doc, "events_dropped", 0.0));

  // The sidecar name is stored relative to the artifact so the pair can be
  // moved together (CI artifact downloads land anywhere).
  const std::string trace_file = str_field(*doc, "trace_file");
  if (!trace_file.empty()) {
    const std::filesystem::path sidecar =
        std::filesystem::path(path).parent_path() / trace_file;
    std::optional<SensorTrace> trace = SensorTrace::load(sidecar.string());
    if (trace.has_value()) {
      box.trace = std::move(*trace);
      box.has_trace = true;
    }
  }
  return box;
}

std::string render_timeline(const Blackbox& box) {
  std::ostringstream out;
  char line[256];

  out << "black box  : " << box.path << "\n";
  out << "reason     : " << box.reason << " (t=" << json::format_number(box.t)
      << " s" << (box.crashed ? ", crashed" : "") << ")\n";
  out << "label      : " << box.label << "\n";
  std::snprintf(line, sizeof(line), "ticks      : %" PRIu64
                "  estimate_hash 0x%016" PRIx64 "\n",
                box.ticks, box.estimate_hash);
  out << line;
  if (box.has_stack) {
    const PostmortemStackSpec& s = box.stack;
    out << "stack      : " << s.localizer << " on " << s.track << " ("
        << s.n_particles << " particles, " << s.range << ", " << s.beams
        << " beams, fault " << s.fault << "@"
        << json::format_number(s.severity) << ")\n";
    if (!s.governor.empty()) {
      out << "governor   : " << s.governor << " mode, budget "
          << json::format_number(s.budget_ms) << " ms\n";
    }
  }
  out << "trace      : "
      << (box.has_trace
              ? std::to_string(box.trace.scans().size()) + " scans, " +
                    std::to_string(box.trace.odometry().size()) + " odometry"
              : std::string{"missing"})
      << "\n";

  // Snapshot-window summary: when the estimate error was recorded, show the
  // window's worst tick — the "how bad did it get" line.
  if (box.snapshots.size() > 0) {
    double worst_err = -1.0;
    double worst_t = 0.0;
    for (std::size_t i = 0; i < box.snapshots.size(); ++i) {
      const json::Value* snap = box.snapshots.at(i);
      const double err = num_field(*snap, "truth_err_m", -1.0);
      if (err > worst_err) {
        worst_err = err;
        worst_t = num_field(*snap, "t", 0.0);
      }
    }
    const json::Value* first = box.snapshots.at(0);
    const json::Value* last = box.snapshots.at(box.snapshots.size() - 1);
    out << "window     : " << box.snapshots.size() << " snapshots, t=["
        << json::format_number(num_field(*first, "t", 0.0)) << ", "
        << json::format_number(num_field(*last, "t", 0.0)) << "]";
    if (worst_err >= 0.0) {
      out << ", max truth error " << json::format_number(worst_err)
          << " m at t=" << json::format_number(worst_t);
    }
    out << "\n";
  }

  std::snprintf(line, sizeof(line), "events     : %zu shown, %" PRIu64
                " emitted, %" PRIu64 " dropped\n",
                box.events.size(), box.events_total, box.events_dropped);
  out << line << "\n";

  for (const telemetry::Event& event : box.events) {
    std::snprintf(line, sizeof(line), "[%9.3f] %-8s %-10s %-26s",
                  event.t, telemetry::to_string(event.severity),
                  telemetry::to_string(event.category), event.code.c_str());
    out << line;
    if (event.data.is_object()) {
      for (const auto& [key, value] : event.data.members()) {
        out << " " << key << "=";
        if (value.is_string()) {
          out << value.as_string();
        } else {
          out << value.dump(0);
        }
      }
    }
    out << "\n";
  }
  return out.str();
}

PostmortemReplay replay_blackbox(const Blackbox& box, int threads) {
  PostmortemReplay replay;
  if (!box.has_stack) {
    replay.error = "black box carries no stack recipe (provenance.stack)";
    return replay;
  }
  if (!box.has_trace) {
    replay.error = "sensor-trace sidecar missing";
    return replay;
  }
  const std::optional<Track> track = build_track(box.stack.track);
  if (!track.has_value()) {
    replay.error = "unknown track recipe: " + box.stack.track;
    return replay;
  }
  const std::optional<RangeMethodKind> range =
      range_from_string(box.stack.range);
  if (!range.has_value()) {
    replay.error = "unknown range backend: " + box.stack.range;
    return replay;
  }

  auto map = std::make_shared<const OccupancyGrid>(track->grid);
  const LidarConfig lidar{};

  const std::string kind = base_kind(box.stack.localizer);
  std::unique_ptr<Localizer> localizer;
  SynPf* synpf = nullptr;
  if (kind == "SynPF") {
    SynPfConfig cfg;
    cfg.range = *range;
    cfg.beams = box.stack.beams;
    cfg.seed = box.stack.pf_seed;
    cfg.filter.n_particles = box.stack.n_particles;
    cfg.filter.n_threads = threads > 0 ? threads : box.stack.threads;
    auto pf = std::make_unique<SynPf>(cfg, map, lidar);
    synpf = pf.get();
    localizer = std::move(pf);
  } else if (kind == "CartoLite") {
    localizer =
        std::make_unique<CartoLocalizer>(PureLocalizationOptions{}, map, lidar);
  } else {
    replay.error = "unknown localizer kind: " + kind;
    return replay;
  }

  // Same composition the closed loop used: faults inside, supervision
  // outside. An empty pipeline / policies-off supervisor is a bitwise
  // pass-through, so the always-wrapped shape costs nothing.
  fault::FaultPipeline pipeline{box.stack.fault_seed, lidar};
  if (const auto scenario = frontier_scenario(box.stack.track);
      scenario.has_value()) {
    // Frontier black box: the fault envelope (phase/ramp/window) was
    // sampled, not canonical — rebuild it from the replay key.
    if (scenario->severity > 0.0) {
      pipeline.add(fault::make_injector(scenario->axis, scenario->profile));
    }
  } else if (box.stack.fault != "none" && box.stack.fault != "kidnap" &&
             box.stack.severity != 0.0) {
    pipeline.add(box.stack.fault, box.stack.severity);
  }
  fault::FaultedLocalizer faulted{*localizer, pipeline};
  std::unique_ptr<recovery::SupervisedLocalizer> supervised;
  Localizer* subject = &faulted;
  if (wants_recovery(box.stack.localizer)) {
    supervised = std::make_unique<recovery::SupervisedLocalizer>(
        faulted, recovery::SupervisedLocalizerConfig{}, map, lidar);
    if (synpf != nullptr) supervised->bind_filter(&synpf->filter());
    subject = supervised.get();
  }

  // Governor outermost, rebuilt from the recipe's {mode, budget} exactly as
  // the matrix configured it (default GovernorConfig otherwise) — the
  // governed decision sequence is a pure function of that pair plus the
  // fault envelope, so the replay stays bitwise.
  std::unique_ptr<governor::GovernedLocalizer> governed;
  if (!box.stack.governor.empty()) {
    governor::GovernorConfig gcfg;
    gcfg.budget_ms = box.stack.budget_ms;
    gcfg.shed = box.stack.governor == "govern";
    gcfg.adaptive = gcfg.shed;
    governed = std::make_unique<governor::GovernedLocalizer>(*subject, gcfg);
    if (synpf != nullptr) governed->bind_filter(&synpf->filter());
    governed->bind_pressure(&pipeline);
    if (supervised != nullptr) governed->bind_supervisor(supervised.get());
    subject = governed.get();
  }

  // Re-drive exactly as the closed loop delivered the stream: initialize at
  // the recorded start pose (NOT the first truth — the closed loop never
  // told the localizer the truth), every odometry increment with t <=
  // scan.t before that scan. A fresh FlightRecorder folds the estimates so
  // the hash function is the recorder's own, not a reimplementation.
  subject->initialize(box.start_pose);
  telemetry::FlightRecorder recorder{telemetry::FlightRecorderConfig{}};
  std::size_t oi = 0;
  const auto& odometry = box.trace.odometry();
  for (const SensorTrace::ScanRecord& rec : box.trace.scans()) {
    while (oi < odometry.size() && odometry[oi].t <= rec.scan.t) {
      subject->on_odometry(odometry[oi].odom);
      ++oi;
    }
    const Pose2 est = subject->on_scan(rec.scan);
    telemetry::TickSnapshot snap;
    snap.tick = recorder.ticks();
    snap.t = rec.scan.t;
    snap.est_x = est.x;
    snap.est_y = est.y;
    snap.est_theta = est.theta;
    recorder.record_tick(std::move(snap));
  }

  replay.ok = true;
  replay.ticks = recorder.ticks();
  replay.estimate_hash = recorder.estimate_hash();
  replay.bitwise_match = replay.ticks == box.ticks &&
                         replay.estimate_hash == box.estimate_hash;
  if (!replay.bitwise_match) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "mismatch: recorded %" PRIu64 " ticks hash 0x%016" PRIx64
                  ", replayed %" PRIu64 " ticks hash 0x%016" PRIx64,
                  box.ticks, box.estimate_hash, replay.ticks,
                  replay.estimate_hash);
    replay.error = buf;
  }
  return replay;
}

}  // namespace srl
