#pragma once

/// \file metrics.hpp
/// \brief The accuracy proxies of Table I.
///
///  - lap time: from the LapTimer over the true pose;
///  - lateral error: |Frenet offset| of the true pose from the race line;
///  - scan alignment: fraction of scan endpoints, re-projected from the
///    *estimated* pose, that land within a tolerance of an occupied map
///    cell ("average percentage of overlapping scans and the track
///    boundary");
///  - compute load: localizer busy time as a percentage of simulated time
///    (the htop-style single-core load proxy).

#include "gridmap/distance_transform.hpp"
#include "gridmap/occupancy_grid.hpp"
#include "sensor/lidar.hpp"

namespace srl {

/// Precomputes the wall-distance field once; then each scan is scored in
/// O(beams).
class ScanAlignmentScorer {
 public:
  /// `tolerance`: max distance (m) from an endpoint to a wall to count as
  /// aligned.
  ScanAlignmentScorer(const OccupancyGrid& map, double tolerance = 0.15);

  /// Percentage in [0, 100] of valid returns within tolerance of a wall
  /// when the scan is placed at `estimated_body_pose`.
  double score(const LaserScan& scan, const LidarConfig& config,
               const Pose2& estimated_body_pose, int stride = 4) const;

  double tolerance() const { return tolerance_; }

 private:
  DistanceField wall_distance_;
  double tolerance_;
};

}  // namespace srl
